// Fuzz target: layout reader against the LayoutAuditor oracle.
//
// Any placement load_placement accepts must (a) pass the auditor's
// structural Eq. 6/7 checks — distinct in-range servers, 1..N replicas per
// video, layout realizing its implied plan — and (b) survive a
// save/load round trip bit-exactly.  A parser that admits a layout the
// auditor rejects, or that round-trips to a different placement, is a
// finding.  Malformed input must reject cleanly with InvalidArgumentError
// (the reader's allocation is bounded by the bytes actually present, which
// ASan enforces here against forged headers).
#include <sstream>
#include <string>

#include "fuzz/fuzz_support.h"
#include "src/audit/audit.h"
#include "src/core/layout_io.h"
#include "src/util/error.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  vodrep::PlacementFile placement;
  try {
    placement = vodrep::load_placement(in);
  } catch (const vodrep::InvalidArgumentError&) {
    return 0;  // clean reject
  }

  // Oracle 1: the auditor re-derives Eqs. 6/7 from the raw assignment; an
  // accepted file must satisfy them (the exchange format carries no
  // storage/bandwidth limits, so those checks stay disabled).
  vodrep::LayoutAuditor::Limits limits;
  limits.num_servers = placement.num_servers;
  limits.capacity_per_server =
      placement.layout.num_videos() * placement.num_servers;
  const vodrep::LayoutAuditor auditor(limits);
  const vodrep::ReplicationPlan plan = placement.plan();
  const vodrep::AuditReport report = auditor.audit(placement.layout, &plan);
  if (!report.ok()) {
    VODREP_FUZZ_FAIL("load_placement accepted a layout the auditor rejects: %s",
                     report.summary().c_str());
  }
  // Accepted v2 files additionally carry prefix fractions; the fractional
  // audit path re-derives per-server slot usage as sum f_i and checks every
  // fraction against (0, 1] from the raw vector.
  if (placement.has_asset_metadata()) {
    const vodrep::AuditReport fractional = auditor.audit(
        placement.layout, &plan, nullptr, &placement.prefix_fraction);
    if (!fractional.ok()) {
      VODREP_FUZZ_FAIL(
          "load_placement accepted v2 metadata the fractional auditor "
          "rejects: %s",
          fractional.summary().c_str());
    }
  }

  // Oracle 2: save/load round trip must reproduce the placement exactly.
  std::ostringstream saved;
  try {
    vodrep::save_placement(saved, placement);
  } catch (const vodrep::InvalidArgumentError& err) {
    VODREP_FUZZ_FAIL("save_placement rejected a loaded placement: %s",
                     err.what());
  }
  std::istringstream reload_in(saved.str());
  vodrep::PlacementFile reloaded;
  try {
    reloaded = vodrep::load_placement(reload_in);
  } catch (const vodrep::InvalidArgumentError& err) {
    VODREP_FUZZ_FAIL("round-tripped placement failed to reload: %s",
                     err.what());
  }
  if (reloaded.num_servers != placement.num_servers ||
      reloaded.layout.assignment != placement.layout.assignment) {
    VODREP_FUZZ_FAIL("save/load round trip changed the placement");
  }
  // Doubles are written with max_digits10, so even the v2 metadata must
  // round trip bit-exactly (vector equality compares every double).
  if (reloaded.prefix_fraction != placement.prefix_fraction ||
      reloaded.variant_bitrates_bps != placement.variant_bitrates_bps) {
    VODREP_FUZZ_FAIL("save/load round trip changed the v2 asset metadata");
  }
  return 0;
}
