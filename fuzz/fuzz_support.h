// Shared support for the vodrep libFuzzer targets.
//
// Each target defines LLVMFuzzerTestOneInput and is linked either against
// libFuzzer proper (the `fuzz` CMake preset: clang, -fsanitize=fuzzer) or
// against standalone_main.cc, a corpus-replay driver that works with any
// toolchain.  The committed seed corpora under fuzz/corpus/<target>/ run as
// ctest entries in every build, so the oracles double as regression tests.
//
// Targets must distinguish two outcomes on malformed input:
//   * a clean reject (InvalidArgumentError / InfeasibleError from a parser
//     or validator) — expected, return 0;
//   * everything else — an uncaught exception type, a sanitizer report, or a
//     violated oracle — a finding.  Oracle violations call VODREP_FUZZ_FAIL,
//     which prints the reason and aborts so both libFuzzer and the replay
//     driver record a crash.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#define VODREP_FUZZ_FAIL(...)                        \
  do {                                               \
    std::fprintf(stderr, "fuzz oracle violation: "); \
    std::fprintf(stderr, __VA_ARGS__);               \
    std::fprintf(stderr, "\n");                      \
    std::abort();                                    \
  } while (false)

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);
