// Fuzz target: run-report schema validator total-ness.
//
// validate_run_report's contract is to *report* problems, never to throw on
// them: CI validators and vodrep_report --validate-only feed it arbitrary
// parsed documents and render the problem list.  Oracle: for any JSON the
// parser accepts — any shape, any type confusion in any field — the
// validator returns normally.  An exception escaping it means some field
// access skipped its shape check (exactly the bug class the is_uint/is_int
// guards in report.cc exist to prevent).
#include <exception>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/fuzz_support.h"
#include "src/obs/json_lite.h"
#include "src/obs/report.h"
#include "src/util/error.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  vodrep::obs::JsonValue report;
  try {
    report = vodrep::obs::parse_json(text);
  } catch (const vodrep::InvalidArgumentError&) {
    return 0;  // clean reject
  }
  try {
    const std::vector<std::string> problems =
        vodrep::obs::validate_run_report(report);
    (void)problems;
  } catch (const std::exception& err) {
    VODREP_FUZZ_FAIL("validate_run_report threw on parsed input: %s",
                     err.what());
  }
  return 0;
}
