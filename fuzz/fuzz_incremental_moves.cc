// Fuzz target: IncrementalState move sequences against the from-scratch
// evaluator and the audit layer.
//
// The SA solver trusts IncrementalState's O(r)-per-move running sums to
// equal a from-scratch evaluation of the Eq. 1 objective.  This target
// decodes arbitrary bytes into a structured sequence of primitive moves and
// transactions — set_bitrate / add_replica / drop_replica / checkpoint /
// rollback / commit / forget_history — against a fixed small instance whose
// N=6 servers straddle the kInlineReplicas=4 spill boundary, then
// periodically cross-checks:
//
//   * state.objective() against solution_objective(problem, to_solution())
//     at 1e-9 relative tolerance;
//   * LayoutAuditor::audit_state, which re-derives every cached sum from
//     first principles (storage/bandwidth overflow is tolerated: the SA
//     bandwidth constraint is soft, and random move streams overfill
//     servers by design — every *other* violation kind is a finding).
//
// Any divergence is a journaling/bookkeeping bug of exactly the kind the
// checkpoint/rollback/spill machinery could hide from the unit tests'
// hand-picked sequences.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "fuzz/fuzz_support.h"
#include "src/audit/audit.h"
#include "src/core/incremental_state.h"
#include "src/core/scalable.h"

namespace {

constexpr std::size_t kNumVideos = 8;
constexpr std::size_t kNumServers = 6;  // > kInlineReplicas: spill reachable
constexpr double kRelTolerance = 1e-9;

const vodrep::ScalableProblem& fixed_problem() {
  static const vodrep::ScalableProblem problem = [] {
    vodrep::ScalableProblem p;
    p.videos.duration_sec = 5400.0;
    // Normalized, non-increasing popularity (a fixed Zipf-ish profile).
    p.videos.popularity = {0.28, 0.19, 0.14, 0.11, 0.09, 0.08, 0.06, 0.05};
    p.cluster.num_servers = kNumServers;
    p.cluster.storage_bytes_per_server = 8.0e9;   // ~3 top-rate replicas
    p.cluster.bandwidth_bps_per_server = 1.8e9;
    p.ladder.rates_bps = {1.0e6, 2.0e6, 4.0e6};
    p.expected_peak_requests = 200.0;
    p.validate();
    return p;
  }();
  return problem;
}

void cross_check(const vodrep::IncrementalState& state) {
  const double incremental = state.objective();
  const double scratch = vodrep::solution_objective(fixed_problem(),
                                                    state.to_solution());
  const double scale = std::max(1.0, std::abs(scratch));
  if (!(std::abs(incremental - scratch) <= kRelTolerance * scale)) {
    VODREP_FUZZ_FAIL(
        "incremental objective %.17g != from-scratch %.17g (rel tol %g)",
        incremental, scratch, kRelTolerance);
  }
  const vodrep::AuditReport report = vodrep::LayoutAuditor::audit_state(state);
  for (const vodrep::Violation& violation : report.violations) {
    if (violation.kind != vodrep::ViolationKind::kStorageOverflow &&
        violation.kind != vodrep::ViolationKind::kBandwidthOverflow) {
      VODREP_FUZZ_FAIL("audit_state: %s", violation.to_string().c_str());
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const vodrep::ScalableProblem& problem = fixed_problem();
  vodrep::IncrementalState state(problem,
                                 vodrep::lowest_rate_round_robin(problem));
  // Marks into the journal that are still valid targets for rollback.
  std::vector<vodrep::IncrementalState::Checkpoint> marks;

  std::size_t ops = 0;
  std::size_t i = 0;
  while (i + 3 <= size) {
    const std::uint8_t op = data[i];
    const std::uint8_t a = data[i + 1];
    const std::uint8_t b = data[i + 2];
    i += 3;
    const std::size_t video = a % kNumVideos;
    switch (op % 7) {
      case 0:
        state.set_bitrate(video, b % problem.ladder.size());
        break;
      case 1: {  // add a replica on the first non-hosting probe hit
        for (std::size_t k = 0; k < kNumServers; ++k) {
          const std::size_t server = (b + k) % kNumServers;
          if (!state.is_hosted(video, server)) {
            state.add_replica(video, server);
            break;
          }
        }
        break;
      }
      case 2: {  // drop a hosted replica, never the last one
        if (state.replica_count(video) > 1) {
          const auto replicas = state.replicas_of(video);
          state.drop_replica(video, replicas[b % replicas.size()]);
        }
        break;
      }
      case 3:
        marks.push_back(state.checkpoint());
        break;
      case 4:
        if (!marks.empty()) {
          const auto mark = marks.back();
          marks.pop_back();
          state.rollback(mark);
        }
        break;
      case 5:
        state.commit();
        marks.clear();
        break;
      case 6:
        if (!marks.empty()) {
          // Trim history up to the oldest live mark; every remaining mark
          // shifts down by the trimmed amount (the oldest becomes 0).
          const auto trimmed = marks.front();
          state.forget_history(trimmed);
          for (auto& mark : marks) mark -= trimmed;
        }
        break;
    }
    if (++ops % 8 == 0) cross_check(state);
  }
  cross_check(state);
  return 0;
}
