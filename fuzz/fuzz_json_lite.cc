// Fuzz target: json_lite parser round-trip.
//
// Oracle: for any input the parser accepts, serialization must be a fixed
// point — dump() reparses to a structurally equal value, and dumping that
// reparse is byte-identical.  This is the property the observability layer
// leans on (deterministic exports, value-exact number round-trips via
// max_digits10); a violation means some value shape escapes the
// parse/dump/parse cycle.  Inputs the parser rejects must reject cleanly
// with InvalidArgumentError, never any other way.
#include <string>
#include <string_view>

#include "fuzz/fuzz_support.h"
#include "src/obs/json_lite.h"
#include "src/util/error.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  vodrep::obs::JsonValue value;
  try {
    value = vodrep::obs::parse_json(text);
  } catch (const vodrep::InvalidArgumentError&) {
    return 0;  // clean reject
  }
  const std::string once = value.dump();
  vodrep::obs::JsonValue reparsed;
  try {
    reparsed = vodrep::obs::parse_json(once);
  } catch (const vodrep::InvalidArgumentError& err) {
    VODREP_FUZZ_FAIL("dump() emitted unparseable JSON: %s", err.what());
  }
  if (!(value == reparsed)) {
    VODREP_FUZZ_FAIL("parse(dump(v)) != v for accepted input");
  }
  if (reparsed.dump() != once) {
    VODREP_FUZZ_FAIL("dump() is not a serialization fixed point");
  }
  return 0;
}
