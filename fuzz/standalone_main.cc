// Corpus-replay driver for toolchains without libFuzzer (GCC builds).
//
// Feeds every file named on the command line — directories are walked
// recursively in sorted order for determinism — through the target's
// LLVMFuzzerTestOneInput.  Exit status 0 means every input ran without a
// finding; oracle violations abort (matching libFuzzer's crash semantics),
// so the ctest corpus-replay entries fail loudly on regression.
//
// Under the `fuzz` preset this file is NOT compiled: libFuzzer provides
// main() and uses the same corpus directories as its seeds.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/fuzz_support.h"

namespace {

std::vector<std::string> collect_inputs(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const fs::path path(argv[i]);
    if (fs::is_directory(path)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path().string());
      }
    } else {
      inputs.push_back(path.string());
    }
  }
  std::sort(inputs.begin(), inputs.end());
  return inputs;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  const std::vector<std::string> inputs = collect_inputs(argc, argv);
  for (const std::string& input : inputs) {
    std::ifstream file(input, std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "error: cannot read %s\n", input.c_str());
      return 2;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(file)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  }
  std::printf("replayed %zu corpus input(s) without findings\n",
              inputs.size());
  return 0;
}
