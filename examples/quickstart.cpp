// Quickstart: provision a VoD cluster and measure its rejection rate.
//
// Walks the full public API in ~40 lines of logic:
//   1. describe the cluster and the video catalogue,
//   2. compute a replication plan (Zipf-interval) and a placement (SLF),
//   3. generate a synthetic peak-period workload,
//   4. replay it through the simulator and read off the service metrics.
#include <cstdlib>
#include <iostream>

#include "src/core/objective.h"
#include "src/core/pipeline.h"
#include "src/exp/scenario.h"
#include "src/util/rng.h"
#include "src/workload/trace.h"

int main() {
  using namespace vodrep;
  try {
    // 1. The paper's cluster: 8 servers, 1.8 Gb/s each, 300 videos of 90
    //    minutes at 4 Mb/s, Zipf popularity with skew 0.75, storage sized
    //    for 1.2 replicas per video on average.
    PaperScenario scenario;
    scenario.theta = 0.75;
    scenario.replication_degree = 1.2;

    // 2. Replication + placement.
    const auto replication = make_replication_policy("zipf");
    const auto placement = make_placement_policy("slf");
    const ProvisioningResult provisioned =
        provision(scenario.problem(), *replication, *placement,
                  scenario.replica_budget());
    std::cout << "provisioned " << provisioned.plan.total_replicas()
              << " replicas (degree " << provisioned.plan.degree()
              << "), expected-load imbalance L = "
              << imbalance_max_relative(provisioned.expected_loads) << "\n";

    // 3. One peak period of Poisson arrivals at 35 requests/minute.
    Rng rng(/*seed=*/7);
    const RequestTrace trace = generate_trace(rng, scenario.trace_spec(35.0));
    std::cout << "generated " << trace.size()
              << " requests over 90 minutes\n";

    // 4. Replay through the engine and report.  `ReplicatedPolicy` is the
    //    paper's whole-replica organization; striped and hybrid policies
    //    plug into the same engine.
    SimEngine engine(scenario.sim_config());
    ReplicatedPolicy policy(provisioned.layout, scenario.sim_config());
    const SimResult result = engine.run(policy, trace);
    std::cout << "rejection rate: " << 100.0 * result.rejection_rate()
              << " %\n"
              << "time-averaged load imbalance (Eq. 2): "
              << 100.0 * result.mean_imbalance_eq2 << " %\n"
              << "mean outgoing-link utilization: "
              << 100.0 * result.mean_utilization() << " %\n";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
