// Adaptive operations: wiring the online re-replication loop.
//
// Shows the control loop an operator would run around the library:
//   deploy initial layout -> each day: serve the peak, feed observed
//   request counts to the controller, ask it whether to re-provision, and
//   apply the returned migration plan during the night trough.
// A replan threshold keeps the controller from churning replicas on
// estimation noise.
#include <cstdlib>
#include <iostream>

#include "src/online/controller.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "src/util/units.h"
#include "src/workload/drift.h"
#include "src/workload/popularity.h"
#include "src/workload/trace.h"

int main() {
  using namespace vodrep;
  try {
    constexpr std::size_t kVideos = 150;
    constexpr std::size_t kServers = 8;
    const double replica_bytes =
        units::video_bytes(units::minutes(90), units::mbps(4));

    // Deploy: provision from a popularity forecast (here: a Zipf prior).
    ControllerConfig config;
    config.num_servers = kServers;
    config.budget = 180;                    // degree 1.2
    config.capacity_per_server = 23;
    config.replan_threshold = 0.15;         // ignore sub-15% L1 estimate drift
    const auto forecast = zipf_popularity(kVideos, 0.75);
    AdaptiveController controller(config, forecast);

    SimConfig sim;
    sim.num_servers = kServers;
    sim.bandwidth_bps_per_server = units::gbps(1.8);
    sim.stream_bitrate_bps = units::mbps(4);
    sim.video_duration_sec = units::minutes(90);

    // Operate: 10 daily peaks with the catalogue drifting underneath.
    Rng rng(2026);
    std::vector<double> truth = forecast;
    Table log({"day", "requests", "reject%", "replanned", "copies",
               "migrated_GB", "copy_min_over_1.8Gbps"});
    log.set_precision(2);
    for (int day = 0; day < 10; ++day) {
      truth = apply_drift(rng, std::move(truth),
                          DriftSpec{DriftKind::kRankSwap, 0.08});
      TraceSpec spec;
      spec.arrival_rate = units::per_minute(38);
      spec.horizon = units::minutes(90);
      spec.popularity = truth;
      const RequestTrace trace = generate_trace(rng, spec);

      // Serve today's peak on the currently deployed layout.
      SimEngine engine(sim);
      ReplicatedPolicy policy(controller.layout(), sim);
      const SimResult result = engine.run(policy, trace);

      // Close the loop: learn, decide, and (maybe) migrate overnight.
      controller.observe_epoch(trace.video_counts(kVideos));
      const AdaptationStep step = controller.adapt();

      log.add_row(
          {static_cast<long long>(day), static_cast<long long>(trace.size()),
           100.0 * result.rejection_rate(),
           std::string(step.replanned ? "yes" : "no"),
           static_cast<long long>(step.migration.copies.size()),
           units::to_gigabytes(step.migration.bytes_moved(replica_bytes)),
           units::to_minutes(
               step.migration.copy_time_sec(replica_bytes, units::gbps(1.8)))});
    }
    std::cout << "== Ten days of adaptive VoD fleet operations ==\n\n";
    log.print(std::cout);
    std::cout << "\nThe controller replans only when its popularity estimate "
                 "has moved past the\nthreshold, and the incremental "
                 "placement keeps each overnight migration to a\nhandful of "
                 "replica copies.\n";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
