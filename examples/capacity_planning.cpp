// Capacity planning: how much storage buys how much availability?
//
// The scenario the paper's introduction motivates: an operator with a fixed
// server fleet deciding how much disk to provision per server.  For each
// storage size we compute the optimal replication (Adams) + SLF placement
// and measure the peak-hour rejection rate, producing a
// storage-vs-availability curve with diminishing returns — the quantitative
// basis for the paper's "full replication is generally inefficient" claim.
#include <cstdlib>
#include <iostream>

#include "src/analysis/erlang.h"
#include "src/core/pipeline.h"
#include "src/exp/runner.h"
#include "src/exp/scenario.h"
#include "src/util/cli.h"
#include "src/util/table.h"
#include "src/util/units.h"

int main(int argc, char** argv) {
  using namespace vodrep;
  CliFlags flags("capacity_planning",
                 "Storage-vs-availability provisioning study");
  flags.add_int("videos", 200, "catalogue size M");
  flags.add_double("theta", 0.75, "Zipf skew");
  flags.add_double("lambda", 38.0, "peak arrival rate, requests/minute");
  flags.add_int("runs", 10, "workload realizations per storage point");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    PaperScenario scenario;
    scenario.num_videos = static_cast<std::size_t>(flags.get_int("videos"));
    scenario.theta = flags.get_double("theta");
    const double lambda = flags.get_double("lambda");
    RunnerOptions runner;
    runner.runs = static_cast<std::size_t>(flags.get_int("runs"));

    std::cout << "== Capacity planning: storage vs availability ==\n"
              << "M=" << scenario.num_videos << " videos at 2.7 GB each, "
              << "peak " << lambda << " req/min, theta=" << scenario.theta
              << "\n\n";

    const auto replication = make_replication_policy("adams");
    const auto placement = make_placement_policy("slf");
    ThreadPool pool;

    // Analytic floor: even a perfectly pooled cluster loses the Erlang-B
    // blocking of the offered load — no amount of storage removes it.
    const double offered_erlangs = lambda * scenario.duration_minutes;
    const auto pooled_channels = static_cast<std::size_t>(
        scenario.problem().cluster.total_bandwidth_bps() /
        scenario.problem().bitrate_bps);
    std::cout << "Erlang-B pooled-cluster floor at this load: "
              << 100.0 * erlang_b(offered_erlangs, pooled_channels)
              << " % rejection\n\n";

    Table table({"degree", "storage_GB_per_server", "total_replicas",
                 "reject%", "reject_ci95", "L_eq2%"});
    table.set_precision(2);
    for (double degree : {1.0, 1.1, 1.2, 1.4, 1.6, 2.0, 3.0}) {
      scenario.replication_degree = degree;
      const FixedRateProblem problem = scenario.problem();
      const ProvisioningResult provisioned = provision(
          problem, *replication, *placement, scenario.replica_budget());
      const CellStats stats =
          run_cell(provisioned.layout, scenario.sim_config(),
                   scenario.trace_spec(lambda), runner, &pool);
      table.add_row(
          {degree,
           units::to_gigabytes(problem.cluster.storage_bytes_per_server),
           static_cast<long long>(provisioned.plan.total_replicas()),
           100.0 * stats.rejection_rate.mean(),
           100.0 * stats.rejection_rate.ci95_halfwidth(),
           100.0 * stats.mean_imbalance_eq2.mean()});
    }
    table.print(std::cout);
    std::cout << "\nReading the table: the first ~20% of extra storage "
                 "removes most rejections;\nbeyond that the curve flattens — "
                 "replicate by popularity, do not mirror everything.\n";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
