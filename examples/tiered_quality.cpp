// Tiered quality: scalable encoding bit rates via simulated annealing.
//
// A service offering multiple quality tiers must decide, per video, which
// encoding rate to store and how many replicas to keep — the Section 4.3
// problem.  This example solves it for three operating regimes (storage-
// poor, balanced, storage-rich) and prints the per-tier composition of the
// resulting catalogue, showing how the winning titles flip with the binding
// constraint: storage pressure concentrates quality on hot titles, while
// bandwidth pressure pushes quality onto cold ones (whose streams are rare
// and therefore cheap).
#include <cstdlib>
#include <iostream>
#include <map>

#include "src/core/sa_solver.h"
#include "src/util/cli.h"
#include "src/util/table.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"

int main(int argc, char** argv) {
  using namespace vodrep;
  CliFlags flags("tiered_quality",
                 "Scalable-bit-rate catalogue design via simulated annealing");
  flags.add_int("videos", 60, "catalogue size M");
  flags.add_int("servers", 8, "cluster size N");
  flags.add_double("theta", 0.75, "Zipf skew");
  flags.add_int("seed", 42, "annealer seed");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    ScalableProblem problem;
    problem.videos.duration_sec = units::minutes(90);
    problem.videos.popularity = zipf_popularity(
        static_cast<std::size_t>(flags.get_int("videos")),
        flags.get_double("theta"));
    problem.cluster.num_servers =
        static_cast<std::size_t>(flags.get_int("servers"));
    problem.cluster.bandwidth_bps_per_server = units::gbps(1.8);
    problem.ladder.rates_bps = {units::mbps(1), units::mbps(2), units::mbps(4),
                                units::mbps(8)};
    problem.expected_peak_requests = 30.0 * 90.0;  // 30 req/min peak

    SaSolverOptions options;
    options.anneal.initial_temperature = 1.0;
    options.anneal.moves_per_temperature = 150;
    options.anneal.stall_steps = 30;

    std::cout << "== Tiered-quality catalogue design (ladder 1/2/4/8 Mb/s) "
                 "==\n\n";
    struct Regime {
      const char* name;
      double storage_gb;
    };
    for (const Regime regime : {Regime{"storage-poor", 15.0},
                                Regime{"balanced", 60.0},
                                Regime{"storage-rich", 300.0}}) {
      problem.cluster.storage_bytes_per_server =
          units::gigabytes(regime.storage_gb);
      const SaSolverResult result = solve_scalable(
          problem, static_cast<std::uint64_t>(flags.get_int("seed")), options);

      std::map<std::size_t, std::size_t> tier_counts;
      for (std::size_t idx : result.solution.bitrate_index) ++tier_counts[idx];
      double hot_rate = 0.0;
      double cold_rate = 0.0;
      const std::size_t m = problem.videos.count();
      for (std::size_t i = 0; i < m; ++i) {
        const double rate = units::to_mbps(
            problem.ladder.rates_bps[result.solution.bitrate_index[i]]);
        (i < m / 5 ? hot_rate : cold_rate) += rate;
      }
      hot_rate /= static_cast<double>(m / 5);
      cold_rate /= static_cast<double>(m - m / 5);

      std::cout << "-- " << regime.name << " (" << regime.storage_gb
                << " GB/server), objective " << result.objective
                << (result.feasible ? "" : " [bandwidth-soft]") << " --\n";
      Table table({"tier_Mbps", "videos"});
      for (std::size_t t = 0; t < problem.ladder.size(); ++t) {
        table.add_row({units::to_mbps(problem.ladder.rates_bps[t]),
                       static_cast<long long>(tier_counts[t])});
      }
      table.print(std::cout);
      std::cout << "mean rate of hottest 20%: " << hot_rate
                << " Mb/s, of the rest: " << cold_rate << " Mb/s\n\n";
    }
    std::cout
        << "Which titles win quality depends on the binding constraint: when "
           "STORAGE binds\n(storage-poor), quality concentrates on the hot "
           "titles that earn it; when\nBANDWIDTH binds (storage-rich), "
           "raising a hot title's rate costs lambda*T*p_i\nextra bits per "
           "second of peak traffic, so the optimizer buys cheap quality on\n"
           "cold titles instead — the two faces of the Eq. 1 trade-off.\n";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
