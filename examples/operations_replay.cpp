// Operations replay: persist a workload trace, then replay it against two
// dispatch configurations.
//
// Mirrors a production workflow: capture one representative peak period,
// store it, and evaluate configuration changes offline against the *same*
// workload.  Here the deployed layout is the coarse classification +
// round-robin combination and the change under evaluation is the paper's
// future-work request-redirection strategy, with the backbone budget swept
// to find the point of diminishing returns.
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "src/core/pipeline.h"
#include "src/exp/scenario.h"
#include "src/util/cli.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "src/util/units.h"
#include "src/workload/trace.h"

int main(int argc, char** argv) {
  using namespace vodrep;
  CliFlags flags("operations_replay",
                 "Trace capture/replay and redirection budget sweep");
  flags.add_int("videos", 200, "catalogue size M");
  flags.add_double("theta", 1.0, "Zipf skew");
  flags.add_double("lambda", 38.0, "arrival rate, requests/minute");
  flags.add_int("seed", 11, "trace seed");
  flags.add_string("replication", "classification",
                   "replication policy of the deployed layout");
  flags.add_string("placement", "round-robin",
                   "placement policy of the deployed layout");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    PaperScenario scenario;
    scenario.num_videos = static_cast<std::size_t>(flags.get_int("videos"));
    scenario.theta = flags.get_double("theta");
    scenario.replication_degree = 1.2;

    // Capture: generate one peak period and round-trip it through the trace
    // serialization (in production this would be a file).
    Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
    const RequestTrace captured =
        generate_trace(rng, scenario.trace_spec(flags.get_double("lambda")));
    std::stringstream storage;
    save_trace(storage, captured);
    const RequestTrace trace = load_trace(storage);
    std::cout << "== Operations replay ==\ncaptured " << trace.size()
              << " requests at " << flags.get_double("lambda")
              << " req/min (cluster saturates at "
              << scenario.saturation_rate_per_min() << ")\n\n";

    // Default to the coarse classification+round-robin layout: a deployment
    // whose placement-induced imbalance leaves room for runtime redirection
    // to help (a zipf+slf layout is already balanced enough that redirection
    // barely fires — try --replication=zipf --placement=slf to see that).
    const auto replication =
        make_replication_policy(flags.get_string("replication"));
    const auto placement = make_placement_policy(flags.get_string("placement"));
    const Layout layout = provision(scenario.problem(), *replication,
                                    *placement, scenario.replica_budget())
                              .layout;

    // Replay: strict static round-robin, then redirection with a swept
    // backbone budget.  Identical workload -> differences are pure policy.
    Table table({"config", "backbone_Gbps", "reject%", "redirected%"});
    table.set_precision(2);
    auto replay = [&](const SimConfig& config) {
      SimEngine engine(config);
      ReplicatedPolicy policy(layout, config);
      return engine.run(policy, trace);
    };
    {
      const SimResult base = replay(scenario.sim_config());
      table.add_row({std::string("static round-robin"), 0.0,
                     100.0 * base.rejection_rate(), 0.0});
    }
    for (double backbone_gbps : {0.2, 0.5, 1.0, 2.0, 4.0}) {
      SimConfig config = scenario.sim_config();
      config.redirect = RedirectMode::kBackboneProxy;
      config.backbone_bps = units::gbps(backbone_gbps);
      const SimResult result = replay(config);
      table.add_row({std::string("redirect"), backbone_gbps,
                     100.0 * result.rejection_rate(),
                     100.0 * static_cast<double>(result.redirected) /
                         static_cast<double>(result.total_requests)});
    }
    table.print(std::cout);
    std::cout << "\nRedirection converts placement-induced rejections into "
                 "backbone traffic; the\nbudget sweep shows where extra "
                 "interconnect capacity stops paying off.\n";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
