// vodrep_audit — constraint auditor for layout files.
//
// Loads a placement in the vodrep-layout exchange format and re-checks the
// paper's hard constraints from first principles (src/audit/audit.h):
// distinct in-range replica servers (Eq. 6), 1 <= r_i <= N (Eq. 7),
// per-server storage slots (Eq. 4) and — when a popularity file and a load
// model are given — per-server expected outgoing bandwidth (Eq. 5).
//
//   # audit a planner output against its own implied capacity
//   vodrep_audit --layout=layout.txt
//
//   # full audit including the Eq. 5 expected-load check
//   vodrep_audit --layout=layout.txt --popularity-file=counts.txt
//               --capacity=10 --bandwidth-gbps=1.8 --peak-requests=400
//               --bitrate-mbps=4
//
//   # machine-readable report
//   vodrep_audit --layout=layout.txt --json
//
// Exit status: 0 when every check passes, 1 when any constraint is violated
// (the report still prints), 2 on usage or I/O errors.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "src/audit/audit.h"
#include "src/core/layout_io.h"
#include "src/util/cli.h"
#include "src/util/error.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"

namespace {

using namespace vodrep;

std::vector<double> read_weights(const std::string& path) {
  std::ifstream in(path);
  require(static_cast<bool>(in),
          [&] { return "cannot open popularity file: " + path; });
  std::vector<double> weights;
  double w = 0.0;
  while (in >> w) weights.push_back(w);
  require(!weights.empty(),
          [&] { return "popularity file is empty: " + path; });
  return weights;
}

int run(int argc, char** argv) {
  CliFlags flags("vodrep_audit",
                 "Audit a layout file against the paper's Eq. 4-7 constraints");
  flags.add_string("layout", "", "layout file to audit (required)");
  flags.add_int("capacity", 0,
                "per-server replica slots (Eq. 4); 0 derives "
                "ceil(total_replicas / N) from the layout itself");
  flags.add_string("popularity-file", "",
                   "one weight per line, line number = video id; enables the "
                   "Eq. 5 expected-load check");
  flags.add_double("bandwidth-gbps", 0.0,
                   "per-server link budget for Eq. 5; 0 skips the check");
  flags.add_double("peak-requests", 0.0,
                   "expected peak concurrent requests lambda*T for Eq. 5");
  flags.add_double("bitrate-mbps", 4.0, "common stream bit rate for Eq. 5");
  flags.add_bool("json", false, "emit the report as JSON instead of text");
  if (!flags.parse(argc, argv)) return EXIT_SUCCESS;

  const std::string path = flags.get_string("layout");
  require(!path.empty(), "--layout=<file> is required");
  std::ifstream in(path);
  require(static_cast<bool>(in),
          [&] { return "cannot open layout file: " + path; });
  const PlacementFile placement = load_placement(in);
  const ReplicationPlan plan = placement.layout.implied_plan();

  LayoutAuditor::Limits limits;
  limits.num_servers = placement.num_servers;
  const auto capacity = static_cast<std::size_t>(flags.get_int("capacity"));
  limits.capacity_per_server =
      capacity > 0 ? capacity
                   : (plan.total_replicas() + placement.num_servers - 1) /
                         placement.num_servers;
  limits.bandwidth_bps_per_server =
      flags.get_double("bandwidth-gbps") > 0.0
          ? units::gbps(flags.get_double("bandwidth-gbps"))
          : std::numeric_limits<double>::infinity();
  limits.expected_peak_requests = flags.get_double("peak-requests");
  limits.bitrate_bps = units::mbps(flags.get_double("bitrate-mbps"));

  std::vector<double> popularity;
  const std::vector<double>* popularity_ptr = nullptr;
  if (!flags.get_string("popularity-file").empty()) {
    popularity = normalized_popularity(
        read_weights(flags.get_string("popularity-file")));
    require(popularity.size() == placement.layout.num_videos(), [&] {
      return "popularity file has " + std::to_string(popularity.size()) +
             " weights but the layout has " +
             std::to_string(placement.layout.num_videos()) + " videos";
    });
    popularity_ptr = &popularity;
  }

  const AuditReport report =
      LayoutAuditor(limits).audit(placement.layout, &plan, popularity_ptr);
  if (flags.get_bool("json")) {
    report.write_json(std::cout);
    std::cout << "\n";
  } else {
    std::cout << "== audit: " << path << " ==\n"
              << "videos: " << placement.layout.num_videos()
              << ", servers: " << placement.num_servers
              << ", capacity: " << limits.capacity_per_server
              << " slots/server\n"
              << "checks performed: " << report.checks_performed << "\n"
              << report.summary() << "\n";
  }
  return report.ok() ? EXIT_SUCCESS : EXIT_FAILURE;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }
}
