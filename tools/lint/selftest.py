#!/usr/bin/env python3
"""Self-test for tools/vodrep_lint.

Every lint rule has a fixture tree under tests/lint_selftest/<rule>/ holding
one deliberately-bad file.  For each rule this harness runs the driver with
`--root <fixture> --rules <rule>` and asserts that it (a) exits non-zero and
(b) names the rule and the offending file in its output.  It then re-runs
the driver over the same fixture with the violating line waived via
`// vodrep-lint: allow(<rule>)` to prove suppressions work, and finally
checks the clean-tree contract (exit 0 on a violation-free tree).

If a rule ever regresses to matching nothing — a botched regex, a path-scope
typo — this test is what catches it; the clean-tree ctest alone would keep
passing silently.
"""

import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))) \
    if os.path.basename(os.path.dirname(os.path.abspath(__file__))) == "lint" \
    else os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(REPO, "tools", "vodrep_lint")
FIXTURES = os.path.join(REPO, "tests", "lint_selftest")

# rule -> (fixture-relative bad file, substring that must appear in the
# violation message)
EXPECTED = {
    "unordered-iteration": ("src/core/bad_unordered.cc", "deterministic"),
    "rng-construction": ("src/sim/bad_rng.cc", "src/util/rng"),
    "raw-clock": ("src/sim/bad_clock.cc", "clock shim"),
    "dcheck-side-effects": ("src/core/bad_dcheck.cc", "release builds"),
    "unordered-float-reduction": ("src/core/objective.cc", "associative"),
}


def run_lint(*argv):
    return subprocess.run([sys.executable, LINT, *argv],
                          capture_output=True, text=True)


def fail(msg):
    print("FAIL: %s" % msg)
    sys.exit(1)


def check_rule_fires(rule, bad_file, message_probe):
    fixture = os.path.join(FIXTURES, rule)
    if not os.path.isdir(fixture):
        fail("missing fixture directory %s" % fixture)
    proc = run_lint("--root", fixture, "--rules", rule)
    if proc.returncode != 1:
        fail("rule %s: expected exit 1 on its fixture, got %d\nstdout:\n%s"
             "\nstderr:\n%s" % (rule, proc.returncode, proc.stdout,
                                proc.stderr))
    pattern = r"%s:\d+: \[%s\]" % (re.escape(bad_file), re.escape(rule))
    if not re.search(pattern, proc.stdout):
        fail("rule %s: output does not name the rule and file (wanted "
             "/%s/)\nstdout:\n%s" % (rule, pattern, proc.stdout))
    if message_probe not in proc.stdout:
        fail("rule %s: violation message lost its rationale (wanted "
             "substring %r)\nstdout:\n%s" % (rule, message_probe,
                                             proc.stdout))
    print("ok: %s fires on %s" % (rule, bad_file))


def check_waiver(rule, bad_file):
    """Copy the fixture, append the allow() comment to every reported line,
    and assert the driver now exits 0."""
    fixture = os.path.join(FIXTURES, rule)
    proc = run_lint("--root", fixture, "--rules", rule)
    lines = {int(m.group(1))
             for m in re.finditer(r":(\d+): \[%s\]" % re.escape(rule),
                                  proc.stdout)}
    with tempfile.TemporaryDirectory(prefix="vodrep_lint_waiver_") as tmp:
        src = os.path.join(fixture, bad_file)
        dst = os.path.join(tmp, bad_file)
        os.makedirs(os.path.dirname(dst), exist_ok=True)
        with open(src, encoding="utf-8") as fh:
            content = fh.read().splitlines(keepends=True)
        for ln in lines:
            content[ln - 1] = content[ln - 1].rstrip("\n") + \
                "  // vodrep-lint: allow(%s) selftest waiver\n" % rule
        with open(dst, "w", encoding="utf-8") as fh:
            fh.writelines(content)
        waived = run_lint("--root", tmp, "--rules", rule)
        if waived.returncode != 0:
            fail("rule %s: allow(%s) waiver did not suppress the violation"
                 "\nstdout:\n%s" % (rule, rule, waived.stdout))
    print("ok: %s respects allow() waivers" % rule)


def check_clean_tree_contract():
    with tempfile.TemporaryDirectory(prefix="vodrep_lint_clean_") as tmp:
        os.makedirs(os.path.join(tmp, "src", "core"))
        with open(os.path.join(tmp, "src", "core", "fine.cc"), "w",
                  encoding="utf-8") as fh:
            fh.write("// A std::unordered_map mention in a comment and one\n"
                     "// in a string must not trip the scrubber:\n"
                     "const char* kDoc = \"std::unordered_map<int,int> m;\";\n"
                     "int answer() { return 42; }\n")
        proc = run_lint("--root", tmp)
        if proc.returncode != 0:
            fail("clean tree: expected exit 0, got %d\nstdout:\n%s"
                 % (proc.returncode, proc.stdout))
    print("ok: clean tree (with comment/string decoys) exits 0")


def check_unknown_rule_is_usage_error():
    proc = run_lint("--rules", "no-such-rule")
    if proc.returncode != 2:
        fail("unknown rule: expected exit 2, got %d" % proc.returncode)
    print("ok: unknown rule name is a usage error (exit 2)")


def main():
    if not os.path.isfile(LINT):
        fail("driver not found at %s" % LINT)
    for rule, (bad_file, probe) in sorted(EXPECTED.items()):
        check_rule_fires(rule, bad_file, probe)
        check_waiver(rule, bad_file)
    check_clean_tree_contract()
    check_unknown_rule_is_usage_error()
    print("vodrep_lint selftest: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
