// vodrep_trace — workload trace generation and inspection.
//
//   # one peak period of the paper's workload, saved for replay
//   vodrep_trace --videos=300 --theta=0.75 --lambda=38 --output=peak.trace
//
//   # summarize any saved trace
//   vodrep_trace --info=peak.trace
//
// Pairs with vodrep_plan: generate a trace here, then
// `vodrep_plan --inspect=layout.txt --evaluate=peak.trace`.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "src/util/cli.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"
#include "src/workload/trace.h"

namespace {

using namespace vodrep;

int run(int argc, char** argv) {
  CliFlags flags("vodrep_trace", "Generate or inspect workload traces");
  flags.add_int("videos", 300, "catalogue size M");
  flags.add_double("theta", 0.75, "Zipf skew");
  flags.add_double("lambda", 38.0, "arrival rate, requests/minute");
  flags.add_double("duration-min", 90.0, "peak-period length");
  flags.add_double("completion", 1.0,
                   "probability a viewer watches the whole video");
  flags.add_int("seed", 1, "generation seed");
  flags.add_string("output", "", "write the generated trace here");
  flags.add_string("info", "", "summarize an existing trace file");
  if (!flags.parse(argc, argv)) return EXIT_SUCCESS;

  if (!flags.get_string("info").empty()) {
    std::ifstream in(flags.get_string("info"));
    require(static_cast<bool>(in), [&] {
      return "cannot open trace file: " + flags.get_string("info");
    });
    const RequestTrace trace = load_trace(in);
    require(trace.is_well_formed(), "trace file is malformed");
    std::cout << "== " << flags.get_string("info") << " ==\n"
              << "requests: " << trace.size() << " over "
              << units::to_minutes(trace.horizon) << " minutes ("
              << units::to_per_minute(
                     trace.horizon > 0.0
                         ? static_cast<double>(trace.size()) / trace.horizon
                         : 0.0)
              << " req/min)\n";
    OnlineStats watch;
    std::size_t max_video = 0;
    for (const Request& r : trace.requests) {
      watch.add(r.watch_fraction);
      max_video = std::max(max_video, r.video);
    }
    if (!trace.empty()) {
      std::cout << "video ids: 0.." << max_video
                << ", mean watch fraction: " << watch.mean() << "\n";
      const auto counts = trace.video_counts(max_video + 1);
      Table top({"video", "requests", "share%"});
      top.set_precision(2);
      std::vector<std::size_t> order(counts.size());
      for (std::size_t i = 0; i < counts.size(); ++i) order[i] = i;
      const auto top_n =
          static_cast<std::ptrdiff_t>(std::min<std::size_t>(10, order.size()));
      std::partial_sort(order.begin(), order.begin() + top_n, order.end(),
                        [&](std::size_t a, std::size_t b) {
                          return counts[a] > counts[b];
                        });
      for (std::size_t k = 0; k < std::min<std::size_t>(10, order.size());
           ++k) {
        top.add_row({static_cast<long long>(order[k]),
                     static_cast<long long>(counts[order[k]]),
                     100.0 * static_cast<double>(counts[order[k]]) /
                         static_cast<double>(trace.size())});
      }
      std::cout << "\ntop videos:\n";
      top.print(std::cout);
    }
    return EXIT_SUCCESS;
  }

  TraceSpec spec;
  spec.arrival_rate = units::per_minute(flags.get_double("lambda"));
  spec.horizon = units::minutes(flags.get_double("duration-min"));
  spec.popularity = zipf_popularity(
      static_cast<std::size_t>(flags.get_int("videos")),
      flags.get_double("theta"));
  spec.abandonment.completion_probability = flags.get_double("completion");
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const RequestTrace trace = generate_trace(rng, spec);
  std::cout << "generated " << trace.size() << " requests over "
            << flags.get_double("duration-min") << " minutes\n";
  const std::string output = flags.get_string("output");
  require(!output.empty(), "nothing to do: pass --output or --info");
  std::ofstream out(output);
  require(static_cast<bool>(out),
          [&] { return "cannot write trace file: " + output; });
  save_trace(out, trace);
  std::cout << "trace written to " << output << "\n";
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
}
