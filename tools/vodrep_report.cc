// vodrep_report — renders a vodrep run report (the JSON emitted by
// `vodrep_plan --report-out` or built via src/sim/run_report.h) as a single
// self-contained static HTML page with inline SVG charts: the L(t) load
// timeline with controller replan annotations, per-server link
// utilizations, the rejection-rate trajectory, the typed rejection
// breakdown, and — when the report carries a `profile` section (vodrep_plan
// --profile-out) — a flame-style chart of the run's phase wall times.  No
// external dependencies, no JavaScript — the page is plain
// markup, so it renders anywhere and diffs cleanly in CI artifacts.
//
//   vodrep_report --input=report.json --output=report.html
//   vodrep_report --input=report.json --validate-only
//
// Every invocation validates the report against the versioned schema
// (src/obs/report.h) first and exits non-zero listing the problems when it
// does not conform, so the tool doubles as the CI schema gate.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json_lite.h"
#include "src/obs/report.h"
#include "src/util/cli.h"
#include "src/util/error.h"

namespace {

using namespace vodrep;
using obs::JsonValue;

// Observable-10 palette (colorblind-safe), cycled over server series.
const char* const kPalette[] = {"#4269d0", "#efb118", "#ff725c", "#6cc5b0",
                                "#3ca951", "#ff8ab7", "#a463f2", "#97bbf5",
                                "#9c6b4e", "#9498a0"};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

constexpr double kPlotW = 640.0;
constexpr double kPlotH = 220.0;
constexpr double kMarginL = 56.0;
constexpr double kMarginR = 16.0;
constexpr double kMarginT = 14.0;
constexpr double kMarginB = 34.0;

std::string html_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt(double value, int precision = 3) {
  std::ostringstream os;
  os.precision(precision);
  os << value;
  return os.str();
}

std::vector<double> number_array(const JsonValue& array) {
  std::vector<double> out;
  out.reserve(array.size());
  for (const JsonValue& v : array.items()) out.push_back(v.as_number());
  return out;
}

/// Maps one data series to an SVG polyline "points" attribute within the
/// plot rectangle.  `x` and `y` must be equally sized.
std::string polyline_points(const std::vector<double>& x,
                            const std::vector<double>& y, double x_min,
                            double x_max, double y_min, double y_max) {
  const double x_span = x_max - x_min > 0.0 ? x_max - x_min : 1.0;
  const double y_span = y_max - y_min > 0.0 ? y_max - y_min : 1.0;
  std::ostringstream os;
  os.precision(6);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double px =
        kMarginL + (x[i] - x_min) / x_span * (kPlotW - kMarginL - kMarginR);
    const double py = kMarginT +
                      (1.0 - (y[i] - y_min) / y_span) *
                          (kPlotH - kMarginT - kMarginB);
    if (i > 0) os << ' ';
    os << px << ',' << py;
  }
  return os.str();
}

double x_to_px(double value, double x_min, double x_max) {
  const double span = x_max - x_min > 0.0 ? x_max - x_min : 1.0;
  return kMarginL + (value - x_min) / span * (kPlotW - kMarginL - kMarginR);
}

/// A "nice" rounded upper bound for the y axis so tick labels are readable.
double nice_ceiling(double value) {
  if (value <= 0.0) return 1.0;
  const double magnitude = std::pow(10.0, std::floor(std::log10(value)));
  for (double mult : {1.0, 2.0, 2.5, 5.0, 10.0}) {
    if (value <= mult * magnitude) return mult * magnitude;
  }
  return 10.0 * magnitude;
}

struct Series {
  std::string label;
  std::string color;
  std::vector<double> y;
};

/// One framed line chart: axes, four horizontal gridlines with labels, the
/// series, and optional vertical annotation markers.
void write_line_chart(std::ostream& os, const std::string& title,
                      const std::vector<double>& x,
                      const std::vector<Series>& series,
                      const std::vector<std::pair<double, std::string>>&
                          annotations = {}) {
  const double x_min = x.empty() ? 0.0 : x.front();
  const double x_max = x.empty() ? 1.0 : x.back();
  double y_max = 0.0;
  for (const Series& s : series) {
    for (double v : s.y) y_max = std::max(y_max, v);
  }
  y_max = nice_ceiling(y_max);

  os << "<figure><figcaption>" << html_escape(title) << "</figcaption>\n"
     << "<svg viewBox=\"0 0 " << kPlotW << ' ' << kPlotH
     << "\" role=\"img\">\n";
  // Frame + horizontal gridlines with y labels.
  const double inner_bottom = kPlotH - kMarginB;
  os << "<rect x=\"" << kMarginL << "\" y=\"" << kMarginT << "\" width=\""
     << kPlotW - kMarginL - kMarginR << "\" height=\""
     << inner_bottom - kMarginT
     << "\" fill=\"none\" stroke=\"#d0d4da\"/>\n";
  for (int tick = 0; tick <= 4; ++tick) {
    const double frac = static_cast<double>(tick) / 4.0;
    const double py = kMarginT + (1.0 - frac) * (inner_bottom - kMarginT);
    if (tick > 0 && tick < 4) {
      os << "<line x1=\"" << kMarginL << "\" y1=\"" << py << "\" x2=\""
         << kPlotW - kMarginR << "\" y2=\"" << py
         << "\" stroke=\"#eceef1\"/>\n";
    }
    os << "<text x=\"" << kMarginL - 6 << "\" y=\"" << py + 3
       << "\" text-anchor=\"end\" class=\"tick\">" << fmt(frac * y_max)
       << "</text>\n";
  }
  // X labels: min, mid, max (seconds).
  for (double frac : {0.0, 0.5, 1.0}) {
    const double value = x_min + frac * (x_max - x_min);
    os << "<text x=\"" << x_to_px(value, x_min, x_max) << "\" y=\""
       << inner_bottom + 16 << "\" text-anchor=\"middle\" class=\"tick\">"
       << fmt(value, 4) << "s</text>\n";
  }
  // Annotation markers.
  for (const auto& [time, label] : annotations) {
    const double px = x_to_px(time, x_min, x_max);
    const bool skipped = label == "replan_skipped";
    os << "<line x1=\"" << px << "\" y1=\"" << kMarginT << "\" x2=\"" << px
       << "\" y2=\"" << inner_bottom << "\" stroke=\""
       << (skipped ? "#9498a0" : "#ff725c")
       << "\" stroke-dasharray=\"4 3\"><title>" << html_escape(label)
       << " @ " << fmt(time, 5) << "s</title></line>\n";
  }
  for (const Series& s : series) {
    os << "<polyline fill=\"none\" stroke=\"" << s.color
       << "\" stroke-width=\"1.5\" points=\""
       << polyline_points(x, s.y, x_min, x_max, 0.0, y_max) << "\"><title>"
       << html_escape(s.label) << "</title></polyline>\n";
  }
  os << "</svg>\n";
  if (series.size() > 1) {
    os << "<p class=\"legend\">";
    for (const Series& s : series) {
      os << "<span style=\"color:" << s.color << "\">&#9632; "
         << html_escape(s.label) << "</span> ";
    }
    os << "</p>\n";
  }
  os << "</figure>\n";
}

void write_reason_bars(std::ostream& os, const JsonValue& rejections) {
  const auto total = rejections.at("total").as_uint();
  os << "<figure><figcaption>Rejections by reason (total " << total
     << ")</figcaption>\n<table class=\"bars\">\n";
  std::uint64_t max_count = 1;
  for (const auto& [name, count] : rejections.at("by_reason").members()) {
    (void)name;
    max_count = std::max(max_count, count.as_uint());
  }
  std::size_t color = 0;
  for (const auto& [name, count] : rejections.at("by_reason").members()) {
    const auto value = count.as_uint();
    const double width =
        300.0 * static_cast<double>(value) / static_cast<double>(max_count);
    os << "<tr><td>" << html_escape(name) << "</td><td><div style=\"width:"
       << fmt(std::max(width, value > 0 ? 2.0 : 0.0))
       << "px;background:" << kPalette[color % kPaletteSize]
       << "\" class=\"bar\"></div></td><td>" << value << "</td></tr>\n";
    ++color;
  }
  os << "</table></figure>\n";
}

void write_stat_tiles(std::ostream& os, const JsonValue& final_section,
                      const JsonValue& events) {
  const auto requests = final_section.at("total_requests").as_uint();
  const auto rejected = final_section.at("rejected").as_uint();
  os << "<div class=\"tiles\">\n";
  auto tile = [&os](const std::string& label, const std::string& value) {
    os << "<div class=\"tile\"><div class=\"value\">" << value
       << "</div><div class=\"label\">" << html_escape(label)
       << "</div></div>\n";
  };
  tile("requests", std::to_string(requests));
  tile("rejected",
       std::to_string(rejected) + " (" +
           fmt(100.0 * final_section.at("rejection_rate").as_number()) + "%)");
  tile("mean L (Eq. 2)",
       fmt(100.0 * final_section.at("mean_imbalance_eq2").as_number()) + "%");
  tile("peak L (Eq. 2)",
       fmt(100.0 * final_section.at("peak_imbalance_eq2").as_number()) + "%");
  tile("mean utilization",
       fmt(100.0 * final_section.at("mean_utilization").as_number()) + "%");
  tile("event log",
       std::to_string(events.at("records").size()) + " kept / " +
           std::to_string(events.at("dropped").as_uint()) + " dropped");
  os << "</div>\n";
}

/// Depth of a phase subtree (a leaf is 1).
int phase_depth(const JsonValue& node) {
  int deepest = 1;
  for (const JsonValue& child : node.at("children").items()) {
    deepest = std::max(deepest, 1 + phase_depth(child));
  }
  return deepest;
}

/// One rectangle of the flame-style (icicle) profile chart, then its
/// children nested underneath, each child's width proportional to its share
/// of the parent's wall time.  `color` advances through the palette in
/// traversal order so the layout (and therefore the rendered page) is
/// deterministic for a given report.
void write_flame_node(std::ostream& os, const JsonValue& node, double x0,
                      double width, int depth, std::size_t& color) {
  constexpr double kRowH = 22.0;
  constexpr double kGapY = 2.0;
  const double y = kMarginT + static_cast<double>(depth) * (kRowH + kGapY);
  const auto wall = node.at("wall_ns").as_uint();
  const auto cpu = node.at("cpu_ns").as_uint();
  const auto count = node.at("count").as_uint();
  const std::string name = node.at("name").as_string();
  os << "<rect x=\"" << fmt(x0, 6) << "\" y=\"" << y << "\" width=\""
     << fmt(std::max(width - 1.0, 0.5), 6) << "\" height=\"" << kRowH
     << "\" rx=\"2\" fill=\"" << kPalette[color % kPaletteSize]
     << "\" fill-opacity=\"0.85\"><title>" << html_escape(name) << ": "
     << fmt(static_cast<double>(wall) / 1e6) << " ms wall, "
     << fmt(static_cast<double>(cpu) / 1e6) << " ms cpu, " << count
     << " call" << (count == 1 ? "" : "s") << "</title></rect>\n";
  ++color;
  if (width > 48.0) {
    os << "<text x=\"" << fmt(x0 + 4.0, 6) << "\" y=\"" << y + 15
       << "\" class=\"flame\">" << html_escape(name) << " "
       << fmt(static_cast<double>(wall) / 1e6) << "ms</text>\n";
  }
  double child_x = x0;
  for (const JsonValue& child : node.at("children").items()) {
    const auto child_wall = child.at("wall_ns").as_uint();
    const double child_width =
        wall > 0 ? width * static_cast<double>(child_wall) /
                       static_cast<double>(wall)
                 : 0.0;
    write_flame_node(os, child, child_x, child_width, depth + 1, color);
    child_x += child_width;
  }
}

/// Flame-style rendering of the optional `profile` section: one row per
/// nesting depth (roots on top), bar width proportional to wall time, with
/// the RSS high water and trace-buffer health in the caption line.
void write_profile_flame(std::ostream& os, const JsonValue& profile) {
  const JsonValue& phases = profile.at("phases");
  std::uint64_t total = 0;
  int depth = 0;
  for (const JsonValue& root : phases.items()) {
    total += root.at("wall_ns").as_uint();
    depth = std::max(depth, phase_depth(root));
  }
  os << "<figure><figcaption>Run profile &mdash; wall-time phases (total "
     << fmt(static_cast<double>(total) / 1e6) << " ms)</figcaption>\n";
  if (total == 0 || phases.size() == 0) {
    os << "<p>(profiler enabled but no phases recorded)</p>\n</figure>\n";
    return;
  }
  const double height =
      kMarginT * 2.0 + static_cast<double>(depth) * 24.0;
  os << "<svg viewBox=\"0 0 " << kPlotW << ' ' << height
     << "\" role=\"img\">\n";
  std::size_t color = 0;
  double x = 0.0;
  for (const JsonValue& root : phases.items()) {
    const double width = kPlotW * static_cast<double>(
                                      root.at("wall_ns").as_uint()) /
                         static_cast<double>(total);
    write_flame_node(os, root, x, width, 0, color);
    x += width;
  }
  os << "</svg>\n<p class=\"legend\">max RSS "
     << profile.at("max_rss_kb").as_uint() << " KiB";
  if (profile.has("trace")) {
    os << " &middot; trace events: "
       << profile.at("trace").at("recorded").as_uint() << " recorded, "
       << profile.at("trace").at("dropped").as_uint() << " dropped";
  }
  os << "</p>\n</figure>\n";
}

void render_html(std::ostream& os, const JsonValue& report) {
  const JsonValue& timeline = report.at("timeline");
  const std::vector<double> time = number_array(timeline.at("time"));

  os << "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n"
     << "<title>vodrep run report</title>\n<style>\n"
     << "body{font:14px/1.45 system-ui,sans-serif;margin:2em auto;"
        "max-width:720px;color:#1b1e23}\n"
     << "figure{margin:1.5em 0}figcaption{font-weight:600;margin:0 0 .4em}\n"
     << "svg{width:100%;height:auto;display:block}\n"
     << ".tick{font-size:10px;fill:#6b7077}\n"
     << ".flame{font-size:10px;fill:#fff;pointer-events:none}\n"
     << ".legend{font-size:12px;margin:.3em 0 0}\n"
     << ".tiles{display:flex;flex-wrap:wrap;gap:10px;margin:1em 0}\n"
     << ".tile{border:1px solid #d0d4da;border-radius:6px;padding:8px 14px}\n"
     << ".tile .value{font-size:18px;font-weight:600}\n"
     << ".tile .label{font-size:11px;color:#6b7077}\n"
     << "table.bars{border-collapse:collapse;font-size:13px}\n"
     << "table.bars td{padding:2px 8px}div.bar{height:14px;"
        "border-radius:2px}\n"
     << "pre{background:#f5f6f8;padding:10px;border-radius:6px;"
        "overflow-x:auto;font-size:12px}\n"
     << "</style></head><body>\n<h1>vodrep run report</h1>\n";

  write_stat_tiles(os, report.at("final"), report.at("events"));

  std::vector<std::pair<double, std::string>> annotations;
  for (const JsonValue& annotation : report.at("annotations").items()) {
    annotations.emplace_back(annotation.at("t").as_number(),
                             annotation.at("label").as_string());
  }

  if (!time.empty()) {
    write_line_chart(
        os, "Load-imbalance degree L(t) (Eq. 2)", time,
        {{"L(t)", kPalette[0], number_array(timeline.at("imbalance_eq2"))}},
        annotations);

    std::vector<Series> util_series;
    const JsonValue& per_server = timeline.at("utilization_per_server");
    for (std::size_t s = 0; s < per_server.size(); ++s) {
      util_series.push_back({"server " + std::to_string(s),
                             kPalette[s % kPaletteSize],
                             number_array(per_server.items()[s])});
    }
    write_line_chart(os, "Per-server link utilization l_j(t) / B_j", time,
                     util_series, annotations);

    // Rejection rate: cumulative, plus the per-interval (windowed) rate.
    const std::vector<double> requests = number_array(timeline.at("requests"));
    const std::vector<double> rejected = number_array(timeline.at("rejected"));
    std::vector<double> cumulative(time.size(), 0.0);
    std::vector<double> windowed(time.size(), 0.0);
    for (std::size_t i = 0; i < time.size(); ++i) {
      cumulative[i] = requests[i] > 0.0 ? rejected[i] / requests[i] : 0.0;
      if (i > 0) {
        const double dreq = requests[i] - requests[i - 1];
        windowed[i] = dreq > 0.0 ? (rejected[i] - rejected[i - 1]) / dreq : 0.0;
      }
    }
    write_line_chart(os, "Rejection rate", time,
                     {{"cumulative", kPalette[0], cumulative},
                      {"per interval", kPalette[2], windowed}},
                     annotations);
  } else {
    os << "<p>(no timeline samples in this report)</p>\n";
  }

  write_reason_bars(os, report.at("rejections"));

  if (report.has("profile")) {
    write_profile_flame(os, report.at("profile"));
  }

  os << "<h2>Configuration</h2>\n<pre>" << html_escape(
            report.at("config").dump())
     << "</pre>\n";
  os << "<p class=\"legend\">schema v"
     << report.at("schema_version").as_int() << " &middot; "
     << report.at("timeline").at("num_samples").as_uint()
     << " timeline samples &middot; downsample factor "
     << report.at("timeline").at("downsample_factor").as_uint()
     << " &middot; " << annotations.size() << " annotations</p>\n";
  os << "</body></html>\n";
}

int run(int argc, char** argv) {
  CliFlags flags("vodrep_report",
                 "Validate a vodrep run report and render it as static HTML");
  flags.add_string("input", "", "run-report JSON (from vodrep_plan --report-out)");
  flags.add_string("output", "", "HTML output path (default: <input>.html)");
  flags.add_bool("validate-only", false,
                 "only check the report against the schema, render nothing");
  if (!flags.parse(argc, argv)) return EXIT_SUCCESS;

  const std::string input = flags.get_string("input");
  require(!input.empty(), "--input=<report.json> is required");
  std::ifstream in(input);
  require(static_cast<bool>(in),
          [&] { return "cannot open report file: " + input; });
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const JsonValue report = obs::parse_json(buffer.str());

  const std::vector<std::string> problems = obs::validate_run_report(report);
  if (!problems.empty()) {
    std::cerr << "error: " << input << " is not a valid run report:\n";
    for (const std::string& problem : problems) {
      std::cerr << "  - " << problem << "\n";
    }
    return EXIT_FAILURE;
  }
  std::cout << "report OK: schema v" << report.at("schema_version").as_int()
            << ", " << report.at("timeline").at("num_samples").as_uint()
            << " timeline samples, "
            << report.at("rejections").at("total").as_uint()
            << " rejections\n";
  if (flags.get_bool("validate-only")) return EXIT_SUCCESS;

  std::string output = flags.get_string("output");
  if (output.empty()) output = input + ".html";
  std::ofstream out(output);
  require(out.good(), [&] { return "cannot write html file: " + output; });
  render_html(out, report);
  out.flush();
  require(out.good(), [&] { return "cannot write html file: " + output; });
  std::cout << "html written to " << output << "\n";
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
}
