// vodrep_bench_diff — the perf-regression gate over BENCH_*.json records.
//
// Compares a freshly produced benchmark record (tools/run_benches.sh) to a
// committed baseline and fails when a throughput metric dropped by more
// than its relative threshold:
//
//   vodrep_bench_diff --baseline=BENCH_sim.json --current=fresh.json
//   vodrep_bench_diff --baseline=... --current=... --warn-only
//
// What is compared (every metric is higher-is-better):
//   * every top-level `*_per_sec` number in the baseline, against the same
//     key in the current record (default threshold --threshold, 20%);
//   * every point of `threads_axis` / `shards_axis`, matched by its integer
//     identity fields (chains/shards/threads), comparing each `*_per_sec`
//     field (default threshold --axis-threshold, 25% — scaling points are
//     noisier than single-thread rates).
// Improvements never fail, and metrics present only in the current record
// are ignored (a new benchmark axis must not break older baselines).
//
// The last stdout line is always a machine-readable verdict object:
//   {"kind":"vodrep_bench_diff","verdict":"pass|regression|missing_metric",
//    "checked":N,"regressions":[...],"missing":[...]}
//
// Exit codes: 0 pass, 1 regression, 2 usage error / malformed record /
// metric missing from the current record.  --warn-only reports verdicts the
// same way but exits 0 for regressions and missing metrics, so CI lanes can
// surface perf drift without hard-failing on noisy runners.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json_lite.h"
#include "src/util/cli.h"
#include "src/util/error.h"

namespace {

using namespace vodrep;
using obs::JsonValue;

constexpr int kExitPass = 0;
constexpr int kExitRegression = 1;
constexpr int kExitUsage = 2;

struct Regression {
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  double threshold = 0.0;
};

struct DiffState {
  double threshold = 0.0;
  double axis_threshold = 0.0;
  std::size_t checked = 0;
  std::vector<Regression> regressions;
  std::vector<std::string> missing;
};

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

JsonValue load_record(const std::string& path) {
  std::ifstream in(path);
  require(static_cast<bool>(in),
          [&] { return "cannot open bench record: " + path; });
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const JsonValue record = obs::parse_json(buffer.str());
  require(record.is_object(),
          [&] { return "bench record is not a JSON object: " + path; });
  return record;
}

/// Checks one higher-is-better rate: records a regression when the current
/// value dropped below baseline * (1 - threshold).
void check_rate(DiffState& state, const std::string& metric, double baseline,
                double current, double threshold) {
  ++state.checked;
  const bool regressed =
      baseline > 0.0 && current < baseline * (1.0 - threshold);
  const double delta_pct =
      baseline > 0.0 ? 100.0 * (current - baseline) / baseline : 0.0;
  std::cout << (regressed ? "REGRESSION " : "ok         ") << metric << ": "
            << baseline << " -> " << current << " (" << (delta_pct >= 0 ? "+" : "")
            << delta_pct << " %, threshold -" << 100.0 * threshold << " %)\n";
  if (regressed) {
    state.regressions.push_back({metric, baseline, current, threshold});
  }
}

/// Top-level `*_per_sec` members of the baseline vs the current record.
void diff_top_level(DiffState& state, const JsonValue& baseline,
                    const JsonValue& current) {
  for (const auto& [key, value] : baseline.members()) {
    if (!value.is_number() || !ends_with(key, "_per_sec")) continue;
    if (!current.has(key) || !current.at(key).is_number()) {
      state.missing.push_back(key);
      continue;
    }
    check_rate(state, key, value.as_number(), current.at(key).as_number(),
               state.threshold);
  }
}

/// The identity of one axis point: its non-rate integer fields (chains,
/// shards, threads, pool_threads, ...), serialized as a stable label.
/// Components are sorted so the match is independent of member order.
/// `speedup` is a derived metric, not an identity field — it only looks
/// integral at the S=1 point, where it is 1 by construction.
std::string axis_point_identity(const JsonValue& point) {
  std::vector<std::string> parts;
  for (const auto& [key, value] : point.members()) {
    if (value.kind() != JsonValue::Kind::kInt || ends_with(key, "_per_sec") ||
        key == "speedup") {
      continue;
    }
    parts.push_back(key + "=" + std::to_string(value.as_int()));
  }
  std::sort(parts.begin(), parts.end());
  std::string identity;
  for (const std::string& part : parts) {
    if (!identity.empty()) identity += ",";
    identity += part;
  }
  return identity;
}

/// Matches baseline axis points to current ones by identity and compares
/// their `*_per_sec` fields with the (looser) axis threshold.
void diff_axis(DiffState& state, const std::string& axis,
               const JsonValue& baseline, const JsonValue& current) {
  if (!baseline.has(axis)) return;
  const JsonValue& base_points = baseline.at(axis);
  require(base_points.is_array(),
          [&] { return "baseline " + axis + " is not an array"; });
  if (!current.has(axis) || !current.at(axis).is_array()) {
    state.missing.push_back(axis);
    return;
  }
  for (const JsonValue& base_point : base_points.items()) {
    const std::string identity = axis_point_identity(base_point);
    const JsonValue* match = nullptr;
    for (const JsonValue& cur_point : current.at(axis).items()) {
      if (axis_point_identity(cur_point) == identity) {
        match = &cur_point;
        break;
      }
    }
    const std::string label = axis + "[" + identity + "]";
    if (match == nullptr) {
      state.missing.push_back(label);
      continue;
    }
    for (const auto& [key, value] : base_point.members()) {
      if (!value.is_number() || !ends_with(key, "_per_sec")) continue;
      if (!match->has(key) || !match->at(key).is_number()) {
        state.missing.push_back(label + "." + key);
        continue;
      }
      check_rate(state, label + "." + key, value.as_number(),
                 match->at(key).as_number(), state.axis_threshold);
    }
  }
}

JsonValue verdict_json(const DiffState& state, const std::string& verdict,
                       bool warn_only) {
  JsonValue out = JsonValue::object();
  out.set("kind", JsonValue::string("vodrep_bench_diff"));
  out.set("verdict", JsonValue::string(verdict));
  out.set("checked", JsonValue::integer_u64(state.checked));
  JsonValue regressions = JsonValue::array();
  for (const Regression& r : state.regressions) {
    JsonValue entry = JsonValue::object();
    entry.set("metric", JsonValue::string(r.metric));
    entry.set("baseline", JsonValue::number(r.baseline));
    entry.set("current", JsonValue::number(r.current));
    entry.set("threshold", JsonValue::number(r.threshold));
    regressions.push_back(std::move(entry));
  }
  out.set("regressions", std::move(regressions));
  JsonValue missing = JsonValue::array();
  for (const std::string& name : state.missing) {
    missing.push_back(JsonValue::string(name));
  }
  out.set("missing", std::move(missing));
  out.set("warn_only", JsonValue::boolean(warn_only));
  return out;
}

int run(int argc, char** argv) {
  CliFlags flags("vodrep_bench_diff",
                 "Compare a fresh BENCH_*.json record against a baseline "
                 "and fail on throughput regressions");
  flags.add_string("baseline", "", "committed baseline BENCH_*.json");
  flags.add_string("current", "", "freshly produced BENCH_*.json");
  flags.add_double("threshold", 0.20,
                   "relative drop tolerated on top-level *_per_sec metrics");
  flags.add_double("axis-threshold", 0.25,
                   "relative drop tolerated on threads_axis / shards_axis "
                   "scaling points (noisier than single-thread rates)");
  flags.add_bool("warn-only", false,
                 "report regressions and missing metrics but exit 0 "
                 "(CI warn lane)");
  if (!flags.parse(argc, argv)) return kExitPass;

  require(!flags.get_string("baseline").empty(),
          "--baseline=<BENCH_*.json> is required");
  require(!flags.get_string("current").empty(),
          "--current=<BENCH_*.json> is required");
  require(flags.get_double("threshold") > 0.0 &&
              flags.get_double("threshold") < 1.0,
          "--threshold must be in (0, 1)");
  require(flags.get_double("axis-threshold") > 0.0 &&
              flags.get_double("axis-threshold") < 1.0,
          "--axis-threshold must be in (0, 1)");

  const JsonValue baseline = load_record(flags.get_string("baseline"));
  const JsonValue current = load_record(flags.get_string("current"));
  const bool warn_only = flags.get_bool("warn-only");

  DiffState state;
  state.threshold = flags.get_double("threshold");
  state.axis_threshold = flags.get_double("axis-threshold");
  diff_top_level(state, baseline, current);
  diff_axis(state, "threads_axis", baseline, current);
  diff_axis(state, "shards_axis", baseline, current);
  require(state.checked > 0 || !state.missing.empty(),
          "baseline record carries no *_per_sec metrics to compare");

  for (const std::string& name : state.missing) {
    std::cout << "MISSING    " << name
              << ": present in baseline, absent from current\n";
  }

  // Missing metrics outrank regressions: a record that silently lost a
  // metric must not be promoted just because the surviving ones held up.
  std::string verdict = "pass";
  int exit_code = kExitPass;
  if (!state.regressions.empty()) {
    verdict = "regression";
    exit_code = kExitRegression;
  }
  if (!state.missing.empty()) {
    verdict = "missing_metric";
    exit_code = kExitUsage;
  }
  if (warn_only) exit_code = kExitPass;
  std::cout << verdict_json(state, verdict, warn_only).dump() << "\n";
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return kExitUsage;
  }
}
