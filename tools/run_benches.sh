#!/usr/bin/env bash
# Runs the hot-path and cache benchmarks and writes their trajectory records
# as BENCH_sa.json / BENCH_sim.json / BENCH_cache.json at the repo root, so
# every PR leaves a machine-readable perf datapoint next to the code that
# produced it.
#
#   tools/run_benches.sh [--quick] [<build-dir>]
#
# <build-dir> defaults to ./build.  --quick runs the benchmarks in their CI
# smoke configuration.  Each BENCH file has the schema
#   {"name": ..., "moves_per_sec" | "events_per_sec": ...,
#    "config": <the benchmark's full JSON record>, "git_sha": ...}
# BENCH_sa.json additionally carries "threads_axis" (the parallel-tempering
# chains/threads scaling points) and "hardware_threads"; BENCH_sim.json
# carries "shards_axis" (sharded-engine events/sec vs shard count) and
# "hardware_threads".  Promoted keys are moved out of "config", so each
# value appears exactly once per record.  After writing each file the
# script diffs it against the committed HEAD baseline with
# vodrep_bench_diff --warn-only (perf drift is surfaced, not hard-failed;
# the benchmarks' internal overhead guards are the hard gate).
set -euo pipefail

quick_flag=""
build_dir="build"
for arg in "$@"; do
  case "$arg" in
    --quick) quick_flag="--quick" ;;
    --help|-h)
      sed -n '2,12p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *) build_dir="$arg" ;;
  esac
done

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

for bench in vodrep_sa_hotpath vodrep_sim_hotpath vodrep_prefix_cache; do
  if [[ ! -x "$build_dir/bench/$bench" ]]; then
    echo "error: $build_dir/bench/$bench not built (cmake --build $build_dir)" >&2
    exit 1
  fi
done

git_sha="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

run_bench() {
  local bench="$1" out="$2" rate_key="$3"
  echo "== $bench $quick_flag =="
  # The benchmark's last stdout line is its machine-readable JSON record.
  local raw
  raw="$("$build_dir/bench/$bench" $quick_flag | tee /dev/stderr | tail -1)"
  RAW_JSON="$raw" RATE_KEY="$rate_key" BENCH_NAME="$bench" GIT_SHA="$git_sha" \
  python3 - "$out" <<'PY'
import json
import os
import sys

raw = json.loads(os.environ["RAW_JSON"])
rate_source = {
    "moves_per_sec": "incremental_moves_per_sec",
    "events_per_sec": "engine_events_per_sec",
    "cache_events_per_sec": "cache_events_per_sec",
}[os.environ["RATE_KEY"]]
record = {
    "name": os.environ["BENCH_NAME"],
    os.environ["RATE_KEY"]: raw.pop(rate_source),
    "git_sha": os.environ["GIT_SHA"],
}
# The SA bench also reports parallel-tempering scaling: promote the
# chains/threads axis to the top level so the per-PR perf trajectory
# captures scaling, not just single-thread speed.  Promoted keys are
# *moved* (pop), not copied — each value appears exactly once in the
# record, so vodrep_bench_diff sees a single authoritative copy.
if "chains_axis" in raw:
    record["threads_axis"] = raw.pop("chains_axis")
    record["hardware_threads"] = raw.pop("hardware_threads", None)
# The sim bench reports sharded-engine scaling the same way: promote the
# shards axis (each point result-verified against the monolithic engine)
# so BENCH_sim.json records throughput vs shard count per PR.
if "shards_axis" in raw:
    record["shards_axis"] = raw.pop("shards_axis")
    record["hardware_threads"] = raw.pop("hardware_threads", None)
record["config"] = raw
with open(sys.argv[1], "w") as f:
    json.dump(record, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {sys.argv[1]}")
PY
  diff_against_baseline "$out"
}

# Perf gate (warn lane): diff the fresh record against the committed
# baseline of the same file.  Warn-only here — a local rerun on a loaded
# or differently-sized machine is expected to drift; the hard gate is the
# benchmark's own internal guards (obs/trace overhead budgets), which
# already exit non-zero above.  CI surfaces the verdict the same way.
diff_against_baseline() {
  local out="$1"
  local diff_tool="$build_dir/tools/vodrep_bench_diff"
  if [[ ! -x "$diff_tool" ]]; then
    echo "note: $diff_tool not built; skipping baseline diff for $out"
    return 0
  fi
  if ! git cat-file -e "HEAD:$out" 2>/dev/null; then
    echo "note: no committed baseline HEAD:$out; skipping diff"
    return 0
  fi
  local baseline_tmp
  baseline_tmp="$(mktemp)"
  git show "HEAD:$out" >"$baseline_tmp"
  echo "-- vodrep_bench_diff $out vs HEAD (warn-only) --"
  "$diff_tool" --baseline="$baseline_tmp" --current="$out" --warn-only
  rm -f "$baseline_tmp"
}

run_bench vodrep_sa_hotpath BENCH_sa.json moves_per_sec
run_bench vodrep_sim_hotpath BENCH_sim.json events_per_sec
run_bench vodrep_prefix_cache BENCH_cache.json cache_events_per_sec
