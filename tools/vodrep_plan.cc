// vodrep_plan — the operational placement planner.
//
// Computes a replication plan and placement for a cluster and writes it in
// the vodrep-layout exchange format, or inspects an existing layout file.
//
//   # plan 300 Zipf(0.75) videos onto 8 servers at degree 1.2
//   vodrep_plan --videos=300 --theta=0.75 --servers=8 --degree=1.2
//               --output=layout.txt
//
//   # plan from measured per-video request counts (one weight per line,
//   # line number = video id)
//   vodrep_plan --popularity-file=counts.txt --servers=8 --degree=1.3
//
//   # inspect an existing layout
//   vodrep_plan --inspect=layout.txt
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "src/audit/audit.h"
#include "src/core/layout_io.h"
#include "src/core/objective.h"
#include "src/core/pipeline.h"
#include "src/core/sa_solver.h"
#include "src/core/scalable.h"
#include "src/obs/event_log.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"
#include "src/online/controller.h"
#include "src/sim/prefix_cache_policy.h"
#include "src/sim/replicated_policy.h"
#include "src/sim/run_report.h"
#include "src/sim/sharded_engine.h"
#include "src/sim/simulator.h"
#include "src/util/cli.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"
#include "src/util/units.h"
#include "src/workload/trace.h"
#include "src/util/table.h"
#include "src/workload/popularity.h"

namespace {

using namespace vodrep;

std::vector<double> read_weights(const std::string& path) {
  std::ifstream in(path);
  require(static_cast<bool>(in),
          [&] { return "cannot open popularity file: " + path; });
  std::vector<double> weights;
  double w = 0.0;
  while (in >> w) weights.push_back(w);
  require(!weights.empty(), [&] { return "popularity file is empty: " + path; });
  return weights;
}

void print_summary(const Layout& layout, const std::vector<double>& popularity,
                   std::size_t servers) {
  const ReplicationPlan plan = layout.implied_plan();
  const auto loads = layout.expected_loads(popularity, servers);
  const auto counts = layout.replicas_per_server(servers);
  std::cout << "videos: " << layout.num_videos()
            << ", replicas: " << plan.total_replicas() << " (degree "
            << plan.degree() << ")\n"
            << "expected-load imbalance L (Eq. 2): "
            << 100.0 * imbalance_max_relative(loads) << " %\n\n";
  Table table({"server", "replicas", "expected_load_share%"});
  table.set_precision(2);
  for (std::size_t s = 0; s < servers; ++s) {
    table.add_row({static_cast<long long>(s),
                   static_cast<long long>(counts[s]), 100.0 * loads[s]});
  }
  table.print(std::cout);
}

// Fail-fast diagnostic for every --*-out flag: probe that the path is
// writable before doing any expensive work, so a typoed directory fails in
// milliseconds with a clear message instead of after a full simulation.
// Probes in append mode so an existing file is not truncated by the probe.
void require_writable(const std::string& path, const char* what) {
  if (path.empty()) return;
  std::ofstream probe(path, std::ios::app);
  require(probe.good(), [&] {
    return std::string("cannot write ") + what + " file: " + path;
  });
}

// Enables the obs layer when either export flag is set, and writes the
// requested JSON files on the way out of every code path (plan / inspect /
// evaluate).  The metrics file reconciles bit-exactly with the printed
// summary because both read the same result structs.
class ObsExports {
 public:
  ObsExports(std::string metrics_path, std::string trace_path,
             std::string profile_path)
      : metrics_path_(std::move(metrics_path)),
        trace_path_(std::move(trace_path)),
        profile_path_(std::move(profile_path)) {
    if (!metrics_path_.empty()) obs::set_metrics_enabled(true);
    if (!trace_path_.empty()) obs::TraceRecorder::global().set_enabled(true);
    if (!profile_path_.empty()) obs::RunProfiler::global().set_enabled(true);
  }

  /// The profiler export for embedding into a run report: the versioned
  /// JSON object when --profile-out armed the profiler, null otherwise
  /// (build_run_report then omits the optional `profile` section).
  [[nodiscard]] obs::JsonValue profile_json() const {
    if (profile_path_.empty()) return obs::JsonValue::null();
    return obs::RunProfiler::global().to_json();
  }

  void write() const {
    if (!metrics_path_.empty()) {
      std::ofstream out(metrics_path_);
      require(out.good(),
              [&] { return "cannot write metrics file: " + metrics_path_; });
      obs::metrics().write_json(out);
      out.flush();
      require(out.good(),
              [&] { return "cannot write metrics file: " + metrics_path_; });
      std::cout << "metrics written to " << metrics_path_ << "\n";
    }
    if (!trace_path_.empty()) {
      std::ofstream out(trace_path_);
      require(out.good(),
              [&] { return "cannot write trace file: " + trace_path_; });
      obs::TraceRecorder::global().write_json(out);
      out.flush();
      require(out.good(),
              [&] { return "cannot write trace file: " + trace_path_; });
      std::cout << "trace written to " << trace_path_
                << " (load in Perfetto / chrome://tracing)\n";
    }
    if (!profile_path_.empty()) {
      std::ofstream out(profile_path_);
      require(out.good(),
              [&] { return "cannot write profile file: " + profile_path_; });
      obs::RunProfiler::global().to_json().write(out);
      out << "\n";
      out.flush();
      require(out.good(),
              [&] { return "cannot write profile file: " + profile_path_; });
      std::cout << "profile written to " << profile_path_
                << " (render with vodrep_report)\n";
    }
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
  std::string profile_path_;
};

// Parses the --cache-* flags into prefix-cache tier options.
PrefixCacheOptions make_cache_options(const CliFlags& flags) {
  PrefixCacheOptions options;
  const std::string& policy = flags.get_string("cache-policy");
  if (policy == "lru") {
    options.eviction = CacheEvictionPolicy::kLru;
  } else if (policy == "lfu") {
    options.eviction = CacheEvictionPolicy::kLfu;
  } else {
    require(false, [&] { return "unknown --cache-policy: " + policy; });
  }
  options.capacity_bytes =
      units::gigabytes(flags.get_double("cache-capacity-gb"));
  options.uniform_prefix_fraction = flags.get_double("cache-prefix-fraction");
  return options;
}

// Runs the evaluate/report simulation: the plain replicated organization,
// or — under --prefix-cache — the same origin cluster fronted by an edge
// prefix-cache tier.  --sim-shards 1 (the default) is the monolithic
// SimEngine, bit-identical to prior releases; larger values run the sharded
// engine across that many worker threads.  The sharded replay is proven
// invariant in the shard count (tests/sim_shard_invariance_test.cc), so the
// flag is purely a throughput knob on multicore machines.
SimResult run_sim(const CliFlags& flags, const Layout& layout,
                  const SimConfig& config, const RequestTrace& trace,
                  obs::TimeseriesCollector* timeline,
                  obs::EventLog* event_log) {
  const long long shards_flag = flags.get_int("sim-shards");
  require(shards_flag >= 1, "--sim-shards must be >= 1");
  const auto shards = static_cast<std::size_t>(shards_flag);
  ShardedSimOptions options;
  options.num_shards = shards;
  std::unique_ptr<ThreadPool> pool;
  if (shards > 1) {
    pool = std::make_unique<ThreadPool>(shards);
    options.pool = pool.get();
  }
  if (flags.get_bool("prefix-cache")) {
    return simulate_sharded_prefix_cache(layout, config,
                                         make_cache_options(flags), trace,
                                         options, timeline, event_log);
  }
  return simulate_sharded(layout, config, trace, options, timeline,
                          event_log);
}

void print_cache_summary(const CliFlags& flags, const SimResult& result) {
  if (!flags.get_bool("prefix-cache")) return;
  std::cout << "edge cache (" << flags.get_string("cache-policy")
            << "): " << result.cache_hits << " hits, " << result.cache_misses
            << " misses (" << 100.0 * result.cache_hit_ratio()
            << " % hit ratio), " << result.cache_evictions << " evictions\n";
}

void write_report(const obs::JsonValue& report, const std::string& path) {
  std::ofstream out(path);
  require(out.good(), [&] { return "cannot write report file: " + path; });
  report.write(out);
  out << "\n";
  out.flush();
  require(out.good(), [&] { return "cannot write report file: " + path; });
  std::cout << "run report written to " << path
            << " (render with vodrep_report)\n";
}

int run(int argc, char** argv) {
  CliFlags flags("vodrep_plan", "Compute or inspect a cluster placement");
  flags.add_int("videos", 300, "catalogue size (ignored with --popularity-file)");
  flags.add_double("theta", 0.75, "Zipf skew for synthetic popularity");
  flags.add_string("popularity-file", "",
                   "one weight per line, line number = video id");
  flags.add_int("servers", 8, "cluster size N");
  flags.add_double("degree", 1.2, "target replication degree");
  flags.add_string("replication", "adams",
                   "adams | zipf | classification | uniform");
  flags.add_string("placement", "slf", "slf | round-robin | best-fit");
  flags.add_string("output", "", "write the layout here ('-' for stdout)");
  flags.add_string("inspect", "", "read and summarize an existing layout");
  flags.add_string("evaluate", "",
                   "simulate a layout (--inspect) against this trace file");
  flags.add_double("bandwidth-gbps", 1.8, "per-server bandwidth for --evaluate");
  flags.add_double("bitrate-mbps", 4.0, "stream bit rate for --evaluate");
  flags.add_double("duration-min", 90.0, "video duration for --evaluate");
  flags.add_string("metrics-out", "",
                   "enable metrics and write the registry JSON here");
  flags.add_string("trace-out", "",
                   "enable tracing and write chrome://tracing JSON here");
  flags.add_string("profile-out", "",
                   "enable the run profiler and write its phase/CPU JSON "
                   "here; also embedded in --report-out reports as the "
                   "'profile' section");
  flags.add_string("report-out", "",
                   "simulate the plan and write a self-describing JSON run "
                   "report here (render with vodrep_report)");
  flags.add_int("online-epochs", 0,
                "with --report-out: replay this many epochs through the "
                "adaptive controller (replans annotated on the timeline)");
  flags.add_double("sim-lambda", 0.0,
                   "report simulation arrival rate in requests/sec "
                   "(0 = auto-size to ~90% cluster stream capacity)");
  flags.add_int("sim-seed", 2002, "report simulation trace seed");
  flags.add_int("sim-shards", 1,
                "shard the evaluate/report simulation across this many "
                "worker threads (1 = monolithic engine; the result is "
                "invariant in the shard count)");
  flags.add_double("timeline-interval", 0.0,
                   "report timeline sampling interval in seconds "
                   "(0 = horizon / 64)");
  flags.add_int("event-log-cap", 10000,
                "report per-request event-log capacity (older requests "
                "beyond it are dropped and counted)");
  flags.add_int("sa-chains", 0,
                "plan scalable encoding rates with the Section 4.3 "
                "simulated-annealing solver using this many "
                "parallel-tempering chains (0 = heuristic pipeline)");
  flags.add_int("sa-swap-period", 8,
                "temperature steps between replica-exchange rounds");
  flags.add_double("sa-temp-spread", 1.15,
                   "geometric spread between adjacent tempering-chain "
                   "temperatures (> 1; 1.15 keeps a 32-chain ladder within "
                   "~2 decades, see DESIGN.md)");
  flags.add_bool("prefix-cache", false,
                 "front the simulated origin cluster with an edge "
                 "prefix-cache tier (--evaluate / --report-out)");
  flags.add_string("cache-policy", "lru",
                   "edge-cache eviction policy: lru | lfu");
  flags.add_double("cache-capacity-gb", 8.0,
                   "edge prefix-cache capacity in GB (0 = tier disabled, "
                   "identical to the plain replicated simulation)");
  flags.add_double("cache-prefix-fraction", 0.25,
                   "stored prefix fraction per video, in (0, 1]");
  flags.add_int("sa-temp-steps", 200, "annealing temperature-step cap");
  flags.add_int("sa-moves", 200, "moves per temperature step");
  flags.add_int("sa-seed", 2002, "annealer seed (output is deterministic in "
                                 "it, independent of thread count)");
  flags.add_double("sa-lambda", 30.0,
                   "peak arrival rate for the SA load model, requests/minute");
  flags.add_double("storage-gb", 120.0,
                   "per-server storage budget for --sa-chains, GB");
  if (!flags.parse(argc, argv)) return EXIT_SUCCESS;

  const ObsExports exports(flags.get_string("metrics-out"),
                           flags.get_string("trace-out"),
                           flags.get_string("profile-out"));
  require_writable(flags.get_string("metrics-out"), "metrics");
  require_writable(flags.get_string("trace-out"), "trace");
  require_writable(flags.get_string("profile-out"), "profile");
  require_writable(flags.get_string("report-out"), "report");
  const auto servers = static_cast<std::size_t>(flags.get_int("servers"));
  const std::string report_path = flags.get_string("report-out");

  if (!flags.get_string("evaluate").empty()) {
    require(!flags.get_string("inspect").empty(),
            "--evaluate needs --inspect=<layout file>");
    std::ifstream layout_in(flags.get_string("inspect"));
    require(static_cast<bool>(layout_in), [&] {
      return "cannot open layout file: " + flags.get_string("inspect");
    });
    const PlacementFile placement = load_placement(layout_in);
    std::ifstream trace_in(flags.get_string("evaluate"));
    require(static_cast<bool>(trace_in), [&] {
      return "cannot open trace file: " + flags.get_string("evaluate");
    });
    const RequestTrace trace = load_trace(trace_in);

    SimConfig config;
    config.num_servers = placement.num_servers;
    config.bandwidth_bps_per_server =
        units::gbps(flags.get_double("bandwidth-gbps"));
    config.stream_bitrate_bps = units::mbps(flags.get_double("bitrate-mbps"));
    config.video_duration_sec =
        units::minutes(flags.get_double("duration-min"));
    std::unique_ptr<obs::TimeseriesCollector> timeline;
    std::unique_ptr<obs::EventLog> event_log;
    if (!report_path.empty()) {
      double interval = flags.get_double("timeline-interval");
      if (interval <= 0.0) interval = trace.horizon / 64.0;
      obs::TimeseriesConfig ts;
      ts.interval_sec = interval;
      timeline = std::make_unique<obs::TimeseriesCollector>(
          ts, config.num_servers);
      event_log = std::make_unique<obs::EventLog>(
          static_cast<std::size_t>(flags.get_int("event-log-cap")));
    }
    const SimResult result = run_sim(flags, placement.layout, config, trace,
                                     timeline.get(), event_log.get());
    if (!report_path.empty()) {
      obs::JsonValue extra = obs::JsonValue::object();
      extra.set("layout_file",
                obs::JsonValue::string(flags.get_string("inspect")));
      extra.set("trace_file",
                obs::JsonValue::string(flags.get_string("evaluate")));
      extra.set("sim_horizon_sec", obs::JsonValue::number(trace.horizon));
      extra.set("prefix_cache",
                obs::JsonValue::boolean(flags.get_bool("prefix-cache")));
      write_report(build_run_report(config, result, timeline.get(),
                                    event_log.get(), std::move(extra),
                                    exports.profile_json()),
                   report_path);
    }

    std::cout << "== " << flags.get_string("inspect") << " vs "
              << flags.get_string("evaluate") << " ==\n"
              << "requests: " << result.total_requests
              << ", rejected: " << result.rejected << " ("
              << 100.0 * result.rejection_rate() << " %)\n"
              << "time-averaged L (Eq. 2): "
              << 100.0 * result.mean_imbalance_eq2 << " %\n"
              << "mean link utilization: "
              << 100.0 * result.mean_utilization() << " %\n";
    print_cache_summary(flags, result);
    exports.write();
    return EXIT_SUCCESS;
  }

  if (!flags.get_string("inspect").empty()) {
    require(report_path.empty(),
            "--report-out needs a simulation: pair --inspect with --evaluate, "
            "or drop --inspect to simulate a fresh plan");
    std::ifstream in(flags.get_string("inspect"));
    require(static_cast<bool>(in), [&] {
      return "cannot open layout file: " + flags.get_string("inspect");
    });
    const PlacementFile placement = load_placement(in);
    std::cout << "== " << flags.get_string("inspect") << " ==\n";
    // Without the original popularity, summarize with a uniform one.
    print_summary(placement.layout,
                  uniform_popularity(placement.layout.num_videos()),
                  placement.num_servers);
    std::cout << "\n(expected loads shown under uniform popularity; re-run "
                 "with the original\n popularity file for the provisioning "
                 "view)\n";
    exports.write();
    return EXIT_SUCCESS;
  }

  std::vector<double> popularity;
  if (!flags.get_string("popularity-file").empty()) {
    popularity = normalized_popularity(
        read_weights(flags.get_string("popularity-file")));
  } else {
    popularity = zipf_popularity(
        static_cast<std::size_t>(flags.get_int("videos")),
        flags.get_double("theta"));
  }
  require(flags.get_int("sa-chains") >= 0, "--sa-chains must be >= 0");
  const auto sa_chains = static_cast<std::size_t>(flags.get_int("sa-chains"));
  if (sa_chains >= 1) {
    // Scalable-rate planning (paper Section 4.3): jointly choose encoding
    // bit rates, replica counts, and placement by parallel-tempering SA.
    require(report_path.empty(),
            "--sa-chains plans encoding rates, which the run-report "
            "simulation does not model yet; drop --report-out");
    ScalableProblem problem;
    problem.videos.duration_sec =
        units::minutes(flags.get_double("duration-min"));
    problem.videos.popularity = popularity;
    problem.cluster.num_servers = servers;
    problem.cluster.bandwidth_bps_per_server =
        units::gbps(flags.get_double("bandwidth-gbps"));
    problem.cluster.storage_bytes_per_server =
        units::gigabytes(flags.get_double("storage-gb"));
    problem.ladder.rates_bps = {units::mbps(1), units::mbps(2),
                                units::mbps(3), units::mbps(4),
                                units::mbps(6), units::mbps(8)};
    problem.expected_peak_requests =
        flags.get_double("sa-lambda") * flags.get_double("duration-min");
    problem.weights.alpha = 1.0;
    problem.weights.beta = 1.0;

    SaSolverOptions options;
    options.anneal.initial_temperature = 1.0;
    options.anneal.final_temperature = 1e-3;
    options.anneal.max_temperature_steps =
        static_cast<std::size_t>(flags.get_int("sa-temp-steps"));
    options.anneal.moves_per_temperature =
        static_cast<std::size_t>(flags.get_int("sa-moves"));
    options.anneal.swap_period =
        static_cast<std::size_t>(flags.get_int("sa-swap-period"));
    options.anneal.temperature_spread = flags.get_double("sa-temp-spread");
    options.chains = sa_chains;
    ThreadPool pool;
    const SaSolverResult result = solve_scalable(
        problem, static_cast<std::uint64_t>(flags.get_int("sa-seed")),
        options, sa_chains > 1 ? &pool : nullptr);

    // Hard-constraint audit (Eqs. 4, 6, 7 from first principles); bandwidth
    // (Eq. 5) is the solver's soft constraint, reported via `feasible`.
    const AuditReport audit =
        LayoutAuditor::audit_solution(problem, result.solution);
    require(audit.ok_ignoring(ViolationKind::kBandwidthOverflow),
            [&] { return "SA layout failed audit: " + audit.summary(); });

    double mean_rate_bps = 0.0;
    double replicas = 0.0;
    for (double rate : result.solution.bitrates(problem.ladder)) {
      mean_rate_bps += rate;
    }
    for (const auto& hosts : result.solution.placement) {
      replicas += static_cast<double>(hosts.size());
    }
    const double m_count = static_cast<double>(popularity.size());
    std::cout << "== plan: simulated annealing (" << sa_chains
              << " tempering chain" << (sa_chains > 1 ? "s" : "")
              << ", swap period " << options.anneal.swap_period << ") ==\n"
              << "objective (Eq. 1): " << result.objective
              << (result.feasible ? "  [feasible]"
                                  : "  [bandwidth overflow tolerated]")
              << "\nmean encoding rate: "
              << units::to_mbps(mean_rate_bps / m_count)
              << " Mb/s, mean degree: " << replicas / m_count << "\n"
              << "audit: " << audit.summary() << "\n"
              << "winning chain: " << result.anneal.winning_chain << " of "
              << sa_chains << ", exchanges accepted: "
              << result.anneal.swap_accepts << "/"
              << result.anneal.swap_attempts << "\n";
    Table chain_table(
        {"chain", "proposed", "accepted", "noop", "swaps", "best_cost"});
    chain_table.set_precision(4);
    for (std::size_t c = 0; c < result.anneal.chains.size(); ++c) {
      const AnnealChainStats& stats = result.anneal.chains[c];
      chain_table.add_row({static_cast<long long>(c),
                           static_cast<long long>(stats.moves_proposed),
                           static_cast<long long>(stats.moves_accepted),
                           static_cast<long long>(stats.moves_noop),
                           static_cast<long long>(stats.swaps_accepted),
                           stats.best_cost});
    }
    chain_table.print(std::cout);
    exports.write();
    return EXIT_SUCCESS;
  }

  const auto budget = static_cast<std::size_t>(
      flags.get_double("degree") * static_cast<double>(popularity.size()));
  const std::size_t capacity = (budget + servers - 1) / servers;

  const auto replication =
      make_replication_policy(flags.get_string("replication"));
  const auto placement_policy =
      make_placement_policy(flags.get_string("placement"));
  ReplicationPlan plan;
  Layout layout;
  {
    VODREP_TRACE_SCOPE("plan.provision");
    plan = replication->replicate(popularity, servers, budget);
    layout = placement_policy->place(plan, popularity, servers, capacity);
  }
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry& registry = obs::metrics();
    registry.counter("plan.videos").add(layout.num_videos());
    registry.counter("plan.replicas").add(plan.total_replicas());
    registry.gauge("plan.degree").set(plan.degree());
    registry.gauge("plan.expected_imbalance_eq2")
        .set(imbalance_max_relative(
            layout.expected_loads(popularity, servers)));
  }

  std::cout << "== plan: " << flags.get_string("replication") << " + "
            << flags.get_string("placement") << " ==\n";
  print_summary(layout, popularity, servers);

  const std::string output = flags.get_string("output");
  if (!output.empty()) {
    PlacementFile placement;
    placement.num_servers = servers;
    placement.layout = layout;
    if (output == "-") {
      save_placement(std::cout, placement);
    } else {
      std::ofstream out(output);
      require(static_cast<bool>(out),
              [&] { return "cannot write layout file: " + output; });
      save_placement(out, placement);
      std::cout << "\nlayout written to " << output << "\n";
    }
  }

  if (!report_path.empty()) {
    // Simulate the freshly planned layout on a synthetic Poisson/Zipf trace
    // and capture the full observability record: load timeline, per-request
    // event log, and the typed rejection breakdown.
    SimConfig sim;
    sim.num_servers = servers;
    sim.bandwidth_bps_per_server =
        units::gbps(flags.get_double("bandwidth-gbps"));
    sim.stream_bitrate_bps = units::mbps(flags.get_double("bitrate-mbps"));
    sim.video_duration_sec = units::minutes(flags.get_double("duration-min"));
    const double horizon = sim.video_duration_sec;

    double lambda = flags.get_double("sim-lambda");
    if (lambda <= 0.0) {
      // Auto-size to ~90% of the cluster's steady-state stream capacity:
      // concurrency lambda * duration = 0.9 * N * (B / bitrate).
      lambda = 0.9 * static_cast<double>(servers) *
               (sim.bandwidth_bps_per_server / sim.stream_bitrate_bps) /
               sim.video_duration_sec;
    }
    double interval = flags.get_double("timeline-interval");
    if (interval <= 0.0) interval = horizon / 64.0;

    obs::TimeseriesConfig ts;
    ts.interval_sec = interval;
    obs::TimeseriesCollector timeline(ts, servers);
    obs::EventLog event_log(
        static_cast<std::size_t>(flags.get_int("event-log-cap")));
    Rng rng(static_cast<std::uint64_t>(flags.get_int("sim-seed")));
    TraceSpec spec;
    spec.arrival_rate = lambda;
    spec.horizon = horizon;
    spec.popularity = popularity;

    const auto epochs =
        static_cast<std::size_t>(flags.get_int("online-epochs"));
    std::vector<SimResult> results;
    if (epochs == 0) {
      results.push_back(run_sim(flags, layout, sim, generate_trace(rng, spec),
                                &timeline, &event_log));
    } else {
      require(!flags.get_bool("prefix-cache"),
              "--prefix-cache does not compose with --online-epochs yet: the "
              "adaptive controller replans the origin layout but the edge "
              "tier's residency would carry across replans; drop one");
      require(flags.get_int("sim-shards") <= 1,
              "--sim-shards does not compose with --online-epochs: the "
              "adaptive controller replans the layout between epochs, which "
              "re-couples servers across shard boundaries; run the online "
              "path with --sim-shards 1");
      // Multi-epoch online path: the adaptive controller re-provisions
      // between epochs; each replan lands on the timeline as an annotation
      // at its (global-time) epoch boundary.
      ControllerConfig controller_config;
      controller_config.replication = flags.get_string("replication");
      controller_config.placement = flags.get_string("placement");
      controller_config.num_servers = servers;
      controller_config.budget = budget;
      controller_config.capacity_per_server = capacity;
      AdaptiveController controller(controller_config, popularity);
      controller.set_timeline(&timeline);
      for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
        const RequestTrace trace = generate_trace(rng, spec);
        SimEngine engine(sim);
        ReplicatedPolicy policy(controller.layout(), sim);
        const double offset = static_cast<double>(epoch) * horizon;
        timeline.set_time_offset(offset);
        event_log.set_time_offset(offset);
        engine.attach_timeline(&timeline);
        engine.attach_event_log(&event_log);
        results.push_back(engine.run(policy, trace));
        controller.observe_epoch(trace.video_counts(popularity.size()));
        (void)controller.adapt(static_cast<double>(epoch + 1) * horizon);
      }
    }
    const SimResult result = aggregate_results(results);

    obs::JsonValue extra = obs::JsonValue::object();
    extra.set("num_videos", obs::JsonValue::integer_u64(popularity.size()));
    extra.set("replication",
              obs::JsonValue::string(flags.get_string("replication")));
    extra.set("placement",
              obs::JsonValue::string(flags.get_string("placement")));
    extra.set("replica_budget", obs::JsonValue::integer_u64(budget));
    extra.set("sim_lambda_per_sec", obs::JsonValue::number(lambda));
    extra.set("sim_seed", obs::JsonValue::integer(flags.get_int("sim-seed")));
    extra.set("sim_horizon_sec", obs::JsonValue::number(horizon));
    extra.set("online_epochs", obs::JsonValue::integer_u64(epochs));
    extra.set("prefix_cache",
              obs::JsonValue::boolean(flags.get_bool("prefix-cache")));
    write_report(build_run_report(sim, result, &timeline, &event_log,
                                  std::move(extra), exports.profile_json()),
                 report_path);
    std::cout << "report simulation: " << result.total_requests
              << " requests, " << result.rejected << " rejected ("
              << 100.0 * result.rejection_rate() << " %), "
              << timeline.size() << " timeline samples\n";
    print_cache_summary(flags, result);
  }
  exports.write();
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
}
