// vodrep_plan — the operational placement planner.
//
// Computes a replication plan and placement for a cluster and writes it in
// the vodrep-layout exchange format, or inspects an existing layout file.
//
//   # plan 300 Zipf(0.75) videos onto 8 servers at degree 1.2
//   vodrep_plan --videos=300 --theta=0.75 --servers=8 --degree=1.2
//               --output=layout.txt
//
//   # plan from measured per-video request counts (one weight per line,
//   # line number = video id)
//   vodrep_plan --popularity-file=counts.txt --servers=8 --degree=1.3
//
//   # inspect an existing layout
//   vodrep_plan --inspect=layout.txt
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/core/layout_io.h"
#include "src/core/objective.h"
#include "src/core/pipeline.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/util/cli.h"
#include "src/util/error.h"
#include "src/util/units.h"
#include "src/workload/trace.h"
#include "src/util/table.h"
#include "src/workload/popularity.h"

namespace {

using namespace vodrep;

std::vector<double> read_weights(const std::string& path) {
  std::ifstream in(path);
  require(static_cast<bool>(in),
          [&] { return "cannot open popularity file: " + path; });
  std::vector<double> weights;
  double w = 0.0;
  while (in >> w) weights.push_back(w);
  require(!weights.empty(), [&] { return "popularity file is empty: " + path; });
  return weights;
}

void print_summary(const Layout& layout, const std::vector<double>& popularity,
                   std::size_t servers) {
  const ReplicationPlan plan = layout.implied_plan();
  const auto loads = layout.expected_loads(popularity, servers);
  const auto counts = layout.replicas_per_server(servers);
  std::cout << "videos: " << layout.num_videos()
            << ", replicas: " << plan.total_replicas() << " (degree "
            << plan.degree() << ")\n"
            << "expected-load imbalance L (Eq. 2): "
            << 100.0 * imbalance_max_relative(loads) << " %\n\n";
  Table table({"server", "replicas", "expected_load_share%"});
  table.set_precision(2);
  for (std::size_t s = 0; s < servers; ++s) {
    table.add_row({static_cast<long long>(s),
                   static_cast<long long>(counts[s]), 100.0 * loads[s]});
  }
  table.print(std::cout);
}

// Enables the obs layer when either export flag is set, and writes the
// requested JSON files on the way out of every code path (plan / inspect /
// evaluate).  The metrics file reconciles bit-exactly with the printed
// summary because both read the same result structs.
class ObsExports {
 public:
  ObsExports(std::string metrics_path, std::string trace_path)
      : metrics_path_(std::move(metrics_path)),
        trace_path_(std::move(trace_path)) {
    if (!metrics_path_.empty()) obs::set_metrics_enabled(true);
    if (!trace_path_.empty()) obs::TraceRecorder::global().set_enabled(true);
  }

  void write() const {
    if (!metrics_path_.empty()) {
      std::ofstream out(metrics_path_);
      require(out.good(),
              [&] { return "cannot write metrics file: " + metrics_path_; });
      obs::metrics().write_json(out);
      std::cout << "metrics written to " << metrics_path_ << "\n";
    }
    if (!trace_path_.empty()) {
      std::ofstream out(trace_path_);
      require(out.good(),
              [&] { return "cannot write trace file: " + trace_path_; });
      obs::TraceRecorder::global().write_json(out);
      std::cout << "trace written to " << trace_path_
                << " (load in Perfetto / chrome://tracing)\n";
    }
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
};

int run(int argc, char** argv) {
  CliFlags flags("vodrep_plan", "Compute or inspect a cluster placement");
  flags.add_int("videos", 300, "catalogue size (ignored with --popularity-file)");
  flags.add_double("theta", 0.75, "Zipf skew for synthetic popularity");
  flags.add_string("popularity-file", "",
                   "one weight per line, line number = video id");
  flags.add_int("servers", 8, "cluster size N");
  flags.add_double("degree", 1.2, "target replication degree");
  flags.add_string("replication", "adams",
                   "adams | zipf | classification | uniform");
  flags.add_string("placement", "slf", "slf | round-robin | best-fit");
  flags.add_string("output", "", "write the layout here ('-' for stdout)");
  flags.add_string("inspect", "", "read and summarize an existing layout");
  flags.add_string("evaluate", "",
                   "simulate a layout (--inspect) against this trace file");
  flags.add_double("bandwidth-gbps", 1.8, "per-server bandwidth for --evaluate");
  flags.add_double("bitrate-mbps", 4.0, "stream bit rate for --evaluate");
  flags.add_double("duration-min", 90.0, "video duration for --evaluate");
  flags.add_string("metrics-out", "",
                   "enable metrics and write the registry JSON here");
  flags.add_string("trace-out", "",
                   "enable tracing and write chrome://tracing JSON here");
  if (!flags.parse(argc, argv)) return EXIT_SUCCESS;

  const ObsExports exports(flags.get_string("metrics-out"),
                           flags.get_string("trace-out"));
  const auto servers = static_cast<std::size_t>(flags.get_int("servers"));

  if (!flags.get_string("evaluate").empty()) {
    require(!flags.get_string("inspect").empty(),
            "--evaluate needs --inspect=<layout file>");
    std::ifstream layout_in(flags.get_string("inspect"));
    require(static_cast<bool>(layout_in), [&] {
      return "cannot open layout file: " + flags.get_string("inspect");
    });
    const PlacementFile placement = load_placement(layout_in);
    std::ifstream trace_in(flags.get_string("evaluate"));
    require(static_cast<bool>(trace_in), [&] {
      return "cannot open trace file: " + flags.get_string("evaluate");
    });
    const RequestTrace trace = load_trace(trace_in);

    SimConfig config;
    config.num_servers = placement.num_servers;
    config.bandwidth_bps_per_server =
        units::gbps(flags.get_double("bandwidth-gbps"));
    config.stream_bitrate_bps = units::mbps(flags.get_double("bitrate-mbps"));
    config.video_duration_sec =
        units::minutes(flags.get_double("duration-min"));
    SimEngine engine(config);
    ReplicatedPolicy policy(placement.layout, config);
    const SimResult result = engine.run(policy, trace);

    std::cout << "== " << flags.get_string("inspect") << " vs "
              << flags.get_string("evaluate") << " ==\n"
              << "requests: " << result.total_requests
              << ", rejected: " << result.rejected << " ("
              << 100.0 * result.rejection_rate() << " %)\n"
              << "time-averaged L (Eq. 2): "
              << 100.0 * result.mean_imbalance_eq2 << " %\n"
              << "mean link utilization: "
              << 100.0 * result.mean_utilization() << " %\n";
    exports.write();
    return EXIT_SUCCESS;
  }

  if (!flags.get_string("inspect").empty()) {
    std::ifstream in(flags.get_string("inspect"));
    require(static_cast<bool>(in), [&] {
      return "cannot open layout file: " + flags.get_string("inspect");
    });
    const PlacementFile placement = load_placement(in);
    std::cout << "== " << flags.get_string("inspect") << " ==\n";
    // Without the original popularity, summarize with a uniform one.
    print_summary(placement.layout,
                  uniform_popularity(placement.layout.num_videos()),
                  placement.num_servers);
    std::cout << "\n(expected loads shown under uniform popularity; re-run "
                 "with the original\n popularity file for the provisioning "
                 "view)\n";
    exports.write();
    return EXIT_SUCCESS;
  }

  std::vector<double> popularity;
  if (!flags.get_string("popularity-file").empty()) {
    popularity = normalized_popularity(
        read_weights(flags.get_string("popularity-file")));
  } else {
    popularity = zipf_popularity(
        static_cast<std::size_t>(flags.get_int("videos")),
        flags.get_double("theta"));
  }
  const auto budget = static_cast<std::size_t>(
      flags.get_double("degree") * static_cast<double>(popularity.size()));
  const std::size_t capacity = (budget + servers - 1) / servers;

  const auto replication =
      make_replication_policy(flags.get_string("replication"));
  const auto placement_policy =
      make_placement_policy(flags.get_string("placement"));
  ReplicationPlan plan;
  Layout layout;
  {
    VODREP_TRACE_SCOPE("plan.provision");
    plan = replication->replicate(popularity, servers, budget);
    layout = placement_policy->place(plan, popularity, servers, capacity);
  }
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry& registry = obs::metrics();
    registry.counter("plan.videos").add(layout.num_videos());
    registry.counter("plan.replicas").add(plan.total_replicas());
    registry.gauge("plan.degree").set(plan.degree());
    registry.gauge("plan.expected_imbalance_eq2")
        .set(imbalance_max_relative(
            layout.expected_loads(popularity, servers)));
  }

  std::cout << "== plan: " << flags.get_string("replication") << " + "
            << flags.get_string("placement") << " ==\n";
  print_summary(layout, popularity, servers);

  const std::string output = flags.get_string("output");
  if (!output.empty()) {
    PlacementFile placement;
    placement.num_servers = servers;
    placement.layout = layout;
    if (output == "-") {
      save_placement(std::cout, placement);
    } else {
      std::ofstream out(output);
      require(static_cast<bool>(out),
              [&] { return "cannot write layout file: " + output; });
      save_placement(out, placement);
      std::cout << "\nlayout written to " << output << "\n";
    }
  }
  exports.write();
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
}
