#!/usr/bin/env python3
"""Self-test for vodrep_bench_diff against the committed fixture records.

Usage: bench_diff_selftest.py <vodrep_bench_diff binary> <fixtures dir>

Asserts the documented exit codes (0 pass, 1 regression, 2 missing metric)
and that the last stdout line is the machine-readable verdict object with
the matching verdict string.  A gate whose fixtures stop tripping it is a
silent regression, the same failure mode the lint selftest guards against.
"""
import json
import os
import subprocess
import sys


def run_case(binary, fixtures, current, extra_args=()):
    result = subprocess.run(
        [
            binary,
            f"--baseline={os.path.join(fixtures, 'baseline.json')}",
            f"--current={os.path.join(fixtures, current)}",
            *extra_args,
        ],
        capture_output=True,
        text=True,
    )
    lines = [line for line in result.stdout.splitlines() if line.strip()]
    if not lines:
        raise AssertionError(f"{current}: no stdout from vodrep_bench_diff")
    verdict = json.loads(lines[-1])
    if verdict.get("kind") != "vodrep_bench_diff":
        raise AssertionError(f"{current}: last line is not a verdict object")
    return result.returncode, verdict


def expect(condition, message):
    if not condition:
        raise AssertionError(message)


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    binary, fixtures = sys.argv[1], sys.argv[2]

    code, verdict = run_case(binary, fixtures, "current_pass.json")
    expect(code == 0, f"pass fixture: expected exit 0, got {code}")
    expect(verdict["verdict"] == "pass", f"pass fixture: {verdict}")
    expect(verdict["checked"] == 3, f"pass fixture checked: {verdict}")
    expect(verdict["regressions"] == [], f"pass fixture: {verdict}")

    # The injected regression drops events_per_sec by 25% (> the 20%
    # threshold) while the axis points hold, so exactly one metric trips.
    code, verdict = run_case(binary, fixtures, "current_regression.json")
    expect(code == 1, f"regression fixture: expected exit 1, got {code}")
    expect(verdict["verdict"] == "regression", f"regression fixture: {verdict}")
    expect(
        [r["metric"] for r in verdict["regressions"]] == ["events_per_sec"],
        f"regression fixture: {verdict}",
    )

    # The same comparison in --warn-only mode still reports the regression
    # but exits 0 (the CI warn lane).
    code, verdict = run_case(
        binary, fixtures, "current_regression.json", ["--warn-only"]
    )
    expect(code == 0, f"warn-only fixture: expected exit 0, got {code}")
    expect(verdict["verdict"] == "regression", f"warn-only fixture: {verdict}")
    expect(verdict["warn_only"] is True, f"warn-only fixture: {verdict}")

    code, verdict = run_case(binary, fixtures, "current_missing.json")
    expect(code == 2, f"missing fixture: expected exit 2, got {code}")
    expect(
        verdict["verdict"] == "missing_metric", f"missing fixture: {verdict}"
    )
    expect(
        verdict["missing"] == ["shards_axis[pool_threads=2,shards=2,threads=2]"],
        f"missing fixture: {verdict}",
    )

    # Comparing a record against itself must always pass: the CI lane diffs
    # fresh runs against the committed BENCH_*.json baselines, and the
    # degenerate self-diff is the determinism floor of that gate.
    code, verdict = run_case(binary, fixtures, "baseline.json")
    expect(code == 0, f"self-diff: expected exit 0, got {code}")
    expect(verdict["verdict"] == "pass", f"self-diff: {verdict}")

    print("bench-diff selftest: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
