#!/usr/bin/env bash
# Runs the full static-analysis gauntlet: clang-tidy (config: .clang-tidy at
# the repo root) over every first-party translation unit under src/, using
# the compilation database of an existing build directory, followed by the
# project-specific determinism/contract lint (tools/vodrep_lint).
#
#   tools/run_clang_tidy.sh [build-dir]
#
# The build directory defaults to ./build and must have been configured with
# CMAKE_EXPORT_COMPILE_COMMANDS=ON (the repo's CMakeLists turns it on).
# Exits non-zero when clang-tidy or vodrep_lint reports any finding
# (WarningsAsErrors: '*').  vodrep_lint additionally runs its clang-query
# AST matcher pack when clang-query is installed.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "error: clang-tidy not found in PATH" >&2
  exit 2
fi
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "error: ${build_dir}/compile_commands.json missing;" \
       "configure the build first (cmake -B \"${build_dir}\" -S \"${repo_root}\")" >&2
  exit 2
fi

mapfile -t sources < <(find "${repo_root}/src" -name '*.cc' | sort)
echo "clang-tidy over ${#sources[@]} files (build dir: ${build_dir})"

status=0
for source in "${sources[@]}"; do
  clang-tidy --quiet -p "${build_dir}" "${source}" || status=1
done

echo "vodrep_lint (determinism/contract rules)"
lint_args=(--root "${repo_root}")
if command -v clang-query >/dev/null 2>&1; then
  lint_args+=(--clang-query "${build_dir}")
fi
python3 "${repo_root}/tools/vodrep_lint" "${lint_args[@]}" || status=1

exit "${status}"
