// E17 / simulator validation against queueing theory.
//
// The cluster is a loss system: Erlang-B applies exactly (M/G/c/c is
// insensitive to the deterministic holding times).  Two closed forms
// bracket every layout —
//   * pooled (one system, N*B/b channels): what ideal wide striping gives;
//   * balanced split (N independent systems fed lambda/N): what perfectly
//     balanced replication gives.
// The harness compares both formulas against the corresponding simulations
// and places the zipf+slf layout inside the bracket, quantifying how close
// the paper's placement gets to the partitioned-bandwidth optimum — and
// why rejections exist below nominal capacity at all (arrival variance).
#include <cstdlib>
#include <iostream>

#include "src/analysis/erlang.h"
#include "src/core/pipeline.h"
#include "src/core/striping.h"
#include "src/exp/runner.h"
#include "src/exp/scenario.h"
#include "src/sim/striped_simulator.h"
#include "src/util/cli.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/units.h"

int main(int argc, char** argv) {
  using namespace vodrep;
  CliFlags flags("vodrep_erlang_validation",
                 "Simulator vs Erlang-B loss formulas");
  flags.add_int("videos", 300, "catalogue size M");
  flags.add_double("theta", 0.75, "Zipf skew");
  flags.add_double("degree", 1.4, "replication degree");
  flags.add_int("runs", 30, "workload realizations per data point");
  flags.add_bool("quick", false, "small fast configuration (CI smoke mode)");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    PaperScenario scenario;
    scenario.num_videos = static_cast<std::size_t>(flags.get_int("videos"));
    scenario.theta = flags.get_double("theta");
    scenario.replication_degree = flags.get_double("degree");
    RunnerOptions runner;
    runner.runs = static_cast<std::size_t>(flags.get_int("runs"));
    if (flags.get_bool("quick")) {
      scenario.num_videos = 100;
      runner.runs = 8;
    }

    const std::size_t n = scenario.num_servers;
    const std::size_t channels_per_server = 450;  // 1.8 Gb/s / 4 Mb/s
    const std::size_t pooled_channels = n * channels_per_server;
    const double holding_min = scenario.duration_minutes;

    const auto replication = make_replication_policy("zipf");
    const auto placement = make_placement_policy("slf");
    const Layout replica_layout =
        provision(scenario.problem(), *replication, *placement,
                  scenario.replica_budget())
            .layout;
    const StripedLayout wide =
        make_striped_layout(scenario.num_videos, n, n);

    std::cout << "== Erlang-B validation: theory vs discrete-event "
                 "simulation ==\n"
              << "pooled system: " << pooled_channels
              << " channels; per-server: " << channels_per_server
              << " channels; holding time " << holding_min << " min\n\n";

    Table table({"arrival_rate_per_min", "offered_erlangs",
                 "ErlangB_pooled%", "sim_wide_striping%",
                 "ErlangB_split%", "sim_zipf_slf%"});
    table.set_precision(3);
    for (double rate : {36.0, 38.0, 40.0, 42.0, 44.0, 48.0}) {
      const double erlangs = rate * holding_min;  // lambda * T
      const double pooled = erlang_b(erlangs, pooled_channels);
      const double split =
          balanced_split_blocking(erlangs, n, channels_per_server);

      // Simulated wide striping (the pooled system realized in code).
      OnlineStats sim_wide;
      SimConfig config = scenario.sim_config();
      for (std::size_t run = 0; run < runner.runs; ++run) {
        Rng rng(runner.base_seed ^ (0x9e3779b97f4a7c15ULL * (run + 1)));
        const RequestTrace trace =
            generate_trace(rng, scenario.trace_spec(rate));
        SimEngine engine(config);
        StripedPolicy policy(wide, config);
        sim_wide.add(engine.run(policy, trace).rejection_rate());
      }
      const CellStats sim_replica =
          run_cell(replica_layout, config, scenario.trace_spec(rate), runner);

      table.add_row({rate, erlangs, 100.0 * pooled,
                     100.0 * sim_wide.mean(), 100.0 * split,
                     100.0 * sim_replica.rejection_rate.mean()});
    }
    table.print(std::cout);
    std::cout
        << "\nReading the table: the wide-striping simulation tracks the "
           "pooled Erlang-B\ncolumn and the zipf+slf layout sits between the "
           "pooled bound and the\nbalanced-split formula — the residual "
           "rejections below nominal capacity are\nthe arrival-variance "
           "floor Erlang-B predicts, not a placement defect.\n"
        << "(Caveat: Erlang-B is the steady-state loss; the simulated peak "
           "period starts\nempty and lasts one holding time, so simulated "
           "values run below the formula\nnear the knee.)\n";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
