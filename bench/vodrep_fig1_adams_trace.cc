// E1 / Figure 1: step-by-step trace of the bounded Adams monotone divisor
// replication on the paper's illustration instance (five videos, three
// servers, three replica slots per server).
#include <cstdlib>
#include <iostream>

#include "src/core/adams_replication.h"
#include "src/util/cli.h"
#include "src/util/table.h"
#include "src/workload/popularity.h"

int main(int argc, char** argv) {
  using namespace vodrep;
  CliFlags flags("vodrep_fig1_adams_trace",
                 "Figure 1: Adams divisor replication trace");
  flags.add_int("videos", 5, "number of videos M");
  flags.add_int("servers", 3, "number of servers N");
  flags.add_int("capacity", 3, "replica slots per server");
  flags.add_double("theta", 0.75, "Zipf skew of the popularity vector");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    const auto m = static_cast<std::size_t>(flags.get_int("videos"));
    const auto n = static_cast<std::size_t>(flags.get_int("servers"));
    const auto cap = static_cast<std::size_t>(flags.get_int("capacity"));
    const auto popularity = zipf_popularity(m, flags.get_double("theta"));

    std::cout << "== Figure 1: bounded Adams monotone divisor replication ==\n"
              << "M=" << m << " videos, N=" << n << " servers, budget "
              << n * cap << " replicas\n\n";

    const AdamsReplication adams;
    std::vector<AdamsStep> steps;
    const ReplicationPlan plan =
        adams.replicate_traced(popularity, n, n * cap, &steps);

    Table trace({"iteration", "granted_to_video", "replicas_after",
                 "weight_before", "weight_after"});
    trace.set_precision(5);
    for (std::size_t i = 0; i < steps.size(); ++i) {
      trace.add_row({static_cast<long long>(i + 1),
                     static_cast<long long>(steps[i].video + 1),
                     static_cast<long long>(steps[i].new_replicas),
                     steps[i].weight_before, steps[i].weight_after});
    }
    trace.print(std::cout);

    std::cout << "\nFinal plan (optimal for Eq. 8):\n";
    Table final_plan({"video", "popularity", "replicas", "weight_p/r"});
    final_plan.set_precision(5);
    for (std::size_t i = 0; i < m; ++i) {
      final_plan.add_row({static_cast<long long>(i + 1), popularity[i],
                          static_cast<long long>(plan.replicas[i]),
                          popularity[i] /
                              static_cast<double>(plan.replicas[i])});
    }
    final_plan.print(std::cout);
    std::cout << "\nmax weight = " << plan.max_weight(popularity)
              << ", replication degree = " << plan.degree() << "\n";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
