// E10 / Section 6 future work: request-redirection ablation.  The paper's
// conclusion sketches a runtime redirection strategy over the cluster
// backbone to complement the conservative static placement; this harness
// measures how much of the residual rejection rate that strategy recovers.
#include <cstdlib>
#include <iostream>

#include "src/exp/experiments.h"
#include "src/util/cli.h"

int main(int argc, char** argv) {
  using namespace vodrep;
  CliFlags flags("vodrep_ablation_redirect",
                 "Ablation: backbone-assisted request redirection");
  flags.add_int("runs", 20, "workload realizations per data point");
  flags.add_int("points", 12, "arrival-rate sweep points");
  flags.add_int("videos", 300, "catalogue size M");
  flags.add_double("theta", 0.75, "Zipf skew");
  flags.add_double("degree", 1.2, "replication degree");
  flags.add_bool("quick", false, "small fast configuration (CI smoke mode)");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    ExperimentOptions options;
    options.runs = static_cast<std::size_t>(flags.get_int("runs"));
    options.sweep_points = static_cast<std::size_t>(flags.get_int("points"));
    options.num_videos = static_cast<std::size_t>(flags.get_int("videos"));
    if (flags.get_bool("quick")) {
      options.runs = 5;
      options.sweep_points = 6;
      options.num_videos = 100;
    }
    std::cout << "== Ablation: static round-robin dispatch vs backbone "
                 "redirection ==\n"
              << "zipf+slf, theta=" << flags.get_double("theta")
              << ", degree=" << flags.get_double("degree") << "\n\n";
    redirect_ablation(flags.get_double("theta"), flags.get_double("degree"),
                      options)
        .print(std::cout);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
