// NoObsReplicatedPolicy: src/sim/replicated_policy.cc against the no-obs
// engine, minus the rejection-reason attribution, in its own TU to mirror
// the library's engine/policy compilation split (see sim_noobs_baseline.h).
#include "bench/sim_noobs_baseline.h"
#include "src/util/error.h"

namespace vodrep::noobs {

NoObsReplicatedPolicy::NoObsReplicatedPolicy(const Layout& layout,
                                             const SimConfig& config)
    : config_(config),
      dispatcher_(layout, config.redirect, config.backbone_bps,
                  config.batching_window_sec, config.video_duration_sec,
                  config.batching_mode) {}

void NoObsReplicatedPolicy::bind(NoObsSimEngine& engine) {
  require(engine.num_servers() == config_.num_servers,
          "NoObsReplicatedPolicy: engine/config server count mismatch");
  engine_ = &engine;
}

PolicyDecision NoObsReplicatedPolicy::dispatch(const Request& request) {
  const double bitrate = config_.stream_bitrate_bps;
  const auto decision = dispatcher_.dispatch(request.video, bitrate,
                                             engine_->servers(),
                                             request.arrival_time);
  if (!decision.has_value()) return PolicyDecision{};
  PolicyDecision outcome;
  outcome.admitted = true;
  outcome.redirected = decision->redirected;
  outcome.via_backbone = decision->via_backbone;
  outcome.batched = decision->batched;
  if (decision->reserves_bandwidth()) {
    engine_->admit(decision->server, bitrate);
    streams_.push_back(Stream{decision->server, decision->via_backbone});
    const double held_sec =
        decision->batched ? decision->patch_duration_sec
                          : request.watch_fraction * config_.video_duration_sec;
    engine_->schedule_departure(request.arrival_time + held_sec,
                                streams_.size() - 1);
  }
  return outcome;
}

void NoObsReplicatedPolicy::on_departure(std::size_t stream) {
  const Stream& record = streams_[stream];
  if (!engine_->server(record.server).failed()) {
    engine_->release(record.server, config_.stream_bitrate_bps);
  }
  if (record.via_backbone) {
    dispatcher_.release_backbone(config_.stream_bitrate_bps);
  }
}

std::size_t NoObsReplicatedPolicy::on_crash(std::size_t server) {
  const std::size_t disrupted = engine_->fail(server);
  dispatcher_.on_server_failed(server);
  return disrupted;
}

}  // namespace vodrep::noobs
