// E19 / the paper's Section 5.2 closing paragraph: "Other sensitivity
// analyses varied the number of videos, the video duration, the number of
// servers, the server outgoing bandwidth, as well as the encoding bit
// rate.  We did not reach any significantly different conclusions
// regarding to the relative merits of the algorithms."
//
// This harness re-runs the headline comparison (zipf+slf vs
// classification+round-robin, degree 1.2) while varying each scenario
// parameter one at a time, with the arrival rate pinned to the same
// fraction of each configuration's own saturation point so the operating
// regime stays comparable.  The conclusion to check: the winner never
// flips.
#include <cstdlib>
#include <iostream>

#include "src/core/pipeline.h"
#include "src/exp/runner.h"
#include "src/exp/scenario.h"
#include "src/util/cli.h"
#include "src/util/table.h"

namespace {

using namespace vodrep;

struct Row {
  std::string label;
  PaperScenario scenario;
};

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags("vodrep_sensitivity",
                 "Section 5.2 sensitivity sweep: does the ranking ever flip?");
  flags.add_int("runs", 20, "workload realizations per configuration");
  flags.add_double("load-fraction", 1.0,
                   "arrival rate as a fraction of each config's saturation");
  flags.add_bool("quick", false, "small fast configuration (CI smoke mode)");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    RunnerOptions runner;
    runner.runs = static_cast<std::size_t>(flags.get_int("runs"));
    const double load_fraction = flags.get_double("load-fraction");
    const bool quick = flags.get_bool("quick");

    PaperScenario base;
    base.replication_degree = 1.2;
    base.theta = 0.75;
    if (quick) {
      base.num_videos = 100;
      runner.runs = 5;
    }

    std::vector<Row> rows;
    rows.push_back({"baseline (paper setting)", base});
    {
      Row row{"videos M = 150", base};
      row.scenario.num_videos = quick ? 60 : 150;
      rows.push_back(row);
    }
    {
      Row row{"videos M = 600", base};
      row.scenario.num_videos = quick ? 150 : 600;
      rows.push_back(row);
    }
    {
      Row row{"duration 60 min", base};
      row.scenario.duration_minutes = 60.0;
      rows.push_back(row);
    }
    {
      Row row{"duration 120 min", base};
      row.scenario.duration_minutes = 120.0;
      rows.push_back(row);
    }
    {
      Row row{"servers N = 4", base};
      row.scenario.num_servers = 4;
      rows.push_back(row);
    }
    {
      Row row{"servers N = 16", base};
      row.scenario.num_servers = 16;
      rows.push_back(row);
    }
    {
      Row row{"bandwidth 0.9 Gb/s", base};
      row.scenario.server_bandwidth_gbps = 0.9;
      rows.push_back(row);
    }
    {
      Row row{"bandwidth 3.6 Gb/s", base};
      row.scenario.server_bandwidth_gbps = 3.6;
      rows.push_back(row);
    }
    {
      Row row{"bit rate 2 Mb/s", base};
      row.scenario.bitrate_mbps = 2.0;
      rows.push_back(row);
    }
    {
      Row row{"bit rate 8 Mb/s", base};
      row.scenario.bitrate_mbps = 8.0;
      rows.push_back(row);
    }

    std::cout << "== Sensitivity sweep at " << 100.0 * load_fraction
              << "% of each configuration's saturation rate ==\n"
              << "(degree 1.2, theta 0.75; the paper reports the ranking "
                 "never flips)\n\n";
    Table table({"configuration", "saturation_req_min", "reject%_zipf+slf",
                 "reject%_class+rr", "ranking_holds"});
    table.set_precision(2);
    ThreadPool pool;
    for (const Row& row : rows) {
      const double rate = load_fraction * row.scenario.saturation_rate_per_min();
      const auto zipf_repl = make_replication_policy("zipf");
      const auto slf = make_placement_policy("slf");
      const auto class_repl = make_replication_policy("classification");
      const auto rr = make_placement_policy("round-robin");
      const Layout best = provision(row.scenario.problem(), *zipf_repl, *slf,
                                    row.scenario.replica_budget())
                              .layout;
      const Layout baseline =
          provision(row.scenario.problem(), *class_repl, *rr,
                    row.scenario.replica_budget())
              .layout;
      const CellStats stats_best =
          run_cell(best, row.scenario.sim_config(),
                   row.scenario.trace_spec(rate), runner, &pool);
      const CellStats stats_base =
          run_cell(baseline, row.scenario.sim_config(),
                   row.scenario.trace_spec(rate), runner, &pool);
      table.add_row(
          {row.label, row.scenario.saturation_rate_per_min(),
           100.0 * stats_best.rejection_rate.mean(),
           100.0 * stats_base.rejection_rate.mean(),
           std::string(stats_best.rejection_rate.mean() <=
                               stats_base.rejection_rate.mean() + 1e-9
                           ? "yes"
                           : "NO")});
    }
    table.print(std::cout);
    std::cout << "\nEvery row must read \"yes\": the relative merit of the "
                 "algorithms is insensitive\nto catalogue size, duration, "
                 "cluster size, link speed, and encoding rate —\nthe paper's "
                 "closing sensitivity claim.\n";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
