// E4 / Figure 4: impact of the replication degree on the rejection rate.
// Four panels, as in the paper:
//   (a) Zipf replication + smallest-load-first placement, theta = 0.75
//   (b) classification replication + round-robin placement, theta = 0.75
//   (c) Zipf replication + smallest-load-first placement, theta = 0.25
//   (d) classification replication + round-robin placement, theta = 0.25
// Each panel: rejection rate (%) vs arrival rate (req/min) for replication
// degrees {1.0, 1.2, 1.4, 1.6, 1.8}.
#include <cstdlib>
#include <iostream>

#include "src/exp/experiments.h"
#include "src/util/cli.h"

int main(int argc, char** argv) {
  using namespace vodrep;
  CliFlags flags("vodrep_fig4_replication_degree",
                 "Figure 4: rejection rate vs replication degree");
  flags.add_int("runs", 20, "workload realizations per data point");
  flags.add_int("points", 12, "arrival-rate sweep points");
  flags.add_int("videos", 300, "catalogue size M");
  flags.add_bool("quick", false, "small fast configuration (CI smoke mode)");
  flags.add_bool("csv", false, "emit CSV instead of aligned tables");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    ExperimentOptions options;
    options.runs = static_cast<std::size_t>(flags.get_int("runs"));
    options.sweep_points = static_cast<std::size_t>(flags.get_int("points"));
    options.num_videos = static_cast<std::size_t>(flags.get_int("videos"));
    if (flags.get_bool("quick")) {
      options.runs = 5;
      options.sweep_points = 6;
      options.num_videos = 100;
    }

    struct Panel {
      const char* tag;
      AlgorithmCombo combo;
      double theta;
    };
    const Panel panels[] = {
        {"(a)", {"zipf", "slf"}, 0.75},
        {"(b)", {"classification", "round-robin"}, 0.75},
        {"(c)", {"zipf", "slf"}, 0.25},
        {"(d)", {"classification", "round-robin"}, 0.25},
    };
    std::cout << "== Figure 4: impact of replication degree on rejection "
                 "rate ==\n"
              << "(columns: rejection % per replication degree; rows: "
                 "arrival rate in requests/minute)\n";
    for (const Panel& panel : panels) {
      std::cout << "\n-- " << panel.tag << " " << panel.combo.label()
                << ", theta = " << panel.theta << " --\n";
      {
        const Table table = fig4_panel(panel.combo, panel.theta, options);
        if (flags.get_bool("csv")) {
          table.print_csv(std::cout);
        } else {
          table.print(std::cout);
        }
      }
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
