// SA hot-path benchmark: copy-based full recompute vs incremental
// delta-evaluation (src/core/incremental_state.h).
//
// `BaselineSaProblem` below preserves the pre-incremental solver verbatim —
// per-move State deep copy, O(M) videos_on_server scans, compute_usage
// rebuilt from scratch in cost() and once per repair action — so the
// speedup reported here stays honest across future PRs even as the library
// solver evolves.  Both solvers run the identical annealing schedule (fixed
// temperature-step count, stall disabled) so the Metropolis loop iteration
// count is the same; moves/sec = iterations / wall time.
//
// The bench also guards the observability layer (src/obs): a third section
// re-times the library in-place path against `anneal_noobs` below — a
// verbatim copy of the engine's in-place Metropolis loop with the
// VODREP_TRACE_SCOPE lines deleted, i.e. what the loop compiles to without
// the obs layer — and FAILS (exit 1) if running with obs compiled in but
// runtime-disabled costs more than 3% moves/sec.
//
// The last stdout line is machine-readable JSON for tracking the perf
// trajectory across PRs.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "src/anneal/parallel_tempering.h"
#include "src/core/incremental_state.h"
#include "src/core/sa_solver.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/cli.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"

namespace {

using namespace vodrep;

/// The seed implementation of the scalable SA problem (copy-based path):
/// kept as the benchmark baseline, not used by the library.
class BaselineSaProblem {
 public:
  using State = ScalableSolution;

  BaselineSaProblem(const ScalableProblem& problem,
                    const SaSolverOptions& options)
      : problem_(problem), options_(options) {}

  State initial(Rng& rng) const {
    (void)rng;
    ScalableSolution solution = lowest_rate_round_robin(problem_);
    (void)repair(solution);
    return solution;
  }

  double cost(const State& state) const {
    const ServerUsage usage = compute_usage(problem_, state);
    double overflow = 0.0;
    const double capacity = problem_.cluster.bandwidth_bps_per_server;
    for (double load : usage.bandwidth_bps) {
      if (load > capacity) overflow += (load - capacity) / capacity;
    }
    const double objective =
        objective_value(state.bitrates(problem_.ladder), state.replicas(),
                        usage.bandwidth_bps, problem_.cluster.num_servers,
                        problem_.weights);
    return -objective + options_.bandwidth_penalty * overflow;
  }

  State neighbor(const State& state, Rng& rng) const {
    const std::size_t n = problem_.cluster.num_servers;
    const std::size_t m = problem_.videos.count();
    State next = state;
    const auto server = static_cast<std::size_t>(rng.uniform_index(n));

    auto try_increase_rate = [&]() {
      std::vector<std::size_t> hosted = videos_on_server(next, server);
      std::erase_if(hosted, [&](std::size_t v) {
        return next.bitrate_index[v] + 1 >= problem_.ladder.size();
      });
      if (hosted.empty()) return false;
      const std::size_t pick = hosted[rng.uniform_index(hosted.size())];
      ++next.bitrate_index[pick];
      return true;
    };
    auto try_add_replica = [&]() {
      std::vector<std::size_t> absent;
      for (std::size_t i = 0; i < m; ++i) {
        const auto& servers = next.placement[i];
        if (servers.size() < n &&
            std::find(servers.begin(), servers.end(), server) ==
                servers.end()) {
          absent.push_back(i);
        }
      }
      if (absent.empty()) return false;
      const std::size_t pick = absent[rng.uniform_index(absent.size())];
      next.placement[pick].push_back(server);
      return true;
    };
    auto try_shrink = [&]() {
      std::vector<std::size_t> hosted = videos_on_server(next, server);
      std::erase_if(hosted, [&](std::size_t v) {
        return next.bitrate_index[v] == 0 && next.placement[v].size() <= 1;
      });
      if (hosted.empty()) return false;
      const std::size_t pick = hosted[rng.uniform_index(hosted.size())];
      if (next.bitrate_index[pick] > 0 &&
          (next.placement[pick].size() <= 1 || rng.bernoulli(0.5))) {
        --next.bitrate_index[pick];
      } else {
        auto& servers_of = next.placement[pick];
        servers_of.erase(
            std::find(servers_of.begin(), servers_of.end(), server));
      }
      return true;
    };

    bool moved;
    if (rng.bernoulli(options_.shrink_probability)) {
      moved = try_shrink();
    } else if (rng.bernoulli(options_.increase_rate_probability)) {
      moved = try_increase_rate() || try_add_replica();
    } else {
      moved = try_add_replica() || try_increase_rate();
    }
    if (!moved) return state;
    if (!repair(next)) return state;
    return next;
  }

  bool repair(State& state) const {
    const double storage_cap = problem_.cluster.storage_bytes_per_server;
    const double bandwidth_cap = problem_.cluster.bandwidth_bps_per_server;
    for (;;) {
      const ServerUsage usage = compute_usage(problem_, state);
      std::size_t worst = problem_.cluster.num_servers;
      for (std::size_t s = 0; s < problem_.cluster.num_servers; ++s) {
        if (usage.storage_bytes[s] > storage_cap ||
            usage.bandwidth_bps[s] > bandwidth_cap) {
          worst = s;
          break;
        }
      }
      if (worst == problem_.cluster.num_servers) return true;

      std::vector<std::size_t> hosted = videos_on_server(state, worst);
      std::sort(hosted.begin(), hosted.end(),
                [&](std::size_t a, std::size_t b) {
                  if (state.bitrate_index[a] != state.bitrate_index[b]) {
                    return state.bitrate_index[a] < state.bitrate_index[b];
                  }
                  return a > b;
                });
      bool acted = false;
      for (std::size_t video : hosted) {
        if (state.bitrate_index[video] > 0) {
          --state.bitrate_index[video];
          acted = true;
          break;
        }
        if (state.placement[video].size() > 1) {
          auto& servers = state.placement[video];
          servers.erase(std::find(servers.begin(), servers.end(), worst));
          acted = true;
          break;
        }
      }
      if (!acted) {
        return std::all_of(
            usage.storage_bytes.begin(), usage.storage_bytes.end(),
            [&](double b) { return b <= storage_cap; });
      }
    }
  }

 private:
  static std::vector<std::size_t> videos_on_server(
      const ScalableSolution& solution, std::size_t s) {
    std::vector<std::size_t> videos;
    for (std::size_t i = 0; i < solution.placement.size(); ++i) {
      const auto& servers = solution.placement[i];
      if (std::find(servers.begin(), servers.end(), s) != servers.end()) {
        videos.push_back(i);
      }
    }
    return videos;
  }

  const ScalableProblem& problem_;
  SaSolverOptions options_;
};

/// The library's in-place Metropolis loop with the obs layer compiled out:
/// a verbatim copy of anneal()'s InPlaceAnnealProblem path minus the two
/// VODREP_TRACE_SCOPE lines.  (The metrics_enabled() branch inside
/// ScalableSaProblem::delta_cost is shared by every pass, so the guard
/// isolates exactly what VODREP_TRACE adds to the engine loop.)  Kept in
/// sync with src/anneal/annealer.h by the same verbatim-copy policy as
/// BaselineSaProblem above.
AnnealResult<ScalableSolution> anneal_noobs(const ScalableSaProblem& problem,
                                            Rng& rng,
                                            const AnnealOptions& options) {
  const auto schedule = geometric_cooling(0.95);
  AnnealResult<ScalableSolution> result;
  ScalableSolution initial_state = problem.initial(rng);
  double current_cost = problem.cost(initial_state);
  result.best_cost = current_cost;
  auto chain = problem.make_scratch(std::move(initial_state));

  auto metropolis_step = [&](double temperature) {
    if (!problem.propose(chain, rng)) {
      ++result.moves_noop;
      return false;
    }
    ++result.moves_proposed;
    const double delta = problem.delta_cost(chain);
    if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature)) {
      problem.commit(chain);
      current_cost += delta;
      if (current_cost < result.best_cost) {
        // Deferred-best path: the scratch journals its own best mark in
        // commit(); extract_best materializes it once after the loop.
        result.best_cost = current_cost;
      }
      return true;
    }
    problem.revert(chain);
    return false;
  };

  double temperature = options.initial_temperature;
  std::size_t stall = 0;
  std::size_t trajectory_stride = 1;
  CoolingStepInfo info;
  while (temperature > options.final_temperature &&
         result.temperature_steps < options.max_temperature_steps) {
    std::size_t accepted = 0;
    const double best_before = result.best_cost;
    for (std::size_t m = 0; m < options.moves_per_temperature; ++m) {
      if (metropolis_step(temperature)) ++accepted;
    }
    result.moves_accepted += accepted;
    const std::size_t step_index = result.temperature_steps++;
    if (step_index % trajectory_stride == 0) {
      if (options.trajectory_max_samples != 0 &&
          result.trajectory.size() >= options.trajectory_max_samples) {
        std::size_t kept = 0;
        for (std::size_t i = 0; i < result.trajectory.size(); i += 2) {
          result.trajectory[kept++] = result.trajectory[i];
        }
        result.trajectory.resize(kept);
        trajectory_stride *= 2;
      }
      if (step_index % trajectory_stride == 0) {
        result.trajectory.emplace_back(temperature, result.best_cost);
      }
    }
    stall = result.best_cost < best_before ? 0 : stall + 1;
    if (options.stall_steps != 0 && stall >= options.stall_steps) break;
    info.step = result.temperature_steps;
    info.moves = options.moves_per_temperature;
    info.accepted = accepted;
    info.best_cost = result.best_cost;
    info.current_cost = current_cost;
    temperature = schedule->next(temperature, info);
  }
  result.final_temperature = temperature;
  result.best_state = problem.extract_best(chain);
  return result;
}

struct RunStats {
  double seconds = 0.0;
  double moves_per_sec = 0.0;
  std::size_t iterations = 0;
  double objective = 0.0;
  std::size_t moves_noop = 0;
};

/// Best-of-N moves/sec for one annealing pass: repeats `run` (which returns
/// the AnnealResult of one full deterministic anneal) until the cumulative
/// wall time exceeds `min_total_sec` or `max_reps` runs, and rates the pass
/// by its fastest repetition.  Max-of-reps approximates the noise-free
/// speed, which the <3% overhead guard needs to stay deterministic on
/// shared CI machines.
template <typename RunFn>
double best_moves_per_sec(RunFn&& run, const AnnealOptions& options,
                          double min_total_sec, std::size_t max_reps) {
  double best_seconds = 1e300;
  double total = 0.0;
  for (std::size_t rep = 0; rep < max_reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const auto result = run();
    const auto stop = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(stop - start).count();
    // Consume the result so the anneal cannot be optimized away.
    if (result.temperature_steps == 0) std::abort();
    best_seconds = std::min(best_seconds, seconds);
    total += seconds;
    if (total >= min_total_sec && rep >= 2) break;
  }
  const double iterations = static_cast<double>(
      options.max_temperature_steps * options.moves_per_temperature);
  return iterations / std::max(best_seconds, 1e-12);
}

/// Best-of-`reps` headline timing (the run is deterministic in the seed, so
/// repetitions only shave off scheduler noise).
template <typename Problem>
RunStats run_annealer(const Problem& sa, const ScalableProblem& problem,
                      const AnnealOptions& options, std::uint64_t seed,
                      std::size_t reps) {
  RunStats stats;
  stats.seconds = 1e300;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    Rng rng(seed);
    const auto start = std::chrono::steady_clock::now();
    const auto result = anneal(sa, rng, options);
    const auto stop = std::chrono::steady_clock::now();
    stats.seconds = std::min(
        stats.seconds, std::chrono::duration<double>(stop - start).count());
    stats.iterations =
        result.temperature_steps * options.moves_per_temperature;
    if (rep + 1 == reps) {
      stats.objective = solution_objective(problem, result.best_state);
      stats.moves_noop = result.moves_noop;
    }
  }
  stats.moves_per_sec =
      static_cast<double>(stats.iterations) / std::max(stats.seconds, 1e-12);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags("vodrep_sa_hotpath",
                 "SA hot path: copy-based baseline vs incremental "
                 "delta-evaluation, same schedule, moves/sec");
  flags.add_int("videos", 1000, "catalogue size M");
  flags.add_int("servers", 16, "cluster size N");
  flags.add_double("theta", 0.75, "Zipf skew");
  flags.add_double("lambda", 30.0, "peak arrival rate, requests/minute");
  flags.add_double("storage-gb", 120.0, "per-server storage budget, GB");
  flags.add_int("temp-steps", 60, "temperature steps (fixed, stall disabled)");
  flags.add_int("moves", 200, "moves per temperature step");
  flags.add_int("seed", 2002, "annealer seed");
  flags.add_bool("quick", false, "small fast configuration (CI smoke mode)");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    const bool quick = flags.get_bool("quick");
    const auto m =
        quick ? 120u : static_cast<std::size_t>(flags.get_int("videos"));
    const auto n =
        quick ? 8u : static_cast<std::size_t>(flags.get_int("servers"));
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));

    ScalableProblem problem;
    problem.videos.duration_sec = units::minutes(90);
    problem.videos.popularity = zipf_popularity(m, flags.get_double("theta"));
    problem.cluster.num_servers = n;
    problem.cluster.bandwidth_bps_per_server = units::gbps(1.8);
    problem.cluster.storage_bytes_per_server =
        units::gigabytes(flags.get_double("storage-gb"));
    problem.ladder.rates_bps = {units::mbps(1), units::mbps(2),
                                units::mbps(3), units::mbps(4),
                                units::mbps(6), units::mbps(8)};
    problem.expected_peak_requests = flags.get_double("lambda") * 90.0;

    SaSolverOptions options;
    options.anneal.initial_temperature = 1.0;
    options.anneal.final_temperature = 1e-12;  // temp-steps bounds the run
    options.anneal.moves_per_temperature =
        static_cast<std::size_t>(flags.get_int("moves"));
    options.anneal.max_temperature_steps =
        quick ? 6 : static_cast<std::size_t>(flags.get_int("temp-steps"));
    options.anneal.stall_steps = 0;

    std::cout << "== SA hot path: full recompute vs incremental "
                 "delta-evaluation ==\n"
              << "M=" << m << " videos, N=" << n << " servers, "
              << options.anneal.max_temperature_steps << " temperature steps x "
              << options.anneal.moves_per_temperature << " moves\n\n";

    const BaselineSaProblem baseline(problem, options);
    const ScalableSaProblem incremental(problem, options);
    static_assert(!InPlaceAnnealProblem<BaselineSaProblem>,
                  "baseline must exercise the copy path");
    static_assert(InPlaceAnnealProblem<ScalableSaProblem>,
                  "library solver must exercise the in-place path");

    const RunStats copy_stats =
        run_annealer(baseline, problem, options.anneal, seed, quick ? 2 : 3);
    const RunStats inc_stats =
        run_annealer(incremental, problem, options.anneal, seed, 5);
    const double speedup = inc_stats.moves_per_sec / copy_stats.moves_per_sec;

    Table table({"path", "seconds", "moves_per_sec", "objective"});
    table.set_precision(3);
    table.add_row({std::string("copy_full_recompute"), copy_stats.seconds,
                   copy_stats.moves_per_sec, copy_stats.objective});
    table.add_row({std::string("incremental_delta"), inc_stats.seconds,
                   inc_stats.moves_per_sec, inc_stats.objective});
    table.print(std::cout);
    std::cout << "\nspeedup: " << speedup << "x  (noop moves skipped by the "
              << "in-place path: " << inc_stats.moves_noop << ")\n\n";

    // --- obs overhead guard: compiled-in-but-disabled must stay <3% ---
    // Best-of-k per pass, and up to three whole measurement rounds: the
    // guard compares two near-identical hot loops, so a single scheduling
    // hiccup on a shared machine used to trip it (~3.04% vs 3%).  Each
    // retry keeps the best observation per pass, which only converges
    // toward the noise-free speeds.
    const double min_total_sec = quick ? 0.1 : 0.8;
    const std::size_t max_reps = quick ? 25 : 9;
    const auto time_pass = [&](auto&& run) {
      return best_moves_per_sec(run, options.anneal, min_total_sec, max_reps);
    };
    obs::set_metrics_enabled(false);
    obs::TraceRecorder::global().set_enabled(false);
    double noobs_mps = 0.0;
    double obs_off_mps = 0.0;
    for (int round = 0; round < 3; ++round) {
      noobs_mps = std::max(noobs_mps, time_pass([&] {
                             Rng rng(seed);
                             return anneal_noobs(incremental, rng,
                                                 options.anneal);
                           }));
      obs_off_mps = std::max(obs_off_mps, time_pass([&] {
                               Rng rng(seed);
                               return anneal(incremental, rng, options.anneal);
                             }));
      if (obs_off_mps >= 0.97 * noobs_mps) break;
    }
    obs::set_metrics_enabled(true);
    obs::TraceRecorder::global().set_enabled(true);
    const double obs_on_mps = time_pass([&] {
      Rng rng(seed);
      return anneal(incremental, rng, options.anneal);
    });
    obs::set_metrics_enabled(false);
    obs::TraceRecorder::global().set_enabled(false);
    obs::TraceRecorder::global().clear();

    const double off_overhead_pct = 100.0 * (1.0 - obs_off_mps / noobs_mps);
    const double on_overhead_pct = 100.0 * (1.0 - obs_on_mps / noobs_mps);
    const bool guard_pass = obs_off_mps >= 0.97 * noobs_mps;
    std::cout << "obs overhead on the in-place path (best-of-reps):\n"
              << "  compiled out:           " << noobs_mps << " moves/s\n"
              << "  compiled in, disabled:  " << obs_off_mps << " moves/s  ("
              << off_overhead_pct << " % overhead)\n"
              << "  enabled:                " << obs_on_mps << " moves/s  ("
              << on_overhead_pct << " % overhead)\n"
              << "  guard (<3% disabled):   "
              << (guard_pass ? "PASS" : "FAIL") << "\n\n";

    // --- parallel-tempering chains axis: aggregate moves/sec vs K ---------
    // Each chain is an independent Metropolis loop over its own journaled
    // state, so aggregate throughput is what a multi-core box scales;
    // hardware_threads in the JSON says how much parallelism this machine
    // could actually supply for the recorded numbers.
    const unsigned hardware_threads =
        std::max(1u, std::thread::hardware_concurrency());
    ThreadPool pool(hardware_threads);
    const std::vector<std::size_t> chain_counts =
        quick ? std::vector<std::size_t>{1, 2, 4}
              : std::vector<std::size_t>{1, 2, 4, 8, 16, 32};
    struct ChainsPoint {
      std::size_t chains = 0;
      std::size_t pool_threads = 0;  // pool workers used; 1 = inline run
      double aggregate_mps = 0.0;
      double per_chain_mps = 0.0;
    };
    std::vector<ChainsPoint> chains_axis;
    Table pt_table({"chains", "pool_threads", "threads",
                    "aggregate_moves_per_sec", "per_chain_moves_per_sec"});
    pt_table.set_precision(3);
    for (const std::size_t k : chain_counts) {
      AnnealOptions pt = options.anneal;
      pt.chains = k;
      const std::size_t reps = quick ? 3 : 3;
      double best_seconds = 1e300;
      std::size_t total_moves = 0;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        const auto result = anneal_parallel_tempering(
            incremental, seed, pt, k > 1 ? &pool : nullptr);
        const auto stop = std::chrono::steady_clock::now();
        if (result.temperature_steps == 0) std::abort();
        total_moves = result.moves_proposed + result.moves_noop;
        best_seconds = std::min(
            best_seconds,
            std::chrono::duration<double>(stop - start).count());
      }
      ChainsPoint point;
      point.chains = k;
      point.pool_threads = k > 1 ? pool.size() : 1;
      point.aggregate_mps =
          static_cast<double>(total_moves) / std::max(best_seconds, 1e-12);
      point.per_chain_mps = point.aggregate_mps / static_cast<double>(k);
      chains_axis.push_back(point);
      pt_table.add_row({static_cast<double>(k),
                        static_cast<double>(point.pool_threads),
                        static_cast<double>(hardware_threads),
                        point.aggregate_mps, point.per_chain_mps});
    }
    std::cout << "parallel tempering scaling (" << hardware_threads
              << " hardware thread(s)):\n";
    pt_table.print(std::cout);
    std::cout << "\n";

    // --- journal-depth axis: cost of rolling back composite moves ---------
    // Applies `depth` journaled primitives then rolls all of them back;
    // ops/sec counts primitives, so the column tracks how rollback cost
    // scales with transaction depth (repairs stack several primitives on
    // top of the triggering move).
    const std::vector<std::size_t> journal_depths = {1, 2, 4, 8, 16, 32};
    struct JournalPoint {
      std::size_t depth = 0;
      double ops_per_sec = 0.0;
    };
    std::vector<JournalPoint> journal_axis;
    Table journal_table({"journal_depth", "ops_per_sec"});
    journal_table.set_precision(3);
    {
      IncrementalState inc(problem, lowest_rate_round_robin(problem));
      Rng jrng(seed);
      const std::size_t total_ops = quick ? 20'000 : 200'000;
      const std::size_t ladder_size = problem.ladder.size();
      for (const std::size_t depth : journal_depths) {
        const std::size_t rounds = std::max<std::size_t>(total_ops / depth, 64);
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t round = 0; round < rounds; ++round) {
          const auto mark = inc.checkpoint();
          for (std::size_t op = 0; op < depth; ++op) {
            const auto video =
                static_cast<std::size_t>(jrng.uniform_index(m));
            inc.set_bitrate(video,
                            (inc.bitrate_index(video) + 1) % ladder_size);
          }
          inc.rollback(mark);
        }
        const auto stop = std::chrono::steady_clock::now();
        const double seconds =
            std::chrono::duration<double>(stop - start).count();
        JournalPoint point;
        point.depth = depth;
        point.ops_per_sec = static_cast<double>(rounds * depth) /
                            std::max(seconds, 1e-12);
        journal_axis.push_back(point);
        journal_table.add_row(
            {static_cast<double>(depth), point.ops_per_sec});
      }
    }
    std::cout << "journal rollback cost by transaction depth:\n";
    journal_table.print(std::cout);
    std::cout << "\n";

    std::cout << "{\"bench\":\"sa_hotpath\",\"videos\":" << m
              << ",\"servers\":" << n
              << ",\"iterations\":" << inc_stats.iterations
              << ",\"copy_seconds\":" << copy_stats.seconds
              << ",\"copy_moves_per_sec\":" << copy_stats.moves_per_sec
              << ",\"incremental_seconds\":" << inc_stats.seconds
              << ",\"incremental_moves_per_sec\":" << inc_stats.moves_per_sec
              << ",\"speedup\":" << speedup
              << ",\"copy_objective\":" << copy_stats.objective
              << ",\"incremental_objective\":" << inc_stats.objective
              << ",\"incremental_noop_moves\":" << inc_stats.moves_noop
              << ",\"noobs_moves_per_sec\":" << noobs_mps
              << ",\"obs_off_moves_per_sec\":" << obs_off_mps
              << ",\"obs_on_moves_per_sec\":" << obs_on_mps
              << ",\"obs_off_overhead_pct\":" << off_overhead_pct
              << ",\"obs_on_overhead_pct\":" << on_overhead_pct
              << ",\"obs_guard_pass\":" << (guard_pass ? "true" : "false")
              << ",\"hardware_threads\":" << hardware_threads
              << ",\"chains_axis\":[";
    for (std::size_t i = 0; i < chains_axis.size(); ++i) {
      std::cout << (i == 0 ? "" : ",") << "{\"chains\":"
                << chains_axis[i].chains
                << ",\"pool_threads\":" << chains_axis[i].pool_threads
                << ",\"threads\":" << hardware_threads
                << ",\"aggregate_moves_per_sec\":"
                << chains_axis[i].aggregate_mps
                << ",\"per_chain_moves_per_sec\":"
                << chains_axis[i].per_chain_mps << "}";
    }
    std::cout << "],\"journal_axis\":[";
    for (std::size_t i = 0; i < journal_axis.size(); ++i) {
      std::cout << (i == 0 ? "" : ",") << "{\"depth\":"
                << journal_axis[i].depth << ",\"ops_per_sec\":"
                << journal_axis[i].ops_per_sec << "}";
    }
    std::cout << "]}\n";
    if (!guard_pass) {
      std::cerr << "error: obs layer costs " << off_overhead_pct
                << " % moves/sec while disabled (budget: 3 %)\n";
      return EXIT_FAILURE;
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
