// E12 / Section 1 + related work [4]: striping vs replication.
//
// The paper's case for replication in distributed-storage clusters rests on
// a comparison it cites rather than re-runs ("Striping doesn't scale"):
// wide striping balances load perfectly but couples every video to every
// server.  This harness makes the trade-off concrete on the paper's own
// scenario:
//   1. fault-free rejection rates: wide/narrow striping vs zipf+slf
//      replication across arrival rates;
//   2. the same sweep with one server crashing mid-peak: disrupted streams
//      and post-crash rejections;
//   3. the closed-form per-video availability of k-striping vs
//      r-replication under independent server survival.
#include <cstdlib>
#include <iostream>

#include "src/core/pipeline.h"
#include "src/core/striping.h"
#include "src/exp/scenario.h"
#include "src/sim/hybrid_simulator.h"
#include "src/sim/striped_simulator.h"
#include "src/util/cli.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/units.h"
#include "src/workload/trace.h"

namespace {

using namespace vodrep;

struct SweepPoint {
  OnlineStats reject;
  OnlineStats disrupted;
};

/// Runs `runs` trace realizations of one configuration through `simulate_fn`
/// and aggregates rejection and disruption fractions.
template <typename SimulateFn>
SweepPoint run_config(const PaperScenario& scenario, double rate,
                      std::size_t runs, std::uint64_t seed,
                      SimulateFn&& simulate_fn) {
  SweepPoint point;
  for (std::size_t run = 0; run < runs; ++run) {
    Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (run + 1)));
    const RequestTrace trace = generate_trace(rng, scenario.trace_spec(rate));
    const SimResult result = simulate_fn(trace);
    point.reject.add(result.rejection_rate());
    point.disrupted.add(
        result.total_requests == 0
            ? 0.0
            : static_cast<double>(result.disrupted) /
                  static_cast<double>(result.total_requests));
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags("vodrep_striping_comparison",
                 "Striping vs replication: load balance and availability");
  flags.add_int("runs", 20, "workload realizations per data point");
  flags.add_int("points", 8, "arrival-rate sweep points");
  flags.add_int("videos", 300, "catalogue size M");
  flags.add_double("theta", 0.75, "Zipf skew");
  flags.add_double("degree", 1.2, "replication degree of the replica layout");
  flags.add_bool("quick", false, "small fast configuration (CI smoke mode)");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    PaperScenario scenario;
    scenario.theta = flags.get_double("theta");
    scenario.replication_degree = flags.get_double("degree");
    scenario.num_videos = static_cast<std::size_t>(flags.get_int("videos"));
    std::size_t runs = static_cast<std::size_t>(flags.get_int("runs"));
    std::size_t points = static_cast<std::size_t>(flags.get_int("points"));
    if (flags.get_bool("quick")) {
      runs = 5;
      points = 5;
      scenario.num_videos = 100;
    }
    const std::uint64_t seed = 0x57121280;
    const std::size_t n = scenario.num_servers;

    // Configurations under test.
    const auto replication = make_replication_policy("zipf");
    const auto placement = make_placement_policy("slf");
    const Layout replica_layout =
        provision(scenario.problem(), *replication, *placement,
                  scenario.replica_budget())
            .layout;
    const StripedLayout wide =
        make_striped_layout(scenario.num_videos, n, n);
    const StripedLayout narrow4 =
        make_striped_layout(scenario.num_videos, n, 4);
    const StripedLayout narrow2 =
        make_striped_layout(scenario.num_videos, n, 2);
    // Hybrid: two replicated 4-wide stripe groups per video (storage cost
    // 2x, same as degree-2 replication).
    const HybridLayout hybrid =
        make_hybrid_layout(scenario.num_videos, n, 4, 2);

    std::cout << "== Striping vs replication on the paper's cluster ==\n"
              << "M=" << scenario.num_videos << ", N=" << n
              << ", theta=" << scenario.theta << "; replication degree "
              << scenario.replication_degree << " (storage cost "
              << scenario.replication_degree << "x vs 1x for striping)\n";

    auto sweep = [&](const std::vector<ServerFailure>& failures,
                     const char* title, bool show_disruption) {
      SimConfig base = scenario.sim_config();
      base.failures = failures;
      std::cout << "\n-- " << title << " --\n";
      std::vector<std::string> headers{"arrival_rate_per_min",
                                       "reject%_stripe_k8",
                                       "reject%_stripe_k4",
                                       "reject%_stripe_k2",
                                       "reject%_hybrid_k4r2",
                                       "reject%_replication"};
      if (show_disruption) {
        headers.insert(headers.end(),
                       {"disrupt%_stripe_k8", "disrupt%_hybrid_k4r2",
                        "disrupt%_replication"});
      }
      Table table(std::move(headers));
      table.set_precision(2);
      for (double rate : arrival_rate_sweep(scenario, points, 0.2, 1.1)) {
        // All five organizations replay through the same SimEngine; only
        // the StoragePolicy differs.
        const SweepPoint k8 = run_config(
            scenario, rate, runs, seed, [&](const RequestTrace& t) {
              SimEngine engine(base);
              StripedPolicy policy(wide, base);
              return engine.run(policy, t);
            });
        const SweepPoint k4 = run_config(
            scenario, rate, runs, seed, [&](const RequestTrace& t) {
              SimEngine engine(base);
              StripedPolicy policy(narrow4, base);
              return engine.run(policy, t);
            });
        const SweepPoint k2 = run_config(
            scenario, rate, runs, seed, [&](const RequestTrace& t) {
              SimEngine engine(base);
              StripedPolicy policy(narrow2, base);
              return engine.run(policy, t);
            });
        const SweepPoint hyb = run_config(
            scenario, rate, runs, seed, [&](const RequestTrace& t) {
              SimEngine engine(base);
              HybridPolicy policy(hybrid, base);
              return engine.run(policy, t);
            });
        const SweepPoint rep = run_config(
            scenario, rate, runs, seed, [&](const RequestTrace& t) {
              SimEngine engine(base);
              ReplicatedPolicy policy(replica_layout, base);
              return engine.run(policy, t);
            });
        std::vector<Table::Cell> row{rate, 100.0 * k8.reject.mean(),
                                     100.0 * k4.reject.mean(),
                                     100.0 * k2.reject.mean(),
                                     100.0 * hyb.reject.mean(),
                                     100.0 * rep.reject.mean()};
        if (show_disruption) {
          row.emplace_back(100.0 * k8.disrupted.mean());
          row.emplace_back(100.0 * hyb.disrupted.mean());
          row.emplace_back(100.0 * rep.disrupted.mean());
        }
        table.add_row(std::move(row));
      }
      table.print(std::cout);
    };

    sweep({}, "fault-free peak (striping pools bandwidth perfectly)", false);
    sweep({ServerFailure{units::minutes(45), 0}},
          "one server crashes at minute 45", true);

    std::cout << "\n-- closed-form per-video availability, independent "
                 "server survival p --\n";
    Table avail({"survival_p", "stripe_k2", "stripe_k4", "stripe_k8",
                 "replicas_1", "replicas_2", "replicas_3",
                 "hybrid_k4_r2"});
    avail.set_precision(4);
    for (double p : {0.90, 0.95, 0.99, 0.999}) {
      avail.add_row({p, striped_video_availability(p, 2),
                     striped_video_availability(p, 4),
                     striped_video_availability(p, 8),
                     replicated_video_availability(p, 1),
                     replicated_video_availability(p, 2),
                     replicated_video_availability(p, 3),
                     hybrid_video_availability(p, 4, 2)});
    }
    avail.print(std::cout);
    std::cout << "\nStriping wins the fault-free load-balance column; "
                 "replication wins every\navailability column — the paper's "
                 "argument for replication in distributed\nstorage clusters, "
                 "reproduced end to end.\n";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
