// E7 / Section 4.3: the simulated-annealing solver for scalable encoding
// bit rates.  The paper omits its SA results for space; this harness
// reports what that section would have shown: the achieved objective,
// mean encoding bit rate, replication degree, and load imbalance as the
// storage budget grows, against the lowest-rate round-robin initial
// solution and a fixed-rate Adams+SLF reference.
#include <cstdlib>
#include <iostream>

#include "src/core/adams_replication.h"
#include "src/core/greedy_scalable.h"
#include "src/core/sa_solver.h"
#include "src/core/slf_placement.h"
#include "src/exp/scenario.h"
#include "src/util/cli.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"
#include "src/util/table.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"

namespace {

using namespace vodrep;

double mean_rate_mbps(const ScalableSolution& s, const BitrateLadder& ladder) {
  OnlineStats stats;
  for (double rate : s.bitrates(ladder)) stats.add(units::to_mbps(rate));
  return stats.mean();
}

double degree_of(const ScalableSolution& s) {
  OnlineStats stats;
  for (const auto& servers : s.placement) {
    stats.add(static_cast<double>(servers.size()));
  }
  return stats.mean();
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags("vodrep_sa_scalable",
                 "Section 4.3: simulated annealing for scalable bit rates");
  flags.add_int("videos", 100, "catalogue size M");
  flags.add_int("servers", 8, "cluster size N");
  flags.add_double("theta", 0.75, "Zipf skew");
  flags.add_double("lambda", 30.0, "peak arrival rate, requests/minute");
  flags.add_int("seed", 2002, "annealer seed");
  flags.add_int("chains", 4, "independent annealing chains (parsa-style)");
  flags.add_bool("quick", false, "small fast configuration (CI smoke mode)");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    const auto m = static_cast<std::size_t>(flags.get_int("videos"));
    const auto n = static_cast<std::size_t>(flags.get_int("servers"));
    const double theta = flags.get_double("theta");
    const double lambda_per_min = flags.get_double("lambda");
    const bool quick = flags.get_bool("quick");

    ScalableProblem problem;
    problem.videos.duration_sec = units::minutes(90);
    problem.videos.popularity = zipf_popularity(quick ? 40 : m, theta);
    problem.cluster.num_servers = n;
    problem.cluster.bandwidth_bps_per_server = units::gbps(1.8);
    problem.ladder.rates_bps = {units::mbps(1), units::mbps(2), units::mbps(3),
                                units::mbps(4), units::mbps(6),
                                units::mbps(8)};
    problem.expected_peak_requests = lambda_per_min * 90.0;
    problem.weights.alpha = 1.0;
    problem.weights.beta = 1.0;

    SaSolverOptions options;
    options.anneal.initial_temperature = 1.0;
    options.anneal.moves_per_temperature = quick ? 60 : 400;
    options.anneal.final_temperature = 1e-3;
    options.anneal.stall_steps = quick ? 15 : 60;
    options.chains =
        quick ? 2 : static_cast<std::size_t>(flags.get_int("chains"));
    ThreadPool pool;

    std::cout << "== Scalable-bit-rate replication and placement via "
                 "simulated annealing ==\n"
              << "M=" << problem.videos.count() << " videos, N=" << n
              << " servers, lambda=" << lambda_per_min
              << " req/min, ladder {1,2,3,4,6,8} Mb/s\n\n";

    Table table({"storage_GB_per_server", "objective_initial",
                 "objective_greedy", "objective_sa_paper_nbhd",
                 "objective_sa", "mean_rate_Mbps", "mean_degree", "L_eq2%",
                 "feasible"});
    table.set_precision(3);
    const double storages[] = {30.0, 60.0, 120.0, 240.0};
    for (double storage_gb : storages) {
      problem.cluster.storage_bytes_per_server = units::gigabytes(storage_gb);
      const ScalableSolution initial = lowest_rate_round_robin(problem);
      const double initial_objective = solution_objective(problem, initial);
      const double greedy_objective =
          solution_objective(problem, greedy_scalable(problem));
      // The paper's neighborhood verbatim (growth + repair only): it stalls
      // on the storage-full plateau — see EXPERIMENTS.md E7.
      SaSolverOptions paper_options = options;
      paper_options.shrink_probability = 0.0;
      const SaSolverResult paper_result = solve_scalable(
          problem, static_cast<std::uint64_t>(flags.get_int("seed")),
          paper_options, &pool);
      const SaSolverResult result = solve_scalable(
          problem, static_cast<std::uint64_t>(flags.get_int("seed")), options,
          &pool);
      const ServerUsage usage = compute_usage(problem, result.solution);
      table.add_row(
          {storage_gb, initial_objective, greedy_objective,
           paper_result.objective, result.objective,
           mean_rate_mbps(result.solution, problem.ladder),
           degree_of(result.solution),
           100.0 * imbalance_max_relative(usage.bandwidth_bps),
           std::string(result.feasible ? "yes" : "no")});
    }
    table.print(std::cout);

    // Fixed-rate reference: everything at 4 Mb/s, optimal replication +
    // SLF placement, at the largest storage point.
    std::cout << "\nfixed-rate (4 Mb/s) Adams+SLF reference at 240 GB: ";
    {
      FixedRateProblem fixed;
      fixed.videos = problem.videos;
      fixed.cluster = problem.cluster;
      fixed.cluster.storage_bytes_per_server = units::gigabytes(240);
      fixed.bitrate_bps = units::mbps(4);
      const AdamsReplication adams;
      const std::size_t budget = std::min(
          fixed.total_replica_capacity(), fixed.videos.count() * n);
      const ReplicationPlan plan =
          adams.replicate(fixed.videos.popularity, n, budget);
      std::cout << "degree " << plan.degree() << ", mean rate 4.000 Mb/s\n";
    }
    std::cout
        << "\nThe SA solver trades encoding quality against replication "
           "degree as storage\ntightens — the paper's central "
           "quality/availability trade-off.  Note the\nobjective_sa_paper_"
           "nbhd column: the neighborhood exactly as the paper states\nit "
           "(growth moves + repair) stalls on the storage-full plateau far "
           "below the\ngreedy allocator; adding explicit shrink moves "
           "(objective_sa) lets annealing\nre-pack storage and pass greedy "
           "at sufficient budget.\n";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
