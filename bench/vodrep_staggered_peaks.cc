// E20 / the paper's Section 3.1 same-peak assumption: "Because of the same
// peak period assumption, the video replication and placement is
// conservative as it places videos for the peak period."
//
// Two content classes share the cluster: a daytime catalogue and a
// prime-time catalogue, each with its own single-peak arrival profile over
// a six-hour evening.  The provisioning is the paper's (conservative,
// one-shot, combined popularity).  Comparing the aligned-peaks workload
// (the paper's worst case) against staggered peaks of the same total
// volume quantifies how much capacity the conservative assumption leaves
// idle — and how much hotter a staggered cluster can be driven before the
// same rejection level appears.
#include <cstdlib>
#include <iostream>

#include "src/core/pipeline.h"
#include "src/exp/scenario.h"
#include "src/online/provisioner.h"
#include "src/sim/simulator.h"
#include "src/util/cli.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/units.h"
#include "src/workload/multiclass.h"
#include "src/workload/popularity.h"

namespace {

using namespace vodrep;

/// Builds the two-class spec.  Each class owns half the id space with a
/// Zipf(theta) distribution inside it; the peak windows are 90 minutes.
MulticlassSpec make_spec(std::size_t videos, double theta, double peak_rate,
                         double base_rate, bool staggered) {
  const std::size_t segments = 12;  // 6 hours in 30-minute segments
  MulticlassSpec spec;
  spec.segment_sec = units::minutes(30);
  const auto zipf = zipf_popularity(videos / 2, theta);

  ClassProfile daytime;
  daytime.popularity_by_id.assign(videos, 0.0);
  for (std::size_t i = 0; i < videos / 2; ++i) {
    daytime.popularity_by_id[i] = zipf[i];
  }
  ClassProfile prime;
  prime.popularity_by_id.assign(videos, 0.0);
  for (std::size_t i = 0; i < videos / 2; ++i) {
    prime.popularity_by_id[videos / 2 + i] = zipf[i];
  }
  // Aligned: both classes peak on segments [4, 7).  Staggered: daytime
  // peaks [2, 5), prime time [7, 10).
  if (staggered) {
    daytime.rate_per_segment =
        single_peak_profile(segments, 2, 5, base_rate, peak_rate);
    prime.rate_per_segment =
        single_peak_profile(segments, 7, 10, base_rate, peak_rate);
  } else {
    daytime.rate_per_segment =
        single_peak_profile(segments, 4, 7, base_rate, peak_rate);
    prime.rate_per_segment =
        single_peak_profile(segments, 4, 7, base_rate, peak_rate);
  }
  spec.classes = {daytime, prime};
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags("vodrep_staggered_peaks",
                 "How conservative is the same-peak-period assumption?");
  flags.add_int("videos", 300, "catalogue size M (split over two classes)");
  flags.add_double("theta", 0.75, "Zipf skew within each class");
  flags.add_double("degree", 1.2, "replication degree");
  flags.add_int("runs", 20, "workload realizations per data point");
  flags.add_bool("quick", false, "small fast configuration (CI smoke mode)");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    std::size_t videos = static_cast<std::size_t>(flags.get_int("videos"));
    std::size_t runs = static_cast<std::size_t>(flags.get_int("runs"));
    if (flags.get_bool("quick")) {
      videos = 100;
      runs = 5;
    }
    const double theta = flags.get_double("theta");

    // Provision the paper's way: combined popularity (both classes equally
    // likely overall), one-shot zipf+slf at the requested degree.
    PaperScenario scenario;
    scenario.num_videos = videos;
    scenario.theta = 0.0;  // placeholder; popularity built below
    scenario.replication_degree = flags.get_double("degree");
    std::vector<double> combined(videos, 0.0);
    {
      const auto zipf = zipf_popularity(videos / 2, theta);
      for (std::size_t i = 0; i < videos / 2; ++i) {
        combined[i] = 0.5 * zipf[i];
        combined[videos / 2 + i] = 0.5 * zipf[i];
      }
    }
    // The trace addresses videos by id (class A = first half, class B =
    // second half), so provision in id space.
    const auto replication = make_replication_policy("zipf");
    const auto placement = make_placement_policy("slf");
    const std::size_t budget = scenario.replica_budget();
    const std::size_t capacity =
        (budget + scenario.num_servers - 1) / scenario.num_servers;
    const Layout layout =
        provision_by_id(combined, *replication, *placement,
                        scenario.num_servers, budget, capacity)
            .layout;

    SimConfig config = scenario.sim_config();

    std::cout << "== Same-peak conservatism: aligned vs staggered class "
                 "peaks ==\n"
              << "two classes x " << videos / 2
              << " videos; 6-hour evening; 90-minute class peaks; degree "
              << scenario.replication_degree << "\n\n";
    Table table({"per_class_peak_req_min", "aligned_reject%",
                 "staggered_reject%"});
    table.set_precision(2);
    for (double peak : {12.0, 16.0, 20.0, 24.0, 28.0, 32.0}) {
      OnlineStats aligned_reject;
      OnlineStats staggered_reject;
      for (std::size_t run = 0; run < runs; ++run) {
        Rng rng(0x5746 ^ (0x9e3779b97f4a7c15ULL * (run + 1)));
        const MulticlassSpec aligned = make_spec(
            videos, theta, units::per_minute(peak), units::per_minute(2.0),
            /*staggered=*/false);
        const MulticlassSpec staggered = make_spec(
            videos, theta, units::per_minute(peak), units::per_minute(2.0),
            /*staggered=*/true);
        Rng rng2 = rng.split(1);
        auto replay = [&](const RequestTrace& trace) {
          SimEngine engine(config);
          ReplicatedPolicy policy(layout, config);
          return engine.run(policy, trace);
        };
        aligned_reject.add(
            replay(generate_multiclass_trace(rng, aligned)).rejection_rate());
        staggered_reject.add(
            replay(generate_multiclass_trace(rng2, staggered))
                .rejection_rate());
      }
      table.add_row({peak, 100.0 * aligned_reject.mean(),
                     100.0 * staggered_reject.mean()});
    }
    table.print(std::cout);
    std::cout << "\nAligned peaks (the provisioning assumption) saturate the "
                 "cluster at roughly\nhalf the per-class rate that staggered "
                 "peaks sustain: provisioning for the\nsame-peak worst case "
                 "is safe but leaves that factor of headroom idle when\n"
                 "peaks spread — the conservatism the paper acknowledges in "
                 "Section 3.1.\n";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
