// NoObsSimEngine: src/sim/engine.cc with the observability hooks removed,
// compiled as its own TU to mirror the library's compilation boundaries
// (see sim_noobs_baseline.h for why the guard needs that symmetry).
#include <algorithm>
#include <cmath>

#include "bench/sim_noobs_baseline.h"
#include "src/util/error.h"

namespace vodrep::noobs {

NoObsSimEngine::NoObsSimEngine(const SimConfig& config) : config_(config) {
  config_.validate();
  const std::size_t n = config_.num_servers;
  servers_.reserve(n);
  capacities_bps_.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    capacities_bps_[s] = config_.bandwidth_of(s);
    servers_.emplace_back(capacities_bps_[s]);
  }
  utilization_.assign(n, 0.0);
  busy_integral_.assign(n, 0.0);
  busy_since_.assign(n, 0.0);
}

SimResult NoObsSimEngine::run(NoObsPolicy& policy, const RequestTrace& trace) {
  require(trace.is_well_formed(), "NoObsSimEngine::run: malformed trace");
  policy.bind(*this);
  result_.total_requests = trace.size();
  for (const Request& request : trace.requests) {
    advance_events(policy, request.arrival_time);
    const PolicyDecision decision = policy.dispatch(request);
    if (!decision.admitted) {
      ++result_.rejected;
    } else if (decision.batched) {
      ++result_.batched;
    } else {
      if (decision.redirected) ++result_.redirected;
      if (decision.via_backbone) ++result_.proxied;
    }
  }
  advance_events(policy, trace.horizon);

  result_.mean_imbalance_eq2 = imbalance_eq2_.mean();
  result_.mean_imbalance_cv = imbalance_cv_.mean();
  result_.mean_imbalance_capacity = imbalance_capacity_.mean();
  result_.peak_imbalance_eq2 = peak_eq2_;
  const std::size_t n = servers_.size();
  result_.served_per_server.resize(n);
  result_.utilization_per_server.assign(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    result_.served_per_server[s] = servers_[s].served_total();
    if (trace.horizon > 0.0) {
      const double integral =
          busy_integral_[s] +
          servers_[s].busy_bps() * (trace.horizon - busy_since_[s]);
      result_.utilization_per_server[s] =
          integral / (trace.horizon * capacities_bps_[s]);
    }
  }
  return result_;
}

void NoObsSimEngine::admit(std::size_t s, double bitrate_bps) {
  pre_load_change(s);
  servers_[s].admit(bitrate_bps);
  post_load_change(s);
}

void NoObsSimEngine::release(std::size_t s, double bitrate_bps) {
  pre_load_change(s);
  servers_[s].release(bitrate_bps);
  post_load_change(s);
}

std::size_t NoObsSimEngine::fail(std::size_t s) {
  pre_load_change(s);
  const std::size_t dropped = servers_[s].fail();
  post_load_change(s);
  return dropped;
}

EventHeap::Id NoObsSimEngine::schedule_departure(double time,
                                                 std::size_t stream) {
  return departures_.push(time, stream);
}

void NoObsSimEngine::cancel_departure(EventHeap::Id id) {
  departures_.cancel(id);
}

void NoObsSimEngine::advance_events(NoObsPolicy& policy, double now) {
  const auto& failures = config_.failures;
  for (;;) {
    const bool have_departure =
        !departures_.empty() && departures_.min_time() <= now;
    const bool have_failure = next_failure_ < failures.size() &&
                              failures[next_failure_].time <= now;
    if (have_failure &&
        (!have_departure ||
         failures[next_failure_].time <= departures_.min_time())) {
      const ServerFailure& failure = failures[next_failure_++];
      integrate_to(failure.time);
      result_.disrupted += policy.on_crash(failure.server);
      continue;
    }
    if (!have_departure) break;
    const EventHeap::Event event = departures_.pop_min();
    integrate_to(event.time);
    policy.on_departure(event.payload);
  }
  integrate_to(now);
}

void NoObsSimEngine::integrate_to(double t) {
  const double dt = t - now_;
  if (dt <= 0.0) return;
  const auto n = static_cast<double>(servers_.size());
  const double max = current_max_utilization();
  if (max <= 0.0) {
    utilization_sum_ = 0.0;
    utilization_sumsq_ = 0.0;
  }
  const double mean = utilization_sum_ / n;
  double eq2 = 0.0;
  double cv = 0.0;
  if (mean > 0.0) {
    eq2 = std::max(0.0, (max - mean) / mean);
    const double variance =
        std::max(0.0, utilization_sumsq_ / n - mean * mean);
    cv = std::sqrt(variance) / mean;
  }
  imbalance_eq2_.add(eq2, dt);
  imbalance_cv_.add(cv, dt);
  imbalance_capacity_.add(std::max(0.0, max - mean), dt);
  peak_eq2_ = std::max(peak_eq2_, eq2);
  now_ = t;
}

void NoObsSimEngine::pre_load_change(std::size_t s) {
  busy_integral_[s] += servers_[s].busy_bps() * (now_ - busy_since_[s]);
  busy_since_[s] = now_;
}

void NoObsSimEngine::post_load_change(std::size_t s) {
  const double updated = servers_[s].busy_bps() / capacities_bps_[s];
  const double previous = utilization_[s];
  utilization_[s] = updated;
  utilization_sum_ += updated - previous;
  utilization_sumsq_ += updated * updated - previous * previous;
  if (s == max_server_) {
    if (updated < previous) max_dirty_ = true;
  } else if (!max_dirty_ && updated > utilization_[max_server_]) {
    max_server_ = s;
  }
}

double NoObsSimEngine::current_max_utilization() const {
  if (max_dirty_) {
    max_server_ = static_cast<std::size_t>(
        std::max_element(utilization_.begin(), utilization_.end()) -
        utilization_.begin());
    max_dirty_ = false;
  }
  return utilization_[max_server_];
}

}  // namespace vodrep::noobs
