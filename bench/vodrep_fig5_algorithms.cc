// E5 / Figure 5: impact of the four replication+placement combinations on
// the rejection rate.  Four panels, as in the paper:
//   (a) degree 1.2, theta = 0.75    (b) degree 1.4, theta = 0.75
//   (c) degree 1.2, theta = 0.25    (d) degree 1.4, theta = 0.25
#include <cstdlib>
#include <iostream>

#include "src/exp/experiments.h"
#include "src/util/cli.h"

int main(int argc, char** argv) {
  using namespace vodrep;
  CliFlags flags("vodrep_fig5_algorithms",
                 "Figure 5: rejection rate per algorithm combination");
  flags.add_int("runs", 20, "workload realizations per data point");
  flags.add_int("points", 12, "arrival-rate sweep points");
  flags.add_int("videos", 300, "catalogue size M");
  flags.add_bool("quick", false, "small fast configuration (CI smoke mode)");
  flags.add_bool("csv", false, "emit CSV instead of aligned tables");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    ExperimentOptions options;
    options.runs = static_cast<std::size_t>(flags.get_int("runs"));
    options.sweep_points = static_cast<std::size_t>(flags.get_int("points"));
    options.num_videos = static_cast<std::size_t>(flags.get_int("videos"));
    if (flags.get_bool("quick")) {
      options.runs = 5;
      options.sweep_points = 6;
      options.num_videos = 100;
    }

    struct Panel {
      const char* tag;
      double degree;
      double theta;
    };
    const Panel panels[] = {
        {"(a)", 1.2, 0.75},
        {"(b)", 1.4, 0.75},
        {"(c)", 1.2, 0.25},
        {"(d)", 1.4, 0.25},
    };
    std::cout << "== Figure 5: impact of replication/placement algorithms on "
                 "rejection rate ==\n"
              << "(columns: rejection % per combination; rows: arrival rate "
                 "in requests/minute)\n";
    for (const Panel& panel : panels) {
      std::cout << "\n-- " << panel.tag << " replication degree "
                << panel.degree << ", theta = " << panel.theta << " --\n";
      {
        const Table table = fig5_panel(panel.theta, panel.degree, options);
        if (flags.get_bool("csv")) {
          table.print_csv(std::cout);
        } else {
          table.print(std::cout);
        }
      }
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
