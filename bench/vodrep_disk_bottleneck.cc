// E18 / validating the paper's Section 3.1 assumption that "outgoing
// network bandwidth is the major performance bottleneck".
//
// The round-based disk admission model (src/disk) yields the jitter-free
// stream capacity of a server's storage subsystem.  This harness sweeps the
// disk array size and disk generation against the paper's 1.8 Gb/s link and
// 4 Mb/s streams, showing where the network-bottleneck regime starts and
// how the optimal service-round length moves with the memory budget.
#include <cstdlib>
#include <iostream>

#include "src/disk/disk_model.h"
#include "src/util/cli.h"
#include "src/util/table.h"
#include "src/util/units.h"

int main(int argc, char** argv) {
  using namespace vodrep;
  CliFlags flags("vodrep_disk_bottleneck",
                 "When is the outgoing link really the bottleneck?");
  flags.add_double("network-gbps", 1.8, "server outgoing bandwidth");
  flags.add_double("bitrate-mbps", 4.0, "stream encoding bit rate");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    const double network = units::gbps(flags.get_double("network-gbps"));
    const double bitrate = units::mbps(flags.get_double("bitrate-mbps"));

    struct Generation {
      const char* name;
      DiskSpec spec;
    };
    const Generation generations[] = {
        {"2002 SCSI (40 MB/s)", DiskSpec{0.005, 0.00417, 320e6}},
        {"2002 IDE (25 MB/s)", DiskSpec{0.009, 0.00556, 200e6}},
        {"fast array (80 MB/s)", DiskSpec{0.0035, 0.003, 640e6}},
    };

    std::cout << "== Disk vs network bottleneck (round-based admission, "
                 "R = 1 s, 1 GB buffer pool) ==\n"
              << "network link sustains "
              << static_cast<std::size_t>(network / bitrate)
              << " streams at " << units::to_mbps(bitrate) << " Mb/s\n";
    for (const Generation& generation : generations) {
      Table table({"disks_per_server", "disk_streams", "memory_streams",
                   "sustainable", "bottleneck"});
      for (std::size_t disks : {2u, 4u, 8u, 12u, 16u, 24u}) {
        StorageSubsystem subsystem;
        subsystem.disk = generation.spec;
        subsystem.num_disks = disks;
        const ServerCapacityBreakdown capacity =
            server_capacity(subsystem, network, bitrate);
        table.add_row({static_cast<long long>(disks),
                       static_cast<long long>(capacity.disk_streams),
                       static_cast<long long>(capacity.memory_streams),
                       static_cast<long long>(capacity.sustainable()),
                       std::string(capacity.bottleneck())});
      }
      std::cout << "\n-- " << generation.name << " --\n";
      table.print(std::cout);
    }

    std::cout << "\n-- service-round tuning (2002 SCSI, 12 disks): longer "
                 "rounds amortize seeks\n   until buffers bind --\n";
    Table tuning({"memory_GB", "best_round_sec", "disk_streams_at_best",
                  "memory_streams_at_best"});
    tuning.set_precision(2);
    for (double memory_gb : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      StorageSubsystem subsystem;
      subsystem.num_disks = 12;
      subsystem.memory_bytes = units::gigabytes(memory_gb);
      const double best = best_round_length(subsystem, bitrate);
      subsystem.round_sec = best;
      tuning.add_row(
          {memory_gb, best,
           static_cast<long long>(max_streams_disk(subsystem, bitrate)),
           static_cast<long long>(max_streams_memory(subsystem, bitrate))});
    }
    tuning.print(std::cout);
    std::cout << "\nWith ~12+ contemporary disks per server the storage "
                 "subsystem out-delivers the\n1.8 Gb/s link and the paper's "
                 "network-bottleneck assumption holds; smaller or\nslower "
                 "arrays put the bottleneck on disk and the replication "
                 "analysis would\nhave to re-run against the disk stream "
                 "counts instead.\n";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
