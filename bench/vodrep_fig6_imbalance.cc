// E6 / Figure 6: impact of the algorithm combinations on the time-averaged
// load-imbalance degree L (Eq. 2) across arrival rates.  The paper shows
// theta = 1.0 with replication degrees 1.2 (a) and 1.4 (b).
#include <cstdlib>
#include <iostream>

#include "src/exp/experiments.h"
#include "src/util/cli.h"

int main(int argc, char** argv) {
  using namespace vodrep;
  CliFlags flags("vodrep_fig6_imbalance",
                 "Figure 6: load-imbalance degree per algorithm combination");
  flags.add_int("runs", 20, "workload realizations per data point");
  flags.add_int("points", 12, "arrival-rate sweep points");
  flags.add_int("videos", 300, "catalogue size M");
  flags.add_double("theta", 1.0, "Zipf skew (the paper uses 1.0)");
  flags.add_bool("quick", false, "small fast configuration (CI smoke mode)");
  flags.add_bool("csv", false, "emit CSV instead of aligned tables");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    ExperimentOptions options;
    options.runs = static_cast<std::size_t>(flags.get_int("runs"));
    options.sweep_points = static_cast<std::size_t>(flags.get_int("points"));
    options.num_videos = static_cast<std::size_t>(flags.get_int("videos"));
    if (flags.get_bool("quick")) {
      options.runs = 5;
      options.sweep_points = 6;
      options.num_videos = 100;
    }
    const double theta = flags.get_double("theta");

    std::cout << "== Figure 6: impact of algorithms on load imbalance "
                 "degree L (%) ==\n"
              << "(rows: arrival rate in requests/minute; L = time-averaged "
                 "(max_j l_j - l_bar) / B,\n the capacity normalization that "
                 "reproduces the paper's rise-peak-fall curve —\n see "
                 "EXPERIMENTS.md; Eq. 2/3 variants: "
                 "vodrep_ablation_imbalance_defn)\n";
    std::cout << "\n-- (a) replication degree 1.2, theta = " << theta
              << " --\n";
    {
        const Table table = fig6_panel(theta, 1.2, options);
        if (flags.get_bool("csv")) {
          table.print_csv(std::cout);
        } else {
          table.print(std::cout);
        }
      }
    std::cout << "\n-- (b) replication degree 1.4, theta = " << theta
              << " --\n";
    {
        const Table table = fig6_panel(theta, 1.4, options);
        if (flags.get_bool("csv")) {
          table.print_csv(std::cout);
        } else {
          table.print(std::cout);
        }
      }
    std::cout << "\n-- degree sweep to 1.5x saturation (the Section 5.3 "
                 "remark: past the\n   throughput capacity all replication "
                 "degrees merge — every server is\n   overloaded) --\n";
    {
        const Table table = fig6_degree_merge_panel(theta, options);
        if (flags.get_bool("csv")) {
          table.print_csv(std::cout);
        } else {
          table.print(std::cout);
        }
      }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
