// The obs-free baseline for the vodrep_sim_hotpath disabled-overhead guard:
// SimEngine (src/sim/engine.{h,cc}) and ReplicatedPolicy
// (src/sim/replicated_policy.{h,cc}) copied verbatim with every
// observability hook removed — no trace scopes, no dispatch histogram, no
// timeline/event-log pointer tests, no per-event tallies, no rejection
// attribution, no metrics export.
//
// The copies deliberately live in their own translation units, split the
// same way as the library (one engine TU, one policy TU): the guard must
// price the dormant obs hooks, not compiler luck.  When the baseline was
// defined inside the benchmark's own TU, the optimizer devirtualized and
// inlined its policy calls — an advantage the library engine can never
// receive, because its policies live in other TUs — and the measured
// "overhead" was mostly that inlining asymmetry (5-15% phantom cost vs
// ~1-2% for the real dormant hooks).  Keeping the baseline's TU boundaries
// congruent with the library's makes both sides pay identical virtual
// dispatch, so the difference is the instrumentation alone.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/layout.h"
#include "src/sim/dispatcher.h"
#include "src/sim/engine.h"  // SimConfig / SimResult / PolicyDecision
#include "src/sim/event_heap.h"
#include "src/sim/server.h"
#include "src/util/stats.h"
#include "src/workload/trace.h"

namespace vodrep::noobs {

class NoObsSimEngine;

/// StoragePolicy's shape with the engine type swapped; kept abstract and
/// non-local so the policy calls stay genuinely virtual (see file comment).
class NoObsPolicy {
 public:
  NoObsPolicy() = default;
  NoObsPolicy(const NoObsPolicy&) = delete;
  NoObsPolicy& operator=(const NoObsPolicy&) = delete;
  virtual ~NoObsPolicy() = default;
  virtual void bind(NoObsSimEngine& engine) = 0;
  virtual PolicyDecision dispatch(const Request& request) = 0;
  virtual void on_departure(std::size_t stream) = 0;
  virtual std::size_t on_crash(std::size_t server) = 0;
};

class NoObsSimEngine {
 public:
  explicit NoObsSimEngine(const SimConfig& config);

  [[nodiscard]] SimResult run(NoObsPolicy& policy, const RequestTrace& trace);

  [[nodiscard]] std::size_t num_servers() const { return servers_.size(); }
  [[nodiscard]] const std::vector<StreamingServer>& servers() const {
    return servers_;
  }
  [[nodiscard]] const StreamingServer& server(std::size_t s) const {
    return servers_[s];
  }

  void admit(std::size_t s, double bitrate_bps);
  void release(std::size_t s, double bitrate_bps);
  std::size_t fail(std::size_t s);

  EventHeap::Id schedule_departure(double time, std::size_t stream);
  void cancel_departure(EventHeap::Id id);

 private:
  void advance_events(NoObsPolicy& policy, double now);
  void integrate_to(double t);
  void pre_load_change(std::size_t s);
  void post_load_change(std::size_t s);
  [[nodiscard]] double current_max_utilization() const;

  SimConfig config_;
  std::vector<StreamingServer> servers_;
  std::vector<double> capacities_bps_;
  EventHeap departures_;
  std::size_t next_failure_ = 0;
  double now_ = 0.0;
  std::vector<double> utilization_;
  double utilization_sum_ = 0.0;
  double utilization_sumsq_ = 0.0;
  mutable std::size_t max_server_ = 0;
  mutable bool max_dirty_ = false;
  std::vector<double> busy_integral_;
  std::vector<double> busy_since_;
  TimeWeightedMean imbalance_eq2_;
  TimeWeightedMean imbalance_cv_;
  TimeWeightedMean imbalance_capacity_;
  double peak_eq2_ = 0.0;
  SimResult result_;
};

/// ReplicatedPolicy minus the rejection-reason attribution (an obs-era
/// addition the guard prices on the library side).
class NoObsReplicatedPolicy final : public NoObsPolicy {
 public:
  NoObsReplicatedPolicy(const Layout& layout, const SimConfig& config);

  void bind(NoObsSimEngine& engine) override;
  PolicyDecision dispatch(const Request& request) override;
  void on_departure(std::size_t stream) override;
  std::size_t on_crash(std::size_t server) override;

 private:
  struct Stream {
    std::size_t server = 0;
    bool via_backbone = false;
  };

  const SimConfig config_;
  Dispatcher dispatcher_;
  NoObsSimEngine* engine_ = nullptr;
  std::vector<Stream> streams_;
};

}  // namespace vodrep::noobs
