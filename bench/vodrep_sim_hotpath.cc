// Simulation hot-path benchmark: the seed per-event O(N) metric rescan vs
// the unified SimEngine's incremental accumulator (events/sec).
//
// `seed_simulate` below preserves the pre-engine replication simulator
// verbatim — a std::priority_queue of departures and a LoadIntegrator that
// rebuilds the utilization vector and rescans all N servers at every event
// — so the speedup reported here stays honest across future PRs even as
// the engine evolves.  Both paths replay the identical trace and layout
// (batching disabled, so events = arrivals + admitted departures) and the
// benchmark asserts that they produce the same SimResult before reporting.
//
// The benchmark also carries the engine's observability-overhead guard
// (the vodrep_sa_hotpath precedent): NoObsSimEngine/NoObsReplicatedPolicy
// (bench/sim_noobs_baseline.h) are the engine's event loop and policy
// copied verbatim with every obs hook removed, compiled in separate TUs
// that mirror the library's own engine/policy split so both sides pay
// identical virtual dispatch.  The engine with obs compiled in but
// disabled must stay within 3% of the copy or the benchmark exits
// non-zero.  A second guard prices the *enabled* TraceRecorder on the
// sharded engine: with every shard worker recording into its own
// per-thread lane, the widest-S replay must stay within 10% of the
// trace-disabled one.
//
// The last stdout line is machine-readable JSON for tracking the perf
// trajectory across PRs.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "bench/sim_noobs_baseline.h"
#include "src/core/objective.h"
#include "src/core/pipeline.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/sharded_engine.h"
#include "src/sim/simulator.h"
#include "src/util/cli.h"
#include "src/util/error.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"
#include "src/workload/trace.h"

namespace {

using namespace vodrep;

// ---------------------------------------------------------------------------
// The seed replication simulator, kept verbatim as the benchmark baseline.
// ---------------------------------------------------------------------------

struct SeedDeparture {
  double time;
  std::size_t server;
  bool via_backbone;

  bool operator>(const SeedDeparture& other) const {
    return time > other.time;
  }
};

class SeedLoadIntegrator {
 public:
  explicit SeedLoadIntegrator(std::vector<double> capacities_bps)
      : capacities_bps_(std::move(capacities_bps)),
        busy_integral_(capacities_bps_.size(), 0.0) {}

  void advance(const std::vector<StreamingServer>& servers, double now) {
    const double dt = now - last_time_;
    if (dt > 0.0) {
      std::vector<double> utilization(servers.size());
      double sum = 0.0;
      double max = 0.0;
      for (std::size_t s = 0; s < servers.size(); ++s) {
        const double busy = servers[s].busy_bps();
        busy_integral_[s] += busy * dt;
        utilization[s] = busy / capacities_bps_[s];
        sum += utilization[s];
        max = std::max(max, utilization[s]);
      }
      const double mean = sum / static_cast<double>(servers.size());
      const double eq2 = imbalance_max_relative(utilization);
      imbalance_eq2_.add(eq2, dt);
      imbalance_cv_.add(imbalance_cv(utilization), dt);
      imbalance_capacity_.add(std::max(0.0, max - mean), dt);
      peak_eq2_ = std::max(peak_eq2_, eq2);
      last_time_ = now;
    }
  }

  [[nodiscard]] double mean_eq2() const { return imbalance_eq2_.mean(); }
  [[nodiscard]] double mean_cv() const { return imbalance_cv_.mean(); }
  [[nodiscard]] double mean_capacity() const {
    return imbalance_capacity_.mean();
  }
  [[nodiscard]] double peak_eq2() const { return peak_eq2_; }
  [[nodiscard]] std::vector<double> mean_utilization(double horizon) const {
    std::vector<double> util(busy_integral_.size(), 0.0);
    if (horizon > 0.0) {
      for (std::size_t s = 0; s < util.size(); ++s) {
        util[s] = busy_integral_[s] / (horizon * capacities_bps_[s]);
      }
    }
    return util;
  }

 private:
  std::vector<double> capacities_bps_;
  double last_time_ = 0.0;
  TimeWeightedMean imbalance_eq2_;
  TimeWeightedMean imbalance_cv_;
  TimeWeightedMean imbalance_capacity_;
  double peak_eq2_ = 0.0;
  std::vector<double> busy_integral_;
};

SimResult seed_simulate(const Layout& layout, const SimConfig& config,
                        const RequestTrace& trace) {
  config.validate();
  require(trace.is_well_formed(), "seed_simulate: malformed trace");

  std::vector<StreamingServer> servers;
  std::vector<double> capacities(config.num_servers);
  servers.reserve(config.num_servers);
  for (std::size_t s = 0; s < config.num_servers; ++s) {
    capacities[s] = config.bandwidth_of(s);
    servers.emplace_back(capacities[s]);
  }
  Dispatcher dispatcher(layout, config.redirect, config.backbone_bps,
                        config.batching_window_sec, config.video_duration_sec,
                        config.batching_mode);
  std::priority_queue<SeedDeparture, std::vector<SeedDeparture>,
                      std::greater<>>
      departures;
  SeedLoadIntegrator integrator(capacities);

  SimResult result;
  result.total_requests = trace.size();

  std::size_t next_failure = 0;
  auto drain_until = [&](double now) {
    for (;;) {
      const bool have_departure =
          !departures.empty() && departures.top().time <= now;
      const bool have_failure =
          next_failure < config.failures.size() &&
          config.failures[next_failure].time <= now;
      if (have_failure &&
          (!have_departure ||
           config.failures[next_failure].time <= departures.top().time)) {
        const ServerFailure& failure = config.failures[next_failure++];
        integrator.advance(servers, failure.time);
        result.disrupted += servers[failure.server].fail();
        dispatcher.on_server_failed(failure.server);
        continue;
      }
      if (!have_departure) break;
      const SeedDeparture d = departures.top();
      departures.pop();
      integrator.advance(servers, d.time);
      if (!servers[d.server].failed()) {
        servers[d.server].release(config.stream_bitrate_bps);
      }
      if (d.via_backbone) {
        dispatcher.release_backbone(config.stream_bitrate_bps);
      }
    }
    integrator.advance(servers, now);
  };

  for (const Request& request : trace.requests) {
    drain_until(request.arrival_time);
    const auto decision =
        dispatcher.dispatch(request.video, config.stream_bitrate_bps, servers,
                            request.arrival_time);
    if (!decision.has_value()) {
      ++result.rejected;
      continue;
    }
    if (decision->reserves_bandwidth()) {
      servers[decision->server].admit(config.stream_bitrate_bps);
    }
    if (decision->batched) {
      ++result.batched;
      if (decision->patch_duration_sec > 0.0) {
        departures.push(
            SeedDeparture{request.arrival_time + decision->patch_duration_sec,
                          decision->server, false});
      }
      continue;
    }
    if (decision->redirected) ++result.redirected;
    if (decision->via_backbone) ++result.proxied;
    departures.push(SeedDeparture{
        request.arrival_time +
            request.watch_fraction * config.video_duration_sec,
        decision->server, decision->via_backbone});
  }
  drain_until(trace.horizon);

  result.mean_imbalance_eq2 = integrator.mean_eq2();
  result.mean_imbalance_cv = integrator.mean_cv();
  result.mean_imbalance_capacity = integrator.mean_capacity();
  result.peak_imbalance_eq2 = integrator.peak_eq2();
  result.served_per_server.resize(config.num_servers);
  for (std::size_t s = 0; s < config.num_servers; ++s) {
    result.served_per_server[s] = servers[s].served_total();
  }
  result.utilization_per_server = integrator.mean_utilization(trace.horizon);
  return result;
}

// ---------------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------------

struct RunStats {
  double seconds = 0.0;
  double events_per_sec = 0.0;
  std::size_t events = 0;
  SimResult result;
};

template <typename Fn>
RunStats time_replays(Fn&& replay, std::size_t reps) {
  RunStats stats;
  double total_seconds = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    stats.result = replay();
    const auto stop = std::chrono::steady_clock::now();
    total_seconds += std::chrono::duration<double>(stop - start).count();
  }
  // Batching is disabled, so every non-rejected request schedules exactly
  // one departure: events = arrivals + admitted departures.
  stats.events =
      reps * (stats.result.total_requests +
              (stats.result.total_requests - stats.result.rejected));
  stats.seconds = total_seconds;
  stats.events_per_sec =
      static_cast<double>(stats.events) / std::max(total_seconds, 1e-12);
  return stats;
}

void require_same(const SimResult& seed, const SimResult& engine) {
  require(seed.rejected == engine.rejected &&
              seed.redirected == engine.redirected &&
              seed.proxied == engine.proxied &&
              seed.batched == engine.batched &&
              seed.disrupted == engine.disrupted &&
              seed.served_per_server == engine.served_per_server,
          "sim_hotpath: engine diverged from the seed simulator");
}

/// Best-of-N events/sec for one replay path: repeats until the cumulative
/// wall time exceeds `min_total_sec` or `max_reps` runs, rating the path by
/// its fastest repetition (max-of-reps approximates the noise-free speed
/// the <3% overhead guard needs on shared CI machines).
template <typename Fn>
double best_events_per_sec(Fn&& replay, double min_total_sec,
                           std::size_t max_reps) {
  double best_seconds = 1e300;
  double total = 0.0;
  std::size_t events = 0;
  for (std::size_t rep = 0; rep < max_reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const SimResult result = replay();
    const auto stop = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(stop - start).count();
    if (result.total_requests == 0) std::abort();  // keep the replay live
    events = result.total_requests +
             (result.total_requests - result.rejected);
    best_seconds = std::min(best_seconds, seconds);
    total += seconds;
    if (total >= min_total_sec && rep >= 2) break;
  }
  return static_cast<double>(events) / std::max(best_seconds, 1e-12);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags("vodrep_sim_hotpath",
                 "simulation hot path: seed O(N)-rescan event loop vs "
                 "incremental SimEngine, events/sec");
  flags.add_int("videos", 1500, "catalogue size M");
  flags.add_int("servers", 64, "cluster size N");
  flags.add_double("theta", 0.75, "Zipf skew");
  flags.add_double("target-util", 0.9, "offered load as a capacity fraction");
  flags.add_int("reps", 3, "timed replays per path");
  flags.add_int("seed", 2002, "trace seed");
  flags.add_bool("quick", false, "small fast configuration (CI smoke mode)");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    const bool quick = flags.get_bool("quick");
    const auto m =
        quick ? 150u : static_cast<std::size_t>(flags.get_int("videos"));
    const auto n =
        quick ? 12u : static_cast<std::size_t>(flags.get_int("servers"));
    const auto reps =
        quick ? 1u : static_cast<std::size_t>(flags.get_int("reps"));

    SimConfig config;
    config.num_servers = n;
    config.bandwidth_bps_per_server = units::gbps(1.8);
    config.stream_bitrate_bps = units::mbps(4);
    config.video_duration_sec = units::minutes(90);

    const std::vector<double> popularity =
        zipf_popularity(m, flags.get_double("theta"));
    const std::size_t budget = 2 * m;
    const std::size_t capacity = (budget + n - 1) / n + 2;
    const ReplicationPlan plan =
        make_replication_policy("zipf")->replicate(popularity, n, budget);
    const Layout layout = make_placement_policy("slf")->place(
        plan, popularity, n, capacity);

    // Offered load: enough concurrent streams to hold the cluster near the
    // target utilization, so admissions, rejections, and departures all
    // appear in the event mix.
    const double streams_per_server =
        config.bandwidth_bps_per_server / config.stream_bitrate_bps;
    const double target_concurrent = flags.get_double("target-util") *
                                     static_cast<double>(n) *
                                     streams_per_server;
    TraceSpec spec;
    spec.arrival_rate = target_concurrent / config.video_duration_sec;
    spec.horizon = (quick ? 1.5 : 2.5) * config.video_duration_sec;
    spec.popularity = popularity;
    Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
    const RequestTrace trace = generate_trace(rng, spec);

    std::cout << "== simulation hot path: O(N) rescan vs incremental "
                 "engine ==\n"
              << "M=" << m << " videos, N=" << n << " servers, "
              << trace.size() << " requests, " << reps << " rep(s)\n\n";

    const RunStats seed_stats = time_replays(
        [&] { return seed_simulate(layout, config, trace); }, reps);
    const RunStats engine_stats = time_replays(
        [&] { return simulate(layout, config, trace); }, reps);
    require_same(seed_stats.result, engine_stats.result);
    const double speedup =
        engine_stats.events_per_sec / seed_stats.events_per_sec;

    Table table({"path", "seconds", "events_per_sec", "rejection_rate"});
    table.set_precision(3);
    table.add_row({std::string("seed_rescan_loop"), seed_stats.seconds,
                   seed_stats.events_per_sec,
                   seed_stats.result.rejection_rate()});
    table.add_row({std::string("sim_engine"), engine_stats.seconds,
                   engine_stats.events_per_sec,
                   engine_stats.result.rejection_rate()});
    table.print(std::cout);
    std::cout << "\nspeedup: " << speedup << "x  (results verified equal)\n\n";

    // --- obs overhead guard: compiled-in-but-disabled must stay <3% ---
    // NoObsSimEngine is the hook-free baseline; the engine runs with obs
    // compiled in, globally disabled, and no timeline/event-log attached
    // (the default), so the guard prices exactly the dormant hooks.
    // Quick mode's replays finish in well under a millisecond, so the guard
    // needs many repetitions before best-of-reps converges; the full
    // configuration amortizes scheduler noise over ~30 ms replays instead.
    const double min_total_sec = quick ? 0.5 : 1.0;
    const std::size_t max_reps = quick ? 4000 : 8;
    obs::set_metrics_enabled(false);
    obs::TraceRecorder::global().set_enabled(false);
    // Several measurement rounds, keeping each path's fastest round: a
    // single round can still catch a scheduler hiccup on one path only,
    // which reads as phantom overhead.  Stop as soon as the guard passes.
    // Quick mode's sub-millisecond replays are the noisiest, so it gets
    // twice the rounds before the verdict counts.
    double noobs_eps = 0.0;
    double obs_off_eps = 0.0;
    const int guard_rounds = quick ? 6 : 3;
    for (int round = 0; round < guard_rounds; ++round) {
      noobs_eps = std::max(noobs_eps, best_events_per_sec(
                                          [&] {
                                            noobs::NoObsSimEngine engine(config);
                                            noobs::NoObsReplicatedPolicy policy(
                                                layout, config);
                                            return engine.run(policy, trace);
                                          },
                                          min_total_sec, max_reps));
      obs_off_eps = std::max(
          obs_off_eps,
          best_events_per_sec([&] { return simulate(layout, config, trace); },
                              min_total_sec, max_reps));
      if (obs_off_eps >= 0.97 * noobs_eps) break;
    }
    {
      // Sanity: the no-obs copy must replay to the identical result.
      noobs::NoObsSimEngine engine(config);
      noobs::NoObsReplicatedPolicy policy(layout, config);
      require_same(engine.run(policy, trace), engine_stats.result);
    }
    const double off_overhead_pct = 100.0 * (1.0 - obs_off_eps / noobs_eps);
    const bool guard_pass = obs_off_eps >= 0.97 * noobs_eps;
    std::cout << "obs overhead on the engine event loop (best-of-reps):\n"
              << "  hooks compiled out:     " << noobs_eps << " events/s\n"
              << "  compiled in, disabled:  " << obs_off_eps << " events/s  ("
              << off_overhead_pct << " % overhead)\n"
              << "  guard (<3% disabled):   "
              << (guard_pass ? "PASS" : "FAIL") << "\n\n";

    // --- shards axis: sharded engine events/sec vs shard count S ----------
    // Each point replays the identical trace through simulate_sharded and
    // requires the merged result equal to the monolithic engine's before it
    // counts — the scaling curve is only worth recording if the sharded
    // replay is still the same simulation.  hardware_threads says how much
    // parallelism this machine could actually supply for the recorded
    // numbers; on a single-core box the axis is expected to be flat.
    const unsigned hardware_threads =
        std::max(1u, std::thread::hardware_concurrency());
    const std::vector<std::size_t> shard_counts =
        quick ? std::vector<std::size_t>{1, 2}
              : std::vector<std::size_t>{1, 2, 4, 8};
    struct ShardsPoint {
      std::size_t shards = 0;
      std::size_t pool_threads = 0;  // pool workers used; 1 = inline replay
      double events_per_sec = 0.0;
      double speedup = 0.0;  // vs the S=1 point of this same axis
    };
    std::vector<ShardsPoint> shards_axis;
    Table shard_table(
        {"shards", "pool_threads", "threads", "events_per_sec", "speedup"});
    shard_table.set_precision(3);
    for (const std::size_t num_shards : shard_counts) {
      ThreadPool shard_pool(num_shards);
      ShardedSimOptions shard_options;
      shard_options.num_shards = num_shards;
      shard_options.pool = num_shards > 1 ? &shard_pool : nullptr;
      const RunStats stats = time_replays(
          [&] { return simulate_sharded(layout, config, trace, shard_options); },
          reps);
      require_same(engine_stats.result, stats.result);
      ShardsPoint point;
      point.shards = num_shards;
      point.pool_threads =
          shard_options.pool != nullptr ? shard_pool.size() : 1;
      point.events_per_sec = stats.events_per_sec;
      point.speedup = shards_axis.empty()
                          ? 1.0
                          : point.events_per_sec /
                                shards_axis.front().events_per_sec;
      shards_axis.push_back(point);
      shard_table.add_row({static_cast<double>(num_shards),
                           static_cast<double>(point.pool_threads),
                           static_cast<double>(hardware_threads),
                           point.events_per_sec, point.speedup});
    }
    std::cout << "sharded engine scaling (" << hardware_threads
              << " hardware thread(s), results verified equal at every S):\n";
    shard_table.print(std::cout);
    std::cout << "\n";

    // --- trace overhead guard: per-thread lanes must stay <10% at S=4 -----
    // With the TraceRecorder enabled every shard worker records into its
    // own lock-free lane; the sharded replay at S=4 (S=2 in quick mode)
    // must stay within 10% of the trace-disabled replay, or the per-thread
    // buffering has stopped paying for itself.  Same best-of-rounds
    // discipline as the disabled-obs guard above.
    const std::size_t trace_shards =
        std::min<std::size_t>(4, shard_counts.back());
    ThreadPool trace_pool(trace_shards);
    ShardedSimOptions trace_options;
    trace_options.num_shards = trace_shards;
    trace_options.pool = trace_shards > 1 ? &trace_pool : nullptr;
    const auto sharded_replay = [&] {
      return simulate_sharded(layout, config, trace, trace_options);
    };
    double trace_off_eps = 0.0;
    double trace_on_eps = 0.0;
    for (int round = 0; round < guard_rounds; ++round) {
      obs::TraceRecorder::global().set_enabled(false);
      obs::TraceRecorder::global().clear();
      trace_off_eps = std::max(
          trace_off_eps,
          best_events_per_sec(sharded_replay, min_total_sec, max_reps));
      obs::TraceRecorder::global().set_enabled(true);
      trace_on_eps = std::max(
          trace_on_eps,
          best_events_per_sec(sharded_replay, min_total_sec, max_reps));
      obs::TraceRecorder::global().set_enabled(false);
      if (trace_on_eps >= 0.90 * trace_off_eps) break;
    }
    const std::uint64_t trace_events_recorded =
        obs::TraceRecorder::global().events_recorded();
    obs::TraceRecorder::global().clear();
    const double trace_overhead_pct =
        100.0 * (1.0 - trace_on_eps / trace_off_eps);
    const bool trace_guard_pass = trace_on_eps >= 0.90 * trace_off_eps;
    std::cout << "trace overhead on the sharded engine (S=" << trace_shards
              << ", best-of-reps):\n"
              << "  trace disabled:         " << trace_off_eps
              << " events/s\n"
              << "  trace enabled:          " << trace_on_eps << " events/s  ("
              << trace_overhead_pct << " % overhead, "
              << trace_events_recorded << " events recorded)\n"
              << "  guard (<10% enabled):   "
              << (trace_guard_pass ? "PASS" : "FAIL") << "\n\n";

    std::cout << "{\"bench\":\"sim_hotpath\",\"videos\":" << m
              << ",\"servers\":" << n << ",\"requests\":" << trace.size()
              << ",\"events\":" << engine_stats.events / reps
              << ",\"seed_seconds\":" << seed_stats.seconds
              << ",\"seed_events_per_sec\":" << seed_stats.events_per_sec
              << ",\"engine_seconds\":" << engine_stats.seconds
              << ",\"engine_events_per_sec\":" << engine_stats.events_per_sec
              << ",\"speedup\":" << speedup
              << ",\"rejection_rate\":" << engine_stats.result.rejection_rate()
              << ",\"noobs_events_per_sec\":" << noobs_eps
              << ",\"obs_off_events_per_sec\":" << obs_off_eps
              << ",\"obs_off_overhead_pct\":" << off_overhead_pct
              << ",\"obs_guard_pass\":" << (guard_pass ? "true" : "false")
              << ",\"trace_shards\":" << trace_shards
              << ",\"trace_off_events_per_sec\":" << trace_off_eps
              << ",\"trace_on_events_per_sec\":" << trace_on_eps
              << ",\"trace_overhead_pct\":" << trace_overhead_pct
              << ",\"trace_guard_pass\":"
              << (trace_guard_pass ? "true" : "false")
              << ",\"hardware_threads\":" << hardware_threads
              << ",\"shards_axis\":[";
    for (std::size_t i = 0; i < shards_axis.size(); ++i) {
      std::cout << (i == 0 ? "" : ",") << "{\"shards\":"
                << shards_axis[i].shards
                << ",\"pool_threads\":" << shards_axis[i].pool_threads
                << ",\"threads\":" << hardware_threads
                << ",\"events_per_sec\":" << shards_axis[i].events_per_sec
                << ",\"speedup\":" << shards_axis[i].speedup << "}";
    }
    std::cout << "]}\n";
    if (!guard_pass) {
      std::cerr << "error: obs layer costs " << off_overhead_pct
                << " % events/sec while disabled (budget: 3 %)\n";
      return EXIT_FAILURE;
    }
    if (!trace_guard_pass) {
      std::cerr << "error: enabled trace costs " << trace_overhead_pct
                << " % events/sec on the S=" << trace_shards
                << " sharded replay (budget: 10 %)\n";
      return EXIT_FAILURE;
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
