// E11 / Section 3.2: sensitivity to the load-imbalance definition.  The
// paper defines L two ways (Eq. 2 max-relative and Eq. 3 coefficient of
// variation) and uses Eq. 2 "unless otherwise specified"; this harness
// reports both, measured from the same simulations, across the algorithm
// combinations — showing the choice does not change the ranking.
#include <cstdlib>
#include <iostream>

#include "src/core/pipeline.h"
#include "src/exp/runner.h"
#include "src/exp/scenario.h"
#include "src/exp/experiments.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace vodrep;
  CliFlags flags("vodrep_ablation_imbalance_defn",
                 "Ablation: Eq. 2 vs Eq. 3 load-imbalance definitions");
  flags.add_int("runs", 20, "workload realizations per data point");
  flags.add_int("points", 8, "arrival-rate sweep points");
  flags.add_int("videos", 300, "catalogue size M");
  flags.add_double("theta", 1.0, "Zipf skew");
  flags.add_double("degree", 1.2, "replication degree");
  flags.add_bool("quick", false, "small fast configuration (CI smoke mode)");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    PaperScenario scenario;
    scenario.theta = flags.get_double("theta");
    scenario.replication_degree = flags.get_double("degree");
    scenario.num_videos = static_cast<std::size_t>(flags.get_int("videos"));
    RunnerOptions runner;
    runner.runs = static_cast<std::size_t>(flags.get_int("runs"));
    std::size_t points = static_cast<std::size_t>(flags.get_int("points"));
    if (flags.get_bool("quick")) {
      runner.runs = 5;
      points = 4;
      scenario.num_videos = 100;
    }

    std::cout << "== Ablation: imbalance definition Eq. 2 (max-relative) vs "
                 "Eq. 3 (CV) ==\n"
              << "theta=" << scenario.theta << ", degree="
              << scenario.replication_degree << "\n";
    ThreadPool pool;
    for (const AlgorithmCombo& combo : paper_combos()) {
      const auto replication = make_replication_policy(combo.replication);
      const auto placement = make_placement_policy(combo.placement);
      const Layout layout =
          provision(scenario.problem(), *replication, *placement,
                    scenario.replica_budget())
              .layout;
      Table table({"arrival_rate_per_min", "L_eq2%", "L_eq3_cv%",
                   "L_capacity%", "peak_L_eq2%"});
      table.set_precision(2);
      for (double rate : arrival_rate_sweep(scenario, points)) {
        const CellStats stats =
            run_cell(layout, scenario.sim_config(), scenario.trace_spec(rate),
                     runner, &pool);
        table.add_row({rate, 100.0 * stats.mean_imbalance_eq2.mean(),
                       100.0 * stats.mean_imbalance_cv.mean(),
                       100.0 * stats.mean_imbalance_capacity.mean(),
                       100.0 * stats.peak_imbalance_eq2.mean()});
      }
      std::cout << "\n-- " << combo.label() << " --\n";
      table.print(std::cout);
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
