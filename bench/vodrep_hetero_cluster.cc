// E15 / beyond the paper's homogeneity assumption: placement on a
// two-tier fleet.
//
// The paper's cluster is homogeneous; upgrades produce mixed fleets.  This
// harness provisions a catalogue onto 4 big + 4 small servers two ways —
// homogeneous SLF (blind to server speed) and bandwidth-weighted SLF (picks
// the server with the smallest utilization-normalized load) — and compares
// rejection rate and utilization imbalance across arrival rates.
#include <cstdlib>
#include <iostream>

#include "src/core/pipeline.h"
#include "src/hetero/hetero_cluster.h"
#include "src/hetero/hetero_placement.h"
#include "src/sim/simulator.h"
#include "src/util/cli.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"
#include "src/workload/trace.h"

int main(int argc, char** argv) {
  using namespace vodrep;
  CliFlags flags("vodrep_hetero_cluster",
                 "Weighted vs homogeneous SLF on a two-tier fleet");
  flags.add_int("videos", 300, "catalogue size M");
  flags.add_double("theta", 0.75, "Zipf skew");
  flags.add_double("degree", 1.4, "replication degree");
  flags.add_int("runs", 20, "workload realizations per data point");
  flags.add_int("points", 8, "arrival-rate sweep points");
  flags.add_bool("quick", false, "small fast configuration (CI smoke mode)");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    std::size_t m = static_cast<std::size_t>(flags.get_int("videos"));
    std::size_t runs = static_cast<std::size_t>(flags.get_int("runs"));
    std::size_t points = static_cast<std::size_t>(flags.get_int("points"));
    if (flags.get_bool("quick")) {
      m = 100;
      runs = 5;
      points = 5;
    }
    const double theta = flags.get_double("theta");
    const double degree = flags.get_double("degree");

    // Two tiers: 4 servers at 2.4 Gb/s, 4 at 1.2 Gb/s — same 14.4 Gb/s
    // aggregate as the paper's homogeneous cluster, so the saturation rate
    // stays 40 req/min for a 300-video catalogue.
    const std::size_t budget = static_cast<std::size_t>(
        degree * static_cast<double>(m));
    const double replica_bytes =
        units::video_bytes(units::minutes(90), units::mbps(4));
    const std::size_t big_slots = (budget + 11) / 12 * 2;  // 2:1 storage split
    const std::size_t small_slots = (budget + 11) / 12;
    const HeteroClusterSpec cluster = make_two_tier_cluster(
        4, units::gbps(2.4), static_cast<double>(big_slots) * replica_bytes,
        4, units::gbps(1.2), static_cast<double>(small_slots) * replica_bytes);

    const auto popularity = zipf_popularity(m, theta);
    const auto replication = make_replication_policy("zipf");
    const ReplicationPlan plan = replication->replicate(popularity, 8, budget);

    const std::vector<std::size_t> slots =
        cluster.replica_slots(units::minutes(90), units::mbps(4));
    const Layout weighted = weighted_greedy_place(plan, popularity,
                                                  cluster.bandwidth_bps, slots);
    // Blind baseline: the same greedy placement but pretending all links are
    // equal (it still respects the true per-server storage), isolating the
    // value of bandwidth awareness.
    const Layout blind = weighted_greedy_place(
        plan, popularity, std::vector<double>(8, units::gbps(1.8)), slots);

    SimConfig config;
    config.num_servers = 8;
    config.bandwidth_bps_per_server = units::gbps(1.8);  // fallback mean
    config.per_server_bandwidth_bps = cluster.bandwidth_bps;
    config.stream_bitrate_bps = units::mbps(4);
    config.video_duration_sec = units::minutes(90);

    const double saturation =
        cluster.total_bandwidth_bps() / units::mbps(4) / 90.0;
    std::cout << "== Two-tier fleet: 4x2.4 Gb/s + 4x1.2 Gb/s (saturation "
              << saturation << " req/min) ==\n"
              << "M=" << m << ", theta=" << theta << ", degree=" << degree
              << "\n\n";

    Table table({"arrival_rate_per_min", "reject%_blind_slf",
                 "reject%_weighted_slf", "L_util%_blind", "L_util%_weighted"});
    table.set_precision(2);
    for (std::size_t k = 0; k < points; ++k) {
      const double rate = saturation * (0.3 + 0.8 * static_cast<double>(k) /
                                                  static_cast<double>(points - 1));
      OnlineStats blind_reject;
      OnlineStats weighted_reject;
      OnlineStats blind_l;
      OnlineStats weighted_l;
      for (std::size_t run = 0; run < runs; ++run) {
        Rng rng(0x4E7E20 ^ (0x9e3779b97f4a7c15ULL * (run + 1)));
        TraceSpec spec;
        spec.arrival_rate = units::per_minute(rate);
        spec.horizon = units::minutes(90);
        spec.popularity = popularity;
        const RequestTrace trace = generate_trace(rng, spec);
        auto replay = [&](const Layout& layout) {
          SimEngine engine(config);
          ReplicatedPolicy policy(layout, config);
          return engine.run(policy, trace);
        };
        const SimResult rb = replay(blind);
        const SimResult rw = replay(weighted);
        blind_reject.add(rb.rejection_rate());
        weighted_reject.add(rw.rejection_rate());
        blind_l.add(rb.mean_imbalance_eq2);
        weighted_l.add(rw.mean_imbalance_eq2);
      }
      table.add_row({rate, 100.0 * blind_reject.mean(),
                     100.0 * weighted_reject.mean(), 100.0 * blind_l.mean(),
                     100.0 * weighted_l.mean()});
    }
    table.print(std::cout);
    std::cout << "\nBlind SLF equalizes absolute loads, overdriving the "
                 "small tier; weighted SLF\nequalizes utilization and "
                 "defers rejections to the true pooled capacity.\n";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
