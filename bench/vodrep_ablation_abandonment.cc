// E16 / robustness ablation: viewer abandonment.
//
// The paper's model holds every stream for the full 90 minutes.  Real
// viewers abandon; bandwidth frees early and the cluster effectively gains
// capacity.  This harness sweeps the completion probability and checks the
// paper's comparative conclusion — zipf+slf <= classification+round-robin
// on rejection rate — survives the relaxation (absolute rejection levels
// drop, the ordering does not change).
#include <cstdlib>
#include <iostream>

#include "src/core/pipeline.h"
#include "src/exp/runner.h"
#include "src/exp/scenario.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace vodrep;
  CliFlags flags("vodrep_ablation_abandonment",
                 "Robustness of the algorithm ranking to viewer abandonment");
  flags.add_int("videos", 300, "catalogue size M");
  flags.add_double("theta", 0.75, "Zipf skew");
  flags.add_double("degree", 1.2, "replication degree");
  flags.add_double("lambda", 44.0, "arrival rate, requests/minute");
  flags.add_int("runs", 20, "workload realizations per data point");
  flags.add_bool("quick", false, "small fast configuration (CI smoke mode)");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    PaperScenario scenario;
    scenario.num_videos = static_cast<std::size_t>(flags.get_int("videos"));
    scenario.theta = flags.get_double("theta");
    scenario.replication_degree = flags.get_double("degree");
    RunnerOptions runner;
    runner.runs = static_cast<std::size_t>(flags.get_int("runs"));
    if (flags.get_bool("quick")) {
      scenario.num_videos = 100;
      runner.runs = 5;
    }
    const double rate = flags.get_double("lambda");

    const auto best_repl = make_replication_policy("zipf");
    const auto best_place = make_placement_policy("slf");
    const Layout best = provision(scenario.problem(), *best_repl, *best_place,
                                  scenario.replica_budget())
                            .layout;
    const auto base_repl = make_replication_policy("classification");
    const auto base_place = make_placement_policy("round-robin");
    const Layout baseline =
        provision(scenario.problem(), *base_repl, *base_place,
                  scenario.replica_budget())
            .layout;

    std::cout << "== Viewer-abandonment ablation at lambda = " << rate
              << " req/min (above nominal saturation) ==\n"
              << "abandoners quit uniformly in [5%, 100%) of the video\n\n";
    Table table({"completion_prob", "reject%_zipf+slf",
                 "reject%_classification+rr", "ranking_holds"});
    table.set_precision(2);
    ThreadPool pool;
    for (double completion : {1.0, 0.9, 0.75, 0.5, 0.25}) {
      TraceSpec spec = scenario.trace_spec(rate);
      spec.abandonment.completion_probability = completion;
      const CellStats stats_best =
          run_cell(best, scenario.sim_config(), spec, runner, &pool);
      const CellStats stats_base =
          run_cell(baseline, scenario.sim_config(), spec, runner, &pool);
      table.add_row(
          {completion, 100.0 * stats_best.rejection_rate.mean(),
           100.0 * stats_base.rejection_rate.mean(),
           std::string(stats_best.rejection_rate.mean() <=
                               stats_base.rejection_rate.mean() + 1e-9
                           ? "yes"
                           : "NO")});
    }
    table.print(std::cout);
    std::cout << "\nAbandonment frees bandwidth early and lowers every "
                 "curve, but the paper's\nalgorithm ranking is insensitive "
                 "to the whole-video assumption.\n";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
