// E14 / the complementary bandwidth-reduction family the paper cites
// (batching, piggybacking, multicast — its references [1] and [7]): stream
// sharing at the replica level.
//
// A request whose scheduled replica started a stream of the same video
// within the batching window joins that stream for free.  This harness
// sweeps the window and the Zipf skew: sharing thrives on skew (hot videos
// arrive close together), so it complements replication exactly where
// replication is most storage-hungry.
#include <cstdlib>
#include <iostream>

#include "src/core/pipeline.h"
#include "src/exp/runner.h"
#include "src/exp/scenario.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace vodrep;
  CliFlags flags("vodrep_batching",
                 "Stream sharing (batching) vs rejection rate");
  flags.add_int("videos", 300, "catalogue size M");
  flags.add_double("degree", 1.2, "replication degree");
  flags.add_int("runs", 20, "workload realizations per data point");
  flags.add_int("points", 6, "arrival-rate sweep points");
  flags.add_bool("quick", false, "small fast configuration (CI smoke mode)");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    PaperScenario scenario;
    scenario.num_videos = static_cast<std::size_t>(flags.get_int("videos"));
    scenario.replication_degree = flags.get_double("degree");
    RunnerOptions runner;
    runner.runs = static_cast<std::size_t>(flags.get_int("runs"));
    std::size_t points = static_cast<std::size_t>(flags.get_int("points"));
    if (flags.get_bool("quick")) {
      scenario.num_videos = 100;
      runner.runs = 5;
      points = 4;
    }

    const double windows_min[] = {0.0, 0.5, 2.0, 5.0, 10.0};
    ThreadPool pool;
    for (double theta : {0.75, 0.25}) {
      scenario.theta = theta;
      const auto replication = make_replication_policy("zipf");
      const auto placement = make_placement_policy("slf");
      const Layout layout =
          provision(scenario.problem(), *replication, *placement,
                    scenario.replica_budget())
              .layout;

      for (const BatchingMode mode :
           {BatchingMode::kPiggyback, BatchingMode::kPatching}) {
        std::vector<std::string> headers{"arrival_rate_per_min"};
        for (double w : windows_min) {
          headers.push_back("reject%_W=" + std::to_string(w).substr(0, 3) +
                            "min");
        }
        headers.emplace_back("batched%_W=10min");
        Table table(std::move(headers));
        table.set_precision(2);
        for (double rate :
             arrival_rate_sweep(scenario, points, 0.5, 1.5)) {
          std::vector<Table::Cell> row{rate};
          double batched_at_widest = 0.0;
          for (double w : windows_min) {
            SimConfig config = scenario.sim_config();
            config.batching_window_sec = w * 60.0;
            config.batching_mode = mode;
            const CellStats stats =
                run_cell(layout, config, scenario.trace_spec(rate), runner,
                         &pool);
            row.emplace_back(100.0 * stats.rejection_rate.mean());
            if (w == windows_min[4]) {
              batched_at_widest = stats.batched_fraction.mean();
            }
          }
          row.emplace_back(100.0 * batched_at_widest);
          table.add_row(std::move(row));
        }
        std::cout << "\n-- theta = " << theta << ", "
                  << (mode == BatchingMode::kPiggyback
                          ? "piggyback (free joins, upper bound)"
                          : "patching (joins pay the missed prefix)")
                  << " --\n";
        table.print(std::cout);
      }
    }
    std::cout << "\nStream sharing is driven by the per-replica arrival "
                 "density (window x\nlambda x p_i / r_i): a few minutes of "
                 "window absorb most hot-video traffic\nand push the "
                 "effective saturation point past the nominal link capacity."
                 "\nPiggyback (joins free) is the optimistic bound; patching "
                 "(joins pay a\ncatch-up stream for the missed prefix) is "
                 "the deliverable middle ground —\nreal systems land between "
                 "the two tables.\n";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
