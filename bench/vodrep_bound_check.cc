// E8 / Theorems 4.2-4.3: empirical check of the SLF placement bound.  For
// each replication degree, report the achieved expected-load spread, the
// analytic bound max w - min w, and the Eq. 2 imbalance; the bound column
// must dominate the spread column and be non-increasing down the table.
#include <cstdlib>
#include <iostream>

#include "src/exp/experiments.h"
#include "src/util/cli.h"

int main(int argc, char** argv) {
  using namespace vodrep;
  CliFlags flags("vodrep_bound_check",
                 "Theorems 4.2/4.3: SLF placement bound check");
  flags.add_int("videos", 300, "catalogue size M");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    ExperimentOptions options;
    options.num_videos = static_cast<std::size_t>(flags.get_int("videos"));
    std::cout << "== Theorem 4.2/4.3: smallest-load-first placement bound ==\n"
              << "(spread <= bound on every row; bound non-increasing in "
                 "degree)\n";
    for (double theta : {0.25, 0.75, 1.0}) {
      std::cout << "\n-- theta = " << theta << " --\n";
      bound_check_table(theta, options).print(std::cout);
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
