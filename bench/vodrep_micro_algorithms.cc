// E9 / Section 4 complexity claims: google-benchmark microbenchmarks of the
// replication and placement algorithms across catalogue sizes, validating
// the asymptotic claims (Adams O(M + N*C log M), Zipf-interval O(M log M),
// SLF placement, and the brute-force optimal used by the tests).
#include <benchmark/benchmark.h>

#include "src/core/adams_replication.h"
#include "src/core/bounds.h"
#include "src/core/classification_replication.h"
#include "src/core/round_robin_placement.h"
#include "src/core/slf_placement.h"
#include "src/core/zipf_interval_replication.h"
#include "src/workload/popularity.h"
#include "src/workload/sampler.h"
#include "src/workload/trace.h"

namespace {

using namespace vodrep;

constexpr std::size_t kServers = 8;
constexpr double kTheta = 0.75;
constexpr double kDegree = 1.4;

std::size_t budget_for(std::size_t m) {
  return static_cast<std::size_t>(kDegree * static_cast<double>(m));
}

void BM_AdamsReplication(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto popularity = zipf_popularity(m, kTheta);
  const AdamsReplication adams;
  for (auto _ : state) {
    benchmark::DoNotOptimize(adams.replicate(popularity, kServers,
                                             budget_for(m)));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(m));
}
BENCHMARK(BM_AdamsReplication)->Range(64, 16384)->Complexity(benchmark::oNLogN);

void BM_ZipfIntervalReplication(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto popularity = zipf_popularity(m, kTheta);
  const ZipfIntervalReplication zipf;
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.replicate(popularity, kServers,
                                            budget_for(m)));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(m));
}
BENCHMARK(BM_ZipfIntervalReplication)
    ->Range(64, 16384)
    ->Complexity(benchmark::oNLogN);

void BM_ClassificationReplication(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto popularity = zipf_popularity(m, kTheta);
  const ClassificationReplication classification;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        classification.replicate(popularity, kServers, budget_for(m)));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(m));
}
BENCHMARK(BM_ClassificationReplication)
    ->Range(64, 16384)
    ->Complexity(benchmark::oNLogN);

void BM_SlfPlacement(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto popularity = zipf_popularity(m, kTheta);
  const AdamsReplication adams;
  const auto plan = adams.replicate(popularity, kServers, budget_for(m));
  const std::size_t capacity = (budget_for(m) + kServers - 1) / kServers;
  const SmallestLoadFirstPlacement slf;
  for (auto _ : state) {
    benchmark::DoNotOptimize(slf.place(plan, popularity, kServers, capacity));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(m));
}
BENCHMARK(BM_SlfPlacement)->Range(64, 8192)->Complexity();

void BM_RoundRobinPlacement(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto popularity = zipf_popularity(m, kTheta);
  const AdamsReplication adams;
  const auto plan = adams.replicate(popularity, kServers, budget_for(m));
  const std::size_t capacity = (budget_for(m) + kServers - 1) / kServers;
  const RoundRobinPlacement rr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rr.place(plan, popularity, kServers, capacity));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(m));
}
BENCHMARK(BM_RoundRobinPlacement)->Range(64, 8192)->Complexity();

void BM_BruteForceOptimalMaxWeight(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto popularity = zipf_popularity(m, kTheta);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        optimal_max_weight(popularity, kServers, budget_for(m)));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(m));
}
BENCHMARK(BM_BruteForceOptimalMaxWeight)->Range(64, 4096)->Complexity();

void BM_TraceGeneration(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  TraceSpec spec;
  spec.arrival_rate = 40.0 / 60.0;
  spec.horizon = 90.0 * 60.0;
  spec.popularity = zipf_popularity(m, kTheta);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_trace(rng, spec));
  }
}
BENCHMARK(BM_TraceGeneration)->Range(64, 16384);

void BM_AliasSamplerBuild(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto popularity = zipf_popularity(m, kTheta);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiscreteSampler(popularity));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(m));
}
BENCHMARK(BM_AliasSamplerBuild)->Range(64, 65536)->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();
