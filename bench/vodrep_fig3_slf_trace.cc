// E3 / Figure 3: step-by-step trace of the smallest-load-first placement,
// showing the round structure and the per-step server choice.
#include <cstdlib>
#include <iostream>

#include "src/core/adams_replication.h"
#include "src/core/objective.h"
#include "src/core/slf_placement.h"
#include "src/util/cli.h"
#include "src/util/table.h"
#include "src/workload/popularity.h"

int main(int argc, char** argv) {
  using namespace vodrep;
  CliFlags flags("vodrep_fig3_slf_trace",
                 "Figure 3: smallest-load-first placement trace");
  flags.add_int("videos", 8, "number of videos M");
  flags.add_int("servers", 4, "number of servers N");
  flags.add_double("theta", 0.75, "Zipf skew");
  flags.add_double("degree", 1.5, "replication degree");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    const auto m = static_cast<std::size_t>(flags.get_int("videos"));
    const auto n = static_cast<std::size_t>(flags.get_int("servers"));
    const auto popularity = zipf_popularity(m, flags.get_double("theta"));
    const auto budget = static_cast<std::size_t>(
        flags.get_double("degree") * static_cast<double>(m));
    const std::size_t capacity = (budget + n - 1) / n;

    std::cout << "== Figure 3: smallest-load-first placement ==\n"
              << "M=" << m << " videos, N=" << n << " servers, " << budget
              << " replicas, capacity " << capacity << " per server\n\n";

    const AdamsReplication adams;
    const ReplicationPlan plan = adams.replicate(popularity, n, budget);
    const SmallestLoadFirstPlacement slf;
    std::vector<SmallestLoadFirstPlacement::Step> steps;
    const Layout layout =
        slf.place_traced(plan, popularity, n, capacity, &steps);

    Table trace({"round", "video", "weight", "server", "server_load_after"});
    trace.set_precision(5);
    for (const auto& step : steps) {
      trace.add_row({static_cast<long long>(step.round + 1),
                     static_cast<long long>(step.video + 1), step.weight,
                     static_cast<long long>(step.server + 1),
                     step.server_load_after});
    }
    trace.print(std::cout);

    const auto loads = layout.expected_loads(popularity, n);
    std::cout << "\nfinal expected loads:\n";
    Table load_table({"server", "expected_load"});
    load_table.set_precision(5);
    for (std::size_t s = 0; s < n; ++s) {
      load_table.add_row({static_cast<long long>(s + 1), loads[s]});
    }
    load_table.print(std::cout);
    std::cout << "\nload spread = " << load_spread(loads)
              << " (Theorem 4.2 bound: "
              << plan.max_weight(popularity) - plan.min_weight(popularity)
              << "), L (Eq. 2) = " << imbalance_max_relative(loads) << "\n";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
