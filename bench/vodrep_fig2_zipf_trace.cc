// E2 / Figure 2: the Zipf-interval replication scenario — interval
// boundaries generated for the fitted skew parameter u, and the resulting
// per-video replica assignment (the paper illustrates seven videos on four
// servers).
#include <cstdlib>
#include <iostream>

#include "src/core/zipf_interval_replication.h"
#include "src/util/cli.h"
#include "src/util/table.h"
#include "src/workload/popularity.h"

int main(int argc, char** argv) {
  using namespace vodrep;
  CliFlags flags("vodrep_fig2_zipf_trace",
                 "Figure 2: Zipf-interval replication scenario");
  flags.add_int("videos", 7, "number of videos M");
  flags.add_int("servers", 4, "number of servers N");
  flags.add_double("theta", 0.6, "Zipf skew of the popularity vector");
  flags.add_double("degree", 1.75, "target replication degree");
  flags.add_double("u", 2.0, "illustration skew for the boundary table");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    const auto m = static_cast<std::size_t>(flags.get_int("videos"));
    const auto n = static_cast<std::size_t>(flags.get_int("servers"));
    const auto popularity = zipf_popularity(m, flags.get_double("theta"));
    const auto budget = static_cast<std::size_t>(
        flags.get_double("degree") * static_cast<double>(m));

    std::cout << "== Figure 2: Zipf-like-distribution-based replication ==\n"
              << "M=" << m << " videos, N=" << n << " servers, budget "
              << budget << " replicas\n\n";

    const double u = flags.get_double("u");
    const auto boundaries = ZipfIntervalReplication::interval_boundaries(
        popularity.front(), n, u);
    Table boundary_table({"interval_k", "replicas_if_inside", "lower_edge_z_k"});
    boundary_table.set_precision(5);
    for (std::size_t k = 1; k <= n; ++k) {
      boundary_table.add_row(
          {static_cast<long long>(k), static_cast<long long>(n - k + 1),
           k < n ? boundaries[k - 1] : 0.0});
    }
    std::cout << "generate(u=" << u << ") interval boundaries:\n";
    boundary_table.print(std::cout);

    const ZipfIntervalReplication zipf;
    const ReplicationPlan plan = zipf.replicate(popularity, n, budget);
    std::cout << "\nassignment after the binary search on u:\n";
    Table plan_table({"video", "popularity", "replicas", "weight_p/r"});
    plan_table.set_precision(5);
    for (std::size_t i = 0; i < m; ++i) {
      plan_table.add_row({static_cast<long long>(i + 1), popularity[i],
                          static_cast<long long>(plan.replicas[i]),
                          popularity[i] /
                              static_cast<double>(plan.replicas[i])});
    }
    plan_table.print(std::cout);
    std::cout << "\ntotal replicas = " << plan.total_replicas() << " (budget "
              << budget << "), degree = " << plan.degree() << "\n";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
