// Full-file replicas vs an edge prefix-cache tier at equal storage budget
// (the segment/prefix content model, DESIGN.md §9).
//
// Two ways to spend the same bytes:
//   (a) full-replica — replicate whole videos across the origin cluster at
//       degree d (the paper's Section 4 layout: zipf replication + SLF);
//   (b) prefix-cache — keep the origin at degree 1 and spend the replica
//       surplus, byte for byte, on an edge tier that caches each video's
//       prefix (LRU and LFU eviction are both measured).
//
// Both configurations replay the same Poisson/Zipf traces through the
// unified SimEngine; every layout passes a LayoutAuditor check before it is
// simulated, and every run's rejected_by_reason breakdown is asserted to
// sum exactly to its rejected count (the cache path adds the
// cache_miss_origin_busy reason).  The last stdout line is a JSON record
// (tools/run_benches.sh wires it into BENCH_cache.json with the
// cache_events_per_sec rate key).
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <numeric>
#include <vector>

#include "src/audit/audit.h"
#include "src/core/pipeline.h"
#include "src/exp/scenario.h"
#include "src/obs/json_lite.h"
#include "src/sim/prefix_cache_policy.h"
#include "src/sim/replicated_policy.h"
#include "src/util/cli.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"
#include "src/workload/trace.h"

namespace {

using namespace vodrep;

void require_reasons_reconcile(const SimResult& result) {
  std::size_t sum = 0;
  for (std::size_t count : result.rejected_by_reason) sum += count;
  require(sum == result.rejected,
          "vodrep_prefix_cache: rejected_by_reason does not sum to rejected");
}

void require_audited(const Layout& layout, std::size_t num_servers,
                     std::size_t capacity_per_server, const char* what) {
  LayoutAuditor::Limits limits;
  limits.num_servers = num_servers;
  limits.capacity_per_server = capacity_per_server;
  const ReplicationPlan plan = layout.implied_plan();
  const AuditReport report = LayoutAuditor(limits).audit(layout, &plan);
  require(report.ok(), [&] {
    return std::string("vodrep_prefix_cache: ") + what +
           " layout failed audit: " + report.summary();
  });
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags("vodrep_prefix_cache",
                 "Full replicas vs edge prefix cache at equal storage");
  flags.add_int("videos", 300, "catalogue size M");
  flags.add_int("servers", 8, "origin cluster size N");
  flags.add_double("degree", 1.2,
                   "full-replica configuration's replication degree; the "
                   "cache configuration gets the surplus bytes as edge "
                   "capacity");
  flags.add_double("theta", 0.75, "Zipf skew");
  flags.add_double("prefix-fraction", 0.25,
                   "stored prefix fraction per video, in (0, 1]");
  flags.add_int("runs", 5, "trace realizations per data point");
  flags.add_int("points", 5, "arrival-rate sweep points");
  flags.add_bool("quick", false, "small fast configuration (CI smoke mode)");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    PaperScenario scenario;
    scenario.num_videos = static_cast<std::size_t>(flags.get_int("videos"));
    scenario.num_servers = static_cast<std::size_t>(flags.get_int("servers"));
    scenario.theta = flags.get_double("theta");
    scenario.replication_degree = flags.get_double("degree");
    std::size_t runs = static_cast<std::size_t>(flags.get_int("runs"));
    std::size_t points = static_cast<std::size_t>(flags.get_int("points"));
    if (flags.get_bool("quick")) {
      scenario.num_videos = 100;
      runs = 2;
      points = 3;
    }
    const std::size_t m = scenario.num_videos;
    const std::size_t n = scenario.num_servers;
    const std::size_t budget = scenario.replica_budget();
    require(budget > m,
            "--degree must exceed 1 so the cache configuration has a "
            "storage surplus to spend");

    // (a) full-replica layout at degree d; (b) degree-1 origin layout.
    const Layout full_layout =
        provision(scenario.problem(), *make_replication_policy("zipf"),
                  *make_placement_policy("slf"), budget)
            .layout;
    const Layout origin_layout =
        provision(scenario.problem(), *make_replication_policy("uniform"),
                  *make_placement_policy("slf"), m)
            .layout;
    require_audited(full_layout, n, (budget + n - 1) / n, "full-replica");
    require_audited(origin_layout, n, (m + n - 1) / n, "origin");

    // Equal total storage: the replica surplus becomes edge capacity.
    const double replica_bytes = units::video_bytes(
        units::minutes(scenario.duration_minutes),
        units::mbps(scenario.bitrate_mbps));
    const double cache_bytes =
        static_cast<double>(budget - m) * replica_bytes;

    const SimConfig config = scenario.sim_config();
    PrefixCacheOptions lru_options;
    lru_options.eviction = CacheEvictionPolicy::kLru;
    lru_options.capacity_bytes = cache_bytes;
    lru_options.uniform_prefix_fraction = flags.get_double("prefix-fraction");
    PrefixCacheOptions lfu_options = lru_options;
    lfu_options.eviction = CacheEvictionPolicy::kLfu;

    Table table({"arrival_rate_per_min", "reject%_full", "reject%_lru",
                 "reject%_lfu", "hit%_lru", "hit%_lfu"});
    table.set_precision(2);
    double full_rejects = 0.0, lru_rejects = 0.0, lfu_rejects = 0.0;
    double total_requests = 0.0;
    std::uint64_t lru_hits = 0, lru_misses = 0;
    std::uint64_t lfu_hits = 0, lfu_misses = 0;
    std::uint64_t cache_events = 0;
    double cache_seconds = 0.0;
    for (double rate : arrival_rate_sweep(scenario, points, 0.6, 1.2)) {
      double row_requests = 0.0;
      double row_full = 0.0, row_lru = 0.0, row_lfu = 0.0;
      double row_lru_hit = 0.0, row_lfu_hit = 0.0;
      for (std::size_t run = 0; run < runs; ++run) {
        Rng rng(2002 + 7919 * run);
        const RequestTrace trace =
            generate_trace(rng, scenario.trace_spec(rate));

        SimEngine full_engine(config);
        ReplicatedPolicy full_policy(full_layout, config);
        const SimResult full = full_engine.run(full_policy, trace);
        require_reasons_reconcile(full);

        SimResult cached[2];
        const PrefixCacheOptions* options[2] = {&lru_options, &lfu_options};
        for (int which = 0; which < 2; ++which) {
          SimEngine engine(config);
          PrefixCachePolicy policy(origin_layout, config, *options[which]);
          const auto start = std::chrono::steady_clock::now();
          cached[which] = engine.run(policy, trace);
          const auto stop = std::chrono::steady_clock::now();
          cache_seconds +=
              std::chrono::duration<double>(stop - start).count();
          require_reasons_reconcile(cached[which]);
          cache_events +=
              cached[which].cache_hits + cached[which].cache_misses;
        }

        row_requests += static_cast<double>(trace.size());
        row_full += static_cast<double>(full.rejected);
        row_lru += static_cast<double>(cached[0].rejected);
        row_lfu += static_cast<double>(cached[1].rejected);
        row_lru_hit += cached[0].cache_hit_ratio();
        row_lfu_hit += cached[1].cache_hit_ratio();
        lru_hits += cached[0].cache_hits;
        lru_misses += cached[0].cache_misses;
        lfu_hits += cached[1].cache_hits;
        lfu_misses += cached[1].cache_misses;
      }
      const double denom = row_requests > 0.0 ? row_requests : 1.0;
      table.add_row({rate, 100.0 * row_full / denom, 100.0 * row_lru / denom,
                     100.0 * row_lfu / denom,
                     100.0 * row_lru_hit / static_cast<double>(runs),
                     100.0 * row_lfu_hit / static_cast<double>(runs)});
      full_rejects += row_full;
      lru_rejects += row_lru;
      lfu_rejects += row_lfu;
      total_requests += row_requests;
    }
    std::cout << "-- theta = " << scenario.theta << ", degree "
              << scenario.replication_degree << " full-replica vs degree-1 "
              << "origin + " << units::to_gigabytes(cache_bytes)
              << " GB edge prefix cache (fraction "
              << flags.get_double("prefix-fraction") << ") --\n";
    table.print(std::cout);
    std::cout << "\nBoth configurations spend the same bytes; the cache "
                 "configuration trades\nreplica diversity for prefix "
                 "locality, so it wins where the working set\nfits the edge "
                 "and loses once misses force full origin streams.\n\n";

    using obs::JsonValue;
    JsonValue record = JsonValue::object();
    record.set("name", JsonValue::string("vodrep_prefix_cache"));
    record.set("videos", JsonValue::integer_u64(m));
    record.set("servers", JsonValue::integer_u64(n));
    record.set("degree", JsonValue::number(scenario.replication_degree));
    record.set("theta", JsonValue::number(scenario.theta));
    record.set("prefix_fraction",
               JsonValue::number(flags.get_double("prefix-fraction")));
    record.set("cache_gb",
               JsonValue::number(units::to_gigabytes(cache_bytes)));
    record.set("runs", JsonValue::integer_u64(runs));
    record.set("cache_events_per_sec",
               JsonValue::number(cache_seconds > 0.0
                                     ? static_cast<double>(cache_events) /
                                           cache_seconds
                                     : 0.0));
    const double denom = total_requests > 0.0 ? total_requests : 1.0;
    record.set("full_reject_rate", JsonValue::number(full_rejects / denom));
    record.set("lru_reject_rate", JsonValue::number(lru_rejects / denom));
    record.set("lfu_reject_rate", JsonValue::number(lfu_rejects / denom));
    const auto ratio = [](std::uint64_t hits, std::uint64_t misses) {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    };
    record.set("lru_hit_ratio", JsonValue::number(ratio(lru_hits, lru_misses)));
    record.set("lfu_hit_ratio", JsonValue::number(ratio(lfu_hits, lfu_misses)));
    record.write(std::cout);
    std::cout << "\n";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
