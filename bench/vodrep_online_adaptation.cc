// E13 / Section 4.1.2: dynamic re-replication on a drifting workload.
// Compares the one-shot static provisioning against the estimator-driven
// adaptive controller and the true-popularity oracle over a multi-epoch
// horizon, for both gradual (rank-swap) and abrupt (new-release hot-swap)
// drift.
#include <cstdlib>
#include <iostream>

#include "src/online/adaptation_study.h"
#include "src/util/cli.h"

int main(int argc, char** argv) {
  using namespace vodrep;
  CliFlags flags("vodrep_online_adaptation",
                 "Dynamic re-replication under popularity drift");
  flags.add_int("videos", 300, "catalogue size M");
  flags.add_int("epochs", 14, "number of daily peak periods");
  flags.add_double("theta", 0.75, "initial Zipf skew");
  flags.add_double("degree", 1.2, "replication degree");
  flags.add_double("lambda", 38.0, "peak arrival rate, requests/minute");
  flags.add_double("decay", 0.5, "estimator decay per epoch");
  flags.add_double("replan-threshold", 0.0,
                   "L1 estimate shift required to re-provision");
  flags.add_int("seed", 20020407, "experiment seed");
  flags.add_bool("quick", false, "small fast configuration (CI smoke mode)");
  try {
    if (!flags.parse(argc, argv)) return EXIT_SUCCESS;
    AdaptationStudyConfig config;
    config.num_videos = static_cast<std::size_t>(flags.get_int("videos"));
    config.epochs = static_cast<std::size_t>(flags.get_int("epochs"));
    config.theta = flags.get_double("theta");
    config.replication_degree = flags.get_double("degree");
    config.arrival_rate_per_sec = flags.get_double("lambda") / 60.0;
    config.estimator_decay = flags.get_double("decay");
    config.replan_threshold = flags.get_double("replan-threshold");
    if (flags.get_bool("quick")) {
      config.num_videos = 100;
      config.epochs = 6;
    }
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));

    std::cout << "== Dynamic re-replication under popularity drift ==\n"
              << "M=" << config.num_videos << ", degree "
              << config.replication_degree << ", lambda "
              << flags.get_double("lambda") << " req/min, " << config.epochs
              << " daily epochs\n";

    std::cout << "\n-- gradual drift: 5% of the catalogue swaps rank every "
                 "day --\n";
    config.drift = DriftSpec{DriftKind::kRankSwap, 0.05};
    run_adaptation_study(config, seed).print(std::cout);

    std::cout << "\n-- abrupt drift: two chart-topping releases every day "
                 "--\n";
    config.drift = DriftSpec{DriftKind::kHotSwap, 2.0};
    run_adaptation_study(config, seed ^ 0xD1F7).print(std::cout);

    std::cout << "\n-- ablation: migration-aware incremental placement vs "
                 "from-scratch SLF re-placement\n   (gradual drift; compare "
                 "the migrated_GB columns) --\n";
    config.drift = DriftSpec{DriftKind::kRankSwap, 0.05};
    config.incremental_placement = false;
    std::cout << "\nfrom-scratch re-placement:\n";
    run_adaptation_study(config, seed).print(std::cout);
    config.incremental_placement = true;

    std::cout << "\nStatic provisioning decays with the workload; the "
                 "adaptive controller tracks\nthe oracle to within "
                 "estimation noise.  Incremental placement realizes the "
                 "same plans\nfor a small fraction of the migration traffic "
                 "that from-scratch SLF\nre-placement pays.\n";
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
