#include "src/online/adaptation_study.h"

#include <gtest/gtest.h>

#include <sstream>

namespace vodrep {
namespace {

AdaptationStudyConfig small_config() {
  AdaptationStudyConfig config;
  config.num_videos = 60;
  config.epochs = 5;
  config.arrival_rate_per_sec = 38.0 / 60.0;
  return config;
}

TEST(AdaptationStudy, ProducesOneRowPerEpoch) {
  const Table table = run_adaptation_study(small_config(), 1);
  EXPECT_EQ(table.rows(), 5u);
  EXPECT_EQ(table.columns(), 7u);
}

TEST(AdaptationStudy, DeterministicGivenSeed) {
  const Table a = run_adaptation_study(small_config(), 42);
  const Table b = run_adaptation_study(small_config(), 42);
  std::ostringstream sa;
  std::ostringstream sb;
  a.print_csv(sa);
  b.print_csv(sb);
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(AdaptationStudy, ZeroDriftMeansNoChurnAndNoMigrationAfterWarmup) {
  AdaptationStudyConfig config = small_config();
  config.drift = DriftSpec{DriftKind::kRankSwap, 0.0};
  config.epochs = 4;
  const Table table = run_adaptation_study(config, 7);
  std::ostringstream os;
  table.print_csv(os);
  // All churn values are 0.00 on a static workload.
  std::string csv = os.str();
  EXPECT_NE(csv.find("0,0.00"), std::string::npos);
}

TEST(AdaptationStudy, RunsUnderHotSwapDrift) {
  AdaptationStudyConfig config = small_config();
  config.drift = DriftSpec{DriftKind::kHotSwap, 1.0};
  EXPECT_NO_THROW((void)run_adaptation_study(config, 3));
}

TEST(AdaptationStudy, ThresholdReducesMigrationTraffic) {
  AdaptationStudyConfig eager = small_config();
  eager.drift = DriftSpec{DriftKind::kRankSwap, 0.02};
  AdaptationStudyConfig lazy = eager;
  lazy.replan_threshold = 2.0;  // effectively never re-provision
  const Table eager_table = run_adaptation_study(eager, 11);
  const Table lazy_table = run_adaptation_study(lazy, 11);
  // The lazy controller moves no bytes; its table must show zero in the
  // migrated_GB column for every epoch.  (CSV spot check on the last row.)
  std::ostringstream os;
  lazy_table.print_csv(os);
  EXPECT_NE(os.str().find(",0.00,0.00"), std::string::npos);
  (void)eager_table;
}

}  // namespace
}  // namespace vodrep
