#include "src/core/scalable.h"

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

ScalableProblem small_problem() {
  ScalableProblem p;
  p.videos.duration_sec = units::minutes(90);
  p.videos.popularity = zipf_popularity(8, 0.75);
  p.cluster.num_servers = 4;
  p.cluster.bandwidth_bps_per_server = units::gbps(1.8);
  p.cluster.storage_bytes_per_server = units::gigabytes(30);
  p.ladder.rates_bps = {units::mbps(1), units::mbps(2), units::mbps(4),
                        units::mbps(8)};
  p.expected_peak_requests = 1000.0;
  return p;
}

TEST(BitrateLadder, ValidatesOrdering) {
  BitrateLadder ladder;
  ladder.rates_bps = {units::mbps(1), units::mbps(2)};
  EXPECT_NO_THROW(ladder.validate());
  EXPECT_DOUBLE_EQ(ladder.lowest(), units::mbps(1));
  EXPECT_DOUBLE_EQ(ladder.highest(), units::mbps(2));

  ladder.rates_bps = {units::mbps(2), units::mbps(1)};
  EXPECT_THROW(ladder.validate(), InvalidArgumentError);
  ladder.rates_bps = {units::mbps(2), units::mbps(2)};
  EXPECT_THROW(ladder.validate(), InvalidArgumentError);
  ladder.rates_bps.clear();
  EXPECT_THROW(ladder.validate(), InvalidArgumentError);
}

TEST(ScalableProblem, ValidateChecksAllParts) {
  EXPECT_NO_THROW(small_problem().validate());
  {
    ScalableProblem p = small_problem();
    p.cluster.num_servers = 0;
    EXPECT_THROW(p.validate(), InvalidArgumentError);
  }
  {
    ScalableProblem p = small_problem();
    p.expected_peak_requests = -1.0;
    EXPECT_THROW(p.validate(), InvalidArgumentError);
  }
}

TEST(LowestRateRoundRobin, OneReplicaEachAtFloorRate) {
  const ScalableProblem p = small_problem();
  const ScalableSolution s = lowest_rate_round_robin(p);
  ASSERT_EQ(s.num_videos(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(s.bitrate_index[i], 0u);
    ASSERT_EQ(s.placement[i].size(), 1u);
    EXPECT_EQ(s.placement[i][0], i % 4);
  }
}

TEST(LowestRateRoundRobin, ThrowsWhenStorageTooSmall) {
  ScalableProblem p = small_problem();
  // 1 Mb/s * 90 min = 675 MB per video; two videos per server need 1.35 GB.
  p.cluster.storage_bytes_per_server = units::gigabytes(0.5);
  EXPECT_THROW((void)lowest_rate_round_robin(p), InfeasibleError);
}

TEST(ComputeUsage, MatchesHandComputation) {
  ScalableProblem p = small_problem();
  p.videos.popularity = {0.6, 0.4};
  ScalableSolution s;
  s.bitrate_index = {2, 0};  // 4 Mb/s and 1 Mb/s
  s.placement = {{0, 1}, {1}};
  const ServerUsage usage = compute_usage(p, s);
  // Storage: server 0 holds one 4 Mb/s video (2.7 GB); server 1 holds the
  // same plus a 1 Mb/s video (0.675 GB).
  EXPECT_NEAR(units::to_gigabytes(usage.storage_bytes[0]), 2.7, 1e-9);
  EXPECT_NEAR(units::to_gigabytes(usage.storage_bytes[1]), 3.375, 1e-9);
  EXPECT_DOUBLE_EQ(usage.storage_bytes[2], 0.0);
  // Bandwidth: video 0 -> 1000*0.6/2 = 300 requests per replica at 4 Mb/s;
  // video 1 -> 400 requests at 1 Mb/s.
  EXPECT_NEAR(usage.bandwidth_bps[0], 300.0 * units::mbps(4), 1e-6);
  EXPECT_NEAR(usage.bandwidth_bps[1],
              300.0 * units::mbps(4) + 400.0 * units::mbps(1), 1e-6);
}

TEST(IsFeasible, DetectsEveryViolationKind) {
  ScalableProblem p = small_problem();
  const ScalableSolution base = lowest_rate_round_robin(p);
  EXPECT_TRUE(is_feasible(p, base));
  {
    ScalableSolution s = base;
    s.placement[0] = {};  // no replica
    EXPECT_FALSE(is_feasible(p, s));
  }
  {
    ScalableSolution s = base;
    s.placement[0] = {1, 1};  // duplicate server
    EXPECT_FALSE(is_feasible(p, s));
  }
  {
    ScalableSolution s = base;
    s.placement[0] = {9};  // out of range
    EXPECT_FALSE(is_feasible(p, s));
  }
  {
    ScalableProblem tight = small_problem();
    tight.cluster.storage_bytes_per_server = units::gigabytes(1.4);
    ScalableSolution s = lowest_rate_round_robin(tight);
    s.bitrate_index.assign(8, 3);  // 8 Mb/s -> 5.4 GB each, over storage
    EXPECT_FALSE(is_feasible(tight, s));
  }
}

TEST(SolutionObjective, ImprovesWithQualityAndReplication) {
  const ScalableProblem p = small_problem();
  ScalableSolution s = lowest_rate_round_robin(p);
  const double base = solution_objective(p, s);
  ScalableSolution better = s;
  better.bitrate_index.assign(8, 1);  // one notch up for everything
  EXPECT_GT(solution_objective(p, better), base);
  ScalableSolution replicated = s;
  for (std::size_t i = 0; i < 8; ++i) {
    replicated.placement[i] = {0, 1, 2, 3};
  }
  EXPECT_GT(solution_objective(p, replicated), base);
}

}  // namespace
}  // namespace vodrep
