#include "src/sim/dispatcher.h"

#include <gtest/gtest.h>

#include <limits>

#include "src/util/error.h"
#include "src/util/units.h"

namespace vodrep {
namespace {

constexpr double kRate = 1e6;  // 1 Mb/s streams

Layout two_replica_layout() {
  Layout layout;
  layout.assignment = {{0, 1}, {2}};
  return layout;
}

std::vector<StreamingServer> make_servers(std::size_t n, double capacity) {
  return std::vector<StreamingServer>(n, StreamingServer(capacity));
}

/// Applies a decide-only dispatch decision to the fleet, as the simulation
/// engine does in production (dispatch() itself never mutates servers).
void apply(const std::optional<DispatchDecision>& d,
           std::vector<StreamingServer>& servers, double bitrate_bps) {
  if (d && d->reserves_bandwidth()) servers[d->server].admit(bitrate_bps);
}

TEST(Dispatcher, StaticRoundRobinAlternatesReplicas) {
  const Layout layout = two_replica_layout();
  Dispatcher dispatcher(layout, RedirectMode::kNone, 0.0);
  auto servers = make_servers(3, 10 * kRate);
  const auto d1 = dispatcher.dispatch(0, kRate, servers);
  const auto d2 = dispatcher.dispatch(0, kRate, servers);
  const auto d3 = dispatcher.dispatch(0, kRate, servers);
  ASSERT_TRUE(d1 && d2 && d3);
  EXPECT_EQ(d1->server, 0u);
  EXPECT_EQ(d2->server, 1u);
  EXPECT_EQ(d3->server, 0u);
  EXPECT_FALSE(d1->redirected);
}

TEST(Dispatcher, SingleReplicaAlwaysSameServer) {
  const Layout layout = two_replica_layout();
  Dispatcher dispatcher(layout, RedirectMode::kNone, 0.0);
  auto servers = make_servers(3, 10 * kRate);
  for (int i = 0; i < 5; ++i) {
    const auto d = dispatcher.dispatch(1, kRate, servers);
    ASSERT_TRUE(d);
    EXPECT_EQ(d->server, 2u);
  }
}

TEST(Dispatcher, RejectsWhenScheduledServerIsFull) {
  const Layout layout = two_replica_layout();
  Dispatcher dispatcher(layout, RedirectMode::kNone, 0.0);
  auto servers = make_servers(3, 2 * kRate);
  servers[0].admit(kRate);
  servers[0].admit(kRate);  // server 0 full
  // RR picks server 0 first -> reject even though server 1 is free.
  const auto d = dispatcher.dispatch(0, kRate, servers);
  EXPECT_FALSE(d.has_value());
  // Next RR pick is server 1 -> admitted.
  const auto d2 = dispatcher.dispatch(0, kRate, servers);
  ASSERT_TRUE(d2);
  EXPECT_EQ(d2->server, 1u);
}

TEST(Dispatcher, DispatchDecidesAndApplyReserves) {
  const Layout layout = two_replica_layout();
  Dispatcher dispatcher(layout, RedirectMode::kNone, 0.0);
  auto servers = make_servers(3, 10 * kRate);
  const auto d = dispatcher.dispatch(1, kRate, servers);
  ASSERT_TRUE(d);
  // dispatch() is decide-only: the binding reservation is the caller's.
  EXPECT_DOUBLE_EQ(servers[2].busy_bps(), 0.0);
  apply(d, servers, kRate);
  EXPECT_DOUBLE_EQ(servers[2].busy_bps(), kRate);
}

TEST(Dispatcher, OtherHoldersRedirectIsFree) {
  const Layout layout = two_replica_layout();
  Dispatcher dispatcher(layout, RedirectMode::kOtherHolders, 0.0);
  auto servers = make_servers(3, 2 * kRate);
  servers[0].admit(kRate);
  servers[0].admit(kRate);  // RR target full
  const auto d = dispatcher.dispatch(0, kRate, servers);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->server, 1u);
  EXPECT_TRUE(d->redirected);
  EXPECT_FALSE(d->via_backbone);  // served from its own disk
  EXPECT_DOUBLE_EQ(dispatcher.backbone_busy_bps(), 0.0);
}

TEST(Dispatcher, OtherHoldersRejectsWhenAllHoldersFull) {
  const Layout layout = two_replica_layout();
  Dispatcher dispatcher(layout, RedirectMode::kOtherHolders, 0.0);
  auto servers = make_servers(3, kRate);
  servers[0].admit(kRate);
  servers[1].admit(kRate);
  // Server 2 is idle, but it holds no replica of video 0 and level-1
  // redirection cannot use it.
  EXPECT_FALSE(dispatcher.dispatch(0, kRate, servers).has_value());
}

TEST(Dispatcher, OtherHoldersCannotServeSingleReplicaVideo) {
  const Layout layout = two_replica_layout();
  Dispatcher dispatcher(layout, RedirectMode::kOtherHolders, 0.0);
  auto servers = make_servers(3, kRate);
  servers[2].admit(kRate);  // the only holder of video 1 is full
  EXPECT_FALSE(dispatcher.dispatch(1, kRate, servers).has_value());
}

TEST(Dispatcher, BackboneProxyUsesIdleNonHolder) {
  const Layout layout = two_replica_layout();
  Dispatcher dispatcher(layout, RedirectMode::kBackboneProxy,
                        std::numeric_limits<double>::infinity());
  auto servers = make_servers(3, kRate);
  servers[0].admit(kRate);
  servers[1].admit(kRate);  // every holder of video 0 is full
  const auto d = dispatcher.dispatch(0, kRate, servers);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->server, 2u);
  EXPECT_TRUE(d->redirected);
  EXPECT_TRUE(d->via_backbone);
  EXPECT_DOUBLE_EQ(dispatcher.backbone_busy_bps(), kRate);
}

TEST(Dispatcher, BackboneProxyPrefersFreeHolderRedirect) {
  const Layout layout = two_replica_layout();
  Dispatcher dispatcher(layout, RedirectMode::kBackboneProxy,
                        std::numeric_limits<double>::infinity());
  auto servers = make_servers(3, 2 * kRate);
  servers[0].admit(kRate);
  servers[0].admit(kRate);  // RR target full, co-holder 1 still has room
  const auto d = dispatcher.dispatch(0, kRate, servers);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->server, 1u);
  EXPECT_FALSE(d->via_backbone);  // no backbone needed for a holder detour
  EXPECT_DOUBLE_EQ(dispatcher.backbone_busy_bps(), 0.0);
}

TEST(Dispatcher, BackboneProxyRejectsWhenBackboneExhausted) {
  const Layout layout = two_replica_layout();
  Dispatcher dispatcher(layout, RedirectMode::kBackboneProxy, /*backbone=*/0.0);
  auto servers = make_servers(3, kRate);
  servers[0].admit(kRate);
  servers[1].admit(kRate);
  EXPECT_FALSE(dispatcher.dispatch(0, kRate, servers).has_value());
}

TEST(Dispatcher, ReleaseBackboneFreesProxyBudget) {
  const Layout layout = two_replica_layout();
  Dispatcher dispatcher(layout, RedirectMode::kBackboneProxy, kRate);
  auto servers = make_servers(3, 2 * kRate);
  servers[0].admit(kRate);
  servers[0].admit(kRate);
  servers[1].admit(kRate);
  servers[1].admit(kRate);  // both holders of video 0 full; server 2 idle
  const auto d1 = dispatcher.dispatch(0, kRate, servers);
  ASSERT_TRUE(d1 && d1->via_backbone);
  apply(d1, servers, kRate);
  EXPECT_DOUBLE_EQ(dispatcher.backbone_busy_bps(), kRate);
  // Backbone exhausted: the next proxy attempt fails despite idle capacity.
  EXPECT_FALSE(dispatcher.dispatch(0, kRate, servers).has_value());
  // The proxied stream finishes.
  servers[2].release(kRate);
  dispatcher.release_backbone(kRate);
  EXPECT_DOUBLE_EQ(dispatcher.backbone_busy_bps(), 0.0);
  const auto d3 = dispatcher.dispatch(0, kRate, servers);
  ASSERT_TRUE(d3 && d3->via_backbone);
  EXPECT_EQ(d3->server, 2u);
}

TEST(Dispatcher, RejectsOutOfRangeVideo) {
  const Layout layout = two_replica_layout();
  Dispatcher dispatcher(layout, RedirectMode::kNone, 0.0);
  auto servers = make_servers(3, 10 * kRate);
  EXPECT_THROW((void)dispatcher.dispatch(7, kRate, servers),
               InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
