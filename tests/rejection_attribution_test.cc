// Rejection-reason attribution: every rejection a policy reports must carry
// exactly one typed reason, the per-reason tallies in SimResult must sum to
// the rejection total (the engine counts them always-on, independent of any
// attached event log), and each reason must mean what it says:
//   * kNoReplicaAlive  — replicated organization, every holder crashed;
//   * kStripeUnavailable — striped/hybrid, a scheduled group member crashed;
//   * kNoBandwidth     — the scheduled server(s) were alive but full.
// Deterministic single-request scenarios pin each reason; random worlds
// (same envelope as the differential suite) check the sum invariant across
// all three organizations.
#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <vector>

#include "src/core/layout.h"
#include "src/core/striping.h"
#include "src/obs/event_log.h"
#include "src/sim/hybrid_simulator.h"
#include "src/sim/simulator.h"
#include "src/sim/striped_simulator.h"
#include "src/util/rng.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"
#include "src/workload/trace.h"

namespace vodrep {
namespace {

std::size_t reason_count(const SimResult& result, obs::RejectReason reason) {
  return result.rejected_by_reason[static_cast<std::size_t>(reason)];
}

std::size_t reason_sum(const SimResult& result) {
  return std::accumulate(result.rejected_by_reason.begin(),
                         result.rejected_by_reason.end(), std::size_t{0});
}

void expect_attribution_consistent(const SimResult& result,
                                   bool failures_injected) {
  EXPECT_EQ(reason_sum(result), result.rejected);
  EXPECT_EQ(reason_count(result, obs::RejectReason::kNone), 0u);
  if (!failures_injected) {
    // Availability reasons require a crash; without failures every
    // rejection is a bandwidth rejection.
    EXPECT_EQ(reason_count(result, obs::RejectReason::kNoReplicaAlive), 0u);
    EXPECT_EQ(reason_count(result, obs::RejectReason::kStripeUnavailable),
              0u);
  }
}

RequestTrace two_request_trace(double t_first, double t_second,
                               std::size_t video = 0) {
  RequestTrace trace;
  trace.requests.push_back(Request{t_first, video, 1.0});
  trace.requests.push_back(Request{t_second, video, 1.0});
  trace.horizon = t_second + 100.0;
  return trace;
}

SimConfig base_config(std::size_t num_servers, double streams_per_server) {
  SimConfig config;
  config.num_servers = num_servers;
  config.stream_bitrate_bps = units::mbps(4);
  config.bandwidth_bps_per_server = units::mbps(4) * streams_per_server;
  config.video_duration_sec = 500.0;
  return config;
}

// ---------------------------------------------------------------------------
// Deterministic per-reason scenarios.
// ---------------------------------------------------------------------------

TEST(RejectionAttributionTest, ReplicatedAllHoldersCrashedIsNoReplicaAlive) {
  SimConfig config = base_config(2, 10.0);
  config.failures.push_back(ServerFailure{10.0, 0});
  Layout layout;
  layout.assignment = {{0}};  // video 0 only on the server that crashes
  const RequestTrace trace = two_request_trace(5.0, 20.0);
  const SimResult result = simulate(layout, config, trace);
  EXPECT_EQ(result.rejected, 1u);
  EXPECT_EQ(result.disrupted, 1u);  // the t=5 stream dies in the crash
  EXPECT_EQ(reason_count(result, obs::RejectReason::kNoReplicaAlive), 1u);
  expect_attribution_consistent(result, /*failures_injected=*/true);
}

TEST(RejectionAttributionTest, ReplicatedFullServerIsNoBandwidth) {
  // One server, room for one stream: the overlapping second request is a
  // bandwidth rejection (the holder is alive).
  const SimConfig config = base_config(1, 1.0);
  Layout layout;
  layout.assignment = {{0}};
  const RequestTrace trace = two_request_trace(1.0, 2.0);
  const SimResult result = simulate(layout, config, trace);
  EXPECT_EQ(result.rejected, 1u);
  EXPECT_EQ(reason_count(result, obs::RejectReason::kNoBandwidth), 1u);
  expect_attribution_consistent(result, /*failures_injected=*/false);
}

TEST(RejectionAttributionTest,
     ReplicatedSurvivingHolderFullIsNoBandwidthNotNoReplicaAlive) {
  // Video on {0, 1}; server 0 crashes, server 1 survives but is full.  The
  // rejection is kNoBandwidth: a replica is alive, it just has no room.
  SimConfig config = base_config(2, 1.0);
  config.failures.push_back(ServerFailure{10.0, 0});
  Layout layout;
  layout.assignment = {{0, 1}, {1}};
  RequestTrace trace;
  trace.requests.push_back(Request{5.0, 1, 1.0});   // fills server 1
  trace.requests.push_back(Request{20.0, 0, 1.0});  // RR pick 0 crashed, 1 full
  trace.horizon = 200.0;
  const SimResult result = simulate(layout, config, trace);
  EXPECT_EQ(result.rejected, 1u);
  EXPECT_EQ(reason_count(result, obs::RejectReason::kNoBandwidth), 1u);
  EXPECT_EQ(reason_count(result, obs::RejectReason::kNoReplicaAlive), 0u);
  expect_attribution_consistent(result, /*failures_injected=*/true);
}

TEST(RejectionAttributionTest, StripedCrashedMemberIsStripeUnavailable) {
  SimConfig config = base_config(2, 10.0);
  config.failures.push_back(ServerFailure{10.0, 1});
  const StripedLayout layout = make_striped_layout(1, 2, 2);  // group {0,1}
  const RequestTrace trace = two_request_trace(5.0, 20.0);
  const SimResult result = simulate_striped(layout, config, trace);
  EXPECT_EQ(result.rejected, 1u);
  EXPECT_EQ(reason_count(result, obs::RejectReason::kStripeUnavailable), 1u);
  expect_attribution_consistent(result, /*failures_injected=*/true);
}

TEST(RejectionAttributionTest, StripedFullGroupIsNoBandwidth) {
  // Width-2 stripes over 2 servers, each member has room for one bitrate/2
  // share: the overlapping second stream finds the group alive but full.
  const SimConfig config = base_config(2, 0.5);
  const StripedLayout layout = make_striped_layout(1, 2, 2);
  const RequestTrace trace = two_request_trace(1.0, 2.0);
  const SimResult result = simulate_striped(layout, config, trace);
  EXPECT_EQ(result.rejected, 1u);
  EXPECT_EQ(reason_count(result, obs::RejectReason::kNoBandwidth), 1u);
  expect_attribution_consistent(result, /*failures_injected=*/false);
}

TEST(RejectionAttributionTest, HybridCrashedMemberIsStripeUnavailable) {
  SimConfig config = base_config(2, 10.0);
  config.failures.push_back(ServerFailure{10.0, 0});
  // One copy of one width-2 group: the scheduled group always contains the
  // crashed server (static RR has no other copy to try).
  const HybridLayout layout = make_hybrid_layout(1, 2, 2, 1);
  const RequestTrace trace = two_request_trace(5.0, 20.0);
  const SimResult result = simulate_hybrid(layout, config, trace);
  EXPECT_EQ(result.rejected, 1u);
  EXPECT_EQ(reason_count(result, obs::RejectReason::kStripeUnavailable), 1u);
  expect_attribution_consistent(result, /*failures_injected=*/true);
}

TEST(RejectionAttributionTest, HybridFullGroupIsNoBandwidth) {
  const SimConfig config = base_config(2, 0.5);
  const HybridLayout layout = make_hybrid_layout(1, 2, 2, 1);
  const RequestTrace trace = two_request_trace(1.0, 2.0);
  const SimResult result = simulate_hybrid(layout, config, trace);
  EXPECT_EQ(result.rejected, 1u);
  EXPECT_EQ(reason_count(result, obs::RejectReason::kNoBandwidth), 1u);
  expect_attribution_consistent(result, /*failures_injected=*/false);
}

// ---------------------------------------------------------------------------
// Random-world sum invariant, all three organizations.
// ---------------------------------------------------------------------------

struct World {
  std::size_t num_videos;
  std::size_t num_servers;
  SimConfig config;
  RequestTrace trace;
};

/// Same envelope as the differential suite, biased toward overload and
/// crashes so rejections actually occur.
World random_world(Rng& rng, bool replication_extensions) {
  World world;
  world.num_videos = 5 + rng.uniform_index(30);
  world.num_servers = 2 + rng.uniform_index(7);

  world.config.num_servers = world.num_servers;
  world.config.stream_bitrate_bps = units::mbps(4);
  world.config.bandwidth_bps_per_server =
      units::mbps(4) * static_cast<double>(1 + rng.uniform_index(10));
  world.config.video_duration_sec = rng.uniform(200.0, 2000.0);
  if (replication_extensions) {
    switch (rng.uniform_index(3)) {
      case 0: world.config.redirect = RedirectMode::kNone; break;
      case 1: world.config.redirect = RedirectMode::kOtherHolders; break;
      default: world.config.redirect = RedirectMode::kBackboneProxy; break;
    }
    world.config.backbone_bps = rng.uniform(0.0, 1e8);
    if (rng.bernoulli(0.5)) {
      world.config.batching_window_sec = rng.uniform(1.0, 200.0);
      world.config.batching_mode = rng.bernoulli(0.5)
                                       ? BatchingMode::kPiggyback
                                       : BatchingMode::kPatching;
    }
  }

  const double horizon = rng.uniform(300.0, 2000.0);
  if (rng.bernoulli(0.7)) {
    const std::size_t crashes = 1 + rng.uniform_index(2);
    double t = 0.0;
    for (std::size_t k = 0; k < crashes; ++k) {
      t += rng.uniform(1.0, horizon / 2.0);
      world.config.failures.push_back(ServerFailure{
          t, static_cast<std::size_t>(rng.uniform_index(world.num_servers))});
    }
  }

  TraceSpec spec;
  spec.arrival_rate = rng.uniform(0.1, 1.0);
  spec.horizon = horizon;
  spec.popularity = zipf_popularity(world.num_videos, rng.uniform(0.0, 1.1));
  world.trace = generate_trace(rng, spec);
  return world;
}

Layout random_layout(Rng& rng, std::size_t num_videos,
                     std::size_t num_servers) {
  Layout layout;
  layout.assignment.resize(num_videos);
  std::vector<std::size_t> pool(num_servers);
  for (std::size_t v = 0; v < num_videos; ++v) {
    for (std::size_t s = 0; s < num_servers; ++s) pool[s] = s;
    const std::size_t replicas = 1 + rng.uniform_index(num_servers);
    for (std::size_t r = 0; r < replicas; ++r) {
      const std::size_t pick = r + rng.uniform_index(num_servers - r);
      std::swap(pool[r], pool[pick]);
      layout.assignment[v].push_back(pool[r]);
    }
  }
  return layout;
}

TEST(RejectionAttributionTest, RandomWorldsSumExactlyAcrossOrganizations) {
  Rng rng(0xA77B);
  std::size_t total_rejections = 0;
  for (int trial = 0; trial < 50; ++trial) {
    SCOPED_TRACE(testing::Message() << "trial " << trial);
    {
      const World world = random_world(rng, /*replication_extensions=*/true);
      const Layout layout =
          random_layout(rng, world.num_videos, world.num_servers);
      const SimResult result = simulate(layout, world.config, world.trace);
      expect_attribution_consistent(result, !world.config.failures.empty());
      total_rejections += result.rejected;
    }
    {
      const World world = random_world(rng, /*replication_extensions=*/false);
      const std::size_t width = 1 + rng.uniform_index(world.num_servers);
      const StripedLayout layout =
          make_striped_layout(world.num_videos, world.num_servers, width);
      const SimResult result =
          simulate_striped(layout, world.config, world.trace);
      expect_attribution_consistent(result, !world.config.failures.empty());
      total_rejections += result.rejected;
    }
    {
      const World world = random_world(rng, /*replication_extensions=*/false);
      const std::size_t width = 1 + rng.uniform_index(world.num_servers);
      const std::size_t replicas =
          1 + rng.uniform_index(world.num_servers / width);
      const HybridLayout layout = make_hybrid_layout(
          world.num_videos, world.num_servers, width, replicas);
      const SimResult result =
          simulate_hybrid(layout, world.config, world.trace);
      expect_attribution_consistent(result, !world.config.failures.empty());
      total_rejections += result.rejected;
    }
  }
  // The envelope is biased toward overload: the invariant must have been
  // exercised on real rejections, not vacuously on all-zero tallies.
  EXPECT_GT(total_rejections, 0u);
}

}  // namespace
}  // namespace vodrep
