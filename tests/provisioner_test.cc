#include "src/online/provisioner.h"

#include <gtest/gtest.h>

#include "src/core/adams_replication.h"
#include "src/core/pipeline.h"
#include "src/core/slf_placement.h"
#include "src/util/error.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

TEST(ProvisionById, HotterIdGetsMoreReplicasRegardlessOfOrder) {
  // Popularity by id in scrambled order: id 2 is hottest.
  const std::vector<double> by_id{0.2, 0.1, 0.5, 0.2};
  const AdamsReplication adams;
  const SmallestLoadFirstPlacement slf;
  const IdProvisioningResult result =
      provision_by_id(by_id, adams, slf, 3, 7, 3);
  EXPECT_GE(result.plan.replicas[2], result.plan.replicas[0]);
  EXPECT_GE(result.plan.replicas[2], result.plan.replicas[1]);
  EXPECT_GE(result.plan.replicas[2], result.plan.replicas[3]);
  EXPECT_EQ(result.plan.total_replicas(), 7u);
}

TEST(ProvisionById, MatchesRankSpaceProvisioningUpToPermutation) {
  const auto ranked = zipf_popularity(20, 0.75);
  // Scramble: id i holds the popularity of rank (i * 7) % 20.
  std::vector<double> by_id(20);
  std::vector<std::size_t> rank_of_id(20);
  for (std::size_t i = 0; i < 20; ++i) {
    rank_of_id[i] = (i * 7) % 20;
    by_id[i] = ranked[rank_of_id[i]];
  }
  const AdamsReplication adams;
  const SmallestLoadFirstPlacement slf;
  const IdProvisioningResult scrambled =
      provision_by_id(by_id, adams, slf, 8, 28, 4);
  const ReplicationPlan direct = adams.replicate(ranked, 8, 28);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(scrambled.plan.replicas[i], direct.replicas[rank_of_id[i]])
        << "id " << i;
  }
}

TEST(ProvisionById, LayoutIsValidInIdSpace) {
  const std::vector<double> by_id{0.05, 0.3, 0.1, 0.25, 0.2, 0.1};
  const AdamsReplication adams;
  const SmallestLoadFirstPlacement slf;
  const IdProvisioningResult result =
      provision_by_id(by_id, adams, slf, 4, 9, 3);
  EXPECT_NO_THROW(result.layout.validate(result.plan, 4, 3));
}

TEST(ProvisionById, AcceptsUnnormalizedWeights) {
  const std::vector<double> weights{10.0, 30.0, 60.0};
  const AdamsReplication adams;
  const SmallestLoadFirstPlacement slf;
  const IdProvisioningResult result =
      provision_by_id(weights, adams, slf, 2, 4, 2);
  EXPECT_GE(result.plan.replicas[2], result.plan.replicas[0]);
}

TEST(ProvisionById, TiesBreakDeterministically) {
  const std::vector<double> by_id{0.25, 0.25, 0.25, 0.25};
  const AdamsReplication adams;
  const SmallestLoadFirstPlacement slf;
  const IdProvisioningResult a = provision_by_id(by_id, adams, slf, 2, 6, 3);
  const IdProvisioningResult b = provision_by_id(by_id, adams, slf, 2, 6, 3);
  EXPECT_EQ(a.plan.replicas, b.plan.replicas);
  EXPECT_EQ(a.layout.assignment, b.layout.assignment);
}

TEST(ProvisionById, RejectsBadInput) {
  const AdamsReplication adams;
  const SmallestLoadFirstPlacement slf;
  EXPECT_THROW((void)provision_by_id({}, adams, slf, 2, 4, 2),
               InvalidArgumentError);
  EXPECT_THROW((void)provision_by_id({0.5, 0.0}, adams, slf, 2, 4, 2),
               InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
