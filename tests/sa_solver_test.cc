#include "src/core/sa_solver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/util/units.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

ScalableProblem test_problem(double storage_gb = 30.0) {
  ScalableProblem p;
  p.videos.duration_sec = units::minutes(90);
  p.videos.popularity = zipf_popularity(12, 0.75);
  p.cluster.num_servers = 4;
  p.cluster.bandwidth_bps_per_server = units::gbps(1.0);
  p.cluster.storage_bytes_per_server = units::gigabytes(storage_gb);
  p.ladder.rates_bps = {units::mbps(1), units::mbps(2), units::mbps(4),
                        units::mbps(8)};
  p.expected_peak_requests = 500.0;
  return p;
}

SaSolverOptions quick_options() {
  SaSolverOptions options;
  options.anneal.initial_temperature = 1.0;
  options.anneal.moves_per_temperature = 60;
  options.anneal.final_temperature = 1e-3;
  options.anneal.stall_steps = 20;
  return options;
}

TEST(ScalableSaProblem, InitialSolutionIsFeasible) {
  const ScalableProblem p = test_problem();
  const ScalableSaProblem sa(p, quick_options());
  Rng rng(1);
  const ScalableSolution s = sa.initial(rng);
  EXPECT_TRUE(is_feasible(p, s));
}

TEST(ScalableSaProblem, NeighborsStayFeasible) {
  const ScalableProblem p = test_problem();
  const ScalableSaProblem sa(p, quick_options());
  Rng rng(2);
  ScalableSolution s = sa.initial(rng);
  for (int i = 0; i < 300; ++i) {
    s = sa.neighbor(s, rng);
    ASSERT_TRUE(is_feasible(p, s)) << "move " << i;
  }
}

TEST(ScalableSaProblem, NeighborsPreserveAtLeastOneReplica) {
  const ScalableProblem p = test_problem(8.0);  // tight storage forces repair
  const ScalableSaProblem sa(p, quick_options());
  Rng rng(3);
  ScalableSolution s = sa.initial(rng);
  for (int i = 0; i < 300; ++i) {
    s = sa.neighbor(s, rng);
    for (const auto& servers : s.placement) {
      ASSERT_GE(servers.size(), 1u);
    }
  }
}

TEST(ScalableSaProblem, CostIsNegatedObjectiveWhenFeasible) {
  const ScalableProblem p = test_problem();
  const ScalableSaProblem sa(p, quick_options());
  Rng rng(4);
  const ScalableSolution s = sa.initial(rng);
  EXPECT_NEAR(sa.cost(s), -solution_objective(p, s), 1e-12);
}

TEST(ScalableSaProblem, RepairFixesStorageOverflow) {
  const ScalableProblem p = test_problem(6.0);
  const ScalableSaProblem sa(p, quick_options());
  ScalableSolution s = lowest_rate_round_robin(p);
  s.bitrate_index.assign(12, 3);  // 8 Mb/s everywhere: way over storage
  EXPECT_TRUE(sa.repair(s));
  const ServerUsage usage = compute_usage(p, s);
  for (double bytes : usage.storage_bytes) {
    EXPECT_LE(bytes, p.cluster.storage_bytes_per_server * (1 + 1e-9));
  }
}

TEST(ScalableSaProblem, InPlaceMovesMatchReferenceCost) {
  // The delta-evaluation contract: along a random propose/commit/revert
  // walk, cost_before + delta_cost must equal the from-scratch cost() of the
  // extracted solution, and revert must restore the pre-move cost.
  const ScalableProblem p = test_problem(15.0);  // tight enough to repair
  const ScalableSaProblem sa(p, quick_options());
  Rng rng(6);
  ScalableSaProblem::Scratch scratch = sa.make_scratch(sa.initial(rng));
  double current = sa.cost(sa.extract(scratch));
  int applied = 0;
  for (int i = 0; i < 400; ++i) {
    if (!sa.propose(scratch, rng)) continue;
    ++applied;
    const double candidate = current + sa.delta_cost(scratch);
    const double reference = sa.cost(sa.extract(scratch));
    ASSERT_NEAR(reference, candidate,
                1e-9 * std::max(1.0, std::abs(reference)))
        << "move " << i;
    if (rng.bernoulli(0.5)) {
      sa.commit(scratch);
      current = candidate;
    } else {
      sa.revert(scratch);
      ASSERT_NEAR(sa.cost(sa.extract(scratch)), current,
                  1e-9 * std::max(1.0, std::abs(current)))
          << "revert " << i;
    }
  }
  EXPECT_GT(applied, 100);  // the walk actually exercised the move set
  // Repair runs inside propose, so the walk never leaves the storage
  // constraint (bandwidth is soft).
  const ServerUsage usage = compute_usage(p, sa.extract(scratch));
  for (double bytes : usage.storage_bytes) {
    EXPECT_LE(bytes, p.cluster.storage_bytes_per_server * (1 + 1e-9));
  }
}

TEST(SolveScalable, SaturatedNeighborhoodReportsNoopMoves) {
  // Three videos on two servers with abundant resources: the annealer soon
  // hosts everything everywhere at the top rate, after which every growth
  // move is a no-op the engine must skip and count.
  ScalableProblem p;
  p.videos.duration_sec = units::minutes(90);
  p.videos.popularity = zipf_popularity(3, 0.75);
  p.cluster.num_servers = 2;
  p.cluster.bandwidth_bps_per_server = units::gbps(50.0);
  p.cluster.storage_bytes_per_server = units::gigabytes(1000.0);
  p.ladder.rates_bps = {units::mbps(1), units::mbps(2)};
  p.expected_peak_requests = 10.0;
  SaSolverOptions options = quick_options();
  options.shrink_probability = 0.0;
  options.anneal.stall_steps = 0;
  const SaSolverResult result = solve_scalable(p, 17, options);
  EXPECT_TRUE(result.feasible);
  EXPECT_GT(result.anneal.moves_noop, 0u);
  EXPECT_EQ(result.anneal.moves_proposed + result.anneal.moves_noop,
            result.anneal.temperature_steps *
                options.anneal.moves_per_temperature);
}

TEST(SolveScalable, ImprovesOverInitialSolution) {
  const ScalableProblem p = test_problem();
  const double initial_objective =
      solution_objective(p, lowest_rate_round_robin(p));
  const SaSolverResult result = solve_scalable(p, /*seed=*/11, quick_options());
  EXPECT_TRUE(result.feasible);
  EXPECT_GT(result.objective, initial_objective);
}

TEST(SolveScalable, DeterministicGivenSeed) {
  const ScalableProblem p = test_problem();
  const SaSolverResult a = solve_scalable(p, 21, quick_options());
  const SaSolverResult b = solve_scalable(p, 21, quick_options());
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.solution.bitrate_index, b.solution.bitrate_index);
  EXPECT_EQ(a.solution.placement, b.solution.placement);
}

TEST(SolveScalable, MoreStorageNeverHurtsTheObjective) {
  const SaSolverResult tight = solve_scalable(test_problem(8.0), 31,
                                              quick_options());
  const SaSolverResult roomy = solve_scalable(test_problem(60.0), 31,
                                              quick_options());
  EXPECT_GE(roomy.objective, tight.objective - 0.2);
}

TEST(SolveScalable, MultichainImprovesOverInitialAndStaysFeasible) {
  const ScalableProblem p = test_problem();
  const double initial_objective =
      solution_objective(p, lowest_rate_round_robin(p));
  SaSolverOptions options = quick_options();
  options.chains = 4;
  const SaSolverResult multi = solve_scalable(p, 5, options);
  EXPECT_TRUE(multi.feasible);
  EXPECT_GT(multi.objective, initial_objective);
}

TEST(SolveScalable, MultichainDeterministicWithPool) {
  const ScalableProblem p = test_problem();
  SaSolverOptions options = quick_options();
  options.chains = 3;
  ThreadPool pool(2);
  const SaSolverResult serial = solve_scalable(p, 9, options);
  const SaSolverResult pooled = solve_scalable(p, 9, options, &pool);
  EXPECT_EQ(serial.objective, pooled.objective);
  EXPECT_EQ(serial.solution.placement, pooled.solution.placement);
}

TEST(SolveScalable, PaperNeighborhoodIsSupportedVerbatim) {
  // shrink_probability = 0 reproduces the neighborhood exactly as the paper
  // states it; it must still run and return a feasible improvement.
  const ScalableProblem p = test_problem();
  SaSolverOptions options = quick_options();
  options.shrink_probability = 0.0;
  const SaSolverResult result = solve_scalable(p, 13, options);
  EXPECT_TRUE(result.feasible);
  EXPECT_GT(result.objective,
            solution_objective(p, lowest_rate_round_robin(p)));
}

TEST(SolveScalable, ShrinkMovesEscapeTheStorageFullPlateau) {
  // With moderate storage the growth-only neighborhood plateaus once every
  // server fills; explicit shrink moves keep improving.  Same seed, same
  // annealing budget — only the neighborhood differs.
  const ScalableProblem p = test_problem(20.0);
  SaSolverOptions paper = quick_options();
  paper.anneal.stall_steps = 0;  // run both to the full schedule
  paper.shrink_probability = 0.0;
  SaSolverOptions shrink = paper;
  shrink.shrink_probability = 0.2;
  const double paper_objective = solve_scalable(p, 99, paper).objective;
  const double shrink_objective = solve_scalable(p, 99, shrink).objective;
  EXPECT_GT(shrink_objective, paper_objective);
}

TEST(SolveScalable, SaturatedClusterStillReturnsFeasibleStorage) {
  // Huge request volume: bandwidth is irreparably overloaded (soft), but
  // the returned solution must still satisfy storage and placement rules.
  ScalableProblem p = test_problem();
  p.expected_peak_requests = 1e6;
  const SaSolverResult result = solve_scalable(p, 41, quick_options());
  const ServerUsage usage = compute_usage(p, result.solution);
  for (double bytes : usage.storage_bytes) {
    EXPECT_LE(bytes, p.cluster.storage_bytes_per_server * (1 + 1e-9));
  }
}

}  // namespace
}  // namespace vodrep
