#include "src/exp/runner.h"

#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/util/error.h"

namespace vodrep {
namespace {

struct RunnerFixture {
  PaperScenario scenario;
  Layout layout;

  RunnerFixture() {
    scenario.num_videos = 40;   // small instance for fast tests
    scenario.theta = 0.75;
    scenario.replication_degree = 1.2;
    const auto replication = make_replication_policy("zipf");
    const auto placement = make_placement_policy("slf");
    layout = provision(scenario.problem(), *replication, *placement,
                       scenario.replica_budget())
                 .layout;
  }
};

TEST(RunCell, AggregatesRequestedRunCount) {
  RunnerFixture f;
  RunnerOptions options;
  options.runs = 5;
  const CellStats stats = run_cell(f.layout, f.scenario.sim_config(),
                                   f.scenario.trace_spec(20.0), options);
  EXPECT_EQ(stats.rejection_rate.count(), 5u);
  EXPECT_EQ(stats.mean_imbalance_eq2.count(), 5u);
}

TEST(RunCell, DeterministicGivenSeed) {
  RunnerFixture f;
  RunnerOptions options;
  options.runs = 4;
  options.base_seed = 777;
  const CellStats a = run_cell(f.layout, f.scenario.sim_config(),
                               f.scenario.trace_spec(35.0), options);
  const CellStats b = run_cell(f.layout, f.scenario.sim_config(),
                               f.scenario.trace_spec(35.0), options);
  EXPECT_DOUBLE_EQ(a.rejection_rate.mean(), b.rejection_rate.mean());
  EXPECT_DOUBLE_EQ(a.mean_imbalance_eq2.mean(), b.mean_imbalance_eq2.mean());
}

TEST(RunCell, PoolAndSerialAgree) {
  RunnerFixture f;
  RunnerOptions options;
  options.runs = 4;
  ThreadPool pool(2);
  const CellStats serial = run_cell(f.layout, f.scenario.sim_config(),
                                    f.scenario.trace_spec(30.0), options);
  const CellStats pooled = run_cell(f.layout, f.scenario.sim_config(),
                                    f.scenario.trace_spec(30.0), options,
                                    &pool);
  EXPECT_DOUBLE_EQ(serial.rejection_rate.mean(),
                   pooled.rejection_rate.mean());
  EXPECT_DOUBLE_EQ(serial.mean_imbalance_cv.mean(),
                   pooled.mean_imbalance_cv.mean());
}

TEST(RunCell, LowLoadHasNoRejections) {
  RunnerFixture f;
  RunnerOptions options;
  options.runs = 3;
  const CellStats stats = run_cell(f.layout, f.scenario.sim_config(),
                                   f.scenario.trace_spec(2.0), options);
  EXPECT_DOUBLE_EQ(stats.rejection_rate.mean(), 0.0);
}

TEST(RunCell, OverloadRejectsSubstantially) {
  RunnerFixture f;
  RunnerOptions options;
  options.runs = 3;
  const double overload = 2.0 * f.scenario.saturation_rate_per_min();
  const CellStats stats = run_cell(f.layout, f.scenario.sim_config(),
                                   f.scenario.trace_spec(overload), options);
  EXPECT_GT(stats.rejection_rate.mean(), 0.2);
}

TEST(RunCell, RejectsZeroRuns) {
  RunnerFixture f;
  RunnerOptions options;
  options.runs = 0;
  EXPECT_THROW((void)run_cell(f.layout, f.scenario.sim_config(),
                              f.scenario.trace_spec(20.0), options),
               InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
