// Cross-organization equivalence: at the degenerate corners of the design
// space the organizations coincide, and the simulators must agree there.
//
//   * striped with stripe width k = 1 == replication with one replica per
//     video on the same server (a "stripe group" of one is just a replica);
//   * hybrid with k = 1 and r groups == replication with r replicas in the
//     same holder order (group-level round-robin degenerates to the
//     dispatcher's per-video replica round-robin).
//
// Counters and served counts must match exactly; the integrated float
// metrics agree to rounding (the two policies hit the integrator at
// slightly different event boundaries around crashes).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "src/core/striping.h"
#include "src/sim/hybrid_simulator.h"
#include "src/sim/simulator.h"
#include "src/sim/striped_simulator.h"
#include "src/util/rng.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"
#include "src/workload/trace.h"

namespace vodrep {
namespace {

void expect_near_rel(double a, double b, const char* what,
                     double rel_tol = 1e-7) {
  EXPECT_NEAR(a, b, rel_tol * std::max(1.0, std::abs(a))) << what;
}

void expect_equivalent(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.redirected, b.redirected);
  EXPECT_EQ(a.proxied, b.proxied);
  EXPECT_EQ(a.batched, b.batched);
  EXPECT_EQ(a.disrupted, b.disrupted);
  EXPECT_EQ(a.served_per_server, b.served_per_server);
  expect_near_rel(a.mean_imbalance_eq2, b.mean_imbalance_eq2, "eq2");
  // Wider tolerance for CV: sumsq/n - mean^2 cancels catastrophically at
  // (near-)equal loads, leaving ~1e-7 residue where the true value is 0.
  expect_near_rel(a.mean_imbalance_cv, b.mean_imbalance_cv, "cv", 1e-5);
  expect_near_rel(a.mean_imbalance_capacity, b.mean_imbalance_capacity,
                  "capacity");
  expect_near_rel(a.peak_imbalance_eq2, b.peak_imbalance_eq2, "peak");
  ASSERT_EQ(a.utilization_per_server.size(), b.utilization_per_server.size());
  for (std::size_t s = 0; s < a.utilization_per_server.size(); ++s) {
    expect_near_rel(a.utilization_per_server[s], b.utilization_per_server[s],
                    "utilization");
  }
}

struct World {
  std::size_t num_videos;
  std::size_t num_servers;
  SimConfig config;
  RequestTrace trace;
};

World random_world(Rng& rng) {
  World world;
  world.num_videos = 5 + rng.uniform_index(40);
  world.num_servers = 2 + rng.uniform_index(9);
  world.config.num_servers = world.num_servers;
  world.config.stream_bitrate_bps = units::mbps(4);
  world.config.bandwidth_bps_per_server =
      units::mbps(4) * static_cast<double>(1 + rng.uniform_index(30));
  if (rng.bernoulli(0.3)) {
    world.config.per_server_bandwidth_bps.resize(world.num_servers);
    for (double& b : world.config.per_server_bandwidth_bps) {
      b = units::mbps(4) * static_cast<double>(1 + rng.uniform_index(30));
    }
  }
  world.config.video_duration_sec = rng.uniform(50.0, 2000.0);

  const double horizon = rng.uniform(200.0, 3000.0);
  if (rng.bernoulli(0.5)) {
    const std::size_t crashes = 1 + rng.uniform_index(2);
    double t = 0.0;
    for (std::size_t k = 0; k < crashes; ++k) {
      t += rng.uniform(1.0, horizon / 2.0);
      world.config.failures.push_back(ServerFailure{
          t, static_cast<std::size_t>(rng.uniform_index(world.num_servers))});
    }
  }

  TraceSpec spec;
  spec.arrival_rate = rng.uniform(0.05, 1.0);
  spec.horizon = horizon;
  spec.popularity = zipf_popularity(world.num_videos, rng.uniform(0.0, 1.1));
  if (rng.bernoulli(0.4)) {
    spec.abandonment.completion_probability = rng.uniform(0.2, 1.0);
  }
  world.trace = generate_trace(rng, spec);
  return world;
}

TEST(SimEquivalence, StripeWidthOneEqualsSingleReplicaReplication) {
  Rng rng(0xE9001);
  for (int trial = 0; trial < 40; ++trial) {
    SCOPED_TRACE(testing::Message() << "trial " << trial);
    const World world = random_world(rng);
    const StripedLayout striped =
        make_striped_layout(world.num_videos, world.num_servers, 1);
    // The same assignment expressed as one replica per video.
    Layout replicated;
    replicated.assignment.resize(world.num_videos);
    for (std::size_t v = 0; v < world.num_videos; ++v) {
      ASSERT_EQ(striped.groups[v].size(), 1u);
      replicated.assignment[v] = striped.groups[v];
    }
    const SimResult via_striping =
        simulate_striped(striped, world.config, world.trace);
    const SimResult via_replication =
        simulate(replicated, world.config, world.trace);
    expect_equivalent(via_striping, via_replication);
  }
}

TEST(SimEquivalence, HybridWidthOneEqualsReplicationWithSameHolders) {
  Rng rng(0xE9002);
  for (int trial = 0; trial < 40; ++trial) {
    SCOPED_TRACE(testing::Message() << "trial " << trial);
    const World world = random_world(rng);
    const std::size_t replicas = 1 + rng.uniform_index(world.num_servers);
    const HybridLayout hybrid = make_hybrid_layout(
        world.num_videos, world.num_servers, /*stripe_width=*/1, replicas);
    // Flatten each video's width-1 groups into a replica holder list in the
    // same rotation order the hybrid dispatcher uses.
    Layout replicated;
    replicated.assignment.resize(world.num_videos);
    for (std::size_t v = 0; v < world.num_videos; ++v) {
      for (const auto& group : hybrid.groups[v]) {
        ASSERT_EQ(group.size(), 1u);
        replicated.assignment[v].push_back(group[0]);
      }
    }
    const SimResult via_hybrid =
        simulate_hybrid(hybrid, world.config, world.trace);
    const SimResult via_replication =
        simulate(replicated, world.config, world.trace);
    expect_equivalent(via_hybrid, via_replication);
  }
}

// Regression: the policies copy their SimConfig, so the common pattern of
// constructing one from a temporary (`ReplicatedPolicy(layout,
// scenario.sim_config())`) must not leave a dangling reference.  Under
// asan the old reference member turned this into stack-use-after-scope.
TEST(SimEquivalence, PoliciesCopyTheirConfigSoTemporariesAreSafe) {
  Rng rng(0xE9003);
  const World world = random_world(rng);
  const StripedLayout striped =
      make_striped_layout(world.num_videos, world.num_servers, 1);
  Layout replicated;
  replicated.assignment.resize(world.num_videos);
  for (std::size_t v = 0; v < world.num_videos; ++v) {
    replicated.assignment[v] = striped.groups[v];
  }

  // Builds a policy whose config argument is dead by the time it is used.
  const auto make_config = [&world] { return SimConfig(world.config); };
  SimEngine engine_r(world.config);
  ReplicatedPolicy policy_r(replicated, make_config());
  const SimResult via_temporary = engine_r.run(policy_r, world.trace);

  SimEngine engine_s(world.config);
  StripedPolicy policy_s(striped, make_config());
  const SimResult via_striped = engine_s.run(policy_s, world.trace);

  const SimResult reference = simulate(replicated, world.config, world.trace);
  expect_equivalent(via_temporary, reference);
  expect_equivalent(via_striped, reference);
}

}  // namespace
}  // namespace vodrep
