#include "src/workload/arrivals.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/util/error.h"
#include "src/util/stats.h"

namespace vodrep {
namespace {

TEST(PoissonArrivals, TimesAreSortedWithinHorizon) {
  Rng rng(1);
  const auto times = poisson_arrivals(rng, 2.0, 100.0);
  ASSERT_FALSE(times.empty());
  double prev = 0.0;
  for (double t : times) {
    EXPECT_GE(t, prev);
    EXPECT_LT(t, 100.0);
    prev = t;
  }
}

TEST(PoissonArrivals, CountMatchesRateTimesHorizon) {
  Rng rng(2);
  OnlineStats counts;
  for (int i = 0; i < 200; ++i) {
    counts.add(static_cast<double>(poisson_arrivals(rng, 5.0, 50.0).size()));
  }
  // Expected count = 250, stddev ~ sqrt(250) ~ 15.8; 200 replications give a
  // tight mean.
  EXPECT_NEAR(counts.mean(), 250.0, 5.0);
}

TEST(PoissonArrivals, InterarrivalsAreExponential) {
  Rng rng(3);
  const double rate = 4.0;
  const auto times = poisson_arrivals(rng, rate, 10000.0);
  OnlineStats gaps;
  for (std::size_t i = 1; i < times.size(); ++i) {
    gaps.add(times[i] - times[i - 1]);
  }
  EXPECT_NEAR(gaps.mean(), 1.0 / rate, 0.02);
  // Exponential: stddev == mean.
  EXPECT_NEAR(gaps.stddev(), 1.0 / rate, 0.02);
}

TEST(PoissonArrivals, ZeroRateOrHorizonYieldsNothing) {
  Rng rng(4);
  EXPECT_TRUE(poisson_arrivals(rng, 0.0, 100.0).empty());
  EXPECT_TRUE(poisson_arrivals(rng, 5.0, 0.0).empty());
}

TEST(PoissonArrivals, RejectsNegativeArguments) {
  Rng rng(5);
  EXPECT_THROW((void)poisson_arrivals(rng, -1.0, 10.0), InvalidArgumentError);
  EXPECT_THROW((void)poisson_arrivals(rng, 1.0, -10.0), InvalidArgumentError);
}

TEST(PoissonArrivals, DeterministicGivenSeed) {
  Rng a(6);
  Rng b(6);
  EXPECT_EQ(poisson_arrivals(a, 3.0, 100.0), poisson_arrivals(b, 3.0, 100.0));
}

TEST(UniformArrivals, ExactCountAndSpacing) {
  const auto times = uniform_arrivals(2.0, 10.0);
  ASSERT_EQ(times.size(), 20u);
  EXPECT_DOUBLE_EQ(times[0], 0.25);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_NEAR(times[i] - times[i - 1], 0.5, 1e-12);
  }
  EXPECT_LT(times.back(), 10.0);
}

TEST(UniformArrivals, ZeroRateYieldsNothing) {
  EXPECT_TRUE(uniform_arrivals(0.0, 100.0).empty());
}

TEST(UniformArrivals, RejectsNegativeArguments) {
  EXPECT_THROW((void)uniform_arrivals(-1.0, 10.0), InvalidArgumentError);
  EXPECT_THROW((void)uniform_arrivals(1.0, -1.0), InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
