// Property-based tests: randomized instances checked against the paper's
// invariants (feasibility, optimality, bounds, monotonicity, conservation).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "src/core/adams_replication.h"
#include "src/core/best_fit_placement.h"
#include "src/core/bounds.h"
#include "src/core/classification_replication.h"
#include "src/core/objective.h"
#include "src/core/round_robin_placement.h"
#include "src/core/slf_placement.h"
#include "src/core/uniform_replication.h"
#include "src/core/zipf_interval_replication.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

struct RandomInstance {
  std::vector<double> popularity;
  std::size_t num_servers;
  std::size_t budget;
  std::size_t capacity;  // per-server replica slots, >= ceil(budget / N)
};

RandomInstance random_instance(Rng& rng) {
  RandomInstance inst;
  const std::size_t m = 5 + rng.uniform_index(60);
  inst.num_servers = 2 + rng.uniform_index(9);
  if (rng.bernoulli(0.5)) {
    inst.popularity = zipf_popularity(m, rng.uniform(0.0, 1.2));
  } else {
    std::vector<double> weights(m);
    for (double& w : weights) w = rng.uniform(0.001, 1.0);
    inst.popularity = normalized_popularity(std::move(weights));
  }
  inst.budget = m + rng.uniform_index(m * (inst.num_servers - 1) + 1);
  inst.capacity = (inst.budget + inst.num_servers - 1) / inst.num_servers +
                  rng.uniform_index(3);
  return inst;
}

class ReplicationPropertyTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ReplicationPropertyTest, PlansAreAlwaysFeasible) {
  Rng rng(0xFEED);
  const auto policy = [&] {
    if (std::string(GetParam()) == "adams") {
      return std::unique_ptr<ReplicationPolicy>(new AdamsReplication);
    }
    if (std::string(GetParam()) == "zipf") {
      return std::unique_ptr<ReplicationPolicy>(new ZipfIntervalReplication);
    }
    if (std::string(GetParam()) == "classification") {
      return std::unique_ptr<ReplicationPolicy>(new ClassificationReplication);
    }
    return std::unique_ptr<ReplicationPolicy>(new UniformReplication);
  }();
  for (int trial = 0; trial < 40; ++trial) {
    const RandomInstance inst = random_instance(rng);
    const ReplicationPlan plan =
        policy->replicate(inst.popularity, inst.num_servers, inst.budget);
    EXPECT_NO_THROW(plan.validate(inst.num_servers, inst.budget))
        << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ReplicationPropertyTest,
                         ::testing::Values("adams", "zipf", "classification",
                                           "uniform"));

TEST(Property, AdamsNeverWorseThanOtherPoliciesOnMaxWeight) {
  Rng rng(0xBEEF);
  const AdamsReplication adams;
  const ZipfIntervalReplication zipf;
  const ClassificationReplication classification;
  const UniformReplication uniform;
  for (int trial = 0; trial < 40; ++trial) {
    const RandomInstance inst = random_instance(rng);
    const double adams_max =
        adams.replicate(inst.popularity, inst.num_servers, inst.budget)
            .max_weight(inst.popularity);
    for (const ReplicationPolicy* other :
         {static_cast<const ReplicationPolicy*>(&zipf),
          static_cast<const ReplicationPolicy*>(&classification),
          static_cast<const ReplicationPolicy*>(&uniform)}) {
      const double other_max =
          other->replicate(inst.popularity, inst.num_servers, inst.budget)
              .max_weight(inst.popularity);
      EXPECT_LE(adams_max, other_max + 1e-12)
          << other->name() << " trial " << trial;
    }
  }
}

TEST(Property, AdamsMatchesOptimalThreshold) {
  Rng rng(0xCAFE);
  const AdamsReplication adams;
  for (int trial = 0; trial < 30; ++trial) {
    const RandomInstance inst = random_instance(rng);
    const double achieved =
        adams.replicate(inst.popularity, inst.num_servers, inst.budget)
            .max_weight(inst.popularity);
    EXPECT_NEAR(achieved,
                optimal_max_weight(inst.popularity, inst.num_servers,
                                   inst.budget),
                1e-12)
        << "trial " << trial;
  }
}

class PlacementPropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PlacementPropertyTest, LayoutsAreAlwaysValidAndConserveLoad) {
  Rng rng(0xD00D);
  const AdamsReplication adams;
  std::unique_ptr<PlacementPolicy> policy;
  if (std::string(GetParam()) == "slf") {
    policy = std::make_unique<SmallestLoadFirstPlacement>();
  } else if (std::string(GetParam()) == "round-robin") {
    policy = std::make_unique<RoundRobinPlacement>();
  } else {
    policy = std::make_unique<BestFitPlacement>();
  }
  for (int trial = 0; trial < 40; ++trial) {
    const RandomInstance inst = random_instance(rng);
    const ReplicationPlan plan =
        adams.replicate(inst.popularity, inst.num_servers, inst.budget);
    const Layout layout =
        policy->place(plan, inst.popularity, inst.num_servers, inst.capacity);
    EXPECT_NO_THROW(layout.validate(plan, inst.num_servers, inst.capacity))
        << GetParam() << " trial " << trial;
    const auto loads =
        layout.expected_loads(inst.popularity, inst.num_servers);
    double total = 0.0;
    for (double l : loads) total += l;
    EXPECT_NEAR(total, 1.0, 1e-9) << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PlacementPropertyTest,
                         ::testing::Values("slf", "round-robin", "best-fit"));

TEST(Property, SlfSpreadNeverExceedsHeaviestReplicaWeight) {
  // The uniform invariant that holds on EVERY instance: the absolute load
  // spread of SLF placement is bounded by the heaviest per-replica weight
  // max_i w_i.  (The tighter Theorem 4.2 bound max w - min w is provable
  // only when the replica-distinctness constraint never blocks the
  // least-loaded choice; it holds in the paper's regime M >> N — see
  // slf_placement_test.cc — but is violated by up to ~40x on adversarial
  // small instances, as documented in EXPERIMENTS.md.)
  Rng rng(0xF00D);
  const AdamsReplication adams;
  const SmallestLoadFirstPlacement slf;
  for (int trial = 0; trial < 60; ++trial) {
    const RandomInstance inst = random_instance(rng);
    const ReplicationPlan plan =
        adams.replicate(inst.popularity, inst.num_servers, inst.budget);
    const Layout layout =
        slf.place(plan, inst.popularity, inst.num_servers, inst.capacity);
    const auto loads =
        layout.expected_loads(inst.popularity, inst.num_servers);
    EXPECT_LE(load_spread(loads), plan.max_weight(inst.popularity) + 1e-12)
        << "trial " << trial;
  }
}

TEST(Property, AdamsMaxWeightNonIncreasingInBudget) {
  // The monotone core of Theorem 4.3: more budget never raises the heaviest
  // per-replica weight under optimal (Adams) replication.  The full bound
  // max w - min w is only approximately monotone (min w can dip when a
  // grant lands): we check the endpoints dominate and the max is monotone.
  Rng rng(0xABBA);
  const AdamsReplication adams;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> weights(20 + rng.uniform_index(40));
    for (double& w : weights) w = rng.uniform(0.001, 1.0);
    const auto popularity = normalized_popularity(std::move(weights));
    const std::size_t n = 4 + rng.uniform_index(5);
    double prev_max = 1e18;
    for (std::size_t budget = popularity.size();
         budget <= popularity.size() * n; budget += popularity.size() / 4) {
      const auto plan = adams.replicate(popularity, n, budget);
      EXPECT_LE(plan.max_weight(popularity), prev_max + 1e-15)
          << "trial " << trial;
      prev_max = plan.max_weight(popularity);
    }
    // Endpoints of Theorem 4.3: full replication divides the no-replication
    // bound by N exactly.
    const auto none = adams.replicate(popularity, n, popularity.size());
    const auto full = adams.replicate(popularity, n, popularity.size() * n);
    EXPECT_NEAR(slf_spread_bound(full, popularity),
                slf_spread_bound(none, popularity) / static_cast<double>(n),
                1e-12);
  }
}

TEST(Property, SimulatedServerSharesMatchExpectedLoads) {
  // Cross-module invariant: under static round-robin dispatch with no
  // rejections, each server's share of served requests converges to its
  // expected-load share l_j = sum of p_i / r_i over hosted replicas — the
  // analytic quantity the placement algorithms optimize.
  Rng rng(0x70AD);
  const AdamsReplication adams;
  const SmallestLoadFirstPlacement slf;
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t m = 10 + rng.uniform_index(30);
    const std::size_t n = 2 + rng.uniform_index(5);
    const auto popularity = zipf_popularity(m, rng.uniform(0.2, 1.0));
    const std::size_t budget = m + rng.uniform_index(m);
    const std::size_t capacity = (budget + n - 1) / n + 1;
    const auto plan = adams.replicate(popularity, n, budget);
    const Layout layout = slf.place(plan, popularity, n, capacity);
    const auto expected = layout.expected_loads(popularity, n);

    SimConfig config;
    config.num_servers = n;
    config.bandwidth_bps_per_server = 1e12;  // never reject
    config.stream_bitrate_bps = 4e6;
    config.video_duration_sec = 10.0;
    TraceSpec spec;
    spec.arrival_rate = 50.0;
    spec.horizon = 2000.0;
    spec.popularity = popularity;
    Rng trace_rng = rng.split(static_cast<std::uint64_t>(trial));
    const RequestTrace trace = generate_trace(trace_rng, spec);
    const SimResult result = simulate(layout, config, trace);
    ASSERT_EQ(result.rejected, 0u);

    const auto total = static_cast<double>(trace.size());
    for (std::size_t s = 0; s < n; ++s) {
      const double share =
          static_cast<double>(result.served_per_server[s]) / total;
      EXPECT_NEAR(share, expected[s], 0.02)
          << "trial " << trial << " server " << s;
    }
  }
}

TEST(Property, SlfNeverWorseThanRoundRobinOnEq2Imbalance) {
  Rng rng(0xACDC);
  const AdamsReplication adams;
  const SmallestLoadFirstPlacement slf;
  const RoundRobinPlacement rr;
  int slf_wins_or_ties = 0;
  const int trials = 40;
  for (int trial = 0; trial < trials; ++trial) {
    const RandomInstance inst = random_instance(rng);
    const ReplicationPlan plan =
        adams.replicate(inst.popularity, inst.num_servers, inst.budget);
    const double slf_l = imbalance_max_relative(
        slf.place(plan, inst.popularity, inst.num_servers, inst.capacity)
            .expected_loads(inst.popularity, inst.num_servers));
    const double rr_l = imbalance_max_relative(
        rr.place(plan, inst.popularity, inst.num_servers, inst.capacity)
            .expected_loads(inst.popularity, inst.num_servers));
    slf_wins_or_ties += slf_l <= rr_l + 1e-9;
  }
  // SLF is a balancing heuristic, not provably dominant per-instance, but it
  // should win essentially always on random instances.
  EXPECT_GE(slf_wins_or_ties, trials * 9 / 10);
}

}  // namespace
}  // namespace vodrep
