#include "src/anneal/annealer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/error.h"

namespace vodrep {
namespace {

/// 1-D quadratic over a discrete grid: cost (x - 37)^2, neighbors x +- 1.
struct QuadraticProblem {
  using State = int;

  State initial(Rng& rng) const { return static_cast<int>(rng.uniform_index(200)); }
  double cost(const State& x) const {
    const double d = x - 37.0;
    return d * d;
  }
  State neighbor(const State& x, Rng& rng) const {
    return rng.bernoulli(0.5) ? x + 1 : x - 1;
  }
};

/// A rugged 1-D landscape with a deep global minimum at 80 hidden behind a
/// local minimum at 20: tests that annealing escapes local minima.
struct RuggedProblem {
  using State = int;

  State initial(Rng&) const { return 15; }
  double cost(const State& x) const {
    const double local = 0.5 * (x - 20.0) * (x - 20.0);
    const double global = (x - 80.0) * (x - 80.0) - 500.0;
    return std::min(local, global);
  }
  State neighbor(const State& x, Rng& rng) const {
    // Long-range jumps let the chain cross the barrier.
    const int step = static_cast<int>(rng.uniform_index(21)) - 10;
    return x + step;
  }
};

/// The quadratic problem again, but through the in-place move API: the
/// engine must pick the propose/delta_cost/commit/revert path, skip no-op
/// moves (steps below the domain floor at 0) without evaluating them, and
/// still find the optimum.
struct InPlaceQuadratic {
  using State = int;
  struct Scratch {
    int committed = 0;
    int tentative = 0;
  };

  State initial(Rng&) const { return 60; }
  double cost(const State& x) const {
    const double d = static_cast<double>(x);
    return d * d;
  }
  State neighbor(const State& x, Rng& rng) const {
    return rng.bernoulli(0.5) ? x + 1 : x - 1;
  }

  Scratch make_scratch(State s) const { return {s, s}; }
  bool propose(Scratch& s, Rng& rng) const {
    const int candidate = s.committed + (rng.bernoulli(0.5) ? 1 : -1);
    if (candidate < 0) return false;  // outside the domain: no-op move
    s.tentative = candidate;
    return true;
  }
  double delta_cost(const Scratch& s) const {
    return cost(s.tentative) - cost(s.committed);
  }
  void commit(Scratch& s) const { s.committed = s.tentative; }
  void revert(Scratch& s) const { s.tentative = s.committed; }
  State extract(const Scratch& s) const { return s.committed; }
};

static_assert(InPlaceAnnealProblem<InPlaceQuadratic>);
static_assert(!InPlaceAnnealProblem<QuadraticProblem>);

TEST(Annealer, SolvesConvexProblem) {
  QuadraticProblem problem;
  Rng rng(1);
  AnnealOptions options;
  options.initial_temperature = 100.0;
  const auto result = anneal(problem, rng, options);
  EXPECT_EQ(result.best_state, 37);
  EXPECT_DOUBLE_EQ(result.best_cost, 0.0);
}

TEST(Annealer, EscapesLocalMinimum) {
  RuggedProblem problem;
  Rng rng(2);
  AnnealOptions options;
  options.initial_temperature = 200.0;
  options.moves_per_temperature = 300;
  options.stall_steps = 0;  // run the full schedule
  const auto schedule = geometric_cooling(0.9);
  const auto result = anneal(problem, rng, options, *schedule);
  EXPECT_EQ(result.best_state, 80);
  EXPECT_DOUBLE_EQ(result.best_cost, -500.0);
}

TEST(Annealer, DeterministicGivenSeed) {
  QuadraticProblem problem;
  AnnealOptions options;
  options.initial_temperature = 50.0;
  Rng a(7);
  Rng b(7);
  const auto ra = anneal(problem, a, options);
  const auto rb = anneal(problem, b, options);
  EXPECT_EQ(ra.best_state, rb.best_state);
  EXPECT_EQ(ra.moves_proposed, rb.moves_proposed);
  EXPECT_EQ(ra.moves_accepted, rb.moves_accepted);
}

TEST(Annealer, BestCostTrajectoryIsNonIncreasing) {
  QuadraticProblem problem;
  Rng rng(3);
  AnnealOptions options;
  options.initial_temperature = 100.0;
  const auto result = anneal(problem, rng, options);
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_LE(result.trajectory[i].second, result.trajectory[i - 1].second);
    EXPECT_LT(result.trajectory[i].first, result.trajectory[i - 1].first);
  }
}

TEST(Annealer, StallStopTerminatesEarly) {
  QuadraticProblem problem;
  Rng rng(4);
  AnnealOptions options;
  options.initial_temperature = 1e-3;  // effectively greedy, converges fast
  options.final_temperature = 1e-30;
  options.stall_steps = 5;
  const auto result = anneal(problem, rng, options);
  EXPECT_LT(result.temperature_steps, options.max_temperature_steps);
  EXPECT_EQ(result.best_cost, 0.0);
}

TEST(Annealer, MaxStepsCapIsHonored) {
  QuadraticProblem problem;
  Rng rng(5);
  AnnealOptions options;
  options.initial_temperature = 1e12;
  options.final_temperature = 1e-12;
  options.max_temperature_steps = 10;
  options.stall_steps = 0;
  const auto result = anneal(problem, rng, options);
  EXPECT_EQ(result.temperature_steps, 10u);
}

TEST(Annealer, AutomaticCalibrationProducesReasonableTemperature) {
  QuadraticProblem problem;
  Rng rng(6);
  const double t0 = calibrate_initial_temperature(problem, rng, 0.8, 100);
  EXPECT_GT(t0, 0.0);
  // Uphill steps of a unit-step quadratic near the start are O(100); the
  // calibrated temperature must make those acceptable.
  EXPECT_GT(t0, 10.0);
}

TEST(Annealer, NegativeInitialTemperatureTriggersCalibration) {
  QuadraticProblem problem;
  Rng rng(8);
  AnnealOptions options;  // initial_temperature = -1 by default
  const auto result = anneal(problem, rng, options);
  EXPECT_EQ(result.best_cost, 0.0);
}

TEST(Annealer, RejectsBadOptions) {
  QuadraticProblem problem;
  Rng rng(9);
  AnnealOptions options;
  options.final_temperature = 0.0;
  EXPECT_THROW((void)anneal(problem, rng, options), InvalidArgumentError);
  options.final_temperature = 1e-4;
  options.moves_per_temperature = 0;
  EXPECT_THROW((void)anneal(problem, rng, options), InvalidArgumentError);
}

TEST(AnnealMultichain, BestOfChainsNeverWorseThanChainZero) {
  RuggedProblem problem;
  AnnealOptions options;
  options.initial_temperature = 200.0;
  options.moves_per_temperature = 100;
  options.stall_steps = 0;
  Rng chain_zero(0x600D ^ 0x9e3779b97f4a7c15ULL);  // multichain's seed for i=0
  const auto single = anneal(problem, chain_zero, options);
  const auto multi = anneal_multichain(problem, 0x600D, 4, options);
  EXPECT_LE(multi.best_cost, single.best_cost);
}

TEST(AnnealMultichain, DeterministicRegardlessOfThreadCount) {
  QuadraticProblem problem;
  AnnealOptions options;
  options.initial_temperature = 50.0;
  ThreadPool pool(3);
  const auto serial = anneal_multichain(problem, 99, 5, options);
  const auto pooled = anneal_multichain(problem, 99, 5, options, &pool);
  EXPECT_EQ(serial.best_state, pooled.best_state);
  EXPECT_EQ(serial.best_cost, pooled.best_cost);
  EXPECT_EQ(serial.moves_proposed, pooled.moves_proposed);
}

TEST(AnnealMultichain, AggregatesMoveCounts) {
  QuadraticProblem problem;
  AnnealOptions options;
  options.initial_temperature = 10.0;
  options.stall_steps = 0;
  options.max_temperature_steps = 20;
  const auto single = anneal_multichain(problem, 7, 1, options);
  const auto multi = anneal_multichain(problem, 7, 3, options);
  EXPECT_EQ(multi.moves_proposed, 3 * single.moves_proposed);
}

TEST(AnnealMultichain, RejectsZeroChains) {
  QuadraticProblem problem;
  AnnealOptions options;
  options.initial_temperature = 10.0;
  EXPECT_THROW((void)anneal_multichain(problem, 1, 0, options),
               InvalidArgumentError);
}

TEST(Annealer, InPlacePathSolvesAndCountsNoops) {
  InPlaceQuadratic problem;
  Rng rng(11);
  AnnealOptions options;
  options.initial_temperature = 50.0;
  options.stall_steps = 0;
  options.max_temperature_steps = 200;
  const auto result = anneal(problem, rng, options);
  EXPECT_EQ(result.best_state, 0);
  EXPECT_DOUBLE_EQ(result.best_cost, 0.0);
  // Once the chain reaches the floor, downward steps are no-ops: they must
  // be counted separately and the move-slot accounting must close.
  EXPECT_GT(result.moves_noop, 0u);
  EXPECT_EQ(result.moves_proposed + result.moves_noop,
            result.temperature_steps * options.moves_per_temperature);
  EXPECT_LE(result.moves_accepted, result.moves_proposed);
}

TEST(Annealer, InPlaceDeterministicGivenSeed) {
  InPlaceQuadratic problem;
  AnnealOptions options;
  options.initial_temperature = 50.0;
  Rng a(13);
  Rng b(13);
  const auto ra = anneal(problem, a, options);
  const auto rb = anneal(problem, b, options);
  EXPECT_EQ(ra.best_state, rb.best_state);
  EXPECT_EQ(ra.moves_proposed, rb.moves_proposed);
  EXPECT_EQ(ra.moves_noop, rb.moves_noop);
}

TEST(Annealer, TrajectoryStaysUnderTheSampleCap) {
  QuadraticProblem problem;
  Rng rng(14);
  AnnealOptions options;
  options.initial_temperature = 100.0;
  options.final_temperature = 1e-12;
  options.stall_steps = 0;
  options.max_temperature_steps = 300;
  options.trajectory_max_samples = 16;
  const auto result = anneal(problem, rng, options);
  EXPECT_EQ(result.temperature_steps, 300u);
  EXPECT_LE(result.trajectory.size(), 16u);
  EXPECT_GE(result.trajectory.size(), 8u);  // decimation halves, no further
  // The decimated samples keep the per-step semantics: temperatures strictly
  // cooling, best cost non-increasing, starting at the first step.
  EXPECT_DOUBLE_EQ(result.trajectory.front().first, 100.0);
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_LT(result.trajectory[i].first, result.trajectory[i - 1].first);
    EXPECT_LE(result.trajectory[i].second, result.trajectory[i - 1].second);
  }
}

TEST(Annealer, TrajectoryCapZeroKeepsEverySample) {
  QuadraticProblem problem;
  Rng rng(15);
  AnnealOptions options;
  options.initial_temperature = 100.0;
  options.final_temperature = 1e-12;
  options.stall_steps = 0;
  options.max_temperature_steps = 120;
  options.trajectory_max_samples = 0;
  const auto result = anneal(problem, rng, options);
  EXPECT_EQ(result.trajectory.size(), result.temperature_steps);
}

TEST(Annealer, AcceptanceCountsAreConsistent) {
  QuadraticProblem problem;
  Rng rng(10);
  AnnealOptions options;
  options.initial_temperature = 10.0;
  const auto result = anneal(problem, rng, options);
  EXPECT_LE(result.moves_accepted, result.moves_proposed);
  EXPECT_EQ(result.moves_proposed,
            result.temperature_steps * options.moves_per_temperature);
}

}  // namespace
}  // namespace vodrep
