#include "src/exp/scenario.h"

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/util/units.h"

namespace vodrep {
namespace {

TEST(PaperScenario, DefaultsMatchReconstructedSetting) {
  const PaperScenario scenario;
  EXPECT_EQ(scenario.num_servers, 8u);
  EXPECT_EQ(scenario.num_videos, 300u);
  EXPECT_DOUBLE_EQ(scenario.server_bandwidth_gbps, 1.8);
  EXPECT_DOUBLE_EQ(scenario.bitrate_mbps, 4.0);
  EXPECT_DOUBLE_EQ(scenario.duration_minutes, 90.0);
}

TEST(PaperScenario, SaturationRateIs40PerMinute) {
  const PaperScenario scenario;
  // 8 * 1.8 Gb/s / 4 Mb/s = 3600 streams over 90 minutes = 40 req/min: the
  // paper's stated peak rate.
  EXPECT_NEAR(scenario.saturation_rate_per_min(), 40.0, 1e-9);
}

TEST(PaperScenario, ReplicaBudgetTracksDegree) {
  PaperScenario scenario;
  scenario.replication_degree = 1.2;
  EXPECT_EQ(scenario.replica_budget(), 360u);
  scenario.replication_degree = 1.0;
  EXPECT_EQ(scenario.replica_budget(), 300u);
  scenario.replication_degree = 0.5;
  EXPECT_THROW((void)scenario.replica_budget(), InvalidArgumentError);
}

TEST(PaperScenario, ProblemIsConsistentAcrossDegrees) {
  PaperScenario scenario;
  for (double degree : {1.0, 1.2, 1.4, 1.6, 1.8}) {
    scenario.replication_degree = degree;
    const FixedRateProblem problem = scenario.problem();
    EXPECT_NO_THROW(problem.validate());
    EXPECT_GE(problem.total_replica_capacity(), scenario.replica_budget());
  }
}

TEST(PaperScenario, TraceSpecConvertsUnits) {
  const PaperScenario scenario;
  const TraceSpec spec = scenario.trace_spec(30.0);
  EXPECT_DOUBLE_EQ(spec.arrival_rate, 0.5);  // 30/min = 0.5/s
  EXPECT_DOUBLE_EQ(spec.horizon, units::minutes(90));
  EXPECT_EQ(spec.popularity.size(), 300u);
}

TEST(PaperScenario, SimConfigMatchesScenario) {
  const PaperScenario scenario;
  const SimConfig config = scenario.sim_config();
  EXPECT_EQ(config.num_servers, 8u);
  EXPECT_DOUBLE_EQ(config.bandwidth_bps_per_server, units::gbps(1.8));
  EXPECT_DOUBLE_EQ(config.stream_bitrate_bps, units::mbps(4));
  EXPECT_EQ(config.redirect, RedirectMode::kNone);
  EXPECT_NO_THROW(config.validate());
}

TEST(ArrivalRateSweep, CoversRequestedRange) {
  const PaperScenario scenario;
  const auto rates = arrival_rate_sweep(scenario, 12, 0.1, 1.2);
  ASSERT_EQ(rates.size(), 12u);
  EXPECT_NEAR(rates.front(), 4.0, 1e-9);
  EXPECT_NEAR(rates.back(), 48.0, 1e-9);
  for (std::size_t i = 1; i < rates.size(); ++i) {
    EXPECT_GT(rates[i], rates[i - 1]);
  }
}

TEST(ArrivalRateSweep, RejectsBadRanges) {
  const PaperScenario scenario;
  EXPECT_THROW((void)arrival_rate_sweep(scenario, 1), InvalidArgumentError);
  EXPECT_THROW((void)arrival_rate_sweep(scenario, 5, 1.0, 0.5),
               InvalidArgumentError);
  EXPECT_THROW((void)arrival_rate_sweep(scenario, 5, 0.0, 1.0),
               InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
