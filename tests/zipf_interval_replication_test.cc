#include "src/core/zipf_interval_replication.h"

#include <gtest/gtest.h>

#include "src/core/adams_replication.h"
#include "src/util/error.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

std::size_t total_of(const std::vector<std::size_t>& r) {
  std::size_t t = 0;
  for (std::size_t x : r) t += x;
  return t;
}

TEST(ZipfIntervalBoundaries, AreStrictlyDecreasingInsideRange) {
  const auto z = ZipfIntervalReplication::interval_boundaries(0.1, 8, 0.7);
  ASSERT_EQ(z.size(), 7u);
  double prev = 0.1;
  for (double b : z) {
    EXPECT_LT(b, prev);
    EXPECT_GT(b, 0.0);
    prev = b;
  }
}

TEST(ZipfIntervalBoundaries, UniformSkewGivesEqualWidths) {
  const auto z = ZipfIntervalReplication::interval_boundaries(1.0, 4, 0.0);
  ASSERT_EQ(z.size(), 3u);
  EXPECT_NEAR(z[0], 0.75, 1e-12);
  EXPECT_NEAR(z[1], 0.50, 1e-12);
  EXPECT_NEAR(z[2], 0.25, 1e-12);
}

TEST(ZipfIntervalBoundaries, BoundariesDecreaseAsSkewIncreases) {
  // Lemma 4.1's mechanism: larger u pushes every boundary down.
  const auto low = ZipfIntervalReplication::interval_boundaries(1.0, 8, 0.2);
  const auto high = ZipfIntervalReplication::interval_boundaries(1.0, 8, 2.0);
  for (std::size_t k = 0; k < low.size(); ++k) {
    EXPECT_LT(high[k], low[k]) << "k=" << k;
  }
}

TEST(ZipfIntervalBoundaries, SingleServerHasNoBoundaries) {
  EXPECT_TRUE(ZipfIntervalReplication::interval_boundaries(1.0, 1, 0.5).empty());
}

TEST(ZipfIntervalAssign, TopVideoGetsTopInterval) {
  const auto p = zipf_popularity(20, 0.75);
  const auto r = ZipfIntervalReplication::assign_for_skew(p, 4, 0.7);
  EXPECT_EQ(r[0], 4u);  // the most popular video sits at the top boundary
}

TEST(ZipfIntervalAssign, AssignmentIsMonotoneInPopularity) {
  const auto p = zipf_popularity(50, 0.9);
  const auto r = ZipfIntervalReplication::assign_for_skew(p, 8, 1.0);
  for (std::size_t i = 1; i < r.size(); ++i) EXPECT_GE(r[i - 1], r[i]);
}

TEST(ZipfIntervalAssign, TotalIsNonDecreasingInSkew) {
  // Lemma 4.1 itself.
  const auto p = zipf_popularity(100, 0.75);
  std::size_t prev = 0;
  for (double u = -8.0; u <= 8.0; u += 0.5) {
    const std::size_t total =
        total_of(ZipfIntervalReplication::assign_for_skew(p, 8, u));
    EXPECT_GE(total, prev) << "u=" << u;
    prev = total;
  }
}

TEST(ZipfIntervalReplication, FitsBudgetAndCoversEveryVideo) {
  const ZipfIntervalReplication zipf;
  const auto p = zipf_popularity(100, 0.75);
  const auto plan = zipf.replicate(p, 8, 130);
  EXPECT_LE(plan.total_replicas(), 130u);
  for (std::size_t r : plan.replicas) {
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 8u);
  }
}

TEST(ZipfIntervalReplication, UsesMostOfTheBudget) {
  const ZipfIntervalReplication zipf;
  const auto p = zipf_popularity(300, 0.75);
  for (std::size_t budget : {330u, 360u, 420u, 480u, 540u}) {
    const auto plan = zipf.replicate(p, 8, budget);
    EXPECT_LE(plan.total_replicas(), budget);
    // The discrete interval structure cannot always hit the budget exactly,
    // but it should land within the heaviest video's worth of slack.
    EXPECT_GE(plan.total_replicas(), budget - 8u) << "budget=" << budget;
  }
}

TEST(ZipfIntervalReplication, FullReplicationWhenBudgetAllows) {
  const ZipfIntervalReplication zipf;
  const auto p = zipf_popularity(10, 0.75);
  const auto plan = zipf.replicate(p, 4, 40);
  for (std::size_t r : plan.replicas) EXPECT_EQ(r, 4u);
}

TEST(ZipfIntervalReplication, NearOptimalMaxWeight) {
  // Section 5: "the Zipf replication and the Adams replication achieved
  // nearly the same results in most test cases".
  const ZipfIntervalReplication zipf;
  const AdamsReplication adams;
  const auto p = zipf_popularity(300, 0.75);
  const std::size_t budget = 360;
  const double zipf_max = zipf.replicate(p, 8, budget).max_weight(p);
  const double adams_max = adams.replicate(p, 8, budget).max_weight(p);
  EXPECT_LE(zipf_max, 2.5 * adams_max);
}

TEST(ZipfIntervalReplication, SingleServerDegeneratesToOneEach) {
  const ZipfIntervalReplication zipf;
  const auto plan = zipf.replicate(zipf_popularity(7, 0.5), 1, 7);
  for (std::size_t r : plan.replicas) EXPECT_EQ(r, 1u);
}

TEST(ZipfIntervalReplication, InsufficientBudgetThrows) {
  const ZipfIntervalReplication zipf;
  EXPECT_THROW((void)zipf.replicate(zipf_popularity(10, 0.5), 4, 9),
               InfeasibleError);
}

TEST(ZipfIntervalReplication, WorksAcrossSkews) {
  const ZipfIntervalReplication zipf;
  for (double theta : {0.271, 0.5, 0.75, 1.0}) {
    const auto p = zipf_popularity(200, theta);
    const auto plan = zipf.replicate(p, 8, 280);
    EXPECT_LE(plan.total_replicas(), 280u) << theta;
    EXPECT_GE(plan.total_replicas(), 200u) << theta;
  }
}

}  // namespace
}  // namespace vodrep
