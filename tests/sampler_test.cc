#include "src/workload/sampler.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/util/error.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

TEST(DiscreteSampler, NormalizesInput) {
  const DiscreteSampler sampler({2.0, 6.0});
  EXPECT_NEAR(sampler.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(sampler.probability(1), 0.75, 1e-12);
}

TEST(DiscreteSampler, RejectsDegenerateInput) {
  EXPECT_THROW(DiscreteSampler({}), InvalidArgumentError);
  EXPECT_THROW(DiscreteSampler({1.0, -1.0}), InvalidArgumentError);
  EXPECT_THROW(DiscreteSampler({0.0, 0.0}), InvalidArgumentError);
}

TEST(DiscreteSampler, SingleOutcomeAlwaysSampled) {
  const DiscreteSampler sampler({5.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(DiscreteSampler, ZeroProbabilityOutcomeNeverSampled) {
  const DiscreteSampler sampler({1.0, 0.0, 1.0});
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(sampler.sample(rng), 1u);
}

TEST(DiscreteSampler, EmpiricalFrequenciesMatch) {
  const std::vector<double> p{0.5, 0.3, 0.15, 0.05};
  const DiscreteSampler sampler(p);
  Rng rng(3);
  std::vector<int> counts(p.size(), 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, p[i], 0.01) << "i=" << i;
  }
}

TEST(DiscreteSampler, ZipfFrequenciesMatch) {
  const auto p = zipf_popularity(50, 0.75);
  const DiscreteSampler sampler(p);
  Rng rng(4);
  std::vector<int> counts(p.size(), 0);
  const int n = 300000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  // Check head and a mid-tail entry.
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, p[0], 0.005);
  EXPECT_NEAR(static_cast<double>(counts[9]) / n, p[9], 0.005);
}

TEST(DiscreteSampler, DeterministicGivenSeed) {
  const auto p = zipf_popularity(10, 0.5);
  const DiscreteSampler sampler(p);
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sampler.sample(a), sampler.sample(b));
}

TEST(DiscreteSampler, ProbabilityOutOfRangeThrows) {
  const DiscreteSampler sampler({1.0, 1.0});
  EXPECT_THROW((void)sampler.probability(2), InvalidArgumentError);
}

TEST(DiscreteSampler, LargeUniformDistributionCoversRange) {
  const DiscreteSampler sampler(std::vector<double>(1000, 1.0));
  Rng rng(8);
  std::size_t max_seen = 0;
  for (int i = 0; i < 50000; ++i) {
    max_seen = std::max(max_seen, sampler.sample(rng));
  }
  EXPECT_GT(max_seen, 990u);
}

}  // namespace
}  // namespace vodrep
