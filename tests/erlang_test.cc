#include "src/analysis/erlang.h"

#include <gtest/gtest.h>

#include "src/util/error.h"

namespace vodrep {
namespace {

TEST(ErlangB, KnownClosedForms) {
  // B(a, 1) = a / (1 + a).
  EXPECT_NEAR(erlang_b(1.0, 1), 0.5, 1e-12);
  EXPECT_NEAR(erlang_b(3.0, 1), 0.75, 1e-12);
  // B(a, 2) = (a^2/2) / (1 + a + a^2/2); a = 2 -> 2/5.
  EXPECT_NEAR(erlang_b(2.0, 2), 0.4, 1e-12);
}

TEST(ErlangB, TextbookValue) {
  // Classic engineering table entry: a = 10 erlangs, c = 10 -> ~0.2146.
  EXPECT_NEAR(erlang_b(10.0, 10), 0.2146, 5e-4);
}

TEST(ErlangB, BoundaryCases) {
  EXPECT_DOUBLE_EQ(erlang_b(0.0, 10), 0.0);
  EXPECT_DOUBLE_EQ(erlang_b(5.0, 0), 1.0);
  EXPECT_THROW((void)erlang_b(-1.0, 5), InvalidArgumentError);
}

TEST(ErlangB, MonotoneInLoadAndChannels) {
  double prev = 0.0;
  for (double a = 1.0; a <= 50.0; a += 1.0) {
    const double b = erlang_b(a, 20);
    EXPECT_GE(b, prev);
    prev = b;
  }
  prev = 1.0;
  for (std::size_t c = 1; c <= 60; ++c) {
    const double b = erlang_b(30.0, c);
    EXPECT_LE(b, prev);
    prev = b;
  }
}

TEST(ErlangB, StableAtClusterScale) {
  // The paper's pooled cluster: 3600 channels.  At exactly critical load
  // the blocking is O(1/sqrt(c)); far below it is astronomically small.
  const double critical = erlang_b(3600.0, 3600);
  EXPECT_GT(critical, 0.005);
  EXPECT_LT(critical, 0.05);
  EXPECT_LT(erlang_b(1800.0, 3600), 1e-12);
  EXPECT_GT(erlang_b(7200.0, 3600), 0.4);
}

TEST(ErlangB, PoolingBeatsSplitting) {
  // Resource pooling: one system of N*c channels blocks less than N
  // independent systems of c channels at the same total load.
  for (double total : {1000.0, 3000.0, 3600.0, 4000.0}) {
    EXPECT_LE(erlang_b(total, 3600),
              balanced_split_blocking(total, 8, 450) + 1e-15)
        << total;
  }
}

TEST(ChannelsForBlocking, InverseIsConsistent) {
  for (double a : {5.0, 50.0, 450.0}) {
    for (double target : {0.1, 0.01, 0.001}) {
      const std::size_t c = channels_for_blocking(a, target);
      EXPECT_LE(erlang_b(a, c), target);
      if (c > 0) {
        EXPECT_GT(erlang_b(a, c - 1), target);
      }
    }
  }
}

TEST(ChannelsForBlocking, ZeroLoadNeedsNothing) {
  EXPECT_EQ(channels_for_blocking(0.0, 0.01), 0u);
}

TEST(ChannelsForBlocking, RejectsBadTarget) {
  EXPECT_THROW((void)channels_for_blocking(10.0, 0.0), InvalidArgumentError);
  EXPECT_THROW((void)channels_for_blocking(10.0, 1.0), InvalidArgumentError);
}

TEST(BalancedSplitBlocking, MatchesManualThinning) {
  EXPECT_DOUBLE_EQ(balanced_split_blocking(80.0, 8, 20), erlang_b(10.0, 20));
  EXPECT_THROW((void)balanced_split_blocking(10.0, 0, 5),
               InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
