#include "src/workload/popularity.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/util/error.h"

namespace vodrep {
namespace {

double sum_of(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(ZipfPopularity, SumsToOne) {
  for (double theta : {0.0, 0.271, 0.5, 0.75, 1.0}) {
    const auto p = zipf_popularity(100, theta);
    EXPECT_NEAR(sum_of(p), 1.0, 1e-12) << "theta=" << theta;
  }
}

TEST(ZipfPopularity, IsNonIncreasing) {
  const auto p = zipf_popularity(50, 0.75);
  for (std::size_t i = 1; i < p.size(); ++i) EXPECT_LE(p[i], p[i - 1]);
}

TEST(ZipfPopularity, FollowsPowerLaw) {
  const double theta = 0.8;
  const auto p = zipf_popularity(200, theta);
  // p_i / p_j == (j / i)^theta for a pure Zipf-like law.
  EXPECT_NEAR(p[0] / p[9], std::pow(10.0, theta), 1e-9);
  EXPECT_NEAR(p[4] / p[49], std::pow(10.0, theta), 1e-9);
}

TEST(ZipfPopularity, ZeroSkewIsUniform) {
  const auto p = zipf_popularity(10, 0.0);
  for (double v : p) EXPECT_NEAR(v, 0.1, 1e-12);
}

TEST(ZipfPopularity, HigherSkewConcentratesMass) {
  const auto low = zipf_popularity(300, 0.25);
  const auto high = zipf_popularity(300, 1.0);
  EXPECT_GT(high[0], low[0]);
  EXPECT_LT(high[299], low[299]);
}

TEST(ZipfPopularity, SingleVideoIsCertain) {
  const auto p = zipf_popularity(1, 0.75);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
}

TEST(ZipfPopularity, RejectsBadArguments) {
  EXPECT_THROW((void)zipf_popularity(0, 0.5), InvalidArgumentError);
  EXPECT_THROW((void)zipf_popularity(10, -0.1), InvalidArgumentError);
}

TEST(UniformPopularity, MatchesZipfZero) {
  EXPECT_EQ(uniform_popularity(25), zipf_popularity(25, 0.0));
}

TEST(NormalizedPopularity, NormalizesAndSorts) {
  const auto p = normalized_popularity({1.0, 3.0, 2.0});
  ASSERT_EQ(p.size(), 3u);
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(p[2], 1.0 / 6.0, 1e-12);
}

TEST(NormalizedPopularity, RejectsDegenerateInput) {
  EXPECT_THROW((void)normalized_popularity({}), InvalidArgumentError);
  EXPECT_THROW((void)normalized_popularity({1.0, -0.5}), InvalidArgumentError);
  EXPECT_THROW((void)normalized_popularity({0.0, 0.0}), InvalidArgumentError);
}

TEST(IsPopularityVector, AcceptsValidVectors) {
  EXPECT_TRUE(is_popularity_vector(zipf_popularity(100, 0.75)));
  EXPECT_TRUE(is_popularity_vector({1.0}));
  EXPECT_TRUE(is_popularity_vector({0.5, 0.5}));
}

TEST(IsPopularityVector, RejectsInvalidVectors) {
  EXPECT_FALSE(is_popularity_vector({}));                 // empty
  EXPECT_FALSE(is_popularity_vector({0.3, 0.3}));         // sums to 0.6
  EXPECT_FALSE(is_popularity_vector({0.4, 0.6}));         // increasing
  EXPECT_FALSE(is_popularity_vector({1.5, -0.5}));        // out of range
}

TEST(TopKForCoverage, KnownDistribution) {
  // {0.5, 0.3, 0.2}: 50% needs 1 video, 80% needs 2, 100% needs 3.
  const std::vector<double> p{0.5, 0.3, 0.2};
  EXPECT_EQ(top_k_for_coverage(p, 0.5), 1u);
  EXPECT_EQ(top_k_for_coverage(p, 0.6), 2u);
  EXPECT_EQ(top_k_for_coverage(p, 1.0), 3u);
  EXPECT_EQ(top_k_for_coverage(p, 0.0), 1u);
}

TEST(TopKForCoverage, SkewReducesCoverageSet) {
  const auto flat = zipf_popularity(300, 0.271);
  const auto skewed = zipf_popularity(300, 1.0);
  EXPECT_LT(top_k_for_coverage(skewed, 0.5), top_k_for_coverage(flat, 0.5));
}

TEST(TopKForCoverage, RejectsBadArguments) {
  EXPECT_THROW((void)top_k_for_coverage({}, 0.5), InvalidArgumentError);
  EXPECT_THROW((void)top_k_for_coverage({1.0}, 1.5), InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
