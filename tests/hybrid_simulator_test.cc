#include "src/sim/hybrid_simulator.h"

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/util/units.h"

namespace vodrep {
namespace {

constexpr double kRate = units::mbps(4);

SimConfig config_of(std::size_t servers, double capacity,
                    double duration = 1000.0) {
  SimConfig config;
  config.num_servers = servers;
  config.bandwidth_bps_per_server = capacity;
  config.stream_bitrate_bps = kRate;
  config.video_duration_sec = duration;
  return config;
}

RequestTrace trace_of(std::vector<Request> requests, double horizon) {
  RequestTrace trace;
  trace.requests = std::move(requests);
  trace.horizon = horizon;
  return trace;
}

TEST(MakeHybridLayout, DisjointGroupsPerVideo) {
  const HybridLayout layout = make_hybrid_layout(5, 8, 2, 2);
  EXPECT_NO_THROW(layout.validate(8));
  for (const auto& copies : layout.groups) {
    ASSERT_EQ(copies.size(), 2u);
    for (const auto& group : copies) EXPECT_EQ(group.size(), 2u);
  }
}

TEST(MakeHybridLayout, RejectsFootprintBeyondCluster) {
  EXPECT_THROW((void)make_hybrid_layout(5, 8, 4, 3), InvalidArgumentError);
  EXPECT_THROW((void)make_hybrid_layout(5, 8, 0, 2), InvalidArgumentError);
}

TEST(HybridLayoutValidate, CatchesOverlappingCopies) {
  HybridLayout layout;
  layout.groups = {{{0, 1}, {1, 2}}};  // copies share server 1
  EXPECT_THROW(layout.validate(4), InvalidArgumentError);
}

TEST(HybridSimulator, RoundRobinAcrossGroupCopies) {
  // One video, two disjoint 2-wide groups over 4 servers.
  const HybridLayout layout = make_hybrid_layout(1, 4, 2, 2);
  std::vector<Request> requests;
  for (int i = 0; i < 4; ++i) {
    requests.push_back(Request{static_cast<double>(i), 0});
  }
  const SimResult result = simulate_hybrid(layout, config_of(4, 100 * kRate),
                                           trace_of(requests, 50.0));
  EXPECT_EQ(result.rejected, 0u);
  // RR alternates the two copies: each server participates in two streams.
  for (std::size_t served : result.served_per_server) EXPECT_EQ(served, 2u);
}

TEST(HybridSimulator, FailureKillsOnlyTheTouchedCopy) {
  const HybridLayout layout = make_hybrid_layout(1, 4, 2, 2);
  SimConfig config = config_of(4, 100 * kRate);
  config.failures = {ServerFailure{5.0, 0}};  // server 0 is in copy 0
  // Two streams, one per copy, both started before the crash.
  std::vector<Request> requests{Request{0.0, 0}, Request{1.0, 0}};
  const SimResult result =
      simulate_hybrid(layout, config, trace_of(requests, 50.0));
  EXPECT_EQ(result.disrupted, 1u);  // only the copy-0 stream dies
}

TEST(HybridSimulator, VideoSurvivesViaOtherCopy) {
  const HybridLayout layout = make_hybrid_layout(1, 4, 2, 2);
  SimConfig config = config_of(4, 100 * kRate);
  config.failures = {ServerFailure{5.0, 0}};
  // After the crash: RR still rotates over both copies, so every second
  // request (the ones scheduled on the dead copy) is rejected, the rest
  // are served — unlike pure striping where the video would be gone.
  std::vector<Request> requests;
  for (int i = 0; i < 6; ++i) requests.push_back(Request{10.0 + i, 0});
  const SimResult result =
      simulate_hybrid(layout, config, trace_of(requests, 50.0));
  EXPECT_EQ(result.rejected, 3u);
}

TEST(HybridSimulator, SharesAccountedOnAllGroupMembers) {
  const HybridLayout layout = make_hybrid_layout(1, 4, 2, 2);
  // Group width 2: a stream draws kRate/2 per member; capacity kRate/2
  // means one stream per copy.
  SimConfig config = config_of(4, kRate / 2);
  std::vector<Request> requests{Request{0.0, 0}, Request{1.0, 0},
                                Request{2.0, 0}};
  const SimResult result =
      simulate_hybrid(layout, config, trace_of(requests, 50.0));
  // Stream 1 -> copy 0, stream 2 -> copy 1, stream 3 -> copy 0 again: full.
  EXPECT_EQ(result.rejected, 1u);
}

TEST(HybridSimulator, DegeneratesToReplicationWhenWidthIsOne) {
  // k = 1, r = 2 behaves like a 2-replica video under static RR.
  const HybridLayout layout = make_hybrid_layout(1, 4, 1, 2);
  SimConfig config = config_of(4, kRate);
  std::vector<Request> requests{Request{0.0, 0}, Request{1.0, 0},
                                Request{2.0, 0}};
  const SimResult result =
      simulate_hybrid(layout, config, trace_of(requests, 50.0));
  EXPECT_EQ(result.rejected, 1u);  // two servers hold one stream each
}

TEST(HybridSimulator, RejectsMalformedInput) {
  const HybridLayout layout = make_hybrid_layout(1, 4, 2, 2);
  EXPECT_THROW((void)simulate_hybrid(layout, config_of(4, kRate),
                                     trace_of({Request{1.0, 5}}, 50.0)),
               InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
