#include "src/online/incremental_placement.h"

#include <gtest/gtest.h>

#include "src/core/adams_replication.h"
#include "src/core/objective.h"
#include "src/core/slf_placement.h"
#include "src/online/migration.h"
#include "src/online/provisioner.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

Layout layout_of(std::vector<std::vector<std::size_t>> assignment) {
  Layout layout;
  layout.assignment = std::move(assignment);
  return layout;
}

ReplicationPlan plan_of(std::vector<std::size_t> replicas) {
  ReplicationPlan plan;
  plan.replicas = std::move(replicas);
  return plan;
}

TEST(IncrementalPlace, SamePlanMeansZeroMigration) {
  const Layout previous = layout_of({{0, 1}, {2}, {3}});
  const auto plan = plan_of({2, 1, 1});
  const std::vector<double> pop{0.5, 0.3, 0.2};
  const Layout next = incremental_place(previous, plan, pop, 4, 2);
  const MigrationPlan migration = plan_migration(previous, next);
  EXPECT_TRUE(migration.copies.empty());
  EXPECT_EQ(migration.deletions, 0u);
}

TEST(IncrementalPlace, AddsOnlyTheNewReplicas) {
  const Layout previous = layout_of({{0}, {1}});
  const auto plan = plan_of({2, 1});  // video 0 gains one replica
  const std::vector<double> pop{0.7, 0.3};
  const Layout next = incremental_place(previous, plan, pop, 3, 2);
  const MigrationPlan migration = plan_migration(previous, next);
  EXPECT_EQ(migration.copies.size(), 1u);
  EXPECT_EQ(migration.copies[0].video, 0u);
  EXPECT_NO_THROW(next.validate(plan, 3, 2));
}

TEST(IncrementalPlace, DropsExcessFromMostLoadedHost) {
  // Video 0 on {0, 1}; video 1 (heavy) also on server 0, making server 0
  // the loaded one.  Shrinking video 0 to one replica must drop its copy on
  // server 0.
  const Layout previous = layout_of({{0, 1}, {0}});
  const auto plan = plan_of({1, 1});
  const std::vector<double> pop{0.3, 0.7};
  const Layout next = incremental_place(previous, plan, pop, 2, 2);
  EXPECT_EQ(next.assignment[0], (std::vector<std::size_t>{1}));
  const MigrationPlan migration = plan_migration(previous, next);
  EXPECT_TRUE(migration.copies.empty());
  EXPECT_EQ(migration.deletions, 1u);
}

TEST(IncrementalPlace, EvictsWhenCapacityShrinks) {
  // Three replicas on server 0, capacity now 2: one must move.
  const Layout previous = layout_of({{0}, {0}, {0}});
  const auto plan = plan_of({1, 1, 1});
  const std::vector<double> pop{0.5, 0.3, 0.2};
  const Layout next = incremental_place(previous, plan, pop, 2, 2);
  EXPECT_NO_THROW(next.validate(plan, 2, 2));
  const MigrationPlan migration = plan_migration(previous, next);
  EXPECT_EQ(migration.copies.size(), 1u);
  // The lightest replica (video 2) is the one moved.
  EXPECT_EQ(migration.copies[0].video, 2u);
}

TEST(IncrementalPlace, ResultAlwaysValidOnRandomChurn) {
  Rng rng(0x14C0);
  const AdamsReplication adams;
  const SmallestLoadFirstPlacement slf;
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t m = 10 + rng.uniform_index(40);
    const std::size_t n = 3 + rng.uniform_index(6);
    std::vector<double> pop(m);
    for (double& p : pop) p = rng.uniform(0.01, 1.0);
    const std::size_t budget1 = m + rng.uniform_index(m);
    const std::size_t budget2 = m + rng.uniform_index(m);
    const std::size_t capacity =
        (std::max(budget1, budget2) + n - 1) / n + 1;
    const IdProvisioningResult initial =
        provision_by_id(pop, adams, slf, n, budget1, capacity);
    // Perturb the popularity and re-plan.
    std::vector<double> pop2 = pop;
    for (double& p : pop2) p *= rng.uniform(0.5, 2.0);
    const ReplicationPlan plan2 = replicate_by_id(pop2, adams, n, budget2);
    const Layout next =
        incremental_place(initial.layout, plan2, pop2, n, capacity);
    ASSERT_NO_THROW(next.validate(plan2, n, capacity)) << "trial " << trial;
  }
}

TEST(IncrementalPlace, FarCheaperThanFromScratchOnSmallPerturbation) {
  const AdamsReplication adams;
  const SmallestLoadFirstPlacement slf;
  const auto pop = zipf_popularity(100, 0.75);
  const IdProvisioningResult initial =
      provision_by_id(pop, adams, slf, 8, 120, 16);
  // Tiny perturbation: two mid-list videos swap popularity.
  std::vector<double> pop2 = pop;
  std::swap(pop2[30], pop2[31]);
  const ReplicationPlan plan2 = replicate_by_id(pop2, adams, 8, 120);
  const Layout incremental =
      incremental_place(initial.layout, plan2, pop2, 8, 16);
  const IdProvisioningResult scratch =
      provision_by_id(pop2, adams, slf, 8, 120, 16);
  const std::size_t inc_copies =
      plan_migration(initial.layout, incremental).copies.size();
  const std::size_t scratch_copies =
      plan_migration(initial.layout, scratch.layout).copies.size();
  EXPECT_LE(inc_copies, 4u);
  EXPECT_LT(inc_copies, scratch_copies);
}

TEST(IncrementalPlace, BalanceStaysReasonable) {
  // The migration savings must not come at a catastrophic balance cost.
  const AdamsReplication adams;
  const SmallestLoadFirstPlacement slf;
  const auto pop = zipf_popularity(100, 0.75);
  const IdProvisioningResult initial =
      provision_by_id(pop, adams, slf, 8, 120, 16);
  std::vector<double> pop2 = pop;
  Rng rng(5);
  rng.shuffle(pop2);
  const ReplicationPlan plan2 = replicate_by_id(pop2, adams, 8, 120);
  const Layout next = incremental_place(initial.layout, plan2, pop2, 8, 16);
  const auto loads = next.expected_loads(
      [&] {
        // expected_loads wants rank-normalized popularity by id.
        std::vector<double> normalized = pop2;
        double sum = 0.0;
        for (double p : normalized) sum += p;
        for (double& p : normalized) p /= sum;
        return normalized;
      }(),
      8);
  EXPECT_LT(imbalance_max_relative(loads), 0.6);
}

TEST(IncrementalPlace, RejectsInfeasiblePlan) {
  const Layout previous = layout_of({{0}});
  const auto plan = plan_of({3});
  EXPECT_THROW(
      (void)incremental_place(previous, plan, {1.0}, 2, 4),
      InvalidArgumentError);  // r_i > N
  const auto plan2 = plan_of({2});
  EXPECT_THROW((void)incremental_place(previous, plan2, {1.0}, 2, 0),
               InfeasibleError);  // no storage at all
}

}  // namespace
}  // namespace vodrep
