// Block Poisson arrival generation (poisson_arrivals_block) and the
// sharded metrics merge (merge_load_segments), both proven against their
// per-event counterparts:
//
//   * block generation is bit-for-bit the per-event RNG stream — at block
//     size 1 and at every other block size — including the generator state
//     left behind after a mid-block horizon crossing (the snapshot/rewind
//     contract), so generate_trace output is invariant in the batch knob;
//   * the segment-stream sweep reproduces a brute-force union-timeline
//     integration on randomized per-shard streams, and sharded runs over
//     hand-built adversarial traces (simultaneous cross-shard arrivals,
//     arrivals exactly on a merge-epoch boundary, coinciding departures)
//     match the monolithic engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/layout.h"
#include "src/sim/engine.h"
#include "src/sim/replicated_policy.h"
#include "src/sim/sharded_engine.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/util/units.h"
#include "src/workload/arrivals.h"
#include "src/workload/popularity.h"
#include "src/workload/trace.h"

namespace vodrep {
namespace {

constexpr double kFloatTol = 1e-7;

/// Compares the full post-call generator states by drawing from both.
void expect_same_rng_state(Rng a, Rng b) {
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

// ---------------------------------------------------------------------------
// poisson_arrivals_block == poisson_arrivals, times and RNG stream.
// ---------------------------------------------------------------------------

TEST(ArrivalBatching, BlockSizeOneReplaysThePerEventStream) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 0xdeadbeefULL}) {
    Rng reference(seed);
    Rng blocked(seed);
    const std::vector<double> expected =
        poisson_arrivals(reference, 3.0, 250.0);
    const std::vector<double> actual =
        poisson_arrivals_block(blocked, 3.0, 250.0, 1);
    EXPECT_EQ(expected, actual);
    expect_same_rng_state(reference, blocked);
  }
}

TEST(ArrivalBatching, EveryBlockSizeIsBitIdentical) {
  const std::array<std::size_t, 6> blocks = {1, 2, 3, 7, 256, 4096};
  for (const std::uint64_t seed : {7ULL, 99ULL, 0xabcdefULL}) {
    for (const double rate : {0.5, 4.0, 50.0}) {
      Rng reference(seed);
      const std::vector<double> expected =
          poisson_arrivals(reference, rate, 100.0);
      for (const std::size_t block : blocks) {
        Rng rng(seed);
        const std::vector<double> actual =
            poisson_arrivals_block(rng, rate, 100.0, block);
        ASSERT_EQ(expected, actual)
            << "seed " << seed << " rate " << rate << " block " << block;
        expect_same_rng_state(reference, rng);
      }
    }
  }
}

TEST(ArrivalBatching, DegenerateInputsMatchPerEvent) {
  Rng a(5);
  Rng b(5);
  EXPECT_TRUE(poisson_arrivals_block(a, 0.0, 100.0, 64).empty());
  EXPECT_TRUE(poisson_arrivals(b, 0.0, 100.0).empty());
  expect_same_rng_state(a, b);
  EXPECT_TRUE(poisson_arrivals_block(a, 3.0, 0.0, 64).empty());
  EXPECT_TRUE(poisson_arrivals(b, 3.0, 0.0).empty());
  expect_same_rng_state(a, b);
  // A tiny horizon: the very first draw usually crosses, exercising the
  // rewind on the first block element.
  const std::vector<double> blocked = poisson_arrivals_block(a, 1.0, 1e-9, 64);
  const std::vector<double> ref = poisson_arrivals(b, 1.0, 1e-9);
  EXPECT_EQ(ref, blocked);
  expect_same_rng_state(a, b);
  EXPECT_THROW(poisson_arrivals_block(a, 1.0, 1.0, 0), InvalidArgumentError);
}

TEST(ArrivalBatching, GeneratedTracesAreInvariantInTheBatchKnob) {
  TraceSpec spec;
  spec.arrival_rate = 5.0;
  spec.horizon = 200.0;
  spec.popularity = zipf_popularity(20, 0.729);
  spec.abandonment.completion_probability = 0.6;
  spec.arrival_block = 1;
  Rng reference_rng(0xfeed);
  const RequestTrace reference = generate_trace(reference_rng, spec);
  for (const std::size_t block : {2UL, 17UL, 256UL, 8192UL}) {
    spec.arrival_block = block;
    Rng rng(0xfeed);
    const RequestTrace trace = generate_trace(rng, spec);
    ASSERT_EQ(reference.requests, trace.requests) << "block " << block;
    EXPECT_EQ(reference.horizon, trace.horizon);
    expect_same_rng_state(reference_rng, rng);
  }
}

// ---------------------------------------------------------------------------
// merge_load_segments vs a brute-force union-timeline reference.
// ---------------------------------------------------------------------------

/// Independent oracle: walk the sorted union of all segment end times and
/// integrate the global signal span by span with direct scans.
MergedLoadMetrics brute_force_merge(
    const std::vector<std::vector<LoadSegment>>& logs, double epoch_start,
    std::size_t num_servers) {
  std::vector<double> breakpoints;
  for (const auto& log : logs) {
    for (const LoadSegment& seg : log) breakpoints.push_back(seg.end_time);
  }
  std::sort(breakpoints.begin(), breakpoints.end());
  breakpoints.erase(std::unique(breakpoints.begin(), breakpoints.end()),
                    breakpoints.end());
  MergedLoadMetrics out;
  double t = epoch_start;
  for (const double next : breakpoints) {
    double sum = 0.0;
    double sumsq = 0.0;
    double max = 0.0;
    for (const auto& log : logs) {
      // The segment covering [t, next) is the first one ending after t.
      for (const LoadSegment& seg : log) {
        if (seg.end_time > t) {
          sum += seg.utilization_sum;
          sumsq += seg.utilization_sumsq;
          max = std::max(max, seg.max_utilization);
          break;
        }
      }
    }
    if (max <= 0.0) {
      sum = 0.0;
      sumsq = 0.0;
    }
    const double mean = sum / static_cast<double>(num_servers);
    double eq2 = 0.0;
    double cv = 0.0;
    if (mean > 0.0) {
      eq2 = std::max(0.0, (max - mean) / mean);
      cv = std::sqrt(std::max(0.0, sumsq / static_cast<double>(num_servers) -
                                       mean * mean)) /
           mean;
    }
    out.imbalance_eq2.add(eq2, next - t);
    out.imbalance_cv.add(cv, next - t);
    out.imbalance_capacity.add(std::max(0.0, max - mean), next - t);
    if (next > t) out.peak_eq2 = std::max(out.peak_eq2, eq2);
    t = next;
  }
  return out;
}

TEST(MetricsMerge, SweepMatchesBruteForceOnRandomSegmentStreams) {
  Rng rng(0x11115eed);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t shards = 1 + rng.uniform_index(5);
    const std::size_t num_servers = 2 + rng.uniform_index(10);
    const double epoch_end = 10.0 + rng.uniform(0.0, 50.0);
    std::vector<std::vector<LoadSegment>> logs(shards);
    for (auto& log : logs) {
      // Random strictly increasing end times, all streams ending exactly at
      // the epoch boundary (the engine's advance_to barrier guarantees it).
      const std::size_t segments = 1 + rng.uniform_index(12);
      std::vector<double> ends(segments - 1);
      for (double& e : ends) e = rng.uniform(0.1, epoch_end);
      std::sort(ends.begin(), ends.end());
      ends.erase(std::unique(ends.begin(), ends.end()), ends.end());
      ends.push_back(epoch_end);
      for (const double end : ends) {
        LoadSegment seg;
        seg.end_time = end;
        if (rng.bernoulli(0.2)) {
          // Idle span: the engine's flush stores exact zeros.
          seg.utilization_sum = 0.0;
          seg.utilization_sumsq = 0.0;
          seg.max_utilization = 0.0;
        } else {
          seg.max_utilization = rng.uniform(0.05, 1.0);
          seg.utilization_sum = seg.max_utilization * rng.uniform(1.0, 3.0);
          seg.utilization_sumsq =
              seg.max_utilization * seg.max_utilization * rng.uniform(1.0, 2.0);
        }
        log.push_back(seg);
      }
    }
    MergedLoadMetrics merged;
    merge_load_segments(logs, 0.0, num_servers, merged);
    const MergedLoadMetrics reference =
        brute_force_merge(logs, 0.0, num_servers);
    EXPECT_NEAR(merged.imbalance_eq2.mean(), reference.imbalance_eq2.mean(),
                kFloatTol)
        << "trial " << trial;
    EXPECT_NEAR(merged.imbalance_cv.mean(), reference.imbalance_cv.mean(),
                kFloatTol);
    EXPECT_NEAR(merged.imbalance_capacity.mean(),
                reference.imbalance_capacity.mean(), kFloatTol);
    EXPECT_NEAR(merged.peak_eq2, reference.peak_eq2, kFloatTol);
    EXPECT_NEAR(merged.imbalance_eq2.total_time(), epoch_end, kFloatTol);
  }
}

TEST(MetricsMerge, HandBuiltStreamsIntegrateExactly) {
  // Two shards over a 4-server cluster; values chosen so the expected
  // integrals are exact in binary floating point.
  std::vector<std::vector<LoadSegment>> logs(2);
  logs[0] = {{1.0, 0.5, 0.25, 0.5},   // servers {0,1}: one at 0.5
             {3.0, 1.0, 0.5, 0.5},    // both at 0.5
             {4.0, 0.0, 0.0, 0.0}};   // idle (flushed zeros)
  logs[1] = {{2.0, 0.0, 0.0, 0.0},    // servers {2,3}: idle
             {4.0, 0.5, 0.25, 0.5}};  // one at 0.5
  MergedLoadMetrics merged;
  merge_load_segments(logs, 0.0, 4, merged);
  // Spans: [0,1) sum .5 max .5 -> eq2 = (0.5-0.125)/0.125 = 3
  //        [1,2) sum 1  max .5 -> eq2 = (0.5-0.25)/0.25  = 1
  //        [2,3) sum 1.5 max .5 -> eq2 = (0.5-0.375)/0.375 = 1/3
  //        [3,4) sum .5 max .5 -> eq2 = 3
  EXPECT_DOUBLE_EQ(merged.imbalance_eq2.mean(),
                   (3.0 + 1.0 + 1.0 / 3.0 + 3.0) / 4.0);
  EXPECT_DOUBLE_EQ(merged.peak_eq2, 3.0);
  EXPECT_DOUBLE_EQ(merged.imbalance_capacity.mean(),
                   (0.375 + 0.25 + 0.125 + 0.375) / 4.0);
  EXPECT_DOUBLE_EQ(merged.imbalance_eq2.total_time(), 4.0);
}

// ---------------------------------------------------------------------------
// Hand-built adversarial traces through the full sharded runner.
// ---------------------------------------------------------------------------

SimConfig two_server_config() {
  SimConfig config;
  config.num_servers = 2;
  config.bandwidth_bps_per_server = units::mbps(8.0);  // two 4 Mbps streams each
  config.stream_bitrate_bps = units::mbps(4.0);
  config.video_duration_sec = 3.0;
  return config;
}

TEST(MetricsMerge, AdversarialTraceMatchesMonolithic) {
  // Videos 0/1 pinned to servers 0/1 (one per shard at S=2).  Simultaneous
  // cross-shard arrivals, an arrival exactly on the merge-epoch boundary,
  // departures that coincide across shards (t=1+3 and t=1+3), and enough
  // load to reject on server 0.
  Layout layout;
  layout.assignment = {{0}, {1}};
  const SimConfig config = two_server_config();
  RequestTrace trace;
  trace.horizon = 10.0;
  trace.requests = {
      {1.0, 0, 1.0}, {1.0, 1, 1.0},   // simultaneous, different shards
      {1.5, 0, 1.0},                  // fills server 0
      {2.5, 0, 1.0},                  // exactly on the epoch boundary: reject
      {2.5, 1, 1.0},                  // same instant, other shard: admitted
      {6.0, 0, 0.5}, {6.0, 1, 0.5},   // partial watches, coinciding departures
  };
  ASSERT_TRUE(trace.is_well_formed());

  SimEngine engine(config);
  ReplicatedPolicy policy(layout, config);
  const SimResult mono = engine.run(policy, trace);
  EXPECT_EQ(mono.rejected, 1u);  // the t=2.5 request on the full server 0

  ShardedSimOptions options;
  options.num_shards = 2;
  options.merge_epoch_sec = 2.5;  // boundary lands exactly on an arrival
  const SimResult sharded = simulate_sharded(layout, config, trace, options);
  EXPECT_EQ(mono.total_requests, sharded.total_requests);
  EXPECT_EQ(mono.rejected, sharded.rejected);
  EXPECT_EQ(mono.rejected_by_reason, sharded.rejected_by_reason);
  EXPECT_EQ(mono.served_per_server, sharded.served_per_server);
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(mono.utilization_per_server[s],
              sharded.utilization_per_server[s]);
  }
  EXPECT_NEAR(mono.mean_imbalance_eq2, sharded.mean_imbalance_eq2, kFloatTol);
  EXPECT_NEAR(mono.mean_imbalance_cv, sharded.mean_imbalance_cv, kFloatTol);
  EXPECT_NEAR(mono.peak_imbalance_eq2, sharded.peak_imbalance_eq2, kFloatTol);
}

TEST(MetricsMerge, CrashExactlyOnEpochBoundaryMatchesMonolithic) {
  Layout layout;
  layout.assignment = {{0}, {1}};
  SimConfig config = two_server_config();
  config.failures = {{2.5, 0}};  // crash exactly on the boundary
  RequestTrace trace;
  trace.horizon = 10.0;
  trace.requests = {
      {1.0, 0, 1.0}, {1.0, 1, 1.0},
      {3.0, 0, 1.0},  // after the crash: kNoReplicaAlive
      {3.0, 1, 1.0},
  };
  ASSERT_TRUE(trace.is_well_formed());

  SimEngine engine(config);
  ReplicatedPolicy policy(layout, config);
  const SimResult mono = engine.run(policy, trace);
  EXPECT_EQ(mono.disrupted, 1u);

  ShardedSimOptions options;
  options.num_shards = 2;
  options.merge_epoch_sec = 2.5;
  const SimResult sharded = simulate_sharded(layout, config, trace, options);
  EXPECT_EQ(mono.rejected, sharded.rejected);
  EXPECT_EQ(mono.rejected_by_reason, sharded.rejected_by_reason);
  EXPECT_EQ(mono.disrupted, sharded.disrupted);
  EXPECT_EQ(mono.served_per_server, sharded.served_per_server);
  EXPECT_NEAR(mono.mean_imbalance_eq2, sharded.mean_imbalance_eq2, kFloatTol);
}

}  // namespace
}  // namespace vodrep
