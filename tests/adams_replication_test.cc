#include "src/core/adams_replication.h"

#include <gtest/gtest.h>

#include <tuple>

#include "src/core/bounds.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

TEST(AdamsReplication, EveryVideoGetsAtLeastOneReplica) {
  const AdamsReplication adams;
  const auto plan = adams.replicate(zipf_popularity(20, 0.75), 4, 30);
  for (std::size_t r : plan.replicas) EXPECT_GE(r, 1u);
}

TEST(AdamsReplication, SaturatesBudgetWhenPossible) {
  const AdamsReplication adams;
  const auto plan = adams.replicate(zipf_popularity(20, 0.75), 4, 50);
  EXPECT_EQ(plan.total_replicas(), 50u);
}

TEST(AdamsReplication, StopsAtFullReplication) {
  const AdamsReplication adams;
  // Budget allows more than M * N replicas; the cap must bind.
  const auto plan = adams.replicate(zipf_popularity(5, 0.75), 3, 100);
  for (std::size_t r : plan.replicas) EXPECT_EQ(r, 3u);
  EXPECT_EQ(plan.total_replicas(), 15u);
}

TEST(AdamsReplication, RespectsServerCap) {
  const AdamsReplication adams;
  const auto plan = adams.replicate(zipf_popularity(10, 1.0), 4, 35);
  for (std::size_t r : plan.replicas) EXPECT_LE(r, 4u);
}

TEST(AdamsReplication, BudgetEqualToVideosMeansNoReplication) {
  const AdamsReplication adams;
  const auto plan = adams.replicate(zipf_popularity(12, 0.75), 4, 12);
  for (std::size_t r : plan.replicas) EXPECT_EQ(r, 1u);
}

TEST(AdamsReplication, InsufficientBudgetThrows) {
  const AdamsReplication adams;
  EXPECT_THROW((void)adams.replicate(zipf_popularity(10, 0.75), 4, 9),
               InfeasibleError);
}

TEST(AdamsReplication, MorePopularVideosGetAtLeastAsManyReplicas) {
  const AdamsReplication adams;
  const auto plan = adams.replicate(zipf_popularity(30, 0.9), 8, 75);
  for (std::size_t i = 1; i < plan.replicas.size(); ++i) {
    EXPECT_GE(plan.replicas[i - 1], plan.replicas[i]) << "i=" << i;
  }
}

TEST(AdamsReplication, MatchesPaperFigure1Example) {
  // Figure 1: five videos, three servers, per-server capacity of three
  // replicas -> budget 9.  With p1 >= p2 >= ... the first grants go to the
  // heaviest current weights.  Use the concrete vector {5,4,3,2,1}/15.
  const std::vector<double> popularity =
      normalized_popularity({5.0, 4.0, 3.0, 2.0, 1.0});
  const AdamsReplication adams;
  std::vector<AdamsStep> steps;
  const auto plan = adams.replicate_traced(popularity, 3, 9, &steps);
  EXPECT_EQ(plan.total_replicas(), 9u);
  ASSERT_EQ(steps.size(), 4u);
  // Grant sequence by current max weight: p1=5 -> v1 (5/2=2.5);
  // p2=4 -> v2 (2); p3=3 -> v3 (1.5); then max{2.5,2,1.5,2,1} -> v1 again.
  EXPECT_EQ(steps[0].video, 0u);
  EXPECT_EQ(steps[1].video, 1u);
  EXPECT_EQ(steps[2].video, 2u);
  EXPECT_EQ(steps[3].video, 0u);
  EXPECT_EQ(plan.replicas, (std::vector<std::size_t>{3, 2, 2, 1, 1}));
}

TEST(AdamsReplication, TraceWeightsAreConsistent) {
  const auto popularity = zipf_popularity(10, 0.75);
  const AdamsReplication adams;
  std::vector<AdamsStep> steps;
  (void)adams.replicate_traced(popularity, 4, 25, &steps);
  ASSERT_EQ(steps.size(), 15u);
  for (const AdamsStep& step : steps) {
    EXPECT_DOUBLE_EQ(step.weight_after,
                     popularity[step.video] /
                         static_cast<double>(step.new_replicas));
    EXPECT_DOUBLE_EQ(step.weight_before,
                     popularity[step.video] /
                         static_cast<double>(step.new_replicas - 1));
    EXPECT_GT(step.weight_before, step.weight_after);
  }
}

TEST(AdamsReplication, GrantedWeightsNeverIncrease) {
  // The sequence of picked max-weights must be non-increasing — the
  // signature of a correct greedy on the max objective.
  const auto popularity = zipf_popularity(40, 0.9);
  const AdamsReplication adams;
  std::vector<AdamsStep> steps;
  (void)adams.replicate_traced(popularity, 8, 120, &steps);
  for (std::size_t i = 1; i < steps.size(); ++i) {
    EXPECT_GE(steps[i - 1].weight_before, steps[i].weight_before - 1e-15);
  }
}

// ---- optimality (Theorem 4.1): Adams achieves the optimal Eq. 8 value ----

struct AdamsCase {
  std::size_t videos;
  std::size_t servers;
  double budget_factor;  // budget = round(factor * videos)
  double theta;
};

class AdamsOptimalityTest : public ::testing::TestWithParam<AdamsCase> {};

TEST_P(AdamsOptimalityTest, AchievesBruteForceOptimum) {
  const AdamsCase c = GetParam();
  const auto popularity = zipf_popularity(c.videos, c.theta);
  const auto budget = static_cast<std::size_t>(
      c.budget_factor * static_cast<double>(c.videos));
  const AdamsReplication adams;
  const auto plan = adams.replicate(popularity, c.servers, budget);
  const double achieved = plan.max_weight(popularity);
  const double optimal = optimal_max_weight(popularity, c.servers, budget);
  EXPECT_NEAR(achieved, optimal, 1e-12)
      << "M=" << c.videos << " N=" << c.servers << " budget=" << budget;
}

INSTANTIATE_TEST_SUITE_P(
    SweepsSizesAndSkews, AdamsOptimalityTest,
    ::testing::Values(AdamsCase{5, 3, 1.8, 0.75}, AdamsCase{10, 4, 1.5, 0.25},
                      AdamsCase{20, 8, 1.2, 1.0}, AdamsCase{50, 8, 1.4, 0.75},
                      AdamsCase{100, 8, 1.6, 0.5}, AdamsCase{300, 8, 1.2, 0.75},
                      AdamsCase{300, 8, 1.8, 0.271},
                      AdamsCase{37, 5, 2.0, 0.9}));

TEST(AdamsReplication, OptimalOnRandomPopularities) {
  Rng rng(1234);
  const AdamsReplication adams;
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t m = 5 + rng.uniform_index(40);
    const std::size_t n = 2 + rng.uniform_index(7);
    std::vector<double> weights(m);
    for (double& w : weights) w = rng.uniform(0.01, 1.0);
    const auto popularity = normalized_popularity(std::move(weights));
    const std::size_t budget = m + rng.uniform_index(m * (n - 1) + 1);
    const auto plan = adams.replicate(popularity, n, budget);
    EXPECT_NEAR(plan.max_weight(popularity),
                optimal_max_weight(popularity, n, budget), 1e-12)
        << "trial=" << trial;
  }
}

TEST(AdamsReplication, SingleServerDegeneratesToOneEach) {
  const AdamsReplication adams;
  const auto plan = adams.replicate(zipf_popularity(6, 0.75), 1, 6);
  for (std::size_t r : plan.replicas) EXPECT_EQ(r, 1u);
}

}  // namespace
}  // namespace vodrep
