// Contracts of the edge-prefix-cache tier (DESIGN.md §9):
//
//   * PrefixCache is deterministic — scripted access sequences produce
//     exact residency, eviction, and counter traces for both LRU and LFU;
//   * a zero-capacity PrefixCachePolicy replays ReplicatedPolicy
//     decision-for-decision over random worlds, every counter (typed
//     rejection reasons included) and float bit-identical, and exposes no
//     cache stats at all;
//   * rejection attribution is exact: blocked suffix after a hit is plain
//     kNoBandwidth, a miss against a busy origin is kCacheMissOriginBusy,
//     dead holders stay kNoReplicaAlive, and the reason breakdown always
//     sums to the rejected total.
#include <gtest/gtest.h>

#include <cstddef>
#include <utility>
#include <vector>

#include "src/core/layout.h"
#include "src/obs/event_log.h"
#include "src/sim/engine.h"
#include "src/sim/prefix_cache_policy.h"
#include "src/sim/replicated_policy.h"
#include "src/util/rng.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"
#include "src/workload/trace.h"

namespace vodrep {
namespace {

std::size_t reason_count(const SimResult& result, obs::RejectReason reason) {
  return result.rejected_by_reason[static_cast<std::size_t>(reason)];
}

std::size_t reason_sum(const SimResult& result) {
  std::size_t sum = 0;
  for (const std::size_t count : result.rejected_by_reason) sum += count;
  return sum;
}

TEST(PrefixCacheTest, LruEvictsLeastRecentlyTouched) {
  PrefixCache cache(CacheEvictionPolicy::kLru, 200.0, {100.0, 100.0, 100.0});
  EXPECT_FALSE(cache.lookup(0));
  cache.insert(0);
  EXPECT_FALSE(cache.lookup(1));
  cache.insert(1);
  // Touching 0 makes 1 the least recently used entry.
  EXPECT_TRUE(cache.lookup(0));
  EXPECT_FALSE(cache.lookup(2));
  cache.insert(2);
  EXPECT_TRUE(cache.resident(0));
  EXPECT_FALSE(cache.resident(1));
  EXPECT_TRUE(cache.resident(2));
  const CacheTierStats& stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(cache.used_bytes(), 200.0);
  EXPECT_EQ(stats.capacity_bytes, 200.0);
}

TEST(PrefixCacheTest, LfuEvictsLeastFrequentAndBreaksTiesByRecency) {
  PrefixCache cache(CacheEvictionPolicy::kLfu, 200.0, {100.0, 100.0, 100.0});
  EXPECT_FALSE(cache.lookup(0));
  cache.insert(0);
  EXPECT_TRUE(cache.lookup(0));  // frequency of 0 rises to 2
  EXPECT_FALSE(cache.lookup(1));
  cache.insert(1);  // frequency 1
  EXPECT_FALSE(cache.lookup(2));
  cache.insert(2);  // evicts 1: the only entry at frequency 1
  EXPECT_TRUE(cache.resident(0));
  EXPECT_FALSE(cache.resident(1));
  EXPECT_TRUE(cache.resident(2));

  // Raise 2 to frequency 2 as well; the tie now breaks by recency, and 0
  // (older last touch) is the victim.
  EXPECT_TRUE(cache.lookup(2));
  EXPECT_FALSE(cache.lookup(1));
  cache.insert(1);
  EXPECT_FALSE(cache.resident(0));
  EXPECT_TRUE(cache.resident(1));
  EXPECT_TRUE(cache.resident(2));
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.stats().insertions, 4u);
}

TEST(PrefixCacheTest, OversizedEntryIsNeverAdmitted) {
  PrefixCache cache(CacheEvictionPolicy::kLru, 150.0, {100.0, 200.0});
  EXPECT_FALSE(cache.lookup(0));
  cache.insert(0);
  EXPECT_FALSE(cache.lookup(1));
  cache.insert(1);  // 200 bytes can never fit in 150: skipped, no churn
  EXPECT_TRUE(cache.resident(0));
  EXPECT_FALSE(cache.resident(1));
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.used_bytes(), 100.0);
}

struct World {
  std::size_t num_videos;
  std::size_t num_servers;
  SimConfig config;
  RequestTrace trace;
};

/// Same world family as tests/sim_equivalence_test.cc, plus the replication
/// extensions (redirect, backbone proxy, batching) the policy pair must
/// also agree on when the cache tier is disabled.
World random_world(Rng& rng) {
  World world;
  world.num_videos = 5 + rng.uniform_index(40);
  world.num_servers = 2 + rng.uniform_index(9);
  world.config.num_servers = world.num_servers;
  world.config.stream_bitrate_bps = units::mbps(4);
  world.config.bandwidth_bps_per_server =
      units::mbps(4) * static_cast<double>(1 + rng.uniform_index(30));
  if (rng.bernoulli(0.3)) {
    world.config.per_server_bandwidth_bps.resize(world.num_servers);
    for (double& b : world.config.per_server_bandwidth_bps) {
      b = units::mbps(4) * static_cast<double>(1 + rng.uniform_index(30));
    }
  }
  world.config.video_duration_sec = rng.uniform(50.0, 2000.0);
  switch (rng.uniform_index(3)) {
    case 1:
      world.config.redirect = RedirectMode::kOtherHolders;
      break;
    case 2:
      world.config.redirect = RedirectMode::kBackboneProxy;
      world.config.backbone_bps =
          units::mbps(4) * static_cast<double>(1 + rng.uniform_index(10));
      break;
    default:
      break;
  }
  if (rng.bernoulli(0.3)) {
    world.config.batching_window_sec = rng.uniform(5.0, 60.0);
    world.config.batching_mode = rng.bernoulli(0.5)
                                     ? BatchingMode::kPiggyback
                                     : BatchingMode::kPatching;
  }

  const double horizon = rng.uniform(200.0, 3000.0);
  if (rng.bernoulli(0.5)) {
    const std::size_t crashes = 1 + rng.uniform_index(2);
    double t = 0.0;
    for (std::size_t k = 0; k < crashes; ++k) {
      t += rng.uniform(1.0, horizon / 2.0);
      world.config.failures.push_back(ServerFailure{
          t, static_cast<std::size_t>(rng.uniform_index(world.num_servers))});
    }
  }

  TraceSpec spec;
  spec.arrival_rate = rng.uniform(0.05, 1.0);
  spec.horizon = horizon;
  spec.popularity = zipf_popularity(world.num_videos, rng.uniform(0.0, 1.1));
  if (rng.bernoulli(0.4)) {
    spec.abandonment.completion_probability = rng.uniform(0.2, 1.0);
  }
  world.trace = generate_trace(rng, spec);
  return world;
}

/// Each video gets 1..N distinct holders: a Fisher-Yates prefix of a fresh
/// identity permutation.
Layout random_layout(Rng& rng, std::size_t num_videos,
                     std::size_t num_servers) {
  Layout layout;
  layout.assignment.resize(num_videos);
  std::vector<std::size_t> servers(num_servers);
  for (std::size_t s = 0; s < num_servers; ++s) servers[s] = s;
  for (auto& holders : layout.assignment) {
    const std::size_t replicas = 1 + rng.uniform_index(num_servers);
    for (std::size_t k = 0; k < replicas; ++k) {
      const std::size_t j = k + rng.uniform_index(num_servers - k);
      std::swap(servers[k], servers[j]);
      holders.push_back(servers[k]);
    }
  }
  return layout;
}

/// Bit-exact: the zero-capacity policy runs the very same code path, so even
/// the integrated float metrics must be identical, not merely close.
void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.rejected_by_reason, b.rejected_by_reason);
  EXPECT_EQ(a.redirected, b.redirected);
  EXPECT_EQ(a.proxied, b.proxied);
  EXPECT_EQ(a.batched, b.batched);
  EXPECT_EQ(a.disrupted, b.disrupted);
  EXPECT_EQ(a.served_per_server, b.served_per_server);
  EXPECT_EQ(a.mean_imbalance_eq2, b.mean_imbalance_eq2);
  EXPECT_EQ(a.mean_imbalance_cv, b.mean_imbalance_cv);
  EXPECT_EQ(a.mean_imbalance_capacity, b.mean_imbalance_capacity);
  EXPECT_EQ(a.peak_imbalance_eq2, b.peak_imbalance_eq2);
  EXPECT_EQ(a.utilization_per_server, b.utilization_per_server);
}

TEST(PrefixCachePolicyTest, ZeroCapacityReplaysReplicatedPolicyExactly) {
  Rng rng(0xCA5E0);
  for (int trial = 0; trial < 50; ++trial) {
    SCOPED_TRACE(testing::Message() << "trial " << trial);
    const World world = random_world(rng);
    const Layout layout =
        random_layout(rng, world.num_videos, world.num_servers);

    SimEngine engine_replicated(world.config);
    ReplicatedPolicy replicated(layout, world.config);
    const SimResult expected = engine_replicated.run(replicated, world.trace);

    PrefixCacheOptions options;
    options.capacity_bytes = 0.0;  // disables the tier entirely
    SimEngine engine_cached(world.config);
    PrefixCachePolicy cached(layout, world.config, options);
    EXPECT_EQ(cached.cache_stats(), nullptr);
    const SimResult actual = engine_cached.run(cached, world.trace);

    expect_identical(expected, actual);
    EXPECT_EQ(actual.cache_hits, 0u);
    EXPECT_EQ(actual.cache_misses, 0u);
    EXPECT_EQ(actual.cache_evictions, 0u);
    EXPECT_EQ(reason_count(actual, obs::RejectReason::kCacheMissOriginBusy),
              0u);
    EXPECT_EQ(reason_sum(actual), actual.rejected);
  }
}

// One server with bandwidth for exactly one concurrent stream, two videos
// both hosted there, 50% prefixes, and a scripted trace that walks every
// attribution branch:
//
//   t=0  video 0, wf 1.0  -> miss, admitted; full stream holds [0, 100)
//   t=1  video 0, wf 1.0  -> hit, suffix blocked          => kNoBandwidth
//   t=2  video 1, wf 1.0  -> miss, origin busy            => kCacheMissOriginBusy
//   t=3  video 0, wf 0.4  -> hit inside prefix, admitted from the edge
//   t=4  server 0 crashes (disrupts the t=0 stream)
//   t=5  video 0, wf 1.0  -> hit, suffix but holder dead  => kNoReplicaAlive
//   t=6  video 1, wf 1.0  -> miss, holder dead            => kNoReplicaAlive
//   t=7  video 0, wf 0.3  -> hit inside prefix, admitted despite the crash
TEST(PrefixCachePolicyTest, RejectionAttributionIsExact) {
  SimConfig config;
  config.num_servers = 1;
  config.stream_bitrate_bps = units::mbps(4);
  config.bandwidth_bps_per_server = units::mbps(4);
  config.video_duration_sec = 100.0;
  config.failures.push_back(ServerFailure{4.0, 0});

  Layout layout;
  layout.assignment = {{0}, {0}};

  RequestTrace trace;
  trace.horizon = 200.0;
  trace.requests = {
      Request{0.0, 0, 1.0}, Request{1.0, 0, 1.0}, Request{2.0, 1, 1.0},
      Request{3.0, 0, 0.4}, Request{5.0, 0, 1.0}, Request{6.0, 1, 1.0},
      Request{7.0, 0, 0.3},
  };
  ASSERT_TRUE(trace.is_well_formed());

  PrefixCacheOptions options;
  options.eviction = CacheEvictionPolicy::kLru;
  options.capacity_bytes = units::gigabytes(1.0);
  options.uniform_prefix_fraction = 0.5;

  SimEngine engine(config);
  PrefixCachePolicy policy(layout, config, options);
  ASSERT_NE(policy.cache_stats(), nullptr);
  const SimResult result = engine.run(policy, trace);

  EXPECT_EQ(result.total_requests, 7u);
  EXPECT_EQ(result.rejected, 4u);
  EXPECT_EQ(reason_count(result, obs::RejectReason::kNoBandwidth), 1u);
  EXPECT_EQ(reason_count(result, obs::RejectReason::kCacheMissOriginBusy), 1u);
  EXPECT_EQ(reason_count(result, obs::RejectReason::kNoReplicaAlive), 2u);
  EXPECT_EQ(reason_count(result, obs::RejectReason::kNone), 0u);
  EXPECT_EQ(reason_count(result, obs::RejectReason::kStripeUnavailable), 0u);
  EXPECT_EQ(reason_sum(result), result.rejected);

  // Only the t=0 request ever reserved origin bandwidth, and the crash
  // killed that stream; the two in-prefix hits were served from the edge.
  EXPECT_EQ(result.disrupted, 1u);
  ASSERT_EQ(result.served_per_server.size(), 1u);
  EXPECT_EQ(result.served_per_server[0], 1u);

  // Cache traffic: hits at t=1, 3, 5, 7; misses at t=0, 2, 6.  The rejected
  // miss at t=2 must NOT have populated the cache — video 1 misses again at
  // t=6 — and nothing was ever evicted.
  EXPECT_EQ(result.cache_hits, 4u);
  EXPECT_EQ(result.cache_misses, 3u);
  EXPECT_EQ(result.cache_evictions, 0u);
  EXPECT_DOUBLE_EQ(result.cache_hit_ratio(), 4.0 / 7.0);
}

// With ample bandwidth every request is admitted, and repeat requests for a
// cached video hold origin bandwidth only for the suffix — observable as a
// perfect hit ratio after the first touch of each video.
TEST(PrefixCachePolicyTest, RepeatTrafficHitsTheCache) {
  SimConfig config;
  config.num_servers = 2;
  config.stream_bitrate_bps = units::mbps(4);
  config.bandwidth_bps_per_server = units::mbps(400);
  config.video_duration_sec = 100.0;

  Layout layout;
  layout.assignment = {{0, 1}, {1}};

  RequestTrace trace;
  trace.horizon = 500.0;
  for (int k = 0; k < 20; ++k) {
    trace.requests.push_back(
        Request{static_cast<double>(k), static_cast<std::size_t>(k % 2), 1.0});
  }
  ASSERT_TRUE(trace.is_well_formed());

  PrefixCacheOptions options;
  options.capacity_bytes = units::gigabytes(1.0);
  options.uniform_prefix_fraction = 0.25;

  SimEngine engine(config);
  PrefixCachePolicy policy(layout, config, options);
  const SimResult result = engine.run(policy, trace);

  EXPECT_EQ(result.rejected, 0u);
  EXPECT_EQ(result.cache_misses, 2u);  // first touch of each video
  EXPECT_EQ(result.cache_hits, 18u);
  EXPECT_DOUBLE_EQ(result.cache_hit_ratio(), 18.0 / 20.0);
}

}  // namespace
}  // namespace vodrep
