#include "src/anneal/parallel_tempering.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "src/audit/audit.h"
#include "src/core/sa_solver.h"
#include "src/core/scalable.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

/// Same rugged 1-D landscape as annealer_test.cc: a deep global minimum at
/// 80 hidden behind a local minimum at 20.  The hot chains of a tempering
/// ladder cross the barrier; the cold chains refine.
struct RuggedProblem {
  using State = int;

  State initial(Rng&) const { return 15; }
  double cost(const State& x) const {
    const double local = 0.5 * (x - 20.0) * (x - 20.0);
    const double global = (x - 80.0) * (x - 80.0) - 500.0;
    return std::min(local, global);
  }
  State neighbor(const State& x, Rng& rng) const {
    const int step = static_cast<int>(rng.uniform_index(21)) - 10;
    return x + step;
  }
};

/// In-place quadratic with a floor at 0 (same as annealer_test.cc) to cover
/// the scratch-owning exchange path.
struct InPlaceQuadratic {
  using State = int;
  struct Scratch {
    int committed = 0;
    int tentative = 0;
  };

  State initial(Rng&) const { return 60; }
  double cost(const State& x) const {
    const double d = static_cast<double>(x);
    return d * d;
  }
  State neighbor(const State& x, Rng& rng) const {
    return rng.bernoulli(0.5) ? x + 1 : x - 1;
  }

  Scratch make_scratch(State s) const { return {s, s}; }
  bool propose(Scratch& s, Rng& rng) const {
    const int candidate = s.committed + (rng.bernoulli(0.5) ? 1 : -1);
    if (candidate < 0) return false;
    s.tentative = candidate;
    return true;
  }
  double delta_cost(const Scratch& s) const {
    return cost(s.tentative) - cost(s.committed);
  }
  void commit(Scratch& s) const { s.committed = s.tentative; }
  void revert(Scratch& s) const { s.tentative = s.committed; }
  State extract(const Scratch& s) const { return s.committed; }
};

AnnealOptions rugged_options() {
  AnnealOptions options;
  options.initial_temperature = 200.0;
  options.moves_per_temperature = 100;
  options.stall_steps = 0;
  return options;
}

ScalableProblem scalable_problem() {
  ScalableProblem p;
  p.videos.duration_sec = units::minutes(90);
  p.videos.popularity = zipf_popularity(30, 0.75);
  p.cluster.num_servers = 5;
  p.cluster.bandwidth_bps_per_server = units::gbps(0.5);
  p.cluster.storage_bytes_per_server = units::gigabytes(150.0);
  p.ladder.rates_bps = {units::mbps(1), units::mbps(2), units::mbps(4)};
  p.expected_peak_requests = 600.0;
  return p;
}

SaSolverOptions small_sa_options(std::size_t chains) {
  SaSolverOptions options;
  options.chains = chains;
  options.anneal.initial_temperature = 1.0;
  options.anneal.max_temperature_steps = 25;
  options.anneal.moves_per_temperature = 40;
  options.anneal.stall_steps = 0;
  return options;
}

// --- K = 1 equivalence: one tempering chain IS the plain annealer ---------

TEST(ParallelTempering, SingleChainReproducesAnneal) {
  RuggedProblem problem;
  const AnnealOptions options = rugged_options();
  Rng rng(0x600D);  // pt_chain_seed(base, 0) == base
  const auto single = anneal(problem, rng, options);
  AnnealOptions pt = options;
  pt.chains = 1;
  const auto tempered = anneal_parallel_tempering(problem, 0x600D, pt);
  EXPECT_EQ(tempered.best_state, single.best_state);
  EXPECT_EQ(tempered.best_cost, single.best_cost);
  EXPECT_EQ(tempered.moves_proposed, single.moves_proposed);
  EXPECT_EQ(tempered.moves_accepted, single.moves_accepted);
  EXPECT_EQ(tempered.temperature_steps, single.temperature_steps);
  EXPECT_EQ(tempered.final_temperature, single.final_temperature);
  EXPECT_EQ(tempered.trajectory, single.trajectory);
  EXPECT_EQ(tempered.winning_chain, 0u);
  EXPECT_EQ(tempered.swap_attempts, 0u);
}

TEST(ParallelTempering, SingleChainReproducesAnnealInPlace) {
  InPlaceQuadratic problem;
  AnnealOptions options;
  options.initial_temperature = 50.0;
  options.stall_steps = 0;
  options.max_temperature_steps = 150;
  Rng rng(42);
  const auto single = anneal(problem, rng, options);
  const auto tempered = anneal_parallel_tempering(problem, 42, options);
  EXPECT_EQ(tempered.best_state, single.best_state);
  EXPECT_EQ(tempered.best_cost, single.best_cost);
  EXPECT_EQ(tempered.moves_proposed, single.moves_proposed);
  EXPECT_EQ(tempered.moves_noop, single.moves_noop);
}

// --- Determinism: bit-identical regardless of thread-pool size ------------

TEST(ParallelTempering, DeterministicAcrossPoolSizes) {
  RuggedProblem problem;
  AnnealOptions options = rugged_options();
  options.chains = 4;
  options.swap_period = 4;
  const auto serial = anneal_parallel_tempering(problem, 77, options);
  ThreadPool pool1(1);
  const auto pooled1 = anneal_parallel_tempering(problem, 77, options, &pool1);
  ThreadPool pool4(4);
  const auto pooled4 = anneal_parallel_tempering(problem, 77, options, &pool4);
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  ThreadPool pool_hw(hw);
  const auto pooled_hw =
      anneal_parallel_tempering(problem, 77, options, &pool_hw);

  for (const auto* run : {&pooled1, &pooled4, &pooled_hw}) {
    EXPECT_EQ(run->best_state, serial.best_state);
    EXPECT_EQ(run->best_cost, serial.best_cost);
    EXPECT_EQ(run->winning_chain, serial.winning_chain);
    EXPECT_EQ(run->moves_proposed, serial.moves_proposed);
    EXPECT_EQ(run->moves_accepted, serial.moves_accepted);
    EXPECT_EQ(run->swap_attempts, serial.swap_attempts);
    EXPECT_EQ(run->swap_accepts, serial.swap_accepts);
    ASSERT_EQ(run->chains.size(), serial.chains.size());
    for (std::size_t c = 0; c < serial.chains.size(); ++c) {
      EXPECT_EQ(run->chains[c].best_cost, serial.chains[c].best_cost);
      EXPECT_EQ(run->chains[c].moves_proposed,
                serial.chains[c].moves_proposed);
      EXPECT_EQ(run->chains[c].swaps_accepted,
                serial.chains[c].swaps_accepted);
    }
  }
}

// --- Ladder structure and accounting --------------------------------------

TEST(ParallelTempering, ExchangesHappenAndAccountingCloses) {
  RuggedProblem problem;
  AnnealOptions options = rugged_options();
  options.chains = 4;
  options.swap_period = 2;
  const auto result = anneal_parallel_tempering(problem, 5, options);

  EXPECT_GT(result.swap_attempts, 0u);
  EXPECT_LE(result.swap_accepts, result.swap_attempts);
  ASSERT_EQ(result.chains.size(), 4u);

  // Aggregate move counters must equal the per-chain sums.
  std::size_t proposed = 0;
  std::size_t accepted = 0;
  std::size_t swaps = 0;
  double best = result.chains[0].best_cost;
  for (const auto& chain : result.chains) {
    proposed += chain.moves_proposed;
    accepted += chain.moves_accepted;
    swaps += chain.swaps_accepted;
    best = std::min(best, chain.best_cost);
  }
  EXPECT_EQ(result.moves_proposed, proposed);
  EXPECT_EQ(result.moves_accepted, accepted);
  // Every accepted exchange touches exactly two chains.
  EXPECT_EQ(swaps, 2 * result.swap_accepts);
  // The reduction is the minimum per-chain best, ties to the lowest index.
  EXPECT_EQ(result.best_cost, best);
  EXPECT_EQ(result.chains[result.winning_chain].best_cost, best);
  for (std::size_t c = 0; c < result.winning_chain; ++c) {
    EXPECT_GT(result.chains[c].best_cost, best);
  }
  // The winner escaped the local minimum (cold chain refined what the hot
  // chains handed down, or found it alone).
  EXPECT_DOUBLE_EQ(result.best_cost, -500.0);
}

TEST(ParallelTempering, HotterChainsStartHotter) {
  RuggedProblem problem;
  AnnealOptions options = rugged_options();
  options.chains = 3;
  options.temperature_spread = 2.0;
  options.stall_steps = 0;
  options.max_temperature_steps = 5;  // few steps: final temps stay ordered
  options.swap_period = 100;          // no exchanges interfere
  const auto result = anneal_parallel_tempering(problem, 9, options);
  ASSERT_EQ(result.chains.size(), 3u);
  EXPECT_LT(result.chains[0].final_temperature,
            result.chains[1].final_temperature);
  EXPECT_LT(result.chains[1].final_temperature,
            result.chains[2].final_temperature);
}

TEST(ParallelTempering, RejectsBadOptions) {
  RuggedProblem problem;
  AnnealOptions options = rugged_options();
  options.chains = 0;
  EXPECT_THROW((void)anneal_parallel_tempering(problem, 1, options),
               InvalidArgumentError);
  options.chains = 2;
  options.swap_period = 0;
  EXPECT_THROW((void)anneal_parallel_tempering(problem, 1, options),
               InvalidArgumentError);
  options.swap_period = 8;
  options.temperature_spread = 0.5;
  EXPECT_THROW((void)anneal_parallel_tempering(problem, 1, options),
               InvalidArgumentError);
}

TEST(ParallelTempering, ChainLaneNamesAreStable) {
  EXPECT_STREQ(pt_chain_lane(0), "sa.chain.0");
  EXPECT_STREQ(pt_chain_lane(31), "sa.chain.31");
  EXPECT_STREQ(pt_chain_lane(32), "sa.chain.32+");
  EXPECT_STREQ(pt_chain_lane(1000), "sa.chain.32+");
  // Chain 0 must reuse the base seed verbatim (K=1 equivalence contract).
  EXPECT_EQ(pt_chain_seed(0xABCD, 0), 0xABCDull);
  EXPECT_NE(pt_chain_seed(0xABCD, 1), 0xABCDull);
}

// --- End-to-end through solve_scalable ------------------------------------

TEST(ParallelTempering, SolveScalableDeterministicAcrossPoolSizes) {
  const ScalableProblem problem = scalable_problem();
  const SaSolverOptions options = small_sa_options(3);
  const SaSolverResult serial = solve_scalable(problem, 2002, options);
  ThreadPool pool(2);
  const SaSolverResult pooled = solve_scalable(problem, 2002, options, &pool);
  EXPECT_EQ(pooled.objective, serial.objective);
  EXPECT_EQ(pooled.solution.bitrate_index, serial.solution.bitrate_index);
  EXPECT_EQ(pooled.solution.placement, serial.solution.placement);
  EXPECT_EQ(pooled.anneal.winning_chain, serial.anneal.winning_chain);
  EXPECT_EQ(pooled.anneal.swap_accepts, serial.anneal.swap_accepts);
}

TEST(ParallelTempering, SolveScalableLayoutsPassAuditAtEveryChainCount) {
  const ScalableProblem problem = scalable_problem();
  for (const std::size_t chains : {1u, 2u, 4u, 8u}) {
    const SaSolverResult result =
        solve_scalable(problem, 41, small_sa_options(chains));
    const AuditReport report =
        LayoutAuditor::audit_solution(problem, result.solution);
    EXPECT_TRUE(report.ok()) << "chains=" << chains << ": "
                             << report.summary();
    EXPECT_EQ(result.anneal.chains.size(), chains);
    EXPECT_LT(result.anneal.winning_chain, chains);
  }
}

TEST(ParallelTempering, IndependentChainsModeStillWorks) {
  const ScalableProblem problem = scalable_problem();
  SaSolverOptions options = small_sa_options(3);
  options.independent_chains = true;
  const SaSolverResult result = solve_scalable(problem, 7, options);
  const AuditReport report =
      LayoutAuditor::audit_solution(problem, result.solution);
  EXPECT_TRUE(report.ok()) << report.summary();
  // Independent chains never exchange.
  EXPECT_EQ(result.anneal.swap_attempts, 0u);
  EXPECT_EQ(result.anneal.chains.size(), 3u);
}

}  // namespace
}  // namespace vodrep
