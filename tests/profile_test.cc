#include "src/obs/profile.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/clock.h"
#include "src/obs/json_lite.h"

namespace vodrep::obs {
namespace {

/// Busy-waits so a phase's wall time strictly exceeds the clock resolution.
void spin_ns(std::uint64_t ns) {
  const std::uint64_t until = steady_now_ns() + ns;
  while (steady_now_ns() < until) {
  }
}

/// The profiler under test is the global one (VODREP_PROFILE_PHASE
/// hard-wires it); every test starts from a cleared, disabled profiler and
/// leaves it that way.
class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    profiler().set_enabled(false);
    profiler().clear();
  }
  void TearDown() override {
    profiler().set_enabled(false);
    profiler().clear();
  }
  static RunProfiler& profiler() { return RunProfiler::global(); }

  static const PhaseStats* find(const std::vector<PhaseStats>& forest,
                                const std::string& name) {
    for (const PhaseStats& phase : forest) {
      if (phase.name == name) return &phase;
    }
    return nullptr;
  }
};

TEST_F(ProfileTest, NestedPhaseAccountingSumsToParent) {
  profiler().set_enabled(true);
  {
    VODREP_PROFILE_PHASE("outer");
    spin_ns(200'000);
    for (int i = 0; i < 3; ++i) {
      VODREP_PROFILE_PHASE("child_a");
      spin_ns(200'000);
    }
    {
      VODREP_PROFILE_PHASE("child_b");
      spin_ns(200'000);
    }
  }
  profiler().set_enabled(false);
  const ProfileSnapshot snap = profiler().snapshot();
  const PhaseStats* outer = find(snap.phases, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
  const PhaseStats* child_a = find(outer->children, "child_a");
  const PhaseStats* child_b = find(outer->children, "child_b");
  ASSERT_NE(child_a, nullptr);
  ASSERT_NE(child_b, nullptr);
  EXPECT_EQ(child_a->count, 3u);
  EXPECT_EQ(child_b->count, 1u);
  // A parent's wall time covers its children plus its own work: the sum of
  // child wall must never exceed the parent's.
  EXPECT_GE(outer->wall_ns, child_a->wall_ns + child_b->wall_ns);
  EXPECT_GT(child_a->wall_ns, 0u);
  // The spin loop burns CPU, so thread-CPU time moves with wall time (a
  // loose lower bound: at least 10% of the busy-wait registered).
  EXPECT_GT(outer->cpu_ns, outer->wall_ns / 10);
  EXPECT_GT(snap.max_rss_kb, 0u);
}

TEST_F(ProfileTest, CrossThreadMergeIsDeterministicAcrossRuns) {
  // Two identical multi-threaded runs must snapshot to the same forest
  // shape (names, counts, nesting), however the threads were scheduled.
  const auto run_once = [this] {
    profiler().clear();
    profiler().set_enabled(true);
    std::vector<std::thread> threads;
    threads.reserve(3);
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([] {
        for (int i = 0; i < 5; ++i) {
          VODREP_PROFILE_PHASE("worker");
          VODREP_PROFILE_PHASE("step");
          spin_ns(1'000);
        }
      });
    }
    {
      VODREP_PROFILE_PHASE("main_phase");
      spin_ns(1'000);
    }
    for (std::thread& thread : threads) thread.join();
    profiler().set_enabled(false);
    return profiler().snapshot();
  };

  const ProfileSnapshot first = run_once();
  const ProfileSnapshot second = run_once();

  // Same shape both runs, with the three workers' trees merged into one
  // "worker" root (3 threads x 5 iterations).
  for (const ProfileSnapshot* snap : {&first, &second}) {
    ASSERT_EQ(snap->phases.size(), 2u);
    // Roots sorted by name: main_phase before worker.
    EXPECT_EQ(snap->phases[0].name, "main_phase");
    EXPECT_EQ(snap->phases[1].name, "worker");
    EXPECT_EQ(snap->phases[1].count, 15u);
    ASSERT_EQ(snap->phases[1].children.size(), 1u);
    EXPECT_EQ(snap->phases[1].children[0].name, "step");
    EXPECT_EQ(snap->phases[1].children[0].count, 15u);
    EXPECT_GE(snap->phases[1].wall_ns,
              snap->phases[1].children[0].wall_ns);
  }
}

TEST_F(ProfileTest, DisabledProfilerAllocatesNothing) {
  ASSERT_FALSE(profiler().enabled());
  for (int i = 0; i < 10'000; ++i) {
    VODREP_PROFILE_PHASE("dead");
  }
  // No thread tree was ever registered: a disarmed ProfilePhase is one
  // relaxed load, no allocation, no clock read.
  EXPECT_EQ(profiler().threads_registered(), 0u);
  EXPECT_TRUE(profiler().snapshot().phases.empty());
}

TEST_F(ProfileTest, JsonExportIsVersionedAndRoundTrips) {
  profiler().set_enabled(true);
  {
    VODREP_PROFILE_PHASE("solve");
    {
      VODREP_PROFILE_PHASE("inner");
      spin_ns(1'000);
    }
  }
  profiler().set_enabled(false);
  const JsonValue root = profiler().to_json();
  EXPECT_EQ(root.at("profile_version").as_int(), RunProfiler::kProfileVersion);
  EXPECT_GE(root.at("max_rss_kb").as_uint(), 1u);
  EXPECT_TRUE(root.at("trace").has("recorded"));
  EXPECT_TRUE(root.at("trace").has("dropped"));
  ASSERT_EQ(root.at("phases").size(), 1u);
  const JsonValue& solve = root.at("phases").items()[0];
  EXPECT_EQ(solve.at("name").as_string(), "solve");
  EXPECT_EQ(solve.at("count").as_uint(), 1u);
  ASSERT_EQ(solve.at("children").size(), 1u);
  EXPECT_EQ(solve.at("children").items()[0].at("name").as_string(), "inner");
  // Value-exact round trip through the json_lite writer/parser.
  const JsonValue reparsed = parse_json(root.dump());
  EXPECT_EQ(root, reparsed);
}

TEST_F(ProfileTest, ClearResetsTreesAndInvalidatesCachedRegistration) {
  profiler().set_enabled(true);
  {
    VODREP_PROFILE_PHASE("before_clear");
  }
  ASSERT_EQ(profiler().threads_registered(), 1u);
  profiler().clear();
  EXPECT_EQ(profiler().threads_registered(), 0u);
  EXPECT_TRUE(profiler().snapshot().phases.empty());
  // The thread re-registers transparently after clear().
  {
    VODREP_PROFILE_PHASE("after_clear");
  }
  profiler().set_enabled(false);
  const ProfileSnapshot snap = profiler().snapshot();
  ASSERT_EQ(snap.phases.size(), 1u);
  EXPECT_EQ(snap.phases[0].name, "after_clear");
}

}  // namespace
}  // namespace vodrep::obs
