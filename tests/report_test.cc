// Run-report schema: build_run_report output must validate by
// construction, survive a serialize/parse round trip value-exact (the
// acceptance bar: the report's final Eq. 2 imbalance matches the SimResult
// to 1e-9 — here exactly), and the validator must name each structural
// violation.  Also covers aggregate_results, the epoch-folding arithmetic
// behind the online-adaptation reports.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "src/core/layout.h"
#include "src/obs/event_log.h"
#include "src/obs/json_lite.h"
#include "src/obs/profile.h"
#include "src/obs/report.h"
#include "src/obs/timeseries.h"
#include "src/sim/engine.h"
#include "src/sim/replicated_policy.h"
#include "src/sim/run_report.h"
#include "src/sim/sharded_engine.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"
#include "src/workload/trace.h"

namespace vodrep {
namespace {

using obs::JsonValue;

struct RunFixture {
  SimConfig config;
  SimResult result;
  obs::JsonValue report;
};

/// Runs a small replicated-organization world with a timeline and event log
/// attached and assembles its report.
RunFixture run_small_world() {
  RunFixture fixture;
  constexpr std::size_t kServers = 4;
  constexpr std::size_t kVideos = 12;
  fixture.config.num_servers = kServers;
  fixture.config.bandwidth_bps_per_server = units::mbps(4) * 6.0;
  fixture.config.stream_bitrate_bps = units::mbps(4);
  fixture.config.video_duration_sec = 300.0;

  Layout layout;
  layout.assignment.resize(kVideos);
  for (std::size_t v = 0; v < kVideos; ++v) {
    layout.assignment[v] = {v % kServers, (v + 1) % kServers};
  }

  Rng rng(0x8E7);
  TraceSpec spec;
  spec.arrival_rate = 0.5;
  spec.horizon = 1200.0;
  spec.popularity = zipf_popularity(kVideos, 0.75);
  const RequestTrace trace = generate_trace(rng, spec);

  obs::TimeseriesConfig ts_config;
  ts_config.interval_sec = spec.horizon / 32.0;
  obs::TimeseriesCollector timeline(ts_config, kServers);
  timeline.annotate(600.0, "replan");
  obs::EventLog events(256);

  SimEngine engine(fixture.config);
  engine.attach_timeline(&timeline);
  engine.attach_event_log(&events);
  ReplicatedPolicy policy(layout, fixture.config);
  fixture.result = engine.run(policy, trace);

  JsonValue extra = JsonValue::object();
  extra.set("num_videos", JsonValue::integer_u64(kVideos));
  fixture.report = build_run_report(fixture.config, fixture.result, &timeline,
                                    &events, std::move(extra));
  return fixture;
}

/// Copy of `object` with `key` removed (JsonValue::set appends, so
/// mutations rebuild the object instead).
JsonValue without(const JsonValue& object, const std::string& key) {
  JsonValue out = JsonValue::object();
  for (const auto& [name, value] : object.members()) {
    if (name != key) out.set(name, value);
  }
  return out;
}

/// Copy of `object` with `key` replaced by `value`.
JsonValue replaced(const JsonValue& object, const std::string& key,
                   JsonValue value) {
  JsonValue out = JsonValue::object();
  for (const auto& [name, member] : object.members()) {
    out.set(name, name == key ? value : member);
  }
  return out;
}

bool any_problem_contains(const std::vector<std::string>& problems,
                          const std::string& needle) {
  for (const std::string& problem : problems) {
    if (problem.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(RunReportTest, BuiltReportValidatesCleanly) {
  const RunFixture fixture = run_small_world();
  const std::vector<std::string> problems =
      obs::validate_run_report(fixture.report);
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());
  EXPECT_EQ(fixture.report.at("schema_version").as_int(),
            obs::kRunReportSchemaVersion);
  EXPECT_EQ(fixture.report.at("kind").as_string(), obs::kRunReportKind);
  EXPECT_EQ(fixture.report.at("config").at("num_videos").as_uint(), 12u);
  // The timeline captured real samples and the controller annotation.
  EXPECT_GE(fixture.report.at("timeline").at("num_samples").as_uint(), 2u);
  EXPECT_EQ(fixture.report.at("annotations").size(), 1u);
}

TEST(RunReportTest, RoundTripIsValueExact) {
  const RunFixture fixture = run_small_world();
  const JsonValue reparsed = obs::parse_json(fixture.report.dump());
  EXPECT_TRUE(obs::validate_run_report(reparsed).empty());
  // json_lite serializes with max_digits10, so the end-of-run Eq. 2
  // imbalance survives the round trip exactly — not just to 1e-9.
  EXPECT_EQ(reparsed.at("final").at("mean_imbalance_eq2").as_number(),
            fixture.result.mean_imbalance_eq2);
  EXPECT_EQ(reparsed.at("final").at("rejected").as_uint(),
            fixture.result.rejected);
  EXPECT_EQ(reparsed, fixture.report);
}

TEST(RunReportTest, PerReasonCountsSumToRejectedTotal) {
  const RunFixture fixture = run_small_world();
  const JsonValue& rejections = fixture.report.at("rejections");
  std::uint64_t sum = 0;
  for (const auto& [name, count] : rejections.at("by_reason").members()) {
    (void)name;
    sum += count.as_uint();
  }
  EXPECT_EQ(sum, rejections.at("total").as_uint());
  EXPECT_EQ(sum, fixture.result.rejected);
}

TEST(RunReportTest, NullCollectorsYieldEmptyButValidSections) {
  const RunFixture fixture = run_small_world();
  const JsonValue report = build_run_report(fixture.config, fixture.result,
                                            /*timeline=*/nullptr,
                                            /*events=*/nullptr);
  EXPECT_TRUE(obs::validate_run_report(report).empty());
  EXPECT_EQ(report.at("timeline").at("num_samples").as_uint(), 0u);
  EXPECT_EQ(report.at("annotations").size(), 0u);
  EXPECT_EQ(report.at("events").at("records").size(), 0u);
}

TEST(RunReportValidatorTest, FlagsMissingTopLevelKey) {
  const RunFixture fixture = run_small_world();
  const auto problems =
      obs::validate_run_report(without(fixture.report, "final"));
  EXPECT_TRUE(any_problem_contains(problems, "missing required key 'final'"));
}

TEST(RunReportValidatorTest, FlagsWrongSchemaVersionAndKind) {
  const RunFixture fixture = run_small_world();
  const auto version_problems = obs::validate_run_report(
      replaced(fixture.report, "schema_version", JsonValue::integer(99)));
  EXPECT_TRUE(any_problem_contains(version_problems, "schema_version"));
  const auto kind_problems = obs::validate_run_report(
      replaced(fixture.report, "kind", JsonValue::string("other")));
  EXPECT_TRUE(any_problem_contains(kind_problems, "kind"));
}

TEST(RunReportValidatorTest, FlagsReasonSumMismatch) {
  const RunFixture fixture = run_small_world();
  JsonValue rejections = fixture.report.at("rejections");
  rejections = replaced(
      rejections, "total",
      JsonValue::integer_u64(rejections.at("total").as_uint() + 1));
  const auto problems = obs::validate_run_report(
      replaced(fixture.report, "rejections", std::move(rejections)));
  EXPECT_TRUE(any_problem_contains(problems, "does not sum"));
}

TEST(RunReportValidatorTest, FlagsColumnarSizeMismatch) {
  const RunFixture fixture = run_small_world();
  JsonValue timeline = fixture.report.at("timeline");
  timeline = replaced(timeline, "time", JsonValue::array());
  const auto problems = obs::validate_run_report(
      replaced(fixture.report, "timeline", std::move(timeline)));
  EXPECT_TRUE(any_problem_contains(problems, "timeline.time"));
}

TEST(RunReportValidatorTest, FlagsNonObjectInput) {
  const auto problems = obs::validate_run_report(JsonValue::array());
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_TRUE(any_problem_contains(problems, "not a JSON object"));
}

/// Minimal well-formed `profile` section (the RunProfiler::to_json shape)
/// for validator tests that do not want to run a profiled simulation.
JsonValue tiny_profile() {
  JsonValue phase = JsonValue::object();
  phase.set("name", JsonValue::string("root"));
  phase.set("wall_ns", JsonValue::integer(1000));
  phase.set("cpu_ns", JsonValue::integer(900));
  phase.set("count", JsonValue::integer(1));
  phase.set("children", JsonValue::array());
  JsonValue phases = JsonValue::array();
  phases.push_back(std::move(phase));
  JsonValue profile = JsonValue::object();
  profile.set("profile_version", JsonValue::integer(obs::kRunProfileVersion));
  profile.set("max_rss_kb", JsonValue::integer_u64(1));
  profile.set("phases", std::move(phases));
  return profile;
}

TEST(RunReportValidatorTest, AcceptsWellFormedProfileSection) {
  const RunFixture fixture = run_small_world();
  JsonValue report = fixture.report;
  report.set("profile", tiny_profile());
  EXPECT_TRUE(obs::validate_run_report(report).empty());
}

TEST(RunReportValidatorTest, FlagsProfileSectionShapeProblems) {
  const RunFixture fixture = run_small_world();

  JsonValue as_array = fixture.report;
  as_array.set("profile", JsonValue::array());
  EXPECT_TRUE(any_problem_contains(obs::validate_run_report(as_array),
                                   "profile must carry"));

  JsonValue wrong_version = fixture.report;
  wrong_version.set("profile", replaced(tiny_profile(), "profile_version",
                                        JsonValue::integer(99)));
  EXPECT_TRUE(any_problem_contains(obs::validate_run_report(wrong_version),
                                   "profile.profile_version"));

  JsonValue bad_phase = tiny_profile();
  JsonValue phases = JsonValue::array();
  phases.push_back(replaced(bad_phase.at("phases").items().front(), "wall_ns",
                            JsonValue::string("fast")));
  bad_phase = replaced(bad_phase, "phases", std::move(phases));
  JsonValue bad_node = fixture.report;
  bad_node.set("profile", std::move(bad_phase));
  EXPECT_TRUE(any_problem_contains(obs::validate_run_report(bad_node),
                                   "'wall_ns' is not a non-negative integer"));
}

// Acceptance bar for the profiler instrumentation: a sharded run must
// attribute >= 95% of the engine's wall time to the named phases under the
// "sim.sharded" root (plan / setup / shard_run / epoch_merge / finish), and
// the resulting report with an embedded profile must validate and
// round-trip.
TEST(RunReportProfileTest, ShardedRunProfileAccountsEngineWallTime) {
  obs::RunProfiler& profiler = obs::RunProfiler::global();
  profiler.clear();
  profiler.set_enabled(true);

  constexpr std::size_t kServers = 4;
  constexpr std::size_t kVideos = 12;
  SimConfig config;
  config.num_servers = kServers;
  config.bandwidth_bps_per_server = units::mbps(4) * 6.0;
  config.stream_bitrate_bps = units::mbps(4);
  config.video_duration_sec = 300.0;

  Layout layout;
  layout.assignment.resize(kVideos);
  for (std::size_t v = 0; v < kVideos; ++v) {
    layout.assignment[v] = {v % kServers, (v + 1) % kServers};
  }

  Rng rng(0x8E7);
  TraceSpec spec;
  // Large enough (~48k requests, >= 5 ms of engine work) that the phase
  // scopes' own clock-read overhead — the only wall time between named
  // children — amortizes well under the 5% slack.
  spec.arrival_rate = 20.0;
  spec.horizon = 2400.0;
  spec.popularity = zipf_popularity(kVideos, 0.75);
  const RequestTrace trace = generate_trace(rng, spec);

  ThreadPool pool(2);
  ShardedSimOptions options;
  options.num_shards = 4;
  options.pool = &pool;
  const SimResult result = simulate_sharded(layout, config, trace, options);
  profiler.set_enabled(false);

  const obs::ProfileSnapshot snap = profiler.snapshot();
  const obs::PhaseStats* root = nullptr;
  for (const obs::PhaseStats& phase : snap.phases) {
    if (phase.name == "sim.sharded") root = &phase;
  }
  ASSERT_NE(root, nullptr) << "no sim.sharded root phase recorded";
  EXPECT_EQ(root->count, 1u);
  ASSERT_GT(root->wall_ns, 0u);

  std::uint64_t child_wall = 0;
  bool saw_plan = false, saw_shard_run = false, saw_epoch_merge = false;
  for (const obs::PhaseStats& child : root->children) {
    child_wall += child.wall_ns;
    if (child.name == "plan") saw_plan = true;
    if (child.name == "shard_run") saw_shard_run = true;
    if (child.name == "epoch_merge") saw_epoch_merge = true;
  }
  EXPECT_TRUE(saw_plan);
  EXPECT_TRUE(saw_shard_run);
  EXPECT_TRUE(saw_epoch_merge);
  std::string breakdown;
  for (const obs::PhaseStats& child : root->children) {
    breakdown += child.name + "=" + std::to_string(child.wall_ns) + "ns ";
  }
  EXPECT_GE(static_cast<double>(child_wall),
            0.95 * static_cast<double>(root->wall_ns))
      << "named phases cover only " << child_wall << " of " << root->wall_ns
      << " ns of engine wall time: " << breakdown;

  // The exported profile embeds cleanly into a run report and round-trips.
  const JsonValue report =
      build_run_report(config, result, /*timeline=*/nullptr,
                       /*events=*/nullptr, JsonValue::object(),
                       profiler.to_json());
  const std::vector<std::string> problems = obs::validate_run_report(report);
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
  EXPECT_EQ(report.at("profile").at("profile_version").as_int(),
            obs::kRunProfileVersion);
  const JsonValue reparsed = obs::parse_json(report.dump());
  EXPECT_TRUE(obs::validate_run_report(reparsed).empty());
  EXPECT_EQ(reparsed.at("profile"), report.at("profile"));
  profiler.clear();
}

TEST(AggregateResultsTest, SumsCountersAveragesMeansAndTakesPeaks) {
  SimResult a;
  a.total_requests = 100;
  a.rejected = 10;
  a.rejected_by_reason[static_cast<std::size_t>(
      obs::RejectReason::kNoBandwidth)] = 8;
  a.rejected_by_reason[static_cast<std::size_t>(
      obs::RejectReason::kNoReplicaAlive)] = 2;
  a.redirected = 5;
  a.batched = 3;
  a.mean_imbalance_eq2 = 0.2;
  a.mean_imbalance_cv = 0.1;
  a.mean_imbalance_capacity = 0.05;
  a.peak_imbalance_eq2 = 0.8;
  a.served_per_server = {40, 50};
  a.utilization_per_server = {0.4, 0.6};

  SimResult b = a;
  b.total_requests = 50;
  b.rejected = 4;
  b.rejected_by_reason[static_cast<std::size_t>(
      obs::RejectReason::kNoBandwidth)] = 4;
  b.rejected_by_reason[static_cast<std::size_t>(
      obs::RejectReason::kNoReplicaAlive)] = 0;
  b.mean_imbalance_eq2 = 0.4;
  b.peak_imbalance_eq2 = 0.6;
  b.served_per_server = {20, 26};
  b.utilization_per_server = {0.2, 0.4};

  const SimResult total = aggregate_results({a, b});
  EXPECT_EQ(total.total_requests, 150u);
  EXPECT_EQ(total.rejected, 14u);
  EXPECT_EQ(total.rejected_by_reason[static_cast<std::size_t>(
                obs::RejectReason::kNoBandwidth)],
            12u);
  std::size_t reason_sum = 0;
  for (std::size_t count : total.rejected_by_reason) reason_sum += count;
  EXPECT_EQ(reason_sum, total.rejected);
  EXPECT_EQ(total.redirected, 10u);
  EXPECT_EQ(total.batched, 6u);
  EXPECT_DOUBLE_EQ(total.mean_imbalance_eq2, 0.3);
  EXPECT_DOUBLE_EQ(total.peak_imbalance_eq2, 0.8);
  EXPECT_EQ(total.served_per_server, (std::vector<std::size_t>{60, 76}));
  ASSERT_EQ(total.utilization_per_server.size(), 2u);
  EXPECT_DOUBLE_EQ(total.utilization_per_server[0], 0.3);
  EXPECT_DOUBLE_EQ(total.utilization_per_server[1], 0.5);
}

TEST(AggregateResultsTest, RejectsEmptyAndMismatchedInputs) {
  const std::vector<SimResult> empty;
  EXPECT_THROW(aggregate_results(empty), InvalidArgumentError);
  SimResult a;
  a.utilization_per_server = {0.1};
  SimResult b;
  b.utilization_per_server = {0.1, 0.2};
  const std::vector<SimResult> mismatched = {a, b};
  EXPECT_THROW(aggregate_results(mismatched), InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
