// End-to-end reconciliation of the obs layer with the library's own result
// structs: the counters a run folds into the global registry must agree
// bit-exactly with the AnnealResult / SimResult the same run returns.
#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/core/pipeline.h"
#include "src/core/sa_solver.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/online/controller.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"
#include "src/workload/trace.h"

namespace vodrep {
namespace {

/// Every test runs against a cleared global registry with metrics on, and
/// restores the disabled default so the rest of the binary stays unobserved.
class ObsIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::metrics().clear();
    obs::set_metrics_enabled(true);
  }
  void TearDown() override {
    obs::set_metrics_enabled(false);
    obs::TraceRecorder::global().set_enabled(false);
    obs::TraceRecorder::global().clear();
    obs::metrics().clear();
  }
};

ScalableProblem small_problem() {
  ScalableProblem p;
  p.videos.duration_sec = units::minutes(90);
  p.videos.popularity = zipf_popularity(12, 0.75);
  p.cluster.num_servers = 4;
  p.cluster.bandwidth_bps_per_server = units::gbps(1.0);
  p.cluster.storage_bytes_per_server = units::gigabytes(30.0);
  p.ladder.rates_bps = {units::mbps(1), units::mbps(2), units::mbps(4),
                        units::mbps(8)};
  p.expected_peak_requests = 500.0;
  return p;
}

TEST_F(ObsIntegrationTest, SaCountersReconcileWithAnnealResult) {
  SaSolverOptions options;
  options.anneal.initial_temperature = 1.0;
  options.anneal.moves_per_temperature = 60;
  options.anneal.final_temperature = 1e-3;
  options.anneal.stall_steps = 20;

  const SaSolverResult result = solve_scalable(small_problem(), 2002, options);
  const obs::MetricsSnapshot snap = obs::metrics().snapshot();

  EXPECT_EQ(snap.counters.at("sa.solves"), 1u);
  EXPECT_EQ(snap.counters.at("sa.chains"), 1u);
  EXPECT_EQ(snap.counters.at("sa.moves_proposed"),
            result.anneal.moves_proposed);
  EXPECT_EQ(snap.counters.at("sa.moves_accepted"),
            result.anneal.moves_accepted);
  EXPECT_EQ(snap.counters.at("sa.moves_noop"), result.anneal.moves_noop);
  EXPECT_EQ(snap.counters.at("sa.temperature_steps"),
            result.anneal.temperature_steps);
  EXPECT_LE(snap.counters.at("sa.moves_accepted"),
            snap.counters.at("sa.moves_proposed"));
  // The in-place engine evaluates exactly one delta per proposed move.
  EXPECT_EQ(snap.counters.at("sa.evaluations_delta"),
            result.anneal.moves_proposed);
  EXPECT_GE(snap.counters.at("sa.evaluations_full"), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("sa.best_objective"), result.objective);
  EXPECT_DOUBLE_EQ(snap.gauges.at("sa.final_temperature"),
                   result.anneal.final_temperature);
}

TEST_F(ObsIntegrationTest, SaCountersAccumulateAcrossSolves) {
  SaSolverOptions options;
  options.anneal.initial_temperature = 1.0;
  options.anneal.moves_per_temperature = 20;
  options.anneal.final_temperature = 0.1;
  options.anneal.stall_steps = 0;

  const ScalableProblem problem = small_problem();
  const SaSolverResult first = solve_scalable(problem, 1, options);
  const SaSolverResult second = solve_scalable(problem, 2, options);
  const obs::MetricsSnapshot snap = obs::metrics().snapshot();
  EXPECT_EQ(snap.counters.at("sa.solves"), 2u);
  EXPECT_EQ(snap.counters.at("sa.moves_proposed"),
            first.anneal.moves_proposed + second.anneal.moves_proposed);
}

TEST_F(ObsIntegrationTest, SimCountersReconcileWithSimResult) {
  const std::size_t servers = 4;
  const std::vector<double> popularity = zipf_popularity(24, 0.75);
  const auto replication = make_replication_policy("adams");
  const auto placement = make_placement_policy("slf");
  const Layout layout =
      provision_by_id(popularity, *replication, *placement, servers,
                      /*budget=*/32, /*capacity_per_server=*/8)
          .layout;

  SimConfig config;
  config.num_servers = servers;
  // Tight bandwidth so some requests are rejected and the admitted/rejected
  // split is non-trivial.
  config.bandwidth_bps_per_server = units::mbps(40);
  config.stream_bitrate_bps = units::mbps(4);
  config.video_duration_sec = units::minutes(10);

  TraceSpec spec;
  spec.arrival_rate = 0.5;
  spec.horizon = units::minutes(30);
  spec.popularity = popularity;
  Rng rng(7);
  const RequestTrace trace = generate_trace(rng, spec);

  SimEngine engine(config);
  ReplicatedPolicy policy(layout, config);
  const SimResult result = engine.run(policy, trace);
  const obs::MetricsSnapshot snap = obs::metrics().snapshot();

  EXPECT_EQ(snap.counters.at("sim.runs"), 1u);
  EXPECT_EQ(snap.counters.at("sim.requests"), result.total_requests);
  EXPECT_EQ(snap.counters.at("sim.rejected"), result.rejected);
  EXPECT_EQ(snap.counters.at("sim.admitted"),
            result.total_requests - result.rejected);
  // requests == admitted + rejected, bit-exactly.
  EXPECT_EQ(snap.counters.at("sim.requests"),
            snap.counters.at("sim.admitted") +
                snap.counters.at("sim.rejected"));
  EXPECT_EQ(snap.counters.at("sim.redirected"), result.redirected);
  EXPECT_EQ(snap.counters.at("sim.batched"), result.batched);
  EXPECT_EQ(snap.counters.at("sim.disrupted"), result.disrupted);
  EXPECT_GT(result.rejected, 0u);  // the tight config did bite
  EXPECT_DOUBLE_EQ(snap.gauges.at("sim.mean_imbalance_eq2"),
                   result.mean_imbalance_eq2);
  EXPECT_DOUBLE_EQ(snap.gauges.at("sim.mean_utilization"),
                   result.mean_utilization());
  // Admitted streams outnumber the heap high water only if departures
  // fired; the high water itself is at least one once anything ran.
  EXPECT_GE(snap.gauges.at("sim.heap_high_water"), 1.0);
  // The per-request dispatch histogram saw every request.
  const obs::MetricsSnapshot::HistogramData& dispatch =
      snap.histograms.at("sim.dispatch_us");
  EXPECT_EQ(dispatch.count, result.total_requests);

  // The trace-side counters agree with the event bookkeeping: every
  // departure either fired or was cancelled by a crash (none here).
  EXPECT_EQ(snap.counters.at("sim.events.failure"), 0u);
  EXPECT_EQ(snap.counters.at("sim.events.cancelled"), 0u);
}

TEST_F(ObsIntegrationTest, ControllerCountersReconcileWithAdaptCalls) {
  const std::size_t videos = 16;
  ControllerConfig config;
  config.num_servers = 4;
  config.budget = 20;
  config.capacity_per_server = 5;
  config.replan_threshold = 0.05;
  AdaptiveController controller(config, zipf_popularity(videos, 0.75));

  std::size_t replans = 0;
  std::size_t skips = 0;
  Rng rng(11);
  for (std::size_t epoch = 0; epoch < 6; ++epoch) {
    std::vector<std::size_t> counts(videos, 0);
    for (int i = 0; i < 200; ++i) {
      // Drifting observation stream: later epochs favor later ids.
      ++counts[(rng.uniform_index(videos) + epoch) % videos];
    }
    controller.observe_epoch(counts);
    const AdaptationStep step = controller.adapt();
    if (step.replanned) {
      ++replans;
    } else {
      ++skips;
    }
  }
  const obs::MetricsSnapshot snap = obs::metrics().snapshot();
  EXPECT_EQ(snap.counters.at("online.epochs_observed"), 6u);
  const std::uint64_t counted_replans =
      snap.counters.count("online.replans") != 0
          ? snap.counters.at("online.replans")
          : 0;
  const std::uint64_t counted_skips =
      snap.counters.count("online.replans_skipped") != 0
          ? snap.counters.at("online.replans_skipped")
          : 0;
  EXPECT_EQ(counted_replans, replans);
  EXPECT_EQ(counted_skips, skips);
  EXPECT_EQ(counted_replans + counted_skips, 6u);
}

TEST_F(ObsIntegrationTest, DisabledMetricsFoldNothing) {
  obs::set_metrics_enabled(false);
  SaSolverOptions options;
  options.anneal.initial_temperature = 1.0;
  options.anneal.moves_per_temperature = 20;
  options.anneal.final_temperature = 0.1;
  (void)solve_scalable(small_problem(), 3, options);
  const obs::MetricsSnapshot snap = obs::metrics().snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
}

TEST_F(ObsIntegrationTest, GlobalSnapshotSurfacesTraceHealthCounters) {
  // The metrics export must answer "did the trace itself drop anything":
  // overflow a capacity-2 recorder and check the global snapshot carries
  // the recorder's own counters exactly.
  obs::TraceRecorder& recorder = obs::TraceRecorder::global();
  recorder.set_enabled(true, /*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    recorder.record_complete("span", /*ts_ns=*/0, /*dur_ns=*/1);
  }
  const obs::MetricsSnapshot snap = obs::metrics().snapshot();
  ASSERT_TRUE(snap.counters.contains("trace.events_recorded"));
  EXPECT_EQ(snap.counters.at("trace.events_recorded"),
            recorder.events_recorded());
  EXPECT_EQ(snap.counters.at("trace.events_dropped"),
            recorder.events_dropped());
  EXPECT_EQ(snap.counters.at("trace.buffer_grows"), recorder.buffer_grows());
  EXPECT_EQ(recorder.events_recorded(), 2u);
  EXPECT_EQ(recorder.events_dropped(), 3u);
  EXPECT_EQ(recorder.buffer_grows(), 0u);
}

TEST_F(ObsIntegrationTest, TraceCapturesSolveAndSimSpans) {
  obs::TraceRecorder::global().set_enabled(true, /*capacity=*/1024);
  SaSolverOptions options;
  options.anneal.initial_temperature = 1.0;
  options.anneal.moves_per_temperature = 20;
  options.anneal.final_temperature = 0.1;
  (void)solve_scalable(small_problem(), 4, options);
  bool saw_solve = false;
  bool saw_anneal = false;
  for (const obs::TraceEvent& event :
       obs::TraceRecorder::global().events()) {
    if (std::string_view(event.name) == "sa.solve") saw_solve = true;
    if (std::string_view(event.name) == "anneal.run") saw_anneal = true;
  }
  EXPECT_TRUE(saw_solve);
  EXPECT_TRUE(saw_anneal);
}

}  // namespace
}  // namespace vodrep
