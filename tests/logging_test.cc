#include "src/util/logging.h"

#include <gtest/gtest.h>

#include <sstream>

namespace vodrep {
namespace {

/// RAII fixture: captures the global logger sink and restores defaults.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().set_sink(&captured_);
    Logger::instance().set_level(LogLevel::kDebug);
  }
  void TearDown() override {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(LogLevel::kInfo);
  }

  std::ostringstream captured_;
};

TEST_F(LoggingTest, EmitsTaggedLine) {
  log(LogLevel::kInfo) << "hello " << 42;
  EXPECT_EQ(captured_.str(), "[INFO ] hello 42\n");
}

TEST_F(LoggingTest, LevelsAreTagged) {
  log(LogLevel::kDebug) << "d";
  log(LogLevel::kWarn) << "w";
  log(LogLevel::kError) << "e";
  const std::string out = captured_.str();
  EXPECT_NE(out.find("[DEBUG] d"), std::string::npos);
  EXPECT_NE(out.find("[WARN ] w"), std::string::npos);
  EXPECT_NE(out.find("[ERROR] e"), std::string::npos);
}

TEST_F(LoggingTest, FiltersBelowThreshold) {
  Logger::instance().set_level(LogLevel::kWarn);
  log(LogLevel::kDebug) << "hidden";
  log(LogLevel::kInfo) << "hidden too";
  log(LogLevel::kWarn) << "visible";
  const std::string out = captured_.str();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible"), std::string::npos);
}

TEST_F(LoggingTest, StreamsArbitraryTypes) {
  log(LogLevel::kInfo) << 1.5 << " " << true << " " << 'x';
  EXPECT_NE(captured_.str().find("1.5 1 x"), std::string::npos);
}

TEST_F(LoggingTest, LevelAccessorReflectsSetting) {
  Logger::instance().set_level(LogLevel::kError);
  EXPECT_EQ(Logger::instance().level(), LogLevel::kError);
}

}  // namespace
}  // namespace vodrep
