#include "src/util/logging.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace vodrep {
namespace {

/// RAII fixture: captures the global logger sink and restores defaults.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().set_sink(&captured_);
    Logger::instance().set_level(LogLevel::kDebug);
  }
  void TearDown() override {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(LogLevel::kInfo);
  }

  std::ostringstream captured_;
};

TEST_F(LoggingTest, EmitsTaggedLine) {
  log(LogLevel::kInfo) << "hello " << 42;
  EXPECT_EQ(captured_.str(), "[INFO ] hello 42\n");
}

TEST_F(LoggingTest, LevelsAreTagged) {
  log(LogLevel::kDebug) << "d";
  log(LogLevel::kWarn) << "w";
  log(LogLevel::kError) << "e";
  const std::string out = captured_.str();
  EXPECT_NE(out.find("[DEBUG] d"), std::string::npos);
  EXPECT_NE(out.find("[WARN ] w"), std::string::npos);
  EXPECT_NE(out.find("[ERROR] e"), std::string::npos);
}

TEST_F(LoggingTest, FiltersBelowThreshold) {
  Logger::instance().set_level(LogLevel::kWarn);
  log(LogLevel::kDebug) << "hidden";
  log(LogLevel::kInfo) << "hidden too";
  log(LogLevel::kWarn) << "visible";
  const std::string out = captured_.str();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible"), std::string::npos);
}

TEST_F(LoggingTest, StreamsArbitraryTypes) {
  log(LogLevel::kInfo) << 1.5 << " " << true << " " << 'x';
  EXPECT_NE(captured_.str().find("1.5 1 x"), std::string::npos);
}

TEST_F(LoggingTest, LevelAccessorReflectsSetting) {
  Logger::instance().set_level(LogLevel::kError);
  EXPECT_EQ(Logger::instance().level(), LogLevel::kError);
}

// Regression test for the emit()/set_level data race: the early-drop check
// in emit() reads the level before taking the emission mutex, so the level
// must be atomic.  Run under the tsan preset this test reproduced the race
// before level_ became std::atomic<LogLevel>.
TEST_F(LoggingTest, ConcurrentSetLevelIsRaceFree) {
  constexpr std::size_t kEmitters = 4;
  constexpr std::size_t kEmitsPerThread = 500;
  std::vector<std::thread> emitters;
  emitters.reserve(kEmitters);
  for (std::size_t t = 0; t < kEmitters; ++t) {
    emitters.emplace_back([] {
      for (std::size_t i = 0; i < kEmitsPerThread; ++i) {
        log(LogLevel::kError) << "line";  // kError is never filtered here
      }
    });
  }
  // Toggle the threshold below kError while the emitters run.
  for (std::size_t i = 0; i < 2000; ++i) {
    Logger::instance().set_level(i % 2 == 0 ? LogLevel::kDebug
                                            : LogLevel::kWarn);
  }
  for (std::thread& thread : emitters) thread.join();
  // Every kError emit lands regardless of the toggling threshold: one line,
  // one '\n', none torn or lost.
  const std::string out = captured_.str();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(out.begin(), out.end(), '\n')),
            kEmitters * kEmitsPerThread);
}

// The sink swap itself takes the emission mutex, so concurrent emits land
// whole in exactly one of the two sinks.
TEST_F(LoggingTest, ConcurrentSetSinkLosesNoLines) {
  constexpr std::size_t kEmitters = 4;
  constexpr std::size_t kEmitsPerThread = 500;
  std::ostringstream other;
  std::vector<std::thread> emitters;
  emitters.reserve(kEmitters);
  for (std::size_t t = 0; t < kEmitters; ++t) {
    emitters.emplace_back([] {
      for (std::size_t i = 0; i < kEmitsPerThread; ++i) {
        log(LogLevel::kError) << "line";
      }
    });
  }
  for (std::size_t i = 0; i < 2000; ++i) {
    Logger::instance().set_sink(i % 2 == 0 ? &other : &captured_);
  }
  for (std::thread& thread : emitters) thread.join();
  Logger::instance().set_sink(&captured_);  // TearDown restores defaults
  const std::string a = captured_.str();
  const std::string b = other.str();
  const auto lines = static_cast<std::size_t>(
      std::count(a.begin(), a.end(), '\n') +
      std::count(b.begin(), b.end(), '\n'));
  EXPECT_EQ(lines, kEmitters * kEmitsPerThread);
}

}  // namespace
}  // namespace vodrep
