#include "src/core/round_robin_placement.h"

#include <gtest/gtest.h>

#include "src/core/adams_replication.h"
#include "src/util/error.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

TEST(RoundRobinPlacement, DealsCyclically) {
  ReplicationPlan plan;
  plan.replicas = {2, 1, 2};
  const auto popularity = normalized_popularity({3.0, 2.0, 2.0});
  const RoundRobinPlacement rr;
  const Layout layout = rr.place(plan, popularity, 3, 2);
  EXPECT_EQ(layout.assignment[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(layout.assignment[1], (std::vector<std::size_t>{2}));
  EXPECT_EQ(layout.assignment[2], (std::vector<std::size_t>{0, 1}));
}

TEST(RoundRobinPlacement, LayoutIsAlwaysValid) {
  const AdamsReplication adams;
  const RoundRobinPlacement rr;
  for (double theta : {0.25, 0.75, 1.0}) {
    const auto popularity = zipf_popularity(50, theta);
    const auto plan = adams.replicate(popularity, 8, 80);
    const Layout layout = rr.place(plan, popularity, 8, 10);
    EXPECT_NO_THROW(layout.validate(plan, 8, 10)) << theta;
  }
}

TEST(RoundRobinPlacement, ServerCountsDifferByAtMostOne) {
  const AdamsReplication adams;
  const RoundRobinPlacement rr;
  const auto popularity = zipf_popularity(33, 0.75);
  const auto plan = adams.replicate(popularity, 8, 45);
  const Layout layout = rr.place(plan, popularity, 8, 6);
  const auto counts = layout.replicas_per_server(8);
  const auto [min_it, max_it] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_LE(*max_it - *min_it, 1u);
}

TEST(RoundRobinPlacement, OptimalForEqualWeights) {
  // All weights equal -> perfectly balanced expected loads.
  ReplicationPlan plan;
  plan.replicas = {1, 1, 1, 1};
  const auto popularity = uniform_popularity(4);
  const RoundRobinPlacement rr;
  const Layout layout = rr.place(plan, popularity, 4, 1);
  const auto loads = layout.expected_loads(popularity, 4);
  for (double l : loads) EXPECT_DOUBLE_EQ(l, 0.25);
}

TEST(RoundRobinPlacement, RejectsOversizedPlan) {
  ReplicationPlan plan;
  plan.replicas = {2, 2};
  const RoundRobinPlacement rr;
  EXPECT_THROW((void)rr.place(plan, {0.5, 0.5}, 2, 1), InfeasibleError);
}

TEST(RoundRobinPlacement, RejectsPlanViolatingServerCap) {
  ReplicationPlan plan;
  plan.replicas = {3};
  const RoundRobinPlacement rr;
  EXPECT_THROW((void)rr.place(plan, {1.0}, 2, 4), InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
