#include "src/util/cli.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "src/util/error.h"

namespace vodrep {
namespace {

bool parse(CliFlags& flags, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return flags.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliFlags, DefaultsAreReturnedWithoutParsing) {
  CliFlags flags("t", "test");
  flags.add_int("runs", 20, "runs");
  flags.add_double("theta", 0.75, "skew");
  flags.add_bool("quick", false, "quick mode");
  flags.add_string("mode", "full", "mode");
  EXPECT_EQ(flags.get_int("runs"), 20);
  EXPECT_DOUBLE_EQ(flags.get_double("theta"), 0.75);
  EXPECT_FALSE(flags.get_bool("quick"));
  EXPECT_EQ(flags.get_string("mode"), "full");
}

TEST(CliFlags, ParsesEqualsAndSpaceForms) {
  CliFlags flags("t", "test");
  flags.add_int("runs", 20, "runs");
  flags.add_double("theta", 0.75, "skew");
  EXPECT_TRUE(parse(flags, {"--runs=5", "--theta", "0.25"}));
  EXPECT_EQ(flags.get_int("runs"), 5);
  EXPECT_DOUBLE_EQ(flags.get_double("theta"), 0.25);
}

TEST(CliFlags, BooleanFormsWork) {
  CliFlags flags("t", "test");
  flags.add_bool("quick", false, "q");
  flags.add_bool("verbose", true, "v");
  EXPECT_TRUE(parse(flags, {"--quick", "--no-verbose"}));
  EXPECT_TRUE(flags.get_bool("quick"));
  EXPECT_FALSE(flags.get_bool("verbose"));
}

TEST(CliFlags, ExplicitBoolValues) {
  CliFlags flags("t", "test");
  flags.add_bool("quick", false, "q");
  EXPECT_TRUE(parse(flags, {"--quick=true"}));
  EXPECT_TRUE(flags.get_bool("quick"));
  CliFlags flags2("t", "test");
  flags2.add_bool("quick", true, "q");
  EXPECT_TRUE(parse(flags2, {"--quick=false"}));
  EXPECT_FALSE(flags2.get_bool("quick"));
}

TEST(CliFlags, RejectsUnknownFlag) {
  CliFlags flags("t", "test");
  flags.add_int("runs", 20, "runs");
  EXPECT_THROW(parse(flags, {"--bogus=1"}), InvalidArgumentError);
}

TEST(CliFlags, RejectsMalformedValues) {
  CliFlags flags("t", "test");
  flags.add_int("runs", 20, "runs");
  flags.add_double("theta", 0.75, "skew");
  flags.add_bool("quick", false, "q");
  EXPECT_THROW(parse(flags, {"--runs=abc"}), InvalidArgumentError);
  EXPECT_THROW(parse(flags, {"--theta=xyz"}), InvalidArgumentError);
  EXPECT_THROW(parse(flags, {"--quick=maybe"}), InvalidArgumentError);
}

TEST(CliFlags, MissingValueIsAnError) {
  CliFlags flags("t", "test");
  flags.add_int("runs", 20, "runs");
  EXPECT_THROW(parse(flags, {"--runs"}), InvalidArgumentError);
}

TEST(CliFlags, HelpReturnsFalse) {
  CliFlags flags("t", "test");
  flags.add_int("runs", 20, "runs");
  EXPECT_FALSE(parse(flags, {"--help"}));
}

TEST(CliFlags, PositionalArgumentsAreCollected) {
  CliFlags flags("t", "test");
  flags.add_int("runs", 20, "runs");
  EXPECT_TRUE(parse(flags, {"input.trace", "--runs=3", "out.csv"}));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.trace");
  EXPECT_EQ(flags.positional()[1], "out.csv");
}

TEST(CliFlags, UsageListsFlagsAndDefaults) {
  CliFlags flags("myprog", "does things");
  flags.add_int("runs", 20, "number of runs");
  std::ostringstream os;
  flags.print_usage(os);
  EXPECT_NE(os.str().find("myprog"), std::string::npos);
  EXPECT_NE(os.str().find("--runs"), std::string::npos);
  EXPECT_NE(os.str().find("20"), std::string::npos);
}

TEST(CliFlags, TypeMismatchAccessThrows) {
  CliFlags flags("t", "test");
  flags.add_int("runs", 20, "runs");
  EXPECT_THROW((void)flags.get_double("runs"), InvalidArgumentError);
  EXPECT_THROW((void)flags.get_int("never-declared"), InvalidArgumentError);
}

TEST(CliFlags, NegativeNumbersParse) {
  CliFlags flags("t", "test");
  flags.add_int("offset", 0, "offset");
  flags.add_double("delta", 0.0, "delta");
  EXPECT_TRUE(parse(flags, {"--offset=-5", "--delta=-2.5"}));
  EXPECT_EQ(flags.get_int("offset"), -5);
  EXPECT_DOUBLE_EQ(flags.get_double("delta"), -2.5);
}

}  // namespace
}  // namespace vodrep
