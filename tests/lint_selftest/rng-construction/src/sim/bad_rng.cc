// Lint self-test fixture: deliberately violates `rng-construction`.
// A std:: engine/distribution outside src/util/rng sidesteps the explicitly
// seeded vodrep::Rng — std::uniform_real_distribution's output sequence is
// not specified identically across standard libraries.
#include <random>

namespace vodrep {

double draw_load_factor() {
  std::mt19937_64 engine(42);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine);
}

}  // namespace vodrep
