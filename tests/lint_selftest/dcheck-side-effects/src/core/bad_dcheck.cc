// Lint self-test fixture: deliberately violates `dcheck-side-effects`.
// The increment inside VODREP_DCHECK_LT only happens in builds where
// contracts are armed, so release and debug binaries disagree on `cursor`.
#include <cstddef>

#define VODREP_DCHECK_LT(a, b) static_cast<void>((a) < (b))

namespace vodrep {

std::size_t advance(std::size_t cursor, std::size_t limit) {
  VODREP_DCHECK_LT(cursor++, limit);
  return cursor;
}

}  // namespace vodrep
