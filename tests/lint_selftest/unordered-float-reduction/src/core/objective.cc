// Lint self-test fixture: deliberately violates `unordered-float-reduction`.
// Summing doubles over an unordered_set in Eq. 1-3 objective code makes the
// total depend on the hash table's unspecified iteration order: float
// addition is not associative, so the objective drifts in the last bits.
#include <unordered_set>

namespace vodrep {

double summed_bitrate(const std::unordered_set<int>& bitrate_milli) {
  double total_bps = 0.0;
  for (const int rate : bitrate_milli) {
    total_bps += static_cast<double>(rate) * 1000.0;
  }
  return total_bps;
}

}  // namespace vodrep
