// Lint self-test fixture: deliberately violates `raw-clock`.
// A direct std::chrono read and a clock_gettime call inside src/sim
// sidestep the obs clock shim (src/obs/clock.h), so the profiler cannot
// attribute the time and the shared epoch guarantee is lost.
#include <chrono>
#include <ctime>

namespace vodrep {

long long stamp_event_directly() {
  const auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count();
}

long long stamp_event_with_syscall() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1'000'000'000LL + ts.tv_nsec;
}

}  // namespace vodrep
