// Lint self-test fixture: deliberately violates `unordered-iteration`.
// An unordered container in a deterministic path (src/core) is exactly the
// hazard the rule exists for — iteration order differs across libstdc++ and
// libc++, so any range-for over it breaks bit-reproducibility.
#include <cstddef>
#include <unordered_map>

namespace vodrep {

std::size_t count_replicas(const std::unordered_map<int, int>& replicas) {
  std::size_t total = 0;
  for (const auto& [video, count] : replicas) {
    total += static_cast<std::size_t>(count);
  }
  return total;
}

}  // namespace vodrep
