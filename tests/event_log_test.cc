// EventLog: the bounded per-request record buffer.  The contract under
// test: capacity is reserved up front and never exceeded, overflow drops
// and counts instead of allocating, seen == kept + dropped always, the
// epoch time offset shifts stored times (global timeline), and the JSON
// export carries the drop accounting alongside the kept records.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>

#include "src/obs/event_log.h"
#include "src/util/error.h"

namespace vodrep::obs {
namespace {

RequestRecord make_record(double t, std::uint32_t video, std::int32_t server,
                          RequestOutcome outcome,
                          RejectReason reason = RejectReason::kNone) {
  RequestRecord record;
  record.arrival_time = t;
  record.video = video;
  record.server = server;
  record.outcome = outcome;
  record.reason = reason;
  return record;
}

TEST(EventLogTest, RejectsZeroCapacity) {
  EXPECT_THROW(EventLog(0), InvalidArgumentError);
}

TEST(EventLogTest, KeepsUpToCapacityThenDropsAndCounts) {
  EventLog log(3);
  for (std::size_t i = 0; i < 5; ++i) {
    log.record(make_record(static_cast<double>(i), 7, 1,
                           RequestOutcome::kServed));
  }
  EXPECT_EQ(log.capacity(), 3u);
  EXPECT_EQ(log.seen(), 5u);
  EXPECT_EQ(log.dropped(), 2u);
  ASSERT_EQ(log.records().size(), 3u);
  EXPECT_EQ(log.records().size() + log.dropped(), log.seen());
  // The kept records are the first `capacity` offered, in order.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(log.records()[i].arrival_time, static_cast<double>(i));
  }
}

TEST(EventLogTest, RecordsCarryOutcomeAndReason) {
  EventLog log(4);
  log.record(make_record(1.0, 3, 0, RequestOutcome::kServed));
  log.record(make_record(2.0, 4, 2, RequestOutcome::kRedirected));
  log.record(make_record(3.0, 5, -1, RequestOutcome::kRejected,
                         RejectReason::kNoBandwidth));
  ASSERT_EQ(log.records().size(), 3u);
  EXPECT_EQ(log.records()[1].outcome, RequestOutcome::kRedirected);
  EXPECT_EQ(log.records()[1].server, 2);
  EXPECT_EQ(log.records()[2].outcome, RequestOutcome::kRejected);
  EXPECT_EQ(log.records()[2].reason, RejectReason::kNoBandwidth);
  EXPECT_EQ(log.records()[2].server, -1);
}

TEST(EventLogTest, TimeOffsetShiftsStoredTimes) {
  EventLog log(4);
  log.record(make_record(5.0, 0, 0, RequestOutcome::kServed));
  log.set_time_offset(100.0);
  EXPECT_DOUBLE_EQ(log.time_offset(), 100.0);
  log.record(make_record(5.0, 0, 0, RequestOutcome::kServed));
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_DOUBLE_EQ(log.records()[0].arrival_time, 5.0);
  EXPECT_DOUBLE_EQ(log.records()[1].arrival_time, 105.0);
}

TEST(EventLogTest, ClearResetsCountersAndOffset) {
  EventLog log(2);
  log.set_time_offset(50.0);
  for (int i = 0; i < 4; ++i) {
    log.record(make_record(1.0, 0, 0, RequestOutcome::kServed));
  }
  log.clear();
  EXPECT_EQ(log.seen(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_TRUE(log.records().empty());
  EXPECT_DOUBLE_EQ(log.time_offset(), 0.0);
  EXPECT_EQ(log.capacity(), 2u);
}

TEST(EventLogTest, JsonExportCarriesDropAccountingAndNames) {
  EventLog log(2);
  log.record(make_record(1.5, 9, 3, RequestOutcome::kBatched));
  log.record(make_record(2.5, 10, -1, RequestOutcome::kRejected,
                         RejectReason::kStripeUnavailable));
  log.record(make_record(3.5, 11, 0, RequestOutcome::kServed));  // dropped
  const JsonValue json = log.to_json();
  EXPECT_EQ(json.at("capacity").as_uint(), 2u);
  EXPECT_EQ(json.at("seen").as_uint(), 3u);
  EXPECT_EQ(json.at("dropped").as_uint(), 1u);
  ASSERT_EQ(json.at("records").size(), 2u);
  const JsonValue& first = json.at("records").items()[0];
  EXPECT_DOUBLE_EQ(first.at("t").as_number(), 1.5);
  EXPECT_EQ(first.at("video").as_uint(), 9u);
  EXPECT_EQ(first.at("server").as_int(), 3);
  EXPECT_EQ(first.at("outcome").as_string(), "batched");
  EXPECT_EQ(first.at("reason").as_string(), "none");
  const JsonValue& second = json.at("records").items()[1];
  EXPECT_EQ(second.at("outcome").as_string(), "rejected");
  EXPECT_EQ(second.at("reason").as_string(), "stripe_unavailable");
  EXPECT_EQ(second.at("server").as_int(), -1);
}

TEST(EventLogTest, ReasonAndOutcomeNamesAreStable) {
  EXPECT_EQ(reject_reason_name(RejectReason::kNone), "none");
  EXPECT_EQ(reject_reason_name(RejectReason::kNoBandwidth), "no_bandwidth");
  EXPECT_EQ(reject_reason_name(RejectReason::kNoReplicaAlive),
            "no_replica_alive");
  EXPECT_EQ(reject_reason_name(RejectReason::kStripeUnavailable),
            "stripe_unavailable");
  EXPECT_EQ(request_outcome_name(RequestOutcome::kServed), "served");
  EXPECT_EQ(request_outcome_name(RequestOutcome::kRejected), "rejected");
}

}  // namespace
}  // namespace vodrep::obs
