#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/util/error.h"
#include "src/util/units.h"

namespace vodrep {
namespace {

constexpr double kRate = units::mbps(4);

SimConfig basic_config(std::size_t servers = 2, double capacity = 2 * kRate,
                       double duration = 100.0) {
  SimConfig config;
  config.num_servers = servers;
  config.bandwidth_bps_per_server = capacity;
  config.stream_bitrate_bps = kRate;
  config.video_duration_sec = duration;
  return config;
}

RequestTrace trace_of(std::vector<Request> requests, double horizon) {
  RequestTrace trace;
  trace.requests = std::move(requests);
  trace.horizon = horizon;
  return trace;
}

TEST(Simulator, EmptyTraceYieldsNoActivity) {
  Layout layout;
  layout.assignment = {{0}};
  const SimResult result =
      simulate(layout, basic_config(), trace_of({}, 50.0));
  EXPECT_EQ(result.total_requests, 0u);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_DOUBLE_EQ(result.rejection_rate(), 0.0);
  EXPECT_DOUBLE_EQ(result.mean_utilization(), 0.0);
}

TEST(Simulator, AdmitsWithinCapacity) {
  Layout layout;
  layout.assignment = {{0}};
  // Two streams on a 2-stream server: both admitted.
  const SimResult result = simulate(
      layout, basic_config(1),
      trace_of({Request{1.0, 0}, Request{2.0, 0}}, 50.0));
  EXPECT_EQ(result.total_requests, 2u);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_EQ(result.served_per_server[0], 2u);
}

TEST(Simulator, RejectsBeyondCapacity) {
  Layout layout;
  layout.assignment = {{0}};
  // Three overlapping streams on a 2-stream server: the third is rejected.
  const SimResult result = simulate(
      layout, basic_config(1),
      trace_of({Request{1.0, 0}, Request{2.0, 0}, Request{3.0, 0}}, 50.0));
  EXPECT_EQ(result.rejected, 1u);
  EXPECT_NEAR(result.rejection_rate(), 1.0 / 3.0, 1e-12);
}

TEST(Simulator, DeparturesFreeCapacity) {
  Layout layout;
  layout.assignment = {{0}};
  // Duration 10: the first two streams end at 11/12, so the stream at t=20
  // is admitted again.
  SimConfig config = basic_config(1, 2 * kRate, 10.0);
  const SimResult result = simulate(
      layout, config,
      trace_of({Request{1.0, 0}, Request{2.0, 0}, Request{20.0, 0}}, 50.0));
  EXPECT_EQ(result.rejected, 0u);
}

TEST(Simulator, RoundRobinSplitsLoadAcrossReplicas) {
  Layout layout;
  layout.assignment = {{0, 1}};
  std::vector<Request> requests;
  for (int i = 0; i < 10; ++i) {
    requests.push_back(Request{static_cast<double>(i), 0});
  }
  SimConfig config = basic_config(2, 20 * kRate, 1000.0);
  const SimResult result = simulate(layout, config, trace_of(requests, 100.0));
  EXPECT_EQ(result.served_per_server[0], 5u);
  EXPECT_EQ(result.served_per_server[1], 5u);
}

TEST(Simulator, ImbalanceIsZeroForSymmetricLoad) {
  Layout layout;
  layout.assignment = {{0, 1}};
  // Pairs of back-to-back requests keep the two servers in lockstep except
  // for the instant between the two arrivals of a pair.
  std::vector<Request> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back(Request{static_cast<double>(i), 0});
    requests.push_back(Request{static_cast<double>(i), 0});
  }
  SimConfig config = basic_config(2, 100 * kRate, 1000.0);
  const SimResult result = simulate(layout, config, trace_of(requests, 50.0));
  EXPECT_NEAR(result.mean_imbalance_eq2, 0.0, 1e-9);
}

TEST(Simulator, ImbalanceDetectsSkewedLayout) {
  // All load on server 0 of 2: loads {x, 0} -> Eq.2 L = (x - x/2)/(x/2) = 1.
  Layout layout;
  layout.assignment = {{0}};
  SimConfig config = basic_config(2, 100 * kRate, 1000.0);
  const SimResult result = simulate(
      layout, config, trace_of({Request{0.0, 0}, Request{1.0, 0}}, 50.0));
  EXPECT_NEAR(result.mean_imbalance_eq2, 1.0, 1e-6);
  EXPECT_NEAR(result.peak_imbalance_eq2, 1.0, 1e-9);
}

TEST(Simulator, CapacityNormalizedImbalanceMatchesHandComputation) {
  // All load on server 0 of 2, capacity 100 streams: two streams held for
  // the whole window give loads {2r, 0}; (max - mean)/B = r / (100 r) after
  // both arrive.  Segment [0,1) has one stream: 0.5r / 100r.
  Layout layout;
  layout.assignment = {{0}};
  SimConfig config = basic_config(2, 100 * kRate, 1000.0);
  const SimResult result = simulate(
      layout, config, trace_of({Request{0.0, 0}, Request{1.0, 0}}, 41.0));
  // 1 unit at 0.5/100 + 40 units at 1/100, over 41 units.
  EXPECT_NEAR(result.mean_imbalance_capacity, (0.005 + 40 * 0.01) / 41.0,
              1e-9);
}

TEST(Simulator, CapacityNormalizedImbalanceGrowsWithLoadUnlikeEq2) {
  // Eq. 2 stays at 1.0 for this skewed layout regardless of volume, while
  // the capacity-normalized excess scales with the offered load — the
  // distinction behind Figure 6's rise-peak-fall shape.
  Layout layout;
  layout.assignment = {{0}};
  SimConfig config = basic_config(2, 100 * kRate, 1000.0);
  std::vector<Request> light{Request{0.0, 0}};
  std::vector<Request> heavy;
  for (int i = 0; i < 20; ++i) heavy.push_back(Request{0.0, 0});
  const SimResult r_light = simulate(layout, config, trace_of(light, 50.0));
  const SimResult r_heavy = simulate(layout, config, trace_of(heavy, 50.0));
  EXPECT_NEAR(r_light.mean_imbalance_eq2, r_heavy.mean_imbalance_eq2, 1e-9);
  EXPECT_GT(r_heavy.mean_imbalance_capacity,
            5.0 * r_light.mean_imbalance_capacity);
}

TEST(Simulator, UtilizationMatchesHandComputation) {
  Layout layout;
  layout.assignment = {{0}};
  // One stream of duration 10 on a 2-stream server over a 40-unit window:
  // busy integral = rate * 10, capacity integral = 2 * rate * 40 -> 0.125.
  SimConfig config = basic_config(1, 2 * kRate, 10.0);
  const SimResult result =
      simulate(layout, config, trace_of({Request{0.0, 0}}, 40.0));
  EXPECT_NEAR(result.utilization_per_server[0], 0.125, 1e-9);
}

TEST(Simulator, ConservationServedPlusRejectedEqualsTotal) {
  Layout layout;
  layout.assignment = {{0}, {1}, {0, 1}};
  std::vector<Request> requests;
  for (int i = 0; i < 200; ++i) {
    requests.push_back(
        Request{static_cast<double>(i) * 0.4, static_cast<std::size_t>(i % 3)});
  }
  SimConfig config = basic_config(2, 5 * kRate, 30.0);
  const SimResult result = simulate(layout, config, trace_of(requests, 90.0));
  const std::size_t served = std::accumulate(
      result.served_per_server.begin(), result.served_per_server.end(),
      std::size_t{0});
  EXPECT_EQ(served + result.rejected, result.total_requests);
}

TEST(Simulator, RedirectionReducesRejections) {
  // Video 0 has replicas on both servers; static RR sends odd arrivals to a
  // server kept busy by video 1, so redirection strictly helps.
  Layout layout;
  layout.assignment = {{0, 1}, {1}};
  std::vector<Request> requests;
  for (int i = 0; i < 4; ++i) {
    requests.push_back(Request{0.1 * i, 1});  // fill server 1 with video 1
  }
  for (int i = 0; i < 6; ++i) {
    requests.push_back(Request{0.5 + i, 0});
  }
  SimConfig strict = basic_config(2, 4 * kRate, 1000.0);
  SimConfig redirect = strict;
  redirect.redirect = RedirectMode::kOtherHolders;
  redirect.backbone_bps = units::gbps(1);
  const SimResult r_strict =
      simulate(layout, strict, trace_of(requests, 50.0));
  const SimResult r_redirect =
      simulate(layout, redirect, trace_of(requests, 50.0));
  EXPECT_GT(r_strict.rejected, r_redirect.rejected);
  EXPECT_GT(r_redirect.redirected, 0u);
}

TEST(Simulator, AbandonedStreamsReleaseBandwidthEarly) {
  Layout layout;
  layout.assignment = {{0}};
  // Capacity one stream; duration 100.  The first viewer abandons at 10% of
  // the video, so a request at t=15 is admitted; without abandonment it
  // would be rejected.
  SimConfig config = basic_config(1, kRate, 100.0);
  RequestTrace trace;
  trace.horizon = 50.0;
  trace.requests = {Request{0.0, 0, 0.1}, Request{15.0, 0, 1.0}};
  const SimResult result = simulate(layout, config, trace);
  EXPECT_EQ(result.rejected, 0u);

  RequestTrace full = trace;
  full.requests[0].watch_fraction = 1.0;
  const SimResult result_full = simulate(layout, config, full);
  EXPECT_EQ(result_full.rejected, 1u);
}

TEST(Simulator, FailureDisruptsOnlyLocalStreams) {
  Layout layout;
  layout.assignment = {{0}, {1}};
  SimConfig config = basic_config(2, 100 * kRate, 1000.0);
  config.failures = {ServerFailure{5.0, 0}};
  const SimResult result = simulate(
      layout, config,
      trace_of({Request{0.0, 0}, Request{1.0, 1}, Request{2.0, 0}}, 50.0));
  EXPECT_EQ(result.disrupted, 2u);  // the two streams on server 0
  EXPECT_EQ(result.rejected, 0u);
}

TEST(Simulator, FailedServerRejectsItsShareOfRequests) {
  // Single-replica video on the failed server: every later request for it
  // is rejected; the co-hosted video with a surviving replica is fine.
  Layout layout;
  layout.assignment = {{0}, {0, 1}};
  SimConfig config = basic_config(2, 100 * kRate, 1000.0);
  config.failures = {ServerFailure{1.0, 0}};
  std::vector<Request> requests;
  for (int i = 0; i < 4; ++i) requests.push_back(Request{2.0 + i, 0});
  for (int i = 0; i < 4; ++i) requests.push_back(Request{6.0 + i, 1});
  const SimResult result = simulate(layout, config, trace_of(requests, 50.0));
  EXPECT_EQ(result.rejected, 4u + 2u);  // all of video 0, RR half of video 1
}

TEST(Simulator, RedirectionRecoversFailedServerTraffic) {
  Layout layout;
  layout.assignment = {{0, 1}};
  SimConfig config = basic_config(2, 100 * kRate, 1000.0);
  config.redirect = RedirectMode::kOtherHolders;
  config.failures = {ServerFailure{1.0, 0}};
  std::vector<Request> requests;
  for (int i = 0; i < 6; ++i) requests.push_back(Request{2.0 + i, 0});
  const SimResult result = simulate(layout, config, trace_of(requests, 50.0));
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_EQ(result.redirected, 3u);  // the RR picks of the dead server
}

TEST(Simulator, ProxyRequiresALivingHolder) {
  Layout layout;
  layout.assignment = {{0}};
  SimConfig config = basic_config(3, 100 * kRate, 1000.0);
  config.redirect = RedirectMode::kBackboneProxy;
  config.backbone_bps = units::gbps(10);
  config.failures = {ServerFailure{1.0, 0}};
  const SimResult result =
      simulate(layout, config, trace_of({Request{2.0, 0}}, 50.0));
  // Servers 1 and 2 have idle links, but the only copy of the data died
  // with server 0.
  EXPECT_EQ(result.rejected, 1u);
}

TEST(Simulator, UnsortedFailuresRejected) {
  Layout layout;
  layout.assignment = {{0}};
  SimConfig config = basic_config(2);
  config.failures = {ServerFailure{5.0, 0}, ServerFailure{1.0, 1}};
  EXPECT_THROW((void)simulate(layout, config, trace_of({}, 50.0)),
               InvalidArgumentError);
}

TEST(Simulator, RejectsMalformedTrace) {
  Layout layout;
  layout.assignment = {{0}};
  RequestTrace bad = trace_of({Request{5.0, 0}, Request{1.0, 0}}, 50.0);
  EXPECT_THROW((void)simulate(layout, basic_config(1), bad),
               InvalidArgumentError);
}

TEST(Simulator, ConfigValidation) {
  SimConfig config;  // all zero
  EXPECT_THROW(config.validate(), InvalidArgumentError);
  config = basic_config();
  EXPECT_NO_THROW(config.validate());
}

}  // namespace
}  // namespace vodrep
