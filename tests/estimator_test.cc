#include "src/online/estimator.h"

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

TEST(PopularityEstimator, UniformWhenNothingObserved) {
  const PopularityEstimator estimator(4);
  const auto estimate = estimator.estimate();
  for (double p : estimate) EXPECT_DOUBLE_EQ(p, 0.25);
  EXPECT_DOUBLE_EQ(estimator.observed_weight(), 0.0);
}

TEST(PopularityEstimator, TracksObservedFrequencies) {
  PopularityEstimator estimator(3, 0.5, /*smoothing=*/0.0);
  estimator.observe(0, 60);
  estimator.observe(1, 30);
  estimator.observe(2, 10);
  const auto estimate = estimator.estimate();
  EXPECT_NEAR(estimate[0], 0.6, 1e-12);
  EXPECT_NEAR(estimate[1], 0.3, 1e-12);
  EXPECT_NEAR(estimate[2], 0.1, 1e-12);
}

TEST(PopularityEstimator, SmoothingKeepsUnseenVideosPositive) {
  PopularityEstimator estimator(3, 0.5, 1.0);
  estimator.observe(0, 1000);
  const auto estimate = estimator.estimate();
  EXPECT_GT(estimate[1], 0.0);
  EXPECT_GT(estimate[2], 0.0);
  EXPECT_GT(estimate[0], estimate[1]);
}

TEST(PopularityEstimator, DecayForgetsOldEpochs) {
  PopularityEstimator estimator(2, 0.25, 0.0);
  estimator.observe(0, 100);  // epoch 1: all video 0
  estimator.end_epoch();
  estimator.observe(1, 100);  // epoch 2: all video 1
  estimator.end_epoch();
  const auto estimate = estimator.estimate();
  // Video 1's fresh 100 outweighs video 0's decayed 25.
  EXPECT_GT(estimate[1], estimate[0]);
  EXPECT_NEAR(estimate[1], 100.0 / 125.0, 1e-12);
}

TEST(PopularityEstimator, DecayOneNeverForgets) {
  PopularityEstimator estimator(2, 1.0, 0.0);
  estimator.observe(0, 50);
  estimator.end_epoch();
  estimator.observe(1, 50);
  estimator.end_epoch();
  const auto estimate = estimator.estimate();
  EXPECT_NEAR(estimate[0], 0.5, 1e-12);
}

TEST(PopularityEstimator, DecayZeroOnlySeesTheLiveWindow) {
  PopularityEstimator estimator(2, 0.0, 0.0);
  estimator.observe(0, 1000);
  estimator.end_epoch();   // history *= 0, then += 1000 -> history holds it
  estimator.end_epoch();   // history *= 0 -> gone
  estimator.observe(1, 1);
  const auto estimate = estimator.estimate();
  EXPECT_NEAR(estimate[1], 1.0, 1e-12);
}

TEST(PopularityEstimator, EstimateIsAValidDistribution) {
  PopularityEstimator estimator(10, 0.5, 1.0);
  estimator.observe(3, 17);
  estimator.observe(7, 5);
  const auto estimate = estimator.estimate();
  double sum = 0.0;
  for (double p : estimate) {
    EXPECT_GT(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(PopularityEstimator, RejectsBadArguments) {
  EXPECT_THROW(PopularityEstimator(0), InvalidArgumentError);
  EXPECT_THROW(PopularityEstimator(3, 1.5), InvalidArgumentError);
  EXPECT_THROW(PopularityEstimator(3, 0.5, -1.0), InvalidArgumentError);
  PopularityEstimator estimator(3);
  EXPECT_THROW(estimator.observe(5), InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
