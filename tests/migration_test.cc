#include "src/online/migration.h"

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/util/units.h"

namespace vodrep {
namespace {

Layout layout_of(std::vector<std::vector<std::size_t>> assignment) {
  Layout layout;
  layout.assignment = std::move(assignment);
  return layout;
}

TEST(PlanMigration, IdenticalLayoutsNeedNothing) {
  const Layout layout = layout_of({{0, 1}, {2}});
  const MigrationPlan plan = plan_migration(layout, layout);
  EXPECT_TRUE(plan.copies.empty());
  EXPECT_EQ(plan.deletions, 0u);
}

TEST(PlanMigration, DetectsAddedReplicas) {
  const Layout from = layout_of({{0}, {2}});
  const Layout to = layout_of({{0, 1}, {2}});
  const MigrationPlan plan = plan_migration(from, to);
  ASSERT_EQ(plan.copies.size(), 1u);
  EXPECT_EQ(plan.copies[0].video, 0u);
  EXPECT_EQ(plan.copies[0].to_server, 1u);
  EXPECT_EQ(plan.deletions, 0u);
}

TEST(PlanMigration, DetectsRemovedReplicas) {
  const Layout from = layout_of({{0, 1}, {2}});
  const Layout to = layout_of({{0}, {2}});
  const MigrationPlan plan = plan_migration(from, to);
  EXPECT_TRUE(plan.copies.empty());
  EXPECT_EQ(plan.deletions, 1u);
}

TEST(PlanMigration, MoveIsOneCopyPlusOneDeletion) {
  const Layout from = layout_of({{0}});
  const Layout to = layout_of({{3}});
  const MigrationPlan plan = plan_migration(from, to);
  ASSERT_EQ(plan.copies.size(), 1u);
  EXPECT_EQ(plan.copies[0].to_server, 3u);
  EXPECT_EQ(plan.deletions, 1u);
}

TEST(PlanMigration, OrderWithinAVideoDoesNotMatter) {
  const Layout from = layout_of({{0, 1, 2}});
  const Layout to = layout_of({{2, 0, 1}});
  const MigrationPlan plan = plan_migration(from, to);
  EXPECT_TRUE(plan.copies.empty());
  EXPECT_EQ(plan.deletions, 0u);
}

TEST(PlanMigration, RejectsMismatchedVideoSets) {
  const Layout from = layout_of({{0}});
  const Layout to = layout_of({{0}, {1}});
  EXPECT_THROW((void)plan_migration(from, to), InvalidArgumentError);
}

TEST(MigrationPlan, BytesAndCopyTime) {
  MigrationPlan plan;
  plan.copies = {ReplicaCopy{0, 1}, ReplicaCopy{2, 3}};
  // Two copies of a 2.7 GB replica.
  const double replica = units::gigabytes(2.7);
  EXPECT_NEAR(units::to_gigabytes(plan.bytes_moved(replica)), 5.4, 1e-9);
  // Over a 1.8 Gb/s backbone: 5.4e9 * 8 / 1.8e9 = 24 seconds.
  EXPECT_NEAR(plan.copy_time_sec(replica, units::gbps(1.8)), 24.0, 1e-9);
  EXPECT_THROW((void)plan.copy_time_sec(replica, 0.0), InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
