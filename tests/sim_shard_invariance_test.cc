// Differential tier for the sharded simulation runner
// (src/sim/sharded_engine.h): across many random worlds — random layouts,
// heterogeneous fleets, failure injection, redirects, batching, and the
// prefix-cache tier — the sharded replay at every shard count must agree
// with the monolithic SimEngine: counters and per-server tallies bit-exact
// (EXPECT_EQ), float metrics within 1e-7 (the Eq. 2/3 integrals are rebuilt
// from per-shard segment streams, so only cross-server float associativity
// differs), the per-reason rejection breakdown always summing exactly to
// the rejection total, and merged timelines/event logs matching the
// monolithic ones sample for sample and record for record.
//
// The small ShardedEngineThreads suite at the bottom reruns a handful of
// worlds on a real ThreadPool; it is the surface the tsan preset exercises
// (shard engines share no mutable state, and the epoch barrier is the only
// synchronization point).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "src/core/layout.h"
#include "src/core/striping.h"
#include "src/obs/event_log.h"
#include "src/obs/timeseries.h"
#include "src/sim/engine.h"
#include "src/sim/hybrid_policy.h"
#include "src/sim/prefix_cache_policy.h"
#include "src/sim/replicated_policy.h"
#include "src/sim/shard_plan.h"
#include "src/sim/sharded_engine.h"
#include "src/sim/striped_policy.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"
#include "src/workload/trace.h"

namespace vodrep {
namespace {

constexpr double kFloatTol = 1e-7;
const std::array<std::size_t, 4> kShardCounts = {1, 2, 4, 8};

// ---------------------------------------------------------------------------
// Random-world generation.
// ---------------------------------------------------------------------------

struct World {
  std::size_t num_servers = 0;
  std::size_t num_videos = 0;
  SimConfig config;
  RequestTrace trace;
};

/// Random replica layout: each video on 1..max_replicas distinct servers.
Layout random_layout(Rng& rng, std::size_t num_videos,
                     std::size_t num_servers, std::size_t max_replicas) {
  Layout layout;
  layout.assignment.resize(num_videos);
  std::vector<std::size_t> servers(num_servers);
  std::iota(servers.begin(), servers.end(), 0);
  for (std::size_t v = 0; v < num_videos; ++v) {
    const std::size_t r =
        1 + rng.uniform_index(std::min(max_replicas, num_servers));
    rng.shuffle(servers);
    layout.assignment[v].assign(servers.begin(),
                                servers.begin() + static_cast<long>(r));
  }
  return layout;
}

/// Aligned striping with stripe_width | num_servers: the servers split into
/// num_servers / stripe_width disjoint groups, so the shard plan finds real
/// parallelism (the staggered make_striped_layout wrap is one component).
StripedLayout aligned_striped_layout(std::size_t num_videos,
                                     std::size_t num_servers,
                                     std::size_t stripe_width) {
  StripedLayout layout;
  layout.groups.resize(num_videos);
  const std::size_t num_groups = num_servers / stripe_width;
  for (std::size_t v = 0; v < num_videos; ++v) {
    const std::size_t g = v % num_groups;
    for (std::size_t k = 0; k < stripe_width; ++k) {
      layout.groups[v].push_back(g * stripe_width + k);
    }
  }
  return layout;
}

/// Aligned hybrid layout: a video's group_replicas stripe groups live in one
/// disjoint server block, so distinct blocks shard independently.
HybridLayout aligned_hybrid_layout(std::size_t num_videos,
                                   std::size_t num_servers,
                                   std::size_t stripe_width,
                                   std::size_t group_replicas) {
  HybridLayout layout;
  layout.groups.resize(num_videos);
  const std::size_t block = stripe_width * group_replicas;
  const std::size_t num_blocks = num_servers / block;
  for (std::size_t v = 0; v < num_videos; ++v) {
    const std::size_t b = v % num_blocks;
    for (std::size_t r = 0; r < group_replicas; ++r) {
      std::vector<std::size_t> group;
      for (std::size_t k = 0; k < stripe_width; ++k) {
        group.push_back(b * block + r * stripe_width + k);
      }
      layout.groups[v].push_back(std::move(group));
    }
  }
  return layout;
}

/// Random world: sizes, a (possibly heterogeneous) fleet, a failure
/// schedule about half the time, and a Poisson/Zipf trace dense enough to
/// drive servers into rejection territory.
World random_world(Rng& rng, bool allow_extensions) {
  World world;
  world.num_servers = 4 + rng.uniform_index(13);   // 4..16
  world.num_videos = 8 + rng.uniform_index(33);    // 8..40
  SimConfig& config = world.config;
  config.num_servers = world.num_servers;
  config.bandwidth_bps_per_server = units::mbps(100.0);
  if (rng.bernoulli(0.3)) {
    config.per_server_bandwidth_bps.resize(world.num_servers);
    for (double& b : config.per_server_bandwidth_bps) {
      b = units::mbps(rng.uniform(50.0, 200.0));
    }
  }
  config.stream_bitrate_bps = units::mbps(4.0);
  config.video_duration_sec = rng.uniform(40.0, 120.0);
  if (allow_extensions && rng.bernoulli(0.35)) {
    config.redirect = RedirectMode::kOtherHolders;
  }
  if (allow_extensions && rng.bernoulli(0.3)) {
    config.batching_window_sec = rng.uniform(0.5, 10.0);
    config.batching_mode = rng.bernoulli(0.5) ? BatchingMode::kPiggyback
                                              : BatchingMode::kPatching;
  }
  const double horizon = rng.uniform(150.0, 300.0);
  if (rng.bernoulli(0.5)) {
    const std::size_t failures = 1 + rng.uniform_index(3);
    std::vector<double> times(failures);
    for (double& t : times) t = rng.uniform(0.0, horizon);
    std::sort(times.begin(), times.end());
    for (double t : times) {
      config.failures.push_back(
          {t, rng.uniform_index(world.num_servers)});
    }
  }

  TraceSpec spec;
  spec.arrival_rate = rng.uniform(2.0, 8.0);
  spec.horizon = horizon;
  spec.popularity = zipf_popularity(world.num_videos, 0.729);
  if (rng.bernoulli(0.4)) spec.abandonment.completion_probability = 0.7;
  world.trace = generate_trace(rng, spec);
  return world;
}

// ---------------------------------------------------------------------------
// Result comparison.
// ---------------------------------------------------------------------------

void expect_equivalent(const SimResult& mono, const SimResult& sharded) {
  EXPECT_EQ(mono.total_requests, sharded.total_requests);
  EXPECT_EQ(mono.rejected, sharded.rejected);
  std::size_t reason_sum = 0;
  for (std::size_t r = 0; r < obs::kNumRejectReasons; ++r) {
    EXPECT_EQ(mono.rejected_by_reason[r], sharded.rejected_by_reason[r])
        << "reason " << r;
    reason_sum += sharded.rejected_by_reason[r];
  }
  EXPECT_EQ(reason_sum, sharded.rejected);
  EXPECT_EQ(mono.redirected, sharded.redirected);
  EXPECT_EQ(mono.proxied, sharded.proxied);
  EXPECT_EQ(mono.batched, sharded.batched);
  EXPECT_EQ(mono.disrupted, sharded.disrupted);
  EXPECT_EQ(mono.cache_hits, sharded.cache_hits);
  EXPECT_EQ(mono.cache_misses, sharded.cache_misses);
  EXPECT_EQ(mono.cache_evictions, sharded.cache_evictions);
  EXPECT_EQ(mono.served_per_server, sharded.served_per_server);
  ASSERT_EQ(mono.utilization_per_server.size(),
            sharded.utilization_per_server.size());
  for (std::size_t s = 0; s < mono.utilization_per_server.size(); ++s) {
    // Per-server: every busy-bandwidth mutation of a server happens in its
    // owning shard in monolithic order, so the integral is bit-exact.
    EXPECT_EQ(mono.utilization_per_server[s],
              sharded.utilization_per_server[s])
        << "server " << s;
  }
  EXPECT_NEAR(mono.mean_imbalance_eq2, sharded.mean_imbalance_eq2, kFloatTol);
  EXPECT_NEAR(mono.mean_imbalance_cv, sharded.mean_imbalance_cv, kFloatTol);
  EXPECT_NEAR(mono.mean_imbalance_capacity, sharded.mean_imbalance_capacity,
              kFloatTol);
  EXPECT_NEAR(mono.peak_imbalance_eq2, sharded.peak_imbalance_eq2, kFloatTol);
}

void expect_timelines_equivalent(const obs::TimeseriesCollector& mono,
                                 const obs::TimeseriesCollector& sharded) {
  ASSERT_EQ(mono.size(), sharded.size());
  EXPECT_EQ(mono.interval_sec(), sharded.interval_sec());
  EXPECT_EQ(mono.downsample_factor(), sharded.downsample_factor());
  for (std::size_t i = 0; i < mono.size(); ++i) {
    const obs::TimeSample& a = mono.sample(i);
    const obs::TimeSample& b = sharded.sample(i);
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.max_utilization, b.max_utilization);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.cache_hits, b.cache_hits);
    EXPECT_EQ(a.cache_misses, b.cache_misses);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_NEAR(a.mean_utilization, b.mean_utilization, kFloatTol);
    EXPECT_NEAR(a.imbalance_eq2, b.imbalance_eq2, kFloatTol);
  }
}

void expect_event_logs_identical(const obs::EventLog& mono,
                                 const obs::EventLog& sharded) {
  EXPECT_EQ(mono.seen(), sharded.seen());
  EXPECT_EQ(mono.dropped(), sharded.dropped());
  ASSERT_EQ(mono.records().size(), sharded.records().size());
  for (std::size_t i = 0; i < mono.records().size(); ++i) {
    EXPECT_EQ(mono.records()[i], sharded.records()[i]) << "record " << i;
  }
}

/// Monolithic reference replay with timeline + event log attached.
SimResult run_monolithic(StoragePolicy& policy, const SimConfig& config,
                         const RequestTrace& trace,
                         obs::TimeseriesCollector* timeline,
                         obs::EventLog* event_log) {
  SimEngine engine(config);
  if (timeline != nullptr) engine.attach_timeline(timeline);
  if (event_log != nullptr) engine.attach_event_log(event_log);
  return engine.run(policy, trace);
}

obs::TimeseriesConfig timeline_config() {
  obs::TimeseriesConfig config;
  config.interval_sec = 5.0;
  config.max_samples = 64;  // small so compaction triggers in most worlds
  return config;
}

constexpr std::size_t kEventLogCapacity = 200;  // forces drops in most worlds

// ---------------------------------------------------------------------------
// The invariance sweeps: >= 50 worlds per organization, S in {1, 2, 4, 8}.
// ---------------------------------------------------------------------------

TEST(ShardInvariance, ReplicatedRandomWorlds) {
  Rng rng(0x5eed0001);
  for (int world_id = 0; world_id < 50; ++world_id) {
    const World world = random_world(rng, /*allow_extensions=*/true);
    const Layout layout =
        random_layout(rng, world.num_videos, world.num_servers, 4);
    obs::TimeseriesCollector mono_timeline(timeline_config(),
                                           world.num_servers);
    obs::EventLog mono_log(kEventLogCapacity);
    ReplicatedPolicy policy(layout, world.config);
    const SimResult mono = run_monolithic(policy, world.config, world.trace,
                                          &mono_timeline, &mono_log);
    for (const std::size_t shards : kShardCounts) {
      SCOPED_TRACE("world " + std::to_string(world_id) + " shards " +
                   std::to_string(shards));
      obs::TimeseriesCollector timeline(timeline_config(), world.num_servers);
      obs::EventLog log(kEventLogCapacity);
      ShardedSimOptions options;
      options.num_shards = shards;
      const SimResult sharded = simulate_sharded(
          layout, world.config, world.trace, options, &timeline, &log);
      expect_equivalent(mono, sharded);
      expect_timelines_equivalent(mono_timeline, timeline);
      expect_event_logs_identical(mono_log, log);
    }
  }
}

TEST(ShardInvariance, StripedRandomWorlds) {
  Rng rng(0x5eed0002);
  for (int world_id = 0; world_id < 50; ++world_id) {
    World world = random_world(rng, /*allow_extensions=*/false);
    // Alternate aligned (k | N, real parallelism) and staggered (one
    // component, exercises the padded-shard merge path) layouts.
    StripedLayout layout;
    if (world_id % 2 == 0) {
      const std::size_t k = 1 + rng.uniform_index(2);  // 1 or 2
      world.num_servers = (world.num_servers / k) * k;
      world.config.num_servers = world.num_servers;
      if (!world.config.per_server_bandwidth_bps.empty()) {
        world.config.per_server_bandwidth_bps.resize(world.num_servers);
      }
      for (ServerFailure& f : world.config.failures) {
        f.server %= world.num_servers;
      }
      layout = aligned_striped_layout(world.num_videos, world.num_servers, k);
    } else {
      layout = make_striped_layout(world.num_videos, world.num_servers, 3);
    }
    obs::TimeseriesCollector mono_timeline(timeline_config(),
                                           world.num_servers);
    obs::EventLog mono_log(kEventLogCapacity);
    StripedPolicy policy(layout, world.config);
    const SimResult mono = run_monolithic(policy, world.config, world.trace,
                                          &mono_timeline, &mono_log);
    for (const std::size_t shards : kShardCounts) {
      SCOPED_TRACE("world " + std::to_string(world_id) + " shards " +
                   std::to_string(shards));
      obs::TimeseriesCollector timeline(timeline_config(), world.num_servers);
      obs::EventLog log(kEventLogCapacity);
      ShardedSimOptions options;
      options.num_shards = shards;
      const SimResult sharded = simulate_sharded_striped(
          layout, world.config, world.trace, options, &timeline, &log);
      expect_equivalent(mono, sharded);
      expect_timelines_equivalent(mono_timeline, timeline);
      expect_event_logs_identical(mono_log, log);
    }
  }
}

TEST(ShardInvariance, HybridRandomWorlds) {
  Rng rng(0x5eed0003);
  for (int world_id = 0; world_id < 50; ++world_id) {
    World world = random_world(rng, /*allow_extensions=*/false);
    HybridLayout layout;
    if (world_id % 2 == 0) {
      constexpr std::size_t kBlock = 4;  // 2-wide groups, 2 copies
      world.num_servers = std::max<std::size_t>(
          kBlock, (world.num_servers / kBlock) * kBlock);
      world.config.num_servers = world.num_servers;
      if (!world.config.per_server_bandwidth_bps.empty()) {
        world.config.per_server_bandwidth_bps.resize(world.num_servers,
                                                     units::mbps(100.0));
      }
      for (ServerFailure& f : world.config.failures) {
        f.server %= world.num_servers;
      }
      layout = aligned_hybrid_layout(world.num_videos, world.num_servers, 2, 2);
    } else {
      world.num_servers = std::max<std::size_t>(6, world.num_servers);
      world.config.num_servers = world.num_servers;
      if (!world.config.per_server_bandwidth_bps.empty()) {
        world.config.per_server_bandwidth_bps.resize(world.num_servers,
                                                     units::mbps(100.0));
      }
      layout = make_hybrid_layout(world.num_videos, world.num_servers, 2, 2);
    }
    obs::TimeseriesCollector mono_timeline(timeline_config(),
                                           world.num_servers);
    obs::EventLog mono_log(kEventLogCapacity);
    HybridPolicy policy(layout, world.config);
    const SimResult mono = run_monolithic(policy, world.config, world.trace,
                                          &mono_timeline, &mono_log);
    for (const std::size_t shards : kShardCounts) {
      SCOPED_TRACE("world " + std::to_string(world_id) + " shards " +
                   std::to_string(shards));
      obs::TimeseriesCollector timeline(timeline_config(), world.num_servers);
      obs::EventLog log(kEventLogCapacity);
      ShardedSimOptions options;
      options.num_shards = shards;
      const SimResult sharded = simulate_sharded_hybrid(
          layout, world.config, world.trace, options, &timeline, &log);
      expect_equivalent(mono, sharded);
      expect_timelines_equivalent(mono_timeline, timeline);
      expect_event_logs_identical(mono_log, log);
    }
  }
}

TEST(ShardInvariance, PrefixCacheRandomWorlds) {
  Rng rng(0x5eed0004);
  for (int world_id = 0; world_id < 50; ++world_id) {
    const World world = random_world(rng, /*allow_extensions=*/false);
    const Layout layout =
        random_layout(rng, world.num_videos, world.num_servers, 3);
    PrefixCacheOptions cache;
    cache.eviction = rng.bernoulli(0.5) ? CacheEvictionPolicy::kLru
                                        : CacheEvictionPolicy::kLfu;
    // A third of the worlds disable the tier (capacity 0): the plan then
    // shards by the replicated per-server rules instead of fusing.
    cache.capacity_bytes =
        world_id % 3 == 0 ? 0.0 : rng.uniform(2.0, 10.0) * 1e9;
    cache.uniform_prefix_fraction = rng.uniform(0.1, 0.5);
    obs::TimeseriesCollector mono_timeline(timeline_config(),
                                           world.num_servers);
    obs::EventLog mono_log(kEventLogCapacity);
    PrefixCachePolicy policy(layout, world.config, cache);
    const SimResult mono = run_monolithic(policy, world.config, world.trace,
                                          &mono_timeline, &mono_log);
    for (const std::size_t shards : kShardCounts) {
      SCOPED_TRACE("world " + std::to_string(world_id) + " shards " +
                   std::to_string(shards));
      obs::TimeseriesCollector timeline(timeline_config(), world.num_servers);
      obs::EventLog log(kEventLogCapacity);
      ShardedSimOptions options;
      options.num_shards = shards;
      const SimResult sharded = simulate_sharded_prefix_cache(
          layout, world.config, cache, world.trace, options, &timeline, &log);
      expect_equivalent(mono, sharded);
      expect_timelines_equivalent(mono_timeline, timeline);
      expect_event_logs_identical(mono_log, log);
    }
  }
}

// ---------------------------------------------------------------------------
// Structural properties of the plan and runner.
// ---------------------------------------------------------------------------

TEST(ShardInvariance, MergeEpochCadenceIsIrrelevant) {
  Rng rng(0x5eed0005);
  const World world = random_world(rng, /*allow_extensions=*/true);
  const Layout layout =
      random_layout(rng, world.num_videos, world.num_servers, 3);
  ShardedSimOptions options;
  options.num_shards = 4;
  const SimResult base =
      simulate_sharded(layout, world.config, world.trace, options);
  for (const double epoch : {1.0, 7.3, 50.0, 1e9}) {
    options.merge_epoch_sec = epoch;
    const SimResult other =
        simulate_sharded(layout, world.config, world.trace, options);
    expect_equivalent(base, other);
  }
}

TEST(ShardInvariance, MoreShardsThanServersIsFine) {
  Rng rng(0x5eed0006);
  World world = random_world(rng, /*allow_extensions=*/false);
  world.num_servers = 3;
  world.config.num_servers = 3;
  world.config.per_server_bandwidth_bps.clear();
  world.config.failures.clear();
  const Layout layout = random_layout(rng, world.num_videos, 3, 2);
  ReplicatedPolicy policy(layout, world.config);
  const SimResult mono = run_monolithic(policy, world.config, world.trace,
                                        nullptr, nullptr);
  ShardedSimOptions options;
  options.num_shards = 8;  // 5 shards own no server at all
  const SimResult sharded =
      simulate_sharded(layout, world.config, world.trace, options);
  expect_equivalent(mono, sharded);
}

TEST(ShardInvariance, BackboneProxyThrowsNamedErrorAtMultipleShards) {
  Rng rng(0x5eed0007);
  World world = random_world(rng, /*allow_extensions=*/false);
  world.config.redirect = RedirectMode::kBackboneProxy;
  world.config.backbone_bps = units::mbps(50.0);
  const Layout layout =
      random_layout(rng, world.num_videos, world.num_servers, 3);
  ShardedSimOptions options;
  options.num_shards = 2;
  EXPECT_THROW(simulate_sharded(layout, world.config, world.trace, options),
               InvalidArgumentError);
  // S == 1 takes the monolithic path and must keep working.
  options.num_shards = 1;
  const SimResult result =
      simulate_sharded(layout, world.config, world.trace, options);
  EXPECT_EQ(result.total_requests, world.trace.size());
}

TEST(ShardInvariance, LiveCacheRejectsRoutedReplay) {
  // A live cache tier must refuse a routed pick sequence: prefix hits skip
  // the dispatcher, so precomputed picks cannot stay aligned.
  Layout layout;
  layout.assignment = {{0}, {1}};
  SimConfig config;
  config.num_servers = 2;
  config.bandwidth_bps_per_server = units::mbps(100.0);
  config.stream_bitrate_bps = units::mbps(4.0);
  config.video_duration_sec = 60.0;
  PrefixCacheOptions cache;
  cache.capacity_bytes = 1e9;
  PrefixCachePolicy policy(layout, config, cache);
  EXPECT_THROW(policy.set_routed_picks({0}), InvalidArgumentError);
}

TEST(ShardInvariance, PlanPartitionsTheTrace) {
  Rng rng(0x5eed0008);
  const World world = random_world(rng, /*allow_extensions=*/true);
  const Layout layout =
      random_layout(rng, world.num_videos, world.num_servers, 4);
  for (const std::size_t shards : kShardCounts) {
    const ShardPlan plan =
        make_replicated_shard_plan(layout, world.config, world.trace, shards);
    ASSERT_EQ(plan.shard_of_request.size(), world.trace.size());
    ASSERT_EQ(plan.shard_of_server.size(), world.num_servers);
    std::size_t total = 0;
    for (std::size_t s = 0; s < plan.num_shards; ++s) {
      EXPECT_TRUE(plan.sub_traces[s].is_well_formed());
      EXPECT_EQ(plan.sub_traces[s].horizon, world.trace.horizon);
      total += plan.sub_traces[s].size();
    }
    EXPECT_EQ(total, world.trace.size());
    // The routed sub-traces preserve the global order restricted to each
    // shard: replaying shard_of_request must reproduce every sub-trace.
    std::vector<std::size_t> cursor(plan.num_shards, 0);
    for (std::size_t i = 0; i < world.trace.size(); ++i) {
      const std::uint32_t s = plan.shard_of_request[i];
      ASSERT_LT(cursor[s], plan.sub_traces[s].size());
      EXPECT_EQ(world.trace.requests[i],
                plan.sub_traces[s].requests[cursor[s]]);
      ++cursor[s];
    }
  }
}

TEST(ShardInvariance, ShardRngSeedsAreDistinctAndAnchored) {
  const std::uint64_t base = 0x1234abcd5678ef90ULL;
  EXPECT_EQ(shard_rng_seed(base, 0), base);
  std::vector<std::uint64_t> seeds;
  for (std::size_t s = 0; s < 64; ++s) seeds.push_back(shard_rng_seed(base, s));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

// ---------------------------------------------------------------------------
// Threaded runs: the tsan surface (CMakePresets tsan preset runs this
// suite).  Small on purpose — the invariance sweeps above already cover the
// semantics; this only has to put real concurrency under the sanitizer.
// ---------------------------------------------------------------------------

TEST(ShardedEngineThreads, ReplicatedMatchesMonolithicOnAPool) {
  Rng rng(0x7ead0001);
  ThreadPool pool(4);
  for (int world_id = 0; world_id < 4; ++world_id) {
    const World world = random_world(rng, /*allow_extensions=*/true);
    const Layout layout =
        random_layout(rng, world.num_videos, world.num_servers, 4);
    ReplicatedPolicy policy(layout, world.config);
    const SimResult mono = run_monolithic(policy, world.config, world.trace,
                                          nullptr, nullptr);
    ShardedSimOptions options;
    options.num_shards = 4;
    options.pool = &pool;
    const SimResult sharded =
        simulate_sharded(layout, world.config, world.trace, options);
    expect_equivalent(mono, sharded);
  }
}

TEST(ShardedEngineThreads, StripedAndHybridMatchMonolithicOnAPool) {
  Rng rng(0x7ead0002);
  ThreadPool pool(4);
  World world = random_world(rng, /*allow_extensions=*/false);
  world.num_servers = 8;
  world.config.num_servers = 8;
  world.config.per_server_bandwidth_bps.clear();
  for (ServerFailure& f : world.config.failures) f.server %= 8;

  const StripedLayout striped =
      aligned_striped_layout(world.num_videos, 8, 2);
  StripedPolicy striped_policy(striped, world.config);
  const SimResult striped_mono = run_monolithic(
      striped_policy, world.config, world.trace, nullptr, nullptr);
  ShardedSimOptions options;
  options.num_shards = 4;
  options.pool = &pool;
  expect_equivalent(striped_mono,
                    simulate_sharded_striped(striped, world.config,
                                             world.trace, options));

  const HybridLayout hybrid = aligned_hybrid_layout(world.num_videos, 8, 2, 2);
  HybridPolicy hybrid_policy(hybrid, world.config);
  const SimResult hybrid_mono = run_monolithic(
      hybrid_policy, world.config, world.trace, nullptr, nullptr);
  expect_equivalent(hybrid_mono,
                    simulate_sharded_hybrid(hybrid, world.config, world.trace,
                                            options));
}

TEST(ShardedEngineThreads, TimelineAndEventLogMergeUnderThreads) {
  Rng rng(0x7ead0003);
  ThreadPool pool(4);
  const World world = random_world(rng, /*allow_extensions=*/false);
  const Layout layout =
      random_layout(rng, world.num_videos, world.num_servers, 3);
  obs::TimeseriesCollector mono_timeline(timeline_config(),
                                         world.num_servers);
  obs::EventLog mono_log(kEventLogCapacity);
  ReplicatedPolicy policy(layout, world.config);
  const SimResult mono = run_monolithic(policy, world.config, world.trace,
                                        &mono_timeline, &mono_log);
  obs::TimeseriesCollector timeline(timeline_config(), world.num_servers);
  obs::EventLog log(kEventLogCapacity);
  ShardedSimOptions options;
  options.num_shards = 4;
  options.pool = &pool;
  const SimResult sharded = simulate_sharded(layout, world.config,
                                             world.trace, options, &timeline,
                                             &log);
  expect_equivalent(mono, sharded);
  expect_timelines_equivalent(mono_timeline, timeline);
  expect_event_logs_identical(mono_log, log);
}

}  // namespace
}  // namespace vodrep
