#include "src/anneal/schedule.h"

#include <gtest/gtest.h>

#include "src/util/error.h"

namespace vodrep {
namespace {

TEST(GeometricCooling, MultipliesByAlpha) {
  const auto schedule = geometric_cooling(0.9);
  EXPECT_DOUBLE_EQ(schedule->next(10.0, {}), 9.0);
  EXPECT_EQ(schedule->name(), "geometric");
}

TEST(GeometricCooling, RejectsBadAlpha) {
  EXPECT_THROW((void)geometric_cooling(0.0), InvalidArgumentError);
  EXPECT_THROW((void)geometric_cooling(1.0), InvalidArgumentError);
  EXPECT_THROW((void)geometric_cooling(-0.5), InvalidArgumentError);
}

TEST(LinearCooling, SubtractsDeltaAndFloorsAtZero) {
  const auto schedule = linear_cooling(3.0);
  EXPECT_DOUBLE_EQ(schedule->next(10.0, {}), 7.0);
  EXPECT_DOUBLE_EQ(schedule->next(2.0, {}), 0.0);
  EXPECT_EQ(schedule->name(), "linear");
}

TEST(LinearCooling, RejectsNonPositiveDelta) {
  EXPECT_THROW((void)linear_cooling(0.0), InvalidArgumentError);
}

TEST(AdaptiveCooling, CoolsFastWhenHot) {
  const auto schedule = adaptive_cooling(0.5, 0.8, 0.99, 0.8, 0.2);
  CoolingStepInfo info;
  info.moves = 100;
  info.accepted = 90;  // 90% acceptance: random-walk regime
  EXPECT_DOUBLE_EQ(schedule->next(1.0, info), 0.5);
}

TEST(AdaptiveCooling, CoolsSlowlyWhenCold) {
  const auto schedule = adaptive_cooling(0.5, 0.8, 0.99, 0.8, 0.2);
  CoolingStepInfo info;
  info.moves = 100;
  info.accepted = 5;  // 5% acceptance: careful descent
  EXPECT_DOUBLE_EQ(schedule->next(1.0, info), 0.99);
}

TEST(AdaptiveCooling, MidRegimeUsesMidAlpha) {
  const auto schedule = adaptive_cooling(0.5, 0.8, 0.99, 0.8, 0.2);
  CoolingStepInfo info;
  info.moves = 100;
  info.accepted = 50;
  EXPECT_DOUBLE_EQ(schedule->next(1.0, info), 0.8);
}

TEST(AdaptiveCooling, NoMovesCountsAsHot) {
  const auto schedule = adaptive_cooling(0.5, 0.8, 0.99, 0.8, 0.2);
  CoolingStepInfo info;  // moves == 0
  EXPECT_DOUBLE_EQ(schedule->next(1.0, info), 0.5);
}

TEST(AdaptiveCooling, RejectsBadParameters) {
  EXPECT_THROW((void)adaptive_cooling(1.5, 0.8, 0.99, 0.8, 0.2),
               InvalidArgumentError);
  EXPECT_THROW((void)adaptive_cooling(0.5, 0.8, 0.99, 0.2, 0.8),
               InvalidArgumentError);
}

TEST(AllSchedules, StrictlyDecreaseTemperature) {
  CoolingStepInfo info;
  info.moves = 10;
  info.accepted = 5;
  for (const auto& schedule :
       {geometric_cooling(0.95), linear_cooling(0.01), adaptive_cooling()}) {
    double t = 1.0;
    for (int i = 0; i < 50; ++i) {
      const double next = schedule->next(t, info);
      EXPECT_LT(next, t) << schedule->name();
      t = next;
      if (t == 0.0) break;
    }
  }
}

}  // namespace
}  // namespace vodrep
