// Equivalence contract of the segment/prefix content model (DESIGN.md §9):
// with every prefix fraction pinned at 1.0 (whole-file replicas, one
// variant) the fractional paths must be BIT-EXACT with the pre-prefix
// whole-file paths — the generalization multiplies existing float
// expressions by f in place (IEEE x * 1.0 == x) and never reorders the
// sums they feed.  With fractions free, the incremental solver state must
// agree with a from-scratch compute_usage / objective_value evaluation at
// the layer's 1e-9 contract, and every journaled fraction move must roll
// back.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "src/audit/audit.h"
#include "src/core/incremental_state.h"
#include "src/core/objective.h"
#include "src/core/sa_solver.h"
#include "src/core/scalable.h"
#include "src/util/rng.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

ScalableProblem test_problem(double min_prefix_fraction = 1.0) {
  ScalableProblem p;
  p.videos.duration_sec = units::minutes(90);
  p.videos.popularity = zipf_popularity(30, 0.75);
  p.cluster.num_servers = 5;
  p.cluster.bandwidth_bps_per_server = units::gbps(0.5);
  p.cluster.storage_bytes_per_server = units::gigabytes(160.0);
  p.ladder.rates_bps = {units::mbps(1), units::mbps(2), units::mbps(4),
                        units::mbps(8)};
  p.expected_peak_requests = 700.0;
  p.min_prefix_fraction = min_prefix_fraction;
  return p;
}

void expect_close(double actual, double expected, const char* what) {
  const double tolerance =
      1e-9 * std::max({1.0, std::abs(actual), std::abs(expected)});
  EXPECT_NEAR(actual, expected, tolerance) << what;
}

/// Bit-exact comparison of every running quantity of two states.
void expect_states_bit_exact(const IncrementalState& a,
                             const IncrementalState& b) {
  ASSERT_EQ(a.storage_bytes().size(), b.storage_bytes().size());
  for (std::size_t s = 0; s < a.storage_bytes().size(); ++s) {
    EXPECT_EQ(a.storage_bytes()[s], b.storage_bytes()[s]) << "server " << s;
    EXPECT_EQ(a.bandwidth_bps()[s], b.bandwidth_bps()[s]) << "server " << s;
  }
  EXPECT_EQ(a.objective(), b.objective());
  EXPECT_EQ(a.relative_bandwidth_overflow(), b.relative_bandwidth_overflow());
  EXPECT_EQ(a.max_bandwidth_bps(), b.max_bandwidth_bps());
}

TEST(PrefixEquivalence, ObjectiveWithAllOnesFractionsIsBitExact) {
  Rng rng(0xF1201);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t m = 3 + rng.uniform_index(40);
    const std::size_t n = 2 + rng.uniform_index(8);
    std::vector<double> bitrates(m), loads(n);
    std::vector<std::size_t> replicas(m);
    for (std::size_t i = 0; i < m; ++i) {
      bitrates[i] = units::mbps(1.0 + rng.uniform(0.0, 7.0));
      replicas[i] = 1 + rng.uniform_index(n);
    }
    for (double& l : loads) l = rng.uniform(0.0, 1e9);
    ObjectiveWeights weights;
    weights.alpha = rng.uniform(0.1, 3.0);
    weights.beta = rng.uniform(0.1, 3.0);
    const double legacy =
        objective_value(bitrates, replicas, loads, n, weights);
    const double fractional = objective_value(
        bitrates, replicas, std::vector<double>(m, 1.0), loads, n, weights);
    EXPECT_EQ(legacy, fractional) << "trial " << trial;
  }
}

TEST(PrefixEquivalence, ComputeUsageWithAllOnesFractionsIsBitExact) {
  const ScalableProblem p = test_problem();
  ScalableSolution plain = lowest_rate_round_robin(p);
  ScalableSolution ones = plain;
  ones.prefix_fraction.assign(p.videos.count(), 1.0);
  const ServerUsage usage_plain = compute_usage(p, plain);
  const ServerUsage usage_ones = compute_usage(p, ones);
  for (std::size_t s = 0; s < p.cluster.num_servers; ++s) {
    EXPECT_EQ(usage_plain.storage_bytes[s], usage_ones.storage_bytes[s]);
    EXPECT_EQ(usage_plain.bandwidth_bps[s], usage_ones.bandwidth_bps[s]);
  }
  EXPECT_EQ(solution_objective(p, plain), solution_objective(p, ones));
}

TEST(PrefixEquivalence, IncrementalStateWithAllOnesFractionsIsBitExact) {
  const ScalableProblem p = test_problem();
  ScalableSolution ones = lowest_rate_round_robin(p);
  ones.prefix_fraction.assign(p.videos.count(), 1.0);
  IncrementalState plain(p, lowest_rate_round_robin(p));
  IncrementalState fractional(p, ones);
  expect_states_bit_exact(plain, fractional);

  // The equivalence must survive mutations: replica and bitrate moves
  // applied identically to both states keep them bit-identical as long as
  // every fraction stays 1.0.
  Rng rng(0xF1202);
  const std::size_t m = p.videos.count();
  const std::size_t n = p.cluster.num_servers;
  for (int step = 0; step < 300; ++step) {
    const auto video = static_cast<std::size_t>(rng.uniform_index(m));
    if (rng.bernoulli(0.5)) {
      const auto idx =
          static_cast<std::size_t>(rng.uniform_index(p.ladder.size()));
      plain.set_bitrate(video, idx);
      fractional.set_bitrate(video, idx);
    } else {
      const auto server = static_cast<std::size_t>(rng.uniform_index(n));
      if (plain.is_hosted(video, server)) {
        if (plain.replicas_of(video).size() < 2) continue;
        plain.drop_replica(video, server);
        fractional.drop_replica(video, server);
      } else {
        plain.add_replica(video, server);
        fractional.add_replica(video, server);
      }
    }
  }
  expect_states_bit_exact(plain, fractional);
  // A state that never left f == 1.0 serializes without the fraction table,
  // so downstream consumers see the legacy whole-file solution.
  EXPECT_TRUE(fractional.to_solution().prefix_fraction.empty());
}

TEST(PrefixEquivalence, FractionalStateMatchesRecompute) {
  const ScalableProblem p = test_problem(/*min_prefix_fraction=*/0.2);
  IncrementalState inc(p, lowest_rate_round_robin(p));
  Rng rng(0xF1203);
  const std::size_t m = p.videos.count();
  for (int step = 0; step < 400; ++step) {
    const auto video = static_cast<std::size_t>(rng.uniform_index(m));
    switch (rng.uniform_index(3)) {
      case 0:
        inc.set_prefix_fraction(video, rng.uniform(0.2, 1.0));
        break;
      case 1:
        inc.set_bitrate(video, static_cast<std::size_t>(
                                   rng.uniform_index(p.ladder.size())));
        break;
      default: {
        const auto server = static_cast<std::size_t>(
            rng.uniform_index(p.cluster.num_servers));
        if (inc.is_hosted(video, server)) {
          if (inc.replicas_of(video).size() >= 2) {
            inc.drop_replica(video, server);
          }
        } else {
          inc.add_replica(video, server);
        }
        break;
      }
    }
  }
  const ScalableSolution solution = inc.to_solution();
  ASSERT_EQ(solution.prefix_fraction.size(), m);
  const ServerUsage usage = compute_usage(p, solution);
  for (std::size_t s = 0; s < p.cluster.num_servers; ++s) {
    expect_close(inc.storage_bytes()[s], usage.storage_bytes[s], "storage");
    expect_close(inc.bandwidth_bps()[s], usage.bandwidth_bps[s], "bandwidth");
  }
  expect_close(inc.objective(), solution_objective(p, solution), "objective");
}

TEST(PrefixEquivalence, PrefixFractionMovesRollBack) {
  const ScalableProblem p = test_problem(/*min_prefix_fraction=*/0.25);
  IncrementalState inc(p, lowest_rate_round_robin(p));
  Rng rng(0xF1204);
  const std::size_t m = p.videos.count();
  const std::vector<double> storage_before = inc.storage_bytes();
  const std::vector<double> bandwidth_before = inc.bandwidth_bps();
  const double objective_before = inc.objective();
  const IncrementalState::Checkpoint mark = inc.checkpoint();
  for (int step = 0; step < 120; ++step) {
    const auto video = static_cast<std::size_t>(rng.uniform_index(m));
    if (rng.bernoulli(0.6)) {
      inc.set_prefix_fraction(video, rng.uniform(0.25, 1.0));
    } else {
      const auto server =
          static_cast<std::size_t>(rng.uniform_index(p.cluster.num_servers));
      if (!inc.is_hosted(video, server)) inc.add_replica(video, server);
    }
  }
  inc.rollback(mark);
  for (std::size_t s = 0; s < p.cluster.num_servers; ++s) {
    expect_close(inc.storage_bytes()[s], storage_before[s], "storage");
    expect_close(inc.bandwidth_bps()[s], bandwidth_before[s], "bandwidth");
  }
  expect_close(inc.objective(), objective_before, "objective");
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_EQ(inc.prefix_fraction(i), 1.0) << "video " << i;
  }
}

TEST(PrefixEquivalence, SolverWithPrefixMovesPassesFractionalAudit) {
  ScalableProblem p = test_problem(/*min_prefix_fraction=*/0.25);
  SaSolverOptions options;
  options.anneal.max_temperature_steps = 40;
  options.anneal.moves_per_temperature = 60;
  options.prefix_fraction_probability = 0.3;
  options.prefix_fraction_step = 0.25;
  const SaSolverResult result = solve_scalable(p, /*seed=*/77, options);
  const AuditReport audit = LayoutAuditor::audit_solution(p, result.solution);
  EXPECT_TRUE(audit.ok_ignoring(ViolationKind::kBandwidthOverflow))
      << audit.summary();
  if (!result.solution.prefix_fraction.empty()) {
    for (double f : result.solution.prefix_fraction) {
      EXPECT_GE(f, p.min_prefix_fraction);
      EXPECT_LE(f, 1.0);
    }
  }
}

TEST(PrefixEquivalence, SolverDefaultOptionsStayOnWholeFilePath) {
  // prefix_fraction_probability defaults to 0: the move gate short-circuits
  // before consuming any RNG draw, so a default run never leaves f == 1.0
  // and its solution serializes without a fraction table.
  const ScalableProblem p = test_problem();
  SaSolverOptions options;
  options.anneal.max_temperature_steps = 30;
  options.anneal.moves_per_temperature = 40;
  const SaSolverResult result = solve_scalable(p, /*seed=*/13, options);
  EXPECT_TRUE(result.solution.prefix_fraction.empty());
}

}  // namespace
}  // namespace vodrep
