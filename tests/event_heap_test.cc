#include "src/sim/event_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/error.h"
#include "src/util/rng.h"

namespace vodrep {
namespace {

TEST(EventHeap, PopsInTimeOrder) {
  EventHeap heap;
  (void)heap.push(3.0, 30);
  (void)heap.push(1.0, 10);
  (void)heap.push(2.0, 20);
  EXPECT_EQ(heap.size(), 3u);
  EXPECT_DOUBLE_EQ(heap.min_time(), 1.0);
  EXPECT_EQ(heap.pop_min().payload, 10u);
  EXPECT_EQ(heap.pop_min().payload, 20u);
  EXPECT_EQ(heap.pop_min().payload, 30u);
  EXPECT_TRUE(heap.empty());
}

TEST(EventHeap, EqualTimesPopInInsertionOrder) {
  EventHeap heap;
  for (std::size_t i = 0; i < 20; ++i) (void)heap.push(5.0, i);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(heap.pop_min().payload, i);
  }
}

TEST(EventHeap, CancelRemovesPendingEvent) {
  EventHeap heap;
  const EventHeap::Id a = heap.push(1.0, 1);
  const EventHeap::Id b = heap.push(2.0, 2);
  (void)heap.push(3.0, 3);
  EXPECT_TRUE(heap.active(b));
  heap.cancel(b);
  EXPECT_FALSE(heap.active(b));
  EXPECT_EQ(heap.size(), 2u);
  EXPECT_EQ(heap.pop_min().payload, 1u);
  EXPECT_EQ(heap.pop_min().payload, 3u);
  EXPECT_FALSE(heap.active(a));  // popped ids go inactive too
}

TEST(EventHeap, CancelMinRetargetsMinTime) {
  EventHeap heap;
  const EventHeap::Id a = heap.push(1.0, 1);
  (void)heap.push(2.0, 2);
  heap.cancel(a);
  EXPECT_DOUBLE_EQ(heap.min_time(), 2.0);
}

TEST(EventHeap, CancelTwiceThrows) {
  EventHeap heap;
  const EventHeap::Id a = heap.push(1.0, 1);
  heap.cancel(a);
  EXPECT_THROW(heap.cancel(a), InvalidArgumentError);
}

TEST(EventHeap, CancelPoppedThrows) {
  EventHeap heap;
  const EventHeap::Id a = heap.push(1.0, 1);
  (void)heap.pop_min();
  EXPECT_THROW(heap.cancel(a), InvalidArgumentError);
}

TEST(EventHeap, IdsAreRecycledSafely) {
  EventHeap heap;
  const EventHeap::Id a = heap.push(1.0, 1);
  heap.cancel(a);
  const EventHeap::Id b = heap.push(2.0, 2);
  // Whether or not the id value is reused, the new handle must refer to the
  // new event only.
  EXPECT_TRUE(heap.active(b));
  EXPECT_EQ(heap.pop_min().payload, 2u);
}

// Differential check against a sorted-reference scheduler: random pushes,
// cancels, and pops must pop the exact same (time, payload) sequence as a
// stable-sorted vector.
TEST(EventHeap, MatchesSortedReferenceUnderRandomOps) {
  Rng rng(0xE4EA9);
  for (int trial = 0; trial < 20; ++trial) {
    EventHeap heap;
    struct Ref {
      double time;
      std::uint64_t seq;
      std::size_t payload;
      EventHeap::Id id;
      bool cancelled = false;
    };
    std::vector<Ref> reference;
    std::uint64_t seq = 0;
    const std::size_t ops = 200 + rng.uniform_index(400);
    for (std::size_t op = 0; op < ops; ++op) {
      // Coarse times force plenty of exact ties.
      const double time = static_cast<double>(rng.uniform_index(50));
      const EventHeap::Id id = heap.push(time, op);
      reference.push_back(Ref{time, seq++, op, id});
      if (rng.bernoulli(0.3) && !reference.empty()) {
        const std::size_t pick = rng.uniform_index(reference.size());
        if (!reference[pick].cancelled && heap.active(reference[pick].id)) {
          heap.cancel(reference[pick].id);
          reference[pick].cancelled = true;
        }
      }
    }
    std::vector<Ref> expected;
    for (const Ref& r : reference) {
      if (!r.cancelled) expected.push_back(r);
    }
    std::sort(expected.begin(), expected.end(), [](const Ref& a, const Ref& b) {
      return a.time != b.time ? a.time < b.time : a.seq < b.seq;
    });
    ASSERT_EQ(heap.size(), expected.size()) << "trial " << trial;
    for (const Ref& r : expected) {
      const EventHeap::Event event = heap.pop_min();
      EXPECT_DOUBLE_EQ(event.time, r.time) << "trial " << trial;
      EXPECT_EQ(event.payload, r.payload) << "trial " << trial;
    }
    EXPECT_TRUE(heap.empty());
  }
}

}  // namespace
}  // namespace vodrep
