#include "src/audit/audit.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "src/core/best_fit_placement.h"
#include "src/core/greedy_scalable.h"
#include "src/core/incremental_state.h"
#include "src/core/pipeline.h"
#include "src/core/round_robin_placement.h"
#include "src/core/sa_solver.h"
#include "src/core/slf_placement.h"
#include "src/hetero/hetero_placement.h"
#include "src/util/error.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

// ---------------------------------------------------------------------------
// Fixed-rate layout audits.

struct Fixture {
  std::size_t servers = 4;
  std::size_t capacity = 4;
  std::vector<double> popularity = zipf_popularity(10, 0.75);
  ReplicationPlan plan;
  Layout layout;

  Fixture() {
    plan = make_replication_policy("adams")->replicate(popularity, servers,
                                                       capacity * servers);
    layout = SmallestLoadFirstPlacement().place(plan, popularity, servers,
                                                capacity);
  }

  [[nodiscard]] LayoutAuditor::Limits limits() const {
    LayoutAuditor::Limits l;
    l.num_servers = servers;
    l.capacity_per_server = capacity;
    return l;
  }
};

TEST(LayoutAudit, CleanSlfLayoutPasses) {
  const Fixture f;
  const AuditReport report =
      LayoutAuditor(f.limits()).audit(f.layout, &f.plan, &f.popularity);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.checks_performed, 0u);
}

TEST(LayoutAudit, CleanBestFitAndRoundRobinLayoutsPass) {
  const Fixture f;
  for (const Layout& layout :
       {BestFitPlacement().place(f.plan, f.popularity, f.servers, f.capacity),
        RoundRobinPlacement().place(f.plan, f.popularity, f.servers,
                                    f.capacity)}) {
    const AuditReport report =
        LayoutAuditor(f.limits()).audit(layout, &f.plan, &f.popularity);
    EXPECT_TRUE(report.ok()) << report.summary();
  }
}

TEST(LayoutAudit, DuplicateServerReplicaFlagged) {
  Fixture f;
  f.layout.assignment[0] = {1, 1};  // Eq. 6: replicas must be distinct
  const AuditReport report = LayoutAuditor(f.limits()).audit(f.layout);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(report.has(ViolationKind::kDuplicateServer));
  for (const Violation& v : report.violations) {
    if (v.kind == ViolationKind::kDuplicateServer) {
      EXPECT_EQ(v.video, 0u);
      EXPECT_EQ(v.server, 1u);
    }
  }
}

TEST(LayoutAudit, OutOfRangeServerIdFlagged) {
  Fixture f;
  f.layout.assignment[2].back() = f.servers + 3;  // Eq. 6: server id < N
  const AuditReport report = LayoutAuditor(f.limits()).audit(f.layout);
  ASSERT_TRUE(report.has(ViolationKind::kServerOutOfRange));
  for (const Violation& v : report.violations) {
    if (v.kind == ViolationKind::kServerOutOfRange) {
      EXPECT_EQ(v.video, 2u);
      EXPECT_EQ(v.server, f.servers + 3);
      EXPECT_GT(v.margin(), 0.0);
    }
  }
}

TEST(LayoutAudit, MissingReplicaFlagged) {
  Fixture f;
  f.layout.assignment[5].clear();  // Eq. 7 lower bound: r_i >= 1
  const AuditReport report = LayoutAuditor(f.limits()).audit(f.layout);
  EXPECT_TRUE(report.has(ViolationKind::kNoReplica));
}

TEST(LayoutAudit, TooManyReplicasFlagged) {
  Fixture f;
  f.layout.assignment[0] = {0, 1, 2, 3, 0};  // Eq. 7 upper bound: r_i <= N
  const AuditReport report = LayoutAuditor(f.limits()).audit(f.layout);
  EXPECT_TRUE(report.has(ViolationKind::kTooManyReplicas));
  EXPECT_TRUE(report.has(ViolationKind::kDuplicateServer));
}

TEST(LayoutAudit, StorageOverflowFlagged) {
  Fixture f;
  LayoutAuditor::Limits limits = f.limits();
  limits.capacity_per_server = 1;  // Eq. 4: the plan cannot fit one slot
  const AuditReport report = LayoutAuditor(limits).audit(f.layout);
  ASSERT_TRUE(report.has(ViolationKind::kStorageOverflow));
  for (const Violation& v : report.violations) {
    EXPECT_EQ(v.kind, ViolationKind::kStorageOverflow);
    EXPECT_GT(v.actual, v.limit);
  }
}

TEST(LayoutAudit, BandwidthOverflowFlagged) {
  Fixture f;
  LayoutAuditor::Limits limits = f.limits();
  // Eq. 5: 200 expected peak streams at 4 Mb/s over 4 servers cannot fit
  // 10 Mb/s links.
  limits.bandwidth_bps_per_server = units::mbps(10);
  limits.expected_peak_requests = 200.0;
  limits.bitrate_bps = units::mbps(4);
  const AuditReport report =
      LayoutAuditor(limits).audit(f.layout, &f.plan, &f.popularity);
  EXPECT_TRUE(report.has(ViolationKind::kBandwidthOverflow));
}

TEST(LayoutAudit, BandwidthCheckSkippedWithoutLoadModel) {
  const Fixture f;
  LayoutAuditor::Limits limits = f.limits();
  limits.bandwidth_bps_per_server = units::mbps(1);  // absurdly small...
  // ...but no expected_peak_requests / bitrate given, so Eq. 5 is skipped.
  const AuditReport report =
      LayoutAuditor(limits).audit(f.layout, &f.plan, &f.popularity);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(LayoutAudit, PlanMismatchFlagged) {
  Fixture f;
  ReplicationPlan other = f.plan;
  other.replicas[0] += 1;
  const AuditReport report =
      LayoutAuditor(f.limits()).audit(f.layout, &other, &f.popularity);
  EXPECT_TRUE(report.has(ViolationKind::kPlanMismatch));
}

TEST(LayoutAudit, ReportsEveryViolationNotJustTheFirst) {
  Fixture f;
  f.layout.assignment[0] = {1, 1};
  f.layout.assignment[1].clear();
  f.layout.assignment[2].back() = 99;
  const AuditReport report = LayoutAuditor(f.limits()).audit(f.layout);
  EXPECT_TRUE(report.has(ViolationKind::kDuplicateServer));
  EXPECT_TRUE(report.has(ViolationKind::kNoReplica));
  EXPECT_TRUE(report.has(ViolationKind::kServerOutOfRange));
  EXPECT_GE(report.violations.size(), 3u);
  EXPECT_FALSE(report.ok_ignoring(ViolationKind::kDuplicateServer));
}

TEST(LayoutAudit, JsonReportIsWellFormedish) {
  Fixture f;
  f.layout.assignment[0] = {1, 1};
  const AuditReport report = LayoutAuditor(f.limits()).audit(f.layout);
  std::ostringstream os;
  report.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\": \"duplicate_server\""), std::string::npos)
      << json;
}

// ---------------------------------------------------------------------------
// Layout::validate delegates to the auditor.

TEST(LayoutValidate, RejectsVideoWithNoReplica) {
  Fixture f;
  f.layout.assignment[3].clear();
  ReplicationPlan implied = f.layout.implied_plan();
  // The implied plan also says r_3 = 0, so this failure comes from the
  // Eq. 7 lower-bound check, not a plan mismatch.
  EXPECT_THROW(f.layout.validate(implied, f.servers, f.capacity),
               InvalidArgumentError);
}

TEST(LayoutValidate, ExtendedOverloadEnforcesBandwidth) {
  const Fixture f;
  f.layout.validate(f.plan, f.servers, f.capacity);  // base overload passes
  EXPECT_THROW(
      f.layout.validate(f.plan, f.servers, f.capacity, f.popularity,
                        /*bandwidth_bps_per_server=*/units::mbps(10),
                        /*expected_peak_requests=*/200.0,
                        /*bitrate_bps=*/units::mbps(4)),
      InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// Scalable-rate solution audits.

ScalableProblem scalable_problem() {
  ScalableProblem p;
  p.videos.duration_sec = units::minutes(90);
  p.videos.popularity = zipf_popularity(30, 0.75);
  p.cluster.num_servers = 4;
  p.cluster.bandwidth_bps_per_server = units::gbps(1.0);
  p.cluster.storage_bytes_per_server = units::gigabytes(150.0);
  p.ladder.rates_bps = {units::mbps(1), units::mbps(2), units::mbps(4)};
  p.expected_peak_requests = 300.0;
  return p;
}

TEST(SolutionAudit, CleanInitialSolutionPasses) {
  const ScalableProblem problem = scalable_problem();
  const ScalableSolution solution = lowest_rate_round_robin(problem);
  const AuditReport report = LayoutAuditor::audit_solution(problem, solution);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(SolutionAudit, GreedySolverOutputPasses) {
  const ScalableProblem problem = scalable_problem();
  const AuditReport report =
      LayoutAuditor::audit_solution(problem, greedy_scalable(problem));
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(SolutionAudit, SaSolverOutputPasses) {
  const ScalableProblem problem = scalable_problem();
  SaSolverOptions options;
  options.anneal.moves_per_temperature = 50;
  options.anneal.stall_steps = 10;
  const SaSolverResult result = solve_scalable(problem, 17, options);
  const AuditReport report =
      LayoutAuditor::audit_solution(problem, result.solution);
  if (result.feasible) {
    EXPECT_TRUE(report.ok()) << report.summary();
  } else {
    EXPECT_TRUE(report.ok_ignoring(ViolationKind::kBandwidthOverflow))
        << report.summary();
  }
}

TEST(SolutionAudit, LadderIndexOutOfRangeFlagged) {
  const ScalableProblem problem = scalable_problem();
  ScalableSolution solution = lowest_rate_round_robin(problem);
  solution.bitrate_index[7] = problem.ladder.size();
  const AuditReport report = LayoutAuditor::audit_solution(problem, solution);
  EXPECT_TRUE(report.has(ViolationKind::kLadderIndexOutOfRange));
}

TEST(SolutionAudit, ScalableStorageOverflowFlagged) {
  ScalableProblem problem = scalable_problem();
  // Shrink storage until even the one-replica lowest-rate layout cannot fit
  // its share on server 0.
  problem.cluster.storage_bytes_per_server =
      units::video_bytes(problem.videos.duration_sec,
                         problem.ladder.rates_bps[0]) *
      1.5;
  ScalableSolution solution;
  solution.bitrate_index.assign(problem.videos.count(), 0);
  solution.placement.assign(problem.videos.count(), {0});
  const AuditReport report = LayoutAuditor::audit_solution(problem, solution);
  ASSERT_TRUE(report.has(ViolationKind::kStorageOverflow));
}

TEST(SolutionAudit, ScalableBandwidthOverflowFlagged) {
  ScalableProblem problem = scalable_problem();
  problem.cluster.bandwidth_bps_per_server = units::mbps(1);
  const ScalableSolution solution = lowest_rate_round_robin(problem);
  const AuditReport report = LayoutAuditor::audit_solution(problem, solution);
  EXPECT_TRUE(report.has(ViolationKind::kBandwidthOverflow));
}

// ---------------------------------------------------------------------------
// IncrementalState cross-checks (Eq. 1/2/3 recomputation).

TEST(StateAudit, FreshStatePasses) {
  const ScalableProblem problem = scalable_problem();
  const IncrementalState state(problem, lowest_rate_round_robin(problem));
  const AuditReport report = LayoutAuditor::audit_state(state);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(StateAudit, StateSurvivesAnEditSession) {
  const ScalableProblem problem = scalable_problem();
  IncrementalState state(problem, lowest_rate_round_robin(problem));
  state.set_bitrate(0, 1);
  state.add_replica(0, (state.replicas_of(0)[0] + 1) %
                           problem.cluster.num_servers);
  state.set_bitrate(3, 2);
  state.commit();
  const AuditReport report = LayoutAuditor::audit_state(state);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(StateAudit, InjectedStorageDriftCaught) {
  const ScalableProblem problem = scalable_problem();
  IncrementalState state(problem, lowest_rate_round_robin(problem));
  state.debug_inject_drift(/*server=*/1, /*storage_delta_bytes=*/1e9,
                           /*bandwidth_delta_bps=*/0.0);
  const AuditReport report = LayoutAuditor::audit_state(state);
  ASSERT_TRUE(report.has(ViolationKind::kCachedStorageDrift));
  EXPECT_FALSE(report.has(ViolationKind::kCachedBandwidthDrift));
  for (const Violation& v : report.violations) {
    if (v.kind == ViolationKind::kCachedStorageDrift) {
      EXPECT_EQ(v.server, 1u);
    }
  }
}

TEST(StateAudit, InjectedBandwidthDriftCaught) {
  const ScalableProblem problem = scalable_problem();
  IncrementalState state(problem, lowest_rate_round_robin(problem));
  state.debug_inject_drift(/*server=*/2, /*storage_delta_bytes=*/0.0,
                           /*bandwidth_delta_bps=*/units::mbps(50));
  const AuditReport report = LayoutAuditor::audit_state(state);
  EXPECT_TRUE(report.has(ViolationKind::kCachedBandwidthDrift));
  EXPECT_FALSE(report.has(ViolationKind::kCachedStorageDrift));
}

TEST(StateAudit, TinyFloatNoiseToleratedByDriftCheck) {
  const ScalableProblem problem = scalable_problem();
  IncrementalState state(problem, lowest_rate_round_robin(problem));
  // Well under the 1e-7 relative tolerance for byte-scale magnitudes.
  state.debug_inject_drift(/*server=*/0, /*storage_delta_bytes=*/1e-3,
                           /*bandwidth_delta_bps=*/1e-3);
  const AuditReport report = LayoutAuditor::audit_state(state);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// ---------------------------------------------------------------------------
// Heterogeneous placement audits through the shared structural checks.

TEST(HeteroAudit, WeightedGreedyOutputPasses) {
  const std::vector<double> popularity = zipf_popularity(12, 0.75);
  ReplicationPlan plan;
  plan.replicas.assign(12, 2);
  const std::vector<double> bandwidth = {units::gbps(1.0), units::gbps(2.0),
                                         units::gbps(1.5)};
  const std::vector<std::size_t> slots = {10, 10, 10};
  const Layout layout = weighted_greedy_place(plan, popularity, bandwidth,
                                              slots);
  LayoutAuditor::Limits limits;
  limits.num_servers = bandwidth.size();
  limits.capacity_per_server = 10;
  const AuditReport report =
      LayoutAuditor(limits).audit(layout, &plan, &popularity);
  EXPECT_TRUE(report.ok()) << report.summary();
}

}  // namespace
}  // namespace vodrep
