#include "src/core/greedy_scalable.h"

#include <gtest/gtest.h>

#include "src/core/sa_solver.h"
#include "src/util/error.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

ScalableProblem problem_of(double storage_gb, std::size_t videos = 12,
                           std::size_t servers = 4) {
  ScalableProblem p;
  p.videos.duration_sec = units::minutes(90);
  p.videos.popularity = zipf_popularity(videos, 0.75);
  p.cluster.num_servers = servers;
  p.cluster.bandwidth_bps_per_server = units::gbps(1.0);
  p.cluster.storage_bytes_per_server = units::gigabytes(storage_gb);
  p.ladder.rates_bps = {units::mbps(1), units::mbps(2), units::mbps(4),
                        units::mbps(8)};
  p.expected_peak_requests = 500.0;
  return p;
}

TEST(GreedyScalable, ImprovesOverTheInitialSolution) {
  const ScalableProblem p = problem_of(30.0);
  const double initial =
      solution_objective(p, lowest_rate_round_robin(p));
  const ScalableSolution greedy = greedy_scalable(p);
  EXPECT_GT(solution_objective(p, greedy), initial);
}

TEST(GreedyScalable, StorageStaysHardFeasible) {
  for (double storage : {3.0, 10.0, 30.0, 120.0}) {
    const ScalableProblem p = problem_of(storage);
    const ScalableSolution greedy = greedy_scalable(p);
    const ServerUsage usage = compute_usage(p, greedy);
    for (double bytes : usage.storage_bytes) {
      EXPECT_LE(bytes, p.cluster.storage_bytes_per_server * (1 + 1e-9))
          << "storage " << storage;
    }
    for (const auto& hosts : greedy.placement) {
      EXPECT_GE(hosts.size(), 1u);
      EXPECT_LE(hosts.size(), p.cluster.num_servers);
    }
  }
}

TEST(GreedyScalable, SaturatesAbundantStorage) {
  // With room for everything, greedy ends at full replication at the top
  // ladder rate.
  const ScalableProblem p = problem_of(1000.0);
  const ScalableSolution greedy = greedy_scalable(p);
  for (std::size_t video = 0; video < p.videos.count(); ++video) {
    EXPECT_EQ(greedy.bitrate_index[video], p.ladder.size() - 1);
    EXPECT_EQ(greedy.placement[video].size(), p.cluster.num_servers);
  }
}

TEST(GreedyScalable, TightStorageKeepsTheFloorSolution) {
  // Storage that barely fits the floor solution admits no upgrade.
  // 12 videos over 4 servers = 3 replicas/server at 0.675 GB each.
  const ScalableProblem p = problem_of(2.1);
  const ScalableSolution greedy = greedy_scalable(p);
  for (std::size_t video = 0; video < p.videos.count(); ++video) {
    EXPECT_EQ(greedy.bitrate_index[video], 0u);
    EXPECT_EQ(greedy.placement[video].size(), 1u);
  }
}

TEST(GreedyScalable, DeterministicAcrossCalls) {
  const ScalableProblem p = problem_of(30.0);
  const ScalableSolution a = greedy_scalable(p);
  const ScalableSolution b = greedy_scalable(p);
  EXPECT_EQ(a.bitrate_index, b.bitrate_index);
  EXPECT_EQ(a.placement, b.placement);
}

TEST(GreedyScalable, ComparableToSimulatedAnnealing) {
  // The greedy allocator is the sanity floor for SA: on a moderate
  // instance SA (multi-chain) should land at or above greedy minus a small
  // slack, and greedy must not be wildly worse than SA.
  const ScalableProblem p = problem_of(30.0);
  const double greedy = solution_objective(p, greedy_scalable(p));
  SaSolverOptions options;
  options.anneal.initial_temperature = 1.0;
  options.anneal.moves_per_temperature = 80;
  options.anneal.stall_steps = 25;
  options.chains = 3;
  const double sa = solve_scalable(p, 77, options).objective;
  EXPECT_GT(greedy, 0.5 * sa);
  EXPECT_GT(sa, 0.5 * greedy);
}

TEST(GreedyScalable, ThrowsWhenFloorDoesNotFit) {
  const ScalableProblem p = problem_of(0.5);  // < 3 floor replicas/server
  EXPECT_THROW((void)greedy_scalable(p), InfeasibleError);
}

}  // namespace
}  // namespace vodrep
