#include "src/online/controller.h"

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

ControllerConfig config_of(std::size_t servers = 4, std::size_t budget = 12,
                           std::size_t capacity = 3) {
  ControllerConfig config;
  config.num_servers = servers;
  config.budget = budget;
  config.capacity_per_server = capacity;
  return config;
}

TEST(AdaptiveController, InitialLayoutFollowsThePrior) {
  const auto prior = zipf_popularity(8, 1.0);
  const AdaptiveController controller(config_of(), prior);
  // id 0 is the prior's hottest video.
  EXPECT_GE(controller.plan().replicas[0], controller.plan().replicas[7]);
  EXPECT_NO_THROW(controller.layout().validate(controller.plan(), 4, 3));
}

TEST(AdaptiveController, AdaptsToInvertedPopularity) {
  const auto prior = zipf_popularity(8, 1.0);
  AdaptiveController controller(config_of(), prior);
  // Observed traffic is the mirror image of the prior: id 7 is hottest.
  std::vector<std::size_t> counts{1, 2, 4, 8, 16, 64, 256, 1024};
  for (int epoch = 0; epoch < 3; ++epoch) {
    controller.observe_epoch(counts);
    (void)controller.adapt();
  }
  EXPECT_GT(controller.plan().replicas[7], controller.plan().replicas[0]);
}

TEST(AdaptiveController, AdaptReturnsMigrationForLayoutChanges) {
  const auto prior = zipf_popularity(8, 1.0);
  AdaptiveController controller(config_of(), prior);
  std::vector<std::size_t> counts{0, 0, 0, 0, 0, 0, 0, 5000};
  controller.observe_epoch(counts);
  const AdaptationStep step = controller.adapt();
  EXPECT_TRUE(step.replanned);
  EXPECT_FALSE(step.migration.copies.empty());
  EXPECT_GT(step.estimate_shift_l1, 0.0);
}

TEST(AdaptiveController, ThresholdSuppressesNoiseReplans) {
  const auto prior = zipf_popularity(8, 1.0);
  ControllerConfig config = config_of();
  config.replan_threshold = 1.9;  // nearly total distribution change needed
  AdaptiveController controller(config, prior);
  // Traffic matching the prior: tiny estimate shift.
  std::vector<std::size_t> counts(8);
  for (std::size_t i = 0; i < 8; ++i) {
    counts[i] = static_cast<std::size_t>(10000.0 * prior[i]);
  }
  controller.observe_epoch(counts);
  const AdaptationStep step = controller.adapt();
  EXPECT_FALSE(step.replanned);
  EXPECT_TRUE(step.migration.copies.empty());
}

TEST(AdaptiveController, StableWorkloadConvergesToNoMigration) {
  const auto prior = zipf_popularity(10, 0.75);
  AdaptiveController controller(config_of(4, 14, 4), prior);
  std::vector<std::size_t> counts(10);
  for (std::size_t i = 0; i < 10; ++i) {
    counts[i] = static_cast<std::size_t>(100000.0 * prior[i]);
  }
  std::size_t last_copies = 999;
  for (int epoch = 0; epoch < 4; ++epoch) {
    controller.observe_epoch(counts);
    last_copies = controller.adapt().migration.copies.size();
  }
  // Once the estimate has converged to the (stationary) truth the
  // re-provisioned layout reproduces itself.
  EXPECT_EQ(last_copies, 0u);
}

TEST(AdaptiveController, LayoutStaysValidAcrossManyAdaptations) {
  const auto prior = zipf_popularity(12, 0.5);
  AdaptiveController controller(config_of(4, 18, 5), prior);
  Rng rng(9);
  for (int epoch = 0; epoch < 10; ++epoch) {
    std::vector<std::size_t> counts(12);
    for (auto& c : counts) c = rng.uniform_index(500);
    controller.observe_epoch(counts);
    (void)controller.adapt();
    ASSERT_NO_THROW(controller.layout().validate(controller.plan(), 4, 5));
  }
}

TEST(AdaptiveController, RejectsBadInput) {
  const auto prior = zipf_popularity(8, 1.0);
  ControllerConfig config = config_of();
  config.num_servers = 0;
  EXPECT_THROW(AdaptiveController(config, prior), InvalidArgumentError);

  AdaptiveController ok(config_of(), prior);
  EXPECT_THROW(ok.observe_epoch({1, 2}), InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
