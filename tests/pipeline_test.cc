#include "src/core/pipeline.h"

#include <gtest/gtest.h>

#include "src/core/model.h"
#include "src/util/error.h"

namespace vodrep {
namespace {

TEST(MakeReplicationPolicy, KnowsAllNames) {
  for (const char* name : {"adams", "zipf", "classification", "uniform"}) {
    const auto policy = make_replication_policy(name);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), name);
  }
  EXPECT_THROW((void)make_replication_policy("bogus"), InvalidArgumentError);
}

TEST(MakePlacementPolicy, KnowsAllNames) {
  for (const char* name : {"slf", "round-robin", "best-fit"}) {
    const auto policy = make_placement_policy(name);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), name);
  }
  EXPECT_THROW((void)make_placement_policy("bogus"), InvalidArgumentError);
}

TEST(Provision, ProducesConsistentValidatedResult) {
  const FixedRateProblem problem = make_paper_problem(0.75, 1.2, 60, 8);
  const auto replication = make_replication_policy("adams");
  const auto placement = make_placement_policy("slf");
  const ProvisioningResult result = provision(problem, *replication, *placement);
  EXPECT_EQ(result.plan.num_videos(), 60u);
  EXPECT_EQ(result.layout.num_videos(), 60u);
  EXPECT_EQ(result.expected_loads.size(), 8u);
  EXPECT_GT(result.max_weight, 0.0);
  EXPECT_GE(result.spread_bound, 0.0);
  // Loads conserve total popularity.
  double total = 0.0;
  for (double l : result.expected_loads) total += l;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Provision, BudgetOverrideLimitsReplicas) {
  const FixedRateProblem problem = make_paper_problem(0.75, 1.8, 60, 8);
  const auto replication = make_replication_policy("adams");
  const auto placement = make_placement_policy("slf");
  const ProvisioningResult result =
      provision(problem, *replication, *placement, /*budget_override=*/66);
  EXPECT_EQ(result.plan.total_replicas(), 66u);
}

TEST(Provision, OverrideBeyondStorageThrows) {
  const FixedRateProblem problem = make_paper_problem(0.75, 1.0, 60, 8);
  const auto replication = make_replication_policy("adams");
  const auto placement = make_placement_policy("slf");
  EXPECT_THROW((void)provision(problem, *replication, *placement, 100000),
               InvalidArgumentError);
}

TEST(Provision, AllPolicyCombinationsProduceValidLayouts) {
  const FixedRateProblem problem = make_paper_problem(0.75, 1.4, 50, 8);
  for (const char* repl : {"adams", "zipf", "classification", "uniform"}) {
    for (const char* place : {"slf", "round-robin", "best-fit"}) {
      const auto replication = make_replication_policy(repl);
      const auto placement = make_placement_policy(place);
      EXPECT_NO_THROW((void)provision(problem, *replication, *placement))
          << repl << "+" << place;
    }
  }
}

}  // namespace
}  // namespace vodrep
