#include "src/sim/striped_simulator.h"

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/util/units.h"

namespace vodrep {
namespace {

constexpr double kRate = units::mbps(4);

SimConfig config_of(std::size_t servers, double capacity,
                    double duration = 1000.0) {
  SimConfig config;
  config.num_servers = servers;
  config.bandwidth_bps_per_server = capacity;
  config.stream_bitrate_bps = kRate;
  config.video_duration_sec = duration;
  return config;
}

RequestTrace trace_of(std::vector<Request> requests, double horizon) {
  RequestTrace trace;
  trace.requests = std::move(requests);
  trace.horizon = horizon;
  return trace;
}

TEST(StripedSimulator, AdmitsAndSplitsShares) {
  const StripedLayout layout = make_striped_layout(1, 4, 4);
  const SimResult result =
      simulate_striped(layout, config_of(4, 2 * kRate),
                       trace_of({Request{1.0, 0}}, 50.0));
  EXPECT_EQ(result.rejected, 0u);
  // Every server participated in the single stream.
  for (std::size_t served : result.served_per_server) EXPECT_EQ(served, 1u);
}

TEST(StripedSimulator, WideStripingPoolsClusterBandwidth) {
  // 2 servers of 2-stream capacity: striped k=2 admits 4 concurrent
  // streams of ANY video mix — no placement can reject below the pooled
  // capacity.
  const StripedLayout layout = make_striped_layout(3, 2, 2);
  std::vector<Request> requests;
  for (int i = 0; i < 4; ++i) {
    requests.push_back(Request{static_cast<double>(i), static_cast<std::size_t>(i % 3)});
  }
  requests.push_back(Request{10.0, 0});  // fifth concurrent stream
  const SimResult result = simulate_striped(layout, config_of(2, 2 * kRate),
                                            trace_of(requests, 50.0));
  EXPECT_EQ(result.rejected, 1u);
}

TEST(StripedSimulator, PerfectBalanceUnderWideStriping) {
  const StripedLayout layout = make_striped_layout(5, 4, 4);
  std::vector<Request> requests;
  for (int i = 0; i < 12; ++i) {
    requests.push_back(Request{static_cast<double>(i),
                               static_cast<std::size_t>(i % 5)});
  }
  const SimResult result = simulate_striped(layout, config_of(4, 100 * kRate),
                                            trace_of(requests, 50.0));
  EXPECT_NEAR(result.mean_imbalance_eq2, 0.0, 1e-9);
  EXPECT_NEAR(result.peak_imbalance_eq2, 0.0, 1e-9);
}

TEST(StripedSimulator, DeparturesFreeAllShares) {
  const StripedLayout layout = make_striped_layout(1, 2, 2);
  // Duration 10: both capacity slots cycle.
  SimConfig config = config_of(2, kRate, 10.0);
  const SimResult result = simulate_striped(
      layout, config,
      trace_of({Request{0.0, 0}, Request{1.0, 0}, Request{20.0, 0}}, 50.0));
  // Capacity is kRate per server, shares kRate/2: two concurrent fit.
  EXPECT_EQ(result.rejected, 0u);
}

TEST(StripedSimulator, FailureKillsEveryCoupledStream) {
  const StripedLayout layout = make_striped_layout(2, 4, 4);
  SimConfig config = config_of(4, 100 * kRate);
  config.failures = {ServerFailure{5.0, 2}};
  std::vector<Request> requests{Request{0.0, 0}, Request{1.0, 1},
                                Request{2.0, 0}};
  const SimResult result =
      simulate_striped(layout, config, trace_of(requests, 50.0));
  // Wide striping: every active stream touches server 2.
  EXPECT_EQ(result.disrupted, 3u);
}

TEST(StripedSimulator, FailureMakesCoupledVideosUnavailable) {
  const StripedLayout layout = make_striped_layout(2, 4, 2);
  // groups: video 0 -> {0,1}, video 1 -> {2,3}.
  SimConfig config = config_of(4, 100 * kRate);
  config.failures = {ServerFailure{5.0, 0}};
  std::vector<Request> requests{Request{10.0, 0}, Request{11.0, 1}};
  const SimResult result =
      simulate_striped(layout, config, trace_of(requests, 50.0));
  // Video 0 is unavailable after the crash; video 1 unaffected.
  EXPECT_EQ(result.rejected, 1u);
  EXPECT_EQ(result.disrupted, 0u);
}

TEST(StripedSimulator, NarrowStripingLimitsFailureBlastRadius) {
  const std::size_t n = 4;
  SimConfig config = config_of(n, 100 * kRate);
  config.failures = {ServerFailure{5.0, 0}};
  std::vector<Request> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back(Request{0.1 * i, static_cast<std::size_t>(i % 8)});
  }
  const SimResult wide = simulate_striped(
      make_striped_layout(8, n, n), config, trace_of(requests, 50.0));
  const SimResult narrow = simulate_striped(
      make_striped_layout(8, n, 2), config, trace_of(requests, 50.0));
  EXPECT_GT(wide.disrupted, narrow.disrupted);
}

TEST(StripedSimulator, RejectsMalformedInput) {
  const StripedLayout layout = make_striped_layout(1, 2, 2);
  RequestTrace bad = trace_of({Request{5.0, 0}, Request{1.0, 0}}, 50.0);
  EXPECT_THROW((void)simulate_striped(layout, config_of(2, kRate), bad),
               InvalidArgumentError);
  RequestTrace out_of_range = trace_of({Request{1.0, 7}}, 50.0);
  EXPECT_THROW(
      (void)simulate_striped(layout, config_of(2, kRate), out_of_range),
      InvalidArgumentError);
}

TEST(StripedSimulator, UtilizationAccountsShares) {
  const StripedLayout layout = make_striped_layout(1, 2, 2);
  // One stream of duration 10 over a 40-unit window, share kRate/2 on each
  // of two servers with capacity 2*kRate: utilization = (kRate/2 * 10) /
  // (2*kRate * 40) = 0.0625.
  SimConfig config = config_of(2, 2 * kRate, 10.0);
  const SimResult result =
      simulate_striped(layout, config, trace_of({Request{0.0, 0}}, 40.0));
  EXPECT_NEAR(result.utilization_per_server[0], 0.0625, 1e-9);
  EXPECT_NEAR(result.utilization_per_server[1], 0.0625, 1e-9);
}

}  // namespace
}  // namespace vodrep
