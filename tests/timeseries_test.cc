// TimeseriesCollector: the bounded fixed-interval sampler behind the run
// reports.  The load-bearing properties are determinism (the same record
// sequence yields a bit-identical series, compactions included), the
// uniform-grid invariant across compactions (keep every second sample,
// double the interval — survivors stay on a uniform grid starting at 0),
// and bounded annotation storage with drop accounting.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/obs/timeseries.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace vodrep::obs {
namespace {

TimeseriesConfig small_config(double interval, std::size_t max_samples) {
  TimeseriesConfig config;
  config.interval_sec = interval;
  config.max_samples = max_samples;
  return config;
}

/// Feeds `n` synthetic samples whose payloads encode the record index, so a
/// surviving sample identifies which record it came from.
void feed(TimeseriesCollector& collector, std::size_t n,
          std::size_t num_servers) {
  std::vector<double> util(num_servers);
  for (std::size_t i = 0; i < n; ++i) {
    const auto x = static_cast<double>(i);
    for (std::size_t s = 0; s < num_servers; ++s) {
      util[s] = x + static_cast<double>(s) / 100.0;
    }
    collector.record(/*eq2=*/x, /*mean_util=*/x / 2.0, /*max_util=*/x, i,
                     i / 3, util);
  }
}

TEST(TimeseriesConfigTest, RejectsInvalidConfigs) {
  EXPECT_THROW(small_config(0.0, 4).validate(), InvalidArgumentError);
  EXPECT_THROW(small_config(-1.0, 4).validate(), InvalidArgumentError);
  EXPECT_THROW(small_config(1.0, 0).validate(), InvalidArgumentError);
  EXPECT_THROW(small_config(1.0, 3).validate(), InvalidArgumentError);
  EXPECT_NO_THROW(small_config(1.0, 2).validate());
}

TEST(TimeseriesTest, RecordsOnAUniformGridStartingAtZero) {
  TimeseriesCollector collector(small_config(2.5, 8), 2);
  EXPECT_DOUBLE_EQ(collector.next_due(), 0.0);
  feed(collector, 4, 2);
  ASSERT_EQ(collector.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(collector.sample(i).time, 2.5 * static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(collector.next_due(), 10.0);
  EXPECT_EQ(collector.downsample_factor(), 1u);
  EXPECT_DOUBLE_EQ(collector.interval_sec(), 2.5);
}

TEST(TimeseriesTest, CompactionKeepsEvenIndicesAndDoublesInterval) {
  // interval 1, capacity 4: records 0..7 compact twice.  Trace by hand:
  //   0,1,2,3 fill the buffer; record 4 compacts to [0,2] (interval 2) and
  //   appends at t=4; record 5 appends at t=6; record 6 compacts to [0,4]
  //   (interval 4) and appends at t=8; record 7 appends at t=12.
  TimeseriesCollector collector(small_config(1.0, 4), 1);
  feed(collector, 8, 1);
  ASSERT_EQ(collector.size(), 4u);
  EXPECT_EQ(collector.downsample_factor(), 4u);
  EXPECT_DOUBLE_EQ(collector.interval_sec(), 4.0);
  const std::vector<double> expected_times = {0.0, 4.0, 8.0, 12.0};
  const std::vector<double> expected_payloads = {0.0, 4.0, 6.0, 7.0};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(collector.sample(i).time, expected_times[i]) << i;
    EXPECT_DOUBLE_EQ(collector.sample(i).imbalance_eq2, expected_payloads[i])
        << i;
  }
  // The grid stays uniform after compaction: consecutive surviving times
  // differ by exactly the (doubled) interval.
  for (std::size_t i = 1; i < collector.size(); ++i) {
    EXPECT_DOUBLE_EQ(collector.sample(i).time - collector.sample(i - 1).time,
                     collector.interval_sec())
        << i;
  }
}

TEST(TimeseriesTest, DownsamplingIsDeterministic) {
  // Two collectors driven the way the engine drives them — record only when
  // the next sample is due — must hold bit-identical samples through every
  // compaction.  After compaction the interval doubles, so the driver
  // records half as often; the final factor is the smallest power of two
  // that fits the horizon in the buffer.
  constexpr std::size_t kServers = 3;
  constexpr double kHorizon = 1000.0;
  TimeseriesCollector a(small_config(0.5, 16), kServers);
  TimeseriesCollector b(small_config(0.5, 16), kServers);
  Rng rng_a(0x75AA);
  Rng rng_b(0x75AA);
  std::vector<double> util(kServers);
  auto drive = [&](TimeseriesCollector& collector, Rng& rng) {
    std::uint64_t requests = 0;
    while (collector.next_due() <= kHorizon) {
      for (double& u : util) u = rng.uniform(0.0, 1.0);
      collector.record(rng.uniform(0.0, 5.0), rng.uniform(0.0, 1.0),
                       rng.uniform(0.0, 1.0), requests, requests / 7, util);
      ++requests;
    }
  };
  drive(a, rng_a);
  drive(b, rng_b);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.downsample_factor(), b.downsample_factor());
  EXPECT_DOUBLE_EQ(a.interval_sec(), b.interval_sec());
  EXPECT_EQ(a.samples(), b.samples());
  // 2000 fine-grid points into 16 slots: the interval doubles 0.5 -> 64
  // (factor 128), leaving a full buffer on the 64 s grid.
  EXPECT_EQ(a.downsample_factor(), 128u);
  EXPECT_DOUBLE_EQ(a.interval_sec(), 64.0);
  ASSERT_EQ(a.size(), 16u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.sample(i).time,
                     64.0 * static_cast<double>(i));
  }
}

TEST(TimeseriesTest, TimeOffsetConcatenatesEpochs) {
  TimeseriesCollector collector(small_config(10.0, 8), 1);
  feed(collector, 2, 1);  // epoch 0: samples at global 0, 10
  EXPECT_DOUBLE_EQ(collector.next_due(), 20.0);
  collector.set_time_offset(100.0);
  // The schedule is global: with the offset applied the next sample is due
  // at engine-local 20 - 100... except next_due_global_ stays at 20, so the
  // engine-local due time is negative and any epoch-1 event triggers it.
  // The stored time remains the global one.
  EXPECT_DOUBLE_EQ(collector.next_due(), 20.0 - 100.0);
  EXPECT_DOUBLE_EQ(collector.time_offset(), 100.0);
  std::vector<double> util = {0.25};
  collector.record(1.0, 0.25, 0.25, 5, 0, util);
  ASSERT_EQ(collector.size(), 3u);
  EXPECT_DOUBLE_EQ(collector.sample(2).time, 20.0);
}

TEST(TimeseriesTest, AnnotationsAreBoundedWithDropAccounting) {
  TimeseriesConfig config = small_config(1.0, 4);
  config.max_annotations = 2;
  TimeseriesCollector collector(config, 1);
  collector.annotate(10.0, "replan");
  collector.annotate(20.0, "replan_skipped");
  collector.annotate(30.0, "replan");
  collector.annotate(40.0, "replan");
  ASSERT_EQ(collector.annotations().size(), 2u);
  EXPECT_EQ(collector.annotations_dropped(), 2u);
  EXPECT_DOUBLE_EQ(collector.annotations()[0].time, 10.0);
  EXPECT_EQ(collector.annotations()[0].label, "replan");
  EXPECT_EQ(collector.annotations()[1].label, "replan_skipped");
}

TEST(TimeseriesTest, JsonExportIsColumnarAndSized) {
  TimeseriesCollector collector(small_config(1.0, 8), 2);
  feed(collector, 5, 2);
  collector.annotate(3.0, "replan");
  const JsonValue json = collector.to_json();
  EXPECT_EQ(json.at("num_samples").as_uint(), 5u);
  EXPECT_EQ(json.at("downsample_factor").as_uint(), 1u);
  for (const char* key : {"time", "imbalance_eq2", "mean_utilization",
                          "max_utilization", "requests", "rejected"}) {
    EXPECT_EQ(json.at(key).size(), 5u) << key;
  }
  ASSERT_EQ(json.at("utilization_per_server").size(), 2u);
  for (const JsonValue& series : json.at("utilization_per_server").items()) {
    EXPECT_EQ(series.size(), 5u);
  }
  // Column values line up with the recorded samples.
  EXPECT_DOUBLE_EQ(json.at("time").items()[3].as_number(), 3.0);
  EXPECT_DOUBLE_EQ(json.at("imbalance_eq2").items()[3].as_number(), 3.0);
  EXPECT_EQ(json.at("requests").items()[4].as_uint(), 4u);

  const JsonValue annotations = collector.annotations_json();
  ASSERT_EQ(annotations.size(), 1u);
  EXPECT_DOUBLE_EQ(annotations.items()[0].at("t").as_number(), 3.0);
  EXPECT_EQ(annotations.items()[0].at("label").as_string(), "replan");
}

}  // namespace
}  // namespace vodrep::obs
