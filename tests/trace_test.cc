#include "src/workload/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/util/error.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

TraceSpec paper_like_spec(double rate_per_min = 20.0) {
  TraceSpec spec;
  spec.arrival_rate = units::per_minute(rate_per_min);
  spec.horizon = units::minutes(90);
  spec.popularity = zipf_popularity(50, 0.75);
  return spec;
}

TEST(GenerateTrace, ProducesWellFormedTrace) {
  Rng rng(1);
  const RequestTrace trace = generate_trace(rng, paper_like_spec());
  EXPECT_TRUE(trace.is_well_formed());
  EXPECT_DOUBLE_EQ(trace.horizon, units::minutes(90));
  EXPECT_GT(trace.size(), 0u);
}

TEST(GenerateTrace, RequestVolumeMatchesRate) {
  Rng rng(2);
  double total = 0.0;
  const int reps = 50;
  for (int i = 0; i < reps; ++i) {
    total += static_cast<double>(generate_trace(rng, paper_like_spec(20)).size());
  }
  // 20 req/min over 90 min = 1800 expected requests.
  EXPECT_NEAR(total / reps, 1800.0, 30.0);
}

TEST(GenerateTrace, VideoChoicesFollowPopularity) {
  Rng rng(3);
  TraceSpec spec = paper_like_spec(400.0);  // dense trace for tight stats
  const RequestTrace trace = generate_trace(rng, spec);
  const auto counts = trace.video_counts(spec.popularity.size());
  const auto total = static_cast<double>(trace.size());
  EXPECT_NEAR(static_cast<double>(counts[0]) / total, spec.popularity[0], 0.01);
  EXPECT_NEAR(static_cast<double>(counts[5]) / total, spec.popularity[5], 0.01);
}

TEST(GenerateTrace, DeterministicGivenSeed) {
  Rng a(4);
  Rng b(4);
  const auto t1 = generate_trace(a, paper_like_spec());
  const auto t2 = generate_trace(b, paper_like_spec());
  EXPECT_EQ(t1.requests, t2.requests);
}

TEST(GenerateTrace, EmptyPopularityThrows) {
  Rng rng(5);
  TraceSpec spec;
  spec.arrival_rate = 1.0;
  spec.horizon = 10.0;
  EXPECT_THROW((void)generate_trace(rng, spec), InvalidArgumentError);
}

TEST(RequestTrace, VideoCountsRejectOutOfRangeIds) {
  RequestTrace trace;
  trace.horizon = 10.0;
  trace.requests.push_back(Request{1.0, 5});
  EXPECT_THROW((void)trace.video_counts(3), InvalidArgumentError);
}

TEST(RequestTrace, WellFormedDetectsViolations) {
  RequestTrace trace;
  trace.horizon = 10.0;
  trace.requests = {Request{1.0, 0}, Request{2.0, 1}};
  EXPECT_TRUE(trace.is_well_formed());
  trace.requests = {Request{2.0, 0}, Request{1.0, 1}};  // out of order
  EXPECT_FALSE(trace.is_well_formed());
  trace.requests = {Request{11.0, 0}};  // beyond horizon
  EXPECT_FALSE(trace.is_well_formed());
}

TEST(GenerateTrace, DefaultModelWatchesEverything) {
  Rng rng(21);
  const RequestTrace trace = generate_trace(rng, paper_like_spec());
  for (const Request& r : trace.requests) {
    EXPECT_DOUBLE_EQ(r.watch_fraction, 1.0);
  }
}

TEST(GenerateTrace, AbandonmentProducesPartialWatches) {
  Rng rng(22);
  TraceSpec spec = paper_like_spec(100.0);
  spec.abandonment.completion_probability = 0.4;
  spec.abandonment.min_partial_fraction = 0.1;
  const RequestTrace trace = generate_trace(rng, spec);
  std::size_t partial = 0;
  for (const Request& r : trace.requests) {
    EXPECT_GT(r.watch_fraction, 0.0);
    EXPECT_LE(r.watch_fraction, 1.0);
    if (r.watch_fraction < 1.0) {
      EXPECT_GE(r.watch_fraction, 0.1);
      ++partial;
    }
  }
  // Roughly 60% abandon.
  const double frac =
      static_cast<double>(partial) / static_cast<double>(trace.size());
  EXPECT_NEAR(frac, 0.6, 0.05);
}

TEST(AbandonmentModel, ValidatesParameters) {
  AbandonmentModel model;
  EXPECT_NO_THROW(model.validate());
  model.completion_probability = 1.5;
  EXPECT_THROW(model.validate(), InvalidArgumentError);
  model.completion_probability = 0.5;
  model.min_partial_fraction = 0.0;
  EXPECT_THROW(model.validate(), InvalidArgumentError);
}

TEST(TraceSerialization, WatchFractionsRoundTrip) {
  Rng rng(23);
  TraceSpec spec = paper_like_spec();
  spec.abandonment.completion_probability = 0.5;
  const RequestTrace original = generate_trace(rng, spec);
  std::stringstream ss;
  save_trace(ss, original);
  const RequestTrace loaded = load_trace(ss);
  EXPECT_EQ(loaded.requests, original.requests);
}

TEST(TraceSerialization, RejectsOutOfRangeWatchFraction) {
  std::stringstream ss("vodrep-trace 1 10\n0.5 0 1.5\n");
  EXPECT_THROW((void)load_trace(ss), InvalidArgumentError);
}

TEST(TraceSerialization, RoundTripsExactly) {
  Rng rng(6);
  const RequestTrace original = generate_trace(rng, paper_like_spec());
  std::stringstream ss;
  save_trace(ss, original);
  const RequestTrace loaded = load_trace(ss);
  EXPECT_EQ(loaded.horizon, original.horizon);
  EXPECT_EQ(loaded.requests, original.requests);
}

TEST(TraceSerialization, RejectsBadHeader) {
  std::stringstream ss("not-a-trace 1 10\n0.5 0\n");
  EXPECT_THROW((void)load_trace(ss), InvalidArgumentError);
}

TEST(TraceSerialization, RejectsTruncatedBody) {
  std::stringstream ss("vodrep-trace 3 10\n0.5 0\n");
  EXPECT_THROW((void)load_trace(ss), InvalidArgumentError);
}

TEST(TraceSerialization, EmptyTraceRoundTrips) {
  RequestTrace empty;
  empty.horizon = 42.0;
  std::stringstream ss;
  save_trace(ss, empty);
  const RequestTrace loaded = load_trace(ss);
  EXPECT_TRUE(loaded.empty());
  EXPECT_DOUBLE_EQ(loaded.horizon, 42.0);
}

}  // namespace
}  // namespace vodrep
