#include "src/workload/multiclass.h"

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/util/stats.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

MulticlassSpec two_class_spec() {
  MulticlassSpec spec;
  spec.segment_sec = 100.0;
  ClassProfile a;
  a.popularity_by_id = {1.0, 1.0, 0.0, 0.0};
  a.rate_per_segment = {1.0, 0.0, 0.0};
  ClassProfile b;
  b.popularity_by_id = {0.0, 0.0, 1.0, 1.0};
  b.rate_per_segment = {0.0, 0.0, 2.0};
  spec.classes = {a, b};
  return spec;
}

TEST(MulticlassSpec, DimensionsAndValidation) {
  const MulticlassSpec spec = two_class_spec();
  EXPECT_EQ(spec.num_segments(), 3u);
  EXPECT_DOUBLE_EQ(spec.horizon(), 300.0);
  EXPECT_NO_THROW(spec.validate());
}

TEST(MulticlassSpec, RejectsInconsistentClasses) {
  MulticlassSpec spec = two_class_spec();
  spec.classes[1].rate_per_segment.pop_back();
  EXPECT_THROW(spec.validate(), InvalidArgumentError);

  spec = two_class_spec();
  spec.classes[1].popularity_by_id.pop_back();
  EXPECT_THROW(spec.validate(), InvalidArgumentError);

  spec = two_class_spec();
  spec.classes[0].popularity_by_id.assign(4, 0.0);
  EXPECT_THROW(spec.validate(), InvalidArgumentError);

  spec = two_class_spec();
  spec.segment_sec = 0.0;
  EXPECT_THROW(spec.validate(), InvalidArgumentError);
}

TEST(GenerateMulticlassTrace, RequestsLandInTheRightSegments) {
  Rng rng(1);
  const RequestTrace trace = generate_multiclass_trace(rng, two_class_spec());
  EXPECT_TRUE(trace.is_well_formed());
  for (const Request& r : trace.requests) {
    if (r.arrival_time < 100.0) {
      EXPECT_LT(r.video, 2u);  // class A only in segment 0
    } else if (r.arrival_time < 200.0) {
      FAIL() << "segment 1 has zero rate for every class";
    } else {
      EXPECT_GE(r.video, 2u);  // class B only in segment 2
    }
  }
}

TEST(GenerateMulticlassTrace, VolumesMatchRates) {
  Rng rng(2);
  OnlineStats class_a;
  OnlineStats class_b;
  for (int rep = 0; rep < 100; ++rep) {
    const RequestTrace trace =
        generate_multiclass_trace(rng, two_class_spec());
    std::size_t a = 0;
    std::size_t b = 0;
    for (const Request& r : trace.requests) (r.video < 2 ? a : b) += 1;
    class_a.add(static_cast<double>(a));
    class_b.add(static_cast<double>(b));
  }
  EXPECT_NEAR(class_a.mean(), 100.0, 5.0);   // 1/s * 100 s
  EXPECT_NEAR(class_b.mean(), 200.0, 8.0);   // 2/s * 100 s
}

TEST(GenerateMulticlassTrace, ClassPopularityIsRespected) {
  MulticlassSpec spec = two_class_spec();
  spec.classes[0].popularity_by_id = {3.0, 1.0, 0.0, 0.0};
  Rng rng(3);
  std::size_t hot = 0;
  std::size_t cold = 0;
  for (int rep = 0; rep < 50; ++rep) {
    const RequestTrace trace = generate_multiclass_trace(rng, spec);
    for (const Request& r : trace.requests) {
      if (r.video == 0) ++hot;
      if (r.video == 1) ++cold;
    }
  }
  EXPECT_NEAR(static_cast<double>(hot) / static_cast<double>(hot + cold),
              0.75, 0.03);
}

TEST(GenerateMulticlassTrace, DeterministicGivenSeed) {
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(generate_multiclass_trace(a, two_class_spec()).requests,
            generate_multiclass_trace(b, two_class_spec()).requests);
}

TEST(SinglePeakProfile, ShapesAsRequested) {
  const auto profile = single_peak_profile(6, 2, 4, 1.0, 5.0);
  EXPECT_EQ(profile, (std::vector<double>{1.0, 1.0, 5.0, 5.0, 1.0, 1.0}));
  EXPECT_THROW((void)single_peak_profile(4, 3, 2, 1.0, 5.0),
               InvalidArgumentError);
  EXPECT_THROW((void)single_peak_profile(4, 1, 5, 1.0, 5.0),
               InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
