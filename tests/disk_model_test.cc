#include "src/disk/disk_model.h"

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/util/units.h"

namespace vodrep {
namespace {

StorageSubsystem default_subsystem() {
  StorageSubsystem subsystem;  // 8x 2002 SCSI disks, R = 1 s, 1 GB memory
  return subsystem;
}

TEST(PerStreamDiskTime, HandComputation) {
  DiskSpec disk;
  disk.avg_seek_sec = 0.005;
  disk.avg_rotational_sec = 0.004;
  disk.transfer_bps = 400e6;
  // Segment: 4 Mb/s * 1 s = 4e6 bits; transfer 0.01 s; total 0.019 s.
  EXPECT_NEAR(per_stream_disk_time(disk, units::mbps(4), 1.0), 0.019, 1e-12);
}

TEST(PerStreamDiskTime, LongerRoundsAmortizeSeeks) {
  DiskSpec disk;
  // Per-round time grows sublinearly: t(2R) < 2 t(R) whenever seek+rot > 0.
  const double t1 = per_stream_disk_time(disk, units::mbps(4), 1.0);
  const double t2 = per_stream_disk_time(disk, units::mbps(4), 2.0);
  EXPECT_LT(t2, 2.0 * t1);
}

TEST(MaxStreamsDisk, ScalesWithArraySize) {
  StorageSubsystem subsystem = default_subsystem();
  subsystem.num_disks = 1;
  const std::size_t one = max_streams_disk(subsystem, units::mbps(4));
  subsystem.num_disks = 8;
  EXPECT_EQ(max_streams_disk(subsystem, units::mbps(4)), 8 * one);
  // Circa-2002 SCSI at R = 1 s: t ~ 5 + 4.17 + 12.5 ms -> ~46 per disk.
  EXPECT_NEAR(static_cast<double>(one), 46.0, 2.0);
}

TEST(MaxStreamsMemory, DoubleBufferingMath) {
  StorageSubsystem subsystem = default_subsystem();
  subsystem.memory_bytes = units::gigabytes(1);
  // Segment = 0.5 MB at 4 Mb/s, R = 1 s; 2 segments/stream -> 1e9 / 1e6.
  EXPECT_EQ(max_streams_memory(subsystem, units::mbps(4)), 1000u);
}

TEST(ServerCapacity, PaperConfigurationIsNetworkBound) {
  // 12 contemporary disks out-deliver the 1.8 Gb/s link: the paper's
  // bottleneck assumption holds.
  StorageSubsystem subsystem = default_subsystem();
  subsystem.num_disks = 12;
  const ServerCapacityBreakdown capacity =
      server_capacity(subsystem, units::gbps(1.8), units::mbps(4));
  EXPECT_EQ(capacity.network_streams, 450u);
  EXPECT_GT(capacity.disk_streams, capacity.network_streams);
  EXPECT_GT(capacity.memory_streams, capacity.network_streams);
  EXPECT_STREQ(capacity.bottleneck(), "network");
  EXPECT_EQ(capacity.sustainable(), 450u);
}

TEST(ServerCapacity, SmallArrayIsDiskBound) {
  StorageSubsystem subsystem = default_subsystem();
  subsystem.num_disks = 2;
  const ServerCapacityBreakdown capacity =
      server_capacity(subsystem, units::gbps(1.8), units::mbps(4));
  EXPECT_LT(capacity.disk_streams, capacity.network_streams);
  EXPECT_STREQ(capacity.bottleneck(), "disk");
}

TEST(ServerCapacity, TinyMemoryIsMemoryBound) {
  StorageSubsystem subsystem = default_subsystem();
  subsystem.num_disks = 24;
  subsystem.memory_bytes = 50e6;  // 50 MB -> 50 streams
  const ServerCapacityBreakdown capacity =
      server_capacity(subsystem, units::gbps(1.8), units::mbps(4));
  EXPECT_STREQ(capacity.bottleneck(), "memory");
  EXPECT_EQ(capacity.sustainable(), capacity.memory_streams);
}

TEST(BestRoundLength, GrowsWithMemoryBudget) {
  StorageSubsystem subsystem = default_subsystem();
  subsystem.num_disks = 12;
  subsystem.memory_bytes = units::gigabytes(0.25);
  const double small = best_round_length(subsystem, units::mbps(4));
  subsystem.memory_bytes = units::gigabytes(4.0);
  const double large = best_round_length(subsystem, units::mbps(4));
  EXPECT_GE(large, small);
}

TEST(BestRoundLength, BeatsTheDefaultRound) {
  StorageSubsystem subsystem = default_subsystem();
  subsystem.num_disks = 12;
  subsystem.memory_bytes = units::gigabytes(4.0);
  const double best = best_round_length(subsystem, units::mbps(4));
  StorageSubsystem tuned = subsystem;
  tuned.round_sec = best;
  const auto streams_at = [&](const StorageSubsystem& s) {
    return std::min(max_streams_disk(s, units::mbps(4)),
                    max_streams_memory(s, units::mbps(4)));
  };
  EXPECT_GE(streams_at(tuned), streams_at(subsystem));
}

TEST(DiskModel, Validation) {
  DiskSpec disk;
  disk.transfer_bps = 0.0;
  EXPECT_THROW(disk.validate(), InvalidArgumentError);
  StorageSubsystem subsystem = default_subsystem();
  subsystem.num_disks = 0;
  EXPECT_THROW(subsystem.validate(), InvalidArgumentError);
  subsystem = default_subsystem();
  subsystem.round_sec = 0.0;
  EXPECT_THROW(subsystem.validate(), InvalidArgumentError);
  EXPECT_THROW((void)per_stream_disk_time(DiskSpec{}, 0.0, 1.0),
               InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
