#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/json_lite.h"

namespace vodrep::obs {
namespace {

/// Busy-waits so a span's duration strictly exceeds the clock resolution.
void spin_ns(std::uint64_t ns) {
  const std::uint64_t until = TraceRecorder::now_ns() + ns;
  while (TraceRecorder::now_ns() < until) {
  }
}

/// The recorder under test is the global one (ScopedTimer hard-wires it),
/// so every test starts from a cleared, enabled recorder and leaves it
/// disabled and empty.
class TraceEventTest : public ::testing::Test {
 protected:
  void SetUp() override {
    recorder().set_enabled(false);
    recorder().clear();
  }
  void TearDown() override {
    recorder().set_enabled(false);
    recorder().clear();
  }
  static TraceRecorder& recorder() { return TraceRecorder::global(); }
};

TEST_F(TraceEventTest, SpansNestWithMonotonicTimestamps) {
  recorder().set_enabled(true);
  {
    VODREP_TRACE_SCOPE("outer");
    spin_ns(2'000);
    {
      VODREP_TRACE_SCOPE("inner_a");
      spin_ns(2'000);
    }
    {
      VODREP_TRACE_SCOPE("inner_b");
      spin_ns(2'000);
    }
    spin_ns(2'000);
  }
  const std::vector<TraceEvent> events = recorder().events();
  ASSERT_EQ(events.size(), 3u);  // children destruct (record) before outer
  const TraceEvent& inner_a = events[0];
  const TraceEvent& inner_b = events[1];
  const TraceEvent& outer = events[2];
  EXPECT_STREQ(inner_a.name, "inner_a");
  EXPECT_STREQ(inner_b.name, "inner_b");
  EXPECT_STREQ(outer.name, "outer");

  // Monotonic starts: outer opened first, inner_a before inner_b.
  EXPECT_LE(outer.ts_ns, inner_a.ts_ns);
  EXPECT_LE(inner_a.ts_ns + inner_a.dur_ns, inner_b.ts_ns);

  // Nesting: both children lie inside the outer span, and the outer
  // duration covers at least the sum of its children.
  EXPECT_GE(inner_a.ts_ns, outer.ts_ns);
  EXPECT_LE(inner_b.ts_ns + inner_b.dur_ns, outer.ts_ns + outer.dur_ns);
  EXPECT_GE(outer.dur_ns, inner_a.dur_ns + inner_b.dur_ns);
}

TEST_F(TraceEventTest, JsonParsesAndRoundTrips) {
  recorder().set_enabled(true);
  {
    VODREP_TRACE_SCOPE("span_one");
    spin_ns(1'500);
  }
  {
    VODREP_TRACE_SCOPE("span_two");
    spin_ns(1'500);
  }
  const std::string json = recorder().to_json();
  const JsonValue root = parse_json(json);
  const JsonValue& trace_events = root.at("traceEvents");
  ASSERT_EQ(trace_events.size(), 2u);
  for (const JsonValue& event : trace_events.items()) {
    EXPECT_EQ(event.at("ph").as_string(), "X");
    EXPECT_EQ(event.at("pid").as_int(), 1);
    EXPECT_GE(event.at("tid").as_int(), 0);
    EXPECT_GT(event.at("dur").as_number(), 0.0);  // spun >= 1.5 us
    EXPECT_GE(event.at("ts").as_number(), 0.0);
  }
  EXPECT_EQ(trace_events.items()[0].at("name").as_string(), "span_one");
  EXPECT_EQ(trace_events.items()[1].at("name").as_string(), "span_two");
  EXPECT_EQ(root.at("otherData").at("recorded").as_uint(), 2u);

  // Round trip: parse(dump(parse(json))) is structurally identical.
  const JsonValue reparsed = parse_json(root.dump());
  EXPECT_EQ(root, reparsed);
}

TEST_F(TraceEventTest, DisabledRecorderDoesNoWorkAndNeverAllocates) {
  ASSERT_FALSE(recorder().enabled());
  for (int i = 0; i < 10'000; ++i) {
    VODREP_TRACE_SCOPE("dead");
  }
  EXPECT_EQ(recorder().events_recorded(), 0u);
  EXPECT_EQ(recorder().events_dropped(), 0u);
  EXPECT_EQ(recorder().buffer_grows(), 0u);
  EXPECT_TRUE(recorder().events().empty());
}

TEST_F(TraceEventTest, EnabledRecorderStaysWithinItsReservedCapacity) {
  recorder().set_enabled(true, /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    VODREP_TRACE_SCOPE("bounded");
  }
  EXPECT_EQ(recorder().events_recorded(), 4u);
  EXPECT_EQ(recorder().events_dropped(), 6u);
  // The whole point of the up-front reserve: recording never re-allocates
  // the buffer, even at capacity.
  EXPECT_EQ(recorder().buffer_grows(), 0u);
  EXPECT_EQ(recorder().events().size(), 4u);
}

TEST_F(TraceEventTest, DisablingMidSpanDropsTheInFlightSpan) {
  recorder().set_enabled(true);
  {
    ScopedTimer timer("armed_then_disabled");
    recorder().set_enabled(false);
    // Disabling stops recording immediately: the armed span's closing
    // record is refused, so a consumer that disables before export never
    // sees half-open activity from threads still inside spans.
  }
  EXPECT_EQ(recorder().events_recorded(), 0u);

  // Events buffered *before* the disable do survive for export.
  recorder().set_enabled(true);
  {
    VODREP_TRACE_SCOPE("kept");
  }
  recorder().set_enabled(false);
  EXPECT_EQ(recorder().events_recorded(), 1u);
  EXPECT_EQ(recorder().events().size(), 1u);
}

TEST_F(TraceEventTest, ClearResetsEventsAndInstrumentCounters) {
  recorder().set_enabled(true);
  {
    VODREP_TRACE_SCOPE("gone");
  }
  ASSERT_EQ(recorder().events_recorded(), 1u);
  recorder().clear();
  EXPECT_EQ(recorder().events_recorded(), 0u);
  EXPECT_EQ(recorder().events_dropped(), 0u);
  EXPECT_TRUE(recorder().events().empty());
  const JsonValue root = parse_json(recorder().to_json());
  EXPECT_EQ(root.at("traceEvents").size(), 0u);
}

}  // namespace
}  // namespace vodrep::obs
