#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json_lite.h"

namespace vodrep::obs {
namespace {

/// Busy-waits so a span's duration strictly exceeds the clock resolution.
void spin_ns(std::uint64_t ns) {
  const std::uint64_t until = TraceRecorder::now_ns() + ns;
  while (TraceRecorder::now_ns() < until) {
  }
}

/// The recorder under test is the global one (ScopedTimer hard-wires it),
/// so every test starts from a cleared, enabled recorder and leaves it
/// disabled and empty.
class TraceEventTest : public ::testing::Test {
 protected:
  void SetUp() override {
    recorder().set_enabled(false);
    recorder().clear();
  }
  void TearDown() override {
    recorder().set_enabled(false);
    recorder().clear();
  }
  static TraceRecorder& recorder() { return TraceRecorder::global(); }
};

TEST_F(TraceEventTest, SpansNestWithMonotonicTimestamps) {
  recorder().set_enabled(true);
  {
    VODREP_TRACE_SCOPE("outer");
    spin_ns(2'000);
    {
      VODREP_TRACE_SCOPE("inner_a");
      spin_ns(2'000);
    }
    {
      VODREP_TRACE_SCOPE("inner_b");
      spin_ns(2'000);
    }
    spin_ns(2'000);
  }
  // events() merges lanes sorted by start timestamp, so the outer span
  // (opened first) comes first even though it is *recorded* last, at
  // destruction.
  const std::vector<TraceEvent> events = recorder().events();
  ASSERT_EQ(events.size(), 3u);
  const TraceEvent& outer = events[0];
  const TraceEvent& inner_a = events[1];
  const TraceEvent& inner_b = events[2];
  EXPECT_STREQ(inner_a.name, "inner_a");
  EXPECT_STREQ(inner_b.name, "inner_b");
  EXPECT_STREQ(outer.name, "outer");

  // Monotonic starts: outer opened first, inner_a before inner_b.
  EXPECT_LE(outer.ts_ns, inner_a.ts_ns);
  EXPECT_LE(inner_a.ts_ns + inner_a.dur_ns, inner_b.ts_ns);

  // Nesting: both children lie inside the outer span, and the outer
  // duration covers at least the sum of its children.
  EXPECT_GE(inner_a.ts_ns, outer.ts_ns);
  EXPECT_LE(inner_b.ts_ns + inner_b.dur_ns, outer.ts_ns + outer.dur_ns);
  EXPECT_GE(outer.dur_ns, inner_a.dur_ns + inner_b.dur_ns);
}

TEST_F(TraceEventTest, JsonParsesAndRoundTrips) {
  recorder().set_enabled(true);
  {
    VODREP_TRACE_SCOPE("span_one");
    spin_ns(1'500);
  }
  {
    VODREP_TRACE_SCOPE("span_two");
    spin_ns(1'500);
  }
  const std::string json = recorder().to_json();
  const JsonValue root = parse_json(json);
  const JsonValue& trace_events = root.at("traceEvents");
  ASSERT_EQ(trace_events.size(), 2u);
  for (const JsonValue& event : trace_events.items()) {
    EXPECT_EQ(event.at("ph").as_string(), "X");
    EXPECT_EQ(event.at("pid").as_int(), 1);
    EXPECT_GE(event.at("tid").as_int(), 0);
    EXPECT_GT(event.at("dur").as_number(), 0.0);  // spun >= 1.5 us
    EXPECT_GE(event.at("ts").as_number(), 0.0);
  }
  EXPECT_EQ(trace_events.items()[0].at("name").as_string(), "span_one");
  EXPECT_EQ(trace_events.items()[1].at("name").as_string(), "span_two");
  EXPECT_EQ(root.at("otherData").at("recorded").as_uint(), 2u);

  // Round trip: parse(dump(parse(json))) is structurally identical.
  const JsonValue reparsed = parse_json(root.dump());
  EXPECT_EQ(root, reparsed);
}

TEST_F(TraceEventTest, DisabledRecorderDoesNoWorkAndNeverAllocates) {
  ASSERT_FALSE(recorder().enabled());
  for (int i = 0; i < 10'000; ++i) {
    VODREP_TRACE_SCOPE("dead");
  }
  EXPECT_EQ(recorder().events_recorded(), 0u);
  EXPECT_EQ(recorder().events_dropped(), 0u);
  EXPECT_EQ(recorder().buffer_grows(), 0u);
  EXPECT_TRUE(recorder().events().empty());
}

TEST_F(TraceEventTest, EnabledRecorderStaysWithinItsReservedCapacity) {
  recorder().set_enabled(true, /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    VODREP_TRACE_SCOPE("bounded");
  }
  EXPECT_EQ(recorder().events_recorded(), 4u);
  EXPECT_EQ(recorder().events_dropped(), 6u);
  // The whole point of the up-front reserve: recording never re-allocates
  // the buffer, even at capacity.
  EXPECT_EQ(recorder().buffer_grows(), 0u);
  EXPECT_EQ(recorder().events().size(), 4u);
}

TEST_F(TraceEventTest, DisablingMidSpanDropsTheInFlightSpan) {
  recorder().set_enabled(true);
  {
    ScopedTimer timer("armed_then_disabled");
    recorder().set_enabled(false);
    // Disabling stops recording immediately: the armed span's closing
    // record is refused, so a consumer that disables before export never
    // sees half-open activity from threads still inside spans.
  }
  EXPECT_EQ(recorder().events_recorded(), 0u);

  // Events buffered *before* the disable do survive for export.
  recorder().set_enabled(true);
  {
    VODREP_TRACE_SCOPE("kept");
  }
  recorder().set_enabled(false);
  EXPECT_EQ(recorder().events_recorded(), 1u);
  EXPECT_EQ(recorder().events().size(), 1u);
}

TEST_F(TraceEventTest, MergedEventsAreSortedByTimestampThenTid) {
  recorder().set_enabled(true);
  // Record out of timestamp order within one lane; the merge must not care.
  recorder().record_complete("late", /*ts_ns=*/300, /*dur_ns=*/1);
  recorder().record_complete("early", /*ts_ns=*/100, /*dur_ns=*/1);
  recorder().record_complete("mid", /*ts_ns=*/200, /*dur_ns=*/1);
  recorder().record_complete("mid_again", /*ts_ns=*/200, /*dur_ns=*/2);
  const std::vector<TraceEvent> events = recorder().events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_STREQ(events[0].name, "early");
  EXPECT_STREQ(events[1].name, "mid");
  EXPECT_STREQ(events[2].name, "mid_again");  // equal ts: recorded order kept
  EXPECT_STREQ(events[3].name, "late");
}

TEST_F(TraceEventTest, ClearResetsEventsAndInstrumentCounters) {
  recorder().set_enabled(true);
  {
    VODREP_TRACE_SCOPE("gone");
  }
  ASSERT_EQ(recorder().events_recorded(), 1u);
  recorder().clear();
  EXPECT_EQ(recorder().events_recorded(), 0u);
  EXPECT_EQ(recorder().events_dropped(), 0u);
  EXPECT_TRUE(recorder().events().empty());
  const JsonValue root = parse_json(recorder().to_json());
  EXPECT_EQ(root.at("traceEvents").size(), 0u);
}

/// Concurrency suite (runs under the tsan preset): per-thread lanes must
/// accept parallel recording without locks and merge deterministically.
class TraceRecorderThreadsTest : public TraceEventTest {};

TEST_F(TraceRecorderThreadsTest, ConcurrentRecordingMergesAllPublishedEvents) {
  recorder().set_enabled(true, /*capacity=*/4096);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kEventsPerThread = 1000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&go] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t i = 0; i < kEventsPerThread; ++i) {
        VODREP_TRACE_SCOPE("worker_span");
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Reads race with the writers on purpose: a merge must only ever see
  // fully published events (never a half-written slot).
  for (int i = 0; i < 50; ++i) {
    for (const TraceEvent& event : recorder().events()) {
      ASSERT_NE(event.name, nullptr);
      ASSERT_EQ(std::string(event.name), "worker_span");
    }
  }
  for (std::thread& thread : threads) thread.join();
  recorder().set_enabled(false);

  EXPECT_EQ(recorder().events_recorded(), kThreads * kEventsPerThread);
  EXPECT_EQ(recorder().events_dropped(), 0u);
  EXPECT_EQ(recorder().buffer_grows(), 0u);
  const std::vector<TraceEvent> events = recorder().events();
  ASSERT_EQ(events.size(), kThreads * kEventsPerThread);
  for (std::size_t i = 1; i < events.size(); ++i) {
    const bool ordered =
        events[i - 1].ts_ns < events[i].ts_ns ||
        (events[i - 1].ts_ns == events[i].ts_ns &&
         events[i - 1].tid <= events[i].tid);
    ASSERT_TRUE(ordered) << "merge not sorted by (ts, tid) at " << i;
  }
  // The merge is a pure function of the recorded spans: exporting twice
  // yields the identical sequence.
  const std::vector<TraceEvent> again = recorder().events();
  ASSERT_EQ(again.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(again[i].name, events[i].name);
    EXPECT_EQ(again[i].ts_ns, events[i].ts_ns);
    EXPECT_EQ(again[i].dur_ns, events[i].dur_ns);
    EXPECT_EQ(again[i].tid, events[i].tid);
  }
}

TEST_F(TraceRecorderThreadsTest, LaneOverflowDropsAndCountsPerThread) {
  recorder().set_enabled(true, /*capacity=*/8);
  constexpr std::size_t kThreads = 2;
  constexpr std::size_t kEventsPerThread = 20;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::size_t i = 0; i < kEventsPerThread; ++i) {
        VODREP_TRACE_SCOPE("overflow");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  recorder().set_enabled(false);
  // Each lane holds its own 8; the rest drop.  No lane ever grows.
  EXPECT_EQ(recorder().events_recorded(), kThreads * 8u);
  EXPECT_EQ(recorder().events_dropped(), kThreads * (kEventsPerThread - 8u));
  EXPECT_EQ(recorder().buffer_grows(), 0u);
  EXPECT_EQ(recorder().events().size(), kThreads * 8u);
}

}  // namespace
}  // namespace vodrep::obs
