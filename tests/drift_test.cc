#include "src/workload/drift.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/util/error.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

double sum_of(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(RankSwapDrift, PreservesTheValueMultiset) {
  Rng rng(1);
  const auto before = zipf_popularity(50, 0.75);
  auto after = apply_drift(rng, before, {DriftKind::kRankSwap, 0.2});
  auto sorted_before = before;
  std::sort(sorted_before.begin(), sorted_before.end());
  std::sort(after.begin(), after.end());
  EXPECT_EQ(after, sorted_before);
}

TEST(RankSwapDrift, ZeroIntensityIsIdentity) {
  Rng rng(2);
  const auto before = zipf_popularity(30, 0.75);
  EXPECT_EQ(apply_drift(rng, before, {DriftKind::kRankSwap, 0.0}), before);
}

TEST(RankSwapDrift, IntensityScalesChurn) {
  Rng rng(3);
  const auto base = zipf_popularity(100, 0.75);
  Rng rng_light(3);
  Rng rng_heavy(3);
  const auto light =
      apply_drift(rng_light, base, {DriftKind::kRankSwap, 0.02});
  const auto heavy =
      apply_drift(rng_heavy, base, {DriftKind::kRankSwap, 0.8});
  EXPECT_LT(ranking_churn(base, light), ranking_churn(base, heavy));
}

TEST(HotSwapDrift, PromotedVideoTopsTheChart) {
  Rng rng(4);
  const auto before = zipf_popularity(40, 0.75);
  const auto after = apply_drift(rng, before, {DriftKind::kHotSwap, 1.0});
  EXPECT_NEAR(sum_of(after), 1.0, 1e-9);
  // The new maximum is a video that was previously in the cold half.
  const auto max_it = std::max_element(after.begin(), after.end());
  const auto idx = static_cast<std::size_t>(max_it - after.begin());
  std::vector<double> sorted = before;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  EXPECT_LE(before[idx], sorted[before.size() / 2]);
}

TEST(HotSwapDrift, StaysNormalizedOverManyEpochs) {
  Rng rng(5);
  auto popularity = zipf_popularity(60, 0.75);
  for (int epoch = 0; epoch < 20; ++epoch) {
    popularity = apply_drift(rng, std::move(popularity),
                             {DriftKind::kHotSwap, 2.0});
    ASSERT_NEAR(sum_of(popularity), 1.0, 1e-9) << "epoch " << epoch;
  }
}

TEST(ApplyDrift, RejectsBadInput) {
  Rng rng(6);
  EXPECT_THROW((void)apply_drift(rng, {}, {DriftKind::kRankSwap, 0.1}),
               InvalidArgumentError);
  EXPECT_THROW(
      (void)apply_drift(rng, {1.0}, {DriftKind::kRankSwap, -1.0}),
      InvalidArgumentError);
}

TEST(RankingChurn, IdenticalVectorsHaveZeroChurn) {
  const auto p = zipf_popularity(20, 0.75);
  EXPECT_DOUBLE_EQ(ranking_churn(p, p), 0.0);
}

TEST(RankingChurn, FullReversalIsOne) {
  const std::vector<double> a{0.5, 0.3, 0.2};
  const std::vector<double> b{0.2, 0.3, 0.5};
  EXPECT_DOUBLE_EQ(ranking_churn(a, b), 1.0);
}

TEST(RankingChurn, SingleSwapCountsOnePair) {
  const std::vector<double> a{0.4, 0.3, 0.2, 0.1};
  std::vector<double> b = a;
  std::swap(b[0], b[1]);
  // One discordant pair out of C(4,2) = 6.
  EXPECT_NEAR(ranking_churn(a, b), 1.0 / 6.0, 1e-12);
}

TEST(RankingChurn, RejectsMismatchedSizes) {
  EXPECT_THROW((void)ranking_churn({1.0}, {0.5, 0.5}), InvalidArgumentError);
  EXPECT_THROW((void)ranking_churn({}, {}), InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
