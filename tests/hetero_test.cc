#include "src/hetero/hetero_cluster.h"
#include "src/hetero/hetero_placement.h"

#include <gtest/gtest.h>

#include "src/core/adams_replication.h"
#include "src/core/best_fit_placement.h"
#include "src/core/slf_placement.h"
#include "src/sim/simulator.h"
#include "src/util/error.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

TEST(HeteroClusterSpec, AggregatesAndShares) {
  const HeteroClusterSpec cluster = make_two_tier_cluster(
      2, units::gbps(2.0), units::gigabytes(100), 2, units::gbps(1.0),
      units::gigabytes(50));
  EXPECT_EQ(cluster.num_servers(), 4u);
  EXPECT_DOUBLE_EQ(cluster.total_bandwidth_bps(), units::gbps(6.0));
  EXPECT_DOUBLE_EQ(cluster.total_storage_bytes(), units::gigabytes(300));
  const auto shares = cluster.bandwidth_shares();
  EXPECT_NEAR(shares[0], 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(shares[3], 1.0 / 6.0, 1e-12);
}

TEST(HeteroClusterSpec, ReplicaSlotsPerServer) {
  const HeteroClusterSpec cluster = make_two_tier_cluster(
      1, units::gbps(2.0), units::gigabytes(27), 1, units::gbps(1.0),
      units::gigabytes(5.5));
  const auto slots = cluster.replica_slots(units::minutes(90), units::mbps(4));
  EXPECT_EQ(slots[0], 10u);  // 27 / 2.7
  EXPECT_EQ(slots[1], 2u);   // floor(5.5 / 2.7)
}

TEST(HeteroClusterSpec, ValidateCatchesBadInput) {
  HeteroClusterSpec cluster;
  EXPECT_THROW(cluster.validate(), InvalidArgumentError);
  cluster.bandwidth_bps = {1.0, 2.0};
  cluster.storage_bytes = {1.0};
  EXPECT_THROW(cluster.validate(), InvalidArgumentError);
  cluster.storage_bytes = {1.0, -1.0};
  EXPECT_THROW(cluster.validate(), InvalidArgumentError);
}

TEST(HeteroImbalance, ProportionalLoadIsBalanced) {
  // Loads proportional to bandwidth -> equal utilization -> L = 0.
  EXPECT_NEAR(hetero_imbalance({2.0, 1.0}, {4.0, 2.0}), 0.0, 1e-12);
}

TEST(HeteroImbalance, EqualAbsoluteLoadIsImbalancedOnMixedFleet) {
  // Equal loads on a 2:1 fleet overdrive the small server.
  EXPECT_GT(hetero_imbalance({1.0, 1.0}, {4.0, 2.0}), 0.2);
}

TEST(HeteroImbalance, MatchesEq2OnHomogeneousFleet) {
  const std::vector<double> loads{3.0, 1.0};
  EXPECT_DOUBLE_EQ(hetero_imbalance(loads, {2.0, 2.0}), 0.5);
}

TEST(WeightedSlfPlace, ProducesValidLayout) {
  const auto popularity = zipf_popularity(30, 0.75);
  const AdamsReplication adams;
  const auto plan = adams.replicate(popularity, 4, 42);
  const std::vector<double> bandwidth{2.0, 2.0, 1.0, 1.0};
  const std::vector<std::size_t> slots{14, 14, 7, 7};
  const Layout layout = weighted_greedy_place(plan, popularity, bandwidth, slots);
  const auto counts = layout.replicas_per_server(4);
  for (std::size_t s = 0; s < 4; ++s) EXPECT_LE(counts[s], slots[s]);
  // Every video's replicas on distinct servers.
  for (const auto& servers : layout.assignment) {
    std::vector<std::size_t> sorted = servers;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  }
}

TEST(WeightedSlfPlace, FasterServersAttractMoreLoad) {
  const auto popularity = zipf_popularity(60, 0.75);
  const AdamsReplication adams;
  const auto plan = adams.replicate(popularity, 4, 80);
  const std::vector<double> bandwidth{3.0, 3.0, 1.0, 1.0};
  const std::vector<std::size_t> slots{30, 30, 30, 30};
  const Layout layout = weighted_greedy_place(plan, popularity, bandwidth, slots);
  const auto loads = layout.expected_loads(popularity, 4);
  // Big servers carry roughly 3x the small servers' expected load.
  EXPECT_GT(loads[0] + loads[1], 2.0 * (loads[2] + loads[3]));
  EXPECT_LT(hetero_imbalance(loads, bandwidth), 0.25);
}

TEST(WeightedSlfPlace, BeatsBlindSlfOnUtilizationImbalance) {
  const auto popularity = zipf_popularity(120, 0.75);
  const AdamsReplication adams;
  const auto plan = adams.replicate(popularity, 4, 160);
  const std::vector<double> bandwidth{3.0, 3.0, 1.0, 1.0};
  const std::vector<std::size_t> slots{60, 60, 60, 60};
  const Layout weighted =
      weighted_greedy_place(plan, popularity, bandwidth, slots);
  const SmallestLoadFirstPlacement slf;
  const Layout blind = slf.place(plan, popularity, 4, 60);
  EXPECT_LT(hetero_imbalance(weighted.expected_loads(popularity, 4), bandwidth),
            hetero_imbalance(blind.expected_loads(popularity, 4), bandwidth));
}

TEST(WeightedSlfPlace, DegeneratesToBestFitOnEqualFleet) {
  // With equal bandwidths the post-placement-utilization rule picks exactly
  // the least-loaded feasible server — greedy best-fit.
  const auto popularity = zipf_popularity(40, 0.75);
  const AdamsReplication adams;
  const auto plan = adams.replicate(popularity, 4, 56);
  const std::vector<double> bandwidth(4, 1.8e9);
  const std::vector<std::size_t> slots(4, 14);
  const Layout weighted =
      weighted_greedy_place(plan, popularity, bandwidth, slots);
  const BestFitPlacement best_fit;
  const Layout homogeneous = best_fit.place(plan, popularity, 4, 14);
  EXPECT_EQ(weighted.assignment, homogeneous.assignment);
}

TEST(WeightedSlfPlace, ThrowsWhenPlanDoesNotFit) {
  const auto popularity = zipf_popularity(10, 0.75);
  const AdamsReplication adams;
  const auto plan = adams.replicate(popularity, 4, 20);
  const std::vector<double> bandwidth{1.0, 1.0, 1.0, 1.0};
  const std::vector<std::size_t> slots{4, 4, 4, 4};  // 16 < 20
  EXPECT_THROW(
      (void)weighted_greedy_place(plan, popularity, bandwidth, slots),
      InfeasibleError);
}

TEST(HeteroSimulator, PerServerBandwidthHonored) {
  Layout layout;
  layout.assignment = {{0}, {1}};
  SimConfig config;
  config.num_servers = 2;
  config.bandwidth_bps_per_server = units::mbps(8);
  config.per_server_bandwidth_bps = {units::mbps(8), units::mbps(4)};
  config.stream_bitrate_bps = units::mbps(4);
  config.video_duration_sec = 1000.0;
  RequestTrace trace;
  trace.horizon = 50.0;
  // Two concurrent streams per video: fits server 0 (8 Mb/s), overflows
  // server 1 (4 Mb/s).
  trace.requests = {Request{0.0, 0}, Request{1.0, 0}, Request{2.0, 1},
                    Request{3.0, 1}};
  const SimResult result = simulate(layout, config, trace);
  EXPECT_EQ(result.rejected, 1u);
  EXPECT_EQ(result.served_per_server[0], 2u);
  EXPECT_EQ(result.served_per_server[1], 1u);
}

TEST(HeteroSimulator, ImbalanceUsesUtilization) {
  // One stream on each server; server 1 has half the capacity, so its
  // utilization doubles and Eq. 2 over utilizations is positive.
  Layout layout;
  layout.assignment = {{0}, {1}};
  SimConfig config;
  config.num_servers = 2;
  config.bandwidth_bps_per_server = units::mbps(8);
  config.per_server_bandwidth_bps = {units::mbps(8), units::mbps(4)};
  config.stream_bitrate_bps = units::mbps(4);
  config.video_duration_sec = 1000.0;
  RequestTrace trace;
  trace.horizon = 50.0;
  trace.requests = {Request{0.0, 0}, Request{0.0, 1}};
  const SimResult result = simulate(layout, config, trace);
  // Utilizations 0.5 and 1.0: Eq. 2 = (1.0 - 0.75) / 0.75 = 1/3.
  EXPECT_NEAR(result.mean_imbalance_eq2, 1.0 / 3.0, 1e-9);
}

TEST(HeteroSimulator, ConfigValidatesOverrideVector) {
  SimConfig config;
  config.num_servers = 2;
  config.bandwidth_bps_per_server = units::mbps(8);
  config.stream_bitrate_bps = units::mbps(4);
  config.video_duration_sec = 10.0;
  config.per_server_bandwidth_bps = {units::mbps(8)};  // wrong size
  EXPECT_THROW(config.validate(), InvalidArgumentError);
  config.per_server_bandwidth_bps = {units::mbps(8), 0.0};
  EXPECT_THROW(config.validate(), InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
