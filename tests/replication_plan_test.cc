#include "src/core/replication.h"

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

TEST(ReplicationPlan, TotalsAndDegree) {
  ReplicationPlan plan;
  plan.replicas = {3, 2, 1, 1, 1};
  EXPECT_EQ(plan.num_videos(), 5u);
  EXPECT_EQ(plan.total_replicas(), 8u);
  EXPECT_DOUBLE_EQ(plan.degree(), 1.6);
}

TEST(ReplicationPlan, DegreeOfEmptyPlanThrows) {
  ReplicationPlan plan;
  EXPECT_THROW((void)plan.degree(), InvalidArgumentError);
}

TEST(ReplicationPlan, WeightsArePopularityOverReplicas) {
  ReplicationPlan plan;
  plan.replicas = {2, 1};
  const std::vector<double> popularity{0.6, 0.4};
  const auto w = plan.weights(popularity);
  EXPECT_DOUBLE_EQ(w[0], 0.3);
  EXPECT_DOUBLE_EQ(w[1], 0.4);
  EXPECT_DOUBLE_EQ(plan.max_weight(popularity), 0.4);
  EXPECT_DOUBLE_EQ(plan.min_weight(popularity), 0.3);
}

TEST(ReplicationPlan, WeightsRejectSizeMismatch) {
  ReplicationPlan plan;
  plan.replicas = {1, 1};
  EXPECT_THROW((void)plan.weights({1.0}), InvalidArgumentError);
}

TEST(ReplicationPlan, WeightsRejectZeroReplica) {
  ReplicationPlan plan;
  plan.replicas = {0, 1};
  EXPECT_THROW((void)plan.weights({0.5, 0.5}), InvalidArgumentError);
}

TEST(ReplicationPlan, ValidateEnforcesConstraints) {
  ReplicationPlan plan;
  plan.replicas = {2, 1};
  EXPECT_NO_THROW(plan.validate(/*num_servers=*/2, /*budget=*/3));
  EXPECT_THROW(plan.validate(1, 3), InvalidArgumentError);   // r_i > N
  EXPECT_THROW(plan.validate(2, 2), InvalidArgumentError);   // over budget
  plan.replicas = {0, 1};
  EXPECT_THROW(plan.validate(2, 3), InvalidArgumentError);   // r_i == 0
  plan.replicas = {};
  EXPECT_THROW(plan.validate(2, 3), InvalidArgumentError);   // empty
}

TEST(CheckReplicationInputs, ValidatesEachPrecondition) {
  const auto p = zipf_popularity(4, 0.5);
  EXPECT_NO_THROW(check_replication_inputs(p, 2, 4));
  EXPECT_THROW(check_replication_inputs({0.4, 0.6}, 2, 4),
               InvalidArgumentError);            // not non-increasing
  EXPECT_THROW(check_replication_inputs(p, 0, 4), InvalidArgumentError);
  EXPECT_THROW(check_replication_inputs(p, 2, 3), InfeasibleError);
}

}  // namespace
}  // namespace vodrep
