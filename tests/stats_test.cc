#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/error.h"
#include "src/util/rng.h"

namespace vodrep {
namespace {

TEST(OnlineStats, EmptyAccumulator) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_TRUE(std::isinf(s.max()));
}

TEST(OnlineStats, SingleObservation) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownMeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  Rng rng(1);
  OnlineStats whole;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
  OnlineStats s;
  s.add(1.0);
  s.add(2.0);
  OnlineStats empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 1.5);

  OnlineStats target;
  target.merge(s);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 1.5);
}

TEST(OnlineStats, Ci95ShrinksWithSampleSize) {
  Rng rng(2);
  OnlineStats small;
  OnlineStats large;
  for (int i = 0; i < 10; ++i) small.add(rng.uniform());
  for (int i = 0; i < 10000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(TimeWeightedMean, ConstantSignal) {
  TimeWeightedMean twm;
  twm.add(4.0, 10.0);
  EXPECT_DOUBLE_EQ(twm.mean(), 4.0);
  EXPECT_DOUBLE_EQ(twm.total_time(), 10.0);
}

TEST(TimeWeightedMean, WeightsByDuration) {
  TimeWeightedMean twm;
  twm.add(0.0, 3.0);
  twm.add(10.0, 1.0);
  EXPECT_DOUBLE_EQ(twm.mean(), 2.5);
}

TEST(TimeWeightedMean, IgnoresNonPositiveDurations) {
  TimeWeightedMean twm;
  twm.add(100.0, 0.0);
  twm.add(100.0, -1.0);
  EXPECT_DOUBLE_EQ(twm.mean(), 0.0);
  twm.add(5.0, 2.0);
  EXPECT_DOUBLE_EQ(twm.mean(), 5.0);
}

TEST(Quantile, MedianOfOddSize) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Quantile, InterpolatesBetweenPoints) {
  // Type-7 quantile of {1,2,3,4} at q=0.5 is 2.5.
  EXPECT_DOUBLE_EQ(quantile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);
}

TEST(Quantile, ExtremesAreMinAndMax) {
  const std::vector<double> v{5.0, -1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), -1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW((void)quantile({}, 0.5), InvalidArgumentError);
  EXPECT_THROW((void)quantile({1.0}, 1.5), InvalidArgumentError);
  EXPECT_THROW((void)quantile({1.0}, -0.1), InvalidArgumentError);
}

TEST(MeanOf, ComputesArithmeticMean) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_THROW((void)mean_of({}), InvalidArgumentError);
}

TEST(StddevOf, MatchesOnlineStats) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  OnlineStats s;
  for (double x : v) s.add(x);
  EXPECT_NEAR(stddev_of(v), s.stddev(), 1e-12);
  EXPECT_EQ(stddev_of({1.0}), 0.0);
}

}  // namespace
}  // namespace vodrep
