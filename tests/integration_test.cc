// End-to-end tests: popularity -> replication -> placement -> simulation,
// checking the qualitative claims of the paper's Section 5 on scaled-down
// instances (fewer videos/runs so the suite stays fast).
#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/exp/experiments.h"
#include "src/exp/runner.h"
#include "src/exp/scenario.h"

namespace vodrep {
namespace {

PaperScenario small_scenario(double theta, double degree) {
  PaperScenario scenario;
  scenario.num_videos = 60;
  scenario.theta = theta;
  scenario.replication_degree = degree;
  return scenario;
}

double rejection_at(const PaperScenario& scenario, const std::string& repl,
                    const std::string& place, double rate_per_min,
                    std::size_t runs = 6) {
  const auto replication = make_replication_policy(repl);
  const auto placement = make_placement_policy(place);
  const Layout layout = provision(scenario.problem(), *replication, *placement,
                                  scenario.replica_budget())
                            .layout;
  RunnerOptions options;
  options.runs = runs;
  return run_cell(layout, scenario.sim_config(),
                  scenario.trace_spec(rate_per_min), options)
      .rejection_rate.mean();
}

TEST(Integration, RejectionDropsFromNoReplicationToDegree12) {
  // Section 5.1: "the rejection rate decreases dramatically from
  // non-replication to low replication degree 1.2".
  const double at_saturation = 40.0;
  const double none =
      rejection_at(small_scenario(0.75, 1.0), "zipf", "slf", at_saturation);
  const double low =
      rejection_at(small_scenario(0.75, 1.2), "zipf", "slf", at_saturation);
  EXPECT_LT(low, none);
}

TEST(Integration, ZipfSlfBeatsClassificationRoundRobin) {
  // Section 5.2's headline comparison at low replication degree.
  const PaperScenario scenario = small_scenario(0.75, 1.2);
  const double best = rejection_at(scenario, "zipf", "slf", 40.0);
  const double baseline =
      rejection_at(scenario, "classification", "round-robin", 40.0);
  EXPECT_LE(best, baseline + 1e-9);
}

TEST(Integration, NoRejectionsWellBelowSaturation) {
  // A balanced layout rejects nothing at 40% of the saturation rate.
  const double r = rejection_at(small_scenario(0.75, 1.4), "zipf", "slf", 16.0);
  EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(Integration, OverloadRejectsRoughlyTheExcess) {
  // 25% above saturation must reject on the order of the excess load.
  const double r = rejection_at(small_scenario(0.75, 1.8), "zipf", "slf", 50.0);
  EXPECT_GT(r, 0.10);
  EXPECT_LT(r, 0.40);
}

TEST(Integration, HigherDegreeNeverMuchWorse) {
  // Theorem 4.3's operational consequence: growing the replication degree
  // does not hurt (up to simulation noise).
  const double d12 = rejection_at(small_scenario(1.0, 1.2), "zipf", "slf", 40.0);
  const double d18 = rejection_at(small_scenario(1.0, 1.8), "zipf", "slf", 40.0);
  EXPECT_LE(d18, d12 + 0.02);
}

TEST(Integration, Fig4TableHasExpectedShape) {
  ExperimentOptions options;
  options.runs = 2;
  options.sweep_points = 3;
  options.num_videos = 40;
  const Table table =
      fig4_panel(AlgorithmCombo{"zipf", "slf"}, 0.75, options);
  EXPECT_EQ(table.columns(), 6u);  // rate + 5 degrees
  EXPECT_EQ(table.rows(), 3u);
}

TEST(Integration, Fig5TableHasExpectedShape) {
  ExperimentOptions options;
  options.runs = 2;
  options.sweep_points = 3;
  options.num_videos = 40;
  const Table table = fig5_panel(0.75, 1.2, options);
  EXPECT_EQ(table.columns(), 5u);  // rate + 4 combos
  EXPECT_EQ(table.rows(), 3u);
}

TEST(Integration, Fig6TableHasExpectedShape) {
  ExperimentOptions options;
  options.runs = 2;
  options.sweep_points = 3;
  options.num_videos = 40;
  const Table table = fig6_panel(1.0, 1.2, options);
  EXPECT_EQ(table.columns(), 5u);
  EXPECT_EQ(table.rows(), 3u);
}

TEST(Integration, Fig6DegreeMergePanelHasExpectedShape) {
  ExperimentOptions options;
  options.runs = 2;
  options.sweep_points = 3;
  options.num_videos = 40;
  const Table table = fig6_degree_merge_panel(1.0, options);
  EXPECT_EQ(table.columns(), 6u);  // rate + 5 degrees
  EXPECT_EQ(table.rows(), 3u);
}

TEST(Integration, RedirectAblationNeverHurts) {
  ExperimentOptions options;
  options.runs = 3;
  options.sweep_points = 3;
  options.num_videos = 40;
  const Table table = redirect_ablation(0.75, 1.2, options);
  EXPECT_EQ(table.rows(), 3u);
  EXPECT_EQ(table.columns(), 5u);
}

TEST(Integration, BoundCheckTableCoversAllDegrees) {
  ExperimentOptions options;
  options.num_videos = 40;
  const Table table = bound_check_table(0.75, options);
  EXPECT_EQ(table.rows(), 5u);
}

TEST(Integration, PaperCombosAreTheFourOfTheEvaluation) {
  const auto combos = paper_combos();
  ASSERT_EQ(combos.size(), 4u);
  EXPECT_EQ(combos[0].label(), "zipf+slf");
  EXPECT_EQ(combos[3].label(), "classification+round-robin");
}

}  // namespace
}  // namespace vodrep
