#include "src/sim/server.h"

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/util/units.h"

namespace vodrep {
namespace {

TEST(StreamingServer, StartsIdle) {
  const StreamingServer server(units::gbps(1.8));
  EXPECT_DOUBLE_EQ(server.capacity_bps(), units::gbps(1.8));
  EXPECT_DOUBLE_EQ(server.busy_bps(), 0.0);
  EXPECT_EQ(server.active_streams(), 0u);
  EXPECT_EQ(server.served_total(), 0u);
}

TEST(StreamingServer, AdmitReservesBandwidth) {
  StreamingServer server(units::mbps(10));
  server.admit(units::mbps(4));
  EXPECT_DOUBLE_EQ(server.busy_bps(), units::mbps(4));
  EXPECT_DOUBLE_EQ(server.free_bps(), units::mbps(6));
  EXPECT_EQ(server.active_streams(), 1u);
  EXPECT_EQ(server.served_total(), 1u);
}

TEST(StreamingServer, CanAdmitUntilCapacityExactly) {
  StreamingServer server(units::mbps(12));
  EXPECT_TRUE(server.can_admit(units::mbps(4)));
  server.admit(units::mbps(4));
  server.admit(units::mbps(4));
  EXPECT_TRUE(server.can_admit(units::mbps(4)));  // exactly fills
  server.admit(units::mbps(4));
  EXPECT_FALSE(server.can_admit(units::mbps(4)));
}

TEST(StreamingServer, ReleaseRestoresBandwidth) {
  StreamingServer server(units::mbps(8));
  server.admit(units::mbps(4));
  server.admit(units::mbps(4));
  server.release(units::mbps(4));
  EXPECT_DOUBLE_EQ(server.busy_bps(), units::mbps(4));
  EXPECT_EQ(server.active_streams(), 1u);
  EXPECT_EQ(server.served_total(), 2u);  // lifetime count unaffected
  EXPECT_TRUE(server.can_admit(units::mbps(4)));
}

TEST(StreamingServer, ReleaseWithoutStreamThrows) {
  StreamingServer server(units::mbps(8));
  EXPECT_THROW(server.release(units::mbps(4)), InvalidArgumentError);
}

TEST(StreamingServer, PaperCapacityIs450Streams) {
  StreamingServer server(units::gbps(1.8));
  int admitted = 0;
  while (server.can_admit(units::mbps(4))) {
    server.admit(units::mbps(4));
    ++admitted;
  }
  EXPECT_EQ(admitted, 450);
}

TEST(StreamingServer, ManyAdmitReleaseCyclesStayConsistent) {
  StreamingServer server(units::gbps(1.8));
  for (int cycle = 0; cycle < 10000; ++cycle) {
    server.admit(units::mbps(4));
    server.release(units::mbps(4));
  }
  // An idle link snaps its float residue to exactly zero.
  EXPECT_DOUBLE_EQ(server.busy_bps(), 0.0);
  EXPECT_EQ(server.active_streams(), 0u);
  EXPECT_EQ(server.served_total(), 10000u);
}

TEST(StreamingServer, FloatResidueNeverErodesTheAdmissionSlack) {
  // Stripe shares like bitrate/7 do not sum back to the admitted total in
  // floating point; millions of admit/release round trips must not leave
  // residue that eats into the 1e-6 relative can_admit slack and turns a
  // server that should fit k streams into one that fits k-1.
  const double capacity = units::mbps(28);
  const double share = units::mbps(4) / 7.0;
  StreamingServer server(capacity);
  for (int cycle = 0; cycle < 2'000'000; ++cycle) {
    server.admit(share);
    server.admit(share);
    server.release(share);
    server.release(share);
  }
  EXPECT_DOUBLE_EQ(server.busy_bps(), 0.0);
  // The full complement of shares still fits exactly.
  int admitted = 0;
  while (server.can_admit(share)) {
    server.admit(share);
    ++admitted;
  }
  EXPECT_EQ(admitted, 49);
}

TEST(StreamingServer, FailDropsStreamsAndBlocksAdmission) {
  StreamingServer server(units::gbps(1.8));
  server.admit(units::mbps(4));
  server.admit(units::mbps(4));
  EXPECT_FALSE(server.failed());
  EXPECT_EQ(server.fail(), 2u);
  EXPECT_TRUE(server.failed());
  EXPECT_EQ(server.active_streams(), 0u);
  EXPECT_DOUBLE_EQ(server.busy_bps(), 0.0);
  EXPECT_FALSE(server.can_admit(units::mbps(4)));
  EXPECT_EQ(server.served_total(), 2u);  // history survives the crash
}

TEST(StreamingServer, FailOnIdleServerDropsNothing) {
  StreamingServer server(units::gbps(1.8));
  EXPECT_EQ(server.fail(), 0u);
  EXPECT_TRUE(server.failed());
}

TEST(StreamingServer, RejectsNegativeCapacityAndRates) {
  EXPECT_THROW(StreamingServer(-1.0), InvalidArgumentError);
  StreamingServer server(units::mbps(8));
  EXPECT_THROW(server.admit(0.0), InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
