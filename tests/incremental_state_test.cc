#include "src/core/incremental_state.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

ScalableProblem test_problem(ImbalanceDefinition definition =
                                 ImbalanceDefinition::kMaxRelative) {
  ScalableProblem p;
  p.videos.duration_sec = units::minutes(90);
  p.videos.popularity = zipf_popularity(40, 0.75);
  p.cluster.num_servers = 6;
  p.cluster.bandwidth_bps_per_server = units::gbps(0.5);
  p.cluster.storage_bytes_per_server = units::gigabytes(200.0);
  p.ladder.rates_bps = {units::mbps(1), units::mbps(2), units::mbps(4),
                        units::mbps(8)};
  p.expected_peak_requests = 800.0;
  p.weights.imbalance_definition = definition;
  return p;
}

/// Mixed absolute/relative agreement at the 1e-9 contract of the
/// incremental-evaluation layer.
void expect_close(double actual, double expected, const char* what) {
  const double tolerance =
      1e-9 * std::max({1.0, std::abs(actual), std::abs(expected)});
  EXPECT_NEAR(actual, expected, tolerance) << what;
}

/// The correctness contract: every running quantity of the incremental state
/// must agree with a from-scratch compute_usage + objective_value evaluation
/// of the solution it carries.
void verify_against_recompute(const ScalableProblem& problem,
                              const IncrementalState& inc) {
  const ScalableSolution solution = inc.to_solution();
  const ServerUsage usage = compute_usage(problem, solution);
  for (std::size_t s = 0; s < problem.cluster.num_servers; ++s) {
    expect_close(inc.storage_bytes()[s], usage.storage_bytes[s], "storage");
    expect_close(inc.bandwidth_bps()[s], usage.bandwidth_bps[s], "bandwidth");
  }
  const double expected_objective = objective_value(
      solution.bitrates(problem.ladder), solution.replicas(),
      usage.bandwidth_bps, problem.cluster.num_servers, problem.weights);
  expect_close(inc.objective(), expected_objective, "objective");

  double expected_overflow = 0.0;
  const double cap = problem.cluster.bandwidth_bps_per_server;
  for (double load : usage.bandwidth_bps) {
    if (load > cap) expected_overflow += (load - cap) / cap;
  }
  expect_close(inc.relative_bandwidth_overflow(), expected_overflow,
               "overflow");
  expect_close(inc.max_bandwidth_bps(),
               *std::max_element(usage.bandwidth_bps.begin(),
                                 usage.bandwidth_bps.end()),
               "max load");
}

/// Reverse index and solution placement must describe the same hosting
/// relation.  O(M*N) — sampled sparsely inside the big property loop.
void verify_hosting_index(const ScalableProblem& problem,
                          const IncrementalState& inc) {
  const ScalableSolution solution = inc.to_solution();
  for (std::size_t i = 0; i < solution.num_videos(); ++i) {
    for (std::size_t s = 0; s < problem.cluster.num_servers; ++s) {
      const auto& servers = solution.placement[i];
      const bool placed =
          std::find(servers.begin(), servers.end(), s) != servers.end();
      ASSERT_EQ(inc.is_hosted(i, s), placed) << "video " << i << " server " << s;
      const auto& hosted = inc.videos_on(s);
      ASSERT_EQ(std::find(hosted.begin(), hosted.end(), i) != hosted.end(),
                placed);
    }
  }
}

/// Applies one random legal primitive mutation; returns false if the drawn
/// op had no legal target this time.
bool random_mutation(const ScalableProblem& problem, IncrementalState& inc,
                     Rng& rng) {
  const std::size_t m = problem.videos.count();
  const std::size_t n = problem.cluster.num_servers;
  const auto video = static_cast<std::size_t>(rng.uniform_index(m));
  switch (rng.uniform_index(3)) {
    case 0: {
      const auto idx =
          static_cast<std::size_t>(rng.uniform_index(problem.ladder.size()));
      inc.set_bitrate(video, idx);
      return true;
    }
    case 1: {
      std::vector<std::size_t> absent;
      for (std::size_t s = 0; s < n; ++s) {
        if (!inc.is_hosted(video, s)) absent.push_back(s);
      }
      if (absent.empty()) return false;
      inc.add_replica(video, absent[rng.uniform_index(absent.size())]);
      return true;
    }
    default: {
      const auto servers = inc.replicas_of(video);
      if (servers.size() < 2) return false;
      inc.drop_replica(video, servers[rng.uniform_index(servers.size())]);
      return true;
    }
  }
}

std::vector<std::vector<std::size_t>> sorted_placement(
    const ScalableSolution& solution) {
  std::vector<std::vector<std::size_t>> placement = solution.placement;
  for (auto& servers : placement) std::sort(servers.begin(), servers.end());
  return placement;
}

TEST(IncrementalState, FreshStateMatchesRecompute) {
  const ScalableProblem p = test_problem();
  IncrementalState inc(p, lowest_rate_round_robin(p));
  verify_against_recompute(p, inc);
  verify_hosting_index(p, inc);
}

// The tentpole's acceptance contract: >= 10k random apply/commit/rollback
// sequences, each checked against the from-scratch evaluation to 1e-9.
TEST(IncrementalState, RandomMoveUndoSequencesAgreeWithFromScratch) {
  for (const auto definition : {ImbalanceDefinition::kMaxRelative,
                                ImbalanceDefinition::kCoefficientOfVariation}) {
    const ScalableProblem p = test_problem(definition);
    IncrementalState inc(p, lowest_rate_round_robin(p));
    Rng rng(definition == ImbalanceDefinition::kMaxRelative ? 7u : 8u);
    for (int sequence = 0; sequence < 5'000; ++sequence) {
      const auto mark = inc.checkpoint();
      const auto ops = 1 + rng.uniform_index(5);
      for (std::size_t op = 0; op < ops; ++op) {
        (void)random_mutation(p, inc, rng);
      }
      if (rng.bernoulli(0.5)) {
        inc.rollback(mark);
      } else {
        inc.commit();
      }
      verify_against_recompute(p, inc);
      if (sequence % 64 == 0) verify_hosting_index(p, inc);
      if (HasFatalFailure()) return;
    }
  }
}

TEST(IncrementalState, RollbackRestoresTheSolution) {
  const ScalableProblem p = test_problem();
  IncrementalState inc(p, lowest_rate_round_robin(p));
  Rng rng(21);
  for (int round = 0; round < 200; ++round) {
    const ScalableSolution before = inc.to_solution();
    const auto placement = sorted_placement(before);
    const auto mark = inc.checkpoint();
    const auto ops = 1 + rng.uniform_index(6);
    for (std::size_t op = 0; op < ops; ++op) {
      (void)random_mutation(p, inc, rng);
    }
    inc.rollback(mark);
    const ScalableSolution after = inc.to_solution();
    EXPECT_EQ(after.bitrate_index, before.bitrate_index);
    EXPECT_EQ(sorted_placement(after), placement);
  }
  verify_against_recompute(p, inc);
}

TEST(IncrementalState, LazyMaxSurvivesLoweringTheMaxServer) {
  const ScalableProblem p = test_problem();
  IncrementalState inc(p, lowest_rate_round_robin(p));
  // Make server 0 the clear maximum, then shrink it below the rest: the
  // lazy max must fall back to a re-scan, not keep reporting server 0.
  inc.add_replica(1, 0);  // video 1 is hot; hosting it loads server 0
  inc.set_bitrate(0, p.ladder.size() - 1);
  verify_against_recompute(p, inc);
  const double loaded_max = inc.max_bandwidth_bps();
  inc.set_bitrate(0, 0);
  inc.drop_replica(1, 0);
  EXPECT_LT(inc.max_bandwidth_bps(), loaded_max);
  verify_against_recompute(p, inc);
}

TEST(IncrementalState, TracksBandwidthOverflowAcrossExcursions) {
  ScalableProblem p = test_problem();
  p.expected_peak_requests = 4e5;  // deliberately saturating
  IncrementalState inc(p, lowest_rate_round_robin(p));
  Rng rng(31);
  bool saw_overflow = false;
  for (int round = 0; round < 500; ++round) {
    (void)random_mutation(p, inc, rng);
    inc.commit();
    saw_overflow |= inc.relative_bandwidth_overflow() > 0.0;
  }
  EXPECT_TRUE(saw_overflow);
  verify_against_recompute(p, inc);
}

TEST(IncrementalState, RejectsIllegalMutations) {
  const ScalableProblem p = test_problem();
  IncrementalState inc(p, lowest_rate_round_robin(p));
  EXPECT_THROW(inc.drop_replica(0, inc.replicas_of(0)[0]),
               InvalidArgumentError);  // would drop the last replica
  EXPECT_THROW(inc.add_replica(0, inc.replicas_of(0)[0]),
               InvalidArgumentError);  // duplicate replica
  EXPECT_THROW(inc.set_bitrate(0, p.ladder.size()), InvalidArgumentError);
  EXPECT_THROW(inc.add_replica(p.videos.count(), 0), InvalidArgumentError);
  const std::size_t host = inc.replicas_of(1)[0];
  const std::size_t other = (host + 1) % p.cluster.num_servers;
  EXPECT_THROW(inc.drop_replica(1, other), InvalidArgumentError);
}

TEST(IncrementalState, EmptiedServerReportsExactlyZeroUsage) {
  const ScalableProblem p = test_problem();
  ScalableSolution solution = lowest_rate_round_robin(p);
  IncrementalState inc(p, std::move(solution));
  // Give every video on server 0 a second home, then clear server 0.
  const std::vector<std::uint32_t> hosted = inc.videos_on(0);
  for (std::size_t video : hosted) {
    for (std::size_t s = 1; s < p.cluster.num_servers; ++s) {
      if (!inc.is_hosted(video, s)) {
        inc.add_replica(video, s);
        break;
      }
    }
    inc.drop_replica(video, 0);
  }
  EXPECT_TRUE(inc.videos_on(0).empty());
  EXPECT_EQ(inc.storage_bytes()[0], 0.0);
  EXPECT_EQ(inc.bandwidth_bps()[0], 0.0);
  verify_against_recompute(p, inc);
}

// SoA boundary: growing a replica set past kInlineReplicas spills it to the
// heap and shrinking back un-spills it; every state along the way (and after
// commit) must agree with the from-scratch evaluation and the reverse index.
TEST(IncrementalState, ReplicaSetSpillsAndUnspillsAcrossInlineBoundary) {
  const ScalableProblem p = test_problem();
  ASSERT_GT(p.cluster.num_servers, IncrementalState::kInlineReplicas);
  IncrementalState inc(p, lowest_rate_round_robin(p));
  const std::size_t home = inc.replicas_of(0)[0];
  // Grow video 0 from 1 replica to one on every server (1 -> 6, crossing the
  // inline boundary at 4 -> 5), verifying each step.
  for (std::size_t s = 0; s < p.cluster.num_servers; ++s) {
    if (s == home) continue;
    inc.add_replica(0, s);
    inc.commit();
    verify_against_recompute(p, inc);
    verify_hosting_index(p, inc);
  }
  EXPECT_EQ(inc.replica_count(0), p.cluster.num_servers);
  // Shrink back down to 1 (crossing 5 -> 4 un-spill), verifying each step.
  for (std::size_t s = 0; s < p.cluster.num_servers; ++s) {
    if (s == home) continue;
    inc.drop_replica(0, s);
    inc.commit();
    verify_against_recompute(p, inc);
    verify_hosting_index(p, inc);
  }
  EXPECT_EQ(inc.replica_count(0), 1u);
  EXPECT_EQ(inc.replicas_of(0)[0], home);
}

TEST(IncrementalState, RollbackAcrossSpillBoundaryRestoresState) {
  const ScalableProblem p = test_problem();
  IncrementalState inc(p, lowest_rate_round_robin(p));
  const std::size_t home = inc.replicas_of(0)[0];
  const ScalableSolution before = inc.to_solution();
  const auto placement_before = sorted_placement(before);
  const auto mark = inc.checkpoint();
  // One journaled composite move that crosses the spill boundary both ways:
  // fill video 0 onto every server, then drop back to two replicas.
  for (std::size_t s = 0; s < p.cluster.num_servers; ++s) {
    if (s != home) inc.add_replica(0, s);
  }
  EXPECT_GT(inc.replica_count(0), IncrementalState::kInlineReplicas);
  std::size_t dropped = 0;
  for (std::size_t s = 0; s < p.cluster.num_servers && dropped + 2 < p.cluster.num_servers;
       ++s) {
    if (s == home) continue;
    inc.drop_replica(0, s);
    ++dropped;
  }
  EXPECT_LE(inc.replica_count(0), IncrementalState::kInlineReplicas);
  inc.rollback(mark);
  const ScalableSolution after = inc.to_solution();
  EXPECT_EQ(after.bitrate_index, before.bitrate_index);
  EXPECT_EQ(sorted_placement(after), placement_before);
  verify_against_recompute(p, inc);
  verify_hosting_index(p, inc);
}

TEST(IncrementalState, OverflowCountersMatchScans) {
  ScalableProblem p = test_problem();
  p.expected_peak_requests = 4e5;  // saturating: overflow excursions happen
  IncrementalState inc(p, lowest_rate_round_robin(p));
  Rng rng(47);
  const double bw_cap = p.cluster.bandwidth_bps_per_server;
  const double st_cap = p.cluster.storage_bytes_per_server;
  for (int round = 0; round < 400; ++round) {
    (void)random_mutation(p, inc, rng);
    if (rng.bernoulli(0.3)) {
      inc.rollback(0);
    } else {
      inc.commit();
    }
    bool bw_over = false;
    bool st_over = false;
    for (std::size_t s = 0; s < p.cluster.num_servers; ++s) {
      bw_over |= inc.bandwidth_bps()[s] > bw_cap;
      st_over |= inc.storage_bytes()[s] > st_cap;
    }
    ASSERT_EQ(inc.any_bandwidth_overflow(), bw_over) << "round " << round;
    ASSERT_EQ(inc.any_storage_overflow(), st_over) << "round " << round;
  }
}

}  // namespace
}  // namespace vodrep
