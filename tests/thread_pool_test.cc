#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace vodrep {
namespace {

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExplicitSizeIsHonored) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ResultsAreIndependentOfThreadCount) {
  auto compute = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(64, 0.0);
    pool.parallel_for(out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i * i) + 0.5;
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(4));
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(16,
                                 [&](std::size_t i) {
                                   if (i == 7) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, AllIterationsRunDespiteException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(32, [&](std::size_t i) {
      ++ran;
      if (i == 0) throw std::runtime_error("boom");
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, SequentialParallelForCallsWork) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(100, [&](std::size_t i) {
      sum += static_cast<long>(i);
    });
  }
  EXPECT_EQ(sum.load(), 10 * 4950);
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(50, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace vodrep
