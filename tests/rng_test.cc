#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "src/util/error.h"

namespace vodrep {
namespace {

TEST(Rng, IsDeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestoresStream) {
  Rng rng(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(rng.next_u64());
  rng.reseed(7);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(rng.next_u64(), first[i]);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  const Rng parent(99);
  Rng child1 = parent.split(1);
  Rng child2 = parent.split(2);
  Rng child1_again = parent.split(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    const auto a = child1.next_u64();
    const auto b = child2.next_u64();
    EXPECT_EQ(a, child1_again.next_u64());
    equal += a == b;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsOneHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexOfOneIsAlwaysZero) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(19);
  EXPECT_THROW((void)rng.uniform_index(0), InvalidArgumentError);
}

TEST(Rng, UniformIndexIsApproximatelyUnbiased) {
  Rng rng(23);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) EXPECT_NEAR(c, n / 5, n / 100);
}

TEST(Rng, ExponentialHasCorrectMean) {
  Rng rng(29);
  const double rate = 2.5;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, ExponentialIsNonNegativeAndRejectsBadRate) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(0.5), 0.0);
  EXPECT_THROW((void)rng.exponential(0.0), InvalidArgumentError);
  EXPECT_THROW((void)rng.exponential(-1.0), InvalidArgumentError);
}

TEST(Rng, BernoulliRespectsExtremes) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesProbability) {
  Rng rng(41);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

class RngPoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonTest, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng(static_cast<std::uint64_t>(mean * 1000) + 1);
  const int n = 50000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto k = static_cast<double>(rng.poisson(mean));
    sum += k;
    sum2 += k * k;
  }
  const double sample_mean = sum / n;
  const double sample_var = sum2 / n - sample_mean * sample_mean;
  // Poisson: mean == variance == lambda.
  EXPECT_NEAR(sample_mean, mean, 0.05 * mean + 0.05);
  EXPECT_NEAR(sample_var, mean, 0.10 * mean + 0.10);
}

INSTANTIATE_TEST_SUITE_P(SmallAndLargeMeans, RngPoissonTest,
                         ::testing::Values(0.1, 1.0, 5.0, 25.0, 40.0, 120.0,
                                           500.0));

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonRejectsNegativeMean) {
  Rng rng(47);
  EXPECT_THROW((void)rng.poisson(-1.0), InvalidArgumentError);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(53);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(59);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~std::uint64_t{0});
}

}  // namespace
}  // namespace vodrep
