#include "src/core/layout.h"

#include <gtest/gtest.h>

#include "src/util/error.h"

namespace vodrep {
namespace {

Layout two_video_layout() {
  Layout layout;
  layout.assignment = {{0, 1}, {1}};
  return layout;
}

TEST(Layout, ReplicasPerServerCounts) {
  const Layout layout = two_video_layout();
  EXPECT_EQ(layout.replicas_per_server(3),
            (std::vector<std::size_t>{1, 2, 0}));
}

TEST(Layout, ReplicasPerServerRejectsOutOfRange) {
  Layout layout;
  layout.assignment = {{5}};
  EXPECT_THROW((void)layout.replicas_per_server(3), InvalidArgumentError);
}

TEST(Layout, ExpectedLoadsSplitWeightAcrossReplicas) {
  const Layout layout = two_video_layout();
  const std::vector<double> popularity{0.6, 0.4};
  const auto loads = layout.expected_loads(popularity, 3);
  EXPECT_DOUBLE_EQ(loads[0], 0.3);   // half of video 0
  EXPECT_DOUBLE_EQ(loads[1], 0.7);   // half of video 0 + all of video 1
  EXPECT_DOUBLE_EQ(loads[2], 0.0);
}

TEST(Layout, ExpectedLoadsSumToTotalPopularity) {
  const Layout layout = two_video_layout();
  const auto loads = layout.expected_loads({0.6, 0.4}, 2);
  EXPECT_NEAR(loads[0] + loads[1], 1.0, 1e-12);
}

TEST(Layout, ExpectedLoadsRejectBadInput) {
  Layout layout = two_video_layout();
  EXPECT_THROW((void)layout.expected_loads({1.0}, 3), InvalidArgumentError);
  layout.assignment[1].clear();
  EXPECT_THROW((void)layout.expected_loads({0.6, 0.4}, 3),
               InvalidArgumentError);
}

TEST(Layout, ImpliedPlanMatchesAssignment) {
  const Layout layout = two_video_layout();
  const ReplicationPlan plan = layout.implied_plan();
  EXPECT_EQ(plan.replicas, (std::vector<std::size_t>{2, 1}));
}

TEST(Layout, ValidateAcceptsConsistentLayout) {
  const Layout layout = two_video_layout();
  EXPECT_NO_THROW(layout.validate(layout.implied_plan(), 2, 2));
}

TEST(Layout, ValidateRejectsPlanMismatch) {
  const Layout layout = two_video_layout();
  ReplicationPlan plan;
  plan.replicas = {1, 1};
  EXPECT_THROW(layout.validate(plan, 2, 2), InvalidArgumentError);
}

TEST(Layout, ValidateRejectsDuplicateServers) {
  Layout layout;
  layout.assignment = {{0, 0}};
  ReplicationPlan plan;
  plan.replicas = {2};
  EXPECT_THROW(layout.validate(plan, 2, 4), InvalidArgumentError);
}

TEST(Layout, ValidateRejectsOverCapacity) {
  Layout layout;
  layout.assignment = {{0}, {0}, {0}};
  ReplicationPlan plan;
  plan.replicas = {1, 1, 1};
  EXPECT_THROW(layout.validate(plan, 2, 2), InvalidArgumentError);
  EXPECT_NO_THROW(layout.validate(plan, 2, 3));
}

TEST(Layout, ValidateRejectsServerOutOfRange) {
  Layout layout;
  layout.assignment = {{2}};
  ReplicationPlan plan;
  plan.replicas = {1};
  EXPECT_THROW(layout.validate(plan, 2, 2), InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
