#include "src/core/objective.h"

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/util/units.h"

namespace vodrep {
namespace {

TEST(ImbalanceMaxRelative, BalancedLoadsAreZero) {
  EXPECT_DOUBLE_EQ(imbalance_max_relative({2.0, 2.0, 2.0}), 0.0);
}

TEST(ImbalanceMaxRelative, KnownValue) {
  // loads {3, 1}: mean 2, max 3 -> (3-2)/2 = 0.5.
  EXPECT_DOUBLE_EQ(imbalance_max_relative({3.0, 1.0}), 0.5);
}

TEST(ImbalanceMaxRelative, IdleClusterIsBalanced) {
  EXPECT_DOUBLE_EQ(imbalance_max_relative({0.0, 0.0}), 0.0);
}

TEST(ImbalanceMaxRelative, RejectsBadInput) {
  EXPECT_THROW((void)imbalance_max_relative({}), InvalidArgumentError);
  EXPECT_THROW((void)imbalance_max_relative({-1.0, 1.0}),
               InvalidArgumentError);
}

TEST(ImbalanceCv, KnownValue) {
  // loads {3, 1}: mean 2, population stddev 1 -> CV 0.5.
  EXPECT_DOUBLE_EQ(imbalance_cv({3.0, 1.0}), 0.5);
  EXPECT_DOUBLE_EQ(imbalance_cv({5.0, 5.0, 5.0}), 0.0);
}

TEST(ImbalanceCv, LessSensitiveToSingleOutlierThanMaxRelative) {
  const std::vector<double> loads{10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  EXPECT_LT(imbalance_cv(loads), imbalance_max_relative(loads));
}

TEST(LoadSpread, KnownValue) {
  EXPECT_DOUBLE_EQ(load_spread({1.0, 4.0, 2.5}), 3.0);
  EXPECT_DOUBLE_EQ(load_spread({2.0}), 0.0);
  EXPECT_THROW((void)load_spread({}), InvalidArgumentError);
}

TEST(ImbalanceDispatch, SelectsDefinition) {
  const std::vector<double> loads{3.0, 1.0};
  EXPECT_DOUBLE_EQ(imbalance(loads, ImbalanceDefinition::kMaxRelative), 0.5);
  EXPECT_DOUBLE_EQ(
      imbalance(loads, ImbalanceDefinition::kCoefficientOfVariation), 0.5);
}

TEST(ObjectiveValue, CombinesThreeTerms) {
  // Two videos at 4 Mb/s with 1 and 3 replicas on 4 servers, loads {3,1}.
  const std::vector<double> rates{units::mbps(4), units::mbps(4)};
  const std::vector<std::size_t> replicas{1, 3};
  const std::vector<double> loads{3.0, 1.0};
  ObjectiveWeights w;
  w.alpha = 2.0;
  w.beta = 4.0;
  // mean rate 4 Mb/s; mean degree 2/4 = 0.5; L = 0.5.
  EXPECT_DOUBLE_EQ(objective_value(rates, replicas, loads, 4, w),
                   4.0 + 2.0 * 0.5 - 4.0 * 0.5);
}

TEST(ObjectiveValue, HigherBitrateRaisesObjective) {
  ObjectiveWeights w;
  const std::vector<std::size_t> replicas{1};
  const std::vector<double> loads{1.0};
  EXPECT_GT(objective_value({units::mbps(8)}, replicas, loads, 2, w),
            objective_value({units::mbps(4)}, replicas, loads, 2, w));
}

TEST(ObjectiveValue, MoreReplicasRaiseObjective) {
  ObjectiveWeights w;
  const std::vector<double> rates{units::mbps(4)};
  const std::vector<double> loads{1.0};
  EXPECT_GT(objective_value(rates, {2}, loads, 4, w),
            objective_value(rates, {1}, loads, 4, w));
}

TEST(ObjectiveValue, ImbalanceLowersObjective) {
  ObjectiveWeights w;
  const std::vector<double> rates{units::mbps(4)};
  EXPECT_GT(objective_value(rates, {1}, {1.0, 1.0}, 2, w),
            objective_value(rates, {1}, {2.0, 0.0}, 2, w));
}

TEST(ObjectiveValue, RejectsBadInput) {
  ObjectiveWeights w;
  EXPECT_THROW((void)objective_value({}, {}, {1.0}, 2, w),
               InvalidArgumentError);
  EXPECT_THROW((void)objective_value({1.0}, {1, 2}, {1.0}, 2, w),
               InvalidArgumentError);
  EXPECT_THROW((void)objective_value({0.0}, {1}, {1.0}, 2, w),
               InvalidArgumentError);
  EXPECT_THROW((void)objective_value({1.0}, {0}, {1.0}, 2, w),
               InvalidArgumentError);
  EXPECT_THROW((void)objective_value({1.0}, {1}, {1.0}, 0, w),
               InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
