#include "src/core/classification_replication.h"

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

TEST(Classify, EvenSplit) {
  const auto classes = ClassificationReplication::classify(8, 4);
  EXPECT_EQ(classes, (std::vector<std::size_t>{0, 0, 1, 1, 2, 2, 3, 3}));
}

TEST(Classify, RemainderGoesToEarlierClasses) {
  const auto classes = ClassificationReplication::classify(7, 3);
  // Sizes 3, 2, 2.
  EXPECT_EQ(classes, (std::vector<std::size_t>{0, 0, 0, 1, 1, 2, 2}));
}

TEST(Classify, MoreClassesThanVideos) {
  const auto classes = ClassificationReplication::classify(2, 5);
  EXPECT_EQ(classes[0], 0u);
  EXPECT_EQ(classes[1], 1u);
}

TEST(Classify, RejectsBadArguments) {
  EXPECT_THROW((void)ClassificationReplication::classify(0, 3),
               InvalidArgumentError);
  EXPECT_THROW((void)ClassificationReplication::classify(3, 0),
               InvalidArgumentError);
}

TEST(ClassificationReplication, FitsBudget) {
  const ClassificationReplication policy;
  const auto p = zipf_popularity(100, 0.75);
  for (std::size_t budget : {100u, 120u, 140u, 180u}) {
    const auto plan = policy.replicate(p, 8, budget);
    EXPECT_LE(plan.total_replicas(), budget) << budget;
    for (std::size_t r : plan.replicas) {
      EXPECT_GE(r, 1u);
      EXPECT_LE(r, 8u);
    }
  }
}

TEST(ClassificationReplication, VideosInSameClassGetSameReplicas) {
  const ClassificationReplication policy(4);
  const auto p = zipf_popularity(40, 0.75);
  const auto plan = policy.replicate(p, 8, 60);
  const auto classes = ClassificationReplication::classify(40, 4);
  for (std::size_t i = 1; i < 40; ++i) {
    if (classes[i] == classes[i - 1]) {
      EXPECT_EQ(plan.replicas[i], plan.replicas[i - 1]) << "i=" << i;
    }
  }
}

TEST(ClassificationReplication, HotterClassesGetAtLeastAsMany) {
  const ClassificationReplication policy;
  const auto p = zipf_popularity(64, 0.9);
  const auto plan = policy.replicate(p, 8, 100);
  for (std::size_t i = 1; i < plan.replicas.size(); ++i) {
    EXPECT_GE(plan.replicas[i - 1], plan.replicas[i]);
  }
}

TEST(ClassificationReplication, BudgetEqualToVideosMeansOneEach) {
  const ClassificationReplication policy;
  const auto p = zipf_popularity(30, 0.75);
  const auto plan = policy.replicate(p, 8, 30);
  for (std::size_t r : plan.replicas) EXPECT_EQ(r, 1u);
}

TEST(ClassificationReplication, FullReplicationWhenBudgetAllows) {
  const ClassificationReplication policy;
  const auto p = zipf_popularity(12, 0.75);
  const auto plan = policy.replicate(p, 4, 48);
  for (std::size_t r : plan.replicas) EXPECT_EQ(r, 4u);
}

TEST(ClassificationReplication, CoarserThanPopularityAwareSchemes) {
  // The baseline assigns by class only: within one class the hottest and the
  // coldest video get identical replica counts even when their popularities
  // differ a lot.  This is the coarseness Figures 4-5 expose.
  const ClassificationReplication policy(2);
  const auto p = zipf_popularity(20, 1.0);
  const auto plan = policy.replicate(p, 8, 40);
  EXPECT_EQ(plan.replicas[0], plan.replicas[9]);   // same class, 10x pop gap
}

TEST(ClassificationReplication, InsufficientBudgetThrows) {
  const ClassificationReplication policy;
  EXPECT_THROW((void)policy.replicate(zipf_popularity(10, 0.75), 4, 9),
               InfeasibleError);
}

}  // namespace
}  // namespace vodrep
