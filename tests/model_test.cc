#include "src/core/model.h"

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

FixedRateProblem small_problem() {
  FixedRateProblem p;
  p.videos.duration_sec = units::minutes(90);
  p.videos.popularity = zipf_popularity(10, 0.75);
  p.bitrate_bps = units::mbps(4);
  p.cluster.num_servers = 4;
  p.cluster.bandwidth_bps_per_server = units::gbps(1.8);
  p.cluster.storage_bytes_per_server = units::gigabytes(27);  // 10 replicas
  return p;
}

TEST(Units, PaperVideoSizeIs2Point7GB) {
  // 90 minutes at 4 Mb/s: the paper states 2.7 GB per replica.
  EXPECT_NEAR(units::to_gigabytes(
                  units::video_bytes(units::minutes(90), units::mbps(4))),
              2.7, 1e-9);
}

TEST(ClusterSpec, StreamsPerServer) {
  ClusterSpec cluster;
  cluster.num_servers = 8;
  cluster.bandwidth_bps_per_server = units::gbps(1.8);
  // 1.8 Gb/s / 4 Mb/s = 450 concurrent streams.
  EXPECT_EQ(cluster.streams_per_server(units::mbps(4)), 450u);
  EXPECT_THROW((void)cluster.streams_per_server(0.0), InvalidArgumentError);
}

TEST(ClusterSpec, Aggregates) {
  ClusterSpec cluster;
  cluster.num_servers = 8;
  cluster.bandwidth_bps_per_server = units::gbps(1.8);
  cluster.storage_bytes_per_server = units::gigabytes(100);
  EXPECT_DOUBLE_EQ(cluster.total_bandwidth_bps(), units::gbps(14.4));
  EXPECT_DOUBLE_EQ(cluster.total_storage_bytes(), units::gigabytes(800));
}

TEST(FixedRateProblem, ReplicaCapacityFloorsStorage) {
  FixedRateProblem p = small_problem();
  EXPECT_NEAR(units::to_gigabytes(p.replica_bytes()), 2.7, 1e-9);
  EXPECT_EQ(p.replica_capacity_per_server(), 10u);  // floor(27 / 2.7)
  EXPECT_EQ(p.total_replica_capacity(), 40u);
  EXPECT_DOUBLE_EQ(p.max_replication_degree(), 4.0);
}

TEST(FixedRateProblem, ValidateAcceptsConsistentInstance) {
  EXPECT_NO_THROW(small_problem().validate());
}

TEST(FixedRateProblem, ValidateRejectsBrokenInstances) {
  {
    FixedRateProblem p = small_problem();
    p.cluster.num_servers = 0;
    EXPECT_THROW(p.validate(), InvalidArgumentError);
  }
  {
    FixedRateProblem p = small_problem();
    p.videos.popularity.clear();
    EXPECT_THROW(p.validate(), InvalidArgumentError);
  }
  {
    FixedRateProblem p = small_problem();
    p.bitrate_bps = 0.0;
    EXPECT_THROW(p.validate(), InvalidArgumentError);
  }
  {
    FixedRateProblem p = small_problem();
    p.cluster.bandwidth_bps_per_server = units::mbps(1);  // < one stream
    EXPECT_THROW(p.validate(), InvalidArgumentError);
  }
  {
    FixedRateProblem p = small_problem();
    p.cluster.storage_bytes_per_server = units::gigabytes(1);  // 0 replicas
    EXPECT_THROW(p.validate(), InvalidArgumentError);
  }
  {
    FixedRateProblem p = small_problem();
    p.videos.popularity = {0.4, 0.6};  // increasing, invalid
    EXPECT_THROW(p.validate(), InvalidArgumentError);
  }
}

TEST(MakePaperProblem, MatchesReconstructedSetting) {
  const FixedRateProblem p = make_paper_problem(0.75, 1.2);
  EXPECT_EQ(p.cluster.num_servers, 8u);
  EXPECT_EQ(p.videos.count(), 300u);
  EXPECT_DOUBLE_EQ(p.bitrate_bps, units::mbps(4));
  EXPECT_DOUBLE_EQ(p.cluster.bandwidth_bps_per_server, units::gbps(1.8));
  EXPECT_DOUBLE_EQ(p.videos.duration_sec, units::minutes(90));
  // Degree 1.2 over 300 videos = 360 replicas = 45 slots per server.
  EXPECT_EQ(p.replica_capacity_per_server(), 45u);
  EXPECT_EQ(p.total_replica_capacity(), 360u);
}

TEST(MakePaperProblem, StorageCoversRequestedDegree) {
  for (double degree : {1.0, 1.2, 1.4, 1.6, 1.8}) {
    const FixedRateProblem p = make_paper_problem(0.75, degree);
    EXPECT_GE(p.max_replication_degree(), degree - 1e-9) << degree;
  }
}

TEST(MakePaperProblem, RejectsDegreeBelowOne) {
  EXPECT_THROW((void)make_paper_problem(0.75, 0.5), InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
