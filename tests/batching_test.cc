#include <gtest/gtest.h>

#include "src/sim/dispatcher.h"
#include "src/sim/simulator.h"
#include "src/util/error.h"
#include "src/util/units.h"

namespace vodrep {
namespace {

constexpr double kRate = units::mbps(4);

Layout single_video_layout() {
  Layout layout;
  layout.assignment = {{0}};
  return layout;
}

std::vector<StreamingServer> make_servers(std::size_t n, double capacity) {
  return std::vector<StreamingServer>(n, StreamingServer(capacity));
}

/// Applies a decide-only dispatch decision to the fleet, as the simulation
/// engine does in production (dispatch() itself never mutates servers).
void apply(const std::optional<DispatchDecision>& d,
           std::vector<StreamingServer>& servers, double bitrate_bps) {
  if (d && d->reserves_bandwidth()) servers[d->server].admit(bitrate_bps);
}

TEST(Batching, JoinWithinWindowUsesNoBandwidth) {
  const Layout layout = single_video_layout();
  Dispatcher dispatcher(layout, RedirectMode::kNone, 0.0,
                        /*window=*/60.0, /*duration=*/1000.0);
  auto servers = make_servers(1, 2 * kRate);
  const auto first = dispatcher.dispatch(0, kRate, servers, 0.0);
  ASSERT_TRUE(first && !first->batched);
  apply(first, servers, kRate);
  const auto second = dispatcher.dispatch(0, kRate, servers, 30.0);
  ASSERT_TRUE(second);
  EXPECT_TRUE(second->batched);
  EXPECT_EQ(second->server, 0u);
  apply(second, servers, kRate);
  EXPECT_DOUBLE_EQ(servers[0].busy_bps(), kRate);  // only the first stream
}

TEST(Batching, MissesWindowOpensNewStream) {
  const Layout layout = single_video_layout();
  Dispatcher dispatcher(layout, RedirectMode::kNone, 0.0, 60.0, 1000.0);
  auto servers = make_servers(1, 2 * kRate);
  apply(dispatcher.dispatch(0, kRate, servers, 0.0), servers, kRate);
  const auto late = dispatcher.dispatch(0, kRate, servers, 61.0);
  ASSERT_TRUE(late);
  EXPECT_FALSE(late->batched);
  apply(late, servers, kRate);
  EXPECT_DOUBLE_EQ(servers[0].busy_bps(), 2 * kRate);
}

TEST(Batching, NewStreamResetsTheWindow) {
  const Layout layout = single_video_layout();
  Dispatcher dispatcher(layout, RedirectMode::kNone, 0.0, 60.0, 1000.0);
  auto servers = make_servers(1, 3 * kRate);
  (void)dispatcher.dispatch(0, kRate, servers, 0.0);     // stream A
  (void)dispatcher.dispatch(0, kRate, servers, 100.0);   // stream B (new)
  const auto join = dispatcher.dispatch(0, kRate, servers, 150.0);
  ASSERT_TRUE(join);
  EXPECT_TRUE(join->batched);  // joins B, 50s old
}

TEST(Batching, EndedStreamIsNotJoinable) {
  const Layout layout = single_video_layout();
  // Window longer than the stream itself: joinability must stop at the
  // stream's end, not the window's.
  Dispatcher dispatcher(layout, RedirectMode::kNone, 0.0, /*window=*/500.0,
                        /*duration=*/100.0);
  auto servers = make_servers(1, 2 * kRate);
  (void)dispatcher.dispatch(0, kRate, servers, 0.0);
  const auto after_end = dispatcher.dispatch(0, kRate, servers, 150.0);
  ASSERT_TRUE(after_end);
  EXPECT_FALSE(after_end->batched);
}

TEST(Batching, DifferentVideosDoNotShare) {
  Layout layout;
  layout.assignment = {{0}, {0}};
  Dispatcher dispatcher(layout, RedirectMode::kNone, 0.0, 60.0, 1000.0);
  auto servers = make_servers(1, 3 * kRate);
  (void)dispatcher.dispatch(0, kRate, servers, 0.0);
  const auto other = dispatcher.dispatch(1, kRate, servers, 10.0);
  ASSERT_TRUE(other);
  EXPECT_FALSE(other->batched);
}

TEST(Batching, PerReplicaSharing) {
  // Two replicas: RR alternates; a join only happens on the scheduled
  // replica's own stream.
  Layout layout;
  layout.assignment = {{0, 1}};
  Dispatcher dispatcher(layout, RedirectMode::kNone, 0.0, 60.0, 1000.0);
  auto servers = make_servers(2, 3 * kRate);
  const auto r1 = dispatcher.dispatch(0, kRate, servers, 0.0);   // server 0
  const auto r2 = dispatcher.dispatch(0, kRate, servers, 1.0);   // server 1
  const auto r3 = dispatcher.dispatch(0, kRate, servers, 2.0);   // joins s0
  const auto r4 = dispatcher.dispatch(0, kRate, servers, 3.0);   // joins s1
  ASSERT_TRUE(r1 && r2 && r3 && r4);
  EXPECT_FALSE(r1->batched);
  EXPECT_FALSE(r2->batched);
  EXPECT_TRUE(r3->batched);
  EXPECT_TRUE(r4->batched);
  EXPECT_EQ(r3->server, 0u);
  EXPECT_EQ(r4->server, 1u);
}

TEST(Batching, FailedServerStreamsNotJoinable) {
  const Layout layout = single_video_layout();
  Dispatcher dispatcher(layout, RedirectMode::kNone, 0.0, 600.0, 1000.0);
  auto servers = make_servers(1, 2 * kRate);
  (void)dispatcher.dispatch(0, kRate, servers, 0.0);
  (void)servers[0].fail();
  dispatcher.on_server_failed(0);
  EXPECT_FALSE(dispatcher.dispatch(0, kRate, servers, 10.0).has_value());
}

TEST(Batching, SimulatorCountsBatchedAndRejectsNothingShareable) {
  Layout layout;
  layout.assignment = {{0}};
  SimConfig config;
  config.num_servers = 1;
  config.bandwidth_bps_per_server = kRate;  // one stream max
  config.stream_bitrate_bps = kRate;
  config.video_duration_sec = 1000.0;
  config.batching_window_sec = 300.0;
  RequestTrace trace;
  trace.horizon = 200.0;
  for (int i = 0; i < 10; ++i) {
    trace.requests.push_back(Request{10.0 * i, 0});
  }
  const SimResult result = simulate(layout, config, trace);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_EQ(result.batched, 9u);  // one real stream, nine joins
  EXPECT_EQ(result.served_per_server[0], 1u);
}

TEST(Batching, DisabledWindowNeverBatches) {
  Layout layout;
  layout.assignment = {{0}};
  SimConfig config;
  config.num_servers = 1;
  config.bandwidth_bps_per_server = kRate;
  config.stream_bitrate_bps = kRate;
  config.video_duration_sec = 1000.0;
  RequestTrace trace;
  trace.horizon = 100.0;
  trace.requests = {Request{0.0, 0}, Request{1.0, 0}};
  const SimResult result = simulate(layout, config, trace);
  EXPECT_EQ(result.batched, 0u);
  EXPECT_EQ(result.rejected, 1u);
}

TEST(Batching, WiderWindowNeverIncreasesRejections) {
  Layout layout;
  layout.assignment = {{0}, {1}};
  SimConfig narrow;
  narrow.num_servers = 2;
  narrow.bandwidth_bps_per_server = 3 * kRate;
  narrow.stream_bitrate_bps = kRate;
  narrow.video_duration_sec = 500.0;
  narrow.batching_window_sec = 10.0;
  SimConfig wide = narrow;
  wide.batching_window_sec = 120.0;
  RequestTrace trace;
  trace.horizon = 400.0;
  for (int i = 0; i < 30; ++i) {
    trace.requests.push_back(
        Request{13.0 * i, static_cast<std::size_t>(i % 2)});
  }
  const SimResult r_narrow = simulate(layout, narrow, trace);
  const SimResult r_wide = simulate(layout, wide, trace);
  EXPECT_LE(r_wide.rejected, r_narrow.rejected);
  EXPECT_GE(r_wide.batched, r_narrow.batched);
}

TEST(Patching, JoinPaysTheMissedPrefix) {
  const Layout layout = single_video_layout();
  Dispatcher dispatcher(layout, RedirectMode::kNone, 0.0, 60.0, 1000.0,
                        BatchingMode::kPatching);
  auto servers = make_servers(1, 3 * kRate);
  apply(dispatcher.dispatch(0, kRate, servers, 0.0), servers, kRate);
  const auto join = dispatcher.dispatch(0, kRate, servers, 30.0);
  ASSERT_TRUE(join);
  EXPECT_TRUE(join->batched);
  EXPECT_DOUBLE_EQ(join->patch_duration_sec, 30.0);
  apply(join, servers, kRate);
  // The patch stream holds bandwidth on top of the base stream.
  EXPECT_DOUBLE_EQ(servers[0].busy_bps(), 2 * kRate);
}

TEST(Patching, SimultaneousJoinIsFree) {
  const Layout layout = single_video_layout();
  Dispatcher dispatcher(layout, RedirectMode::kNone, 0.0, 60.0, 1000.0,
                        BatchingMode::kPatching);
  auto servers = make_servers(1, 2 * kRate);
  apply(dispatcher.dispatch(0, kRate, servers, 5.0), servers, kRate);
  const auto join = dispatcher.dispatch(0, kRate, servers, 5.0);
  ASSERT_TRUE(join);
  EXPECT_TRUE(join->batched);
  EXPECT_DOUBLE_EQ(join->patch_duration_sec, 0.0);
  apply(join, servers, kRate);  // a zero-length patch reserves nothing
  EXPECT_DOUBLE_EQ(servers[0].busy_bps(), kRate);
}

TEST(Patching, FullServerCannotPatch) {
  const Layout layout = single_video_layout();
  Dispatcher dispatcher(layout, RedirectMode::kNone, 0.0, 60.0, 1000.0,
                        BatchingMode::kPatching);
  auto servers = make_servers(1, kRate);  // room for the base stream only
  apply(dispatcher.dispatch(0, kRate, servers, 0.0), servers, kRate);
  // The patch needs bandwidth the server does not have; with no redirect
  // mode the request is rejected outright.
  EXPECT_FALSE(dispatcher.dispatch(0, kRate, servers, 30.0).has_value());
}

TEST(Patching, SimulatorReleasesPatchAfterPrefix) {
  Layout layout;
  layout.assignment = {{0}};
  SimConfig config;
  config.num_servers = 1;
  config.bandwidth_bps_per_server = 2 * kRate;
  config.stream_bitrate_bps = kRate;
  config.video_duration_sec = 1000.0;
  config.batching_window_sec = 100.0;
  config.batching_mode = BatchingMode::kPatching;
  RequestTrace trace;
  trace.horizon = 200.0;
  // Base stream at t=0; join at t=20 patches for 20 s (releases at 40);
  // a third join at t=50 patches for 50 s and must fit — it would not if
  // the first patch still held its slot.
  trace.requests = {Request{0.0, 0}, Request{20.0, 0}, Request{50.0, 0}};
  const SimResult result = simulate(layout, config, trace);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_EQ(result.batched, 2u);
}

TEST(Patching, CostsSitBetweenNoBatchingAndPiggyback) {
  Layout layout;
  layout.assignment = {{0}};
  SimConfig base;
  base.num_servers = 1;
  base.bandwidth_bps_per_server = 3 * kRate;
  base.stream_bitrate_bps = kRate;
  base.video_duration_sec = 300.0;
  RequestTrace trace;
  trace.horizon = 280.0;
  for (int i = 0; i < 14; ++i) {
    trace.requests.push_back(Request{20.0 * i, 0});
  }
  SimConfig piggy = base;
  piggy.batching_window_sec = 120.0;
  SimConfig patch = piggy;
  patch.batching_mode = BatchingMode::kPatching;
  const SimResult none = simulate(layout, base, trace);
  const SimResult piggyback = simulate(layout, piggy, trace);
  const SimResult patching = simulate(layout, patch, trace);
  EXPECT_LE(piggyback.rejected, patching.rejected);
  EXPECT_LE(patching.rejected, none.rejected);
}

TEST(Batching, DispatcherRejectsInvalidConfiguration) {
  const Layout layout = single_video_layout();
  EXPECT_THROW(Dispatcher(layout, RedirectMode::kNone, 0.0, -1.0, 100.0),
               InvalidArgumentError);
  EXPECT_THROW(Dispatcher(layout, RedirectMode::kNone, 0.0, 10.0, 0.0),
               InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
