// Differential tests pinning the unified SimEngine to the pre-engine
// simulators: frozen, verbatim copies of the seed event loops (priority
// queue + full O(N) metric rescan per event) replay the same traces as the
// engine, and every SimResult field must agree — counters and per-server
// served counts exactly, float metrics within rounding tolerance (the
// engine maintains the utilization sum/sum-of-squares/max incrementally
// instead of recomputing them per event).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <queue>
#include <vector>

#include "src/core/objective.h"
#include "src/core/striping.h"
#include "src/sim/hybrid_simulator.h"
#include "src/sim/simulator.h"
#include "src/sim/striped_simulator.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"
#include "src/workload/trace.h"

namespace vodrep {
namespace {

// ---------------------------------------------------------------------------
// Frozen seed reference: replication organization.
// ---------------------------------------------------------------------------

struct SeedDeparture {
  double time;
  std::size_t server;
  bool via_backbone;

  bool operator>(const SeedDeparture& other) const {
    return time > other.time;
  }
};

/// The seed simulators' per-event O(N) integrator, copied verbatim.
class SeedLoadIntegrator {
 public:
  explicit SeedLoadIntegrator(std::vector<double> capacities_bps)
      : capacities_bps_(std::move(capacities_bps)),
        busy_integral_(capacities_bps_.size(), 0.0) {}

  void advance(const std::vector<StreamingServer>& servers, double now) {
    const double dt = now - last_time_;
    if (dt > 0.0) {
      std::vector<double> utilization(servers.size());
      double sum = 0.0;
      double max = 0.0;
      for (std::size_t s = 0; s < servers.size(); ++s) {
        const double busy = servers[s].busy_bps();
        busy_integral_[s] += busy * dt;
        utilization[s] = busy / capacities_bps_[s];
        sum += utilization[s];
        max = std::max(max, utilization[s]);
      }
      const double mean = sum / static_cast<double>(servers.size());
      const double eq2 = imbalance_max_relative(utilization);
      imbalance_eq2_.add(eq2, dt);
      imbalance_cv_.add(imbalance_cv(utilization), dt);
      imbalance_capacity_.add(std::max(0.0, max - mean), dt);
      peak_eq2_ = std::max(peak_eq2_, eq2);
      last_time_ = now;
    }
  }

  [[nodiscard]] double mean_eq2() const { return imbalance_eq2_.mean(); }
  [[nodiscard]] double mean_cv() const { return imbalance_cv_.mean(); }
  [[nodiscard]] double mean_capacity() const {
    return imbalance_capacity_.mean();
  }
  [[nodiscard]] double peak_eq2() const { return peak_eq2_; }
  [[nodiscard]] std::vector<double> mean_utilization(double horizon) const {
    std::vector<double> util(busy_integral_.size(), 0.0);
    if (horizon > 0.0) {
      for (std::size_t s = 0; s < util.size(); ++s) {
        util[s] = busy_integral_[s] / (horizon * capacities_bps_[s]);
      }
    }
    return util;
  }

 private:
  std::vector<double> capacities_bps_;
  double last_time_ = 0.0;
  TimeWeightedMean imbalance_eq2_;
  TimeWeightedMean imbalance_cv_;
  TimeWeightedMean imbalance_capacity_;
  double peak_eq2_ = 0.0;
  std::vector<double> busy_integral_;
};

/// The seed `simulate()` loop, copied verbatim (with the admission applied
/// by the caller since Dispatcher::dispatch is now decide-only; the seed
/// admitted at the identical point inside dispatch()).
SimResult seed_simulate(const Layout& layout, const SimConfig& config,
                        const RequestTrace& trace) {
  config.validate();

  std::vector<StreamingServer> servers;
  std::vector<double> capacities(config.num_servers);
  servers.reserve(config.num_servers);
  for (std::size_t s = 0; s < config.num_servers; ++s) {
    capacities[s] = config.bandwidth_of(s);
    servers.emplace_back(capacities[s]);
  }
  Dispatcher dispatcher(layout, config.redirect, config.backbone_bps,
                        config.batching_window_sec, config.video_duration_sec,
                        config.batching_mode);
  std::priority_queue<SeedDeparture, std::vector<SeedDeparture>,
                      std::greater<>>
      departures;
  SeedLoadIntegrator integrator(capacities);

  SimResult result;
  result.total_requests = trace.size();

  std::size_t next_failure = 0;
  auto drain_until = [&](double now) {
    for (;;) {
      const bool have_departure =
          !departures.empty() && departures.top().time <= now;
      const bool have_failure =
          next_failure < config.failures.size() &&
          config.failures[next_failure].time <= now;
      if (have_failure &&
          (!have_departure ||
           config.failures[next_failure].time <= departures.top().time)) {
        const ServerFailure& failure = config.failures[next_failure++];
        integrator.advance(servers, failure.time);
        result.disrupted += servers[failure.server].fail();
        dispatcher.on_server_failed(failure.server);
        continue;
      }
      if (!have_departure) break;
      const SeedDeparture d = departures.top();
      departures.pop();
      integrator.advance(servers, d.time);
      if (!servers[d.server].failed()) {
        servers[d.server].release(config.stream_bitrate_bps);
      }
      if (d.via_backbone) {
        dispatcher.release_backbone(config.stream_bitrate_bps);
      }
    }
    integrator.advance(servers, now);
  };

  for (const Request& request : trace.requests) {
    drain_until(request.arrival_time);
    const auto decision =
        dispatcher.dispatch(request.video, config.stream_bitrate_bps, servers,
                            request.arrival_time);
    if (!decision.has_value()) {
      ++result.rejected;
      continue;
    }
    if (decision->reserves_bandwidth()) {
      servers[decision->server].admit(config.stream_bitrate_bps);
    }
    if (decision->batched) {
      ++result.batched;
      if (decision->patch_duration_sec > 0.0) {
        departures.push(
            SeedDeparture{request.arrival_time + decision->patch_duration_sec,
                          decision->server, false});
      }
      continue;
    }
    if (decision->redirected) ++result.redirected;
    if (decision->via_backbone) ++result.proxied;
    departures.push(SeedDeparture{
        request.arrival_time +
            request.watch_fraction * config.video_duration_sec,
        decision->server, decision->via_backbone});
  }
  drain_until(trace.horizon);

  result.mean_imbalance_eq2 = integrator.mean_eq2();
  result.mean_imbalance_cv = integrator.mean_cv();
  result.mean_imbalance_capacity = integrator.mean_capacity();
  result.peak_imbalance_eq2 = integrator.peak_eq2();
  result.served_per_server.resize(config.num_servers);
  for (std::size_t s = 0; s < config.num_servers; ++s) {
    result.served_per_server[s] = servers[s].served_total();
  }
  result.utilization_per_server = integrator.mean_utilization(trace.horizon);
  return result;
}

// ---------------------------------------------------------------------------
// Frozen seed reference: striped organization.
// ---------------------------------------------------------------------------

struct SeedStripedStream {
  std::size_t video = 0;
  bool alive = false;
};

struct SeedStripedDeparture {
  double time;
  std::size_t stream_id;

  bool operator>(const SeedStripedDeparture& other) const {
    return time > other.time;
  }
};

SimResult seed_simulate_striped(const StripedLayout& layout,
                                const SimConfig& config,
                                const RequestTrace& trace) {
  config.validate();
  layout.validate(config.num_servers);

  std::vector<StreamingServer> servers;
  servers.reserve(config.num_servers);
  for (std::size_t s = 0; s < config.num_servers; ++s) {
    servers.emplace_back(config.bandwidth_of(s));
  }
  std::priority_queue<SeedStripedDeparture, std::vector<SeedStripedDeparture>,
                      std::greater<>>
      departures;
  std::vector<SeedStripedStream> streams;

  SimResult result;
  result.total_requests = trace.size();

  std::vector<double> capacities(config.num_servers);
  for (std::size_t s = 0; s < config.num_servers; ++s) {
    capacities[s] = config.bandwidth_of(s);
  }
  SeedLoadIntegrator integrator(capacities);

  auto share_of = [&](std::size_t video) {
    return config.stream_bitrate_bps /
           static_cast<double>(layout.groups[video].size());
  };

  auto fail_server = [&](std::size_t failed) {
    (void)servers[failed].fail();
    for (SeedStripedStream& stream : streams) {
      if (!stream.alive) continue;
      const auto& group = layout.groups[stream.video];
      if (std::find(group.begin(), group.end(), failed) == group.end()) {
        continue;
      }
      stream.alive = false;
      ++result.disrupted;
      const double share = share_of(stream.video);
      for (std::size_t s : group) {
        if (s != failed && !servers[s].failed()) servers[s].release(share);
      }
    }
  };

  std::size_t next_failure = 0;
  auto drain_until = [&](double now) {
    for (;;) {
      const bool have_departure =
          !departures.empty() && departures.top().time <= now;
      const bool have_failure =
          next_failure < config.failures.size() &&
          config.failures[next_failure].time <= now;
      if (have_failure &&
          (!have_departure ||
           config.failures[next_failure].time <= departures.top().time)) {
        const ServerFailure& failure = config.failures[next_failure++];
        integrator.advance(servers, failure.time);
        fail_server(failure.server);
        continue;
      }
      if (!have_departure) break;
      const SeedStripedDeparture d = departures.top();
      departures.pop();
      integrator.advance(servers, d.time);
      SeedStripedStream& stream = streams[d.stream_id];
      if (stream.alive) {
        stream.alive = false;
        const double share = share_of(stream.video);
        for (std::size_t s : layout.groups[stream.video]) {
          servers[s].release(share);
        }
      }
    }
    integrator.advance(servers, now);
  };

  for (const Request& request : trace.requests) {
    drain_until(request.arrival_time);
    const auto& group = layout.groups[request.video];
    const double share = share_of(request.video);
    const bool admissible = std::all_of(
        group.begin(), group.end(),
        [&](std::size_t s) { return servers[s].can_admit(share); });
    if (!admissible) {
      ++result.rejected;
      continue;
    }
    for (std::size_t s : group) servers[s].admit(share);
    streams.push_back(SeedStripedStream{request.video, true});
    departures.push(SeedStripedDeparture{
        request.arrival_time +
            request.watch_fraction * config.video_duration_sec,
        streams.size() - 1});
  }
  drain_until(trace.horizon);

  result.mean_imbalance_eq2 = integrator.mean_eq2();
  result.mean_imbalance_cv = integrator.mean_cv();
  result.mean_imbalance_capacity = integrator.mean_capacity();
  result.peak_imbalance_eq2 = integrator.peak_eq2();
  result.served_per_server.resize(config.num_servers);
  for (std::size_t s = 0; s < config.num_servers; ++s) {
    result.served_per_server[s] = servers[s].served_total();
  }
  result.utilization_per_server = integrator.mean_utilization(trace.horizon);
  return result;
}

// ---------------------------------------------------------------------------
// Frozen seed reference: hybrid organization.
// ---------------------------------------------------------------------------

struct SeedHybridStream {
  std::size_t video = 0;
  std::size_t group = 0;
  bool alive = false;
};

struct SeedHybridDeparture {
  double time;
  std::size_t stream_id;

  bool operator>(const SeedHybridDeparture& other) const {
    return time > other.time;
  }
};

SimResult seed_simulate_hybrid(const HybridLayout& layout,
                               const SimConfig& config,
                               const RequestTrace& trace) {
  config.validate();
  layout.validate(config.num_servers);

  std::vector<StreamingServer> servers;
  servers.reserve(config.num_servers);
  for (std::size_t s = 0; s < config.num_servers; ++s) {
    servers.emplace_back(config.bandwidth_of(s));
  }
  std::priority_queue<SeedHybridDeparture, std::vector<SeedHybridDeparture>,
                      std::greater<>>
      departures;
  std::vector<SeedHybridStream> streams;
  std::vector<std::size_t> rr_counter(layout.num_videos(), 0);

  SimResult result;
  result.total_requests = trace.size();

  std::vector<double> capacities(config.num_servers);
  for (std::size_t s = 0; s < config.num_servers; ++s) {
    capacities[s] = config.bandwidth_of(s);
  }
  SeedLoadIntegrator integrator(capacities);

  auto group_of =
      [&](const SeedHybridStream& stream) -> const std::vector<std::size_t>& {
    return layout.groups[stream.video][stream.group];
  };
  auto share_of = [&](const SeedHybridStream& stream) {
    return config.stream_bitrate_bps /
           static_cast<double>(group_of(stream).size());
  };

  auto fail_server = [&](std::size_t failed) {
    (void)servers[failed].fail();
    for (SeedHybridStream& stream : streams) {
      if (!stream.alive) continue;
      const auto& group = group_of(stream);
      if (std::find(group.begin(), group.end(), failed) == group.end()) {
        continue;
      }
      stream.alive = false;
      ++result.disrupted;
      const double share = share_of(stream);
      for (std::size_t s : group) {
        if (s != failed && !servers[s].failed()) servers[s].release(share);
      }
    }
  };

  std::size_t next_failure = 0;
  auto drain_until = [&](double now) {
    for (;;) {
      const bool have_departure =
          !departures.empty() && departures.top().time <= now;
      const bool have_failure =
          next_failure < config.failures.size() &&
          config.failures[next_failure].time <= now;
      if (have_failure &&
          (!have_departure ||
           config.failures[next_failure].time <= departures.top().time)) {
        const ServerFailure& failure = config.failures[next_failure++];
        integrator.advance(servers, failure.time);
        fail_server(failure.server);
        continue;
      }
      if (!have_departure) break;
      const SeedHybridDeparture d = departures.top();
      departures.pop();
      integrator.advance(servers, d.time);
      SeedHybridStream& stream = streams[d.stream_id];
      if (stream.alive) {
        stream.alive = false;
        const double share = share_of(stream);
        for (std::size_t s : group_of(stream)) servers[s].release(share);
      }
    }
    integrator.advance(servers, now);
  };

  for (const Request& request : trace.requests) {
    drain_until(request.arrival_time);
    const auto& copies = layout.groups[request.video];
    const std::size_t pick = rr_counter[request.video] % copies.size();
    ++rr_counter[request.video];
    const auto& group = copies[pick];
    const double share =
        config.stream_bitrate_bps / static_cast<double>(group.size());
    const bool admissible = std::all_of(
        group.begin(), group.end(),
        [&](std::size_t s) { return servers[s].can_admit(share); });
    if (!admissible) {
      ++result.rejected;
      continue;
    }
    for (std::size_t s : group) servers[s].admit(share);
    streams.push_back(SeedHybridStream{request.video, pick, true});
    departures.push(SeedHybridDeparture{
        request.arrival_time +
            request.watch_fraction * config.video_duration_sec,
        streams.size() - 1});
  }
  drain_until(trace.horizon);

  result.mean_imbalance_eq2 = integrator.mean_eq2();
  result.mean_imbalance_cv = integrator.mean_cv();
  result.mean_imbalance_capacity = integrator.mean_capacity();
  result.peak_imbalance_eq2 = integrator.peak_eq2();
  result.served_per_server.resize(config.num_servers);
  for (std::size_t s = 0; s < config.num_servers; ++s) {
    result.served_per_server[s] = servers[s].served_total();
  }
  result.utilization_per_server = integrator.mean_utilization(trace.horizon);
  return result;
}

// ---------------------------------------------------------------------------
// Comparison harness.
// ---------------------------------------------------------------------------

void expect_near_rel(double seed, double engine, const char* what,
                     double rel_tol = 1e-7) {
  const double tol = rel_tol * std::max(1.0, std::abs(seed));
  EXPECT_NEAR(seed, engine, tol) << what;
}

/// Counters and served counts must be bit-exact (the engine replays the
/// identical admission decisions); integrated float metrics may differ in
/// the last ulps because the engine accumulates them incrementally.
void expect_same_result(const SimResult& seed, const SimResult& engine) {
  EXPECT_EQ(seed.total_requests, engine.total_requests);
  EXPECT_EQ(seed.rejected, engine.rejected);
  EXPECT_EQ(seed.redirected, engine.redirected);
  EXPECT_EQ(seed.proxied, engine.proxied);
  EXPECT_EQ(seed.batched, engine.batched);
  EXPECT_EQ(seed.disrupted, engine.disrupted);
  EXPECT_EQ(seed.served_per_server, engine.served_per_server);
  expect_near_rel(seed.mean_imbalance_eq2, engine.mean_imbalance_eq2,
                  "mean_imbalance_eq2");
  // The CV metric goes through sumsq/n - mean^2, which cancels
  // catastrophically when the loads are (near-)equal: a true CV of zero
  // leaves ~1e-7 of rounding residue in the incremental accumulator where
  // the two-pass seed computes ~1e-17.  Wider tolerance, still far below
  // any CV value the experiments act on.
  expect_near_rel(seed.mean_imbalance_cv, engine.mean_imbalance_cv,
                  "mean_imbalance_cv", 1e-5);
  expect_near_rel(seed.mean_imbalance_capacity,
                  engine.mean_imbalance_capacity, "mean_imbalance_capacity");
  expect_near_rel(seed.peak_imbalance_eq2, engine.peak_imbalance_eq2,
                  "peak_imbalance_eq2");
  ASSERT_EQ(seed.utilization_per_server.size(),
            engine.utilization_per_server.size());
  for (std::size_t s = 0; s < seed.utilization_per_server.size(); ++s) {
    expect_near_rel(seed.utilization_per_server[s],
                    engine.utilization_per_server[s],
                    "utilization_per_server");
  }
}

struct World {
  std::size_t num_videos;
  std::size_t num_servers;
  SimConfig config;
  RequestTrace trace;
};

/// Random worlds spanning redirects, batching modes, injected failures,
/// heterogeneous links, and abandonment — same envelope as the fuzz suite.
World random_world(Rng& rng, bool replication_extensions) {
  World world;
  world.num_videos = 5 + rng.uniform_index(40);
  world.num_servers = 2 + rng.uniform_index(9);

  world.config.num_servers = world.num_servers;
  world.config.stream_bitrate_bps = units::mbps(4);
  world.config.bandwidth_bps_per_server =
      units::mbps(4) * static_cast<double>(1 + rng.uniform_index(30));
  if (rng.bernoulli(0.3)) {
    world.config.per_server_bandwidth_bps.resize(world.num_servers);
    for (double& b : world.config.per_server_bandwidth_bps) {
      b = units::mbps(4) * static_cast<double>(1 + rng.uniform_index(30));
    }
  }
  world.config.video_duration_sec = rng.uniform(50.0, 2000.0);
  if (replication_extensions) {
    switch (rng.uniform_index(3)) {
      case 0: world.config.redirect = RedirectMode::kNone; break;
      case 1: world.config.redirect = RedirectMode::kOtherHolders; break;
      default: world.config.redirect = RedirectMode::kBackboneProxy; break;
    }
    world.config.backbone_bps = rng.uniform(0.0, 1e9);
    if (rng.bernoulli(0.5)) {
      world.config.batching_window_sec = rng.uniform(1.0, 500.0);
      world.config.batching_mode = rng.bernoulli(0.5)
                                       ? BatchingMode::kPiggyback
                                       : BatchingMode::kPatching;
    }
  }

  const double horizon = rng.uniform(200.0, 3000.0);
  if (rng.bernoulli(0.5)) {
    const std::size_t crashes = 1 + rng.uniform_index(2);
    double t = 0.0;
    for (std::size_t k = 0; k < crashes; ++k) {
      t += rng.uniform(1.0, horizon / 2.0);
      world.config.failures.push_back(ServerFailure{
          t, static_cast<std::size_t>(rng.uniform_index(world.num_servers))});
    }
  }

  TraceSpec spec;
  spec.arrival_rate = rng.uniform(0.05, 1.0);
  spec.horizon = horizon;
  spec.popularity = zipf_popularity(world.num_videos, rng.uniform(0.0, 1.1));
  if (rng.bernoulli(0.4)) {
    spec.abandonment.completion_probability = rng.uniform(0.2, 1.0);
  }
  world.trace = generate_trace(rng, spec);
  return world;
}

/// Random replication layout: each video on 1..N distinct servers.
Layout random_layout(Rng& rng, std::size_t num_videos,
                     std::size_t num_servers) {
  Layout layout;
  layout.assignment.resize(num_videos);
  std::vector<std::size_t> pool(num_servers);
  for (std::size_t v = 0; v < num_videos; ++v) {
    for (std::size_t s = 0; s < num_servers; ++s) pool[s] = s;
    const std::size_t replicas = 1 + rng.uniform_index(num_servers);
    for (std::size_t r = 0; r < replicas; ++r) {
      const std::size_t pick = r + rng.uniform_index(num_servers - r);
      std::swap(pool[r], pool[pick]);
      layout.assignment[v].push_back(pool[r]);
    }
  }
  return layout;
}

TEST(SimDifferential, EngineReproducesSeedReplicationSimulator) {
  Rng rng(0xD1FF1);
  for (int trial = 0; trial < 60; ++trial) {
    SCOPED_TRACE(testing::Message() << "trial " << trial);
    const World world = random_world(rng, /*replication_extensions=*/true);
    const Layout layout =
        random_layout(rng, world.num_videos, world.num_servers);
    const SimResult seed = seed_simulate(layout, world.config, world.trace);
    const SimResult engine = simulate(layout, world.config, world.trace);
    expect_same_result(seed, engine);
  }
}

TEST(SimDifferential, EngineReproducesSeedStripedSimulator) {
  Rng rng(0xD1FF2);
  for (int trial = 0; trial < 40; ++trial) {
    SCOPED_TRACE(testing::Message() << "trial " << trial);
    const World world = random_world(rng, /*replication_extensions=*/false);
    const std::size_t width = 1 + rng.uniform_index(world.num_servers);
    const StripedLayout layout =
        make_striped_layout(world.num_videos, world.num_servers, width);
    const SimResult seed =
        seed_simulate_striped(layout, world.config, world.trace);
    const SimResult engine =
        simulate_striped(layout, world.config, world.trace);
    expect_same_result(seed, engine);
  }
}

TEST(SimDifferential, EngineReproducesSeedHybridSimulator) {
  Rng rng(0xD1FF3);
  for (int trial = 0; trial < 40; ++trial) {
    SCOPED_TRACE(testing::Message() << "trial " << trial);
    const World world = random_world(rng, /*replication_extensions=*/false);
    const std::size_t width = 1 + rng.uniform_index(world.num_servers);
    const std::size_t replicas =
        1 + rng.uniform_index(world.num_servers / width);
    const HybridLayout layout = make_hybrid_layout(
        world.num_videos, world.num_servers, width, replicas);
    const SimResult seed =
        seed_simulate_hybrid(layout, world.config, world.trace);
    const SimResult engine =
        simulate_hybrid(layout, world.config, world.trace);
    expect_same_result(seed, engine);
  }
}

}  // namespace
}  // namespace vodrep
