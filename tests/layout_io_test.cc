#include "src/core/layout_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/core/adams_replication.h"
#include "src/core/slf_placement.h"
#include "src/util/error.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

PlacementFile sample_placement() {
  const auto popularity = zipf_popularity(20, 0.75);
  const AdamsReplication adams;
  const SmallestLoadFirstPlacement slf;
  const auto plan = adams.replicate(popularity, 4, 28);
  PlacementFile placement;
  placement.num_servers = 4;
  placement.layout = slf.place(plan, popularity, 4, 7);
  return placement;
}

TEST(LayoutIo, RoundTripsExactly) {
  const PlacementFile original = sample_placement();
  std::stringstream ss;
  save_placement(ss, original);
  const PlacementFile loaded = load_placement(ss);
  EXPECT_EQ(loaded.num_servers, original.num_servers);
  EXPECT_EQ(loaded.layout.assignment, original.layout.assignment);
  EXPECT_EQ(loaded.plan().replicas, original.plan().replicas);
}

TEST(LayoutIo, HeaderCarriesDimensions) {
  const PlacementFile original = sample_placement();
  std::stringstream ss;
  save_placement(ss, original);
  std::string magic;
  std::size_t videos = 0;
  std::size_t servers = 0;
  ss >> magic >> videos >> servers;
  EXPECT_EQ(magic, "vodrep-layout");
  EXPECT_EQ(videos, 20u);
  EXPECT_EQ(servers, 4u);
}

TEST(LayoutIo, SaveRejectsEmptyVideo) {
  PlacementFile placement;
  placement.num_servers = 2;
  placement.layout.assignment = {{0}, {}};
  std::stringstream ss;
  EXPECT_THROW(save_placement(ss, placement), InvalidArgumentError);
}

TEST(LayoutIo, SaveRejectsDuplicateServers) {
  PlacementFile placement;
  placement.num_servers = 2;
  placement.layout.assignment = {{0, 0}};
  std::stringstream ss;
  EXPECT_THROW(save_placement(ss, placement), InvalidArgumentError);
}

TEST(LayoutIo, LoadRejectsBadHeader) {
  std::stringstream ss("not-a-layout 1 2\n0 1 0\n");
  EXPECT_THROW((void)load_placement(ss), InvalidArgumentError);
}

TEST(LayoutIo, LoadRejectsTruncatedBody) {
  std::stringstream ss("vodrep-layout 2 2\n0 1 0\n");
  EXPECT_THROW((void)load_placement(ss), InvalidArgumentError);
}

TEST(LayoutIo, LoadRejectsOutOfRangeServer) {
  std::stringstream ss("vodrep-layout 1 2\n0 1 5\n");
  EXPECT_THROW((void)load_placement(ss), InvalidArgumentError);
}

TEST(LayoutIo, LoadRejectsReplicaCountBeyondServers) {
  std::stringstream ss("vodrep-layout 1 2\n0 3 0 1 0\n");
  EXPECT_THROW((void)load_placement(ss), InvalidArgumentError);
}

TEST(LayoutIo, LoadRejectsDuplicateVideoRecord) {
  std::stringstream ss("vodrep-layout 2 2\n0 1 0\n0 1 1\n");
  EXPECT_THROW((void)load_placement(ss), InvalidArgumentError);
}

TEST(LayoutIo, LoadAcceptsOutOfOrderRecords) {
  std::stringstream ss("vodrep-layout 2 2\n1 1 0\n0 2 0 1\n");
  const PlacementFile placement = load_placement(ss);
  EXPECT_EQ(placement.layout.assignment[0],
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(placement.layout.assignment[1], (std::vector<std::size_t>{0}));
}

}  // namespace
}  // namespace vodrep
