#include "src/core/uniform_replication.h"

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

TEST(UniformReplication, ExactMultipleGivesEqualCounts) {
  const UniformReplication policy;
  const auto plan = policy.replicate(zipf_popularity(10, 0.75), 8, 30);
  for (std::size_t r : plan.replicas) EXPECT_EQ(r, 3u);
}

TEST(UniformReplication, LeftoverGoesToHottestVideos) {
  const UniformReplication policy;
  const auto plan = policy.replicate(zipf_popularity(10, 0.75), 8, 33);
  EXPECT_EQ(plan.replicas[0], 4u);
  EXPECT_EQ(plan.replicas[1], 4u);
  EXPECT_EQ(plan.replicas[2], 4u);
  EXPECT_EQ(plan.replicas[3], 3u);
  EXPECT_EQ(plan.total_replicas(), 33u);
}

TEST(UniformReplication, CapsAtFullReplication) {
  const UniformReplication policy;
  const auto plan = policy.replicate(zipf_popularity(5, 0.75), 3, 100);
  for (std::size_t r : plan.replicas) EXPECT_EQ(r, 3u);
}

TEST(UniformReplication, BudgetEqualToVideos) {
  const UniformReplication policy;
  const auto plan = policy.replicate(zipf_popularity(6, 0.5), 4, 6);
  for (std::size_t r : plan.replicas) EXPECT_EQ(r, 1u);
}

TEST(UniformReplication, InsufficientBudgetThrows) {
  const UniformReplication policy;
  EXPECT_THROW((void)policy.replicate(zipf_popularity(6, 0.5), 4, 5),
               InfeasibleError);
}

TEST(UniformReplication, OptimalForUniformPopularity) {
  // With uniform popularity every plan that spreads the budget evenly
  // minimizes max w; uniform replication should achieve max w = p / base.
  const UniformReplication policy;
  const auto p = uniform_popularity(10);
  const auto plan = policy.replicate(p, 8, 20);
  EXPECT_DOUBLE_EQ(plan.max_weight(p), 0.1 / 2.0);
}

}  // namespace
}  // namespace vodrep
