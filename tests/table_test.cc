#include "src/util/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/util/error.h"

namespace vodrep {
namespace {

TEST(Table, RequiresAtLeastOneColumn) {
  EXPECT_THROW(Table({}), InvalidArgumentError);
}

TEST(Table, RowMustMatchColumnCount) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), InvalidArgumentError);
  EXPECT_THROW(t.add_row({1.0, 2.0, 3.0}), InvalidArgumentError);
  t.add_row({1.0, 2.0});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, PrintsHeaderSeparatorAndRows) {
  Table t({"rate", "reject%"});
  t.add_row({std::string("4"), 0.5});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("rate"), std::string::npos);
  EXPECT_NE(out.find("reject%"), std::string::npos);
  EXPECT_NE(out.find("0.500"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, PrecisionControlsDoubleFormatting) {
  Table t({"x"});
  t.set_precision(1);
  t.add_row({3.14159});
  EXPECT_NE(t.to_string().find("3.1"), std::string::npos);
  EXPECT_EQ(t.to_string().find("3.14"), std::string::npos);
  EXPECT_THROW(t.set_precision(-1), InvalidArgumentError);
}

TEST(Table, IntegerCellsHaveNoDecimals) {
  Table t({"n"});
  t.add_row({static_cast<long long>(42)});
  EXPECT_NE(t.to_string().find("42"), std::string::npos);
  EXPECT_EQ(t.to_string().find("42.0"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"name", "value"});
  t.add_row({std::string("a,b"), std::string("say \"hi\"")});
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvHasHeaderAndOneLinePerRow) {
  Table t({"a", "b"});
  t.add_row({1.0, 2.0});
  t.add_row({3.0, 4.0});
  std::ostringstream os;
  t.print_csv(os);
  std::string line;
  std::istringstream is(os.str());
  int lines = 0;
  while (std::getline(is, line)) ++lines;
  EXPECT_EQ(lines, 3);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"x"});
  t.add_row({std::string("wide-cell-content")});
  t.add_row({std::string("a")});
  std::istringstream is(t.to_string());
  std::string header;
  std::string sep;
  std::string row1;
  std::string row2;
  std::getline(is, header);
  std::getline(is, sep);
  std::getline(is, row1);
  std::getline(is, row2);
  EXPECT_EQ(row1.size(), row2.size());
}

}  // namespace
}  // namespace vodrep
