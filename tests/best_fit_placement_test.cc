#include "src/core/best_fit_placement.h"

#include <gtest/gtest.h>

#include "src/core/adams_replication.h"
#include "src/core/objective.h"
#include "src/util/error.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

TEST(BestFitPlacement, ProducesValidLayouts) {
  const AdamsReplication adams;
  const BestFitPlacement bf;
  const auto popularity = zipf_popularity(40, 0.75);
  const auto plan = adams.replicate(popularity, 8, 64);
  const Layout layout = bf.place(plan, popularity, 8, 8);
  EXPECT_NO_THROW(layout.validate(plan, 8, 8));
}

TEST(BestFitPlacement, GreedyPicksLeastLoadedServer) {
  ReplicationPlan plan;
  plan.replicas = {1, 1, 1};
  const auto popularity = normalized_popularity({0.5, 0.3, 0.2});
  const BestFitPlacement bf;
  const Layout layout = bf.place(plan, popularity, 2, 2);
  // v0 -> s0 (0.5); v1 -> s1 (0.3); v2 -> s1 (0.3 < 0.5).
  EXPECT_EQ(layout.assignment[0], (std::vector<std::size_t>{0}));
  EXPECT_EQ(layout.assignment[1], (std::vector<std::size_t>{1}));
  EXPECT_EQ(layout.assignment[2], (std::vector<std::size_t>{1}));
}

TEST(BestFitPlacement, RespectsStorageCapacity) {
  ReplicationPlan plan;
  plan.replicas = {1, 1, 1, 1};
  const auto popularity = uniform_popularity(4);
  const BestFitPlacement bf;
  const Layout layout = bf.place(plan, popularity, 2, 2);
  const auto counts = layout.replicas_per_server(2);
  EXPECT_LE(counts[0], 2u);
  EXPECT_LE(counts[1], 2u);
}

TEST(BestFitPlacement, TightDistinctnessInstanceIsPlaced) {
  // Capacity exactly one slot per server: a 2-replica video must use both
  // servers, which greedy achieves because the second replica excludes the
  // first's host.
  ReplicationPlan plan;
  plan.replicas = {2};
  const BestFitPlacement bf;
  const Layout layout = bf.place(plan, {1.0}, 2, 1);
  EXPECT_NO_THROW(layout.validate(plan, 2, 1));
}

TEST(BestFitPlacement, ComparableToSlfOnExpectedImbalance) {
  // Both are sensible balancers; neither should be wildly worse on the
  // paper's scenario (this is the E-series ablation sanity check).
  const AdamsReplication adams;
  const BestFitPlacement bf;
  const auto popularity = zipf_popularity(300, 0.75);
  const auto plan = adams.replicate(popularity, 8, 360);
  const auto loads =
      bf.place(plan, popularity, 8, 45).expected_loads(popularity, 8);
  EXPECT_LT(imbalance_max_relative(loads), 0.5);
}

}  // namespace
}  // namespace vodrep
