#include "src/core/slf_placement.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "src/core/adams_replication.h"
#include "src/core/bounds.h"
#include "src/core/objective.h"
#include "src/core/round_robin_placement.h"
#include "src/core/zipf_interval_replication.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

TEST(SlfPlacement, ProducesValidLayouts) {
  const AdamsReplication adams;
  const SmallestLoadFirstPlacement slf;
  for (double theta : {0.25, 0.75, 1.0}) {
    const auto popularity = zipf_popularity(60, theta);
    const auto plan = adams.replicate(popularity, 8, 96);
    const Layout layout = slf.place(plan, popularity, 8, 12);
    EXPECT_NO_THROW(layout.validate(plan, 8, 12)) << theta;
  }
}

TEST(SlfPlacement, HeaviestReplicaGoesToServerZeroFirst) {
  ReplicationPlan plan;
  plan.replicas = {1, 1, 1};
  const auto popularity = normalized_popularity({5.0, 3.0, 2.0});
  const SmallestLoadFirstPlacement slf;
  std::vector<SmallestLoadFirstPlacement::Step> steps;
  const Layout layout = slf.place_traced(plan, popularity, 3, 1, &steps);
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].video, 0u);
  EXPECT_EQ(steps[0].server, 0u);
  EXPECT_EQ(steps[1].video, 1u);
  EXPECT_EQ(steps[1].server, 1u);
  EXPECT_EQ(steps[2].video, 2u);
  EXPECT_EQ(steps[2].server, 2u);
  (void)layout;
}

TEST(SlfPlacement, SecondRoundPrefersLeastLoadedServer) {
  // Round 1 fills servers with weights 0.4, 0.35, 0.25 -> server 2 is the
  // least loaded, so round 2's heaviest replica must land there.
  ReplicationPlan plan;
  plan.replicas = {1, 1, 1, 1};
  const auto popularity = normalized_popularity({0.4, 0.35, 0.25, 0.0001});
  const SmallestLoadFirstPlacement slf;
  std::vector<SmallestLoadFirstPlacement::Step> steps;
  (void)slf.place_traced(plan, popularity, 3, 2, &steps);
  ASSERT_EQ(steps.size(), 4u);
  EXPECT_EQ(steps[3].video, 3u);
  EXPECT_EQ(steps[3].server, 2u);
  EXPECT_EQ(steps[3].round, 1u);
}

TEST(SlfPlacement, AvoidsServersAlreadyHostingTheVideo) {
  // The paper's Figure 3 situation: the least-loaded server already holds a
  // replica of the video, so the replica goes to the next smallest load.
  ReplicationPlan plan;
  plan.replicas = {2, 1, 1};
  // Weights: v0 -> 0.3 each (two replicas), v1 -> 0.25, v2 -> 0.15.
  const auto popularity = normalized_popularity({0.6, 0.25, 0.15});
  const SmallestLoadFirstPlacement slf;
  const Layout layout = slf.place(plan, popularity, 2, 2);
  // v0's two replicas must be on distinct servers despite load preferences.
  auto servers = layout.assignment[0];
  std::sort(servers.begin(), servers.end());
  EXPECT_EQ(servers, (std::vector<std::size_t>{0, 1}));
}

TEST(SlfPlacement, EachRoundUsesEachServerAtMostOnce) {
  const AdamsReplication adams;
  const SmallestLoadFirstPlacement slf;
  const auto popularity = zipf_popularity(40, 0.75);
  const auto plan = adams.replicate(popularity, 8, 64);
  std::vector<SmallestLoadFirstPlacement::Step> steps;
  (void)slf.place_traced(plan, popularity, 8, 8, &steps);
  std::map<std::size_t, std::set<std::size_t>> servers_by_round;
  for (const auto& step : steps) {
    EXPECT_TRUE(servers_by_round[step.round].insert(step.server).second)
        << "server " << step.server << " used twice in round " << step.round;
  }
}

TEST(SlfPlacement, BeatsOrMatchesRoundRobinOnExpectedImbalance) {
  const ZipfIntervalReplication zipf;
  const SmallestLoadFirstPlacement slf;
  const RoundRobinPlacement rr;
  for (double theta : {0.25, 0.75, 1.0}) {
    const auto popularity = zipf_popularity(300, theta);
    const auto plan = zipf.replicate(popularity, 8, 360);
    const auto slf_loads =
        slf.place(plan, popularity, 8, 45).expected_loads(popularity, 8);
    const auto rr_loads =
        rr.place(plan, popularity, 8, 45).expected_loads(popularity, 8);
    EXPECT_LE(imbalance_max_relative(slf_loads),
              imbalance_max_relative(rr_loads) + 1e-12)
        << "theta=" << theta;
  }
}

TEST(SlfPlacement, SpreadWithinTheoremBound) {
  // Theorem 4.2 on the paper's own scenario sizes.
  const ZipfIntervalReplication zipf;
  const SmallestLoadFirstPlacement slf;
  for (double theta : {0.271, 0.5, 0.75, 1.0}) {
    const auto popularity = zipf_popularity(300, theta);
    for (std::size_t budget : {360u, 420u, 480u}) {
      const auto plan = zipf.replicate(popularity, 8, budget);
      const std::size_t cap = (budget + 7) / 8;
      const auto loads =
          slf.place(plan, popularity, 8, cap).expected_loads(popularity, 8);
      EXPECT_LE(load_spread(loads),
                slf_spread_bound(plan, popularity) + 1e-12)
          << "theta=" << theta << " budget=" << budget;
    }
  }
}

TEST(SlfPlacement, TightDistinctnessInstanceIsPlaced) {
  // Capacity exactly one slot per server: a 2-replica video must use both
  // servers — the deferral machinery has zero slack and must still succeed.
  ReplicationPlan plan;
  plan.replicas = {2};
  const SmallestLoadFirstPlacement slf;
  const Layout layout = slf.place(plan, {1.0}, 2, 1);
  EXPECT_NO_THROW(layout.validate(plan, 2, 1));
}

TEST(SlfPlacement, ExactlyFullClusterIsPlaced) {
  // total replicas == N * capacity: every slot used, no wiggle room.
  const AdamsReplication adams;
  const auto popularity = zipf_popularity(12, 0.9);
  const auto plan = adams.replicate(popularity, 4, 16);
  const SmallestLoadFirstPlacement slf;
  const Layout layout = slf.place(plan, popularity, 4, 4);
  EXPECT_NO_THROW(layout.validate(plan, 4, 4));
  for (std::size_t count : layout.replicas_per_server(4)) {
    EXPECT_EQ(count, 4u);
  }
}

TEST(SlfPlacement, HandlesFullReplication) {
  ReplicationPlan plan;
  plan.replicas = {4, 4, 4};
  const auto popularity = normalized_popularity({0.5, 0.3, 0.2});
  const SmallestLoadFirstPlacement slf;
  const Layout layout = slf.place(plan, popularity, 4, 3);
  EXPECT_NO_THROW(layout.validate(plan, 4, 3));
  // Full replication balances perfectly.
  const auto loads = layout.expected_loads(popularity, 4);
  EXPECT_NEAR(load_spread(loads), 0.0, 1e-12);
}

TEST(SlfPlacement, DeterministicAcrossCalls) {
  const AdamsReplication adams;
  const SmallestLoadFirstPlacement slf;
  const auto popularity = zipf_popularity(50, 0.75);
  const auto plan = adams.replicate(popularity, 8, 75);
  const Layout a = slf.place(plan, popularity, 8, 10);
  const Layout b = slf.place(plan, popularity, 8, 10);
  EXPECT_EQ(a.assignment, b.assignment);
}

}  // namespace
}  // namespace vodrep
