#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "src/obs/json_lite.h"
#include "src/util/error.h"

namespace vodrep::obs {
namespace {

TEST(MetricsTest, CounterFoldsConcurrentIncrementsExactly) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("hits");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kIncrementsPerThread = 100'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kIncrementsPerThread; ++i) counter.inc();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kIncrementsPerThread);
}

TEST(MetricsTest, CounterAddAccumulates) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("bytes");
  counter.add(3);
  counter.add(0);
  counter.add(39);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(MetricsTest, GaugeSetAddAndHighWater) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("depth");
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
  gauge.set_max(1.0);  // below: no change
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
  gauge.set_max(7.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 7.0);
}

TEST(MetricsTest, HistogramBoundaryIsLowerInclusiveUpperExclusive) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("lat", {1.0, 2.0, 4.0});
  // Bucket layout: [-inf,1) [1,2) [2,4) [4,+inf).
  hist.observe(0.0);   // bucket 0
  hist.observe(0.999); // bucket 0
  hist.observe(1.0);   // boundary: bucket 1, not bucket 0
  hist.observe(1.5);   // bucket 1
  hist.observe(2.0);   // boundary: bucket 2
  hist.observe(3.999); // bucket 2
  hist.observe(4.0);   // top boundary: overflow
  hist.observe(100.0); // overflow
  const std::vector<std::uint64_t> counts = hist.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 2u);
  EXPECT_EQ(hist.count(), 8u);
  EXPECT_DOUBLE_EQ(hist.sum(),
                   0.0 + 0.999 + 1.0 + 1.5 + 2.0 + 3.999 + 4.0 + 100.0);
}

TEST(MetricsTest, HistogramFoldsConcurrentObservesExactly) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("conc", {10.0});
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kObservesPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      // Even threads land under the bound, odd threads overflow.
      const double value = (t % 2 == 0) ? 1.0 : 20.0;
      for (std::uint64_t i = 0; i < kObservesPerThread; ++i) {
        hist.observe(value);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const std::vector<std::uint64_t> counts = hist.bucket_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], kThreads / 2 * kObservesPerThread);
  EXPECT_EQ(counts[1], kThreads / 2 * kObservesPerThread);
  EXPECT_EQ(hist.count(), kThreads * kObservesPerThread);
}

TEST(MetricsTest, HistogramRejectsBadBounds) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.histogram("empty", {}), InvalidArgumentError);
  EXPECT_THROW(registry.histogram("unsorted", {2.0, 1.0}),
               InvalidArgumentError);
  EXPECT_THROW(registry.histogram("dup", {1.0, 1.0}), InvalidArgumentError);
}

TEST(MetricsTest, ReRegisteringReturnsTheSameInstrument) {
  MetricsRegistry registry;
  Counter& c1 = registry.counter("same");
  c1.add(5);
  Counter& c2 = registry.counter("same");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 5u);
  Gauge& g1 = registry.gauge("g");
  EXPECT_EQ(&g1, &registry.gauge("g"));
  Histogram& h1 = registry.histogram("h", {1.0, 2.0});
  EXPECT_EQ(&h1, &registry.histogram("h", {1.0, 2.0}));
}

TEST(MetricsTest, NameKindClashesThrow) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), InvalidArgumentError);
  EXPECT_THROW(registry.histogram("x", {1.0}), InvalidArgumentError);
  registry.histogram("h", {1.0, 2.0});
  EXPECT_THROW(registry.histogram("h", {1.0, 3.0}), InvalidArgumentError);
  EXPECT_THROW(registry.counter("h"), InvalidArgumentError);
}

TEST(MetricsTest, SnapshotIsADeepQuiescentCopy) {
  MetricsRegistry registry;
  registry.counter("c").add(7);
  registry.gauge("g").set(0.25);
  registry.histogram("h", {1.0}).observe(0.5);
  const MetricsSnapshot snap = registry.snapshot();
  registry.counter("c").add(100);  // must not affect the snapshot
  EXPECT_EQ(snap.counters.at("c"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 0.25);
  const MetricsSnapshot::HistogramData& h = snap.histograms.at("h");
  EXPECT_EQ(h.bounds, std::vector<double>({1.0}));
  EXPECT_EQ(h.bucket_counts, std::vector<std::uint64_t>({1, 0}));
  EXPECT_EQ(h.count, 1u);
  EXPECT_DOUBLE_EQ(h.sum, 0.5);
}

TEST(MetricsTest, JsonExportParsesAndMatchesTheSnapshot) {
  MetricsRegistry registry;
  registry.counter("requests").add(909);
  registry.gauge("util").set(0.249512);
  Histogram& hist = registry.histogram("lat", {1.0, 5.0});
  hist.observe(0.5);
  hist.observe(2.0);
  hist.observe(9.0);

  const JsonValue root = parse_json(registry.to_json());
  EXPECT_EQ(root.at("counters").at("requests").as_uint(), 909u);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("util").as_number(), 0.249512);
  const JsonValue& h = root.at("histograms").at("lat");
  ASSERT_EQ(h.at("bounds").size(), 2u);
  EXPECT_DOUBLE_EQ(h.at("bounds").items()[0].as_number(), 1.0);
  ASSERT_EQ(h.at("counts").size(), 3u);
  EXPECT_EQ(h.at("counts").items()[0].as_uint(), 1u);
  EXPECT_EQ(h.at("counts").items()[1].as_uint(), 1u);
  EXPECT_EQ(h.at("counts").items()[2].as_uint(), 1u);
  EXPECT_EQ(h.at("count").as_uint(), 3u);
  EXPECT_DOUBLE_EQ(h.at("sum").as_number(), 11.5);
}

TEST(MetricsTest, ClearDropsAllInstruments) {
  MetricsRegistry registry;
  registry.counter("c").add(1);
  registry.clear();
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  // Re-registration after clear starts a fresh instrument.
  EXPECT_EQ(registry.counter("c").value(), 0u);
}

TEST(MetricsTest, GlobalEnableSwitchDefaultsOffAndToggles) {
  // The suite may run after another fixture flipped it; restore either way.
  set_metrics_enabled(false);
  EXPECT_FALSE(metrics_enabled());
  set_metrics_enabled(true);
  EXPECT_TRUE(metrics_enabled());
  set_metrics_enabled(false);
  EXPECT_FALSE(metrics_enabled());
}

}  // namespace
}  // namespace vodrep::obs
