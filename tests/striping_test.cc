#include "src/core/striping.h"

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/util/units.h"

namespace vodrep {
namespace {

TEST(MakeStripedLayout, WideStripingUsesEveryServer) {
  const StripedLayout layout = make_striped_layout(5, 4, 4);
  for (const auto& group : layout.groups) {
    EXPECT_EQ(group.size(), 4u);
  }
  EXPECT_NO_THROW(layout.validate(4));
}

TEST(MakeStripedLayout, StaggersGroupsAcrossServers) {
  const StripedLayout layout = make_striped_layout(4, 8, 2);
  EXPECT_EQ(layout.groups[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(layout.groups[1], (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(layout.groups[2], (std::vector<std::size_t>{4, 5}));
  EXPECT_EQ(layout.groups[3], (std::vector<std::size_t>{6, 7}));
}

TEST(MakeStripedLayout, BalancedStripeCountPerServer) {
  const StripedLayout layout = make_striped_layout(16, 8, 2);
  const auto counts = layout.videos_per_server(8);
  for (std::size_t c : counts) EXPECT_EQ(c, 4u);
}

TEST(MakeStripedLayout, WidthOneDegeneratesToWholeVideoPlacement) {
  const StripedLayout layout = make_striped_layout(6, 3, 1);
  for (std::size_t i = 0; i < 6; ++i) {
    ASSERT_EQ(layout.groups[i].size(), 1u);
  }
  EXPECT_NO_THROW(layout.validate(3));
}

TEST(MakeStripedLayout, RejectsBadWidth) {
  EXPECT_THROW((void)make_striped_layout(4, 3, 0), InvalidArgumentError);
  EXPECT_THROW((void)make_striped_layout(4, 3, 4), InvalidArgumentError);
}

TEST(StripedLayout, ValidateCatchesViolations) {
  StripedLayout layout;
  layout.groups = {{0, 0}};
  EXPECT_THROW(layout.validate(3), InvalidArgumentError);  // duplicate
  layout.groups = {{5}};
  EXPECT_THROW(layout.validate(3), InvalidArgumentError);  // out of range
  layout.groups = {{}};
  EXPECT_THROW(layout.validate(3), InvalidArgumentError);  // empty
}

TEST(StripedStorage, SplitsVideoAcrossGroup) {
  const StripedLayout layout = make_striped_layout(4, 4, 2);
  const auto storage =
      striped_storage_per_server(layout, 4, units::gigabytes(2.7));
  // 4 videos * 2 servers each over 4 servers, staggered: each server holds
  // two half-videos = 2.7 GB.
  for (double bytes : storage) {
    EXPECT_NEAR(units::to_gigabytes(bytes), 2.7, 1e-9);
  }
}

TEST(StripedStorage, WideStripingUsesExactlyOneCatalogue) {
  const StripedLayout layout = make_striped_layout(10, 5, 5);
  const auto storage =
      striped_storage_per_server(layout, 5, units::gigabytes(2.7));
  double total = 0.0;
  for (double bytes : storage) total += bytes;
  EXPECT_NEAR(units::to_gigabytes(total), 27.0, 1e-9);
}

TEST(Availability, StripingDecaysWithWidth) {
  const double p = 0.95;
  EXPECT_GT(striped_video_availability(p, 1),
            striped_video_availability(p, 4));
  EXPECT_GT(striped_video_availability(p, 4),
            striped_video_availability(p, 8));
  EXPECT_NEAR(striped_video_availability(p, 2), 0.9025, 1e-12);
}

TEST(Availability, ReplicationImprovesWithReplicas) {
  const double p = 0.95;
  EXPECT_LT(replicated_video_availability(p, 1),
            replicated_video_availability(p, 2));
  EXPECT_NEAR(replicated_video_availability(p, 2), 0.9975, 1e-12);
}

TEST(Availability, SingleCopyIsTheCommonBaseline) {
  // k = 1 striping and r = 1 replication are the same physical layout.
  for (double p : {0.9, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(striped_video_availability(p, 1),
                     replicated_video_availability(p, 1));
  }
}

TEST(Availability, TwoReplicasBeatAnyStripeWidth) {
  for (double p : {0.90, 0.95, 0.99}) {
    for (std::size_t k = 1; k <= 8; ++k) {
      EXPECT_GT(replicated_video_availability(p, 2),
                striped_video_availability(p, k) - 1e-12);
    }
  }
}

TEST(Availability, HybridDegeneratesToPureCases) {
  for (double p : {0.9, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(hybrid_video_availability(p, 1, 3),
                     replicated_video_availability(p, 3));
    EXPECT_DOUBLE_EQ(hybrid_video_availability(p, 4, 1),
                     striped_video_availability(p, 4));
  }
}

TEST(Availability, HybridKnownValue) {
  // p = 0.9, k = 2 -> group alive 0.81; r = 2 -> 1 - 0.19^2 = 0.9639.
  EXPECT_NEAR(hybrid_video_availability(0.9, 2, 2), 0.9639, 1e-12);
}

TEST(Availability, ReplicatingGroupsRecoversStripingLoss) {
  // Two replicas of 4-wide groups beat single-copy whole-video placement
  // at realistic survival rates.
  for (double p : {0.95, 0.99}) {
    EXPECT_GT(hybrid_video_availability(p, 4, 2),
              replicated_video_availability(p, 1));
  }
}

TEST(Availability, RejectsBadArguments) {
  EXPECT_THROW((void)striped_video_availability(1.5, 2),
               InvalidArgumentError);
  EXPECT_THROW((void)striped_video_availability(0.9, 0),
               InvalidArgumentError);
  EXPECT_THROW((void)replicated_video_availability(-0.1, 2),
               InvalidArgumentError);
  EXPECT_THROW((void)replicated_video_availability(0.9, 0),
               InvalidArgumentError);
}

}  // namespace
}  // namespace vodrep
