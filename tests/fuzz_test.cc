// Randomized end-to-end robustness suite: provision -> simulate across
// random combinations of every simulator feature (redirection modes,
// batching modes, failures, heterogeneous links, abandonment, policies),
// asserting the conservation invariants that must hold regardless of the
// configuration.  Catches feature-interaction bugs no targeted unit test
// anticipates.
#include <gtest/gtest.h>

#include <numeric>

#include "src/core/pipeline.h"
#include "src/core/striping.h"
#include "src/sim/hybrid_simulator.h"
#include "src/sim/simulator.h"
#include "src/sim/striped_simulator.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"
#include "src/workload/trace.h"

namespace vodrep {
namespace {

struct FuzzWorld {
  std::size_t num_videos;
  std::size_t num_servers;
  std::vector<double> popularity;
  SimConfig config;
  RequestTrace trace;
};

/// Strips the replication-only extensions from a fuzzed config: the striped
/// and hybrid simulators reject configs that set them (they model a
/// per-request replica choice those organizations do not have).
SimConfig sanitized_for_striping(SimConfig config) {
  config.redirect = RedirectMode::kNone;
  config.backbone_bps = 0.0;
  config.batching_window_sec = 0.0;
  return config;
}

FuzzWorld random_world(Rng& rng) {
  FuzzWorld world;
  world.num_videos = 5 + rng.uniform_index(60);
  world.num_servers = 2 + rng.uniform_index(9);
  world.popularity = zipf_popularity(world.num_videos, rng.uniform(0.0, 1.1));

  world.config.num_servers = world.num_servers;
  world.config.stream_bitrate_bps = units::mbps(4);
  world.config.bandwidth_bps_per_server =
      units::mbps(4) * static_cast<double>(1 + rng.uniform_index(40));
  if (rng.bernoulli(0.3)) {
    world.config.per_server_bandwidth_bps.resize(world.num_servers);
    for (double& b : world.config.per_server_bandwidth_bps) {
      b = units::mbps(4) * static_cast<double>(1 + rng.uniform_index(40));
    }
  }
  world.config.video_duration_sec = rng.uniform(50.0, 2000.0);
  switch (rng.uniform_index(3)) {
    case 0: world.config.redirect = RedirectMode::kNone; break;
    case 1: world.config.redirect = RedirectMode::kOtherHolders; break;
    default: world.config.redirect = RedirectMode::kBackboneProxy; break;
  }
  world.config.backbone_bps = rng.uniform(0.0, 1e9);
  if (rng.bernoulli(0.5)) {
    world.config.batching_window_sec = rng.uniform(1.0, 500.0);
    world.config.batching_mode = rng.bernoulli(0.5)
                                     ? BatchingMode::kPiggyback
                                     : BatchingMode::kPatching;
  }

  const double horizon = rng.uniform(200.0, 3000.0);
  if (rng.bernoulli(0.4)) {
    const std::size_t crashes = 1 + rng.uniform_index(2);
    double t = 0.0;
    for (std::size_t k = 0; k < crashes; ++k) {
      t += rng.uniform(1.0, horizon / 2.0);
      world.config.failures.push_back(ServerFailure{
          t, static_cast<std::size_t>(rng.uniform_index(world.num_servers))});
    }
  }

  TraceSpec spec;
  spec.arrival_rate = rng.uniform(0.01, 1.0);
  spec.horizon = horizon;
  spec.popularity = world.popularity;
  if (rng.bernoulli(0.4)) {
    spec.abandonment.completion_probability = rng.uniform(0.2, 1.0);
  }
  world.trace = generate_trace(rng, spec);
  return world;
}

void check_invariants(const FuzzWorld& world, const SimResult& result,
                      const char* what, int trial) {
  SCOPED_TRACE(testing::Message() << what << " trial " << trial);
  EXPECT_EQ(result.total_requests, world.trace.size());
  const std::size_t served = std::accumulate(
      result.served_per_server.begin(), result.served_per_server.end(),
      std::size_t{0});
  // Every request is exactly one of: rejected, batched (piggyback joins
  // don't open a stream), or admitted as a stream; patching joins DO open a
  // catch-up stream, so "served" counts them too.  Replication/hybrid
  // admissions touch 1 server; striping/hybrid touch k, so served is an
  // upper-bounded multiple — check the accounting identity instead.
  EXPECT_LE(result.rejected + result.batched, result.total_requests);
  EXPECT_GE(served, 0u);
  EXPECT_LE(result.proxied, result.redirected);
  EXPECT_GE(result.rejection_rate(), 0.0);
  EXPECT_LE(result.rejection_rate(), 1.0);
  EXPECT_GE(result.mean_imbalance_eq2, 0.0);
  EXPECT_GE(result.mean_imbalance_cv, 0.0);
  EXPECT_GE(result.peak_imbalance_eq2, result.mean_imbalance_eq2 - 1e-9);
  for (double u : result.utilization_per_server) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-6);
  }
}

TEST(Fuzz, ReplicationSimulatorSurvivesRandomWorlds) {
  Rng rng(0xF0221);
  for (int trial = 0; trial < 120; ++trial) {
    const FuzzWorld world = random_world(rng);
    const std::size_t budget =
        world.num_videos +
        rng.uniform_index(world.num_videos * (world.num_servers - 1) + 1);
    const std::size_t capacity =
        (budget + world.num_servers - 1) / world.num_servers +
        rng.uniform_index(3);
    const char* repl_names[] = {"adams", "zipf", "classification", "uniform"};
    const char* place_names[] = {"slf", "round-robin", "best-fit"};
    const auto replication =
        make_replication_policy(repl_names[rng.uniform_index(4)]);
    const auto placement =
        make_placement_policy(place_names[rng.uniform_index(3)]);
    const ReplicationPlan plan = replication->replicate(
        world.popularity, world.num_servers, budget);
    const Layout layout =
        placement->place(plan, world.popularity, world.num_servers, capacity);
    ASSERT_NO_THROW(layout.validate(plan, world.num_servers, capacity));
    const SimResult result = simulate(layout, world.config, world.trace);
    check_invariants(world, result, "replication", trial);
    // Replication-specific accounting: every request is a plain admission
    // (one served stream), a rejection, or a batched join; patching joins
    // also open a catch-up stream, so `served` overcounts plain admissions
    // by at most `batched`:
    //   total <= served + rejected + batched, and served + rejected <= total.
    const std::size_t served = std::accumulate(
        result.served_per_server.begin(), result.served_per_server.end(),
        std::size_t{0});
    EXPECT_GE(served + result.rejected + result.batched,
              result.total_requests)
        << "trial " << trial;
    EXPECT_LE(served + result.rejected, result.total_requests)
        << "trial " << trial;
  }
}

TEST(Fuzz, StripedSimulatorSurvivesRandomWorlds) {
  Rng rng(0xF0222);
  for (int trial = 0; trial < 80; ++trial) {
    FuzzWorld world = random_world(rng);
    world.config = sanitized_for_striping(world.config);
    const std::size_t width =
        1 + rng.uniform_index(world.num_servers);
    const StripedLayout layout =
        make_striped_layout(world.num_videos, world.num_servers, width);
    const SimResult result =
        simulate_striped(layout, world.config, world.trace);
    check_invariants(world, result, "striped", trial);
    EXPECT_EQ(result.batched, 0u);
    EXPECT_EQ(result.redirected, 0u);
  }
}

TEST(Fuzz, StripedAndHybridRejectReplicationOnlyConfig) {
  SimConfig config;
  config.num_servers = 4;
  config.bandwidth_bps_per_server = units::mbps(100);
  config.stream_bitrate_bps = units::mbps(4);
  config.video_duration_sec = 100.0;
  RequestTrace trace;
  trace.horizon = 10.0;
  const StripedLayout striped = make_striped_layout(3, 4, 2);
  const HybridLayout hybrid = make_hybrid_layout(3, 4, 2, 2);

  SimConfig redirecting = config;
  redirecting.redirect = RedirectMode::kOtherHolders;
  EXPECT_THROW((void)simulate_striped(striped, redirecting, trace),
               InvalidArgumentError);
  EXPECT_THROW((void)simulate_hybrid(hybrid, redirecting, trace),
               InvalidArgumentError);

  SimConfig proxying = config;
  proxying.backbone_bps = units::mbps(10);
  EXPECT_THROW((void)simulate_striped(striped, proxying, trace),
               InvalidArgumentError);
  EXPECT_THROW((void)simulate_hybrid(hybrid, proxying, trace),
               InvalidArgumentError);

  SimConfig batching = config;
  batching.batching_window_sec = 60.0;
  EXPECT_THROW((void)simulate_striped(striped, batching, trace),
               InvalidArgumentError);
  EXPECT_THROW((void)simulate_hybrid(hybrid, batching, trace),
               InvalidArgumentError);

  // The clean config is accepted by both.
  EXPECT_NO_THROW((void)simulate_striped(striped, config, trace));
  EXPECT_NO_THROW((void)simulate_hybrid(hybrid, config, trace));
}

TEST(Fuzz, HybridSimulatorSurvivesRandomWorlds) {
  Rng rng(0xF0223);
  for (int trial = 0; trial < 80; ++trial) {
    FuzzWorld world = random_world(rng);
    world.config = sanitized_for_striping(world.config);
    const std::size_t width = 1 + rng.uniform_index(world.num_servers);
    const std::size_t replicas =
        1 + rng.uniform_index(world.num_servers / width);
    const HybridLayout layout = make_hybrid_layout(
        world.num_videos, world.num_servers, width, replicas);
    const SimResult result =
        simulate_hybrid(layout, world.config, world.trace);
    check_invariants(world, result, "hybrid", trial);
  }
}

}  // namespace
}  // namespace vodrep
