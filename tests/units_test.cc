#include "src/util/units.h"

#include <gtest/gtest.h>

namespace vodrep {
namespace {

TEST(Units, BitratesRoundTrip) {
  EXPECT_DOUBLE_EQ(units::mbps(4), 4e6);
  EXPECT_DOUBLE_EQ(units::gbps(1.8), 1.8e9);
  EXPECT_DOUBLE_EQ(units::to_mbps(units::mbps(7.5)), 7.5);
  EXPECT_DOUBLE_EQ(units::to_mbps(units::gbps(1)), 1000.0);
}

TEST(Units, StorageRoundTrip) {
  EXPECT_DOUBLE_EQ(units::gigabytes(2.7), 2.7e9);
  EXPECT_DOUBLE_EQ(units::to_gigabytes(units::gigabytes(13.5)), 13.5);
}

TEST(Units, TimeRoundTrip) {
  EXPECT_DOUBLE_EQ(units::minutes(90), 5400.0);
  EXPECT_DOUBLE_EQ(units::to_minutes(units::minutes(42)), 42.0);
}

TEST(Units, RatesRoundTrip) {
  EXPECT_DOUBLE_EQ(units::per_minute(40), 40.0 / 60.0);
  EXPECT_DOUBLE_EQ(units::to_per_minute(units::per_minute(38)), 38.0);
}

TEST(Units, VideoBytesMatchesThePaperConstant) {
  // The paper: a 90-minute MPEG-II movie at 4 Mb/s occupies 2.7 GB.
  EXPECT_DOUBLE_EQ(units::video_bytes(units::minutes(90), units::mbps(4)),
                   units::gigabytes(2.7));
}

TEST(Units, VideoBytesScalesLinearly) {
  const double base = units::video_bytes(units::minutes(90), units::mbps(4));
  EXPECT_DOUBLE_EQ(units::video_bytes(units::minutes(180), units::mbps(4)),
                   2.0 * base);
  EXPECT_DOUBLE_EQ(units::video_bytes(units::minutes(90), units::mbps(8)),
                   2.0 * base);
}

TEST(Units, AllHelpersAreConstexpr) {
  static_assert(units::mbps(4) == 4e6);
  static_assert(units::minutes(90) == 5400.0);
  static_assert(units::video_bytes(5400.0, 4e6) == 2.7e9);
  SUCCEED();
}

}  // namespace
}  // namespace vodrep
