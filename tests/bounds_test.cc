#include "src/core/bounds.h"

#include <gtest/gtest.h>

#include "src/core/adams_replication.h"
#include "src/util/error.h"
#include "src/workload/popularity.h"

namespace vodrep {
namespace {

TEST(SlfSpreadBound, KnownValue) {
  ReplicationPlan plan;
  plan.replicas = {2, 1};
  // Weights 0.3 and 0.4 -> bound 0.1.
  EXPECT_NEAR(slf_spread_bound(plan, {0.6, 0.4}), 0.1, 1e-12);
}

TEST(SlfSpreadBound, ZeroWhenWeightsAreUniform) {
  ReplicationPlan plan;
  plan.replicas = {1, 1};
  EXPECT_DOUBLE_EQ(slf_spread_bound(plan, {0.5, 0.5}), 0.0);
}

TEST(SlfSpreadBound, DecreasingTrendInReplicationDegree) {
  // Theorem 4.3, checked the way it actually holds: the bound's max-weight
  // component is strictly non-increasing in the budget, and the bound falls
  // overall from no replication to high replication.  (Strict per-step
  // monotonicity of max w - min w fails by a few percent when a grant drops
  // min w; see EXPERIMENTS.md.)
  const AdamsReplication adams;
  const auto popularity = zipf_popularity(100, 0.75);
  double prev_max = 1e9;
  for (std::size_t budget = 100; budget <= 200; budget += 10) {
    const auto plan = adams.replicate(popularity, 8, budget);
    EXPECT_LE(plan.max_weight(popularity), prev_max + 1e-15)
        << "budget=" << budget;
    prev_max = plan.max_weight(popularity);
  }
  const auto none = adams.replicate(popularity, 8, 100);
  const auto high = adams.replicate(popularity, 8, 200);
  EXPECT_LT(slf_spread_bound(high, popularity),
            slf_spread_bound(none, popularity));
}

TEST(OptimalMaxWeight, ExhaustiveTinyCase) {
  // Three videos {0.5, 0.3, 0.2}, 2 servers, budget 4.
  // Best: r = {2, 1, 1} -> max(0.25, 0.3, 0.2) = 0.3.
  EXPECT_NEAR(optimal_max_weight({0.5, 0.3, 0.2}, 2, 4), 0.3, 1e-12);
}

TEST(OptimalMaxWeight, NoReplicationBudget) {
  // budget == M: every video keeps one replica -> max w = p_1.
  EXPECT_NEAR(optimal_max_weight({0.5, 0.3, 0.2}, 4, 3), 0.5, 1e-12);
}

TEST(OptimalMaxWeight, FullReplicationBudget) {
  // budget >= M*N: every video can take N replicas -> max w = p_1 / N.
  EXPECT_NEAR(optimal_max_weight({0.5, 0.3, 0.2}, 4, 12), 0.125, 1e-12);
}

TEST(OptimalMaxWeight, MonotoneInBudget) {
  const auto popularity = zipf_popularity(20, 0.75);
  double prev = 1e9;
  for (std::size_t budget = 20; budget <= 80; budget += 5) {
    const double w = optimal_max_weight(popularity, 4, budget);
    EXPECT_LE(w, prev + 1e-15);
    prev = w;
  }
}

TEST(OptimalMaxWeight, InsufficientBudgetThrows) {
  EXPECT_THROW((void)optimal_max_weight({0.5, 0.5}, 2, 1), InfeasibleError);
}

}  // namespace
}  // namespace vodrep
