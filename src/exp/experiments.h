// The paper's evaluation experiments (Figures 4-6) and the extensions
// indexed in DESIGN.md, each returning a printable Table whose rows/series
// mirror the corresponding figure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/exp/scenario.h"
#include "src/util/table.h"

namespace vodrep {

struct ExperimentOptions {
  std::size_t runs = 20;            ///< workload realizations per cell
  std::size_t sweep_points = 12;    ///< arrival-rate points per curve
  std::uint64_t seed = 0x0DDB1A5E5BA5E5EDULL;
  std::size_t num_videos = 300;
  std::size_t threads = 0;          ///< 0: hardware concurrency
};

/// A replication+placement pairing as used in Figures 4-6.
struct AlgorithmCombo {
  std::string replication;  ///< "adams" | "zipf" | "classification" | "uniform"
  std::string placement;    ///< "slf" | "round-robin" | "best-fit"

  [[nodiscard]] std::string label() const {
    return replication + "+" + placement;
  }
};

/// The four combinations the paper compares.
[[nodiscard]] std::vector<AlgorithmCombo> paper_combos();

/// Figure 4 (one subplot): rejection rate (%) vs arrival rate (req/min) for
/// replication degrees {1.0, 1.2, 1.4, 1.6, 1.8}, using the given algorithm
/// combination and Zipf skew theta.  Columns: rate, then one per degree.
[[nodiscard]] Table fig4_panel(const AlgorithmCombo& combo, double theta,
                               const ExperimentOptions& options);

/// Figure 5 (one subplot): rejection rate (%) vs arrival rate for the four
/// algorithm combinations at a fixed replication degree and skew.
[[nodiscard]] Table fig5_panel(double theta, double replication_degree,
                               const ExperimentOptions& options);

/// Figure 6 (one subplot): time-averaged load-imbalance degree L (%) (Eq. 2)
/// vs arrival rate for the four combinations at a fixed degree; the paper
/// shows theta = 1.0.
[[nodiscard]] Table fig6_panel(double theta, double replication_degree,
                               const ExperimentOptions& options);

/// Figure 6 companion (paper §5.3 remark): L (%) vs arrival rate for
/// zipf+slf across the replication degrees {1.0 .. 1.8}, extending past the
/// throughput capacity — "the performance curves of all replication degrees
/// almost merged because all servers were overloaded".
[[nodiscard]] Table fig6_degree_merge_panel(double theta,
                                            const ExperimentOptions& options);

/// E10 ablation: rejection rate with and without backbone-assisted request
/// redirection (the paper's future-work strategy), zipf+slf at the given
/// degree/skew.  Columns: rate, strict-RR %, redirect %, redirected share %.
[[nodiscard]] Table redirect_ablation(double theta, double replication_degree,
                                      const ExperimentOptions& options);

/// E8: for each replication degree, the Theorem 4.2 quantities of the
/// zipf+slf provisioning: achieved expected-load spread, the bound
/// max w - min w, and the Eq. 2 imbalance of the expected loads.
[[nodiscard]] Table bound_check_table(double theta,
                                      const ExperimentOptions& options);

}  // namespace vodrep
