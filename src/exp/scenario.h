// The paper's Section 5 simulation setting, parameterized.
//
// Defaults reproduce the reconstructed setup documented in DESIGN.md:
// 8 homogeneous servers with 1.8 Gb/s outgoing links, 300 videos of 90
// minutes encoded at a fixed 4 Mb/s (2.7 GB per replica), Zipf-like
// popularity, Poisson arrivals over a 90-minute peak period, and a cluster
// saturation arrival rate of 40 requests/minute.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/model.h"
#include "src/sim/simulator.h"
#include "src/workload/trace.h"

namespace vodrep {

struct PaperScenario {
  std::size_t num_servers = 8;
  std::size_t num_videos = 300;
  double server_bandwidth_gbps = 1.8;
  double bitrate_mbps = 4.0;
  double duration_minutes = 90.0;
  double theta = 0.75;             ///< Zipf skew
  double replication_degree = 1.2; ///< cluster replicas per video

  /// The fixed-rate problem instance for this scenario (storage sized for
  /// the replication degree; see make_paper_problem).
  [[nodiscard]] FixedRateProblem problem() const;

  /// Cluster-wide replica budget: round(degree * M).
  [[nodiscard]] std::size_t replica_budget() const;

  /// Trace generation parameters at `arrival_rate_per_min` requests/minute.
  [[nodiscard]] TraceSpec trace_spec(double arrival_rate_per_min) const;

  /// Simulator configuration (no redirection by default).
  [[nodiscard]] SimConfig sim_config() const;

  /// Arrival rate (req/min) that exactly matches the cluster's outgoing
  /// bandwidth over the peak period: N*B / b / T.  40/min at the defaults.
  [[nodiscard]] double saturation_rate_per_min() const;
};

/// The arrival-rate sweep the paper's figures use on their x-axes:
/// `points` evenly spaced rates from `fraction_lo` to `fraction_hi` of the
/// saturation rate (defaults cover 10%..120%, i.e. 4..48 req/min).
[[nodiscard]] std::vector<double> arrival_rate_sweep(
    const PaperScenario& scenario, std::size_t points = 12,
    double fraction_lo = 0.1, double fraction_hi = 1.2);

}  // namespace vodrep
