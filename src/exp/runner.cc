#include "src/exp/runner.h"

#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/workload/trace.h"

namespace vodrep {

CellStats run_cell(const Layout& layout, const SimConfig& config,
                   const TraceSpec& spec, const RunnerOptions& options,
                   ThreadPool* pool) {
  VODREP_TRACE_SCOPE("exp.run_cell");
  require(options.runs >= 1, "run_cell: need at least one run");
  std::vector<SimResult> results(options.runs);

  // One representative trajectory per cell: run 0 (whose seed is fixed by
  // base_seed, independent of thread count) carries the collector.
  std::unique_ptr<obs::TimeseriesCollector> timeline;
  if (options.timeline_interval_sec > 0.0) {
    obs::TimeseriesConfig ts;
    ts.interval_sec = options.timeline_interval_sec;
    ts.max_samples = options.timeline_max_samples;
    timeline =
        std::make_unique<obs::TimeseriesCollector>(ts, config.num_servers);
  }

  auto one_run = [&](std::size_t run) {
    Rng rng(options.base_seed ^ (0x9e3779b97f4a7c15ULL * (run + 1)));
    const RequestTrace trace = generate_trace(rng, spec);
    SimEngine engine(config);
    ReplicatedPolicy policy(layout, config);
    if (run == 0 && timeline != nullptr) engine.attach_timeline(timeline.get());
    results[run] = engine.run(policy, trace);
  };

  if (pool != nullptr) {
    pool->parallel_for(options.runs, one_run);
  } else {
    for (std::size_t run = 0; run < options.runs; ++run) one_run(run);
  }

  CellStats stats;
  for (const SimResult& r : results) {
    stats.rejection_rate.add(r.rejection_rate());
    stats.mean_imbalance_eq2.add(r.mean_imbalance_eq2);
    stats.mean_imbalance_cv.add(r.mean_imbalance_cv);
    stats.mean_imbalance_capacity.add(r.mean_imbalance_capacity);
    stats.peak_imbalance_eq2.add(r.peak_imbalance_eq2);
    stats.redirected_fraction.add(
        r.total_requests == 0
            ? 0.0
            : static_cast<double>(r.redirected) /
                  static_cast<double>(r.total_requests));
    stats.batched_fraction.add(
        r.total_requests == 0
            ? 0.0
            : static_cast<double>(r.batched) /
                  static_cast<double>(r.total_requests));
    stats.mean_utilization.add(r.mean_utilization());
  }
  if (timeline != nullptr) {
    stats.timeline = timeline->samples();
    if (!options.timeline_out.empty()) {
      std::ofstream out(options.timeline_out);
      require(out.good(), [&] {
        return "run_cell: cannot open timeline output file " +
               options.timeline_out;
      });
      timeline->to_json().write(out);
      out << '\n';
      out.flush();
      require(out.good(), [&] {
        return "run_cell: cannot write timeline output file " +
               options.timeline_out;
      });
    }
  }
  if (!options.metrics_out.empty()) {
    std::ofstream out(options.metrics_out);
    require(out.good(), [&] {
      return "run_cell: cannot open metrics output file " + options.metrics_out;
    });
    obs::metrics().write_json(out);
  }
  return stats;
}

}  // namespace vodrep
