#include "src/exp/experiments.h"

#include <memory>

#include "src/core/bounds.h"
#include "src/core/objective.h"
#include "src/core/pipeline.h"
#include "src/exp/runner.h"
#include "src/util/units.h"

namespace vodrep {
namespace {

constexpr double kFig4Degrees[] = {1.0, 1.2, 1.4, 1.6, 1.8};

/// Provisions one (combo, scenario) pair and returns the layout.
Layout provision_layout(const PaperScenario& scenario,
                        const AlgorithmCombo& combo) {
  const auto replication = make_replication_policy(combo.replication);
  const auto placement = make_placement_policy(combo.placement);
  const FixedRateProblem problem = scenario.problem();
  return provision(problem, *replication, *placement,
                   scenario.replica_budget())
      .layout;
}

RunnerOptions runner_options(const ExperimentOptions& options) {
  RunnerOptions ro;
  ro.runs = options.runs;
  ro.base_seed = options.seed;
  return ro;
}

}  // namespace

std::vector<AlgorithmCombo> paper_combos() {
  return {
      AlgorithmCombo{"zipf", "slf"},
      AlgorithmCombo{"zipf", "round-robin"},
      AlgorithmCombo{"classification", "slf"},
      AlgorithmCombo{"classification", "round-robin"},
  };
}

Table fig4_panel(const AlgorithmCombo& combo, double theta,
                 const ExperimentOptions& options) {
  ThreadPool pool(options.threads);

  PaperScenario scenario;
  scenario.theta = theta;
  scenario.num_videos = options.num_videos;

  std::vector<std::string> headers{"arrival_rate_per_min"};
  std::vector<Layout> layouts;
  for (double degree : kFig4Degrees) {
    scenario.replication_degree = degree;
    layouts.push_back(provision_layout(scenario, combo));
    headers.push_back("reject%_d=" + std::to_string(degree).substr(0, 3));
  }

  Table table(std::move(headers));
  table.set_precision(2);
  for (double rate : arrival_rate_sweep(scenario, options.sweep_points)) {
    std::vector<Table::Cell> row{rate};
    for (std::size_t d = 0; d < layouts.size(); ++d) {
      scenario.replication_degree = kFig4Degrees[d];
      const CellStats stats =
          run_cell(layouts[d], scenario.sim_config(),
                   scenario.trace_spec(rate), runner_options(options), &pool);
      row.emplace_back(100.0 * stats.rejection_rate.mean());
    }
    table.add_row(std::move(row));
  }
  return table;
}

Table fig5_panel(double theta, double replication_degree,
                 const ExperimentOptions& options) {
  ThreadPool pool(options.threads);

  PaperScenario scenario;
  scenario.theta = theta;
  scenario.num_videos = options.num_videos;
  scenario.replication_degree = replication_degree;

  const std::vector<AlgorithmCombo> combos = paper_combos();
  std::vector<std::string> headers{"arrival_rate_per_min"};
  std::vector<Layout> layouts;
  for (const AlgorithmCombo& combo : combos) {
    layouts.push_back(provision_layout(scenario, combo));
    headers.push_back("reject%_" + combo.label());
  }

  Table table(std::move(headers));
  table.set_precision(2);
  for (double rate : arrival_rate_sweep(scenario, options.sweep_points)) {
    std::vector<Table::Cell> row{rate};
    // The same base seed per rate row holds the workload fixed across the
    // four combinations, isolating the algorithmic difference.
    for (const Layout& layout : layouts) {
      const CellStats stats =
          run_cell(layout, scenario.sim_config(), scenario.trace_spec(rate),
                   runner_options(options), &pool);
      row.emplace_back(100.0 * stats.rejection_rate.mean());
    }
    table.add_row(std::move(row));
  }
  return table;
}

Table fig6_panel(double theta, double replication_degree,
                 const ExperimentOptions& options) {
  ThreadPool pool(options.threads);

  PaperScenario scenario;
  scenario.theta = theta;
  scenario.num_videos = options.num_videos;
  scenario.replication_degree = replication_degree;

  const std::vector<AlgorithmCombo> combos = paper_combos();
  std::vector<std::string> headers{"arrival_rate_per_min"};
  std::vector<Layout> layouts;
  for (const AlgorithmCombo& combo : combos) {
    layouts.push_back(provision_layout(scenario, combo));
    headers.push_back("L%_" + combo.label());
  }

  // Figure 6 normalizes the load excess by the fixed link capacity B rather
  // than the instantaneous mean load: that is the normalization under which
  // the paper's curves rise with the arrival rate, peak just below
  // saturation, and collapse once every server clips at capacity (see
  // EXPERIMENTS.md).  The mean-normalized Eq. 2 values are reported by
  // vodrep_ablation_imbalance_defn.
  Table table(std::move(headers));
  table.set_precision(2);
  for (double rate : arrival_rate_sweep(scenario, options.sweep_points)) {
    std::vector<Table::Cell> row{rate};
    for (const Layout& layout : layouts) {
      const CellStats stats =
          run_cell(layout, scenario.sim_config(), scenario.trace_spec(rate),
                   runner_options(options), &pool);
      row.emplace_back(100.0 * stats.mean_imbalance_capacity.mean());
    }
    table.add_row(std::move(row));
  }
  return table;
}

Table fig6_degree_merge_panel(double theta,
                              const ExperimentOptions& options) {
  ThreadPool pool(options.threads);

  PaperScenario scenario;
  scenario.theta = theta;
  scenario.num_videos = options.num_videos;

  std::vector<std::string> headers{"arrival_rate_per_min"};
  std::vector<Layout> layouts;
  const AlgorithmCombo combo{"zipf", "slf"};
  for (double degree : kFig4Degrees) {
    scenario.replication_degree = degree;
    layouts.push_back(provision_layout(scenario, combo));
    headers.push_back("L%_d=" + std::to_string(degree).substr(0, 3));
  }

  Table table(std::move(headers));
  table.set_precision(2);
  // Extend to 1.5x saturation so the overload merge is visible.
  for (double rate : arrival_rate_sweep(scenario, options.sweep_points, 0.1,
                                        1.5)) {
    std::vector<Table::Cell> row{rate};
    for (std::size_t d = 0; d < layouts.size(); ++d) {
      scenario.replication_degree = kFig4Degrees[d];
      const CellStats stats =
          run_cell(layouts[d], scenario.sim_config(), scenario.trace_spec(rate),
                   runner_options(options), &pool);
      row.emplace_back(100.0 * stats.mean_imbalance_capacity.mean());
    }
    table.add_row(std::move(row));
  }
  return table;
}

Table redirect_ablation(double theta, double replication_degree,
                        const ExperimentOptions& options) {
  ThreadPool pool(options.threads);

  PaperScenario scenario;
  scenario.theta = theta;
  scenario.num_videos = options.num_videos;
  scenario.replication_degree = replication_degree;
  const Layout layout =
      provision_layout(scenario, AlgorithmCombo{"zipf", "slf"});

  Table table({"arrival_rate_per_min", "reject%_static_rr",
               "reject%_other_holders", "reject%_backbone_proxy",
               "redirected_share%"});
  table.set_precision(2);
  for (double rate : arrival_rate_sweep(scenario, options.sweep_points)) {
    const SimConfig strict = scenario.sim_config();
    SimConfig holders = scenario.sim_config();
    holders.redirect = RedirectMode::kOtherHolders;
    SimConfig proxy = scenario.sim_config();
    proxy.redirect = RedirectMode::kBackboneProxy;
    // Backbone sized at one server's outgoing link — the proxied detour
    // shares the cluster interconnect, it is not free capacity.
    proxy.backbone_bps = units::gbps(scenario.server_bandwidth_gbps);

    const CellStats base = run_cell(layout, strict, scenario.trace_spec(rate),
                                    runner_options(options), &pool);
    const CellStats hold = run_cell(layout, holders, scenario.trace_spec(rate),
                                    runner_options(options), &pool);
    const CellStats prox = run_cell(layout, proxy, scenario.trace_spec(rate),
                                    runner_options(options), &pool);
    table.add_row({rate, 100.0 * base.rejection_rate.mean(),
                   100.0 * hold.rejection_rate.mean(),
                   100.0 * prox.rejection_rate.mean(),
                   100.0 * prox.redirected_fraction.mean()});
  }
  return table;
}

Table bound_check_table(double theta, const ExperimentOptions& options) {
  PaperScenario scenario;
  scenario.theta = theta;
  scenario.num_videos = options.num_videos;

  const auto replication = make_replication_policy("zipf");
  const auto placement = make_placement_policy("slf");

  Table table({"degree", "total_replicas", "max_weight", "spread",
               "bound_maxw_minus_minw", "expected_L%_eq2"});
  table.set_precision(5);
  for (double degree : kFig4Degrees) {
    scenario.replication_degree = degree;
    const FixedRateProblem problem = scenario.problem();
    const ProvisioningResult result = provision(
        problem, *replication, *placement, scenario.replica_budget());
    table.add_row({degree,
                   static_cast<long long>(result.plan.total_replicas()),
                   result.max_weight, load_spread(result.expected_loads),
                   result.spread_bound,
                   100.0 * imbalance_max_relative(result.expected_loads)});
  }
  return table;
}

}  // namespace vodrep
