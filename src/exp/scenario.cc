#include "src/exp/scenario.h"

#include <cmath>

#include "src/util/error.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"

namespace vodrep {

FixedRateProblem PaperScenario::problem() const {
  FixedRateProblem p;
  p.videos.duration_sec = units::minutes(duration_minutes);
  p.videos.popularity = zipf_popularity(num_videos, theta);
  p.bitrate_bps = units::mbps(bitrate_mbps);
  p.cluster.num_servers = num_servers;
  p.cluster.bandwidth_bps_per_server = units::gbps(server_bandwidth_gbps);
  const std::size_t budget = replica_budget();
  const std::size_t slots = (budget + num_servers - 1) / num_servers;
  p.cluster.storage_bytes_per_server =
      static_cast<double>(slots) * p.replica_bytes();
  p.validate();
  return p;
}

std::size_t PaperScenario::replica_budget() const {
  require(replication_degree >= 1.0,
          "PaperScenario: replication degree must be >= 1");
  return static_cast<std::size_t>(
      std::llround(replication_degree * static_cast<double>(num_videos)));
}

TraceSpec PaperScenario::trace_spec(double arrival_rate_per_min) const {
  TraceSpec spec;
  spec.arrival_rate = units::per_minute(arrival_rate_per_min);
  spec.horizon = units::minutes(duration_minutes);
  spec.popularity = zipf_popularity(num_videos, theta);
  return spec;
}

SimConfig PaperScenario::sim_config() const {
  SimConfig config;
  config.num_servers = num_servers;
  config.bandwidth_bps_per_server = units::gbps(server_bandwidth_gbps);
  config.stream_bitrate_bps = units::mbps(bitrate_mbps);
  config.video_duration_sec = units::minutes(duration_minutes);
  return config;
}

double PaperScenario::saturation_rate_per_min() const {
  const double cluster_streams =
      static_cast<double>(num_servers) * units::gbps(server_bandwidth_gbps) /
      units::mbps(bitrate_mbps);
  return cluster_streams / duration_minutes;
}

std::vector<double> arrival_rate_sweep(const PaperScenario& scenario,
                                       std::size_t points, double fraction_lo,
                                       double fraction_hi) {
  require(points >= 2, "arrival_rate_sweep: need at least two points");
  require(fraction_hi > fraction_lo && fraction_lo > 0.0,
          "arrival_rate_sweep: bad sweep range");
  const double saturation = scenario.saturation_rate_per_min();
  std::vector<double> rates;
  rates.reserve(points);
  for (std::size_t k = 0; k < points; ++k) {
    const double f =
        fraction_lo + (fraction_hi - fraction_lo) * static_cast<double>(k) /
                          static_cast<double>(points - 1);
    rates.push_back(f * saturation);
  }
  return rates;
}

}  // namespace vodrep
