// Replicated simulation runs: one (layout, arrival-rate) cell of a paper
// figure, averaged over R independent workload realizations.
//
// The provisioning pipeline (replication + placement) is deterministic, so
// it runs once per cell; only the request trace is re-randomized per run,
// with seeds derived as base_seed ^ run_index so results are independent of
// thread count and ordering.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/layout.h"
#include "src/exp/scenario.h"
#include "src/obs/timeseries.h"
#include "src/sim/simulator.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"

namespace vodrep {

/// Aggregated metrics of R runs of one cell.
struct CellStats {
  OnlineStats rejection_rate;       ///< fraction in [0, 1] per run
  OnlineStats mean_imbalance_eq2;   ///< time-weighted L (Eq. 2) per run
  OnlineStats mean_imbalance_cv;    ///< time-weighted L (Eq. 3) per run
  OnlineStats mean_imbalance_capacity;  ///< (max - mean) / B per run
  OnlineStats peak_imbalance_eq2;
  OnlineStats redirected_fraction;  ///< redirected / total per run
  OnlineStats batched_fraction;     ///< batched / total per run
  OnlineStats mean_utilization;
  /// Load timeline of run 0 (one representative trajectory per cell; empty
  /// unless RunnerOptions::timeline_interval_sec > 0).
  std::vector<obs::TimeSample> timeline;
};

struct RunnerOptions {
  std::size_t runs = 20;
  std::uint64_t base_seed = 0x5eed5eed5eedULL;
  /// When non-empty, the global metrics registry is dumped as JSON to this
  /// path after the cell's runs complete (metrics must be enabled via
  /// obs::set_metrics_enabled for the engines to fold anything into it).
  std::string metrics_out;
  /// > 0 attaches a TimeseriesCollector to run 0 of the cell and captures
  /// its samples into CellStats::timeline.
  double timeline_interval_sec = 0.0;
  std::size_t timeline_max_samples = 512;
  /// When non-empty (and timeline_interval_sec > 0), run 0's timeline is
  /// also written to this path as columnar JSON.
  std::string timeline_out;
};

/// Simulates `runs` independent traces of `spec` against `layout` and
/// aggregates the metrics.  Uses `pool` when non-null.
[[nodiscard]] CellStats run_cell(const Layout& layout, const SimConfig& config,
                                 const TraceSpec& spec,
                                 const RunnerOptions& options,
                                 ThreadPool* pool = nullptr);

}  // namespace vodrep
