// Discrete-event simulation of a striped-storage VoD cluster — the
// organization the paper argues replication should replace for distributed
// storage clusters.
//
// Every stream of a video striped over k servers draws bitrate/k from each
// group member's outgoing link for the whole video duration.  Admission
// requires all k members to have the share available (and to be alive); a
// server crash kills every active stream whose stripe group contains it and
// makes all its videos unavailable for the rest of the peak — the coupling
// that limits striping's reliability.
#pragma once

#include "src/core/striping.h"
#include "src/sim/simulator.h"
#include "src/workload/trace.h"

namespace vodrep {

/// Replays `trace` against the striped layout under `config` (the
/// `redirect`/`backbone_bps` fields are ignored: striping has no replica
/// choice to redirect between).  Returns the same metric set as the
/// replication simulator, so the two organizations compare head-to-head.
[[nodiscard]] SimResult simulate_striped(const StripedLayout& layout,
                                         const SimConfig& config,
                                         const RequestTrace& trace);

}  // namespace vodrep
