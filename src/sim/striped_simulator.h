// Discrete-event simulation of a striped-storage VoD cluster — the
// organization the paper argues replication should replace for distributed
// storage clusters.
//
// The event loop lives in SimEngine (src/sim/engine.h); the striping
// semantics live in StripedPolicy (src/sim/striped_policy.h).  This header
// keeps the original entry point.
#pragma once

#include "src/core/striping.h"
#include "src/sim/engine.h"
#include "src/sim/striped_policy.h"
#include "src/workload/trace.h"

namespace vodrep {

/// Replays `trace` against the striped layout under `config`.  Throws
/// InvalidArgumentError when `config` sets the replication-only extensions
/// (`redirect`, `backbone_bps`, `batching_window_sec`): striping has no
/// replica choice to honor them with, and silently ignoring them would make
/// cross-organization comparisons lie.  Returns the same metric set as the
/// replication simulator, so the two organizations compare head-to-head.
[[nodiscard]] SimResult simulate_striped(const StripedLayout& layout,
                                         const SimConfig& config,
                                         const RequestTrace& trace);

}  // namespace vodrep
