#include "src/sim/striped_simulator.h"

namespace vodrep {

SimResult simulate_striped(const StripedLayout& layout, const SimConfig& config,
                           const RequestTrace& trace) {
  SimEngine engine(config);
  StripedPolicy policy(layout, config);
  return engine.run(policy, trace);
}

}  // namespace vodrep
