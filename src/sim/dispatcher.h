// Request dispatcher: picks the serving replica for each incoming request.
//
// The paper's model is a cluster dispatcher that admits requests and hands
// the connection off to a back-end server (TCP handoff), scheduling replicas
// of a video by *static round-robin*.  A request is rejected when the
// scheduled server lacks outgoing bandwidth.
//
// Two escalating redirection extensions model the future-work strategy the
// paper sketches in its conclusion (use the internal backbone to balance
// outgoing traffic at runtime):
//   * kOtherHolders — retry an admission-rejected request on the other
//     servers holding a replica of the video, least-loaded first.  Serves
//     from local disk, so it costs nothing beyond deviating from the static
//     round-robin share.
//   * kBackboneProxy — kOtherHolders, and when every holder's outgoing link
//     is full, proxy the stream through the least-loaded non-holder with
//     free outgoing bandwidth; the holder pushes the data to the proxy over
//     the internal backbone, so the detour reserves backbone bandwidth for
//     the stream's lifetime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/layout.h"
#include "src/sim/server.h"

namespace vodrep {

enum class RedirectMode {
  kNone,           ///< strict static round-robin (the paper's Section 5 setup)
  kOtherHolders,   ///< retry on other replica holders, least-loaded first
  kBackboneProxy,  ///< kOtherHolders + proxy via idle servers over the backbone
};

/// How a joining request shares an existing stream.
enum class BatchingMode {
  kPiggyback,  ///< join free of charge (optimistic upper bound)
  kPatching,   ///< pay a catch-up stream for the missed prefix (Eager et
               ///< al.-style patching): bandwidth for (now - start) seconds
};

/// Outcome of one dispatch decision.
struct DispatchDecision {
  std::size_t server = 0;
  bool redirected = false;    ///< served by a server other than the RR pick
  bool via_backbone = false;  ///< stream proxied over the internal backbone
  bool batched = false;       ///< joined an existing stream of the video
  /// kPatching joins: duration of the catch-up stream the join reserves on
  /// `server` (0 for piggyback joins and normal admissions).
  double patch_duration_sec = 0.0;

  /// True when the decision obligates the caller to reserve the stream's
  /// bandwidth on `server`: every non-batched admission, plus patching
  /// joins that pay a catch-up stream.  Piggyback joins hold nothing.
  [[nodiscard]] bool reserves_bandwidth() const {
    return !batched || patch_duration_sec > 0.0;
  }
};

class Dispatcher {
 public:
  /// `layout` must outlive the dispatcher.  `backbone_bps` caps the total
  /// bandwidth of concurrently proxied streams (kBackboneProxy only).
  ///
  /// `batching_window_sec` > 0 enables stream sharing (the batching /
  /// piggybacking family of techniques the paper cites as complementary):
  /// a request for a video whose replica on the scheduled server started a
  /// stream within the window joins that stream for free instead of opening
  /// a new one.  `stream_duration_sec` bounds how long a stream stays
  /// joinable.
  Dispatcher(const Layout& layout, RedirectMode mode, double backbone_bps,
             double batching_window_sec = 0.0,
             double stream_duration_sec = 0.0,
             BatchingMode batching_mode = BatchingMode::kPiggyback);

  /// Chooses the serving server for a request for `video` arriving at time
  /// `now`, or nullopt to reject.  The dispatcher only *decides*: it reads
  /// the server states but reserves nothing itself, so the caller that owns
  /// the load accounting (normally the SimEngine) stays authoritative.  A
  /// returned decision is binding — when reserves_bandwidth() is true the
  /// caller must admit the stream on `server` (the dispatcher already
  /// recorded the round-robin advance, the joinable-stream window, and the
  /// backbone reservation), and must later call release_backbone() if
  /// `via_backbone` was set.
  [[nodiscard]] std::optional<DispatchDecision> dispatch(
      std::size_t video, double bitrate_bps,
      const std::vector<StreamingServer>& servers, double now = 0.0);

  /// Replays a precomputed holder-pick sequence instead of the internal
  /// per-video round-robin counters: element i is the holder *index* (into
  /// layout.assignment[video]) the i-th dispatch() call must schedule.
  /// The sharded replay (src/sim/shard_plan.h) pre-computes every pick —
  /// the round-robin advance is unconditional, so the pick sequence is a
  /// pure function of the request order — routes each request to the shard
  /// owning its picked holder, and replays the picks there; everything
  /// downstream of the pick (batching join, admission, the joinable-stream
  /// window) runs unchanged.  kNone redirect mode only: redirect retries
  /// read every holder's live load, which a routed shard does not own.
  void set_routed_picks(std::vector<std::uint32_t> picks);

  /// Frees the backbone reservation of one finished proxied stream.
  void release_backbone(double bitrate_bps);

  /// Invalidates joinable streams on a crashed server.
  void on_server_failed(std::size_t server);

  /// Bandwidth currently reserved on the backbone by proxied streams.
  [[nodiscard]] double backbone_busy_bps() const { return backbone_busy_bps_; }

 private:
  /// Age of the youngest joinable stream of `video` on `server`, or a
  /// negative value when none is joinable.
  [[nodiscard]] double joinable_offset(std::size_t server, std::size_t video,
                                       double now) const;

  const Layout& layout_;
  RedirectMode mode_;
  double backbone_bps_;
  double batching_window_sec_;
  double stream_duration_sec_;
  BatchingMode batching_mode_;
  double backbone_busy_bps_ = 0.0;
  bool routed_ = false;  ///< replay routed_picks_ instead of rr_counter_
  std::vector<std::uint32_t> routed_picks_;
  std::size_t routed_cursor_ = 0;
  std::vector<std::size_t> rr_counter_;  ///< per-video static RR position
  /// last_stream_start_[video][holder-index] = start time of the newest
  /// stream of `video` on that holder; negative infinity when none.
  std::vector<std::vector<double>> last_stream_start_;
};

}  // namespace vodrep
