#include "src/sim/striped_policy.h"

#include <algorithm>

#include "src/util/error.h"

namespace vodrep {

StripedPolicy::StripedPolicy(const StripedLayout& layout,
                             const SimConfig& config)
    : layout_(layout), config_(config) {
  config.require_replication_extensions_unset("striped");
  layout.validate(config.num_servers);
}

void StripedPolicy::bind(SimEngine& engine) {
  require(engine.num_servers() == config_.num_servers,
          "StripedPolicy: engine/config server count mismatch");
  engine_ = &engine;
}

double StripedPolicy::share_of(std::size_t video) const {
  return config_.stream_bitrate_bps /
         static_cast<double>(layout_.groups[video].size());
}

PolicyDecision StripedPolicy::dispatch(const Request& request) {
  require(request.video < layout_.num_videos(),
          "StripedPolicy: video out of range");
  const auto& group = layout_.groups[request.video];
  const double share = share_of(request.video);
  const bool admissible =
      std::all_of(group.begin(), group.end(), [&](std::size_t s) {
        return engine_->can_admit(s, share);
      });
  if (!admissible) {
    // A failed group member makes the whole stripe unavailable for the rest
    // of the peak; otherwise every member is alive and some member's
    // outgoing link lacked the share.
    PolicyDecision rejected;
    const bool member_down =
        std::any_of(group.begin(), group.end(), [&](std::size_t s) {
          return engine_->server(s).failed();
        });
    rejected.reject_reason = member_down
                                 ? obs::RejectReason::kStripeUnavailable
                                 : obs::RejectReason::kNoBandwidth;
    return rejected;
  }
  for (std::size_t s : group) engine_->admit(s, share);
  streams_.push_back(Stream{request.video, 0, true});
  streams_.back().departure = engine_->schedule_departure(
      request.arrival_time + request.watch_fraction * config_.video_duration_sec,
      streams_.size() - 1);
  PolicyDecision outcome;
  outcome.admitted = true;
  outcome.server = static_cast<std::int32_t>(group.front());
  return outcome;
}

void StripedPolicy::on_departure(std::size_t stream) {
  Stream& record = streams_[stream];
  record.alive = false;
  // An alive stream's group never contains a failed server: the crash that
  // failed a member cancelled every affected departure.
  const double share = share_of(record.video);
  for (std::size_t s : layout_.groups[record.video]) {
    engine_->release(s, share);
  }
}

std::size_t StripedPolicy::on_crash(std::size_t server) {
  (void)engine_->fail(server);
  // Every stream whose stripe group contains the failed server dies; its
  // shares on the surviving members free up immediately and its departure
  // never fires.
  std::size_t disrupted = 0;
  for (Stream& record : streams_) {
    if (!record.alive) continue;
    const auto& group = layout_.groups[record.video];
    if (std::find(group.begin(), group.end(), server) == group.end()) {
      continue;
    }
    record.alive = false;
    ++disrupted;
    engine_->cancel_departure(record.departure);
    const double share = share_of(record.video);
    for (std::size_t s : group) {
      if (s != server && !engine_->server(s).failed()) {
        engine_->release(s, share);
      }
    }
  }
  return disrupted;
}

}  // namespace vodrep
