// Sharded simulation runner: replays one trace as S independent SimEngines
// over a ShardPlan's routed sub-traces (src/sim/shard_plan.h), optionally in
// parallel on a ThreadPool, and merges the per-shard state into one
// SimResult that is invariant in S.
//
// Invariance argument, by result field:
//
//   * Counters (rejected, per-reason breakdown, redirected/proxied/batched/
//     disrupted, served_per_server) — every admission decision reads only
//     the owning shard's server state, so each counter is an exact sum (or,
//     for per-server vectors, the owning shard's entry) of per-shard values.
//     The differential tier asserts these with EXPECT_EQ.
//   * Per-server utilizations and the timeline max — each server's busy
//     sequence is identical to the monolithic replay, so these are
//     bit-exact per server; only quantities *summed across servers* of
//     different shards (means, Eq. 2/3 integrals) differ by float
//     associativity, within 1e-7.
//   * Eq. 2/3 time-weighted means and peak — nonlinear in the per-server
//     loads (they need the instantaneous global max and mean), so they
//     cannot be summed after the fact.  Each shard engine logs its running
//     (Σu, Σu², max) accumulator state as piecewise-constant LoadSegments
//     (SimEngine::attach_segment_log); at every merge-epoch boundary the
//     runner sweeps the S segment streams chronologically, rebuilds the
//     global integrand with integrate_to's exact formulas and clamps, and
//     folds it into merged TimeWeightedMeans.  Epoch boundaries exist only
//     to bound segment-log memory — they do not change any value.
//   * Timeline / event log — per-shard collectors and logs on the caller's
//     configuration are merged once at the end of the run
//     (obs::TimeseriesCollector::merge_shards; the event-log merge walks
//     the plan's global request order with per-shard cursors, so kept and
//     dropped records match the monolithic log exactly).
//
// With num_shards == 1 the entry points bypass the plan/merge machinery
// entirely and call SimEngine::run — bit-identical to the monolithic path,
// metrics export included (asserted by tests/sim_differential_test.cc and
// tests/sim_shard_invariance_test.cc).
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/layout.h"
#include "src/core/striping.h"
#include "src/obs/event_log.h"
#include "src/obs/timeseries.h"
#include "src/sim/engine.h"
#include "src/sim/prefix_cache_policy.h"
#include "src/sim/shard_plan.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"
#include "src/workload/trace.h"

namespace vodrep {

struct ShardedSimOptions {
  /// Number of shard engines; 1 = the monolithic SimEngine::run path.
  std::size_t num_shards = 1;
  /// Segment-log merge cadence in simulated seconds; 0 picks horizon / 8.
  /// Purely a memory bound — the merged metrics are invariant in it.
  double merge_epoch_sec = 0.0;
  /// Pool to run shard epochs on; null (or a single-thread pool) replays
  /// the shards inline on the calling thread.  Results are identical either
  /// way — the pool only changes wall-clock time.
  ThreadPool* pool = nullptr;
};

/// Merged global Eq. 2/3 accumulators rebuilt from per-shard segment logs.
struct MergedLoadMetrics {
  TimeWeightedMean imbalance_eq2;
  TimeWeightedMean imbalance_cv;
  TimeWeightedMean imbalance_capacity;
  double peak_eq2 = 0.0;
};

/// Chronologically sweeps one merge epoch of per-shard LoadSegment streams
/// (each covering (epoch start, epoch end] contiguously, as
/// SimEngine::integrate_to emits them) and folds the global imbalance
/// integrand over every span into `into`, using integrate_to's exact
/// formulas: idle flush when the global max is 0, mean = Σu / n, clamped
/// eq2/cv, capacity excess, and the running eq2 peak.  Exposed for the
/// metrics-merge property tests (tests/arrival_batching_test.cc).
void merge_load_segments(const std::vector<std::vector<LoadSegment>>& logs,
                         double epoch_start, std::size_t num_servers,
                         MergedLoadMetrics& into);

/// Sharded counterpart of simulate() (replicated organization).  The plan
/// is built internally per RedirectMode; kBackboneProxy with num_shards > 1
/// throws the shard_plan named error.  `timeline` / `event_log` must be
/// freshly constructed when attached (the merge fills them once).
[[nodiscard]] SimResult simulate_sharded(
    const Layout& layout, const SimConfig& config, const RequestTrace& trace,
    const ShardedSimOptions& options,
    obs::TimeseriesCollector* timeline = nullptr,
    obs::EventLog* event_log = nullptr);

/// Sharded striped-organization run (stripe-group components).
[[nodiscard]] SimResult simulate_sharded_striped(
    const StripedLayout& layout, const SimConfig& config,
    const RequestTrace& trace, const ShardedSimOptions& options,
    obs::TimeseriesCollector* timeline = nullptr,
    obs::EventLog* event_log = nullptr);

/// Sharded hybrid-organization run (all-copies components).
[[nodiscard]] SimResult simulate_sharded_hybrid(
    const HybridLayout& layout, const SimConfig& config,
    const RequestTrace& trace, const ShardedSimOptions& options,
    obs::TimeseriesCollector* timeline = nullptr,
    obs::EventLog* event_log = nullptr);

/// Sharded replicated + edge-prefix-cache run.  A live cache tier fuses
/// every server into one component (the extra shards idle but the merge
/// path still runs); capacity 0 shards by the replicated rules.
[[nodiscard]] SimResult simulate_sharded_prefix_cache(
    const Layout& layout, const SimConfig& config,
    const PrefixCacheOptions& cache_options, const RequestTrace& trace,
    const ShardedSimOptions& options,
    obs::TimeseriesCollector* timeline = nullptr,
    obs::EventLog* event_log = nullptr);

}  // namespace vodrep
