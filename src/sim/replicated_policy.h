// StoragePolicy for the paper's replicated organization: whole streams
// served by one replica holder, scheduled by the cluster dispatcher's
// static round-robin with the optional redirection, backbone-proxy, and
// batching extensions (src/sim/dispatcher.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/core/layout.h"
#include "src/sim/dispatcher.h"
#include "src/sim/engine.h"

namespace vodrep {

class ReplicatedPolicy final : public StoragePolicy {
 public:
  /// `layout` must outlive the policy; the config is copied, so a
  /// temporary (e.g. `scenario.sim_config()`) is safe to pass.
  ReplicatedPolicy(const Layout& layout, const SimConfig& config);

  void bind(SimEngine& engine) override;
  PolicyDecision dispatch(const Request& request) override;
  void on_departure(std::size_t stream) override;
  std::size_t on_crash(std::size_t server) override;

  /// Installs a precomputed holder-pick sequence for a routed sub-trace
  /// replay (sharded simulation; see Dispatcher::set_routed_picks).
  void set_routed_picks(std::vector<std::uint32_t> picks) {
    dispatcher_.set_routed_picks(std::move(picks));
  }

 private:
  /// One reservation with a scheduled departure: a full stream or a
  /// patching join's catch-up stream.
  struct Stream {
    std::size_t server = 0;
    bool via_backbone = false;
  };

  const Layout& layout_;
  const SimConfig config_;
  Dispatcher dispatcher_;
  SimEngine* engine_ = nullptr;
  std::vector<Stream> streams_;
};

}  // namespace vodrep
