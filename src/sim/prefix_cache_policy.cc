#include "src/sim/prefix_cache_policy.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/util/check.h"
#include "src/util/error.h"
#include "src/util/units.h"

namespace vodrep {
namespace {

std::vector<double> resolve_fractions(const PrefixCacheOptions& options,
                                      std::size_t num_videos) {
  std::vector<double> fractions = options.prefix_fraction;
  if (fractions.empty()) {
    fractions.assign(num_videos, options.uniform_prefix_fraction);
  }
  require(fractions.size() == num_videos,
          "PrefixCachePolicy: prefix-fraction size mismatch");
  for (double f : fractions) {
    require(std::isfinite(f) && f > 0.0 && f <= 1.0,
            "PrefixCachePolicy: prefix fraction must be in (0, 1]");
  }
  return fractions;
}

std::vector<double> prefix_bytes(const std::vector<double>& fractions,
                                 const SimConfig& config) {
  const double whole =
      units::video_bytes(config.video_duration_sec, config.stream_bitrate_bps);
  std::vector<double> bytes;
  bytes.reserve(fractions.size());
  for (double f : fractions) bytes.push_back(whole * f);
  return bytes;
}

}  // namespace

PrefixCache::PrefixCache(CacheEvictionPolicy policy, double capacity_bytes,
                         std::vector<double> entry_bytes)
    : policy_(policy),
      capacity_bytes_(capacity_bytes),
      entry_bytes_(std::move(entry_bytes)) {
  require(std::isfinite(capacity_bytes_) && capacity_bytes_ >= 0.0,
          "PrefixCache: capacity must be finite and non-negative");
  for (double bytes : entry_bytes_) {
    require(std::isfinite(bytes) && bytes > 0.0,
            "PrefixCache: entry sizes must be positive and finite");
  }
  const std::size_t m = entry_bytes_.size();
  resident_.assign(m, 0);
  freq_.assign(m, 0);
  last_touch_.assign(m, 0);
  stats_.capacity_bytes = capacity_bytes_;
}

bool PrefixCache::lookup(std::size_t video) {
  VODREP_DCHECK(video < resident_.size(), "PrefixCache: video out of range");
  ++tick_;
  if (resident_[video] != 0) {
    ++freq_[video];
    last_touch_[video] = tick_;
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

std::size_t PrefixCache::pick_victim() const {
  std::size_t victim = resident_.size();
  for (std::size_t i = 0; i < resident_.size(); ++i) {
    if (resident_[i] == 0) continue;
    if (victim == resident_.size()) {
      victim = i;
      continue;
    }
    if (policy_ == CacheEvictionPolicy::kLru) {
      if (last_touch_[i] < last_touch_[victim]) victim = i;
    } else {
      if (freq_[i] < freq_[victim] ||
          (freq_[i] == freq_[victim] &&
           last_touch_[i] < last_touch_[victim])) {
        victim = i;
      }
    }
  }
  return victim;
}

void PrefixCache::insert(std::size_t video) {
  VODREP_DCHECK(video < resident_.size(), "PrefixCache: video out of range");
  if (resident_[video] != 0) return;
  const double bytes = entry_bytes_[video];
  if (bytes > capacity_bytes_) return;  // can never fit; skip, no churn
  while (stats_.used_bytes + bytes > capacity_bytes_) {
    const std::size_t victim = pick_victim();
    if (victim == resident_.size()) {
      // Nothing resident: only eviction rounding residue keeps the fit test
      // failing.  Snap it to the exact empty state so long runs cannot
      // drift the accounting.
      stats_.used_bytes = 0.0;
      break;
    }
    resident_[victim] = 0;
    stats_.used_bytes -= entry_bytes_[victim];
    ++stats_.evictions;
  }
  ++tick_;
  resident_[video] = 1;
  freq_[video] = 1;
  last_touch_[video] = tick_;
  stats_.used_bytes += bytes;
  ++stats_.insertions;
}

PrefixCachePolicy::PrefixCachePolicy(const Layout& layout,
                                     const SimConfig& config,
                                     const PrefixCacheOptions& options)
    : layout_(layout),
      config_(config),
      cache_enabled_(options.capacity_bytes > 0.0),
      prefix_fraction_(
          resolve_fractions(options, layout.assignment.size())),
      dispatcher_(layout, config.redirect, config.backbone_bps,
                  config.batching_window_sec, config.video_duration_sec,
                  config.batching_mode),
      cache_(options.eviction, options.capacity_bytes,
             prefix_bytes(prefix_fraction_, config_)) {}

void PrefixCachePolicy::bind(SimEngine& engine) {
  require(engine.num_servers() == config_.num_servers,
          "PrefixCachePolicy: engine/config server count mismatch");
  engine_ = &engine;
}

const CacheTierStats* PrefixCachePolicy::cache_stats() const {
  // Disabled caches expose no stats at all, so a zero-capacity run is
  // indistinguishable from ReplicatedPolicy (metrics series included).
  return cache_enabled_ ? &cache_.stats() : nullptr;
}

PolicyDecision PrefixCachePolicy::reject_for(std::size_t video,
                                             bool cache_hit) const {
  // Attribution mirrors ReplicatedPolicy: every holder down means no
  // replica could have served it regardless of the cache; otherwise the
  // binding constraint was origin bandwidth — a plain kNoBandwidth when the
  // prefix hit (only the suffix was blocked), the cache-specific
  // kCacheMissOriginBusy when the miss forced a full origin stream.
  PolicyDecision rejected;
  bool any_alive = false;
  for (const std::size_t holder : layout_.assignment[video]) {
    if (!engine_->server(holder).failed()) {
      any_alive = true;
      break;
    }
  }
  if (!any_alive) {
    rejected.reject_reason = obs::RejectReason::kNoReplicaAlive;
  } else {
    rejected.reject_reason = cache_hit
                                 ? obs::RejectReason::kNoBandwidth
                                 : obs::RejectReason::kCacheMissOriginBusy;
  }
  return rejected;
}

PolicyDecision PrefixCachePolicy::dispatch(const Request& request) {
  const double bitrate = config_.stream_bitrate_bps;
  double origin_sec = request.watch_fraction * config_.video_duration_sec;
  bool hit = false;
  if (cache_enabled_) {
    hit = cache_.lookup(request.video);
    if (hit) {
      const double past_prefix = std::max(
          0.0, request.watch_fraction - prefix_fraction_[request.video]);
      origin_sec = past_prefix * config_.video_duration_sec;
      if (origin_sec <= 0.0) {
        // The viewer stopped inside the cached prefix: served entirely from
        // the edge tier, no origin server involved (server stays -1).
        PolicyDecision outcome;
        outcome.admitted = true;
        return outcome;
      }
    }
  }
  const auto decision = dispatcher_.dispatch(request.video, bitrate,
                                             engine_->servers(),
                                             request.arrival_time);
  if (!decision.has_value()) {
    // With the cache disabled `hit` is false but the reasons must replay
    // ReplicatedPolicy's, which never emits kCacheMissOriginBusy.
    return reject_for(request.video, hit || !cache_enabled_);
  }
  if (cache_enabled_ && !hit) cache_.insert(request.video);
  PolicyDecision outcome;
  outcome.admitted = true;
  outcome.server = static_cast<std::int32_t>(decision->server);
  outcome.redirected = decision->redirected;
  outcome.via_backbone = decision->via_backbone;
  outcome.batched = decision->batched;
  if (decision->reserves_bandwidth()) {
    engine_->admit(decision->server, bitrate);
    streams_.push_back(Stream{decision->server, decision->via_backbone});
    // A patching join holds its catch-up stream for the missed prefix only;
    // otherwise the origin holds bandwidth for the portion it streams —
    // the watched fraction on a miss, just the suffix after a prefix hit.
    const double held_sec =
        decision->batched ? decision->patch_duration_sec : origin_sec;
    engine_->schedule_departure(request.arrival_time + held_sec,
                                streams_.size() - 1);
  }
  return outcome;
}

void PrefixCachePolicy::on_departure(std::size_t stream) {
  const Stream& record = streams_[stream];
  // Streams on a crashed server were already dropped by the crash; their
  // departures still fire but release nothing.
  if (!engine_->server(record.server).failed()) {
    engine_->release(record.server, config_.stream_bitrate_bps);
  }
  if (record.via_backbone) {
    dispatcher_.release_backbone(config_.stream_bitrate_bps);
  }
}

std::size_t PrefixCachePolicy::on_crash(std::size_t server) {
  const std::size_t disrupted = engine_->fail(server);
  dispatcher_.on_server_failed(server);
  return disrupted;
}

}  // namespace vodrep
