// Partitioning plans for sharded simulation (src/sim/sharded_engine.h).
//
// A shard plan splits the cluster's servers into S disjoint shards and
// routes every request of a trace to exactly one shard, such that each
// shard's replay touches only its own servers' bandwidth state.  When that
// holds, running S independent SimEngines over the routed sub-traces is
// *exactly* equivalent to the monolithic replay: admission depends only on
// the target servers' state, every counter is a per-shard sum, and the
// per-server float accumulators see the same operations in the same order.
//
// The partitioning rule depends on what a dispatch decision reads:
//
//   * ReplicatedPolicy, RedirectMode::kNone — per-SERVER granularity.  The
//     dispatcher's round-robin advance is unconditional (it precedes the
//     batching join and the admission check), so the picked holder of every
//     request is a pure function of the request sequence.  A sequential
//     pre-pass replays the counters, routes each request to the shard
//     owning its picked holder, and records the pick for the shard's
//     dispatcher to replay (Dispatcher::set_routed_picks).  The batching
//     join window is keyed by (video, picked holder), so it is owned by the
//     same shard.  Rejection attribution reads other holders' *failed*
//     flags only, and every shard applies the full failure schedule, so the
//     flags are globally correct in every shard.
//   * ReplicatedPolicy, RedirectMode::kOtherHolders — redirect retries read
//     the live load of every holder of the video, so all holders of a video
//     must be co-sharded: connected components of the "share a video"
//     relation over servers.
//   * RedirectMode::kBackboneProxy — proxies streams through arbitrary
//     non-holders under a shared backbone budget; every server is coupled.
//     Unshardable: requesting more than one shard throws a named error.
//   * StripedPolicy / HybridPolicy — a stream reserves bitrate/k on every
//     stripe-group member atomically, so groups that share a server must be
//     co-sharded: connected components over stripe-group membership.
//     (Aligned striping with k | N yields N/k independent components; the
//     staggered wrap-around layout is one component and stays serial.)
//   * PrefixCachePolicy with a live cache tier — the shared edge cache
//     couples every video through capacity eviction, and cache residency
//     depends on origin admissions; all servers fuse into one component
//     (the run still exercises the sharded merge path, with idle padding
//     shards).  With capacity 0 the policy replays ReplicatedPolicy and
//     shards by its rules.
//
// Every shard runs with the full server vector and the full failure
// schedule; foreign servers simply never see traffic, so their state stays
// exactly zero and merged sums are exact.  Components are assigned to
// shards deterministically (greedy least-loaded in discovery order), so the
// plan — and therefore the merged result — is a pure function of
// (layout, config, trace, S).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/layout.h"
#include "src/core/striping.h"
#include "src/sim/engine.h"
#include "src/workload/trace.h"

namespace vodrep {

/// Deterministic per-shard RNG seed, counter-split exactly like
/// pt_chain_seed (shard 0 keeps the base seed): shard-local stochastic
/// components (e.g. per-shard workload generation) derive their stream from
/// this so results are independent of shard scheduling.
[[nodiscard]] constexpr std::uint64_t shard_rng_seed(std::uint64_t base,
                                                     std::size_t shard) {
  return base ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(shard));
}

struct ShardPlan {
  std::size_t num_shards = 1;
  /// Owning shard per server (size num_servers).
  std::vector<std::uint32_t> shard_of_server;
  /// Routed sub-trace per shard (order-preserving partition of the input
  /// trace; every sub-trace keeps the global horizon).
  std::vector<RequestTrace> sub_traces;
  /// Owning shard per request, in global trace order (drives the
  /// deterministic event-log merge).
  std::vector<std::uint32_t> shard_of_request;
  /// Per-server-granularity plans only: the precomputed holder-pick index
  /// for each routed request, aligned with sub_traces[shard].requests
  /// (empty vectors for component-granularity plans, whose shard-local
  /// round-robin counters already see every request of their videos).
  std::vector<std::vector<std::uint32_t>> routed_pick_indices;

  [[nodiscard]] bool is_routed() const { return !routed_pick_indices.empty(); }
};

/// Plan for ReplicatedPolicy.  kNone → per-server granularity with routed
/// picks; kOtherHolders → holder components; kBackboneProxy → throws for
/// num_shards > 1 (named error: the backbone couples every server).
[[nodiscard]] ShardPlan make_replicated_shard_plan(const Layout& layout,
                                                   const SimConfig& config,
                                                   const RequestTrace& trace,
                                                   std::size_t num_shards);

/// Plan for StripedPolicy: components over stripe-group membership.
[[nodiscard]] ShardPlan make_striped_shard_plan(const StripedLayout& layout,
                                                const SimConfig& config,
                                                const RequestTrace& trace,
                                                std::size_t num_shards);

/// Plan for HybridPolicy: components over all stripe-group copies (the
/// per-video group rotation couples every copy of a video).
[[nodiscard]] ShardPlan make_hybrid_shard_plan(const HybridLayout& layout,
                                               const SimConfig& config,
                                               const RequestTrace& trace,
                                               std::size_t num_shards);

/// Plan for PrefixCachePolicy: with a live cache tier every server fuses
/// into one component; with the tier disabled, ReplicatedPolicy rules.
[[nodiscard]] ShardPlan make_prefix_cache_shard_plan(const Layout& layout,
                                                     const SimConfig& config,
                                                     bool cache_enabled,
                                                     const RequestTrace& trace,
                                                     std::size_t num_shards);

}  // namespace vodrep
