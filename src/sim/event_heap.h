// Indexed binary min-heap of timestamped events — the SimEngine's departure
// queue.
//
// push() returns a stable id that can cancel the event later in O(log n)
// (e.g. a stream killed by a server crash never fires its departure), which
// keeps the engine's hot loop free of tombstone checks.  Events with equal
// times pop in insertion order, so a replay is deterministic regardless of
// how the heap happens to be balanced.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vodrep {

class EventHeap {
 public:
  using Id = std::size_t;

  /// One scheduled event: the time it fires and an opaque payload (the
  /// scheduler's stream index).
  struct Event {
    double time = 0.0;
    std::size_t payload = 0;
  };

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Fire time of the earliest pending event.  Requires a non-empty heap.
  [[nodiscard]] double min_time() const;

  /// Schedules an event; ids of cancelled/popped events are recycled.
  Id push(double time, std::size_t payload);

  /// Removes and returns the earliest event (FIFO among equal times).
  Event pop_min();

  /// Removes a pending event.  Throws InvalidArgumentError when `id` is not
  /// currently scheduled (already popped or cancelled).
  void cancel(Id id);

  /// True while `id` is scheduled and has neither popped nor been cancelled.
  [[nodiscard]] bool active(Id id) const;

 private:
  static constexpr std::size_t kUnplaced = static_cast<std::size_t>(-1);

  struct Node {
    double time = 0.0;
    std::uint64_t seq = 0;       ///< insertion order, breaks time ties
    std::size_t payload = 0;
    std::size_t pos = kUnplaced; ///< index in heap_, kUnplaced when inactive
  };

  /// Strict ordering of two nodes by (time, insertion order).
  [[nodiscard]] bool before(std::size_t node_a, std::size_t node_b) const;
  /// Writes node index `node` at heap position `pos` and records the
  /// back-pointer.
  void place(std::size_t pos, std::size_t node);
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);

  std::vector<Node> nodes_;
  std::vector<std::size_t> heap_;  ///< heap of indices into nodes_
  std::vector<Id> free_ids_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace vodrep
