#include "src/sim/sharded_engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "src/obs/clock.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"
#include "src/sim/hybrid_policy.h"
#include "src/sim/replicated_policy.h"
#include "src/sim/striped_policy.h"
#include "src/util/error.h"

namespace vodrep {

void merge_load_segments(const std::vector<std::vector<LoadSegment>>& logs,
                         double epoch_start, std::size_t num_servers,
                         MergedLoadMetrics& into) {
  const auto n = static_cast<double>(num_servers);
  std::vector<std::size_t> cursor(logs.size(), 0);
  double t = epoch_start;
  for (;;) {
    // The next global breakpoint is the earliest un-consumed segment end.
    // Every shard's stream covers (epoch_start, epoch_end] contiguously and
    // ends exactly at the epoch boundary (advance_to at the barrier), so a
    // stream only runs dry once t has reached the boundary.
    double next = std::numeric_limits<double>::infinity();
    bool any = false;
    for (std::size_t s = 0; s < logs.size(); ++s) {
      if (cursor[s] < logs[s].size()) {
        next = std::min(next, logs[s][cursor[s]].end_time);
        any = true;
      }
    }
    if (!any) break;
    // Each shard's current segment holds its (post idle-flush) accumulator
    // state over [t, next); the global integrand over that span is the sum
    // of the per-shard sums and the max of the per-shard maxes.
    double sum = 0.0;
    double sumsq = 0.0;
    double max = 0.0;
    for (std::size_t s = 0; s < logs.size(); ++s) {
      if (cursor[s] < logs[s].size()) {
        const LoadSegment& seg = logs[s][cursor[s]];
        sum += seg.utilization_sum;
        sumsq += seg.utilization_sumsq;
        max = std::max(max, seg.max_utilization);
      }
    }
    // Mirror SimEngine::integrate_to exactly: idle flush, clamped Eq. 2,
    // clamped variance for Eq. 3, capacity excess, running peak.
    if (max <= 0.0) {
      sum = 0.0;
      sumsq = 0.0;
    }
    const double mean = sum / n;
    double eq2 = 0.0;
    double cv = 0.0;
    if (mean > 0.0) {
      eq2 = std::max(0.0, (max - mean) / mean);
      const double variance = std::max(0.0, sumsq / n - mean * mean);
      cv = std::sqrt(variance) / mean;
    }
    const double dt = next - t;
    into.imbalance_eq2.add(eq2, dt);
    into.imbalance_cv.add(cv, dt);
    into.imbalance_capacity.add(std::max(0.0, max - mean), dt);
    if (dt > 0.0) into.peak_eq2 = std::max(into.peak_eq2, eq2);
    for (std::size_t s = 0; s < logs.size(); ++s) {
      while (cursor[s] < logs[s].size() &&
             logs[s][cursor[s]].end_time <= next) {
        ++cursor[s];
      }
    }
    t = next;
  }
}

namespace {

/// Builds one shard's policy (with routed picks installed for routed
/// plans); called serially during setup.
using ShardPolicyFactory =
    std::function<std::unique_ptr<StoragePolicy>(std::size_t)>;

/// Merges the per-shard event logs into the caller's log by walking the
/// plan's global request order with one cursor per shard.  A shard log
/// keeps the first `capacity` records of its own sub-trace, so a record it
/// dropped has >= capacity shard-local — hence global — predecessors and
/// the monolithic log would have dropped it too; offering a placeholder
/// keeps the merged seen/dropped tallies exact (the placeholder can never
/// be stored: the caller's buffer is provably full by then).
void merge_event_logs(const ShardPlan& plan,
                      const std::vector<std::unique_ptr<obs::EventLog>>& logs,
                      obs::EventLog& into) {
  std::vector<std::size_t> cursor(plan.num_shards, 0);
  for (const std::uint32_t shard : plan.shard_of_request) {
    const std::size_t k = cursor[shard]++;
    const std::vector<obs::RequestRecord>& records = logs[shard]->records();
    into.record(k < records.size() ? records[k] : obs::RequestRecord{});
  }
}

SimResult run_sharded(const SimConfig& config, const RequestTrace& trace,
                      const ShardPlan& plan, const ShardPolicyFactory& factory,
                      const ShardedSimOptions& options,
                      obs::TimeseriesCollector* timeline,
                      obs::EventLog* event_log) {
  VODREP_TRACE_SCOPE("sim.run_sharded");
  const std::size_t num_shards = plan.num_shards;

  // Per-shard replay state.  Every engine gets the full config (all servers,
  // the full failure schedule): foreign servers never see traffic, so their
  // contributions stay exactly zero, while the globally correct failed()
  // flags keep rejection attribution exact.
  std::vector<std::unique_ptr<SimEngine>> engines;
  std::vector<std::unique_ptr<StoragePolicy>> policies;
  std::vector<std::unique_ptr<obs::TimeseriesCollector>> shard_timelines;
  std::vector<std::unique_ptr<obs::EventLog>> shard_logs;
  std::vector<std::vector<LoadSegment>> segment_logs(num_shards);
  engines.reserve(num_shards);
  policies.reserve(num_shards);
  {
    // "setup" covers everything up to the first epoch: input validation
    // (is_well_formed is an O(n) trace scan — it must not leak out of the
    // phase forest's >= 95% coverage bar), engine construction, and the
    // collector plumbing.
    VODREP_PROFILE_PHASE("setup");
    require(trace.is_well_formed(), "run_sharded: malformed trace");
    if (timeline != nullptr) {
      require(timeline->size() == 0 && timeline->downsample_factor() == 1 &&
                  timeline->time_offset() == 0.0,
              "run_sharded: attach a freshly constructed timeline collector");
    }
    if (event_log != nullptr) {
      require(event_log->seen() == 0 && event_log->time_offset() == 0.0,
              "run_sharded: attach a freshly constructed event log");
    }
    for (std::size_t s = 0; s < num_shards; ++s) {
      engines.push_back(std::make_unique<SimEngine>(config));
      policies.push_back(factory(s));
      engines[s]->attach_segment_log(&segment_logs[s]);
      if (timeline != nullptr) {
        obs::TimeseriesConfig ts_config;
        ts_config.interval_sec = timeline->interval_sec();
        ts_config.max_samples = timeline->max_samples();
        shard_timelines.push_back(std::make_unique<obs::TimeseriesCollector>(
            ts_config, timeline->num_servers()));
        engines[s]->attach_timeline(shard_timelines[s].get());
      }
      if (event_log != nullptr) {
        shard_logs.push_back(
            std::make_unique<obs::EventLog>(event_log->capacity()));
        engines[s]->attach_event_log(shard_logs[s].get());
      }
      engines[s]->begin_stepping(*policies[s]);
    }
  }

  // Merge-epoch boundaries: fixed simulated-time barriers at which every
  // shard has advanced to the same clock, the segment logs are swept into
  // the global Eq. 2/3 integrals, and the logs are cleared (the only reason
  // the barriers exist — the merged values are invariant in the cadence).
  std::vector<double> boundaries;
  const double epoch = options.merge_epoch_sec > 0.0
                           ? options.merge_epoch_sec
                           : trace.horizon / 8.0;
  if (epoch > 0.0) {
    for (double t = epoch; t < trace.horizon; t += epoch) {
      boundaries.push_back(t);
    }
  }
  boundaries.push_back(trace.horizon);

  MergedLoadMetrics merged;
  std::vector<std::size_t> next_request(num_shards, 0);
  const bool inline_shards = options.pool == nullptr ||
                             options.pool->size() <= 1 || num_shards <= 1;
  // Per-shard thread-CPU attribution (sim.shard.<s>.cpu_ns): each shard's
  // replay work accrues CPU on whichever pool worker ran it; the deltas are
  // accumulated per shard (one task per shard at a time, so the per-element
  // writes never race).  Measured only when someone is looking.
  const bool account_cpu =
      obs::metrics_enabled() || obs::RunProfiler::global().enabled();
  std::vector<std::uint64_t> shard_cpu_ns(num_shards, 0);
  double epoch_start = 0.0;
  for (std::size_t b = 0; b < boundaries.size(); ++b) {
    const double limit = boundaries[b];
    const bool final_epoch = b + 1 == boundaries.size();
    const auto advance_shard = [&](std::size_t s) {
      const std::uint64_t cpu_start =
          account_cpu ? obs::thread_cpu_now_ns() : 0;
      SimEngine& engine = *engines[s];
      StoragePolicy& policy = *policies[s];
      const std::vector<Request>& requests = plan.sub_traces[s].requests;
      std::size_t& cur = next_request[s];
      while (cur < requests.size() &&
             (final_epoch || requests[cur].arrival_time < limit)) {
        engine.step(policy, requests[cur]);
        ++cur;
      }
      engine.advance_to(policy, limit);
      if (account_cpu) {
        shard_cpu_ns[s] += obs::thread_cpu_now_ns() - cpu_start;
      }
    };
    {
      // Wall time here covers the pool dispatch and the barrier wait; the
      // per-shard cpu_ns gauges say how much of it was shard work.
      VODREP_PROFILE_PHASE("shard_run");
      if (inline_shards) {
        for (std::size_t s = 0; s < num_shards; ++s) advance_shard(s);
      } else {
        options.pool->parallel_for(num_shards, advance_shard);
      }
    }
    {
      VODREP_PROFILE_PHASE("epoch_merge");
      merge_load_segments(segment_logs, epoch_start, config.num_servers,
                          merged);
      for (std::vector<LoadSegment>& log : segment_logs) log.clear();
    }
    epoch_start = limit;
  }

  // Close every shard and fold the linear tallies.
  SimResult out;
  VODREP_PROFILE_PHASE("finish");
  std::vector<SimResult> results;
  results.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    results.push_back(engines[s]->finish_stepping(*policies[s],
                                                  trace.horizon));
  }
  out.total_requests = trace.size();
  out.served_per_server.resize(config.num_servers);
  out.utilization_per_server.assign(config.num_servers, 0.0);
  for (const SimResult& r : results) {
    out.rejected += r.rejected;
    for (std::size_t i = 0; i < obs::kNumRejectReasons; ++i) {
      out.rejected_by_reason[i] += r.rejected_by_reason[i];
    }
    out.redirected += r.redirected;
    out.proxied += r.proxied;
    out.batched += r.batched;
    out.cache_hits += r.cache_hits;
    out.cache_misses += r.cache_misses;
    out.cache_evictions += r.cache_evictions;
  }
  // `disrupted` is a sum too, but every shard applies the full failure
  // schedule and a foreign crash tears down zero streams, so the sum counts
  // each disruption exactly once.
  for (const SimResult& r : results) out.disrupted += r.disrupted;
  for (std::size_t s = 0; s < config.num_servers; ++s) {
    const SimResult& owner = results[plan.shard_of_server[s]];
    out.served_per_server[s] = owner.served_per_server[s];
    out.utilization_per_server[s] = owner.utilization_per_server[s];
  }
  out.mean_imbalance_eq2 = merged.imbalance_eq2.mean();
  out.mean_imbalance_cv = merged.imbalance_cv.mean();
  out.mean_imbalance_capacity = merged.imbalance_capacity.mean();
  out.peak_imbalance_eq2 = merged.peak_eq2;

  if (timeline != nullptr) {
    std::vector<const obs::TimeseriesCollector*> views;
    views.reserve(num_shards);
    for (const auto& t : shard_timelines) views.push_back(t.get());
    timeline->merge_shards(views);
  }
  if (event_log != nullptr) {
    merge_event_logs(plan, shard_logs, *event_log);
  }

  if (obs::metrics_enabled()) {
    obs::MetricsRegistry& registry = obs::metrics();
    registry.counter("sim.runs").inc();
    registry.counter("sim.requests").add(out.total_requests);
    registry.counter("sim.admitted").add(out.total_requests - out.rejected);
    registry.counter("sim.rejected").add(out.rejected);
    for (std::size_t r = 0; r < obs::kNumRejectReasons; ++r) {
      registry
          .counter("sim.rejected." +
                   std::string(obs::reject_reason_name(
                       static_cast<obs::RejectReason>(r))))
          .add(out.rejected_by_reason[r]);
    }
    registry.counter("sim.redirected").add(out.redirected);
    registry.counter("sim.proxied").add(out.proxied);
    registry.counter("sim.batched").add(out.batched);
    registry.counter("sim.disrupted").add(out.disrupted);
    std::size_t departures = 0;
    std::size_t cancelled = 0;
    std::size_t heap_sum = 0;
    for (std::size_t s = 0; s < num_shards; ++s) {
      const SimEngine::EventStats stats = engines[s]->event_stats();
      departures += stats.departures_fired;
      cancelled += stats.departures_cancelled;
      heap_sum += stats.heap_high_water;
      const std::string lane = "sim.shard." + std::to_string(s) + ".";
      registry.gauge(lane + "requests")
          .set(static_cast<double>(results[s].total_requests));
      registry.gauge(lane + "rejected")
          .set(static_cast<double>(results[s].rejected));
      registry.gauge(lane + "departures")
          .set(static_cast<double>(stats.departures_fired));
      registry.gauge(lane + "heap_high_water")
          .set(static_cast<double>(stats.heap_high_water));
      registry.gauge(lane + "cpu_ns")
          .set(static_cast<double>(shard_cpu_ns[s]));
    }
    registry.counter("sim.events.departure").add(departures);
    // Every shard applies the full injected schedule; report it once.
    registry.counter("sim.events.failure")
        .add(engines[0]->event_stats().failures_applied);
    registry.counter("sim.events.cancelled").add(cancelled);
    // Sum of per-shard high waters: an upper bound on the global peak of
    // in-flight departures (the shards' peaks need not coincide in time).
    registry.gauge("sim.heap_high_water")
        .set_max(static_cast<double>(heap_sum));
    registry.gauge("sim.mean_imbalance_eq2").set(out.mean_imbalance_eq2);
    registry.gauge("sim.mean_utilization").set(out.mean_utilization());
    bool has_cache = false;
    for (const auto& policy : policies) {
      if (policy->cache_stats() != nullptr) has_cache = true;
    }
    if (has_cache) {
      registry.counter("sim.cache.hits").add(out.cache_hits);
      registry.counter("sim.cache.misses").add(out.cache_misses);
      registry.counter("sim.cache.evictions").add(out.cache_evictions);
      registry.gauge("sim.cache.hit_ratio").set(out.cache_hit_ratio());
    }
  }
  // Tear the shard state down while the "finish" phase is still open —
  // these vectors were declared before the phase, so their implicit
  // destruction at return would otherwise land between "finish" closing and
  // the caller's root phase closing, outside every named child.
  engines.clear();
  policies.clear();
  shard_timelines.clear();
  shard_logs.clear();
  segment_logs.clear();
  return out;
}

}  // namespace

SimResult simulate_sharded(const Layout& layout, const SimConfig& config,
                           const RequestTrace& trace,
                           const ShardedSimOptions& options,
                           obs::TimeseriesCollector* timeline,
                           obs::EventLog* event_log) {
  if (options.num_shards <= 1) {
    require(options.num_shards == 1, "simulate_sharded: need >= 1 shard");
    SimEngine engine(config);
    if (timeline != nullptr) engine.attach_timeline(timeline);
    if (event_log != nullptr) engine.attach_event_log(event_log);
    ReplicatedPolicy policy(layout, config);
    return engine.run(policy, trace);
  }
  VODREP_PROFILE_PHASE("sim.sharded");
  // The plan is destroyed inside the "teardown" child phase rather than at
  // scope exit: freeing the sub-trace copies is real, workload-proportional
  // time that would otherwise land between children and break the phase
  // forest's >= 95% wall-coverage contract (tests/report_test.cc).
  ShardPlan plan;
  {
    VODREP_PROFILE_PHASE("plan");
    plan = make_replicated_shard_plan(layout, config, trace, options.num_shards);
  }
  const ShardPolicyFactory factory = [&](std::size_t shard) {
    auto policy = std::make_unique<ReplicatedPolicy>(layout, config);
    if (plan.is_routed()) {
      policy->set_routed_picks(plan.routed_pick_indices[shard]);
    }
    return std::unique_ptr<StoragePolicy>(std::move(policy));
  };
  SimResult out = run_sharded(config, trace, plan, factory, options, timeline,
                              event_log);
  {
    VODREP_PROFILE_PHASE("teardown");
    plan = ShardPlan{};
  }
  return out;
}

SimResult simulate_sharded_striped(const StripedLayout& layout,
                                   const SimConfig& config,
                                   const RequestTrace& trace,
                                   const ShardedSimOptions& options,
                                   obs::TimeseriesCollector* timeline,
                                   obs::EventLog* event_log) {
  if (options.num_shards <= 1) {
    require(options.num_shards == 1,
            "simulate_sharded_striped: need >= 1 shard");
    SimEngine engine(config);
    if (timeline != nullptr) engine.attach_timeline(timeline);
    if (event_log != nullptr) engine.attach_event_log(event_log);
    StripedPolicy policy(layout, config);
    return engine.run(policy, trace);
  }
  VODREP_PROFILE_PHASE("sim.sharded");
  ShardPlan plan;
  {
    VODREP_PROFILE_PHASE("plan");
    plan = make_striped_shard_plan(layout, config, trace, options.num_shards);
  }
  const ShardPolicyFactory factory = [&](std::size_t) {
    return std::unique_ptr<StoragePolicy>(
        std::make_unique<StripedPolicy>(layout, config));
  };
  SimResult out = run_sharded(config, trace, plan, factory, options, timeline,
                              event_log);
  {
    VODREP_PROFILE_PHASE("teardown");
    plan = ShardPlan{};
  }
  return out;
}

SimResult simulate_sharded_hybrid(const HybridLayout& layout,
                                  const SimConfig& config,
                                  const RequestTrace& trace,
                                  const ShardedSimOptions& options,
                                  obs::TimeseriesCollector* timeline,
                                  obs::EventLog* event_log) {
  if (options.num_shards <= 1) {
    require(options.num_shards == 1,
            "simulate_sharded_hybrid: need >= 1 shard");
    SimEngine engine(config);
    if (timeline != nullptr) engine.attach_timeline(timeline);
    if (event_log != nullptr) engine.attach_event_log(event_log);
    HybridPolicy policy(layout, config);
    return engine.run(policy, trace);
  }
  VODREP_PROFILE_PHASE("sim.sharded");
  ShardPlan plan;
  {
    VODREP_PROFILE_PHASE("plan");
    plan = make_hybrid_shard_plan(layout, config, trace, options.num_shards);
  }
  const ShardPolicyFactory factory = [&](std::size_t) {
    return std::unique_ptr<StoragePolicy>(
        std::make_unique<HybridPolicy>(layout, config));
  };
  SimResult out = run_sharded(config, trace, plan, factory, options, timeline,
                              event_log);
  {
    VODREP_PROFILE_PHASE("teardown");
    plan = ShardPlan{};
  }
  return out;
}

SimResult simulate_sharded_prefix_cache(const Layout& layout,
                                        const SimConfig& config,
                                        const PrefixCacheOptions& cache_options,
                                        const RequestTrace& trace,
                                        const ShardedSimOptions& options,
                                        obs::TimeseriesCollector* timeline,
                                        obs::EventLog* event_log) {
  if (options.num_shards <= 1) {
    require(options.num_shards == 1,
            "simulate_sharded_prefix_cache: need >= 1 shard");
    SimEngine engine(config);
    if (timeline != nullptr) engine.attach_timeline(timeline);
    if (event_log != nullptr) engine.attach_event_log(event_log);
    PrefixCachePolicy policy(layout, config, cache_options);
    return engine.run(policy, trace);
  }
  const bool cache_enabled = cache_options.capacity_bytes > 0.0;
  VODREP_PROFILE_PHASE("sim.sharded");
  ShardPlan plan;
  {
    VODREP_PROFILE_PHASE("plan");
    plan = make_prefix_cache_shard_plan(layout, config, cache_enabled, trace,
                                        options.num_shards);
  }
  const ShardPolicyFactory factory = [&](std::size_t shard) {
    auto policy =
        std::make_unique<PrefixCachePolicy>(layout, config, cache_options);
    if (plan.is_routed()) {
      policy->set_routed_picks(plan.routed_pick_indices[shard]);
    }
    return std::unique_ptr<StoragePolicy>(std::move(policy));
  };
  SimResult out = run_sharded(config, trace, plan, factory, options, timeline,
                              event_log);
  {
    VODREP_PROFILE_PHASE("teardown");
    plan = ShardPlan{};
  }
  return out;
}

}  // namespace vodrep
