// The unified discrete-event simulation core for the Section 5 evaluation.
//
// One event loop serves every storage organization: the engine owns the
// clock, the departure event heap, the per-server bandwidth state, failure
// injection, and the time-weighted metrics accumulator (Eq. 2/3 and the
// capacity-normalized imbalance, per-server utilization, and the
// rejection/redirect/batch/disruption counters).  What differs between
// organizations — how a request maps to bandwidth reservations, and what a
// server crash takes down with it — is delegated to a small StoragePolicy:
//
//   * ReplicatedPolicy (src/sim/replicated_policy.h) — whole streams on
//     one replica holder, with redirection/backbone-proxy/batching modes;
//   * StripedPolicy (src/sim/striped_policy.h) — bitrate/k shares on every
//     stripe-group member;
//   * HybridPolicy (src/sim/hybrid_policy.h) — round-robin over replicated
//     stripe groups.
//
// Between events the per-server busy bandwidths are piecewise constant, so
// the load-imbalance degree L (Eqs. 2/3) is integrated exactly as a
// time-weighted mean.  Unlike the pre-engine simulators, which rescanned all
// N servers at every event, the engine maintains the utilization sum, sum of
// squares, and max incrementally (the max lazily, re-scanned only after the
// current max server's load drops — the same trick as the SA solver's
// IncrementalState), so an event costs O(1) amortized metric work.
//
// Policies MUST route every bandwidth mutation through the engine's
// admit/release/fail so the incremental state stays consistent; the engine
// exposes servers() read-only.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/obs/event_log.h"
#include "src/obs/timeseries.h"
#include "src/sim/dispatcher.h"  // RedirectMode / BatchingMode
#include "src/sim/event_heap.h"
#include "src/sim/server.h"
#include "src/util/stats.h"
#include "src/workload/trace.h"

namespace vodrep::obs {
class Histogram;
}  // namespace vodrep::obs

namespace vodrep {

/// A scheduled server crash: at `time` the server drops every active stream
/// and admits nothing afterward (fail-stop, no recovery within the peak).
struct ServerFailure {
  double time = 0.0;
  std::size_t server = 0;
};

struct SimConfig {
  std::size_t num_servers = 0;
  double bandwidth_bps_per_server = 0.0;
  /// Optional heterogeneous fleet: when non-empty (size == num_servers),
  /// overrides bandwidth_bps_per_server per server.  The imbalance metrics
  /// are computed on link *utilizations* l_j / B_j, which coincides with the
  /// load-based definitions when the fleet is homogeneous (Eq. 2 is
  /// scale-invariant) and is the meaningful notion when it is not.
  std::vector<double> per_server_bandwidth_bps;
  double stream_bitrate_bps = 0.0;   ///< fixed encoding bit rate
  double video_duration_sec = 0.0;   ///< streams hold bandwidth this long
  RedirectMode redirect = RedirectMode::kNone;
  double backbone_bps = 0.0;         ///< proxy budget (kBackboneProxy only)
  /// Stream-sharing window in seconds (0 disables batching): a request
  /// whose scheduled replica started a stream of the same video within this
  /// window joins it instead of consuming a full new stream.
  double batching_window_sec = 0.0;
  /// Piggyback (free joins, the optimistic bound) or patching (joins pay a
  /// catch-up stream for the missed prefix).
  BatchingMode batching_mode = BatchingMode::kPiggyback;
  /// Fail-stop crashes to inject, sorted by time.  Used by the
  /// striping-vs-replication availability experiments.
  std::vector<ServerFailure> failures;

  /// Effective outgoing bandwidth of server `s`.
  [[nodiscard]] double bandwidth_of(std::size_t s) const {
    return per_server_bandwidth_bps.empty() ? bandwidth_bps_per_server
                                            : per_server_bandwidth_bps[s];
  }

  void validate() const;

  /// The redirect/backbone/batching fields model a per-request replica
  /// choice that only the replication organization has.  Policies for
  /// organizations without that choice (striping, hybrid stripe groups)
  /// call this to reject configurations that set them, instead of silently
  /// ignoring the fields as the pre-engine simulators did.
  void require_replication_extensions_unset(const char* organization) const;
};

/// Counters an edge-cache tier exposes to the engine (see
/// PrefixCachePolicy).  A policy that owns a cache keeps one instance live
/// for the whole run and returns it from cache_stats(); the engine snapshots
/// it into SimResult and samples the cumulative hit/miss counts into the
/// load timeline.
struct CacheTierStats {
  std::uint64_t hits = 0;        ///< requests whose prefix was cache-resident
  std::uint64_t misses = 0;      ///< requests that had to fetch the prefix
  std::uint64_t evictions = 0;   ///< entries evicted to make room
  std::uint64_t insertions = 0;  ///< entries admitted into the cache
  double used_bytes = 0.0;       ///< bytes resident at end of run
  double capacity_bytes = 0.0;   ///< configured cache capacity

  /// hits / (hits + misses); 0 when the cache saw no traffic.
  [[nodiscard]] double hit_ratio() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// One piecewise-constant span of the cluster-wide load state, appended by
/// the engine when a segment log is attached (attach_segment_log): the
/// running accumulators held these values over [previous end_time,
/// end_time).  The sharded runner (src/sim/sharded_engine.h) sweeps the
/// per-shard segment streams chronologically to rebuild the global Eq. 2/3
/// integrals, because those metrics are nonlinear in the per-server loads
/// and cannot be summed per shard after the fact.
struct LoadSegment {
  double end_time = 0.0;
  /// Running per-server utilization sum/sum-of-squares (post idle-flush,
  /// exactly as integrate_to saw them) and the current max utilization.
  double utilization_sum = 0.0;
  double utilization_sumsq = 0.0;
  double max_utilization = 0.0;
};

struct SimResult {
  std::size_t total_requests = 0;
  std::size_t rejected = 0;
  /// Rejections attributed to a typed reason (indexed by obs::RejectReason);
  /// the entries always sum exactly to `rejected` — the engine tallies the
  /// reason the policy reported for every rejection, kNone included, so the
  /// breakdown never silently loses a request.
  std::array<std::size_t, obs::kNumRejectReasons> rejected_by_reason{};
  std::size_t redirected = 0;  ///< served by a server other than the RR pick
  std::size_t proxied = 0;     ///< subset of redirected that crossed the backbone
  std::size_t batched = 0;     ///< requests served by joining an existing stream
  std::size_t disrupted = 0;   ///< admitted streams dropped by a server crash

  /// Fraction of requests rejected, in [0, 1]; 0 when there were none.
  [[nodiscard]] double rejection_rate() const;

  /// Time-weighted mean of the Eq. 2 imbalance over the peak period.
  double mean_imbalance_eq2 = 0.0;
  /// Time-weighted mean of the Eq. 3 (coefficient-of-variation) imbalance.
  double mean_imbalance_cv = 0.0;
  /// Largest instantaneous Eq. 2 imbalance observed.
  double peak_imbalance_eq2 = 0.0;
  /// Time-weighted mean of the capacity-normalized excess
  /// (max_j l_j - l_bar) / B.  Mean-normalized Eq. 2 is monotone decreasing
  /// in the arrival rate (the denominator grows with load); normalizing by
  /// the fixed link capacity instead reproduces the rise-peak-fall shape of
  /// the paper's Figure 6 (peak just below saturation, collapse once every
  /// server clips at capacity).
  double mean_imbalance_capacity = 0.0;

  /// Edge-cache tier counters, copied from the policy's CacheTierStats in
  /// the run epilogue; all zero when the policy has no cache tier.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  /// cache_hits / (cache_hits + cache_misses); 0 when the run had no cache
  /// traffic.
  [[nodiscard]] double cache_hit_ratio() const;

  /// Streams admitted per server (served counts).
  std::vector<std::size_t> served_per_server;
  /// Mean outgoing-bandwidth utilization per server, in [0, 1].
  std::vector<double> utilization_per_server;
  /// Mean utilization across servers.
  [[nodiscard]] double mean_utilization() const;
};

/// What a StoragePolicy decided for one request.  The engine translates
/// this into the SimResult counters; reservations and departure scheduling
/// already happened inside dispatch().
struct PolicyDecision {
  bool admitted = false;      ///< false = the request was rejected
  bool redirected = false;    ///< served by a server other than the RR pick
  bool via_backbone = false;  ///< stream proxied over the internal backbone
  bool batched = false;       ///< joined an existing stream of the video
  /// Primary serving server for the per-request event log (the stripe-group
  /// lead for striped/hybrid organizations); -1 when rejected.
  std::int32_t server = -1;
  /// Required on every rejection: which of the typed reasons applies.
  obs::RejectReason reject_reason = obs::RejectReason::kNone;
};

class StoragePolicy;

/// The shared event-driven core.  One engine instance replays one trace:
/// construct, run(), read the result (run() is single-shot because the
/// server and metric state is consumed by the replay).
class SimEngine {
 public:
  explicit SimEngine(const SimConfig& config);

  /// Replays `trace`, delegating per-request and per-crash decisions to
  /// `policy`.  Deterministic (the trace already fixes all randomness).
  [[nodiscard]] SimResult run(StoragePolicy& policy,
                              const RequestTrace& trace);

  // --- stepping interface ---
  // run() is composed of exactly these four calls, so a driver that feeds
  // requests incrementally (the sharded runner replaying a routed
  // sub-trace epoch by epoch, src/sim/sharded_engine.h) produces the same
  // state transitions as a monolithic run() over the same request
  // sequence.  Call order: begin_stepping once, then step()/advance_to()
  // with non-decreasing times, then finish_stepping once.

  /// Binds the policy and opens the (single-shot) replay.
  void begin_stepping(StoragePolicy& policy);
  /// Advances the clock to the request's arrival (applying due departures
  /// and failures) and dispatches it.
  void step(StoragePolicy& policy, const Request& request);
  /// Applies every departure/failure due by `time` and integrates the load
  /// signals up to it (an epoch barrier with no arrival attached).
  void advance_to(StoragePolicy& policy, double time);
  /// Closes the metrics window at `horizon` and returns the result.
  /// Unlike run(), does NOT fold into the global metrics registry — a
  /// sharded driver merges first and exports the merged tallies once.
  [[nodiscard]] SimResult finish_stepping(StoragePolicy& policy,
                                          double horizon);

  /// Tallies of the event-loop counters, for merged observability export.
  struct EventStats {
    std::size_t heap_high_water = 0;
    std::size_t departures_fired = 0;
    std::size_t failures_applied = 0;
    std::size_t departures_cancelled = 0;
  };
  [[nodiscard]] EventStats event_stats() const {
    return {heap_high_water_, departures_fired_, failures_applied_,
            departures_cancelled_};
  }

  [[nodiscard]] const SimConfig& config() const { return config_; }
  [[nodiscard]] std::size_t num_servers() const { return servers_.size(); }
  /// Read-only server state for dispatch decisions; all mutations must go
  /// through admit/release/fail below.
  [[nodiscard]] const std::vector<StreamingServer>& servers() const {
    return servers_;
  }
  [[nodiscard]] const StreamingServer& server(std::size_t s) const {
    return servers_[s];
  }
  /// Current simulation time (the time of the event being processed).
  [[nodiscard]] double now() const { return now_; }

  [[nodiscard]] bool can_admit(std::size_t s, double bitrate_bps) const {
    return servers_[s].can_admit(bitrate_bps);
  }
  /// Reserves bandwidth for one stream on `s` (callers check can_admit).
  void admit(std::size_t s, double bitrate_bps);
  /// Releases the bandwidth of one finished stream on `s`.
  void release(std::size_t s, double bitrate_bps);
  /// Crashes `s`: drops its active streams (count returned), empties the
  /// link, and makes every future can_admit() false.
  std::size_t fail(std::size_t s);

  /// Schedules StoragePolicy::on_departure(stream) at `time`.  The returned
  /// id can cancel the departure (a stream killed by a crash).
  EventHeap::Id schedule_departure(double time, std::size_t stream);
  void cancel_departure(EventHeap::Id id);

  /// Attaches a fixed-interval load-timeline collector / per-request event
  /// log for the run.  Both are optional and borrowed (must outlive run());
  /// when absent the hot path pays one pointer test per event.  Attach
  /// before run().
  void attach_timeline(obs::TimeseriesCollector* timeline) {
    timeline_ = timeline;
  }
  void attach_event_log(obs::EventLog* event_log) { event_log_ = event_log; }

  /// Attaches a per-run load-segment log: integrate_to appends one
  /// LoadSegment per advancing integration step.  Borrowed (must outlive
  /// the replay); the caller may drain and clear the vector between epochs
  /// (the sharded runner does, to bound memory).  When absent the hot path
  /// pays one pointer test per integration, like the timeline hook.
  void attach_segment_log(std::vector<LoadSegment>* log) {
    segment_log_ = log;
  }

 private:
  /// Shared per-request body of run() and step(): advance, dispatch (timed
  /// when `dispatch_hist` is non-null), tally, log.
  void step_request(StoragePolicy& policy, const Request& request,
                    obs::Histogram* dispatch_hist);
  /// The metrics epilogue of run(): finalizes the time-weighted means and
  /// per-server tallies at `horizon` and returns the result.
  SimResult finalize(double horizon);
  /// Applies departures and injected failures up to `now` in time order
  /// (failures win ties) and integrates the load signals.
  void advance_events(StoragePolicy& policy, double now);
  /// Folds the run's tallies into the global metrics registry (bit-exact
  /// with the returned SimResult; see tests/obs_integration_test.cc).
  void export_metrics() const;
  /// Accounts for the current utilization state holding over [now_, t).
  void integrate_to(double t);
  /// Emits every timeline sample due in (now_, t]; the signals are
  /// piecewise constant over that span, so boundary samples are exact.
  void sample_timeline_to(double t);
  /// Bracket every busy-bandwidth mutation of server `s` (at time now_).
  void pre_load_change(std::size_t s);
  void post_load_change(std::size_t s);
  [[nodiscard]] double current_max_utilization() const;

  SimConfig config_;
  std::vector<StreamingServer> servers_;
  std::vector<double> capacities_bps_;
  EventHeap departures_;
  std::size_t next_failure_ = 0;
  bool ran_ = false;
  std::size_t requests_dispatched_ = 0;  ///< arrivals processed so far
  obs::TimeseriesCollector* timeline_ = nullptr;
  obs::EventLog* event_log_ = nullptr;
  std::vector<LoadSegment>* segment_log_ = nullptr;
  /// Resolved once in begin_stepping (metrics enabled) for step() calls;
  /// run() keeps its own local copy so the replay loop stays register-hot.
  obs::Histogram* dispatch_hist_ = nullptr;
  /// Borrowed from the policy in run() (nullptr for cache-less policies);
  /// read for timeline samples and snapshotted in the epilogue.
  const CacheTierStats* cache_stats_ = nullptr;

  // --- observability tallies (plain counters; the engine is single-threaded
  // per run, and the fold into the global obs::MetricsRegistry happens once
  // in the run() epilogue, only when obs::metrics_enabled()) ---
  std::size_t heap_high_water_ = 0;      ///< max departure-heap size seen
  std::size_t departures_fired_ = 0;     ///< departure events applied
  std::size_t failures_applied_ = 0;     ///< injected crashes applied
  std::size_t departures_cancelled_ = 0; ///< departures cancelled by crashes

  // --- incrementally maintained metric state ---
  double now_ = 0.0;                      ///< last integration time
  std::vector<double> utilization_;       ///< busy / capacity per server
  double utilization_sum_ = 0.0;
  double utilization_sumsq_ = 0.0;
  mutable std::size_t max_server_ = 0;    ///< lazy argmax utilization
  mutable bool max_dirty_ = false;
  std::vector<double> busy_integral_;     ///< integral of busy_bps over time
  std::vector<double> busy_since_;        ///< last busy change per server
  TimeWeightedMean imbalance_eq2_;
  TimeWeightedMean imbalance_cv_;
  TimeWeightedMean imbalance_capacity_;
  double peak_eq2_ = 0.0;
  SimResult result_;
};

/// How one storage organization maps requests to bandwidth reservations.
/// Implementations keep per-stream records, reserve and free bandwidth only
/// through the engine, and schedule/cancel departures for the streams they
/// open.  See DESIGN.md ("Simulation engine") for how to add a new
/// organization.
class StoragePolicy {
 public:
  StoragePolicy() = default;
  StoragePolicy(const StoragePolicy&) = delete;
  StoragePolicy& operator=(const StoragePolicy&) = delete;
  virtual ~StoragePolicy() = default;

  /// Called once by SimEngine::run before the replay; the policy keeps the
  /// engine pointer for the duration of the run.
  virtual void bind(SimEngine& engine) = 0;

  /// Handles one arriving request: decide the serving server(s), reserve
  /// bandwidth via engine admit(), and schedule the departure(s).  Returns
  /// what happened so the engine can update the counters.
  virtual PolicyDecision dispatch(const Request& request) = 0;

  /// A departure scheduled via schedule_departure(time, stream) fired:
  /// release the stream's reservations.
  virtual void on_departure(std::size_t stream) = 0;

  /// Server `server` crashed.  The policy fails it on the engine, tears
  /// down every stream the crash kills, and returns how many admitted
  /// streams were disrupted.
  virtual std::size_t on_crash(std::size_t server) = 0;

  /// Live cache-tier counters, or nullptr when the organization has no edge
  /// cache.  The engine reads the pointer once in run() (right after bind)
  /// and samples it as the run progresses, so the instance must stay valid
  /// for the whole replay.
  [[nodiscard]] virtual const CacheTierStats* cache_stats() const {
    return nullptr;
  }
};

}  // namespace vodrep
