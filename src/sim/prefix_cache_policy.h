// StoragePolicy for the replicated organization fronted by an edge-proxy
// prefix cache (the segment/prefix content model, DESIGN.md §9).
//
// The edge tier holds the first `prefix_fraction` of each video (the prefix
// a viewer watches before the origin can stage the suffix).  A request
// first consults the cache:
//
//   * prefix HIT, viewer stops inside the prefix — served entirely from the
//     edge; no origin bandwidth is reserved at all;
//   * prefix HIT, viewer watches past the prefix — only the suffix streams
//     from the origin cluster, holding origin bandwidth for
//     (watch_fraction - prefix_fraction) * duration seconds;
//   * prefix MISS — the whole watched stream comes from the origin (the
//     fetch that fills the cache rides the same stream), and the prefix is
//     inserted into the cache, evicting per the configured policy.
//
// Rejection attribution is exact: a blocked suffix after a hit is plain
// kNoBandwidth (the cache did its job; the origin link was the constraint),
// a miss with at least one live replica holder but no origin bandwidth is
// the new kCacheMissOriginBusy, and a miss with every holder crashed stays
// kNoReplicaAlive.  With capacity 0 the cache tier is disabled outright and
// the policy reproduces ReplicatedPolicy decision-for-decision, reasons
// included (asserted by tests/prefix_cache_test.cc).
//
// The cache itself (PrefixCache) is deterministic by construction: victim
// selection is an O(M) scan over flat vectors keyed by a monotone access
// tick — no pointer- or hash-ordered iteration anywhere (the vodrep_lint
// determinism rules apply to this file).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/core/layout.h"
#include "src/sim/dispatcher.h"
#include "src/sim/engine.h"
#include "src/util/error.h"

namespace vodrep {

/// Which resident prefix to evict when the cache is full.
enum class CacheEvictionPolicy {
  kLru,  ///< least recently touched prefix
  kLfu,  ///< least frequently touched; recency breaks ties (older evicts)
};

/// Deterministic fixed-capacity prefix cache over videos 0..M-1 with
/// per-video entry sizes fixed at construction.  lookup() counts hits and
/// misses and refreshes recency/frequency; insert() admits one entry,
/// evicting per the policy until it fits.  All state is flat vectors; the
/// same access sequence always produces the same residency and stats.
class PrefixCache {
 public:
  /// `entry_bytes[i]` is the stored size of video i's prefix (> 0, finite).
  PrefixCache(CacheEvictionPolicy policy, double capacity_bytes,
              std::vector<double> entry_bytes);

  /// True (and a counted hit, with recency/frequency refreshed) when the
  /// video's prefix is resident; a counted miss otherwise.
  [[nodiscard]] bool lookup(std::size_t video);

  /// Admits `video` after a miss, evicting victims until it fits.  An entry
  /// larger than the whole cache is never admitted (no eviction churn).
  /// No-op if the video is already resident.
  void insert(std::size_t video);

  [[nodiscard]] bool resident(std::size_t video) const {
    return resident_[video] != 0;
  }
  [[nodiscard]] double used_bytes() const { return stats_.used_bytes; }
  [[nodiscard]] const CacheTierStats& stats() const { return stats_; }

 private:
  /// Deterministic victim: LRU = smallest last-touch tick; LFU = smallest
  /// (frequency, last-touch tick).  Ticks are unique, so there are no ties.
  [[nodiscard]] std::size_t pick_victim() const;

  CacheEvictionPolicy policy_;
  double capacity_bytes_ = 0.0;
  std::vector<double> entry_bytes_;
  std::vector<std::uint8_t> resident_;
  std::vector<std::uint64_t> freq_;        ///< touches since insertion
  std::vector<std::uint64_t> last_touch_;  ///< access tick of last touch
  std::uint64_t tick_ = 0;                 ///< monotone access counter
  CacheTierStats stats_;
};

/// Configuration of the edge tier in front of the replicated origin.
struct PrefixCacheOptions {
  CacheEvictionPolicy eviction = CacheEvictionPolicy::kLru;
  /// Total edge capacity in bytes; 0 disables the tier entirely (the policy
  /// then replays ReplicatedPolicy exactly).
  double capacity_bytes = 0.0;
  /// Per-video stored prefix fraction in (0, 1]; empty applies
  /// `uniform_prefix_fraction` to every video.
  std::vector<double> prefix_fraction;
  double uniform_prefix_fraction = 0.25;
};

/// ReplicatedPolicy + edge prefix cache.  See the file comment for the hit/
/// miss semantics and rejection attribution.
class PrefixCachePolicy final : public StoragePolicy {
 public:
  /// `layout` must outlive the policy; `config` and `options` are copied.
  PrefixCachePolicy(const Layout& layout, const SimConfig& config,
                    const PrefixCacheOptions& options);

  void bind(SimEngine& engine) override;
  PolicyDecision dispatch(const Request& request) override;
  void on_departure(std::size_t stream) override;
  std::size_t on_crash(std::size_t server) override;
  [[nodiscard]] const CacheTierStats* cache_stats() const override;

  /// Routed sub-trace replay (sharded simulation).  Only valid with the
  /// cache tier disabled: with a live cache a prefix hit that ends inside
  /// the prefix never consults the dispatcher, so a precomputed pick
  /// sequence cannot stay aligned with the dispatch calls.
  void set_routed_picks(std::vector<std::uint32_t> picks) {
    require(!cache_enabled_,
            "PrefixCachePolicy: routed replay requires a disabled cache "
            "tier (prefix hits skip the dispatcher)");
    dispatcher_.set_routed_picks(std::move(picks));
  }

 private:
  /// One origin reservation with a scheduled departure (full stream,
  /// suffix stream, or patching catch-up).
  struct Stream {
    std::size_t server = 0;
    bool via_backbone = false;
  };

  [[nodiscard]] PolicyDecision reject_for(std::size_t video,
                                          bool cache_hit) const;

  const Layout& layout_;
  const SimConfig config_;
  const bool cache_enabled_;
  std::vector<double> prefix_fraction_;  ///< size M, each in (0, 1]
  Dispatcher dispatcher_;
  PrefixCache cache_;
  SimEngine* engine_ = nullptr;
  std::vector<Stream> streams_;
};

}  // namespace vodrep
