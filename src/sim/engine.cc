#include "src/sim/engine.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/error.h"

namespace vodrep {

void SimConfig::validate() const {
  require(num_servers >= 1, "SimConfig: need at least one server");
  require(bandwidth_bps_per_server > 0.0, "SimConfig: bad server bandwidth");
  if (!per_server_bandwidth_bps.empty()) {
    require(per_server_bandwidth_bps.size() == num_servers,
            "SimConfig: per-server bandwidth size mismatch");
    for (double b : per_server_bandwidth_bps) {
      require(b > 0.0, "SimConfig: bad per-server bandwidth");
    }
  }
  require(stream_bitrate_bps > 0.0, "SimConfig: bad stream bit rate");
  require(video_duration_sec > 0.0, "SimConfig: bad video duration");
  if (redirect != RedirectMode::kNone) {
    require(backbone_bps >= 0.0, "SimConfig: negative backbone bandwidth");
  }
  require(batching_window_sec >= 0.0, "SimConfig: negative batching window");
  double prev_time = 0.0;
  for (const ServerFailure& failure : failures) {
    require(failure.server < num_servers,
            "SimConfig: failure server out of range");
    require(failure.time >= prev_time,
            "SimConfig: failures must be sorted by time");
    prev_time = failure.time;
  }
}

void SimConfig::require_replication_extensions_unset(
    const char* organization) const {
  require(redirect == RedirectMode::kNone, [&] {
    return std::string(organization) +
           " simulation has no replica choice to redirect between; unset "
           "SimConfig::redirect";
  });
  require(backbone_bps == 0.0, [&] {
    return std::string(organization) +
           " simulation cannot proxy streams; unset SimConfig::backbone_bps";
  });
  require(batching_window_sec == 0.0, [&] {
    return std::string(organization) +
           " simulation does not support stream sharing; unset "
           "SimConfig::batching_window_sec";
  });
}

double SimResult::rejection_rate() const {
  return total_requests == 0
             ? 0.0
             : static_cast<double>(rejected) / static_cast<double>(total_requests);
}

double SimResult::cache_hit_ratio() const {
  const std::uint64_t total = cache_hits + cache_misses;
  return total == 0
             ? 0.0
             : static_cast<double>(cache_hits) / static_cast<double>(total);
}

double SimResult::mean_utilization() const {
  if (utilization_per_server.empty()) return 0.0;
  double sum = 0.0;
  for (double u : utilization_per_server) sum += u;
  return sum / static_cast<double>(utilization_per_server.size());
}

SimEngine::SimEngine(const SimConfig& config) : config_(config) {
  config_.validate();
  const std::size_t n = config_.num_servers;
  servers_.reserve(n);
  capacities_bps_.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    capacities_bps_[s] = config_.bandwidth_of(s);
    servers_.emplace_back(capacities_bps_[s]);
  }
  utilization_.assign(n, 0.0);
  busy_integral_.assign(n, 0.0);
  busy_since_.assign(n, 0.0);
}

SimResult SimEngine::run(StoragePolicy& policy, const RequestTrace& trace) {
  require(trace.is_well_formed(), "SimEngine::run: malformed trace");
  VODREP_TRACE_SCOPE("sim.run");
  begin_stepping(policy);
  // Local copy so the replay loop keeps the pointer in a register.
  obs::Histogram* const dispatch_hist = dispatch_hist_;
  result_.total_requests = trace.size();
  for (const Request& request : trace.requests) {
    step_request(policy, request, dispatch_hist);
  }
  // Close the books at the end of the peak period; streams outliving it keep
  // their bandwidth (they are not torn down) but the metrics window ends.
  advance_events(policy, trace.horizon);
  const SimResult out = finalize(trace.horizon);
  if (obs::metrics_enabled()) export_metrics();
  return out;
}

void SimEngine::begin_stepping(StoragePolicy& policy) {
  require(!ran_, "SimEngine: one engine instance replays one trace");
  ran_ = true;
  policy.bind(*this);
  cache_stats_ = policy.cache_stats();
  // Per-request dispatch timing is the one per-event obs cost; it is paid
  // only when metrics are enabled at replay start (two steady-clock reads
  // and a lock-free histogram increment per request).
  if (obs::metrics_enabled()) {
    dispatch_hist_ = &obs::metrics().histogram(
        "sim.dispatch_us", {0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0,
                            250.0, 1000.0});
  }
}

void SimEngine::step(StoragePolicy& policy, const Request& request) {
  step_request(policy, request, dispatch_hist_);
}

void SimEngine::advance_to(StoragePolicy& policy, double time) {
  advance_events(policy, time);
}

SimResult SimEngine::finish_stepping(StoragePolicy& policy, double horizon) {
  advance_events(policy, horizon);
  result_.total_requests = requests_dispatched_;
  return finalize(horizon);
}

void SimEngine::step_request(StoragePolicy& policy, const Request& request,
                             obs::Histogram* dispatch_hist) {
  advance_events(policy, request.arrival_time);
  PolicyDecision decision;
  if (dispatch_hist != nullptr) {
    const std::uint64_t start_ns = obs::TraceRecorder::now_ns();
    decision = policy.dispatch(request);
    dispatch_hist->observe(
        static_cast<double>(obs::TraceRecorder::now_ns() - start_ns) /
        1000.0);
  } else {
    decision = policy.dispatch(request);
  }
  ++requests_dispatched_;
  if (!decision.admitted) {
    ++result_.rejected;
    // Attribution is part of the result, not optional observability: the
    // per-reason entries always sum exactly to `rejected`.
    VODREP_DCHECK(decision.reject_reason != obs::RejectReason::kNone,
                  "StoragePolicy rejected a request without a reason");
    ++result_.rejected_by_reason[static_cast<std::size_t>(
        decision.reject_reason)];
  } else if (decision.batched) {
    ++result_.batched;
  } else {
    if (decision.redirected) ++result_.redirected;
    if (decision.via_backbone) ++result_.proxied;
  }
  if (event_log_ != nullptr) {
    obs::RequestRecord record;
    record.arrival_time = request.arrival_time;
    record.video = static_cast<std::uint32_t>(request.video);
    record.server = decision.server;
    if (!decision.admitted) {
      record.outcome = obs::RequestOutcome::kRejected;
      record.reason = decision.reject_reason;
    } else if (decision.batched) {
      record.outcome = obs::RequestOutcome::kBatched;
    } else if (decision.via_backbone) {
      record.outcome = obs::RequestOutcome::kProxied;
    } else if (decision.redirected) {
      record.outcome = obs::RequestOutcome::kRedirected;
    } else {
      record.outcome = obs::RequestOutcome::kServed;
    }
    event_log_->record(record);
  }
}

SimResult SimEngine::finalize(double horizon) {
  result_.mean_imbalance_eq2 = imbalance_eq2_.mean();
  result_.mean_imbalance_cv = imbalance_cv_.mean();
  result_.mean_imbalance_capacity = imbalance_capacity_.mean();
  result_.peak_imbalance_eq2 = peak_eq2_;
  const std::size_t n = servers_.size();
  result_.served_per_server.resize(n);
  result_.utilization_per_server.assign(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    result_.served_per_server[s] = servers_[s].served_total();
    if (horizon > 0.0) {
      // Flush the per-server busy integral to the end of the window.
      const double integral =
          busy_integral_[s] +
          servers_[s].busy_bps() * (horizon - busy_since_[s]);
      result_.utilization_per_server[s] =
          integral / (horizon * capacities_bps_[s]);
    }
  }
  if (cache_stats_ != nullptr) {
    result_.cache_hits = cache_stats_->hits;
    result_.cache_misses = cache_stats_->misses;
    result_.cache_evictions = cache_stats_->evictions;
  }
  return result_;
}

void SimEngine::export_metrics() const {
  obs::MetricsRegistry& registry = obs::metrics();
  registry.counter("sim.runs").inc();
  registry.counter("sim.requests").add(result_.total_requests);
  registry.counter("sim.admitted")
      .add(result_.total_requests - result_.rejected);
  registry.counter("sim.rejected").add(result_.rejected);
  for (std::size_t r = 0; r < obs::kNumRejectReasons; ++r) {
    registry
        .counter("sim.rejected." +
                 std::string(obs::reject_reason_name(
                     static_cast<obs::RejectReason>(r))))
        .add(result_.rejected_by_reason[r]);
  }
  registry.counter("sim.redirected").add(result_.redirected);
  registry.counter("sim.proxied").add(result_.proxied);
  registry.counter("sim.batched").add(result_.batched);
  registry.counter("sim.disrupted").add(result_.disrupted);
  registry.counter("sim.events.departure").add(departures_fired_);
  registry.counter("sim.events.failure").add(failures_applied_);
  registry.counter("sim.events.cancelled").add(departures_cancelled_);
  registry.gauge("sim.heap_high_water")
      .set_max(static_cast<double>(heap_high_water_));
  registry.gauge("sim.mean_imbalance_eq2").set(result_.mean_imbalance_eq2);
  registry.gauge("sim.mean_utilization").set(result_.mean_utilization());
  // Cache counters fold only for runs that actually had a cache tier, so a
  // cache-less process never grows sim.cache.* series.
  if (cache_stats_ != nullptr) {
    registry.counter("sim.cache.hits").add(result_.cache_hits);
    registry.counter("sim.cache.misses").add(result_.cache_misses);
    registry.counter("sim.cache.evictions").add(result_.cache_evictions);
    registry.gauge("sim.cache.hit_ratio").set(result_.cache_hit_ratio());
  }
}

void SimEngine::admit(std::size_t s, double bitrate_bps) {
  pre_load_change(s);
  servers_[s].admit(bitrate_bps);
  post_load_change(s);
}

void SimEngine::release(std::size_t s, double bitrate_bps) {
  pre_load_change(s);
  servers_[s].release(bitrate_bps);
  post_load_change(s);
}

std::size_t SimEngine::fail(std::size_t s) {
  pre_load_change(s);
  const std::size_t dropped = servers_[s].fail();
  post_load_change(s);
  return dropped;
}

EventHeap::Id SimEngine::schedule_departure(double time, std::size_t stream) {
  const EventHeap::Id id = departures_.push(time, stream);
  heap_high_water_ = std::max(heap_high_water_, departures_.size());
  return id;
}

void SimEngine::cancel_departure(EventHeap::Id id) {
  departures_.cancel(id);
  ++departures_cancelled_;
}

void SimEngine::advance_events(StoragePolicy& policy, double now) {
  const auto& failures = config_.failures;
  for (;;) {
    const bool have_departure =
        !departures_.empty() && departures_.min_time() <= now;
    const bool have_failure = next_failure_ < failures.size() &&
                              failures[next_failure_].time <= now;
    if (have_failure &&
        (!have_departure ||
         failures[next_failure_].time <= departures_.min_time())) {
      const ServerFailure& failure = failures[next_failure_++];
      integrate_to(failure.time);
      ++failures_applied_;
      result_.disrupted += policy.on_crash(failure.server);
      continue;
    }
    if (!have_departure) break;
    const EventHeap::Event event = departures_.pop_min();
    integrate_to(event.time);
    ++departures_fired_;
    policy.on_departure(event.payload);
  }
  integrate_to(now);
}

void SimEngine::integrate_to(double t) {
  const double dt = t - now_;
  if (dt <= 0.0) return;
  // Samples due in [now_, t] read the state that holds over that span, so
  // they must fire before the accumulators advance.  Deferring the check
  // past the dt<=0 early return keeps the guard-priced fast path free of
  // the timeline test and loses no samples: a zero-dt call leaves now_
  // unchanged, so a due sample simply fires on the next advancing call,
  // reading the state that actually holds over the sampled interval.
  if (timeline_ != nullptr) sample_timeline_to(t);
  const auto n = static_cast<double>(servers_.size());
  const double max = current_max_utilization();
  if (max <= 0.0) {
    // Every per-server utilization is exactly zero (the entries are exact;
    // only the running sums accumulate rounding residue).  Flush the
    // residue so an idle cluster cannot masquerade as loaded — a ~1e-16
    // leftover mean would turn the CV metric into residue/residue noise.
    utilization_sum_ = 0.0;
    utilization_sumsq_ = 0.0;
  }
  const double mean = utilization_sum_ / n;
  double eq2 = 0.0;
  double cv = 0.0;
  if (mean > 0.0) {
    // Clamp: with equal loads the summed mean can exceed the max by a few
    // ulps (and the running sum of squares can dip below n*mean^2).
    eq2 = std::max(0.0, (max - mean) / mean);
    const double variance =
        std::max(0.0, utilization_sumsq_ / n - mean * mean);
    cv = std::sqrt(variance) / mean;
  }
  imbalance_eq2_.add(eq2, dt);
  imbalance_cv_.add(cv, dt);
  imbalance_capacity_.add(std::max(0.0, max - mean), dt);
  peak_eq2_ = std::max(peak_eq2_, eq2);
  if (segment_log_ != nullptr) {
    // The (post-flush) accumulators held these values over [now_, t); the
    // sharded merge sweeps these spans chronologically across shards.
    segment_log_->push_back(
        {t, utilization_sum_, utilization_sumsq_, max});
  }
  now_ = t;
}

void SimEngine::sample_timeline_to(double t) {
  // The utilization state is constant over [now_, t], so every sample due
  // in that span reads the live incremental accumulators directly; the
  // eq2 computation mirrors integrate_to (including the idle special case)
  // without mutating the running sums.
  while (timeline_->next_due() <= t) {
    const double max = current_max_utilization();
    double mean = 0.0;
    double eq2 = 0.0;
    if (max > 0.0) {
      mean = utilization_sum_ / static_cast<double>(servers_.size());
      if (mean > 0.0) eq2 = std::max(0.0, (max - mean) / mean);
    }
    const std::uint64_t cache_hits =
        cache_stats_ != nullptr ? cache_stats_->hits : 0;
    const std::uint64_t cache_misses =
        cache_stats_ != nullptr ? cache_stats_->misses : 0;
    timeline_->record(eq2, mean, max, requests_dispatched_, result_.rejected,
                      utilization_, cache_hits, cache_misses);
  }
}

void SimEngine::pre_load_change(std::size_t s) {
  busy_integral_[s] += servers_[s].busy_bps() * (now_ - busy_since_[s]);
  busy_since_[s] = now_;
}

void SimEngine::post_load_change(std::size_t s) {
  const double updated = servers_[s].busy_bps() / capacities_bps_[s];
  const double previous = utilization_[s];
  utilization_[s] = updated;
  utilization_sum_ += updated - previous;
  utilization_sumsq_ += updated * updated - previous * previous;
  // Lazy max (the IncrementalState trick): track the argmax eagerly while
  // loads grow; only a drop of the current max server's load forces an
  // O(N) re-scan, deferred to the next query.
  if (s == max_server_) {
    if (updated < previous) max_dirty_ = true;
  } else if (!max_dirty_ && updated > utilization_[max_server_]) {
    max_server_ = s;
  }
}

double SimEngine::current_max_utilization() const {
  if (max_dirty_) {
    max_server_ = static_cast<std::size_t>(
        std::max_element(utilization_.begin(), utilization_.end()) -
        utilization_.begin());
    max_dirty_ = false;
  }
  return utilization_[max_server_];
}

}  // namespace vodrep
