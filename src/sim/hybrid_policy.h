// StoragePolicy for the hybrid organization: replicated stripe groups
// (r copies of k-wide groups per video).  Dispatch follows the paper's
// static round-robin at the group level: each request picks the video's
// next group in rotation and draws bitrate/k from every member of that
// group; the request is rejected when any member of the scheduled group
// lacks the share (no retry, mirroring the strict static policy of the
// replication organization).  A server crash kills the streams of every
// group containing it, but the video stays available through its surviving
// groups.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/striping.h"
#include "src/sim/engine.h"

namespace vodrep {

class HybridPolicy final : public StoragePolicy {
 public:
  /// `layout` must outlive the policy; the config is copied, so a
  /// temporary is safe to pass.  Throws when `config` sets
  /// replication-only extensions (redirect / backbone / batching).
  HybridPolicy(const HybridLayout& layout, const SimConfig& config);

  void bind(SimEngine& engine) override;
  PolicyDecision dispatch(const Request& request) override;
  void on_departure(std::size_t stream) override;
  std::size_t on_crash(std::size_t server) override;

 private:
  /// One active stream on a specific stripe-group copy of its video.
  struct Stream {
    std::size_t video = 0;
    std::size_t group = 0;
    EventHeap::Id departure = 0;
    bool alive = false;
  };

  [[nodiscard]] const std::vector<std::size_t>& group_of(
      const Stream& stream) const {
    return layout_.groups[stream.video][stream.group];
  }

  const HybridLayout& layout_;
  const SimConfig config_;
  SimEngine* engine_ = nullptr;
  std::vector<Stream> streams_;
  std::vector<std::size_t> rr_counter_;  ///< per-video group rotation
};

}  // namespace vodrep
