#include "src/sim/hybrid_policy.h"

#include <algorithm>

#include "src/util/error.h"

namespace vodrep {

HybridPolicy::HybridPolicy(const HybridLayout& layout, const SimConfig& config)
    : layout_(layout),
      config_(config),
      rr_counter_(layout.num_videos(), 0) {
  config.require_replication_extensions_unset("hybrid");
  layout.validate(config.num_servers);
}

void HybridPolicy::bind(SimEngine& engine) {
  require(engine.num_servers() == config_.num_servers,
          "HybridPolicy: engine/config server count mismatch");
  engine_ = &engine;
}

PolicyDecision HybridPolicy::dispatch(const Request& request) {
  require(request.video < layout_.num_videos(),
          "HybridPolicy: video out of range");
  const auto& copies = layout_.groups[request.video];
  const std::size_t pick = rr_counter_[request.video] % copies.size();
  ++rr_counter_[request.video];
  const auto& group = copies[pick];
  const double share =
      config_.stream_bitrate_bps / static_cast<double>(group.size());
  const bool admissible =
      std::all_of(group.begin(), group.end(), [&](std::size_t s) {
        return engine_->can_admit(s, share);
      });
  if (!admissible) {
    // A down member of the scheduled copy's stripe group makes that copy
    // unavailable (the RR schedule is static, so no other copy is tried);
    // with the whole group alive the binding constraint was bandwidth.
    PolicyDecision rejected;
    const bool member_down =
        std::any_of(group.begin(), group.end(), [&](std::size_t s) {
          return engine_->server(s).failed();
        });
    rejected.reject_reason = member_down
                                 ? obs::RejectReason::kStripeUnavailable
                                 : obs::RejectReason::kNoBandwidth;
    return rejected;
  }
  for (std::size_t s : group) engine_->admit(s, share);
  streams_.push_back(Stream{request.video, pick, 0, true});
  streams_.back().departure = engine_->schedule_departure(
      request.arrival_time + request.watch_fraction * config_.video_duration_sec,
      streams_.size() - 1);
  PolicyDecision outcome;
  outcome.admitted = true;
  outcome.server = static_cast<std::int32_t>(group.front());
  return outcome;
}

void HybridPolicy::on_departure(std::size_t stream) {
  Stream& record = streams_[stream];
  record.alive = false;
  // An alive stream's group never contains a failed server: the crash that
  // failed a member cancelled every affected departure.
  const auto& group = group_of(record);
  const double share =
      config_.stream_bitrate_bps / static_cast<double>(group.size());
  for (std::size_t s : group) engine_->release(s, share);
}

std::size_t HybridPolicy::on_crash(std::size_t server) {
  (void)engine_->fail(server);
  std::size_t disrupted = 0;
  for (Stream& record : streams_) {
    if (!record.alive) continue;
    const auto& group = group_of(record);
    if (std::find(group.begin(), group.end(), server) == group.end()) {
      continue;
    }
    record.alive = false;
    ++disrupted;
    engine_->cancel_departure(record.departure);
    const double share =
        config_.stream_bitrate_bps / static_cast<double>(group.size());
    for (std::size_t s : group) {
      if (s != server && !engine_->server(s).failed()) {
        engine_->release(s, share);
      }
    }
  }
  return disrupted;
}

}  // namespace vodrep
