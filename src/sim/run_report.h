// Run-report assembly: turns live simulation state (SimConfig, SimResult,
// an optional TimeseriesCollector and EventLog) into the versioned
// self-describing JSON document defined by src/obs/report.h.
//
// The numbers in `final` come straight from the SimResult structs through
// json_lite's value-exact serialization, so a report round-trips the
// end-of-run Eq. 2 imbalance bit-for-bit — downstream validators can
// compare at 1e-9 (or exactly) without recomputing.
#pragma once

#include <vector>

#include "src/obs/event_log.h"
#include "src/obs/json_lite.h"
#include "src/obs/timeseries.h"
#include "src/sim/engine.h"

namespace vodrep {

/// Element-wise aggregate of several SimResults (e.g. the epoch replays of
/// an online-adaptation run): counters and per-server served counts sum,
/// time-weighted means average with equal weight (equal-duration epochs),
/// peaks take the max, and the per-reason rejection counts keep summing
/// exactly to `rejected`.  `results` must be non-empty and agree on the
/// server count.
[[nodiscard]] SimResult aggregate_results(const std::vector<SimResult>& results);

/// Builds a schema-version-1 run report (obs::validate_run_report passes on
/// the output by construction).  `timeline` and `events` may be null — the
/// corresponding sections then carry zero samples / records.  `config_extra`
/// must be a JSON object; its members are merged into the `config` echo on
/// top of the SimConfig fields (callers add trace/driver parameters there).
/// `profile` is the optional RunProfiler::to_json() export; pass null (the
/// default) to omit the section.
[[nodiscard]] obs::JsonValue build_run_report(
    const SimConfig& config, const SimResult& result,
    const obs::TimeseriesCollector* timeline, const obs::EventLog* events,
    obs::JsonValue config_extra = obs::JsonValue::object(),
    obs::JsonValue profile = obs::JsonValue::null());

}  // namespace vodrep
