#include "src/sim/shard_plan.h"

#include <algorithm>

#include "src/util/error.h"

namespace vodrep {
namespace {

/// Plain union-find with path halving; merge order is deterministic (the
/// callers iterate videos and group members in index order).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void merge(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

/// Assigns connected components to shards and routes the trace by video.
/// Components are numbered in order of their smallest server id and placed
/// greedily on the least-loaded shard (by server count, ties to the lowest
/// shard id) — deterministic, so the whole plan is a pure function of its
/// inputs.  `anchor_server_of_video[v]` is any server of v's component.
ShardPlan component_plan(UnionFind& uf, std::size_t num_servers,
                         const std::vector<std::size_t>& anchor_server_of_video,
                         const RequestTrace& trace, std::size_t num_shards) {
  ShardPlan plan;
  plan.num_shards = num_shards;

  std::vector<std::uint32_t> component_of_server(num_servers);
  std::vector<std::int64_t> component_of_root(num_servers, -1);
  std::vector<std::size_t> component_size;
  for (std::size_t s = 0; s < num_servers; ++s) {
    const std::size_t root = uf.find(s);
    if (component_of_root[root] < 0) {
      component_of_root[root] = static_cast<std::int64_t>(component_size.size());
      component_size.push_back(0);
    }
    component_of_server[s] =
        static_cast<std::uint32_t>(component_of_root[root]);
    ++component_size[component_of_server[s]];
  }

  std::vector<std::size_t> shard_load(num_shards, 0);
  std::vector<std::uint32_t> shard_of_component(component_size.size());
  for (std::size_t c = 0; c < component_size.size(); ++c) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < num_shards; ++s) {
      if (shard_load[s] < shard_load[best]) best = s;
    }
    shard_of_component[c] = static_cast<std::uint32_t>(best);
    shard_load[best] += component_size[c];
  }

  plan.shard_of_server.resize(num_servers);
  for (std::size_t s = 0; s < num_servers; ++s) {
    plan.shard_of_server[s] = shard_of_component[component_of_server[s]];
  }

  plan.sub_traces.resize(num_shards);
  for (RequestTrace& sub : plan.sub_traces) sub.horizon = trace.horizon;
  plan.shard_of_request.reserve(trace.size());
  for (const Request& request : trace.requests) {
    require(request.video < anchor_server_of_video.size(),
            "shard plan: request video out of range");
    const std::uint32_t shard =
        plan.shard_of_server[anchor_server_of_video[request.video]];
    plan.shard_of_request.push_back(shard);
    plan.sub_traces[shard].requests.push_back(request);
  }
  return plan;
}

void require_shardable_redirect(const SimConfig& config,
                                std::size_t num_shards) {
  require(num_shards >= 1, "shard plan: need at least one shard");
  require(config.redirect != RedirectMode::kBackboneProxy || num_shards == 1,
          "sharded simulation: RedirectMode::kBackboneProxy proxies streams "
          "through arbitrary non-holders under a shared backbone budget, "
          "coupling every server — run with --sim-shards 1");
}

}  // namespace

ShardPlan make_replicated_shard_plan(const Layout& layout,
                                     const SimConfig& config,
                                     const RequestTrace& trace,
                                     std::size_t num_shards) {
  require_shardable_redirect(config, num_shards);
  const std::size_t n = config.num_servers;

  if (config.redirect == RedirectMode::kOtherHolders) {
    // Redirect retries read every holder's live load: co-shard holders.
    UnionFind uf(n);
    std::vector<std::size_t> anchor(layout.num_videos(), 0);
    for (std::size_t v = 0; v < layout.num_videos(); ++v) {
      const auto& holders = layout.assignment[v];
      require(!holders.empty(), "shard plan: video has no replica");
      anchor[v] = holders[0];
      for (std::size_t k = 1; k < holders.size(); ++k) {
        uf.merge(holders[0], holders[k]);
      }
    }
    return component_plan(uf, n, anchor, trace, num_shards);
  }

  // kNone: per-server granularity.  Replay the unconditional round-robin
  // advance in a sequential pre-pass and route each request to the shard
  // owning its picked holder, recording the pick for the shard's
  // dispatcher to replay verbatim.
  ShardPlan plan;
  plan.num_shards = num_shards;
  plan.shard_of_server.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    plan.shard_of_server[s] = static_cast<std::uint32_t>(s % num_shards);
  }
  plan.sub_traces.resize(num_shards);
  for (RequestTrace& sub : plan.sub_traces) sub.horizon = trace.horizon;
  plan.routed_pick_indices.resize(num_shards);
  plan.shard_of_request.reserve(trace.size());
  std::vector<std::size_t> rr(layout.num_videos(), 0);
  for (const Request& request : trace.requests) {
    require(request.video < layout.num_videos(),
            "shard plan: request video out of range");
    const auto& holders = layout.assignment[request.video];
    require(!holders.empty(), "shard plan: video has no replica");
    const std::size_t pick_index = rr[request.video] % holders.size();
    ++rr[request.video];
    const std::uint32_t shard = plan.shard_of_server[holders[pick_index]];
    plan.shard_of_request.push_back(shard);
    plan.sub_traces[shard].requests.push_back(request);
    plan.routed_pick_indices[shard].push_back(
        static_cast<std::uint32_t>(pick_index));
  }
  return plan;
}

ShardPlan make_striped_shard_plan(const StripedLayout& layout,
                                  const SimConfig& config,
                                  const RequestTrace& trace,
                                  std::size_t num_shards) {
  require(num_shards >= 1, "shard plan: need at least one shard");
  const std::size_t n = config.num_servers;
  UnionFind uf(n);
  std::vector<std::size_t> anchor(layout.groups.size(), 0);
  for (std::size_t v = 0; v < layout.groups.size(); ++v) {
    const auto& group = layout.groups[v];
    require(!group.empty(), "shard plan: empty stripe group");
    anchor[v] = group[0];
    for (std::size_t k = 1; k < group.size(); ++k) {
      uf.merge(group[0], group[k]);
    }
  }
  return component_plan(uf, n, anchor, trace, num_shards);
}

ShardPlan make_hybrid_shard_plan(const HybridLayout& layout,
                                 const SimConfig& config,
                                 const RequestTrace& trace,
                                 std::size_t num_shards) {
  require(num_shards >= 1, "shard plan: need at least one shard");
  const std::size_t n = config.num_servers;
  UnionFind uf(n);
  std::vector<std::size_t> anchor(layout.groups.size(), 0);
  for (std::size_t v = 0; v < layout.groups.size(); ++v) {
    const auto& copies = layout.groups[v];
    require(!copies.empty() && !copies[0].empty(),
            "shard plan: video has no stripe-group copy");
    anchor[v] = copies[0][0];
    // The per-video rotation couples every copy: union all members.
    for (const auto& group : copies) {
      for (const std::size_t member : group) {
        uf.merge(anchor[v], member);
      }
    }
  }
  return component_plan(uf, n, anchor, trace, num_shards);
}

ShardPlan make_prefix_cache_shard_plan(const Layout& layout,
                                       const SimConfig& config,
                                       bool cache_enabled,
                                       const RequestTrace& trace,
                                       std::size_t num_shards) {
  if (!cache_enabled) {
    return make_replicated_shard_plan(layout, config, trace, num_shards);
  }
  require_shardable_redirect(config, num_shards);
  // A live edge cache couples every video (capacity eviction) and its
  // residency depends on origin admissions: fuse the whole cluster into
  // one component.  The padding shards stay idle but the run still takes
  // the sharded merge path, so invariance holds by construction.
  const std::size_t n = config.num_servers;
  UnionFind uf(n);
  for (std::size_t s = 1; s < n; ++s) uf.merge(0, s);
  std::vector<std::size_t> anchor(layout.num_videos(), 0);
  return component_plan(uf, n, anchor, trace, num_shards);
}

}  // namespace vodrep
