// StoragePolicy for the striped organization: every stream of a video
// striped over k servers draws bitrate/k from each group member's outgoing
// link for the whole video duration.  Admission requires all k members to
// have the share available (and to be alive); a crash kills every active
// stream whose stripe group contains the failed server and makes all its
// videos unavailable for the rest of the peak — the coupling that limits
// striping's reliability.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/striping.h"
#include "src/sim/engine.h"

namespace vodrep {

class StripedPolicy final : public StoragePolicy {
 public:
  /// `layout` must outlive the policy; the config is copied, so a
  /// temporary is safe to pass.  Throws when `config`
  /// sets replication-only extensions (redirect / backbone / batching):
  /// striping has no replica choice to honor them with.
  StripedPolicy(const StripedLayout& layout, const SimConfig& config);

  void bind(SimEngine& engine) override;
  PolicyDecision dispatch(const Request& request) override;
  void on_departure(std::size_t stream) override;
  std::size_t on_crash(std::size_t server) override;

 private:
  /// One active striped stream and its cancellable departure.
  struct Stream {
    std::size_t video = 0;
    EventHeap::Id departure = 0;
    bool alive = false;
  };

  [[nodiscard]] double share_of(std::size_t video) const;

  const StripedLayout& layout_;
  const SimConfig config_;
  SimEngine* engine_ = nullptr;
  std::vector<Stream> streams_;
};

}  // namespace vodrep
