// Runtime state of one back-end streaming server.
//
// During simulation a server is a bandwidth reservoir: each admitted stream
// reserves its encoding bit rate on the outgoing link for the video duration
// (whole-video streaming, no VCR operations — the paper's model).  Storage
// is a provisioning-time constraint and is already fixed by the layout, so
// it does not appear here.
#pragma once

#include <cstddef>

namespace vodrep {

class StreamingServer {
 public:
  StreamingServer() = default;
  explicit StreamingServer(double bandwidth_capacity_bps);

  /// Outgoing link capacity in b/s.
  [[nodiscard]] double capacity_bps() const { return capacity_bps_; }
  /// Bandwidth currently reserved by active streams.
  [[nodiscard]] double busy_bps() const { return busy_bps_; }
  /// Capacity remaining for new streams.
  [[nodiscard]] double free_bps() const { return capacity_bps_ - busy_bps_; }
  [[nodiscard]] std::size_t active_streams() const { return active_streams_; }
  /// Total streams admitted over the server's lifetime.
  [[nodiscard]] std::size_t served_total() const { return served_total_; }

  /// True when a stream of `bitrate_bps` fits on the outgoing link.  The
  /// relative epsilon tolerates float residue from repeated admit/release.
  /// Always false on a failed server.
  [[nodiscard]] bool can_admit(double bitrate_bps) const;

  /// Reserves bandwidth for one stream.  Callers must check can_admit().
  void admit(double bitrate_bps);

  /// Releases the bandwidth of one finished stream.
  void release(double bitrate_bps);

  /// Crashes the server: every active stream is dropped (their count is
  /// returned so the simulator can account for the disrupted clients), the
  /// link empties, and all future can_admit() calls return false.
  std::size_t fail();

  /// True once fail() has been called.
  [[nodiscard]] bool failed() const { return failed_; }

 private:
  double capacity_bps_ = 0.0;
  double busy_bps_ = 0.0;
  std::size_t active_streams_ = 0;
  std::size_t served_total_ = 0;
  bool failed_ = false;
};

}  // namespace vodrep
