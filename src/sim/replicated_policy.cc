#include "src/sim/replicated_policy.h"

#include "src/util/error.h"

namespace vodrep {

ReplicatedPolicy::ReplicatedPolicy(const Layout& layout,
                                     const SimConfig& config)
    : config_(config),
      dispatcher_(layout, config.redirect, config.backbone_bps,
                  config.batching_window_sec, config.video_duration_sec,
                  config.batching_mode) {}

void ReplicatedPolicy::bind(SimEngine& engine) {
  require(engine.num_servers() == config_.num_servers,
          "ReplicatedPolicy: engine/config server count mismatch");
  engine_ = &engine;
}

PolicyDecision ReplicatedPolicy::dispatch(const Request& request) {
  const double bitrate = config_.stream_bitrate_bps;
  const auto decision = dispatcher_.dispatch(request.video, bitrate,
                                             engine_->servers(),
                                             request.arrival_time);
  if (!decision.has_value()) return PolicyDecision{};
  PolicyDecision outcome;
  outcome.admitted = true;
  outcome.redirected = decision->redirected;
  outcome.via_backbone = decision->via_backbone;
  outcome.batched = decision->batched;
  if (decision->reserves_bandwidth()) {
    engine_->admit(decision->server, bitrate);
    streams_.push_back(Stream{decision->server, decision->via_backbone});
    // A patching join holds its catch-up stream for the missed prefix only;
    // a full stream holds its bandwidth for the watched fraction.
    const double held_sec =
        decision->batched ? decision->patch_duration_sec
                          : request.watch_fraction * config_.video_duration_sec;
    engine_->schedule_departure(request.arrival_time + held_sec,
                                streams_.size() - 1);
  }
  return outcome;
}

void ReplicatedPolicy::on_departure(std::size_t stream) {
  const Stream& record = streams_[stream];
  // Streams on a crashed server were already dropped by the crash; their
  // departures still fire but release nothing.
  if (!engine_->server(record.server).failed()) {
    engine_->release(record.server, config_.stream_bitrate_bps);
  }
  if (record.via_backbone) {
    dispatcher_.release_backbone(config_.stream_bitrate_bps);
  }
}

std::size_t ReplicatedPolicy::on_crash(std::size_t server) {
  const std::size_t disrupted = engine_->fail(server);
  dispatcher_.on_server_failed(server);
  return disrupted;
}

}  // namespace vodrep
