// Discrete-event simulation of the hybrid storage organization: replicated
// stripe groups (r copies of k-wide groups per video).
//
// The event loop lives in SimEngine (src/sim/engine.h); the hybrid
// semantics live in HybridPolicy (src/sim/hybrid_policy.h).  This header
// keeps the original entry point.
#pragma once

#include "src/core/striping.h"
#include "src/sim/engine.h"
#include "src/sim/hybrid_policy.h"
#include "src/workload/trace.h"

namespace vodrep {

/// Replays `trace` against the hybrid layout under `config`.  Throws
/// InvalidArgumentError when `config` sets the replication-only extensions
/// (`redirect`, `backbone_bps`, `batching_window_sec`).  Metrics match the
/// other simulators so the three organizations compare head-to-head.
[[nodiscard]] SimResult simulate_hybrid(const HybridLayout& layout,
                                        const SimConfig& config,
                                        const RequestTrace& trace);

}  // namespace vodrep
