// Discrete-event simulation of the hybrid storage organization: replicated
// stripe groups (r copies of k-wide groups per video).
//
// Dispatch follows the paper's static round-robin at the group level: each
// request picks the video's next group in rotation and draws bitrate/k from
// every member of that group; the request is rejected when any member of
// the scheduled group lacks the share (no retry, mirroring the strict
// static policy of the replication simulator).  A server crash kills the
// streams of every group containing it, but the video stays available
// through its surviving groups.
#pragma once

#include "src/core/striping.h"
#include "src/sim/simulator.h"
#include "src/workload/trace.h"

namespace vodrep {

/// Replays `trace` against the hybrid layout under `config` (redirect /
/// backbone / batching fields are ignored).  Metrics match the other
/// simulators so the three organizations compare head-to-head.
[[nodiscard]] SimResult simulate_hybrid(const HybridLayout& layout,
                                        const SimConfig& config,
                                        const RequestTrace& trace);

}  // namespace vodrep
