#include "src/sim/server.h"

#include <algorithm>

#include "src/util/error.h"

namespace vodrep {

StreamingServer::StreamingServer(double bandwidth_capacity_bps)
    : capacity_bps_(bandwidth_capacity_bps) {
  require(bandwidth_capacity_bps >= 0.0,
          "StreamingServer: negative bandwidth capacity");
}

bool StreamingServer::can_admit(double bitrate_bps) const {
  // 1e-6 relative slack: with ~10^9-scale capacities this absorbs the
  // accumulation error of millions of admit/release round trips while being
  // far below one stream's bandwidth.
  return !failed_ && busy_bps_ + bitrate_bps <= capacity_bps_ * (1.0 + 1e-6);
}

void StreamingServer::admit(double bitrate_bps) {
  require(bitrate_bps > 0.0, "StreamingServer::admit: bad bit rate");
  busy_bps_ += bitrate_bps;
  ++active_streams_;
  ++served_total_;
}

void StreamingServer::release(double bitrate_bps) {
  require(bitrate_bps > 0.0, "StreamingServer::release: bad bit rate");
  require(active_streams_ > 0, "StreamingServer::release: no active stream");
  busy_bps_ = std::max(0.0, busy_bps_ - bitrate_bps);
  --active_streams_;
  // Snap to exactly zero when idle: float residue from millions of
  // admit/release round trips must not accumulate into the can_admit slack.
  if (active_streams_ == 0) busy_bps_ = 0.0;
}

std::size_t StreamingServer::fail() {
  const std::size_t dropped = active_streams_;
  active_streams_ = 0;
  busy_bps_ = 0.0;
  failed_ = true;
  return dropped;
}

}  // namespace vodrep
