#include "src/sim/hybrid_simulator.h"

#include <algorithm>
#include <queue>

#include "src/core/objective.h"
#include "src/util/error.h"
#include "src/util/stats.h"

namespace vodrep {
namespace {

struct HybridStream {
  std::size_t video = 0;
  std::size_t group = 0;
  bool alive = false;
};

struct HybridDeparture {
  double time;
  std::size_t stream_id;

  bool operator>(const HybridDeparture& other) const {
    return time > other.time;
  }
};

}  // namespace

SimResult simulate_hybrid(const HybridLayout& layout, const SimConfig& config,
                          const RequestTrace& trace) {
  config.validate();
  layout.validate(config.num_servers);
  require(trace.is_well_formed(), "simulate_hybrid: malformed trace");

  std::vector<StreamingServer> servers;
  servers.reserve(config.num_servers);
  for (std::size_t s = 0; s < config.num_servers; ++s) {
    servers.emplace_back(config.bandwidth_of(s));
  }
  std::priority_queue<HybridDeparture, std::vector<HybridDeparture>,
                      std::greater<>>
      departures;
  std::vector<HybridStream> streams;
  std::vector<std::size_t> rr_counter(layout.num_videos(), 0);

  SimResult result;
  result.total_requests = trace.size();

  std::vector<double> busy_integral(config.num_servers, 0.0);
  TimeWeightedMean imbalance_eq2;
  TimeWeightedMean imbalance_cv_mean;
  TimeWeightedMean imbalance_capacity;
  double peak_eq2 = 0.0;
  double last_time = 0.0;
  auto integrate_to = [&](double now) {
    const double dt = now - last_time;
    if (dt <= 0.0) return;
    std::vector<double> utilization(config.num_servers);
    double sum = 0.0;
    double max = 0.0;
    for (std::size_t s = 0; s < config.num_servers; ++s) {
      const double busy = servers[s].busy_bps();
      busy_integral[s] += busy * dt;
      utilization[s] = busy / config.bandwidth_of(s);
      sum += utilization[s];
      max = std::max(max, utilization[s]);
    }
    const double mean = sum / static_cast<double>(config.num_servers);
    const double eq2 = imbalance_max_relative(utilization);
    imbalance_eq2.add(eq2, dt);
    imbalance_cv_mean.add(imbalance_cv(utilization), dt);
    imbalance_capacity.add(std::max(0.0, max - mean), dt);
    peak_eq2 = std::max(peak_eq2, eq2);
    last_time = now;
  };

  auto group_of = [&](const HybridStream& stream)
      -> const std::vector<std::size_t>& {
    return layout.groups[stream.video][stream.group];
  };
  auto share_of = [&](const HybridStream& stream) {
    return config.stream_bitrate_bps /
           static_cast<double>(group_of(stream).size());
  };

  auto fail_server = [&](std::size_t failed) {
    (void)servers[failed].fail();
    for (HybridStream& stream : streams) {
      if (!stream.alive) continue;
      const auto& group = group_of(stream);
      if (std::find(group.begin(), group.end(), failed) == group.end()) {
        continue;
      }
      stream.alive = false;
      ++result.disrupted;
      const double share = share_of(stream);
      for (std::size_t s : group) {
        if (s != failed && !servers[s].failed()) servers[s].release(share);
      }
    }
  };

  std::size_t next_failure = 0;
  auto drain_until = [&](double now) {
    for (;;) {
      const bool have_departure =
          !departures.empty() && departures.top().time <= now;
      const bool have_failure =
          next_failure < config.failures.size() &&
          config.failures[next_failure].time <= now;
      if (have_failure &&
          (!have_departure ||
           config.failures[next_failure].time <= departures.top().time)) {
        const ServerFailure& failure = config.failures[next_failure++];
        integrate_to(failure.time);
        fail_server(failure.server);
        continue;
      }
      if (!have_departure) break;
      const HybridDeparture d = departures.top();
      departures.pop();
      integrate_to(d.time);
      HybridStream& stream = streams[d.stream_id];
      if (stream.alive) {
        stream.alive = false;
        const double share = share_of(stream);
        for (std::size_t s : group_of(stream)) servers[s].release(share);
      }
    }
    integrate_to(now);
  };

  for (const Request& request : trace.requests) {
    drain_until(request.arrival_time);
    require(request.video < layout.num_videos(),
            "simulate_hybrid: video out of range");
    const auto& copies = layout.groups[request.video];
    const std::size_t pick = rr_counter[request.video] % copies.size();
    ++rr_counter[request.video];
    const auto& group = copies[pick];
    const double share =
        config.stream_bitrate_bps / static_cast<double>(group.size());
    const bool admissible = std::all_of(
        group.begin(), group.end(),
        [&](std::size_t s) { return servers[s].can_admit(share); });
    if (!admissible) {
      ++result.rejected;
      continue;
    }
    for (std::size_t s : group) servers[s].admit(share);
    streams.push_back(HybridStream{request.video, pick, true});
    departures.push(HybridDeparture{
        request.arrival_time +
            request.watch_fraction * config.video_duration_sec,
        streams.size() - 1});
  }
  drain_until(trace.horizon);

  result.mean_imbalance_eq2 = imbalance_eq2.mean();
  result.mean_imbalance_cv = imbalance_cv_mean.mean();
  result.mean_imbalance_capacity = imbalance_capacity.mean();
  result.peak_imbalance_eq2 = peak_eq2;
  result.served_per_server.assign(config.num_servers, 0);
  result.utilization_per_server.resize(config.num_servers);
  for (std::size_t s = 0; s < config.num_servers; ++s) {
    result.served_per_server[s] = servers[s].served_total();
    result.utilization_per_server[s] =
        trace.horizon > 0.0
            ? busy_integral[s] / (trace.horizon * config.bandwidth_of(s))
            : 0.0;
  }
  return result;
}

}  // namespace vodrep
