#include "src/sim/hybrid_simulator.h"

namespace vodrep {

SimResult simulate_hybrid(const HybridLayout& layout, const SimConfig& config,
                          const RequestTrace& trace) {
  SimEngine engine(config);
  HybridPolicy policy(layout, config);
  return engine.run(policy, trace);
}

}  // namespace vodrep
