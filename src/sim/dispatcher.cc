#include "src/sim/dispatcher.h"

#include <algorithm>
#include <limits>

#include "src/util/error.h"

namespace vodrep {
namespace {

constexpr double kNever = -std::numeric_limits<double>::infinity();

/// Least-loaded server among `servers` that can admit the stream and passes
/// `eligible`; servers.size() when none qualifies.
template <typename Pred>
std::size_t least_loaded_admitting(const std::vector<StreamingServer>& servers,
                                   double bitrate_bps, Pred eligible) {
  std::size_t best = servers.size();
  double best_busy = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < servers.size(); ++s) {
    if (!eligible(s) || !servers[s].can_admit(bitrate_bps)) continue;
    if (servers[s].busy_bps() < best_busy) {
      best_busy = servers[s].busy_bps();
      best = s;
    }
  }
  return best;
}

}  // namespace

Dispatcher::Dispatcher(const Layout& layout, RedirectMode mode,
                       double backbone_bps, double batching_window_sec,
                       double stream_duration_sec, BatchingMode batching_mode)
    : layout_(layout),
      mode_(mode),
      backbone_bps_(backbone_bps),
      batching_window_sec_(batching_window_sec),
      stream_duration_sec_(stream_duration_sec),
      batching_mode_(batching_mode),
      rr_counter_(layout.num_videos(), 0) {
  require(backbone_bps >= 0.0, "Dispatcher: negative backbone bandwidth");
  require(batching_window_sec >= 0.0, "Dispatcher: negative batching window");
  if (batching_window_sec > 0.0) {
    require(stream_duration_sec > 0.0,
            "Dispatcher: batching needs the stream duration");
    last_stream_start_.resize(layout.num_videos());
    for (std::size_t video = 0; video < layout.num_videos(); ++video) {
      last_stream_start_[video].assign(layout.assignment[video].size(),
                                       kNever);
    }
  }
}

double Dispatcher::joinable_offset(std::size_t server, std::size_t video,
                                   double now) const {
  if (batching_window_sec_ <= 0.0) return -1.0;
  const auto& holders = layout_.assignment[video];
  for (std::size_t k = 0; k < holders.size(); ++k) {
    if (holders[k] != server) continue;
    const double start = last_stream_start_[video][k];
    const bool ok = now - start <= batching_window_sec_ &&
                    start + stream_duration_sec_ > now;
    return ok ? now - start : -1.0;
  }
  return -1.0;
}

std::optional<DispatchDecision> Dispatcher::dispatch(
    std::size_t video, double bitrate_bps,
    const std::vector<StreamingServer>& servers, double now) {
  require(video < layout_.num_videos(), "Dispatcher: video out of range");
  const auto& holders = layout_.assignment[video];
  require(!holders.empty(), "Dispatcher: video has no replica");

  // Static round-robin pick (the per-replica communication weight model of
  // Eq. 5: each replica serves a 1/r_i share of the video's requests), or
  // the precomputed pick when a routed sub-trace replay is installed.
  std::size_t pick_index;
  if (routed_) {
    require(routed_cursor_ < routed_picks_.size(),
            "Dispatcher: routed pick sequence exhausted");
    pick_index = routed_picks_[routed_cursor_++];
    require(pick_index < holders.size(),
            "Dispatcher: routed pick index out of range");
  } else {
    pick_index = rr_counter_[video] % holders.size();
    ++rr_counter_[video];
  }
  const std::size_t pick = holders[pick_index];

  // Batching: join a fresh-enough stream of the same video on the scheduled
  // replica instead of opening a full new one.  Piggyback joins are free;
  // patching joins reserve a catch-up stream for the missed prefix (and
  // fall through to a normal admission when even that does not fit).
  const double offset = joinable_offset(pick, video, now);
  if (offset >= 0.0 && !servers[pick].failed()) {
    if (batching_mode_ == BatchingMode::kPiggyback) {
      DispatchDecision decision;
      decision.server = pick;
      decision.batched = true;
      return decision;
    }
    if (offset == 0.0 || servers[pick].can_admit(bitrate_bps)) {
      DispatchDecision decision;
      decision.server = pick;
      decision.batched = true;
      decision.patch_duration_sec = offset;
      return decision;
    }
    // No room even for the patch: fall through to the normal path (which
    // will reject or redirect).
  }

  if (servers[pick].can_admit(bitrate_bps)) {
    if (!last_stream_start_.empty()) {
      last_stream_start_[video][pick_index] = now;
    }
    return DispatchDecision{pick, false, false, false};
  }
  if (mode_ == RedirectMode::kNone) return std::nullopt;

  // Level 1: another holder serves from its own disk — free detour.
  const auto is_other_holder = [&](std::size_t s) {
    return s != pick &&
           std::find(holders.begin(), holders.end(), s) != holders.end();
  };
  const std::size_t holder =
      least_loaded_admitting(servers, bitrate_bps, is_other_holder);
  if (holder != servers.size()) {
    if (!last_stream_start_.empty()) {
      const auto k = static_cast<std::size_t>(
          std::find(holders.begin(), holders.end(), holder) - holders.begin());
      last_stream_start_[video][k] = now;
    }
    return DispatchDecision{holder, true, false, false};
  }
  if (mode_ != RedirectMode::kBackboneProxy) return std::nullopt;

  // Level 2: proxy through an idle non-holder; the stream crosses the
  // internal backbone from a holder's disk to the proxy's outgoing link.
  // A living holder must exist to source the data (its outgoing link being
  // full is fine — the backbone is a separate network — but a crashed
  // holder has no disk to read from).
  const bool any_live_holder =
      std::any_of(holders.begin(), holders.end(),
                  [&](std::size_t s) { return !servers[s].failed(); });
  if (!any_live_holder) return std::nullopt;
  if (backbone_busy_bps_ + bitrate_bps > backbone_bps_) return std::nullopt;
  const auto is_non_holder = [&](std::size_t s) {
    return std::find(holders.begin(), holders.end(), s) == holders.end();
  };
  const std::size_t proxy =
      least_loaded_admitting(servers, bitrate_bps, is_non_holder);
  if (proxy == servers.size()) return std::nullopt;
  backbone_busy_bps_ += bitrate_bps;
  return DispatchDecision{proxy, true, true, false};
}

void Dispatcher::set_routed_picks(std::vector<std::uint32_t> picks) {
  require(mode_ == RedirectMode::kNone,
          "Dispatcher: routed pick replay requires RedirectMode::kNone — "
          "redirect retries read every holder's load");
  routed_ = true;
  routed_picks_ = std::move(picks);
  routed_cursor_ = 0;
}

void Dispatcher::release_backbone(double bitrate_bps) {
  backbone_busy_bps_ = std::max(0.0, backbone_busy_bps_ - bitrate_bps);
}

void Dispatcher::on_server_failed(std::size_t server) {
  if (last_stream_start_.empty()) return;
  for (std::size_t video = 0; video < layout_.num_videos(); ++video) {
    const auto& holders = layout_.assignment[video];
    for (std::size_t k = 0; k < holders.size(); ++k) {
      if (holders[k] == server) last_stream_start_[video][k] = kNever;
    }
  }
}

}  // namespace vodrep
