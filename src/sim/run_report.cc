#include "src/sim/run_report.h"

#include <algorithm>
#include <cstdint>
#include <string>

#include "src/obs/report.h"
#include "src/util/error.h"

namespace vodrep {

namespace {

const char* redirect_mode_name(RedirectMode mode) {
  switch (mode) {
    case RedirectMode::kNone: return "none";
    case RedirectMode::kOtherHolders: return "other_holders";
    case RedirectMode::kBackboneProxy: return "backbone_proxy";
  }
  return "unknown";
}

const char* batching_mode_name(BatchingMode mode) {
  switch (mode) {
    case BatchingMode::kPiggyback: return "piggyback";
    case BatchingMode::kPatching: return "patching";
  }
  return "unknown";
}

obs::JsonValue config_json(const SimConfig& config,
                           const obs::JsonValue& extra) {
  using obs::JsonValue;
  JsonValue out = JsonValue::object();
  out.set("num_servers", JsonValue::integer_u64(config.num_servers));
  out.set("bandwidth_bps_per_server",
          JsonValue::number(config.bandwidth_bps_per_server));
  out.set("stream_bitrate_bps", JsonValue::number(config.stream_bitrate_bps));
  out.set("video_duration_sec", JsonValue::number(config.video_duration_sec));
  out.set("redirect", JsonValue::string(redirect_mode_name(config.redirect)));
  out.set("backbone_bps", JsonValue::number(config.backbone_bps));
  out.set("batching_window_sec",
          JsonValue::number(config.batching_window_sec));
  out.set("batching_mode",
          JsonValue::string(batching_mode_name(config.batching_mode)));
  out.set("num_failures", JsonValue::integer_u64(config.failures.size()));
  require(extra.is_object(), "build_run_report: config_extra must be an object");
  for (const auto& [key, value] : extra.members()) out.set(key, value);
  return out;
}

obs::JsonValue final_json(const SimResult& result) {
  using obs::JsonValue;
  JsonValue out = JsonValue::object();
  out.set("total_requests", JsonValue::integer_u64(result.total_requests));
  out.set("rejected", JsonValue::integer_u64(result.rejected));
  out.set("rejection_rate", JsonValue::number(result.rejection_rate()));
  out.set("redirected", JsonValue::integer_u64(result.redirected));
  out.set("proxied", JsonValue::integer_u64(result.proxied));
  out.set("batched", JsonValue::integer_u64(result.batched));
  out.set("disrupted", JsonValue::integer_u64(result.disrupted));
  out.set("mean_imbalance_eq2", JsonValue::number(result.mean_imbalance_eq2));
  out.set("mean_imbalance_cv", JsonValue::number(result.mean_imbalance_cv));
  out.set("mean_imbalance_capacity",
          JsonValue::number(result.mean_imbalance_capacity));
  out.set("peak_imbalance_eq2", JsonValue::number(result.peak_imbalance_eq2));
  out.set("mean_utilization", JsonValue::number(result.mean_utilization()));
  // Cache-tier counters are always present (all zero for cache-less
  // policies) so required-key consumers need no conditional schema.
  out.set("cache_hits", JsonValue::integer_u64(result.cache_hits));
  out.set("cache_misses", JsonValue::integer_u64(result.cache_misses));
  out.set("cache_evictions", JsonValue::integer_u64(result.cache_evictions));
  out.set("cache_hit_ratio", JsonValue::number(result.cache_hit_ratio()));
  JsonValue util = JsonValue::array();
  for (double u : result.utilization_per_server) {
    util.push_back(JsonValue::number(u));
  }
  out.set("utilization_per_server", std::move(util));
  JsonValue served = JsonValue::array();
  for (std::size_t count : result.served_per_server) {
    served.push_back(JsonValue::integer_u64(count));
  }
  out.set("served_per_server", std::move(served));
  return out;
}

obs::JsonValue rejections_json(const SimResult& result) {
  using obs::JsonValue;
  JsonValue by_reason = JsonValue::object();
  for (std::size_t r = 0; r < obs::kNumRejectReasons; ++r) {
    by_reason.set(
        std::string(obs::reject_reason_name(static_cast<obs::RejectReason>(r))),
        JsonValue::integer_u64(result.rejected_by_reason[r]));
  }
  JsonValue out = JsonValue::object();
  out.set("total", JsonValue::integer_u64(result.rejected));
  out.set("by_reason", std::move(by_reason));
  return out;
}

/// Empty columnar timeline with the right shape for a report without a
/// collector (every array present, zero samples).
obs::JsonValue empty_timeline_json() {
  using obs::JsonValue;
  JsonValue out = JsonValue::object();
  out.set("interval_sec", JsonValue::number(0.0));
  out.set("downsample_factor", JsonValue::integer_u64(1));
  out.set("num_samples", JsonValue::integer_u64(0));
  for (const char* key : {"time", "imbalance_eq2", "mean_utilization",
                          "max_utilization", "requests", "rejected",
                          "cache_hits", "cache_misses",
                          "utilization_per_server"}) {
    out.set(key, JsonValue::array());
  }
  return out;
}

obs::JsonValue empty_events_json() {
  using obs::JsonValue;
  JsonValue out = JsonValue::object();
  out.set("capacity", JsonValue::integer_u64(0));
  out.set("seen", JsonValue::integer_u64(0));
  out.set("dropped", JsonValue::integer_u64(0));
  out.set("records", JsonValue::array());
  return out;
}

}  // namespace

SimResult aggregate_results(const std::vector<SimResult>& results) {
  require(!results.empty(), "aggregate_results: no results");
  SimResult total = results.front();
  for (std::size_t i = 1; i < results.size(); ++i) {
    const SimResult& r = results[i];
    require(r.utilization_per_server.size() ==
                total.utilization_per_server.size(),
            "aggregate_results: server count mismatch");
    total.total_requests += r.total_requests;
    total.rejected += r.rejected;
    for (std::size_t reason = 0; reason < obs::kNumRejectReasons; ++reason) {
      total.rejected_by_reason[reason] += r.rejected_by_reason[reason];
    }
    total.redirected += r.redirected;
    total.proxied += r.proxied;
    total.batched += r.batched;
    total.disrupted += r.disrupted;
    total.cache_hits += r.cache_hits;
    total.cache_misses += r.cache_misses;
    total.cache_evictions += r.cache_evictions;
    total.mean_imbalance_eq2 += r.mean_imbalance_eq2;
    total.mean_imbalance_cv += r.mean_imbalance_cv;
    total.mean_imbalance_capacity += r.mean_imbalance_capacity;
    total.peak_imbalance_eq2 =
        std::max(total.peak_imbalance_eq2, r.peak_imbalance_eq2);
    for (std::size_t s = 0; s < total.served_per_server.size(); ++s) {
      total.served_per_server[s] += r.served_per_server[s];
    }
    for (std::size_t s = 0; s < total.utilization_per_server.size(); ++s) {
      total.utilization_per_server[s] += r.utilization_per_server[s];
    }
  }
  // Equal-duration epochs: time-weighted means average with equal weight.
  const auto n = static_cast<double>(results.size());
  total.mean_imbalance_eq2 /= n;
  total.mean_imbalance_cv /= n;
  total.mean_imbalance_capacity /= n;
  for (double& u : total.utilization_per_server) u /= n;
  return total;
}

obs::JsonValue build_run_report(const SimConfig& config,
                                const SimResult& result,
                                const obs::TimeseriesCollector* timeline,
                                const obs::EventLog* events,
                                obs::JsonValue config_extra,
                                obs::JsonValue profile) {
  using obs::JsonValue;
  JsonValue report = JsonValue::object();
  report.set("schema_version",
             JsonValue::integer(obs::kRunReportSchemaVersion));
  report.set("kind", JsonValue::string(obs::kRunReportKind));
  report.set("generated_by", JsonValue::string("vodrep"));
  report.set("config", config_json(config, config_extra));
  report.set("final", final_json(result));
  report.set("rejections", rejections_json(result));
  report.set("timeline",
             timeline != nullptr ? timeline->to_json() : empty_timeline_json());
  report.set("annotations", timeline != nullptr ? timeline->annotations_json()
                                                : JsonValue::array());
  report.set("events",
             events != nullptr ? events->to_json() : empty_events_json());
  require(profile.is_null() || profile.is_object(),
          "build_run_report: profile must be null or an object");
  if (profile.is_object()) report.set("profile", std::move(profile));
  return report;
}

}  // namespace vodrep
