#include "src/sim/simulator.h"

namespace vodrep {

SimResult simulate(const Layout& layout, const SimConfig& config,
                   const RequestTrace& trace) {
  SimEngine engine(config);
  ReplicatedPolicy policy(layout, config);
  return engine.run(policy, trace);
}

}  // namespace vodrep
