#include "src/sim/simulator.h"

#include <algorithm>
#include <queue>

#include "src/core/objective.h"
#include "src/util/error.h"
#include "src/util/stats.h"

namespace vodrep {
namespace {

/// A scheduled stream completion.
struct Departure {
  double time;
  std::size_t server;
  bool via_backbone;

  bool operator>(const Departure& other) const { return time > other.time; }
};

/// Integrates the piecewise-constant imbalance and utilization signals.
/// All imbalance metrics are computed on link utilizations u_j = l_j / B_j,
/// which equals the load-based definitions on a homogeneous fleet (Eq. 2/3
/// are scale-invariant) and is the meaningful notion on a mixed fleet.
class LoadIntegrator {
 public:
  explicit LoadIntegrator(std::vector<double> capacities_bps)
      : capacities_bps_(std::move(capacities_bps)),
        busy_integral_(capacities_bps_.size(), 0.0) {}

  /// Accounts for the current server state holding over [last_time_, now).
  void advance(const std::vector<StreamingServer>& servers, double now) {
    const double dt = now - last_time_;
    if (dt > 0.0) {
      std::vector<double> utilization(servers.size());
      double sum = 0.0;
      double max = 0.0;
      for (std::size_t s = 0; s < servers.size(); ++s) {
        const double busy = servers[s].busy_bps();
        busy_integral_[s] += busy * dt;
        utilization[s] = busy / capacities_bps_[s];
        sum += utilization[s];
        max = std::max(max, utilization[s]);
      }
      const double mean = sum / static_cast<double>(servers.size());
      const double eq2 = imbalance_max_relative(utilization);
      imbalance_eq2_.add(eq2, dt);
      imbalance_cv_.add(imbalance_cv(utilization), dt);
      imbalance_capacity_.add(std::max(0.0, max - mean), dt);
      peak_eq2_ = std::max(peak_eq2_, eq2);
      last_time_ = now;
    }
  }

  [[nodiscard]] double mean_eq2() const { return imbalance_eq2_.mean(); }
  [[nodiscard]] double mean_cv() const { return imbalance_cv_.mean(); }
  [[nodiscard]] double mean_capacity() const {
    return imbalance_capacity_.mean();
  }
  [[nodiscard]] double peak_eq2() const { return peak_eq2_; }
  [[nodiscard]] std::vector<double> mean_utilization(double horizon) const {
    std::vector<double> util(busy_integral_.size(), 0.0);
    if (horizon > 0.0) {
      for (std::size_t s = 0; s < util.size(); ++s) {
        util[s] = busy_integral_[s] / (horizon * capacities_bps_[s]);
      }
    }
    return util;
  }

 private:
  std::vector<double> capacities_bps_;
  double last_time_ = 0.0;
  TimeWeightedMean imbalance_eq2_;
  TimeWeightedMean imbalance_cv_;
  TimeWeightedMean imbalance_capacity_;
  double peak_eq2_ = 0.0;
  std::vector<double> busy_integral_;
};

}  // namespace

void SimConfig::validate() const {
  require(num_servers >= 1, "SimConfig: need at least one server");
  require(bandwidth_bps_per_server > 0.0, "SimConfig: bad server bandwidth");
  if (!per_server_bandwidth_bps.empty()) {
    require(per_server_bandwidth_bps.size() == num_servers,
            "SimConfig: per-server bandwidth size mismatch");
    for (double b : per_server_bandwidth_bps) {
      require(b > 0.0, "SimConfig: bad per-server bandwidth");
    }
  }
  require(stream_bitrate_bps > 0.0, "SimConfig: bad stream bit rate");
  require(video_duration_sec > 0.0, "SimConfig: bad video duration");
  if (redirect != RedirectMode::kNone) {
    require(backbone_bps >= 0.0, "SimConfig: negative backbone bandwidth");
  }
  require(batching_window_sec >= 0.0, "SimConfig: negative batching window");
  double prev_time = 0.0;
  for (const ServerFailure& failure : failures) {
    require(failure.server < num_servers,
            "SimConfig: failure server out of range");
    require(failure.time >= prev_time,
            "SimConfig: failures must be sorted by time");
    prev_time = failure.time;
  }
}

double SimResult::rejection_rate() const {
  return total_requests == 0
             ? 0.0
             : static_cast<double>(rejected) / static_cast<double>(total_requests);
}

double SimResult::mean_utilization() const {
  if (utilization_per_server.empty()) return 0.0;
  double sum = 0.0;
  for (double u : utilization_per_server) sum += u;
  return sum / static_cast<double>(utilization_per_server.size());
}

SimResult simulate(const Layout& layout, const SimConfig& config,
                   const RequestTrace& trace) {
  config.validate();
  require(trace.is_well_formed(), "simulate: malformed trace");

  std::vector<StreamingServer> servers;
  std::vector<double> capacities(config.num_servers);
  servers.reserve(config.num_servers);
  for (std::size_t s = 0; s < config.num_servers; ++s) {
    capacities[s] = config.bandwidth_of(s);
    servers.emplace_back(capacities[s]);
  }
  Dispatcher dispatcher(layout, config.redirect, config.backbone_bps,
                        config.batching_window_sec, config.video_duration_sec,
                        config.batching_mode);
  std::priority_queue<Departure, std::vector<Departure>, std::greater<>>
      departures;
  LoadIntegrator integrator(capacities);

  SimResult result;
  result.total_requests = trace.size();

  std::size_t next_failure = 0;
  // Advances simulated time to `now`, applying departures and scheduled
  // server crashes in time order and integrating the load signals.
  auto drain_until = [&](double now) {
    for (;;) {
      const bool have_departure =
          !departures.empty() && departures.top().time <= now;
      const bool have_failure =
          next_failure < config.failures.size() &&
          config.failures[next_failure].time <= now;
      if (have_failure &&
          (!have_departure ||
           config.failures[next_failure].time <= departures.top().time)) {
        const ServerFailure& failure = config.failures[next_failure++];
        integrator.advance(servers, failure.time);
        result.disrupted += servers[failure.server].fail();
        dispatcher.on_server_failed(failure.server);
        continue;
      }
      if (!have_departure) break;
      const Departure d = departures.top();
      departures.pop();
      integrator.advance(servers, d.time);
      if (!servers[d.server].failed()) {
        servers[d.server].release(config.stream_bitrate_bps);
      }
      if (d.via_backbone) {
        dispatcher.release_backbone(config.stream_bitrate_bps);
      }
    }
    integrator.advance(servers, now);
  };

  for (const Request& request : trace.requests) {
    drain_until(request.arrival_time);
    const auto decision =
        dispatcher.dispatch(request.video, config.stream_bitrate_bps, servers,
                            request.arrival_time);
    if (!decision.has_value()) {
      ++result.rejected;
      continue;
    }
    if (decision->batched) {
      ++result.batched;
      // A patching join reserved a catch-up stream for the missed prefix;
      // schedule its release.  Piggyback joins hold nothing.
      if (decision->patch_duration_sec > 0.0) {
        departures.push(
            Departure{request.arrival_time + decision->patch_duration_sec,
                      decision->server, false});
      }
      continue;
    }
    if (decision->redirected) ++result.redirected;
    if (decision->via_backbone) ++result.proxied;
    // Early abandoners release their bandwidth after the watched fraction.
    departures.push(Departure{
        request.arrival_time +
            request.watch_fraction * config.video_duration_sec,
        decision->server, decision->via_backbone});
  }
  // Close the books at the end of the peak period; streams outliving it keep
  // their bandwidth (they are not torn down) but the metrics window ends.
  drain_until(trace.horizon);

  result.mean_imbalance_eq2 = integrator.mean_eq2();
  result.mean_imbalance_cv = integrator.mean_cv();
  result.mean_imbalance_capacity = integrator.mean_capacity();
  result.peak_imbalance_eq2 = integrator.peak_eq2();
  result.served_per_server.resize(config.num_servers);
  for (std::size_t s = 0; s < config.num_servers; ++s) {
    result.served_per_server[s] = servers[s].served_total();
  }
  result.utilization_per_server = integrator.mean_utilization(trace.horizon);
  return result;
}

}  // namespace vodrep
