// Discrete-event simulation of one peak period on the VoD cluster
// (the paper's Section 5 evaluation substrate).
//
// The event loop, metrics accumulator, and failure injection live in
// SimEngine (src/sim/engine.h); this header keeps the original entry point
// for the replication organization.  `ServerFailure`, `SimConfig`, and
// `SimResult` now live in engine.h and are re-exported here for source
// compatibility.
#pragma once

#include "src/core/layout.h"
#include "src/sim/engine.h"
#include "src/sim/replicated_policy.h"
#include "src/workload/trace.h"

namespace vodrep {

/// Replays `trace` against `layout` under `config` and returns the metrics.
/// Deterministic (the trace already fixes all randomness).  Equivalent to
/// running a SimEngine with a ReplicatedPolicy.
[[nodiscard]] SimResult simulate(const Layout& layout, const SimConfig& config,
                                 const RequestTrace& trace);

}  // namespace vodrep
