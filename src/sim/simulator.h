// Discrete-event simulation of one peak period on the VoD cluster
// (the paper's Section 5 evaluation substrate).
//
// Events are request arrivals (from a RequestTrace) and stream departures.
// Each admitted request reserves its encoding bit rate on the serving
// server's outgoing link for the video duration; admission control rejects a
// request when the dispatched server has no bandwidth left (and, with
// redirection disabled, no alternative is tried).  Between events the
// per-server busy bandwidths are piecewise constant, so the load-imbalance
// degree L (Eqs. 2/3) is integrated exactly as a time-weighted mean.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/layout.h"
#include "src/sim/dispatcher.h"
#include "src/workload/trace.h"

namespace vodrep {

/// A scheduled server crash: at `time` the server drops every active stream
/// and admits nothing afterward (fail-stop, no recovery within the peak).
struct ServerFailure {
  double time = 0.0;
  std::size_t server = 0;
};

struct SimConfig {
  std::size_t num_servers = 0;
  double bandwidth_bps_per_server = 0.0;
  /// Optional heterogeneous fleet: when non-empty (size == num_servers),
  /// overrides bandwidth_bps_per_server per server.  The imbalance metrics
  /// are computed on link *utilizations* l_j / B_j, which coincides with the
  /// load-based definitions when the fleet is homogeneous (Eq. 2 is
  /// scale-invariant) and is the meaningful notion when it is not.
  std::vector<double> per_server_bandwidth_bps;
  double stream_bitrate_bps = 0.0;   ///< fixed encoding bit rate
  double video_duration_sec = 0.0;   ///< streams hold bandwidth this long
  RedirectMode redirect = RedirectMode::kNone;
  double backbone_bps = 0.0;         ///< proxy budget (kBackboneProxy only)
  /// Stream-sharing window in seconds (0 disables batching): a request
  /// whose scheduled replica started a stream of the same video within this
  /// window joins it instead of consuming a full new stream.
  double batching_window_sec = 0.0;
  /// Piggyback (free joins, the optimistic bound) or patching (joins pay a
  /// catch-up stream for the missed prefix).
  BatchingMode batching_mode = BatchingMode::kPiggyback;
  /// Fail-stop crashes to inject, sorted by time.  Used by the
  /// striping-vs-replication availability experiments.
  std::vector<ServerFailure> failures;

  /// Effective outgoing bandwidth of server `s`.
  [[nodiscard]] double bandwidth_of(std::size_t s) const {
    return per_server_bandwidth_bps.empty() ? bandwidth_bps_per_server
                                            : per_server_bandwidth_bps[s];
  }

  void validate() const;
};

struct SimResult {
  std::size_t total_requests = 0;
  std::size_t rejected = 0;
  std::size_t redirected = 0;  ///< served by a server other than the RR pick
  std::size_t proxied = 0;     ///< subset of redirected that crossed the backbone
  std::size_t batched = 0;     ///< requests served by joining an existing stream
  std::size_t disrupted = 0;   ///< admitted streams dropped by a server crash

  /// Fraction of requests rejected, in [0, 1]; 0 when there were none.
  [[nodiscard]] double rejection_rate() const;

  /// Time-weighted mean of the Eq. 2 imbalance over the peak period.
  double mean_imbalance_eq2 = 0.0;
  /// Time-weighted mean of the Eq. 3 (coefficient-of-variation) imbalance.
  double mean_imbalance_cv = 0.0;
  /// Largest instantaneous Eq. 2 imbalance observed.
  double peak_imbalance_eq2 = 0.0;
  /// Time-weighted mean of the capacity-normalized excess
  /// (max_j l_j - l_bar) / B.  Mean-normalized Eq. 2 is monotone decreasing
  /// in the arrival rate (the denominator grows with load); normalizing by
  /// the fixed link capacity instead reproduces the rise-peak-fall shape of
  /// the paper's Figure 6 (peak just below saturation, collapse once every
  /// server clips at capacity).
  double mean_imbalance_capacity = 0.0;

  /// Streams admitted per server (served counts).
  std::vector<std::size_t> served_per_server;
  /// Mean outgoing-bandwidth utilization per server, in [0, 1].
  std::vector<double> utilization_per_server;
  /// Mean utilization across servers.
  [[nodiscard]] double mean_utilization() const;
};

/// Replays `trace` against `layout` under `config` and returns the metrics.
/// Deterministic (the trace already fixes all randomness).
[[nodiscard]] SimResult simulate(const Layout& layout, const SimConfig& config,
                                 const RequestTrace& trace);

}  // namespace vodrep
