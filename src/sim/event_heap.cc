#include "src/sim/event_heap.h"

#include "src/util/error.h"

namespace vodrep {

double EventHeap::min_time() const {
  require(!heap_.empty(), "EventHeap::min_time: empty heap");
  return nodes_[heap_.front()].time;
}

EventHeap::Id EventHeap::push(double time, std::size_t payload) {
  Id id;
  if (free_ids_.empty()) {
    id = nodes_.size();
    nodes_.emplace_back();
  } else {
    id = free_ids_.back();
    free_ids_.pop_back();
  }
  Node& node = nodes_[id];
  node.time = time;
  node.seq = next_seq_++;
  node.payload = payload;
  heap_.push_back(id);
  node.pos = heap_.size() - 1;
  sift_up(node.pos);
  return id;
}

EventHeap::Event EventHeap::pop_min() {
  require(!heap_.empty(), "EventHeap::pop_min: empty heap");
  const std::size_t top = heap_.front();
  const Event event{nodes_[top].time, nodes_[top].payload};
  nodes_[top].pos = kUnplaced;
  free_ids_.push_back(top);
  const std::size_t last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    place(0, last);
    sift_down(0);
  }
  return event;
}

void EventHeap::cancel(Id id) {
  require(active(id), "EventHeap::cancel: event is not scheduled");
  const std::size_t pos = nodes_[id].pos;
  nodes_[id].pos = kUnplaced;
  free_ids_.push_back(id);
  const std::size_t last = heap_.back();
  heap_.pop_back();
  if (pos < heap_.size()) {
    place(pos, last);
    // The replacement may violate the heap property in either direction.
    sift_up(pos);
    sift_down(pos);
  }
}

bool EventHeap::active(Id id) const {
  return id < nodes_.size() && nodes_[id].pos != kUnplaced;
}

bool EventHeap::before(std::size_t node_a, std::size_t node_b) const {
  const Node& a = nodes_[node_a];
  const Node& b = nodes_[node_b];
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

void EventHeap::place(std::size_t pos, std::size_t node) {
  heap_[pos] = node;
  nodes_[node].pos = pos;
}

void EventHeap::sift_up(std::size_t pos) {
  const std::size_t node = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    if (!before(node, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, node);
}

void EventHeap::sift_down(std::size_t pos) {
  const std::size_t node = heap_[pos];
  for (;;) {
    std::size_t child = 2 * pos + 1;
    if (child >= heap_.size()) break;
    if (child + 1 < heap_.size() && before(heap_[child + 1], heap_[child])) {
      ++child;
    }
    if (!before(heap_[child], node)) break;
    place(pos, heap_[child]);
    pos = child;
  }
  place(pos, node);
}

}  // namespace vodrep
