// Parallel tempering (replica exchange) on top of the AnnealChain engine.
//
// K Metropolis chains run the same problem at staggered initial temperatures
// (chain k starts at T0 * temperature_spread^k).  Every `swap_period`
// temperature steps the chains synchronize and adjacent pairs attempt a
// replica exchange under the standard Metropolis rule for minimization:
//
//   A = min(1, exp((1/T_i - 1/T_j) * (C_i - C_j)))
//
// so a hotter chain that stumbled onto a better configuration hands it down
// the ladder with probability 1, while the reverse hand-up is throttled by
// the temperature gap.  Hot chains thus keep jumping barriers the cold
// chains cannot cross, and the cold chains refine whatever percolates down.
//
// Determinism: each chain owns its Rng, seeded from (base_seed, chain
// index), and advances it only inside its own superstep; the exchange phase
// runs serially on the caller thread with a dedicated swap Rng that draws
// exactly one uniform per attempted pair.  The reduction picks the minimum
// best cost with ties broken by lowest chain index.  The result is therefore
// bit-identical for a fixed (seed, chains, swap_period) regardless of
// thread-pool size or scheduling — chains never share mutable state, and
// the swap phase is a barrier.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/anneal/annealer.h"
#include "src/anneal/schedule.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/util/thread_annotations.h"
#include "src/util/thread_pool.h"

namespace vodrep {

/// Deterministic per-chain seed.  Chain 0 reuses `base_seed` verbatim so a
/// one-chain tempering run reproduces anneal(problem, Rng(base_seed), ...)
/// bit for bit (the K=1 equivalence tests pin this).  Distinct from the
/// anneal_multichain formula, which its own tests pin.
[[nodiscard]] inline std::uint64_t pt_chain_seed(std::uint64_t base_seed,
                                                 std::size_t chain) {
  return base_seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(chain));
}

/// Trace lane name for chain k.  TraceEvent stores `const char*` with static
/// storage duration, so the names are a fixed literal table; chains beyond
/// the table share one overflow lane.
[[nodiscard]] inline const char* pt_chain_lane(std::size_t chain) {
  static constexpr const char* kLanes[] = {
      "sa.chain.0",  "sa.chain.1",  "sa.chain.2",  "sa.chain.3",
      "sa.chain.4",  "sa.chain.5",  "sa.chain.6",  "sa.chain.7",
      "sa.chain.8",  "sa.chain.9",  "sa.chain.10", "sa.chain.11",
      "sa.chain.12", "sa.chain.13", "sa.chain.14", "sa.chain.15",
      "sa.chain.16", "sa.chain.17", "sa.chain.18", "sa.chain.19",
      "sa.chain.20", "sa.chain.21", "sa.chain.22", "sa.chain.23",
      "sa.chain.24", "sa.chain.25", "sa.chain.26", "sa.chain.27",
      "sa.chain.28", "sa.chain.29", "sa.chain.30", "sa.chain.31",
  };
  constexpr std::size_t kCount = sizeof(kLanes) / sizeof(kLanes[0]);
  return chain < kCount ? kLanes[chain] : "sa.chain.32+";
}

/// The replica-exchange bookkeeping: the dedicated swap Rng and the
/// attempt/accept counters.  Determinism requires that this state advance
/// only inside the serial exchange phase, in ladder order — never from a
/// chain superstep racing on the pool.  The members are therefore guarded by
/// an annotated mutex (uncontended: the exchange phase is a barrier, so the
/// lock costs one uncontended acquire per attempted pair) and the clang
/// -Werror=thread-safety lanes reject any future access that bypasses it.
class ExchangeLedger {
 public:
  explicit ExchangeLedger(std::uint64_t swap_seed) : rng_(swap_seed) {}

  /// Metropolis admission for one attempted pair.  Counts the attempt and
  /// draws exactly one uniform — even on the exponent >= 0 fast path — so
  /// the swap stream stays independent of the chains' costs.
  [[nodiscard]] bool admit(double exponent) VODREP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    ++attempts_;
    const double u = rng_.uniform();
    if (exponent >= 0.0 || u < std::exp(exponent)) {
      ++accepts_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t attempts() const VODREP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return attempts_;
  }
  [[nodiscard]] std::size_t accepts() const VODREP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return accepts_;
  }

 private:
  mutable Mutex mutex_;
  Rng rng_ VODREP_GUARDED_BY(mutex_);
  std::size_t attempts_ VODREP_GUARDED_BY(mutex_) = 0;
  std::size_t accepts_ VODREP_GUARDED_BY(mutex_) = 0;
};

/// Runs options.chains tempering chains (on `pool` when provided) and
/// returns the deterministic reduction: minimum best cost, ties to the
/// lowest chain index.  Top-level move counters aggregate across chains;
/// `temperature_steps`, `final_temperature`, and `trajectory` are the
/// winning chain's own, and `chains` holds every chain's stats.
template <AnnealProblem P>
[[nodiscard]] AnnealResult<typename P::State> anneal_parallel_tempering(
    const P& problem, std::uint64_t base_seed, const AnnealOptions& options,
    const CoolingSchedule& schedule, ThreadPool* pool = nullptr) {
  const std::size_t k = options.chains;
  require(k >= 1, "anneal_parallel_tempering: need at least one chain");
  require(options.swap_period >= 1,
          "anneal_parallel_tempering: swap_period must be positive");
  require(options.temperature_spread >= 1.0,
          "anneal_parallel_tempering: temperature_spread must be >= 1");
  VODREP_TRACE_SCOPE("anneal.pt.run");
  // Phase accounting (DESIGN.md §11): the caller thread owns the sa.pt root
  // with construct/superstep/exchange children — superstep wall covers the
  // pool dispatch plus the barrier wait, while the workers accrue the actual
  // chain-run wall/CPU under their own sa.pt.chain_run root, so "time the
  // barrier spent waiting" is superstep wall minus the chain-run share.
  VODREP_PROFILE_PHASE("sa.pt");

  // Each chain owns its Rng for its whole lifetime; the vector is sized up
  // front so the pointers the chains hold stay stable.
  std::vector<Rng> rngs;
  rngs.reserve(k);
  for (std::size_t c = 0; c < k; ++c) {
    rngs.emplace_back(pt_chain_seed(base_seed, c));
  }

  std::vector<std::optional<AnnealChain<P>>> chains(k);
  auto construct = [&](std::size_t c) {
    VODREP_TRACE_SCOPE(pt_chain_lane(c));
    VODREP_PROFILE_PHASE("sa.pt.chain_construct");
    chains[c].emplace(
        problem, rngs[c], options, schedule,
        std::pow(options.temperature_spread, static_cast<double>(c)));
  };
  // A one-worker pool would only add queue/wake latency per superstep, so it
  // runs inline like the no-pool case (output is identical either way).
  auto for_each_chain = [&](auto&& body) {
    if (pool != nullptr && pool->size() > 1 && k > 1) {
      pool->parallel_for(k, body);
    } else {
      for (std::size_t c = 0; c < k; ++c) body(c);
    }
  };
  {
    VODREP_PROFILE_PHASE("construct");
    for_each_chain(construct);
  }

  // Superstep loop: every chain advances up to swap_period temperature steps
  // in parallel (stopping early if its own schedule or stall predicate
  // fires), then the caller thread runs the serial exchange phase.  Pair
  // parity alternates per round so configurations can travel the whole
  // ladder.  The swap Rng always draws exactly one uniform per pair, keeping
  // its stream independent of the chains' costs.
  ExchangeLedger ledger(base_seed ^ 0xd1b54a32d192ed03ULL);
  auto any_active = [&] {
    for (const auto& chain : chains) {
      if (chain->active()) return true;
    }
    return false;
  };
  auto superstep = [&](std::size_t c) {
    VODREP_TRACE_SCOPE(pt_chain_lane(c));
    VODREP_PROFILE_PHASE("sa.pt.chain_run");
    AnnealChain<P>& chain = *chains[c];
    for (std::size_t i = 0; i < options.swap_period && chain.step(); ++i) {
    }
  };
  for (std::size_t round = 0; any_active(); ++round) {
    {
      VODREP_PROFILE_PHASE("superstep");
      for_each_chain(superstep);
    }
    VODREP_PROFILE_PHASE("exchange");
    for (std::size_t lo = round % 2; lo + 1 < k; lo += 2) {
      AnnealChain<P>& cold = *chains[lo];
      AnnealChain<P>& hot = *chains[lo + 1];
      const double exponent =
          (1.0 / cold.temperature() - 1.0 / hot.temperature()) *
          (cold.current_cost() - hot.current_cost());
      if (ledger.admit(exponent)) {
        AnnealChain<P>::exchange(cold, hot);
      }
    }
  }

  std::vector<std::size_t> swaps_by_chain(k);
  std::vector<AnnealResult<typename P::State>> results;
  results.reserve(k);
  for (std::size_t c = 0; c < k; ++c) {
    swaps_by_chain[c] = chains[c]->swaps_accepted();
    results.push_back(chains[c]->take_result());
  }
  std::size_t winner = 0;
  for (std::size_t c = 1; c < k; ++c) {
    if (results[c].best_cost < results[winner].best_cost) winner = c;
  }

  AnnealResult<typename P::State> out;
  out.best_cost = results[winner].best_cost;
  out.final_temperature = results[winner].final_temperature;
  out.temperature_steps = results[winner].temperature_steps;
  out.trajectory = results[winner].trajectory;
  out.winning_chain = winner;
  out.swap_attempts = ledger.attempts();
  out.swap_accepts = ledger.accepts();
  out.chains.reserve(k);
  for (std::size_t c = 0; c < k; ++c) {
    out.moves_proposed += results[c].moves_proposed;
    out.moves_accepted += results[c].moves_accepted;
    out.moves_noop += results[c].moves_noop;
    AnnealChainStats stats = chain_stats_of(results[c], swaps_by_chain[c]);
    stats.trajectory = std::move(results[c].trajectory);
    out.chains.push_back(std::move(stats));
  }
  out.best_state = std::move(results[winner].best_state);
  return out;
}

/// Convenience overload with geometric(0.95) cooling.
template <AnnealProblem P>
[[nodiscard]] AnnealResult<typename P::State> anneal_parallel_tempering(
    const P& problem, std::uint64_t base_seed, const AnnealOptions& options = {},
    ThreadPool* pool = nullptr) {
  const auto schedule = geometric_cooling(0.95);
  return anneal_parallel_tempering(problem, base_seed, options, *schedule,
                                   pool);
}

}  // namespace vodrep
