// Generic simulated-annealing engine (minimization).
//
// This is the self-contained substitute for the parsa library the paper
// builds on.  A Problem supplies the three problem-specific decisions the
// paper lists in Section 4.3 — cost function, initial solution, neighborhood
// structure — and the engine owns the generic decisions: Metropolis
// acceptance, temperature calibration, cooling, termination, and
// best-solution tracking.
//
// Problem concept:
//   struct MyProblem {
//     using State = ...;                       // copyable solution type
//     State initial(Rng& rng) const;           // feasible starting solution
//     double cost(const State& s) const;       // value to MINIMIZE
//     State neighbor(const State& s, Rng&) const;  // random feasible move
//   };
//
// Problems may additionally implement the in-place move API (see
// InPlaceAnnealProblem below); the engine then evaluates moves as O(delta)
// incremental updates instead of copying and re-costing the whole State.
#pragma once

#include <cmath>
#include <concepts>
#include <cstddef>
#include <utility>
#include <vector>

#include "src/anneal/schedule.h"
#include "src/obs/trace.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace vodrep {

template <typename P>
concept AnnealProblem = requires(const P& p, const typename P::State& s, Rng& rng) {
  { p.initial(rng) } -> std::convertible_to<typename P::State>;
  { p.cost(s) } -> std::convertible_to<double>;
  { p.neighbor(s, rng) } -> std::convertible_to<typename P::State>;
};

/// Optional extension of AnnealProblem: problems that can evaluate moves as
/// in-place deltas instead of copy-modify-recompute.  The engine then keeps
/// one mutable `Scratch` per chain and never copies the State on the move
/// path (only when a new best solution is extracted):
///
///   Scratch make_scratch(State s);   // owns the chain's mutable state
///   bool propose(Scratch&, Rng&);    // tentatively apply a move; false =
///                                    // no-op (nothing applied, skip eval)
///   double delta_cost(const Scratch&);  // cost(after) - cost(before)
///   void commit(Scratch&);           // accept the tentative move
///   void revert(Scratch&);           // undo the tentative move
///   State extract(const Scratch&);   // snapshot for best-state tracking
template <typename P>
concept InPlaceAnnealProblem =
    AnnealProblem<P> && requires { typename P::Scratch; } &&
    requires(const P& p, typename P::State s, typename P::Scratch& scratch,
             Rng& rng) {
      { p.make_scratch(std::move(s)) } -> std::convertible_to<typename P::Scratch>;
      { p.propose(scratch, rng) } -> std::convertible_to<bool>;
      { p.delta_cost(std::as_const(scratch)) } -> std::convertible_to<double>;
      { p.commit(scratch) };
      { p.revert(scratch) };
      { p.extract(std::as_const(scratch)) } -> std::convertible_to<typename P::State>;
    };

/// Engine parameters.  Defaults suit problems whose cost is O(1)-scaled;
/// initial_temperature <= 0 requests automatic calibration (see
/// calibrate_initial_temperature).
struct AnnealOptions {
  double initial_temperature = -1.0;  ///< <= 0: calibrate automatically
  double final_temperature = 1e-4;    ///< stop when T falls below this
  std::size_t moves_per_temperature = 200;
  std::size_t max_temperature_steps = 10'000;  ///< hard safety cap
  /// Stop early after this many consecutive temperature steps without the
  /// best cost improving; 0 disables the early stop.
  std::size_t stall_steps = 50;
  /// Target acceptance ratio for automatic temperature calibration.
  double calibration_acceptance = 0.8;
  std::size_t calibration_samples = 200;
  /// Cap on stored trajectory samples.  While under the cap one
  /// (temperature, best-cost) sample is kept per temperature step; on
  /// overflow the trajectory is decimated in place (every other sample
  /// dropped, sampling stride doubled), so memory stays bounded on long
  /// multi-chain runs while the samples remain chronologically uniform.
  /// 0 disables the cap.
  std::size_t trajectory_max_samples = 4096;
};

/// What the engine did, for instrumentation and tests.
template <typename State>
struct AnnealResult {
  State best_state{};
  double best_cost = 0.0;
  double final_temperature = 0.0;
  std::size_t temperature_steps = 0;
  std::size_t moves_proposed = 0;
  std::size_t moves_accepted = 0;
  /// Move slots that produced no candidate (saturated server, irreparable
  /// move): skipped without a cost evaluation.  Only the in-place path can
  /// detect these; the copy path always counts a proposal.
  std::size_t moves_noop = 0;
  /// (temperature, best-cost) samples: one per temperature step, decimated
  /// to every k-th step once options.trajectory_max_samples is exceeded.
  std::vector<std::pair<double, double>> trajectory;
};

/// Estimates an initial temperature such that uphill moves are accepted with
/// roughly `target_acceptance` probability: samples random neighbor moves
/// from the initial state and sets T0 = mean(uphill delta) / -ln(target).
template <AnnealProblem P>
[[nodiscard]] double calibrate_initial_temperature(const P& problem, Rng& rng,
                                                   double target_acceptance,
                                                   std::size_t samples) {
  require(target_acceptance > 0.0 && target_acceptance < 1.0,
          "calibrate_initial_temperature: target in (0, 1) required");
  typename P::State state = problem.initial(rng);
  double cost = problem.cost(state);
  double uphill_sum = 0.0;
  std::size_t uphill_count = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    typename P::State candidate = problem.neighbor(state, rng);
    const double candidate_cost = problem.cost(candidate);
    const double delta = candidate_cost - cost;
    if (delta > 0.0) {
      uphill_sum += delta;
      ++uphill_count;
    }
    // Random-walk through the landscape so the sample is not anchored to the
    // immediate vicinity of the initial state.
    state = std::move(candidate);
    cost = candidate_cost;
  }
  if (uphill_count == 0) return 1.0;  // all moves downhill; T0 barely matters
  const double mean_uphill = uphill_sum / static_cast<double>(uphill_count);
  return mean_uphill / -std::log(target_acceptance);
}

/// Runs simulated annealing and returns the best state encountered.
/// Deterministic given `rng`'s seed.  Problems satisfying
/// InPlaceAnnealProblem are driven through the allocation-free
/// propose/delta_cost/commit/revert path; everything else uses the classic
/// copy-modify-recompute loop.
template <AnnealProblem P>
[[nodiscard]] AnnealResult<typename P::State> anneal(
    const P& problem, Rng& rng, const AnnealOptions& options,
    const CoolingSchedule& schedule) {
  require(options.final_temperature > 0.0,
          "anneal: final_temperature must be positive");
  require(options.moves_per_temperature > 0,
          "anneal: moves_per_temperature must be positive");
  VODREP_TRACE_SCOPE("anneal.run");

  AnnealResult<typename P::State> result;
  typename P::State initial_state = problem.initial(rng);
  double current_cost = problem.cost(initial_state);
  result.best_state = initial_state;
  result.best_cost = current_cost;

  // The chain's mutable state: the problem's Scratch when it supports
  // in-place moves, a plain State copy otherwise.
  auto chain = [&] {
    if constexpr (InPlaceAnnealProblem<P>) {
      return problem.make_scratch(std::move(initial_state));
    } else {
      return std::move(initial_state);
    }
  }();

  /// One Metropolis step at `temperature`; returns whether it was accepted.
  auto metropolis_step = [&](double temperature) {
    if constexpr (InPlaceAnnealProblem<P>) {
      if (!problem.propose(chain, rng)) {
        ++result.moves_noop;  // nothing applied, nothing to evaluate
        return false;
      }
      ++result.moves_proposed;
      const double delta = problem.delta_cost(chain);
      if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature)) {
        problem.commit(chain);
        current_cost += delta;
        if (current_cost < result.best_cost) {
          result.best_cost = current_cost;
          result.best_state = problem.extract(chain);
        }
        return true;
      }
      problem.revert(chain);
      return false;
    } else {
      typename P::State candidate = problem.neighbor(chain, rng);
      const double candidate_cost = problem.cost(candidate);
      const double delta = candidate_cost - current_cost;
      ++result.moves_proposed;
      if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature)) {
        chain = std::move(candidate);
        current_cost = candidate_cost;
        if (current_cost < result.best_cost) {
          result.best_cost = current_cost;
          result.best_state = chain;
        }
        return true;
      }
      return false;
    }
  };

  double temperature = options.initial_temperature;
  if (temperature <= 0.0) {
    temperature = calibrate_initial_temperature(
        problem, rng, options.calibration_acceptance,
        options.calibration_samples);
  }

  std::size_t stall = 0;
  std::size_t trajectory_stride = 1;
  CoolingStepInfo info;
  while (temperature > options.final_temperature &&
         result.temperature_steps < options.max_temperature_steps) {
    // Per-temperature-stage span (not per move): the disabled-path cost is
    // one relaxed load per moves_per_temperature Metropolis steps.
    VODREP_TRACE_SCOPE("anneal.temp_step");
    std::size_t accepted = 0;
    const double best_before = result.best_cost;
    for (std::size_t m = 0; m < options.moves_per_temperature; ++m) {
      if (metropolis_step(temperature)) ++accepted;
    }
    result.moves_accepted += accepted;
    const std::size_t step_index = result.temperature_steps++;

    // Bounded trajectory: sample every trajectory_stride-th step; on hitting
    // the cap drop every other stored sample and double the stride.  Stored
    // steps are always the multiples of the current stride.
    if (step_index % trajectory_stride == 0) {
      if (options.trajectory_max_samples != 0 &&
          result.trajectory.size() >= options.trajectory_max_samples) {
        std::size_t kept = 0;
        for (std::size_t i = 0; i < result.trajectory.size(); i += 2) {
          result.trajectory[kept++] = result.trajectory[i];
        }
        result.trajectory.resize(kept);
        trajectory_stride *= 2;
      }
      if (step_index % trajectory_stride == 0) {
        result.trajectory.emplace_back(temperature, result.best_cost);
      }
    }

    stall = result.best_cost < best_before ? 0 : stall + 1;
    if (options.stall_steps != 0 && stall >= options.stall_steps) break;

    info.step = result.temperature_steps;
    info.moves = options.moves_per_temperature;
    info.accepted = accepted;
    info.best_cost = result.best_cost;
    info.current_cost = current_cost;
    const double next_temperature = schedule.next(temperature, info);
    require(next_temperature < temperature,
            "anneal: cooling schedule failed to decrease the temperature");
    temperature = next_temperature;
  }
  result.final_temperature = temperature;
  return result;
}

/// Convenience overload using geometric cooling with ratio 0.95.
template <AnnealProblem P>
[[nodiscard]] AnnealResult<typename P::State> anneal(
    const P& problem, Rng& rng, const AnnealOptions& options = {}) {
  const auto schedule = geometric_cooling(0.95);
  return anneal(problem, rng, options, *schedule);
}

/// Multi-chain annealing — the parallelization strategy of the parsa
/// library the paper builds on: K independent Metropolis chains run from
/// different seeds (on `pool` when provided) and the best final solution
/// wins.  Deterministic in `base_seed` regardless of thread count.  The
/// returned instrumentation aggregates move counts across chains and keeps
/// the winning chain's trajectory.
template <AnnealProblem P>
[[nodiscard]] AnnealResult<typename P::State> anneal_multichain(
    const P& problem, std::uint64_t base_seed, std::size_t chains,
    const AnnealOptions& options, const CoolingSchedule& schedule,
    ThreadPool* pool = nullptr) {
  require(chains >= 1, "anneal_multichain: need at least one chain");
  std::vector<AnnealResult<typename P::State>> results(chains);
  auto run_chain = [&](std::size_t chain) {
    Rng rng(base_seed ^ (0x9e3779b97f4a7c15ULL * (chain + 1)));
    results[chain] = anneal(problem, rng, options, schedule);
  };
  if (pool != nullptr) {
    pool->parallel_for(chains, run_chain);
  } else {
    for (std::size_t chain = 0; chain < chains; ++chain) run_chain(chain);
  }
  std::size_t best = 0;
  std::size_t moves_proposed = 0;
  std::size_t moves_accepted = 0;
  std::size_t moves_noop = 0;
  for (std::size_t chain = 0; chain < chains; ++chain) {
    moves_proposed += results[chain].moves_proposed;
    moves_accepted += results[chain].moves_accepted;
    moves_noop += results[chain].moves_noop;
    if (results[chain].best_cost < results[best].best_cost) best = chain;
  }
  AnnealResult<typename P::State> winner = std::move(results[best]);
  winner.moves_proposed = moves_proposed;
  winner.moves_accepted = moves_accepted;
  winner.moves_noop = moves_noop;
  return winner;
}

/// Multi-chain convenience overload with geometric(0.95) cooling.
template <AnnealProblem P>
[[nodiscard]] AnnealResult<typename P::State> anneal_multichain(
    const P& problem, std::uint64_t base_seed, std::size_t chains,
    const AnnealOptions& options = {}, ThreadPool* pool = nullptr) {
  const auto schedule = geometric_cooling(0.95);
  return anneal_multichain(problem, base_seed, chains, options, *schedule,
                           pool);
}

}  // namespace vodrep
