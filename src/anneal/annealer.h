// Generic simulated-annealing engine (minimization).
//
// This is the self-contained substitute for the parsa library the paper
// builds on.  A Problem supplies the three problem-specific decisions the
// paper lists in Section 4.3 — cost function, initial solution, neighborhood
// structure — and the engine owns the generic decisions: Metropolis
// acceptance, temperature calibration, cooling, termination, and
// best-solution tracking.
//
// Problem concept:
//   struct MyProblem {
//     using State = ...;                       // copyable solution type
//     State initial(Rng& rng) const;           // feasible starting solution
//     double cost(const State& s) const;       // value to MINIMIZE
//     State neighbor(const State& s, Rng&) const;  // random feasible move
//   };
//
// Problems may additionally implement the in-place move API (see
// InPlaceAnnealProblem below); the engine then evaluates moves as O(delta)
// incremental updates instead of copying and re-costing the whole State.
//
// The Metropolis loop itself lives in AnnealChain, a resumable single chain
// that advances one temperature step per step() call.  anneal() drives one
// chain to completion; anneal_multichain() races independent chains;
// anneal_parallel_tempering() (src/anneal/parallel_tempering.h) couples
// chains at staggered temperatures through periodic replica exchanges.
#pragma once

#include <cmath>
#include <concepts>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "src/anneal/schedule.h"
#include "src/obs/trace.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace vodrep {

template <typename P>
concept AnnealProblem = requires(const P& p, const typename P::State& s, Rng& rng) {
  { p.initial(rng) } -> std::convertible_to<typename P::State>;
  { p.cost(s) } -> std::convertible_to<double>;
  { p.neighbor(s, rng) } -> std::convertible_to<typename P::State>;
};

/// Optional extension of AnnealProblem: problems that can evaluate moves as
/// in-place deltas instead of copy-modify-recompute.  The engine then keeps
/// one mutable `Scratch` per chain and never copies the State on the move
/// path (only when a new best solution is extracted):
///
///   Scratch make_scratch(State s);   // owns the chain's mutable state
///   bool propose(Scratch&, Rng&);    // tentatively apply a move; false =
///                                    // no-op (nothing applied, skip eval)
///   double delta_cost(const Scratch&);  // cost(after) - cost(before)
///   void commit(Scratch&);           // accept the tentative move
///   void revert(Scratch&);           // undo the tentative move
///   State extract(const Scratch&);   // snapshot for best-state tracking
template <typename P>
concept InPlaceAnnealProblem =
    AnnealProblem<P> && requires { typename P::Scratch; } &&
    requires(const P& p, typename P::State s, typename P::Scratch& scratch,
             Rng& rng) {
      { p.make_scratch(std::move(s)) } -> std::convertible_to<typename P::Scratch>;
      { p.propose(scratch, rng) } -> std::convertible_to<bool>;
      { p.delta_cost(std::as_const(scratch)) } -> std::convertible_to<double>;
      { p.commit(scratch) };
      { p.revert(scratch) };
      { p.extract(std::as_const(scratch)) } -> std::convertible_to<typename P::State>;
    };

/// Optional extension of InPlaceAnnealProblem: problems that track the best
/// configuration seen *inside their Scratch* (typically as a journal mark
/// recorded during commit()) and can materialize it on demand.  The engine
/// then never copies State on the move path at all — a new best costs O(1)
/// bookkeeping instead of an extract() snapshot — and calls extract_best()
/// exactly once when the chain is finalized.  extract_best may consume the
/// scratch (e.g. roll it back to the marked position); the chain is spent
/// afterwards.
template <typename P>
concept DeferredBestAnnealProblem =
    InPlaceAnnealProblem<P> &&
    requires(const P& p, typename P::Scratch& scratch) {
      { p.extract_best(scratch) } -> std::convertible_to<typename P::State>;
    };

/// Engine parameters.  Defaults suit problems whose cost is O(1)-scaled;
/// initial_temperature <= 0 requests automatic calibration (see
/// calibrate_initial_temperature).
struct AnnealOptions {
  double initial_temperature = -1.0;  ///< <= 0: calibrate automatically
  double final_temperature = 1e-4;    ///< stop when T falls below this
  std::size_t moves_per_temperature = 200;
  std::size_t max_temperature_steps = 10'000;  ///< hard safety cap
  /// Stop early after this many consecutive temperature steps without the
  /// best cost improving; 0 disables the early stop.
  std::size_t stall_steps = 50;
  /// Target acceptance ratio for automatic temperature calibration.
  double calibration_acceptance = 0.8;
  std::size_t calibration_samples = 200;
  /// Cap on stored trajectory samples.  While under the cap one
  /// (temperature, best-cost) sample is kept per temperature step; on
  /// overflow the trajectory is decimated in place (every other sample
  /// dropped, sampling stride doubled), so memory stays bounded on long
  /// multi-chain runs while the samples remain chronologically uniform.
  /// 0 disables the cap.
  std::size_t trajectory_max_samples = 4096;
  /// Replica count for anneal_parallel_tempering (ignored by anneal() and
  /// anneal_multichain, which take their chain count explicitly).
  std::size_t chains = 1;
  /// Temperature steps each chain runs between replica-exchange rounds.
  std::size_t swap_period = 8;
  /// Geometric spacing of the tempering ladder: chain k starts at
  /// T0 * temperature_spread^k, so higher chains explore hotter landscapes
  /// whose configurations percolate down through accepted exchanges.
  double temperature_spread = 1.5;
};

/// Per-chain instrumentation: what one Metropolis chain did.  Multi-chain
/// drivers (anneal_multichain, anneal_parallel_tempering) report one entry
/// per chain; anneal() reports a single entry mirroring the aggregate view.
struct AnnealChainStats {
  double best_cost = 0.0;
  double final_temperature = 0.0;
  std::size_t temperature_steps = 0;
  std::size_t moves_proposed = 0;
  std::size_t moves_accepted = 0;
  std::size_t moves_noop = 0;
  /// Replica exchanges this chain participated in (parallel tempering only).
  std::size_t swaps_accepted = 0;
  /// This chain's own (temperature, best-cost) trajectory.
  std::vector<std::pair<double, double>> trajectory;
};

/// What the engine did, for instrumentation and tests.  The top-level move
/// counters aggregate across chains; `trajectory` and `temperature_steps`
/// are the winning chain's (per-chain views live in `chains`).
template <typename State>
struct AnnealResult {
  State best_state{};
  double best_cost = 0.0;
  double final_temperature = 0.0;
  std::size_t temperature_steps = 0;
  std::size_t moves_proposed = 0;
  std::size_t moves_accepted = 0;
  /// Move slots that produced no candidate (saturated server, irreparable
  /// move): skipped without a cost evaluation.  Only the in-place path can
  /// detect these; the copy path always counts a proposal.
  std::size_t moves_noop = 0;
  /// (temperature, best-cost) samples: one per temperature step, decimated
  /// to every k-th step once options.trajectory_max_samples is exceeded.
  std::vector<std::pair<double, double>> trajectory;
  /// Index (into `chains`) of the chain that produced best_state.
  std::size_t winning_chain = 0;
  /// Replica-exchange bookkeeping (parallel tempering; zero otherwise).
  std::size_t swap_attempts = 0;
  std::size_t swap_accepts = 0;
  /// One entry per chain, in chain order.
  std::vector<AnnealChainStats> chains;
};

/// Estimates an initial temperature such that uphill moves are accepted with
/// roughly `target_acceptance` probability: samples random neighbor moves
/// from the initial state and sets T0 = mean(uphill delta) / -ln(target).
template <AnnealProblem P>
[[nodiscard]] double calibrate_initial_temperature(const P& problem, Rng& rng,
                                                   double target_acceptance,
                                                   std::size_t samples) {
  require(target_acceptance > 0.0 && target_acceptance < 1.0,
          "calibrate_initial_temperature: target in (0, 1) required");
  typename P::State state = problem.initial(rng);
  double cost = problem.cost(state);
  double uphill_sum = 0.0;
  std::size_t uphill_count = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    typename P::State candidate = problem.neighbor(state, rng);
    const double candidate_cost = problem.cost(candidate);
    const double delta = candidate_cost - cost;
    if (delta > 0.0) {
      uphill_sum += delta;
      ++uphill_count;
    }
    // Random-walk through the landscape so the sample is not anchored to the
    // immediate vicinity of the initial state.
    state = std::move(candidate);
    cost = candidate_cost;
  }
  if (uphill_count == 0) return 1.0;  // all moves downhill; T0 barely matters
  const double mean_uphill = uphill_sum / static_cast<double>(uphill_count);
  return mean_uphill / -std::log(target_acceptance);
}

namespace detail {

/// The chain's mutable per-move storage: the problem's Scratch when it
/// supports in-place moves, a plain State copy otherwise.  (A trait rather
/// than std::conditional_t because `typename P::Scratch` must not be named
/// at all for copy-only problems.)
template <typename P, bool InPlace = InPlaceAnnealProblem<P>>
struct AnnealStorage {
  using type = typename P::State;
};
template <typename P>
struct AnnealStorage<P, true> {
  using type = typename P::Scratch;
};

}  // namespace detail

/// One resumable Metropolis chain.  Construction consumes `rng` exactly as
/// the classic one-shot engine did (initial solution, then calibration when
/// requested); each step() call then runs one temperature step —
/// moves_per_temperature Metropolis moves plus trajectory, stall, and
/// cooling bookkeeping — and returns false once the chain has stopped.
/// Driving a chain with `while (chain.step()) {}` therefore reproduces the
/// one-shot anneal() bit for bit.
///
/// Chains are also the unit of replica exchange: `exchange()` swaps two
/// chains' walker configurations (state + current cost) while each keeps its
/// own temperature, rng, and schedule position — the parallel-tempering
/// driver's only coupling point.
template <AnnealProblem P>
class AnnealChain {
 public:
  using State = typename P::State;
  using Storage = typename detail::AnnealStorage<P>::type;

  /// `rng`, `problem`, `options`, and `schedule` must outlive the chain.
  /// `temperature_scale` multiplies the (possibly calibrated) initial
  /// temperature — the tempering ladder's spacing knob; 1.0 reproduces the
  /// classic single-chain start.
  AnnealChain(const P& problem, Rng& rng, const AnnealOptions& options,
              const CoolingSchedule& schedule, double temperature_scale = 1.0)
      : problem_(&problem),
        rng_(&rng),
        options_(&options),
        schedule_(&schedule) {
    require(options.final_temperature > 0.0,
            "anneal: final_temperature must be positive");
    require(options.moves_per_temperature > 0,
            "anneal: moves_per_temperature must be positive");
    State initial_state = problem.initial(rng);
    current_cost_ = problem.cost(initial_state);
    result_.best_cost = current_cost_;
    if constexpr (!DeferredBestAnnealProblem<P>) {
      result_.best_state = initial_state;
    }
    if constexpr (InPlaceAnnealProblem<P>) {
      storage_.emplace(problem.make_scratch(std::move(initial_state)));
    } else {
      storage_.emplace(std::move(initial_state));
    }
    temperature_ = options.initial_temperature;
    if (temperature_ <= 0.0) {
      temperature_ = calibrate_initial_temperature(
          problem, rng, options.calibration_acceptance,
          options.calibration_samples);
    }
    temperature_ *= temperature_scale;
  }

  /// Runs one temperature step; returns false (touching nothing) once the
  /// chain is stopped — schedule exhausted (T below final or the step cap
  /// reached) or stalled.
  bool step() {
    if (stop_ != StopReason::kRunning) return false;
    if (!(temperature_ > options_->final_temperature &&
          result_.temperature_steps < options_->max_temperature_steps)) {
      stop_ = StopReason::kSchedule;
      return false;
    }
    // Per-temperature-stage span (not per move): the disabled-path cost is
    // one relaxed load per moves_per_temperature Metropolis steps.
    VODREP_TRACE_SCOPE("anneal.temp_step");
    std::size_t accepted = 0;
    const double best_before = result_.best_cost;
    for (std::size_t m = 0; m < options_->moves_per_temperature; ++m) {
      if (metropolis_step()) ++accepted;
    }
    result_.moves_accepted += accepted;
    const std::size_t step_index = result_.temperature_steps++;

    // Bounded trajectory: sample every trajectory_stride-th step; on hitting
    // the cap drop every other stored sample and double the stride.  Stored
    // steps are always the multiples of the current stride.
    if (step_index % trajectory_stride_ == 0) {
      if (options_->trajectory_max_samples != 0 &&
          result_.trajectory.size() >= options_->trajectory_max_samples) {
        std::size_t kept = 0;
        for (std::size_t i = 0; i < result_.trajectory.size(); i += 2) {
          result_.trajectory[kept++] = result_.trajectory[i];
        }
        result_.trajectory.resize(kept);
        trajectory_stride_ *= 2;
      }
      if (step_index % trajectory_stride_ == 0) {
        result_.trajectory.emplace_back(temperature_, result_.best_cost);
      }
    }

    stall_ = result_.best_cost < best_before ? 0 : stall_ + 1;
    if (options_->stall_steps != 0 && stall_ >= options_->stall_steps) {
      stop_ = StopReason::kStall;
      return false;
    }

    info_.step = result_.temperature_steps;
    info_.moves = options_->moves_per_temperature;
    info_.accepted = accepted;
    info_.best_cost = result_.best_cost;
    info_.current_cost = current_cost_;
    const double next_temperature = schedule_->next(temperature_, info_);
    require(next_temperature < temperature_,
            "anneal: cooling schedule failed to decrease the temperature");
    temperature_ = next_temperature;
    return true;
  }

  [[nodiscard]] bool active() const { return stop_ == StopReason::kRunning; }
  [[nodiscard]] double temperature() const { return temperature_; }
  [[nodiscard]] double current_cost() const { return current_cost_; }
  [[nodiscard]] double best_cost() const { return result_.best_cost; }
  [[nodiscard]] std::size_t swaps_accepted() const { return swaps_accepted_; }

  /// Replica exchange: swaps the two chains' walkers — the mutable state,
  /// its current cost, and the walker's best-so-far tracking (which lives
  /// with the walker: for deferred-best problems the best is a mark inside
  /// the scratch and must travel with it) — while each chain keeps its
  /// temperature, rng, and schedule position.  Both chains restart their
  /// stall clocks; a chain that had stopped on stall — but not one whose
  /// schedule is exhausted — resumes with the fresh material.
  static void exchange(AnnealChain& a, AnnealChain& b) {
    using std::swap;
    swap(a.storage_, b.storage_);
    swap(a.current_cost_, b.current_cost_);
    swap(a.result_.best_cost, b.result_.best_cost);
    if constexpr (!DeferredBestAnnealProblem<P>) {
      swap(a.result_.best_state, b.result_.best_state);
    }
    a.on_incoming();
    b.on_incoming();
    ++a.swaps_accepted_;
    ++b.swaps_accepted_;
  }

  /// Finalizes and returns the chain's result; the chain is spent afterwards.
  [[nodiscard]] AnnealResult<State> take_result() {
    result_.final_temperature = temperature_;
    if constexpr (DeferredBestAnnealProblem<P>) {
      result_.best_state = problem_->extract_best(*storage_);
    }
    return std::move(result_);
  }

 private:
  enum class StopReason { kRunning, kSchedule, kStall };

  /// One Metropolis move at the current temperature; true when accepted.
  bool metropolis_step() {
    Rng& rng = *rng_;
    if constexpr (InPlaceAnnealProblem<P>) {
      if (!problem_->propose(*storage_, rng)) {
        ++result_.moves_noop;  // nothing applied, nothing to evaluate
        return false;
      }
      ++result_.moves_proposed;
      const double delta = problem_->delta_cost(*storage_);
      if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature_)) {
        problem_->commit(*storage_);
        current_cost_ += delta;
        if (current_cost_ < result_.best_cost) {
          result_.best_cost = current_cost_;
          // Deferred-best problems record the improvement inside commit();
          // copying a State snapshot here would be the hot loop's only O(M)
          // work, so skip it and extract once in take_result().
          if constexpr (!DeferredBestAnnealProblem<P>) {
            result_.best_state = problem_->extract(*storage_);
          }
        }
        return true;
      }
      problem_->revert(*storage_);
      return false;
    } else {
      typename P::State candidate = problem_->neighbor(*storage_, rng);
      const double candidate_cost = problem_->cost(candidate);
      const double delta = candidate_cost - current_cost_;
      ++result_.moves_proposed;
      if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature_)) {
        *storage_ = std::move(candidate);
        current_cost_ = candidate_cost;
        if (current_cost_ < result_.best_cost) {
          result_.best_cost = current_cost_;
          result_.best_state = *storage_;
        }
        return true;
      }
      return false;
    }
  }

  void on_incoming() {
    stall_ = 0;
    if (stop_ == StopReason::kStall) stop_ = StopReason::kRunning;
  }

  const P* problem_;
  Rng* rng_;
  const AnnealOptions* options_;
  const CoolingSchedule* schedule_;
  // optional<> because Storage (a problem's Scratch) need not be
  // default-constructible; always engaged after construction.
  std::optional<Storage> storage_;
  AnnealResult<State> result_;
  double current_cost_ = 0.0;
  double temperature_ = 0.0;
  std::size_t stall_ = 0;
  std::size_t trajectory_stride_ = 1;
  std::size_t swaps_accepted_ = 0;
  StopReason stop_ = StopReason::kRunning;
  CoolingStepInfo info_;
};

/// Copies a finished chain result's counters into a per-chain stats entry.
template <typename State>
[[nodiscard]] AnnealChainStats chain_stats_of(const AnnealResult<State>& r,
                                              std::size_t swaps_accepted = 0) {
  AnnealChainStats stats;
  stats.best_cost = r.best_cost;
  stats.final_temperature = r.final_temperature;
  stats.temperature_steps = r.temperature_steps;
  stats.moves_proposed = r.moves_proposed;
  stats.moves_accepted = r.moves_accepted;
  stats.moves_noop = r.moves_noop;
  stats.swaps_accepted = swaps_accepted;
  stats.trajectory = r.trajectory;
  return stats;
}

/// Runs simulated annealing and returns the best state encountered.
/// Deterministic given `rng`'s seed.  Problems satisfying
/// InPlaceAnnealProblem are driven through the allocation-free
/// propose/delta_cost/commit/revert path; everything else uses the classic
/// copy-modify-recompute loop.
template <AnnealProblem P>
[[nodiscard]] AnnealResult<typename P::State> anneal(
    const P& problem, Rng& rng, const AnnealOptions& options,
    const CoolingSchedule& schedule) {
  VODREP_TRACE_SCOPE("anneal.run");
  AnnealChain<P> chain(problem, rng, options, schedule);
  while (chain.step()) {
  }
  AnnealResult<typename P::State> result = chain.take_result();
  result.chains.push_back(chain_stats_of(result));
  result.winning_chain = 0;
  return result;
}

/// Convenience overload using geometric cooling with ratio 0.95.
template <AnnealProblem P>
[[nodiscard]] AnnealResult<typename P::State> anneal(
    const P& problem, Rng& rng, const AnnealOptions& options = {}) {
  const auto schedule = geometric_cooling(0.95);
  return anneal(problem, rng, options, *schedule);
}

/// Multi-chain annealing — the parallelization strategy of the parsa
/// library the paper builds on: K independent Metropolis chains run from
/// different seeds (on `pool` when provided) and the best final solution
/// wins.  Deterministic in `base_seed` regardless of thread count.  The
/// returned instrumentation aggregates move counts across chains, keeps the
/// winning chain's trajectory, and reports per-chain views in `chains`.
template <AnnealProblem P>
[[nodiscard]] AnnealResult<typename P::State> anneal_multichain(
    const P& problem, std::uint64_t base_seed, std::size_t chains,
    const AnnealOptions& options, const CoolingSchedule& schedule,
    ThreadPool* pool = nullptr) {
  require(chains >= 1, "anneal_multichain: need at least one chain");
  std::vector<AnnealResult<typename P::State>> results(chains);
  auto run_chain = [&](std::size_t chain) {
    Rng rng(base_seed ^ (0x9e3779b97f4a7c15ULL * (chain + 1)));
    results[chain] = anneal(problem, rng, options, schedule);
  };
  if (pool != nullptr) {
    pool->parallel_for(chains, run_chain);
  } else {
    for (std::size_t chain = 0; chain < chains; ++chain) run_chain(chain);
  }
  std::size_t best = 0;
  std::size_t moves_proposed = 0;
  std::size_t moves_accepted = 0;
  std::size_t moves_noop = 0;
  std::vector<AnnealChainStats> stats;
  stats.reserve(chains);
  for (std::size_t chain = 0; chain < chains; ++chain) {
    moves_proposed += results[chain].moves_proposed;
    moves_accepted += results[chain].moves_accepted;
    moves_noop += results[chain].moves_noop;
    stats.push_back(chain_stats_of(results[chain]));
    if (results[chain].best_cost < results[best].best_cost) best = chain;
  }
  AnnealResult<typename P::State> winner = std::move(results[best]);
  winner.moves_proposed = moves_proposed;
  winner.moves_accepted = moves_accepted;
  winner.moves_noop = moves_noop;
  winner.winning_chain = best;
  winner.chains = std::move(stats);
  return winner;
}

/// Multi-chain convenience overload with geometric(0.95) cooling.
template <AnnealProblem P>
[[nodiscard]] AnnealResult<typename P::State> anneal_multichain(
    const P& problem, std::uint64_t base_seed, std::size_t chains,
    const AnnealOptions& options = {}, ThreadPool* pool = nullptr) {
  const auto schedule = geometric_cooling(0.95);
  return anneal_multichain(problem, base_seed, chains, options, *schedule,
                           pool);
}

}  // namespace vodrep
