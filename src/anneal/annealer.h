// Generic simulated-annealing engine (minimization).
//
// This is the self-contained substitute for the parsa library the paper
// builds on.  A Problem supplies the three problem-specific decisions the
// paper lists in Section 4.3 — cost function, initial solution, neighborhood
// structure — and the engine owns the generic decisions: Metropolis
// acceptance, temperature calibration, cooling, termination, and
// best-solution tracking.
//
// Problem concept:
//   struct MyProblem {
//     using State = ...;                       // copyable solution type
//     State initial(Rng& rng) const;           // feasible starting solution
//     double cost(const State& s) const;       // value to MINIMIZE
//     State neighbor(const State& s, Rng&) const;  // random feasible move
//   };
#pragma once

#include <cmath>
#include <concepts>
#include <cstddef>
#include <utility>
#include <vector>

#include "src/anneal/schedule.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace vodrep {

template <typename P>
concept AnnealProblem = requires(const P& p, const typename P::State& s, Rng& rng) {
  { p.initial(rng) } -> std::convertible_to<typename P::State>;
  { p.cost(s) } -> std::convertible_to<double>;
  { p.neighbor(s, rng) } -> std::convertible_to<typename P::State>;
};

/// Engine parameters.  Defaults suit problems whose cost is O(1)-scaled;
/// initial_temperature <= 0 requests automatic calibration (see
/// calibrate_initial_temperature).
struct AnnealOptions {
  double initial_temperature = -1.0;  ///< <= 0: calibrate automatically
  double final_temperature = 1e-4;    ///< stop when T falls below this
  std::size_t moves_per_temperature = 200;
  std::size_t max_temperature_steps = 10'000;  ///< hard safety cap
  /// Stop early after this many consecutive temperature steps without the
  /// best cost improving; 0 disables the early stop.
  std::size_t stall_steps = 50;
  /// Target acceptance ratio for automatic temperature calibration.
  double calibration_acceptance = 0.8;
  std::size_t calibration_samples = 200;
};

/// What the engine did, for instrumentation and tests.
template <typename State>
struct AnnealResult {
  State best_state{};
  double best_cost = 0.0;
  double final_temperature = 0.0;
  std::size_t temperature_steps = 0;
  std::size_t moves_proposed = 0;
  std::size_t moves_accepted = 0;
  /// (temperature, best-cost) samples, one per temperature step.
  std::vector<std::pair<double, double>> trajectory;
};

/// Estimates an initial temperature such that uphill moves are accepted with
/// roughly `target_acceptance` probability: samples random neighbor moves
/// from the initial state and sets T0 = mean(uphill delta) / -ln(target).
template <AnnealProblem P>
[[nodiscard]] double calibrate_initial_temperature(const P& problem, Rng& rng,
                                                   double target_acceptance,
                                                   std::size_t samples) {
  require(target_acceptance > 0.0 && target_acceptance < 1.0,
          "calibrate_initial_temperature: target in (0, 1) required");
  typename P::State state = problem.initial(rng);
  double cost = problem.cost(state);
  double uphill_sum = 0.0;
  std::size_t uphill_count = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    typename P::State candidate = problem.neighbor(state, rng);
    const double candidate_cost = problem.cost(candidate);
    const double delta = candidate_cost - cost;
    if (delta > 0.0) {
      uphill_sum += delta;
      ++uphill_count;
    }
    // Random-walk through the landscape so the sample is not anchored to the
    // immediate vicinity of the initial state.
    state = std::move(candidate);
    cost = candidate_cost;
  }
  if (uphill_count == 0) return 1.0;  // all moves downhill; T0 barely matters
  const double mean_uphill = uphill_sum / static_cast<double>(uphill_count);
  return mean_uphill / -std::log(target_acceptance);
}

/// Runs simulated annealing and returns the best state encountered.
/// Deterministic given `rng`'s seed.
template <AnnealProblem P>
[[nodiscard]] AnnealResult<typename P::State> anneal(
    const P& problem, Rng& rng, const AnnealOptions& options,
    const CoolingSchedule& schedule) {
  require(options.final_temperature > 0.0,
          "anneal: final_temperature must be positive");
  require(options.moves_per_temperature > 0,
          "anneal: moves_per_temperature must be positive");

  AnnealResult<typename P::State> result;
  typename P::State current = problem.initial(rng);
  double current_cost = problem.cost(current);
  result.best_state = current;
  result.best_cost = current_cost;

  double temperature = options.initial_temperature;
  if (temperature <= 0.0) {
    temperature = calibrate_initial_temperature(
        problem, rng, options.calibration_acceptance,
        options.calibration_samples);
  }

  std::size_t stall = 0;
  CoolingStepInfo info;
  while (temperature > options.final_temperature &&
         result.temperature_steps < options.max_temperature_steps) {
    std::size_t accepted = 0;
    const double best_before = result.best_cost;
    for (std::size_t m = 0; m < options.moves_per_temperature; ++m) {
      typename P::State candidate = problem.neighbor(current, rng);
      const double candidate_cost = problem.cost(candidate);
      const double delta = candidate_cost - current_cost;
      ++result.moves_proposed;
      if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature)) {
        current = std::move(candidate);
        current_cost = candidate_cost;
        ++accepted;
        if (current_cost < result.best_cost) {
          result.best_cost = current_cost;
          result.best_state = current;
        }
      }
    }
    result.moves_accepted += accepted;
    ++result.temperature_steps;
    result.trajectory.emplace_back(temperature, result.best_cost);

    stall = result.best_cost < best_before ? 0 : stall + 1;
    if (options.stall_steps != 0 && stall >= options.stall_steps) break;

    info.step = result.temperature_steps;
    info.moves = options.moves_per_temperature;
    info.accepted = accepted;
    info.best_cost = result.best_cost;
    info.current_cost = current_cost;
    const double next_temperature = schedule.next(temperature, info);
    require(next_temperature < temperature,
            "anneal: cooling schedule failed to decrease the temperature");
    temperature = next_temperature;
  }
  result.final_temperature = temperature;
  return result;
}

/// Convenience overload using geometric cooling with ratio 0.95.
template <AnnealProblem P>
[[nodiscard]] AnnealResult<typename P::State> anneal(
    const P& problem, Rng& rng, const AnnealOptions& options = {}) {
  const auto schedule = geometric_cooling(0.95);
  return anneal(problem, rng, options, *schedule);
}

/// Multi-chain annealing — the parallelization strategy of the parsa
/// library the paper builds on: K independent Metropolis chains run from
/// different seeds (on `pool` when provided) and the best final solution
/// wins.  Deterministic in `base_seed` regardless of thread count.  The
/// returned instrumentation aggregates move counts across chains and keeps
/// the winning chain's trajectory.
template <AnnealProblem P>
[[nodiscard]] AnnealResult<typename P::State> anneal_multichain(
    const P& problem, std::uint64_t base_seed, std::size_t chains,
    const AnnealOptions& options, const CoolingSchedule& schedule,
    ThreadPool* pool = nullptr) {
  require(chains >= 1, "anneal_multichain: need at least one chain");
  std::vector<AnnealResult<typename P::State>> results(chains);
  auto run_chain = [&](std::size_t chain) {
    Rng rng(base_seed ^ (0x9e3779b97f4a7c15ULL * (chain + 1)));
    results[chain] = anneal(problem, rng, options, schedule);
  };
  if (pool != nullptr) {
    pool->parallel_for(chains, run_chain);
  } else {
    for (std::size_t chain = 0; chain < chains; ++chain) run_chain(chain);
  }
  std::size_t best = 0;
  std::size_t moves_proposed = 0;
  std::size_t moves_accepted = 0;
  for (std::size_t chain = 0; chain < chains; ++chain) {
    moves_proposed += results[chain].moves_proposed;
    moves_accepted += results[chain].moves_accepted;
    if (results[chain].best_cost < results[best].best_cost) best = chain;
  }
  AnnealResult<typename P::State> winner = std::move(results[best]);
  winner.moves_proposed = moves_proposed;
  winner.moves_accepted = moves_accepted;
  return winner;
}

/// Multi-chain convenience overload with geometric(0.95) cooling.
template <AnnealProblem P>
[[nodiscard]] AnnealResult<typename P::State> anneal_multichain(
    const P& problem, std::uint64_t base_seed, std::size_t chains,
    const AnnealOptions& options = {}, ThreadPool* pool = nullptr) {
  const auto schedule = geometric_cooling(0.95);
  return anneal_multichain(problem, base_seed, chains, options, *schedule,
                           pool);
}

}  // namespace vodrep
